// Benchmarks that regenerate the paper's tables and figures — one benchmark
// per experiment. Model-scale series (the paper's 65-node numbers) are
// emitted as custom metrics; real-engine benchmarks measure this machine.
//
//	go test -bench=. -benchmem
//
// Naming: BenchmarkTableII*, BenchmarkFig1* ... match the experiment index
// in DESIGN.md §4.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
)

// benchGraph caches a planted graph across benchmarks within one process.
var benchGraphs = map[string]struct {
	train *graph.Graph
	held  *graph.HeldOut
}{}

func benchFixture(b *testing.B, name string, n, k, edges int, seed uint64) (*graph.Graph, *graph.HeldOut) {
	b.Helper()
	if got, ok := benchGraphs[name]; ok {
		return got.train, got.held
	}
	g, _, err := gen.Planted(gen.DefaultPlanted(n, k, edges, seed))
	if err != nil {
		b.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(seed+1))
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[name] = struct {
		train *graph.Graph
		held  *graph.HeldOut
	}{train, held}
	return train, held
}

// BenchmarkTableIIDatasets measures synthetic dataset generation — the
// stand-in for Table II's SNAP downloads. Reported rate is edges generated
// per second at com-youtube-sim scale parameters (reduced N for bench time).
func BenchmarkTableIIDatasets(b *testing.B) {
	cfg := gen.DefaultPlanted(11348, 83, 29876, 1) // com-youtube-sim / 1
	for i := 0; i < b.N; i++ {
		g, _, err := gen.Planted(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(g.NumEdges()))
	}
}

// BenchmarkFig1StrongScaling runs the REAL distributed engine across
// simulated cluster sizes on a fixed problem (the strong-scaling axis of
// Figure 1). ns/op is the per-iteration cost at each rank count; the modeled
// 65-node series is reported by BenchmarkFig1Model.
func BenchmarkFig1StrongScaling(b *testing.B) {
	train, held := benchFixture(b, "fig1", 4000, 32, 40000, 17)
	cfg := core.DefaultConfig(64, 23)
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			res, err := dist.Run(cfg, train, held, dist.Options{
				Ranks: ranks, Threads: 2, Iterations: max(b.N, 4), Pipeline: true,
				MinibatchPairs: 512, NeighborCount: 32,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Elapsed.Milliseconds())/float64(max(b.N, 4)), "ms/iter")
			b.ReportMetric(res.RemoteFrac, "remote-frac")
		})
	}
}

// BenchmarkFig1Model emits the paper-scale strong-scaling series (DAS5
// model, C=8..64) as metrics: modeled seconds for 2048 iterations.
func BenchmarkFig1Model(b *testing.B) {
	m, net, w := perfmodel.DAS5(), simnet.DKVStore(), perfmodel.PaperFriendster()
	var pts []perfmodel.ScalePoint
	for i := 0; i < b.N; i++ {
		pts = perfmodel.StrongScaling(m, net, w, []int{8, 16, 32, 64}, true)
	}
	for _, p := range pts {
		b.ReportMetric(p.E.Total*2048, fmt.Sprintf("s-total-C%d", p.C))
	}
}

// BenchmarkFig2WeakScaling grows K with the rank count so per-rank work
// stays constant; ms/iter should stay roughly flat (Figure 2).
func BenchmarkFig2WeakScaling(b *testing.B) {
	train, held := benchFixture(b, "fig2", 4000, 32, 40000, 19)
	for _, ranks := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ranks=%d_K=%d", ranks, 32*ranks), func(b *testing.B) {
			cfg := core.DefaultConfig(32*ranks, 29)
			res, err := dist.Run(cfg, train, held, dist.Options{
				Ranks: ranks, Threads: 2, Iterations: max(b.N, 4), Pipeline: true,
				MinibatchPairs: 512, NeighborCount: 32,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Elapsed.Milliseconds())/float64(max(b.N, 4)), "ms/iter")
		})
	}
}

// BenchmarkFig3Pipelining measures the double-buffering ablation (Figure 3)
// on the real engine: identical runs with the pipeline off and on.
func BenchmarkFig3Pipelining(b *testing.B) {
	train, held := benchFixture(b, "fig3", 3000, 16, 30000, 31)
	cfg := core.DefaultConfig(128, 37)
	for _, pipelined := range []bool{false, true} {
		name := "single-buffer"
		if pipelined {
			name = "double-buffer"
		}
		b.Run(name, func(b *testing.B) {
			res, err := dist.Run(cfg, train, held, dist.Options{
				Ranks: 4, Threads: 2, Iterations: max(b.N, 4), Pipeline: pipelined,
				MinibatchPairs: 512, NeighborCount: 32, PhiChunkNodes: 16,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Elapsed.Milliseconds())/float64(max(b.N, 4)), "ms/iter")
		})
	}
}

// BenchmarkTableIIIBreakdown reports the per-stage ms/iteration of a real
// pipelined run — the same rows as Table III, measured on this machine.
func BenchmarkTableIIIBreakdown(b *testing.B) {
	train, held := benchFixture(b, "tableIII", 3000, 16, 30000, 41)
	cfg := core.DefaultConfig(96, 43)
	iters := max(b.N, 8)
	res, err := dist.Run(cfg, train, held, dist.Options{
		Ranks: 4, Threads: 2, Iterations: iters, Pipeline: true,
		MinibatchPairs: 512, NeighborCount: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, phase := range []string{
		dist.PhaseDeployMinibatch, dist.PhaseUpdatePhi, dist.PhaseLoadPi,
		dist.PhaseComputePhi, dist.PhaseUpdatePi, dist.PhaseUpdateBetaTheta,
	} {
		ms := float64(res.Phases.Total(phase).Microseconds()) / 1000 / float64(iters)
		b.ReportMetric(ms, "ms/iter-"+phase)
	}
}

// BenchmarkFig4HorizVert compares the single-node threaded sampler
// ("vertical") against the distributed engine ("horizontal") on the same
// problem — the real-machine analogue of Figure 4.
func BenchmarkFig4HorizVert(b *testing.B) {
	train, held := benchFixture(b, "fig4", 3000, 16, 30000, 47)
	cfg := core.DefaultConfig(64, 53)
	b.Run("vertical-threaded", func(b *testing.B) {
		s, err := core.NewSampler(cfg, train, held, core.SamplerOptions{
			Threads: 0, MinibatchPairs: 512, NeighborCount: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		s.Run(b.N)
	})
	b.Run("horizontal-4ranks", func(b *testing.B) {
		res, err := dist.Run(cfg, train, held, dist.Options{
			Ranks: 4, Threads: 2, Iterations: max(b.N, 4), Pipeline: true,
			MinibatchPairs: 512, NeighborCount: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Elapsed.Milliseconds())/float64(max(b.N, 4)), "ms/iter")
	})
}

// BenchmarkFig5DKVBandwidth measures the REAL in-process DKV store's batch
// read throughput across payload sizes (rows per batch), the measurable
// analogue of Figure 5; the modeled InfiniBand curves are emitted by
// BenchmarkFig5Model.
func BenchmarkFig5DKVBandwidth(b *testing.B) {
	for _, rows := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			benchDKVRead(b, rows)
		})
	}
}

func benchDKVRead(b *testing.B, rows int) {
	// Implemented in bench_dkv_test.go to keep transport setup out of the
	// figure-level file.
	dkvReadBench(b, rows)
}

// BenchmarkFig5Model emits the modeled Figure 5 curves as metrics (GB/s).
func BenchmarkFig5Model(b *testing.B) {
	var pts []perfmodel.BandwidthPoint
	for i := 0; i < b.N; i++ {
		pts = perfmodel.BandwidthSweep(simnet.FDRInfiniBand(), simnet.DKVStore(), perfmodel.Fig5Payloads())
	}
	for _, p := range pts {
		if p.PayloadBytes == 1024 || p.PayloadBytes == 64<<10 || p.PayloadBytes == 1<<20 {
			b.ReportMetric(p.DKVBps/1e9, fmt.Sprintf("GBps-dkv-%dB", p.PayloadBytes))
			b.ReportMetric(p.QperfBps/1e9, fmt.Sprintf("GBps-qperf-%dB", p.PayloadBytes))
		}
	}
}

// BenchmarkFig6Convergence measures end-to-end training iterations with
// periodic perplexity evaluation — the unit of work behind every Figure 6
// curve.
func BenchmarkFig6Convergence(b *testing.B) {
	train, held := benchFixture(b, "fig6", 3000, 16, 30000, 59)
	cfg := core.DefaultConfig(32, 61)
	cfg.Alpha = 1.0 / 32
	res, err := dist.Run(cfg, train, held, dist.Options{
		Ranks: 4, Threads: 2, Iterations: max(b.N, 8), Pipeline: true,
		EvalEvery: 8, MinibatchPairs: 512, NeighborCount: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Perplexity) > 0 {
		b.ReportMetric(res.Perplexity[len(res.Perplexity)-1].Value, "final-perplexity")
	}
}

// --- ablation benches for DESIGN.md §6 design choices ---

// BenchmarkAblationNeighborStrategy compares the paper's uniform neighbor
// sampling (Eqn 5) against the lower-variance link+uniform strategy.
func BenchmarkAblationNeighborStrategy(b *testing.B) {
	train, held := benchFixture(b, "ablation-neigh", 3000, 16, 30000, 67)
	cfg := core.DefaultConfig(32, 71)
	for _, uniform := range []bool{true, false} {
		name := "link-plus-uniform"
		if uniform {
			name = "uniform"
		}
		b.Run(name, func(b *testing.B) {
			s, err := core.NewSampler(cfg, train, held, core.SamplerOptions{
				Threads: 0, MinibatchPairs: 512, NeighborCount: 32, UniformNeighbors: uniform,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			s.Run(b.N)
		})
	}
}

// BenchmarkAblationMinibatchStrategy compares random-pair against stratified
// random node minibatches.
func BenchmarkAblationMinibatchStrategy(b *testing.B) {
	train, held := benchFixture(b, "ablation-mb", 3000, 16, 30000, 73)
	cfg := core.DefaultConfig(32, 79)
	for _, strat := range []bool{false, true} {
		name := "random-pair"
		if strat {
			name = "stratified-node"
		}
		b.Run(name, func(b *testing.B) {
			s, err := core.NewSampler(cfg, train, held, core.SamplerOptions{
				Threads: 0, MinibatchPairs: 512, NeighborCount: 32, Stratified: strat,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			s.Run(b.N)
		})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
