package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mmsb"
	"repro/internal/svi"
)

// BenchmarkSVIStep measures the variational baseline's per-iteration cost,
// comparable with BenchmarkFig4HorizVert's vertical-threaded MCMC numbers.
func BenchmarkSVIStep(b *testing.B) {
	train, held := benchFixture(b, "svi", 3000, 16, 30000, 83)
	s, err := svi.NewSampler(svi.DefaultConfig(32, 89), train, held, svi.Options{
		Threads: 0, NodeBatch: 128,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Run(b.N)
}

// BenchmarkGeneralVsAssortativeStep quantifies the O(K²) vs O(K) cost of the
// general MMSB extension against the assortative model on identical data.
func BenchmarkGeneralVsAssortativeStep(b *testing.B) {
	train, held := benchFixture(b, "mmsb", 3000, 16, 30000, 97)
	b.Run("assortative-K32", func(b *testing.B) {
		s, err := core.NewSampler(core.DefaultConfig(32, 101), train, held, core.SamplerOptions{
			Threads: 0, MinibatchPairs: 256, NeighborCount: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		s.Run(b.N)
	})
	b.Run("general-K32", func(b *testing.B) {
		s, err := mmsb.NewSampler(mmsb.DefaultConfig(32, 101), train, held, mmsb.Options{
			Threads: 0, MinibatchPairs: 256, NeighborCount: 32,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		s.Run(b.N)
	})
}
