GO ?= go

DIST_PKGS = ./internal/transport/... ./internal/cluster/... ./internal/dkv/... ./internal/dist/...

.PHONY: build vet test race check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the distribution-stack packages under the race detector —
# the failure-propagation tests are only meaningful with it on.
race:
	$(GO) test -race $(DIST_PKGS)

check: vet build race test
