GO ?= go

DIST_PKGS = ./internal/par/... ./internal/transport/... ./internal/cluster/... ./internal/dkv/... ./internal/store/... ./internal/engine/... ./internal/dist/... ./internal/serve/...

.PHONY: build fmt vet test race bench-dist bench-serve bench-gate check

build:
	$(GO) build ./...

# fmt fails if any file is not gofmt-clean (prints the offenders).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the distribution-stack packages under the race detector —
# the failure-propagation and seed-parity tests are only meaningful with
# it on (the parity test exercises the pipelined load/compute overlap).
race:
	$(GO) test -race $(DIST_PKGS)

# bench-dist refreshes the BENCH_dist.json perf snapshot.
bench-dist:
	scripts/bench_dist.sh

# bench-serve appends a serving-tier record (qps / p99 / flip latency)
# to the same BENCH_dist.json series.
bench-serve:
	scripts/bench_serve.sh

# bench-gate fails if the latest BENCH_dist.json records regress more than
# BENCH_GATE_THRESHOLD_PCT (default 25%) against the trailing same-cpu median.
bench-gate:
	scripts/bench_gate.sh

check: fmt vet build race test
