#!/usr/bin/env sh
# Append a serving-tier benchmark snapshot to the BENCH_dist.json series: one
# record per invocation, keyed by git SHA and UTC date, appended (never
# overwritten) alongside the distributed-loop records so the read tier's
# trajectory lives in the same series.
#
# The record carries the three serving numbers that matter:
#   - qps:   end-to-end HTTP query throughput (BenchmarkServeHTTP, concurrent
#            clients over real TCP);
#   - p99_us: the 99th-percentile end-to-end query latency of that run;
#   - snapshot_flip_ns: publish-to-visible latency — per-snapshot inverted
#     index build plus the RCU pointer flip (BenchmarkSnapshotFlip) — i.e. how
#     long training output takes to become queryable once sealed.
#
# Usage: scripts/bench_serve.sh [benchtime] [fliptime]   (default 2000x / 20x)
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-2000x}"
FLIPTIME="${2:-20x}"

http="$(go test ./internal/serve/ -run NONE -bench BenchmarkServeHTTP \
	-benchtime "$BENCHTIME" -count 1)"
echo "$http"

flip="$(go test ./internal/serve/ -run NONE -bench BenchmarkSnapshotFlip \
	-benchtime "$FLIPTIME" -count 1)"
echo "$flip"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# Benchmark lines with b.ReportMetric carry "value unit" pairs after ns/op:
# harvest the metrics by unit name rather than by column position.
{
	{ echo "$http"; echo "$flip"; } | awk -v git_sha="$GIT_SHA" -v date="$DATE" \
		-v benchtime="$BENCHTIME" -v fliptime="$FLIPTIME" '
		/^Benchmark(ServeHTTP|SnapshotFlip)/ {
			for (i = 2; i < NF; i++) {
				if ($(i + 1) == "qps") qps = $i
				if ($(i + 1) == "p99_us") p99 = $i
				if ($(i + 1) == "ns/op" && $1 ~ /^BenchmarkSnapshotFlip/) flip_ns = $i
			}
		}
		/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
		END {
			if (qps == "" || p99 == "" || flip_ns == "") {
				print "bench_serve: FAIL: missing metric (qps=" qps " p99_us=" p99 " flip_ns=" flip_ns ")" > "/dev/stderr"
				exit 1
			}
			printf "  {\n"
			printf "    \"git_sha\": \"%s\",\n", git_sha
			printf "    \"date\": \"%s\",\n", date
			printf "    \"benchmark\": \"BenchmarkServeHTTP\",\n"
			printf "    \"config\": {\"vertices\": 100000, \"k\": 64, \"clients\": 8, \"topk\": 10},\n"
			printf "    \"benchtime\": \"%s\", \"fliptime\": \"%s\",\n", benchtime, fliptime
			printf "    \"cpu\": \"%s\",\n", cpu
			printf "    \"qps\": %s,\n", qps
			printf "    \"p99_us\": %s,\n", p99
			printf "    \"snapshot_flip_ns\": %s\n", flip_ns
			printf "  }\n"
		}
	'
} > "$tmp/record.json"

# Append to the series, same idiom as bench_dist.sh: drop the closing "]",
# comma-join, re-close; a missing or pre-series file starts a fresh array.
if [ -s BENCH_dist.json ] && [ "$(head -c 1 BENCH_dist.json)" = "[" ]; then
	sed '$d' BENCH_dist.json | sed '$s/$/,/' > "$tmp/series.json"
else
	printf '[\n' > "$tmp/series.json"
fi
cat "$tmp/record.json" >> "$tmp/series.json"
printf ']\n' >> "$tmp/series.json"
mv "$tmp/series.json" BENCH_dist.json

echo "appended serve record $GIT_SHA to BENCH_dist.json:"
cat "$tmp/record.json"
