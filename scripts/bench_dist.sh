#!/usr/bin/env sh
# Append a distributed-loop benchmark snapshot to BENCH_dist.json so the perf
# trajectory of the iteration loop is tracked in-repo as a series: one record
# per invocation, keyed by git SHA and UTC date, appended (never overwritten)
# so regressions are visible as a diff in history.
#
# Each record carries three views of the same loop:
#   - BenchmarkDistIteration ns/op (serial, pipelined, hot-row cache per-phase
#     vs cross-iteration, with hit rates) on the in-proc fabric;
#   - the BenchmarkDistSweep rank×thread×transport grid (ns/op, allocs/op and
#     pipelined speedup per {transport, threads} cell over inproc, the simnet
#     wire model, and a TCP loopback mesh);
#   - the per-stage phase breakdown digested from the JSONL telemetry stream
#     of a short instrumented cluster run with the cross-iteration cache on
#     (ocd-cluster -metrics-out → ocd-analyze -events -events-json).
# cache_hit_rate and peer_skew are hoisted to the record's top level so a
# series-wide trend query is one grep away.
#
# The script FAILS (exit 1) if pipelining is not a win on a remote transport:
# for each of simnet and tcp, the best pipelined speedup across the thread
# cells must exceed 1.0. Per-cell hard gating is not statistically meaningful
# on small shared CI boxes (single-core runners timeshare both ranks, so
# individual cells carry ±5-8% noise); the regression class this guards
# against — a chunking policy that makes pipelining lose everywhere, like the
# pre-fix 0.92× — fails the best-cell criterion decisively.
# Usage: scripts/bench_dist.sh [benchtime] [sweeptime]   (default 20x / 10x)
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-20x}"
SWEEPTIME="${2:-10x}"

out="$(go test ./internal/dist/ -run NONE -bench BenchmarkDistIteration \
	-benchtime "$BENCHTIME" -count 1)"
echo "$out"

sweep="$(go test ./internal/dist/ -run NONE -bench BenchmarkDistSweep \
	-benchmem -benchtime "$SWEEPTIME" -count 1)"
echo "$sweep"

# Telemetry run: small planted graph, 2 ranks, pipelined — the same shape
# as the benchmark config — digested into one Summary object.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/ocd-gen -n 600 -k 8 -edges 4000 -seed 7 -out "$tmp/bench.txt" >/dev/null
go run ./cmd/ocd-cluster -graph "$tmp/bench.txt" -ranks 2 -threads 2 -k 8 \
	-iters 40 -eval 20 -pipeline -hot-cache 1024 -hot-cache-cross-iter \
	-metrics-out "$tmp/events.jsonl" >/dev/null
go run ./cmd/ocd-analyze -events "$tmp/events.jsonl" -events-json > "$tmp/summary.json"

# Out-of-core cells: stream a graph to disk, train with the sharded-mmap π
# backend at two hot-row-cache sizes, and land the tier hit rates plus peak
# RSS in the record — cache-efficiency regressions in the tiered store show
# up as a hit-rate drop in the series, capacity regressions as an RSS jump.
go run ./cmd/ocd-gen -stream-out -n 20000 -k 16 -edges 120000 -seed 7 \
	-out "$tmp/mmap.txt" >/dev/null
{
	printf '    "pi_mmap": [\n'
	first=1
	for hot in 512 4096; do
		go run ./cmd/ocd-train -graph "$tmp/mmap.txt" -stream -k 16 -iters 30 \
			-eval 0 -threads 2 -pi-backend mmap -pi-dir "$tmp/pi-$hot" \
			-pi-hot-rows "$hot" > "$tmp/mmap-$hot.log"
		[ "$first" = 1 ] || printf ',\n'
		first=0
		awk -v hot="$hot" '
			/tier:/     { split($4, a, "/"); hits = a[1] + 0; reads = a[2] + 0; mh = $10 + 0 }
			/peak RSS:/ { rss = $3 + 0 }
			END {
				rate = 0; if (reads > 0) rate = hits / reads
				printf "      {\"hot_rows\": %s, \"hot_hits\": %d, \"reads\": %d, " \
					"\"hot_hit_rate\": %.4f, \"mmap_hits\": %d, \"peak_rss_mib\": %.1f}", \
					hot, hits, reads, rate, mh, rss
			}
		' "$tmp/mmap-$hot.log"
	done
	printf '\n    ],\n'
} > "$tmp/mmap.json"

# num KEY DEFAULT: first numeric value of "KEY" in summary.json, or DEFAULT
# when the field is absent (cache_hit_rate and peer_skew are omitempty).
num() {
	v="$(sed -n 's/.*"'"$1"'": *\(-\{0,1\}[0-9][0-9.eE+-]*\).*/\1/p' "$tmp/summary.json" | head -n 1)"
	if [ -n "$v" ]; then printf '%s' "$v"; else printf '%s' "$2"; fi
}

GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# The sweep grid as a JSON fragment: one element per {transport, threads}
# cell, carrying both schedules' ns/op and allocs/op plus their ratio. With
# -benchmem the benchmark line is: name N ns/op B/op allocs/op ($3/$5/$7).
echo "$sweep" | awk '
	/^BenchmarkDistSweep\// {
		split($1, p, "/")
		t = p[2]
		th = p[3]; sub(/^r2t/, "", th)
		m = p[4]; sub(/-[0-9]+$/, "", m)
		ns[t "," th "," m] = $3
		al[t "," th "," m] = $7
	}
	END {
		ntr = split("inproc simnet tcp", trs, " ")
		nth = split("1 2 4", ths, " ")
		printf "    \"sweep\": [\n"
		first = 1
		for (i = 1; i <= ntr; i++) for (j = 1; j <= nth; j++) {
			t = trs[i]; th = ths[j]
			s = ns[t "," th ",serial"]; q = ns[t "," th ",pipelined"]
			if (s == "" || q == "") continue
			if (!first) printf ",\n"
			first = 0
			printf "      {\"transport\": \"%s\", \"ranks\": 2, \"threads\": %s, " \
				"\"serial_ns_per_op\": %s, \"pipelined_ns_per_op\": %s, " \
				"\"serial_allocs_per_op\": %s, \"pipelined_allocs_per_op\": %s, " \
				"\"pipelined_speedup\": %.4f}", \
				t, th, s, q, al[t "," th ",serial"], al[t "," th ",pipelined"], s / q
		}
		printf "\n    ],\n"
	}
' > "$tmp/sweep.json"

# One series record, indented two spaces to sit inside the top-level array.
{
	echo "$out" | awk -v benchtime="$BENCHTIME" -v git_sha="$GIT_SHA" -v date="$DATE" \
		-v cache_hit_rate="$(num cache_hit_rate 0)" -v peer_skew="$(num peer_skew 0)" '
		/^BenchmarkDistIteration\// {
			split($1, parts, "/")
			sub(/-[0-9]+$/, "", parts[2])
			name = parts[2]
			ns[name] = $3
			n[name] = $2
			if ($6 == "hit-rate") hr[name] = $5
		}
		/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
		END {
			printf "  {\n"
			printf "    \"git_sha\": \"%s\",\n", git_sha
			printf "    \"date\": \"%s\",\n", date
			printf "    \"benchmark\": \"BenchmarkDistIteration\",\n"
			printf "    \"config\": {\"ranks\": 2, \"threads\": 2, \"iters_per_op\": 4},\n"
			printf "    \"benchtime\": \"%s\",\n", benchtime
			printf "    \"cpu\": \"%s\",\n", cpu
			printf "    \"results\": {\n"
			printf "      \"serial\":    {\"ns_per_op\": %s, \"runs\": %s},\n", ns["serial"], n["serial"]
			printf "      \"pipelined\": {\"ns_per_op\": %s, \"runs\": %s},\n", ns["pipelined"], n["pipelined"]
			printf "      \"cached\":    {\"ns_per_op\": %s, \"runs\": %s, \"hit_rate\": %s},\n", ns["cached"], n["cached"], hr["cached"]
			printf "      \"cached_xiter\": {\"ns_per_op\": %s, \"runs\": %s, \"hit_rate\": %s}\n", ns["cached-xiter"], n["cached-xiter"], hr["cached-xiter"]
			printf "    },\n"
			printf "    \"pipelined_speedup\": %.4f,\n", ns["serial"] / ns["pipelined"]
			printf "    \"cache_hit_rate\": %s,\n", cache_hit_rate
			printf "    \"peer_skew\": %s,\n", peer_skew
		}
	'
	cat "$tmp/sweep.json"
	cat "$tmp/mmap.json"
	printf '    "telemetry":\n'
	sed 's/^/    /' "$tmp/summary.json"
	printf '  }\n'
} > "$tmp/record.json"

# Append to the series. A missing file, or one in the pre-series single-object
# format, starts a fresh array; otherwise drop the closing "]", comma-join,
# and re-close.
if [ -s BENCH_dist.json ] && [ "$(head -c 1 BENCH_dist.json)" = "[" ]; then
	sed '$d' BENCH_dist.json | sed '$s/$/,/' > "$tmp/series.json"
else
	printf '[\n' > "$tmp/series.json"
fi
cat "$tmp/record.json" >> "$tmp/series.json"
printf ']\n' >> "$tmp/series.json"
mv "$tmp/series.json" BENCH_dist.json

echo "appended record $GIT_SHA to BENCH_dist.json:"
cat BENCH_dist.json

# Gate: on each remote transport, pipelining must beat the serial schedule in
# at least one thread cell. Runs last so the record above survives for
# forensics even when the gate trips.
echo "$sweep" | awk '
	/^BenchmarkDistSweep\// {
		split($1, p, "/")
		t = p[2]
		th = p[3]; sub(/^r2t/, "", th)
		m = p[4]; sub(/-[0-9]+$/, "", m)
		ns[t "," th "," m] = $3
	}
	END {
		ntr = split("simnet tcp", trs, " ")
		nth = split("1 2 4", ths, " ")
		fail = 0
		for (i = 1; i <= ntr; i++) {
			t = trs[i]; best = 0
			for (j = 1; j <= nth; j++) {
				s = ns[t "," ths[j] ",serial"]; q = ns[t "," ths[j] ",pipelined"]
				if (s > 0 && q > 0 && s / q > best) best = s / q
			}
			if (best == 0) { printf "bench_dist: FAIL: no %s sweep cells found\n", t; fail = 1 }
			else if (best <= 1.0) { printf "bench_dist: FAIL: pipelining never beats serial on %s (best speedup %.4f <= 1.0)\n", t, best; fail = 1 }
			else printf "bench_dist: gate ok: %s best pipelined speedup %.4f\n", t, best
		}
		exit fail
	}
'
