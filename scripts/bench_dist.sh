#!/usr/bin/env sh
# Append a BenchmarkDistIteration snapshot to BENCH_dist.json so the perf
# trajectory of the distributed iteration loop is tracked in-repo as a
# series: one record per invocation, keyed by git SHA and UTC date, appended
# (never overwritten) so regressions are visible as a diff in history.
#
# Each record carries two views of the same loop: the Go benchmark's ns/op
# (serial, pipelined, and the hot-row cache per-phase vs cross-iteration,
# with hit rates), and the per-stage phase breakdown digested from the JSONL
# telemetry stream of a short instrumented cluster run with the
# cross-iteration cache on (ocd-cluster -metrics-out → ocd-analyze -events
# -events-json). cache_hit_rate and peer_skew are hoisted to the record's
# top level so a series-wide trend query is one grep away.
# Usage: scripts/bench_dist.sh [benchtime]   (default 20x)
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-20x}"

out="$(go test ./internal/dist/ -run NONE -bench BenchmarkDistIteration \
	-benchtime "$BENCHTIME" -count 1)"
echo "$out"

# Telemetry run: small planted graph, 2 ranks, pipelined — the same shape
# as the benchmark config — digested into one Summary object.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/ocd-gen -n 600 -k 8 -edges 4000 -seed 7 -out "$tmp/bench.txt" >/dev/null
go run ./cmd/ocd-cluster -graph "$tmp/bench.txt" -ranks 2 -threads 2 -k 8 \
	-iters 40 -eval 20 -pipeline -hot-cache 1024 -hot-cache-cross-iter \
	-metrics-out "$tmp/events.jsonl" >/dev/null
go run ./cmd/ocd-analyze -events "$tmp/events.jsonl" -events-json > "$tmp/summary.json"

# num KEY DEFAULT: first numeric value of "KEY" in summary.json, or DEFAULT
# when the field is absent (cache_hit_rate and peer_skew are omitempty).
num() {
	v="$(sed -n 's/.*"'"$1"'": *\(-\{0,1\}[0-9][0-9.eE+-]*\).*/\1/p' "$tmp/summary.json" | head -n 1)"
	if [ -n "$v" ]; then printf '%s' "$v"; else printf '%s' "$2"; fi
}

GIT_SHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
DATE="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# One series record, indented two spaces to sit inside the top-level array.
{
	echo "$out" | awk -v benchtime="$BENCHTIME" -v git_sha="$GIT_SHA" -v date="$DATE" \
		-v cache_hit_rate="$(num cache_hit_rate 0)" -v peer_skew="$(num peer_skew 0)" '
		/^BenchmarkDistIteration\// {
			split($1, parts, "/")
			sub(/-[0-9]+$/, "", parts[2])
			name = parts[2]
			ns[name] = $3
			n[name] = $2
			if ($6 == "hit-rate") hr[name] = $5
		}
		/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
		END {
			printf "  {\n"
			printf "    \"git_sha\": \"%s\",\n", git_sha
			printf "    \"date\": \"%s\",\n", date
			printf "    \"benchmark\": \"BenchmarkDistIteration\",\n"
			printf "    \"config\": {\"ranks\": 2, \"threads\": 2, \"iters_per_op\": 4},\n"
			printf "    \"benchtime\": \"%s\",\n", benchtime
			printf "    \"cpu\": \"%s\",\n", cpu
			printf "    \"results\": {\n"
			printf "      \"serial\":    {\"ns_per_op\": %s, \"runs\": %s},\n", ns["serial"], n["serial"]
			printf "      \"pipelined\": {\"ns_per_op\": %s, \"runs\": %s},\n", ns["pipelined"], n["pipelined"]
			printf "      \"cached\":    {\"ns_per_op\": %s, \"runs\": %s, \"hit_rate\": %s},\n", ns["cached"], n["cached"], hr["cached"]
			printf "      \"cached_xiter\": {\"ns_per_op\": %s, \"runs\": %s, \"hit_rate\": %s}\n", ns["cached-xiter"], n["cached-xiter"], hr["cached-xiter"]
			printf "    },\n"
			printf "    \"pipelined_speedup\": %.4f,\n", ns["serial"] / ns["pipelined"]
			printf "    \"cache_hit_rate\": %s,\n", cache_hit_rate
			printf "    \"peer_skew\": %s,\n", peer_skew
			printf "    \"telemetry\":\n"
		}
	'
	sed 's/^/    /' "$tmp/summary.json"
	printf '  }\n'
} > "$tmp/record.json"

# Append to the series. A missing file, or one in the pre-series single-object
# format, starts a fresh array; otherwise drop the closing "]", comma-join,
# and re-close.
if [ -s BENCH_dist.json ] && [ "$(head -c 1 BENCH_dist.json)" = "[" ]; then
	sed '$d' BENCH_dist.json | sed '$s/$/,/' > "$tmp/series.json"
else
	printf '[\n' > "$tmp/series.json"
fi
cat "$tmp/record.json" >> "$tmp/series.json"
printf ']\n' >> "$tmp/series.json"
mv "$tmp/series.json" BENCH_dist.json

echo "appended record $GIT_SHA to BENCH_dist.json:"
cat BENCH_dist.json
