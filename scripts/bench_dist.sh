#!/usr/bin/env sh
# Snapshot BenchmarkDistIteration into BENCH_dist.json so the perf
# trajectory of the distributed iteration loop is tracked in-repo.
#
# The snapshot carries two views of the same loop: the Go benchmark's
# ns/op (serial, pipelined, and the hot-row cache per-phase vs
# cross-iteration, with hit rates), and the per-stage phase breakdown
# digested from the JSONL telemetry stream of a short instrumented cluster
# run with the cross-iteration cache on (ocd-cluster -metrics-out →
# ocd-analyze -events -events-json, including cache_hit_rate).
# Usage: scripts/bench_dist.sh [benchtime]   (default 20x)
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-20x}"

out="$(go test ./internal/dist/ -run NONE -bench BenchmarkDistIteration \
	-benchtime "$BENCHTIME" -count 1)"
echo "$out"

# Telemetry run: small planted graph, 2 ranks, pipelined — the same shape
# as the benchmark config — digested into one Summary object.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/ocd-gen -n 600 -k 8 -edges 4000 -seed 7 -out "$tmp/bench.txt" >/dev/null
go run ./cmd/ocd-cluster -graph "$tmp/bench.txt" -ranks 2 -threads 2 -k 8 \
	-iters 40 -eval 20 -pipeline -hot-cache 1024 -hot-cache-cross-iter \
	-metrics-out "$tmp/events.jsonl" >/dev/null
go run ./cmd/ocd-analyze -events "$tmp/events.jsonl" -events-json > "$tmp/summary.json"

echo "$out" | awk -v benchtime="$BENCHTIME" '
	/^BenchmarkDistIteration\// {
		split($1, parts, "/")
		sub(/-[0-9]+$/, "", parts[2])
		name = parts[2]
		ns[name] = $3
		n[name] = $2
		if ($6 == "hit-rate") hr[name] = $5
	}
	/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
	END {
		printf "{\n"
		printf "  \"benchmark\": \"BenchmarkDistIteration\",\n"
		printf "  \"config\": {\"ranks\": 2, \"threads\": 2, \"iters_per_op\": 4},\n"
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"results\": {\n"
		printf "    \"serial\":    {\"ns_per_op\": %s, \"runs\": %s},\n", ns["serial"], n["serial"]
		printf "    \"pipelined\": {\"ns_per_op\": %s, \"runs\": %s},\n", ns["pipelined"], n["pipelined"]
		printf "    \"cached\":    {\"ns_per_op\": %s, \"runs\": %s, \"hit_rate\": %s},\n", ns["cached"], n["cached"], hr["cached"]
		printf "    \"cached_xiter\": {\"ns_per_op\": %s, \"runs\": %s, \"hit_rate\": %s}\n", ns["cached-xiter"], n["cached-xiter"], hr["cached-xiter"]
		printf "  },\n"
		printf "  \"pipelined_speedup\": %.4f,\n", ns["serial"] / ns["pipelined"]
		printf "  \"telemetry\":\n"
	}
' > BENCH_dist.json
sed 's/^/  /' "$tmp/summary.json" >> BENCH_dist.json
printf '}\n' >> BENCH_dist.json

echo "wrote BENCH_dist.json:"
cat BENCH_dist.json
