#!/usr/bin/env sh
# Snapshot BenchmarkDistIteration into BENCH_dist.json so the perf
# trajectory of the distributed iteration loop is tracked in-repo.
# Usage: scripts/bench_dist.sh [benchtime]   (default 20x)
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-20x}"

out="$(go test ./internal/dist/ -run NONE -bench BenchmarkDistIteration \
	-benchtime "$BENCHTIME" -count 1)"
echo "$out"

echo "$out" | awk -v benchtime="$BENCHTIME" '
	/^BenchmarkDistIteration\// {
		split($1, parts, "/")
		sub(/-[0-9]+$/, "", parts[2])
		name = parts[2]
		ns[name] = $3
		n[name] = $2
	}
	/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
	END {
		printf "{\n"
		printf "  \"benchmark\": \"BenchmarkDistIteration\",\n"
		printf "  \"config\": {\"ranks\": 2, \"threads\": 2, \"iters_per_op\": 4},\n"
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"results\": {\n"
		printf "    \"serial\":    {\"ns_per_op\": %s, \"runs\": %s},\n", ns["serial"], n["serial"]
		printf "    \"pipelined\": {\"ns_per_op\": %s, \"runs\": %s}\n", ns["pipelined"], n["pipelined"]
		printf "  },\n"
		printf "  \"pipelined_speedup\": %.4f\n", ns["serial"] / ns["pipelined"]
		printf "}\n"
	}
' > BENCH_dist.json

echo "wrote BENCH_dist.json:"
cat BENCH_dist.json
