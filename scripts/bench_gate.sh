#!/usr/bin/env sh
# Gate the latest BENCH_dist.json records against the trailing history: the
# freshest BenchmarkDistIteration record's serial ns/op and the freshest
# BenchmarkServeHTTP record's p99_us must each stay within
# BENCH_GATE_THRESHOLD_PCT percent (default 25) of the median of up to 8
# prior records — turning the append-only perf series the bench scripts grow
# into an actual regression gate instead of a diff you have to eyeball.
#
# Records are only compared against priors with the SAME "cpu" string: CI
# runners rotate across processor generations, and a 2.10GHz → 2.70GHz swap
# moves ns/op far more than any code change. A latest record with no
# same-cpu prior passes with a note (first sighting of that runner class
# seeds the history rather than failing on it).
#
# Usage: scripts/bench_gate.sh            (after bench_dist.sh / bench_serve.sh
#                                          have appended this run's records)
#        BENCH_GATE_THRESHOLD_PCT=40 scripts/bench_gate.sh
set -eu
cd "$(dirname "$0")/.."

THRESHOLD="${BENCH_GATE_THRESHOLD_PCT:-25}"

python3 - "$THRESHOLD" <<'EOF'
import json
import sys

threshold_pct = float(sys.argv[1])
records = json.load(open("BENCH_dist.json"))

# (label, record filter, metric extractor): one gated series per benchmark
# kind. Lower is better for both metrics.
SERIES = [
    (
        "dist iteration serial ns/op",
        lambda r: r.get("benchmark") == "BenchmarkDistIteration",
        lambda r: r["results"]["serial"]["ns_per_op"],
    ),
    (
        "serve p99_us",
        lambda r: r.get("benchmark") == "BenchmarkServeHTTP",
        lambda r: r["p99_us"],
    ),
]

MAX_PRIORS = 8  # trailing window: old records age out of the baseline

failed = False
for label, match, metric in SERIES:
    series = [r for r in records if match(r)]
    if not series:
        print(f"bench gate: {label}: no records, skipping")
        continue
    latest = series[-1]
    value = metric(latest)
    cpu = latest.get("cpu", "")
    priors = [metric(r) for r in series[:-1] if r.get("cpu", "") == cpu]
    priors = priors[-MAX_PRIORS:]
    if not priors:
        print(f"bench gate: {label}: {value} — no prior records on this "
              f"runner class ({cpu!r}), seeding history (pass)")
        continue
    priors.sort()
    n = len(priors)
    median = (priors[n // 2] if n % 2
              else (priors[n // 2 - 1] + priors[n // 2]) / 2)
    delta_pct = 100.0 * (value - median) / median
    verdict = "OK"
    if delta_pct > threshold_pct:
        verdict = f"REGRESSION (> +{threshold_pct:.0f}%)"
        failed = True
    print(f"bench gate: {label}: latest {value} vs median {median:g} of "
          f"{n} same-cpu prior(s): {delta_pct:+.1f}% — {verdict}")

sys.exit(1 if failed else 0)
EOF
