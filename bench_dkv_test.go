package repro

import (
	"sync"
	"testing"

	"repro/internal/dkv"
	"repro/internal/transport"
)

// dkvReadBench measures batched reads against a 4-rank in-process DKV store
// holding K=256 rows (1032-byte values, the paper's π + Σφ layout).
func dkvReadBench(b *testing.B, rows int) {
	const ranks = 4
	const n = 4096
	const valBytes = 256*4 + 8

	fabric, err := transport.NewFabric(ranks)
	if err != nil {
		b.Fatal(err)
	}
	defer fabric.Close()
	stores := make([]*dkv.Store, ranks)
	for r := 0; r < ranks; r++ {
		st, err := dkv.New(fabric.Endpoint(r), n, valBytes)
		if err != nil {
			b.Fatal(err)
		}
		stores[r] = st
	}
	var closeOnce sync.Once
	defer closeOnce.Do(func() {
		for _, st := range stores {
			st.Close()
		}
	})
	val := make([]byte, valBytes)
	for r := 0; r < ranks; r++ {
		lo, hi := stores[r].OwnedRange()
		for k := lo; k < hi; k++ {
			stores[r].WriteLocal(k, val)
		}
	}

	keys := make([]int32, rows)
	for i := range keys {
		keys[i] = int32((i * 769) % n) // spread across all owners
	}
	dst := make([]byte, rows*valBytes)
	b.SetBytes(int64(rows * valBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stores[0].ReadBatch(keys, dst); err != nil {
			b.Fatal(err)
		}
	}
}
