package perfmodel

import (
	"math"
	"testing"

	"repro/internal/simnet"
)

func paperSizes() []int { return []int{8, 16, 24, 32, 40, 48, 56, 64} }

func TestMachinesValidate(t *testing.T) {
	for _, m := range []Machine{DAS5(), HPCCloud()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := DAS5()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid machine accepted")
	}
}

// TestFig1StrongScalingShape: total time strictly decreases with cluster
// size, update_phi dominates every point, and update_beta stays roughly
// constant (it is synchronisation-bound, as Section IV-A observes).
func TestFig1StrongScalingShape(t *testing.T) {
	pts := StrongScaling(DAS5(), simnet.DKVStore(), PaperFriendster(), paperSizes(), true)
	// Execution time steadily decreases; beyond the knee the curve may
	// flatten (the master's pipelined sampling is the Amdahl term), but it
	// must never regress by more than 1%.
	for i := 1; i < len(pts); i++ {
		if pts[i].E.Total > pts[i-1].E.Total*1.01 {
			t.Fatalf("total regressed: C=%d %.3fs -> C=%d %.3fs",
				pts[i-1].C, pts[i-1].E.Total, pts[i].C, pts[i].E.Total)
		}
	}
	if pts[len(pts)-1].E.Total > 0.6*pts[0].E.Total {
		t.Fatalf("no meaningful strong scaling: C=%d %.3fs vs C=%d %.3fs",
			pts[0].C, pts[0].E.Total, pts[len(pts)-1].C, pts[len(pts)-1].E.Total)
	}
	for _, p := range pts {
		e := p.E
		if e.UpdatePhi < e.UpdatePi || e.UpdatePhi < e.UpdateBetaTheta || e.UpdatePhi < e.DeployMinibatch {
			t.Fatalf("C=%d: update_phi (%.4fs) is not the dominant phase", p.C, e.UpdatePhi)
		}
	}
	first, last := pts[0].E.UpdateBetaTheta, pts[len(pts)-1].E.UpdateBetaTheta
	if ratio := first / last; ratio > 4 || ratio < 0.25 {
		t.Fatalf("update_beta_theta varies by %.1fx across cluster sizes; paper reports it ~constant", ratio)
	}
}

// TestFig1SpeedupSublinear: speedup grows with C but falls short of linear,
// flattening at large C as per-worker granularity shrinks.
func TestFig1SpeedupSublinear(t *testing.T) {
	pts := StrongScaling(DAS5(), simnet.DKVStore(), PaperFriendster(), paperSizes(), true)
	sp := Speedup(pts)
	if sp[0] != 1 {
		t.Fatalf("speedup[0] = %v, want 1", sp[0])
	}
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1]*0.99 {
			t.Fatalf("speedup regressed at C=%d", pts[i].C)
		}
		linear := float64(pts[i].C) / float64(pts[0].C)
		if sp[i] >= linear {
			t.Fatalf("speedup %v at C=%d exceeds linear %v", sp[i], pts[i].C, linear)
		}
	}
	if sp[len(sp)-1] < 1.5 {
		t.Fatalf("speedup at C=%d only %v", pts[len(pts)-1].C, sp[len(sp)-1])
	}
	// Marginal gain shrinks: the last doubling buys less than the first.
	gainFirst := sp[1] / sp[0]
	gainLast := sp[len(sp)-1] / sp[len(sp)-2]
	if gainLast >= gainFirst {
		t.Fatalf("speedup curve not flattening: first gain %v, last %v", gainFirst, gainLast)
	}
}

// TestFig2WeakScalingFlat: growing K with C keeps per-iteration time within
// a modest band (the paper calls the change "insignificant").
func TestFig2WeakScalingFlat(t *testing.T) {
	base := PaperFriendster()
	pts := WeakScaling(DAS5(), simnet.DKVStore(), base, []int{4, 8, 16, 32, 64}, 192)
	lo, hi := math.Inf(1), 0.0
	for _, p := range pts {
		if p.E.Total < lo {
			lo = p.E.Total
		}
		if p.E.Total > hi {
			hi = p.E.Total
		}
	}
	if hi/lo > 1.6 {
		t.Fatalf("weak scaling varies %.2fx; paper reports a near-flat curve", hi/lo)
	}
}

// TestFig3PipelineGapWidens: double buffering always wins, and its absolute
// advantage grows with K (the widening gap of Figure 3).
func TestFig3PipelineGapWidens(t *testing.T) {
	ks := []int{1024, 2048, 4096, 8192, 12288}
	pts := PipelineSweep(DAS5(), simnet.DKVStore(), PaperFriendster(), 64, ks)
	prevGap := 0.0
	for _, p := range pts {
		if p.Double >= p.Single {
			t.Fatalf("K=%d: pipelined (%.3fs) not faster than single-buffered (%.3fs)", p.K, p.Double, p.Single)
		}
		gap := p.Single - p.Double
		if gap <= prevGap {
			t.Fatalf("K=%d: pipeline gap %.4fs did not widen (prev %.4fs)", p.K, gap, prevGap)
		}
		prevGap = gap
		// Execution time itself grows with K.
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Single <= pts[i-1].Single || pts[i].Double <= pts[i-1].Double {
			t.Fatal("execution time not increasing with K")
		}
	}
}

// TestTableIIIAgainstPaper pins the DAS5-calibrated model to the paper's
// measured per-stage times (ms/iteration, com-Friendster, 65 nodes,
// K = 12288). The model is a model — the tolerance is ±40%.
func TestTableIIIAgainstPaper(t *testing.T) {
	w := PaperFriendster()
	w.K = 12288
	net := simnet.DKVStore()
	m := DAS5()
	nonPip := Iteration(m, net, w, 64, false)
	pip := Iteration(m, net, w, 64, true)

	check := func(name string, got, paper float64) {
		t.Helper()
		if got < paper*0.6 || got > paper*1.4 {
			t.Errorf("%s: model %.1f ms, paper %.1f ms (off by %.0f%%)",
				name, got*1000, paper*1000, 100*(got-paper)/paper)
		}
	}
	check("total(non-pipelined)", nonPip.Total, 0.450)
	check("total(pipelined)", pip.Total, 0.365)
	check("draw/deploy", nonPip.DrawMinibatch+nonPip.DeployMinibatch, 0.0456)
	check("update_phi(non-pipelined)", nonPip.UpdatePhi, 0.285)
	check("update_phi(pipelined)", pip.UpdatePhi, 0.241)
	check("load_pi", nonPip.LoadPi, 0.205)
	check("compute_phi", nonPip.ComputePhi, 0.074)
	check("update_pi", nonPip.UpdatePi, 0.0038)
	check("update_beta_theta", nonPip.UpdateBetaTheta, 0.0259)
}

// TestFig4HorizontalBeatsVertical: at com-Friendster scale the 64-node
// cluster beats the 40-core big-memory node, and the gap widens with K.
func TestFig4HorizontalBeatsVertical(t *testing.T) {
	ks := []int{1024, 2048, 4096, 8192, 12288}
	pts := HorizontalVsVertical(DAS5(), HPCCloud(), simnet.DKVStore(), PaperFriendster(), 64, 40, ks)
	prevGap := 0.0
	for _, p := range pts {
		if p.Distributed >= p.Vertical {
			t.Fatalf("K=%d: distributed (%.3fs) not faster than vertical (%.3fs)", p.K, p.Distributed, p.Vertical)
		}
		gap := p.Vertical - p.Distributed
		if gap <= prevGap {
			t.Fatalf("K=%d: horizontal/vertical gap did not widen", p.K)
		}
		prevGap = gap
	}
}

// TestFig4aMoreCoresHelp: on the single big node, 40 cores beat 16 cores.
func TestFig4aMoreCoresHelp(t *testing.T) {
	w := PaperFriendster()
	w.K = 4096
	t40 := SingleNode(HPCCloud(), w, 40).Total
	t16 := SingleNode(HPCCloud(), w, 16).Total
	if t40 >= t16 {
		t.Fatalf("40 cores (%.3fs) not faster than 16 (%.3fs)", t40, t16)
	}
	// DAS5's faster cores beat HPC Cloud at equal thread count.
	das16 := SingleNode(DAS5(), w, 16).Total
	if das16 >= t16 {
		t.Fatalf("DAS5 16-core (%.3fs) not faster than HPC Cloud 16-core (%.3fs)", das16, t16)
	}
}

// TestFig5BandwidthShape: DKV bandwidth is visibly below qperf for small
// payloads, converges to within 10% between 8 KB and 512 KB, and dips again
// at the largest payloads (memory scatter).
func TestFig5BandwidthShape(t *testing.T) {
	pts := BandwidthSweep(simnet.FDRInfiniBand(), simnet.DKVStore(), Fig5Payloads())
	for _, p := range pts {
		if p.DKVBps > p.QperfBps {
			t.Fatalf("payload %d: DKV above qperf", p.PayloadBytes)
		}
		ratio := p.DKVBps / p.QperfBps
		switch {
		case p.PayloadBytes < 4<<10:
			if ratio > 0.92 {
				t.Errorf("payload %d: DKV/qperf = %.2f, paper shows a clear shortfall below 4KB", p.PayloadBytes, ratio)
			}
		case p.PayloadBytes >= 8<<10 && p.PayloadBytes <= 256<<10:
			if ratio < 0.90 {
				t.Errorf("payload %d: DKV/qperf = %.2f, paper shows near-parity in 8KB-512KB", p.PayloadBytes, ratio)
			}
		}
	}
	// Monotone bandwidth growth until the plateau.
	for i := 1; i < len(pts); i++ {
		if pts[i].QperfBps <= pts[i-1].QperfBps {
			t.Fatalf("qperf bandwidth not increasing at payload %d", pts[i].PayloadBytes)
		}
	}
	// Largest payload: scatter penalty pulls DKV below its 512KB ratio.
	last := pts[len(pts)-1]
	if last.DKVBps/last.QperfBps > 0.9 {
		t.Errorf("1MB payload: expected the memory-scatter dip, got ratio %.2f", last.DKVBps/last.QperfBps)
	}
}

func TestPerplexityModelScales(t *testing.T) {
	w := PaperFriendster()
	p8 := Perplexity(DAS5(), simnet.DKVStore(), w, 8)
	p64 := Perplexity(DAS5(), simnet.DKVStore(), w, 64)
	if p64 >= p8 {
		t.Fatalf("perplexity phase did not speed up: C=8 %.3fs, C=64 %.3fs", p8, p64)
	}
}

func TestCalibrateSane(t *testing.T) {
	m := Calibrate()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Loose sanity bounds: each op costs between 0.05ns and 10µs.
	for name, v := range map[string]float64{
		"PhiOp": m.PhiOp, "PiOp": m.PiOp, "ThetaOp": m.ThetaOp, "PerpOp": m.PerpOp,
	} {
		if v < 5e-11 || v > 1e-5 {
			t.Errorf("%s = %v, out of sane range", name, v)
		}
	}
	// The bound is deliberately loose: calibration on a loaded or
	// single-core CI machine measures contended bandwidth.
	if m.MemBandwidth < 5e7 {
		t.Errorf("memory bandwidth %v implausibly low", m.MemBandwidth)
	}
}

func TestSimnetModels(t *testing.T) {
	raw := simnet.FDRInfiniBand()
	if err := raw.Validate(); err != nil {
		t.Fatal(err)
	}
	dkv := simnet.DKVStore()
	if err := dkv.Validate(); err != nil {
		t.Fatal(err)
	}
	// Transfer time grows with payload and with overhead.
	if raw.TransferTime(1024) >= raw.TransferTime(1<<20) {
		t.Fatal("transfer time not increasing in payload")
	}
	if dkv.TransferTime(1024) <= raw.TransferTime(1024) {
		t.Fatal("DKV op should cost more than raw op")
	}
	// Asymptotic bandwidth approaches line rate for raw transfers.
	if bw := raw.Bandwidth(16 << 20); bw < 0.95*raw.BandwidthBytesPerSec {
		t.Fatalf("large-payload bandwidth %.2e below line rate", bw)
	}
	bad := raw
	bad.BandwidthBytesPerSec = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestBatchTime(t *testing.T) {
	m := simnet.DKVStore()
	one := m.BatchTime(1<<20, 1)
	alsoOne := m.BatchTime(1<<20, 8)
	if one != alsoOne {
		t.Fatal("BatchTime should share one latency round across parallel requests")
	}
	if m.BatchTime(2<<20, 1) <= one {
		t.Fatal("BatchTime not increasing in bytes")
	}
}

func TestIterationThreadsIntraRankTerm(t *testing.T) {
	m := DAS5()
	net := simnet.FDRInfiniBand()
	w := PaperFriendster()

	// threads = Cores must reproduce Iteration exactly (it is the same
	// computation), and out-of-range thread counts clamp to it.
	for _, c := range []int{1, 8, 64} {
		for _, pipelined := range []bool{false, true} {
			full := Iteration(m, net, w, c, pipelined)
			for _, threads := range []int{m.Cores, 0, -3, m.Cores + 10} {
				got := IterationThreads(m, net, w, c, threads, pipelined)
				if got.Total != full.Total || got.ComputePhi != full.ComputePhi {
					t.Fatalf("c=%d threads=%d pipelined=%v: total %v != Iteration's %v",
						c, threads, pipelined, got.Total, full.Total)
				}
			}
		}
	}

	// More threads must monotonically shrink the compute term and never
	// hurt the total; with one thread, compute dominates by Cores×.
	for _, c := range []int{1, 16, 64} {
		prev := IterationThreads(m, net, w, c, 1, true)
		one := prev
		for threads := 2; threads <= m.Cores; threads *= 2 {
			cur := IterationThreads(m, net, w, c, threads, true)
			if cur.ComputePhi >= prev.ComputePhi {
				t.Fatalf("c=%d: compute_phi did not shrink going to %d threads (%v >= %v)",
					c, threads, cur.ComputePhi, prev.ComputePhi)
			}
			if cur.Total > prev.Total {
				t.Fatalf("c=%d: total grew going to %d threads (%v > %v)",
					c, threads, cur.Total, prev.Total)
			}
			prev = cur
		}
		wantRatio := float64(m.Cores)
		if got := one.ComputePhi / prev.ComputePhi; math.Abs(got-wantRatio) > 1e-9*wantRatio {
			t.Fatalf("c=%d: 1-thread/%d-thread compute ratio %v, want %v", c, m.Cores, got, wantRatio)
		}
	}

	// The network terms must NOT scale with threads: a communication-bound
	// configuration (many ranks, huge K) improves far less than linearly.
	big := w
	big.K = 12288
	lo := IterationThreads(m, net, big, 64, 1, true)
	hi := IterationThreads(m, net, big, 64, m.Cores, true)
	if lo.LoadPi != hi.LoadPi {
		t.Fatalf("load_pi changed with threads: %v vs %v", lo.LoadPi, hi.LoadPi)
	}
}

func TestSingleNodeOutOfCore(t *testing.T) {
	m := HPCCloud()
	w := PaperFriendster()

	// Fully resident: the I/O term vanishes and the estimate is exactly the
	// in-RAM vertical-scaling model.
	inRAM := SingleNode(m, w, m.Cores)
	warm := SingleNodeOutOfCore(m, w, m.Cores, 1.0)
	if warm.Total != inRAM.Total || warm.UpdatePhi != inRAM.UpdatePhi {
		t.Fatalf("residentFrac=1 total %.4f, want in-RAM %.4f", warm.Total, inRAM.Total)
	}

	// Colder working sets cost strictly more, monotonically.
	prev := warm.Total
	for _, f := range []float64{0.9, 0.5, 0.1, 0} {
		e := SingleNodeOutOfCore(m, w, m.Cores, f)
		if e.Total <= prev {
			t.Fatalf("residentFrac=%.1f total %.4f not above %.4f", f, e.Total, prev)
		}
		prev = e.Total
	}

	// At residentFrac=0 every row faults: the phi stage must be I/O-bound
	// (LoadPi above ComputePhi) and the fault term must dominate compute.
	cold := SingleNodeOutOfCore(m, w, m.Cores, 0)
	if cold.LoadPi <= cold.ComputePhi {
		t.Fatalf("all-cold run not I/O bound: load %.4f vs compute %.4f", cold.LoadPi, cold.ComputePhi)
	}
	if cold.UpdatePhi != cold.LoadPi {
		t.Fatalf("all-cold UpdatePhi %.4f, want LoadPi %.4f", cold.UpdatePhi, cold.LoadPi)
	}

	// Zero-valued Machine I/O fields fall back to defaults instead of
	// producing a free disk.
	m.PageFaultSec, m.DiskBandwidth = 0, 0
	if e := SingleNodeOutOfCore(m, w, m.Cores, 0); e.Total <= inRAM.Total {
		t.Fatal("zero I/O fields modeled a free disk")
	}

	// Out-of-range fractions clamp rather than extrapolate.
	if e := SingleNodeOutOfCore(HPCCloud(), w, 40, 1.5); e.Total != inRAM.Total {
		t.Fatal("residentFrac > 1 not clamped")
	}
}
