// Package perfmodel is the calibrated performance model that reproduces the
// paper's cluster-scale results (Figures 1-4, Table III) on a single
// machine. One laptop cannot provide 65 × 16 real cores, so the scaling
// experiments are regenerated analytically: the algorithm's per-phase
// operation counts (Section III-C of the paper) are combined with
//
//   - per-operation compute costs, either calibrated to the paper's DAS5
//     numbers (DAS5()) or measured on the current host (Calibrate());
//   - the simnet network model (latency / bandwidth / request overhead).
//
// The real distributed engine (internal/dist) validates the model's shape at
// small rank counts; the model extrapolates the same phase structure to the
// paper's 65 nodes. Every formula mirrors a sentence of Section III-C:
// update_phi does M/C × |V_n| × K work and loads (C-1)/C of its π rows
// remotely, update_beta does |E_n|/C × K work plus a collective reduction,
// and so on.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/simnet"
)

// Machine holds per-node compute characteristics. The *Op costs are seconds
// per innermost unit on ONE core.
type Machine struct {
	Name string
	// PhiOp is the cost of one (neighbor, community) unit of update_phi.
	PhiOp float64
	// PiOp is the cost of one (vertex, community) unit of update_pi.
	PiOp float64
	// ThetaOp is the cost of one (pair, community) unit of update_beta.
	ThetaOp float64
	// PerpOp is the cost of one (held-out pair, community) unit.
	PerpOp float64
	// SampleOp is the master's cost to draw one minibatch vertex pair.
	SampleOp float64
	// Cores is the usable core count per node.
	Cores int
	// MemBandwidth bounds single-node state streaming (bytes/s); it is the
	// ceiling that makes vertical scaling sub-linear in Figure 4.
	MemBandwidth float64
	// ReadEfficiency is the achieved fraction of line rate for the gather-
	// heavy π loads (incast contention); writes stream at full rate.
	ReadEfficiency float64
	// SyncBase + SyncPerRank·C models one MPI collective's latency floor
	// (progression, stragglers).
	SyncBase    float64
	SyncPerRank float64
	// OverheadFactor scales the summed phase times to the measured total
	// (load imbalance, progress loops): the paper's Table III rows sum to
	// ~80% of its measured total, so DAS5 uses 1.25.
	OverheadFactor float64
	// PageFaultSec is the cost of servicing one cold-page fault when π lives
	// in a memory-mapped store rather than RAM (kernel entry + page-cache
	// miss + readahead setup). Zero selects a default in SingleNodeOutOfCore.
	PageFaultSec float64
	// DiskBandwidth is the backing device's sequential read rate (bytes/s)
	// for faulted-in π pages. Zero selects a default in SingleNodeOutOfCore.
	DiskBandwidth float64
}

// DAS5 returns constants calibrated against the paper's Table III (65 DAS5
// nodes, dual 8-core E5-2630v3 at 2.4 GHz, FDR InfiniBand): with the
// PaperFriendster workload at K = 12288 and 64 workers the model lands
// within ~15% of every row of the table.
func DAS5() Machine {
	return Machine{
		Name:           "das5",
		PhiOp:          1.14e-8,
		PiOp:           1.0e-8,
		ThetaOp:        1.2e-8,
		PerpOp:         0.9e-8,
		SampleOp:       1.7e-6,
		Cores:          16,
		MemBandwidth:   59e9,
		ReadEfficiency: 0.30,
		SyncBase:       2e-4,
		SyncPerRank:    3.0e-5,
		OverheadFactor: 1.25,
		PageFaultSec:   8e-6,
		DiskBandwidth:  2e9,
	}
}

// HPCCloud returns the SURFsara HPC Cloud node of Section IV-D: 40 E7-4850
// cores at 2.0 GHz and 1 TB of memory. Per-core throughput is lower than
// DAS5 (older microarchitecture, lower clock); memory bandwidth is the
// 4-socket aggregate.
func HPCCloud() Machine {
	m := DAS5()
	m.Name = "hpccloud"
	m.PhiOp *= 1.55
	m.PiOp *= 1.55
	m.ThetaOp *= 1.55
	m.PerpOp *= 1.55
	m.Cores = 40
	m.MemBandwidth = 85e9
	return m
}

// Validate reports the first invalid field.
func (m Machine) Validate() error {
	switch {
	case m.PhiOp <= 0 || m.PiOp <= 0 || m.ThetaOp <= 0 || m.PerpOp <= 0 || m.SampleOp <= 0:
		return fmt.Errorf("perfmodel: non-positive op cost")
	case m.Cores < 1:
		return fmt.Errorf("perfmodel: cores = %d", m.Cores)
	case m.MemBandwidth <= 0:
		return fmt.Errorf("perfmodel: non-positive memory bandwidth")
	case m.ReadEfficiency <= 0 || m.ReadEfficiency > 1:
		return fmt.Errorf("perfmodel: read efficiency %v out of (0,1]", m.ReadEfficiency)
	case m.SyncBase < 0 || m.SyncPerRank < 0:
		return fmt.Errorf("perfmodel: negative sync cost")
	case m.PageFaultSec < 0 || m.DiskBandwidth < 0:
		return fmt.Errorf("perfmodel: negative I/O cost")
	}
	return nil
}

// Workload mirrors the experiment parameters of Section IV.
type Workload struct {
	Name string
	N    int // vertices
	K    int // communities
	// MinibatchPairs is |E_n|; M (vertices touched) defaults to 2·|E_n|.
	MinibatchPairs int
	M              int
	NeighborCount  int     // |V_n|
	HeldOut        int     // |E_h|
	MeanDegree     float64 // drives minibatch deployment size
	PhiChunkNodes  int     // pipeline chunk granularity
}

func (w Workload) withDefaults() Workload {
	if w.M == 0 {
		w.M = 2 * w.MinibatchPairs
	}
	if w.PhiChunkNodes == 0 {
		w.PhiChunkNodes = 16
	}
	return w
}

// RowBytes returns the DKV value size for the workload's K.
func (w Workload) RowBytes() int { return 4*w.K + 8 }

// PaperFriendster returns the com-Friendster workload of Figure 1:
// K = 1024, M = 16384 minibatch vertices, |V_n| = 32.
func PaperFriendster() Workload {
	return Workload{
		Name:           "com-friendster",
		N:              65608366,
		K:              1024,
		MinibatchPairs: 8192,
		M:              16384,
		NeighborCount:  32,
		HeldOut:        2048 * 1024,
		MeanDegree:     55,
	}
}

// Estimate is the modeled per-iteration cost breakdown, in seconds. The
// names parallel the paper's Table III rows.
type Estimate struct {
	DrawMinibatch   float64 // master: sampling E_n (overlapped when pipelined)
	DeployMinibatch float64 // scatter of vertices + adjacency
	LoadPi          float64 // DKV reads inside update_phi
	ComputePhi      float64 // arithmetic inside update_phi
	UpdatePhi       float64 // wall time of the stage (max or sum of the two)
	UpdatePi        float64
	UpdateBetaTheta float64
	Barriers        float64
	Total           float64
}

// Iteration models one training iteration on C cluster nodes with every
// core of each node computing (threads = Cores).
func Iteration(m Machine, net simnet.Model, w Workload, c int, pipelined bool) Estimate {
	return IterationThreads(m, net, w, c, m.Cores, pipelined)
}

// IterationThreads is Iteration with an explicit intra-rank thread count —
// the model's counterpart of the engine's Threads knob, so Figure-1-style
// projections can cover rank×thread sweeps. The compute terms of every phase
// divide by threads (the OpenMP-style parallel-for over vertices, pairs, and
// held-out chunks); the network terms do not, which is why thread scaling
// flattens once a phase goes communication-bound. threads is clamped to
// [1, m.Cores].
func IterationThreads(m Machine, net simnet.Model, w Workload, c, threads int, pipelined bool) Estimate {
	w = w.withDefaults()
	var e Estimate
	if c < 1 {
		c = 1
	}
	if threads < 1 || threads > m.Cores {
		threads = m.Cores
	}
	mPer := ceilDiv(w.M, c)
	pairsPer := ceilDiv(w.MinibatchPairs, c)
	rowB := float64(w.RowBytes())
	remote := float64(c-1) / float64(c)
	readBW := net.BandwidthBytesPerSec * m.ReadEfficiency
	cores := float64(threads)

	// draw/deploy mini-batch (master). Deployment ships each vertex id, its
	// adjacency, and the pair list.
	e.DrawMinibatch = float64(w.M) * m.SampleOp
	deployBytes := float64(w.M)*(1+w.MeanDegree)*4 + float64(w.MinibatchPairs)*9
	e.DeployMinibatch = float64(c-1)*net.LatencySec + deployBytes/net.BandwidthBytesPerSec

	// update_phi: load π rows for the rank's vertices and their neighbor
	// sets; compute is M/C × |V_n| × K.
	rows := float64(mPer) * float64(w.NeighborCount+1)
	nChunks := float64(ceilDiv(mPer, w.PhiChunkNodes))
	e.LoadPi = nChunks*(net.LatencySec+net.RequestOverheadSec) + rows*remote*rowB/readBW
	e.ComputePhi = float64(mPer) * float64(w.NeighborCount+1) * float64(w.K) * m.PhiOp / cores
	if pipelined {
		// Double buffering overlaps the two; the longer one dominates, plus
		// one chunk of the shorter as pipeline fill.
		longer := math.Max(e.LoadPi, e.ComputePhi)
		shorter := math.Min(e.LoadPi, e.ComputePhi)
		e.UpdatePhi = longer + shorter/math.Max(nChunks, 1)
	} else {
		e.UpdatePhi = e.LoadPi + e.ComputePhi
	}

	// update_pi: M/C × K compute plus write-back of the rank's rows.
	e.UpdatePi = float64(mPer)*float64(w.K)*m.PiOp/cores +
		net.LatencySec + net.RequestOverheadSec +
		float64(mPer)*remote*rowB/net.BandwidthBytesPerSec

	// update_beta/theta: load the pair endpoints, |E_n|/C × K compute, then
	// a gather of per-chunk gradient partials and a θ broadcast.
	pairRows := 2 * float64(pairsPer)
	gradChunk := 64.0
	localChunks := math.Ceil(float64(pairsPer) / gradChunk)
	partialBytes := localChunks * 2 * float64(w.K) * 8
	thetaBytes := 2 * float64(w.K) * 8
	e.UpdateBetaTheta = pairRows*remote*rowB/readBW + net.LatencySec + net.RequestOverheadSec +
		float64(pairsPer)*float64(w.K)*m.ThetaOp/cores +
		float64(c)*partialBytes/readBW + // incast gather at master
		float64(c)*thetaBytes/net.BandwidthBytesPerSec + // broadcast
		m.SyncBase + m.SyncPerRank*float64(c)

	// Two phase barriers per iteration.
	e.Barriers = 2 * (m.SyncBase + m.SyncPerRank*float64(c))

	e.Total = e.DeployMinibatch + e.UpdatePhi + e.UpdatePi + e.UpdateBetaTheta + e.Barriers
	if !pipelined {
		e.Total += e.DrawMinibatch
	} else if e.DrawMinibatch > e.Total {
		// The master's prefetch goroutine samples iteration t+1 while the
		// whole of iteration t executes; only the excess beyond a full
		// iteration remains on the critical path. This is the Amdahl term
		// that flattens the strong-scaling curve at large C.
		e.Total = e.DrawMinibatch
	}
	if m.OverheadFactor > 1 {
		e.Total *= m.OverheadFactor
	}
	return e
}

// SingleNode models the vertical-scaling alternative of Section IV-D: the
// whole state in one machine's memory, `threads` cores, no network. The
// update_phi stage is bounded below by streaming its π rows from DRAM.
func SingleNode(m Machine, w Workload, threads int) Estimate {
	w = w.withDefaults()
	if threads < 1 || threads > m.Cores {
		threads = m.Cores
	}
	var e Estimate
	cores := float64(threads)
	rowB := float64(w.RowBytes())

	e.DrawMinibatch = float64(w.M) * m.SampleOp
	rows := float64(w.M) * float64(w.NeighborCount+1)
	memTime := rows * rowB / m.MemBandwidth
	e.ComputePhi = float64(w.M) * float64(w.NeighborCount+1) * float64(w.K) * m.PhiOp / cores
	e.LoadPi = memTime
	e.UpdatePhi = math.Max(e.ComputePhi, memTime)
	e.UpdatePi = float64(w.M) * float64(w.K) * m.PiOp / cores
	e.UpdateBetaTheta = float64(w.MinibatchPairs) * float64(w.K) * m.ThetaOp / cores
	e.Total = e.DrawMinibatch + e.UpdatePhi + e.UpdatePi + e.UpdateBetaTheta
	return e
}

// SingleNodeOutOfCore models vertical scaling when the π table does NOT fit
// in RAM and lives in the sharded mmap store instead: residentFrac of the row
// accesses hit pages already in memory (the hot-row cache plus the resident
// page-cache slice) and stream at DRAM rate, while the cold remainder each
// pay a page fault plus a page-sized device read. This is the I/O term that
// explains why out-of-core training degrades gracefully until the working set
// outruns the cache and then goes device-bound: the cold term grows linearly
// in (1 - residentFrac) with a slope set by PageFaultSec and DiskBandwidth,
// not by compute.
func SingleNodeOutOfCore(m Machine, w Workload, threads int, residentFrac float64) Estimate {
	if residentFrac < 0 {
		residentFrac = 0
	}
	if residentFrac > 1 {
		residentFrac = 1
	}
	pf := m.PageFaultSec
	if pf == 0 {
		pf = 8e-6
	}
	diskBW := m.DiskBandwidth
	if diskBW == 0 {
		diskBW = 2e9
	}
	e := SingleNode(m, w, threads)
	w = w.withDefaults()

	// update_phi touches M·(|V_n|+1) rows; the cold ones fault. Row accesses
	// are scattered across the shards (a minibatch's neighbor sets are not
	// contiguous), so each cold row charges one fault plus one page of device
	// read — adjacent cold rows sharing a page is the residentFrac term's job
	// to capture, not the per-fault cost's.
	const pageBytes = 4096
	rows := float64(w.M) * float64(w.NeighborCount+1)
	coldRows := rows * (1 - residentFrac)
	ioTime := coldRows * (pf + pageBytes/diskBW)
	e.LoadPi += ioTime
	// Faults block the touching worker, but with `threads` workers faulting
	// independently the device queue overlaps them against compute the same
	// way the DRAM stream does: the stage runs at the slower of the two.
	e.UpdatePhi = math.Max(e.ComputePhi, e.LoadPi)

	// update_pi writes back M rows; cold ones fault for the copy-on-write
	// materialisation of their page.
	coldWrites := float64(w.M) * (1 - residentFrac)
	e.UpdatePi += coldWrites * (pf + pageBytes/diskBW)

	e.Total = e.DrawMinibatch + e.UpdatePhi + e.UpdatePi + e.UpdateBetaTheta
	return e
}

// Perplexity models one held-out evaluation on C nodes.
func Perplexity(m Machine, net simnet.Model, w Workload, c int) float64 {
	w = w.withDefaults()
	if c < 1 {
		c = 1
	}
	per := ceilDiv(w.HeldOut, c)
	rowB := float64(w.RowBytes())
	remote := float64(c-1) / float64(c)
	readBW := net.BandwidthBytesPerSec * m.ReadEfficiency
	loads := 2 * float64(per) * remote * rowB / readBW
	compute := float64(per) * float64(w.K) * m.PerpOp / float64(m.Cores)
	return loads + compute + m.SyncBase + m.SyncPerRank*float64(c)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
