package perfmodel

import (
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/mathx"
)

// Calibrate measures the model's per-operation costs on the current host by
// timing the actual Go kernels of internal/core. Use the result to compare
// model predictions against real internal/dist runs on this machine; use
// DAS5() to reproduce the paper's absolute numbers.
func Calibrate() Machine {
	const k = 128
	const neighbors = 32
	cfg := core.DefaultConfig(k, 42)
	rng := mathx.NewRNG(7)

	// Synthetic state rows.
	newRow := func() []float32 {
		tmp := make([]float64, k)
		rng.Dirichlet(1, tmp)
		out := make([]float32, k)
		for i, v := range tmp {
			out[i] = float32(v)
		}
		return out
	}
	piA := newRow()
	rows := make([][]float32, neighbors)
	linked := make([]bool, neighbors)
	weight := make([]float64, neighbors)
	for i := range rows {
		rows[i] = newRow()
		linked[i] = i%8 == 0
		weight[i] = 10
	}
	beta := make([]float64, k)
	for i := range beta {
		beta[i] = 0.2 + 0.6*rng.Float64()
	}
	theta := core.InitTheta(cfg)

	// PhiOp: per (neighbor+1) × K unit of UpdatePhi.
	sc := core.NewPhiScratch(k)
	newPhi := make([]float64, k)
	phiIters := timedLoop(func() {
		core.UpdatePhi(&cfg, 0.001, piA, 10, rows, linked, weight, beta, rng, newPhi, sc)
	})
	phiOp := phiIters.perCall / float64((neighbors+1)*k)

	// ThetaOp: per pair × K unit of the gradient accumulation.
	tsc := core.NewThetaScratch(k)
	grad := make([]float64, 2*k)
	thetaIters := timedLoop(func() {
		core.AccumulateThetaGrad(piA, rows[0], theta, beta, cfg.Delta, false, grad, tsc)
	})
	thetaOp := thetaIters.perCall / float64(k)

	// PerpOp: per pair × K unit of the likelihood.
	var sink float64
	perpIters := timedLoop(func() {
		sink += core.EdgeProbability(piA, rows[1], beta, cfg.Delta, false)
	})
	_ = sink
	perpOp := perpIters.perCall / float64(k)

	// PiOp: per vertex × K unit of the φ→π normalisation and store.
	st, _ := core.NewState(cfg, 4)
	phiRow := make([]float64, k)
	for i := range phiRow {
		phiRow[i] = rng.Gamma(1) + 0.01
	}
	piIters := timedLoop(func() { st.SetPhiRow(1, phiRow) })
	piOp := piIters.perCall / float64(k)

	// SampleOp: approximate with the cost of drawing + deduplicating one
	// random pair (hash set insert dominates).
	seen := map[uint64]struct{}{}
	sampleIters := timedLoop(func() {
		a, b := rng.Intn(1_000_000), rng.Intn(1_000_000)
		key := uint64(a)<<32 | uint64(b)
		if len(seen) > 1<<16 {
			seen = map[uint64]struct{}{}
		}
		seen[key] = struct{}{}
	})

	// Memory bandwidth: stream-copy a buffer bigger than LLC.
	buf1 := make([]byte, 64<<20)
	buf2 := make([]byte, 64<<20)
	start := time.Now()
	const copies = 6
	for i := 0; i < copies; i++ {
		copy(buf2, buf1)
	}
	memBW := float64(copies*2*len(buf1)) / time.Since(start).Seconds()

	return Machine{
		Name:           "local",
		PhiOp:          phiOp,
		PiOp:           piOp,
		ThetaOp:        thetaOp,
		PerpOp:         perpOp,
		SampleOp:       sampleIters.perCall,
		Cores:          runtime.GOMAXPROCS(0),
		MemBandwidth:   memBW,
		ReadEfficiency: 0.30,
		SyncBase:       2e-4,
		SyncPerRank:    3.0e-5,
		OverheadFactor: 1.1,
	}
}

type loopResult struct {
	perCall float64
}

// timedLoop runs fn until ~20 ms have elapsed and returns the mean per-call
// seconds, warming up first so the measurement sees steady state.
func timedLoop(fn func()) loopResult {
	for i := 0; i < 16; i++ {
		fn()
	}
	const target = 20 * time.Millisecond
	calls := 0
	start := time.Now()
	for time.Since(start) < target {
		for i := 0; i < 64; i++ {
			fn()
		}
		calls += 64
	}
	return loopResult{perCall: time.Since(start).Seconds() / float64(calls)}
}
