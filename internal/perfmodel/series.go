package perfmodel

import "repro/internal/simnet"

// This file generates the figure series of Section IV from the model.

// ScalePoint is one cluster-size sample of a scaling curve.
type ScalePoint struct {
	C int
	E Estimate
}

// StrongScaling models Figure 1: total and per-phase time for a fixed
// workload across cluster sizes.
func StrongScaling(m Machine, net simnet.Model, w Workload, sizes []int, pipelined bool) []ScalePoint {
	out := make([]ScalePoint, len(sizes))
	for i, c := range sizes {
		out[i] = ScalePoint{C: c, E: Iteration(m, net, w, c, pipelined)}
	}
	return out
}

// Speedup converts a scaling curve to speedups relative to its first point
// (the paper's Figure 1-b is relative to 8 nodes).
func Speedup(points []ScalePoint) []float64 {
	out := make([]float64, len(points))
	if len(points) == 0 {
		return out
	}
	base := points[0].E.Total
	for i, p := range points {
		out[i] = base / p.E.Total
	}
	return out
}

// WeakScaling models Figure 2: the number of communities grows in proportion
// to the cluster size (K = kPerNode · C), so per-node work stays constant
// while communication intensity grows.
func WeakScaling(m Machine, net simnet.Model, base Workload, sizes []int, kPerNode int) []ScalePoint {
	out := make([]ScalePoint, len(sizes))
	for i, c := range sizes {
		w := base
		w.K = kPerNode * c
		out[i] = ScalePoint{C: c, E: Iteration(m, net, w, c, true)}
	}
	return out
}

// PipelinePoint is one K sample of the Figure 3 sweep.
type PipelinePoint struct {
	K      int
	Single float64 // seconds/iteration without double buffering
	Double float64 // seconds/iteration with double buffering
}

// PipelineSweep models Figure 3: single- vs double-buffered execution time
// across community counts on a fixed cluster.
func PipelineSweep(m Machine, net simnet.Model, base Workload, c int, ks []int) []PipelinePoint {
	out := make([]PipelinePoint, len(ks))
	for i, k := range ks {
		w := base
		w.K = k
		out[i] = PipelinePoint{
			K:      k,
			Single: Iteration(m, net, w, c, false).Total,
			Double: Iteration(m, net, w, c, true).Total,
		}
	}
	return out
}

// HVPoint is one K sample of the Figure 4 comparison.
type HVPoint struct {
	K           int
	Distributed float64 // seconds/iteration on the cluster
	Vertical    float64 // seconds/iteration on the single big node
}

// HorizontalVsVertical models Figure 4: the distributed cluster against a
// single large shared-memory machine across community counts.
func HorizontalVsVertical(cluster, big Machine, net simnet.Model, base Workload, c, bigThreads int, ks []int) []HVPoint {
	out := make([]HVPoint, len(ks))
	for i, k := range ks {
		w := base
		w.K = k
		out[i] = HVPoint{
			K:           k,
			Distributed: Iteration(cluster, net, w, c, true).Total,
			Vertical:    SingleNode(big, w, bigThreads).Total,
		}
	}
	return out
}

// BandwidthPoint is one payload sample of Figure 5.
type BandwidthPoint struct {
	PayloadBytes int
	QperfBps     float64
	DKVBps       float64
}

// Fig5Payloads returns the payload sweep of Figure 5: 64 B to 1 MB in powers
// of two.
func Fig5Payloads() []int {
	var out []int
	for p := 64; p <= 1<<20; p *= 2 {
		out = append(out, p)
	}
	return out
}

// BandwidthSweep models Figure 5: DKV read bandwidth against the raw
// qperf-style upper bound across payload sizes.
func BandwidthSweep(raw, dkv simnet.Model, payloads []int) []BandwidthPoint {
	out := make([]BandwidthPoint, len(payloads))
	for i, p := range payloads {
		out[i] = BandwidthPoint{
			PayloadBytes: p,
			QperfBps:     raw.Bandwidth(p),
			DKVBps:       dkv.Bandwidth(p),
		}
	}
	return out
}
