package gen

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// The streamed generator must be indistinguishable from the in-memory one:
// same cfg → same ground truth and the exact same edge set, because the sink
// replicates graph.Builder's accept/reject semantics and the rejection
// sampling consumes RNG conditioned on those return values.
func TestPlantedStreamMatchesPlanted(t *testing.T) {
	cfg := DefaultPlanted(1200, 12, 9000, 17)
	cfg.MeanMembership = 1.4

	want, gtWant, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	gtGot, count, err := PlantedStream(cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if count != want.NumEdges() {
		t.Fatalf("streamed %d edges, in-memory graph has %d", count, want.NumEdges())
	}
	if len(gtGot.Members) != len(gtWant.Members) {
		t.Fatalf("communities: %d vs %d", len(gtGot.Members), len(gtWant.Members))
	}
	for k := range gtWant.Members {
		a, b := gtWant.Members[k], gtGot.Members[k]
		if len(a) != len(b) {
			t.Fatalf("community %d: %d vs %d members", k, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("community %d member %d: %d vs %d", k, i, b[i], a[i])
			}
		}
	}

	// Round-trip the stream through the file loader and compare adjacency.
	path := filepath.Join(t.TempDir(), "planted.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := graph.OpenEdgeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumVertices() != cfg.N {
		t.Fatalf("header declares %d vertices, want %d", src.NumVertices(), cfg.N)
	}
	got, err := graph.FromEdgeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("edges: %d vs %d", got.NumEdges(), want.NumEdges())
	}
	for v := 0; v < cfg.N; v++ {
		nw, ng := want.Neighbors(v), got.Neighbors(v)
		if len(nw) != len(ng) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(ng), len(nw))
		}
		for i := range nw {
			if nw[i] != ng[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestPlantedStreamHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := PlantedStream(DefaultPlanted(100, 4, 300, 3), &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 3)
	if !strings.HasPrefix(lines[0], "# planted N=100 K=4") {
		t.Fatalf("first line %q", lines[0])
	}
	if lines[1] != "# Nodes: 100" {
		t.Fatalf("second line %q", lines[1])
	}
	if !strings.Contains(buf.String(), "# Edges: ") {
		t.Fatal("no trailing edge-count comment")
	}
}

func TestPlantedStreamRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := PlantedStream(PlantedConfig{N: 1}, &buf); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestGroundTruthVertexRange(t *testing.T) {
	gt := &GroundTruth{Members: [][]int32{{0, 1, 5}}}
	if _, err := gt.MembershipSets(4); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("MembershipSets err = %v, want ErrVertexRange", err)
	}
	if _, err := gt.OverlapFraction(4); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("OverlapFraction err = %v, want ErrVertexRange", err)
	}
	if _, err := gt.MembershipSets(6); err != nil {
		t.Fatalf("in-range rejected: %v", err)
	}
	neg := &GroundTruth{Members: [][]int32{{-1}}}
	if _, err := neg.MembershipSets(4); !errors.Is(err, ErrVertexRange) {
		t.Fatal("negative vertex accepted")
	}
}
