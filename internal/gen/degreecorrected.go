package gen

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// DegreeCorrectedConfig parameterises the degree-corrected planted-community
// generator: like Planted, but each vertex carries a power-law degree target
// and edge endpoints inside a community are drawn proportionally to those
// targets (a Chung-Lu model within blocks). This reproduces the heavy-tailed
// degree distributions of the SNAP social graphs, which the uniform planted
// generator flattens out.
type DegreeCorrectedConfig struct {
	N              int
	NumCommunities int
	MeanMembership float64
	SizeSkew       float64
	TargetEdges    int
	Background     float64
	// DegreeExponent is the bounded-Pareto shape of the degree targets;
	// social graphs sit around 2-3. MaxDegreeFactor bounds the largest
	// target at MaxDegreeFactor × mean.
	DegreeExponent  float64
	MaxDegreeFactor float64
	Seed            uint64
}

// DefaultDegreeCorrected fills in the conventional parameters.
func DefaultDegreeCorrected(n, k, targetEdges int, seed uint64) DegreeCorrectedConfig {
	return DegreeCorrectedConfig{
		N:               n,
		NumCommunities:  k,
		MeanMembership:  1.3,
		SizeSkew:        0.8,
		TargetEdges:     targetEdges,
		Background:      0.05,
		DegreeExponent:  2.5,
		MaxDegreeFactor: 20,
		Seed:            seed,
	}
}

func (c DegreeCorrectedConfig) validate() error {
	base := PlantedConfig{
		N: c.N, NumCommunities: c.NumCommunities, MeanMembership: c.MeanMembership,
		SizeSkew: c.SizeSkew, TargetEdges: c.TargetEdges, Background: c.Background,
	}
	if err := base.validate(); err != nil {
		return err
	}
	if c.DegreeExponent <= 1 {
		return fmt.Errorf("gen: DegreeExponent = %v, need > 1", c.DegreeExponent)
	}
	if c.MaxDegreeFactor <= 1 {
		return fmt.Errorf("gen: MaxDegreeFactor = %v, need > 1", c.MaxDegreeFactor)
	}
	return nil
}

// DegreeCorrected generates the graph and its planted ground truth.
func DegreeCorrected(cfg DegreeCorrectedConfig) (*graph.Graph, *GroundTruth, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	rng := mathx.NewRNG(cfg.Seed)

	// Power-law degree targets.
	meanDeg := 2 * float64(cfg.TargetEdges) / float64(cfg.N)
	if meanDeg < 1 {
		meanDeg = 1
	}
	degTarget := make([]float64, cfg.N)
	for v := range degTarget {
		degTarget[v] = rng.Pareto(cfg.DegreeExponent, 1, cfg.MaxDegreeFactor*meanDeg)
	}

	// Community memberships, as in Planted.
	k := cfg.NumCommunities
	weights := make([]float64, k)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -cfg.SizeSkew)
	}
	members := make([][]int32, k)
	memberOf := make([]map[int]bool, cfg.N)
	join := func(v, c int) bool {
		if memberOf[v] == nil {
			memberOf[v] = map[int]bool{}
		}
		if memberOf[v][c] {
			return false
		}
		memberOf[v][c] = true
		members[c] = append(members[c], int32(v))
		return true
	}
	for v := 0; v < cfg.N; v++ {
		join(v, rng.Categorical(weights))
	}
	extra := int(float64(cfg.N)*cfg.MeanMembership) - cfg.N
	for added := 0; added < extra; {
		if join(rng.Intn(cfg.N), rng.Categorical(weights)) {
			added++
		}
	}

	// Intra-community edges: endpoints drawn ∝ degree target via an alias
	// table per community; budgets ∝ the community's total degree weight.
	var totalWeight float64
	commWeight := make([]float64, k)
	for c, m := range members {
		if len(m) < 2 {
			continue
		}
		for _, v := range m {
			commWeight[c] += degTarget[v]
		}
		totalWeight += commWeight[c]
	}
	intraTotal := float64(cfg.TargetEdges) * (1 - cfg.Background)
	b := graph.NewBuilder(cfg.N)
	for c, m := range members {
		n := len(m)
		if n < 2 || totalWeight == 0 {
			continue
		}
		w := make([]float64, n)
		for i, v := range m {
			w[i] = degTarget[v]
		}
		table := mathx.NewAliasTable(w)
		budget := int(intraTotal * commWeight[c] / totalWeight)
		maxAttempts := 20 * budget
		for added, attempts := 0, 0; added < budget && attempts < maxAttempts; attempts++ {
			u := m[table.Sample(rng)]
			v := m[table.Sample(rng)]
			if u != v && b.AddEdge(int(u), int(v)) {
				added++
			}
		}
	}

	// Background noise, endpoints degree-weighted globally.
	global := mathx.NewAliasTable(degTarget)
	noise := cfg.TargetEdges - b.NumEdges()
	maxAttempts := 20 * noise
	for added, attempts := 0, 0; added < noise && attempts < maxAttempts; attempts++ {
		u := global.Sample(rng)
		v := global.Sample(rng)
		if u != v && b.AddEdge(u, v) {
			added++
		}
	}
	return b.Finalize(), &GroundTruth{Members: members}, nil
}
