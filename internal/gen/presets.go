package gen

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Preset describes a synthetic stand-in for one of the SNAP datasets of the
// paper's Table II. PaperVertices/PaperEdges/PaperCommunities are the
// original dataset statistics; N/Edges/Communities are the scaled values the
// generator targets. The scale factor keeps the mean degree (and therefore
// the sampler's per-vertex work profile) of the original.
type Preset struct {
	Name             string
	Description      string
	PaperVertices    int
	PaperEdges       int64
	PaperCommunities int
	Scale            int // divisor applied to the vertex count
	N                int
	Edges            int
	Communities      int
	Seed             uint64
}

// Presets returns the six Table II stand-ins, ordered as in the paper. Each
// preserves the original mean degree; vertex counts are scaled so the whole
// suite trains on one machine.
func Presets() []Preset {
	specs := []struct {
		name, desc string
		v          int
		e          int64
		c          int
		scale      int
	}{
		{"com-livejournal-sim", "Online blogging social network", 3997962, 34681189, 287512, 100},
		{"com-friendster-sim", "Online gaming social network", 65608366, 1806067135, 957154, 1000},
		{"com-orkut-sim", "Online social network", 3072441, 117185083, 6288363, 100},
		{"com-youtube-sim", "Video-sharing social network", 1134890, 2987624, 8385, 100},
		{"com-dblp-sim", "CS bibliography collaboration network", 317080, 1049866, 13477, 10},
		{"com-amazon-sim", "Product co-purchasing network", 334863, 925872, 75149, 10},
	}
	out := make([]Preset, len(specs))
	for i, s := range specs {
		n := s.v / s.scale
		e := int(s.e / int64(s.scale))
		c := s.c / s.scale
		if c < 8 {
			c = 8
		}
		// Bound the community count: with more communities than N/4 the
		// planted blocks are too small to carry edges at the scaled size.
		if c > n/4 {
			c = n / 4
		}
		// Capacity bound: c communities of mean size 1.3·N/c offer about
		// 1.69·N²/(2c) intra pairs; keep at least twice the edge budget so
		// the per-community link probabilities stay well below saturation.
		if cap := (42 * n * n / 100) / e; c > cap && cap >= 8 {
			c = cap
		}
		out[i] = Preset{
			Name:             s.name,
			Description:      s.desc,
			PaperVertices:    s.v,
			PaperEdges:       s.e,
			PaperCommunities: s.c,
			Scale:            s.scale,
			N:                n,
			Edges:            e,
			Communities:      c,
			Seed:             uint64(9000 + i),
		}
	}
	return out
}

// PresetByName finds a preset by its name.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, names)
}

// Generate materialises the preset's graph and ground truth.
func (p Preset) Generate() (*graph.Graph, *GroundTruth, error) {
	cfg := DefaultPlanted(p.N, p.Communities, p.Edges, p.Seed)
	return Planted(cfg)
}

// MeanDegree returns the mean degree the preset targets (same as the paper's
// dataset up to rounding).
func (p Preset) MeanDegree() float64 {
	if p.N == 0 {
		return 0
	}
	return 2 * float64(p.Edges) / float64(p.N)
}
