package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// DisassortativeConfig parameterises a planted structure the ASSORTATIVE
// model cannot express: vertices belong to K groups arranged in a ring, and
// edges connect members of ADJACENT groups (k ↔ k+1 mod K) rather than
// members of the same group. The general MMSB (full block matrix) captures
// this; a-MMSB, whose only non-noise link mechanism is same-community
// membership, cannot. The extension tests use it to show the general model
// earning its O(K²) cost.
type DisassortativeConfig struct {
	N           int
	K           int // number of groups (>= 2)
	TargetEdges int
	Background  float64 // fraction of uniform noise edges
	Seed        uint64
}

// Disassortative generates the ring-of-groups graph and returns it with the
// planted group assignment.
func Disassortative(cfg DisassortativeConfig) (*graph.Graph, []int, error) {
	switch {
	case cfg.N < 4:
		return nil, nil, fmt.Errorf("gen: N = %d, need at least 4", cfg.N)
	case cfg.K < 2:
		return nil, nil, fmt.Errorf("gen: K = %d, need at least 2", cfg.K)
	case cfg.TargetEdges < 1:
		return nil, nil, fmt.Errorf("gen: TargetEdges = %d", cfg.TargetEdges)
	case cfg.Background < 0 || cfg.Background > 1:
		return nil, nil, fmt.Errorf("gen: Background = %v", cfg.Background)
	}
	rng := mathx.NewRNG(cfg.Seed)

	// Round-robin group assignment keeps groups equal-sized.
	group := make([]int, cfg.N)
	members := make([][]int32, cfg.K)
	for v := 0; v < cfg.N; v++ {
		g := v % cfg.K
		group[v] = g
		members[g] = append(members[g], int32(v))
	}

	b := graph.NewBuilder(cfg.N)
	structural := int(float64(cfg.TargetEdges) * (1 - cfg.Background))
	for added := 0; added < structural; {
		g := rng.Intn(cfg.K)
		next := (g + 1) % cfg.K
		u := members[g][rng.Intn(len(members[g]))]
		w := members[next][rng.Intn(len(members[next]))]
		if b.AddEdge(int(u), int(w)) {
			added++
		}
	}
	noise := cfg.TargetEdges - structural
	for added := 0; added < noise; {
		u, w := rng.Intn(cfg.N), rng.Intn(cfg.N)
		if u != w && b.AddEdge(u, w) {
			added++
		}
	}
	return b.Finalize(), group, nil
}
