package gen

import (
	"sort"
	"testing"
)

func TestDegreeCorrectedShape(t *testing.T) {
	cfg := DefaultDegreeCorrected(2000, 16, 20000, 7)
	g, gt, err := DegreeCorrected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 || gt.NumCommunities() != 16 {
		t.Fatalf("shape wrong: N=%d communities=%d", g.NumVertices(), gt.NumCommunities())
	}
	// Realised edges within 30% of target (heavy hubs saturate some pairs).
	if e := g.NumEdges(); e < 14000 || e > 22000 {
		t.Fatalf("edges = %d, want ≈20000", e)
	}
}

func TestDegreeCorrectedHeavyTail(t *testing.T) {
	cfg := DefaultDegreeCorrected(3000, 16, 30000, 8)
	g, _, err := DegreeCorrected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform, _, err := Planted(DefaultPlanted(3000, 16, 30000, 8))
	if err != nil {
		t.Fatal(err)
	}
	// The corrected generator's max degree must far exceed the uniform one's,
	// and the top-1% of vertices must carry a much larger share of edges.
	if g.MaxDegree() < 2*uniform.MaxDegree() {
		t.Fatalf("max degree %d vs uniform %d: no heavy tail", g.MaxDegree(), uniform.MaxDegree())
	}
	topShare := func(gr interface {
		NumVertices() int
		NumEdges() int
		Degree(int) int
	}) float64 {
		degs := make([]int, gr.NumVertices())
		for v := range degs {
			degs[v] = gr.Degree(v)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(degs)))
		top := 0
		for _, d := range degs[:gr.NumVertices()/100] {
			top += d
		}
		return float64(top) / float64(2*gr.NumEdges())
	}
	if corrected, flat := topShare(g), topShare(uniform); corrected < 1.5*flat {
		t.Fatalf("top-1%% degree share %.3f vs uniform %.3f: tail too light", corrected, flat)
	}
}

func TestDegreeCorrectedStructure(t *testing.T) {
	// Edges must still be predominantly intra-community.
	cfg := DefaultDegreeCorrected(1500, 8, 15000, 9)
	cfg.Background = 0.03
	g, gt, err := DegreeCorrected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := gt.MembershipSets(g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	intra, total := 0, 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if int32(v) >= w {
				continue
			}
			total++
			for c := range sets[v] {
				if sets[w][c] {
					intra++
					break
				}
			}
		}
	}
	if frac := float64(intra) / float64(total); frac < 0.75 {
		t.Fatalf("intra-community fraction %.2f too low", frac)
	}
}

func TestDegreeCorrectedValidation(t *testing.T) {
	bad := DefaultDegreeCorrected(1000, 8, 5000, 1)
	bad.DegreeExponent = 1
	if _, _, err := DegreeCorrected(bad); err == nil {
		t.Fatal("exponent 1 accepted")
	}
	bad = DefaultDegreeCorrected(1000, 8, 5000, 1)
	bad.MaxDegreeFactor = 1
	if _, _, err := DegreeCorrected(bad); err == nil {
		t.Fatal("factor 1 accepted")
	}
	bad = DefaultDegreeCorrected(1, 8, 5000, 1)
	if _, _, err := DegreeCorrected(bad); err == nil {
		t.Fatal("N=1 accepted")
	}
}

func TestDegreeCorrectedDeterminism(t *testing.T) {
	cfg := DefaultDegreeCorrected(800, 8, 6000, 11)
	g1, _, err := DegreeCorrected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := DegreeCorrected(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	l1, l2 := g1.EdgeList(), g2.EdgeList()
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("edge lists differ")
		}
	}
}
