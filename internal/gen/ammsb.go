package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// AMMSBConfig parameterises the exact a-MMSB generative sampler (Section
// II-A of the paper). The sampler is quadratic in N and exists so that tests
// can check the inference code against data that truly follows the model.
type AMMSBConfig struct {
	N     int     // vertices
	K     int     // communities
	Alpha float64 // Dirichlet concentration for memberships π_a
	Eta0  float64 // Beta prior parameter (failure pseudo-count)
	Eta1  float64 // Beta prior parameter (success pseudo-count)
	Delta float64 // cross-community link probability
	Seed  uint64
}

// DefaultAMMSB returns the conventional small-scale test configuration.
func DefaultAMMSB(n, k int, seed uint64) AMMSBConfig {
	return AMMSBConfig{N: n, K: k, Alpha: 0.05, Eta0: 1, Eta1: 5, Delta: 1e-4, Seed: seed}
}

// AMMSBSample holds the generated graph together with the latent variables
// that produced it, so tests can compare inferred parameters to the truth.
type AMMSBSample struct {
	Graph *graph.Graph
	Pi    [][]float64 // N × K ground-truth memberships
	Beta  []float64   // K community strengths
}

// AMMSB draws one graph from the a-MMSB generative process:
//
//  1. β_k ~ Beta(η1, η0) per community;
//  2. π_a ~ Dirichlet(α) per vertex;
//  3. for every pair (a,b): z_ab ~ π_a, z_ba ~ π_b,
//     y_ab ~ Bernoulli(β_k) if z_ab = z_ba = k else Bernoulli(δ).
func AMMSB(cfg AMMSBConfig) (*AMMSBSample, error) {
	switch {
	case cfg.N < 2:
		return nil, fmt.Errorf("gen: AMMSB N = %d, need at least 2", cfg.N)
	case cfg.K < 1:
		return nil, fmt.Errorf("gen: AMMSB K = %d, need at least 1", cfg.K)
	case cfg.Alpha <= 0 || cfg.Eta0 <= 0 || cfg.Eta1 <= 0:
		return nil, fmt.Errorf("gen: AMMSB hyperparameters must be positive")
	case cfg.Delta < 0 || cfg.Delta > 1:
		return nil, fmt.Errorf("gen: AMMSB delta = %v out of [0,1]", cfg.Delta)
	}
	rng := mathx.NewRNG(cfg.Seed)

	beta := make([]float64, cfg.K)
	for k := range beta {
		beta[k] = rng.Beta(cfg.Eta1, cfg.Eta0)
	}
	pi := make([][]float64, cfg.N)
	for a := range pi {
		pi[a] = make([]float64, cfg.K)
		rng.Dirichlet(cfg.Alpha, pi[a])
	}

	b := graph.NewBuilder(cfg.N)
	for a := 0; a < cfg.N; a++ {
		for bb := a + 1; bb < cfg.N; bb++ {
			zab := rng.Categorical(pi[a])
			zba := rng.Categorical(pi[bb])
			p := cfg.Delta
			if zab == zba {
				p = beta[zab]
			}
			if rng.Float64() < p {
				b.AddEdge(a, bb)
			}
		}
	}
	return &AMMSBSample{Graph: b.Finalize(), Pi: pi, Beta: beta}, nil
}
