// Package gen produces the synthetic graphs that stand in for the SNAP
// datasets of the paper's Table II. Three generators are provided:
//
//   - Planted: overlapping planted-community graphs with skewed community
//     sizes, the workhorse for the convergence and recovery experiments;
//   - AMMSB: an exact sampler of the a-MMSB generative process (quadratic in
//     N, used by the model-fit tests);
//   - ErdosRenyi: unstructured noise graphs for control experiments.
//
// All generators are deterministic given a seed.
package gen

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// ErrVertexRange reports a ground-truth membership naming a vertex outside
// the graph's [0, N) id space — a corrupted or mismatched ground truth.
var ErrVertexRange = errors.New("gen: ground-truth vertex out of range")

// GroundTruth records the planted community structure of a generated graph:
// for each community, the vertices that belong to it. Vertices may appear in
// several communities (overlap) — that is the phenomenon the model detects.
type GroundTruth struct {
	Members [][]int32 // Members[k] lists the vertices of community k
}

// NumCommunities returns the number of planted communities.
func (gt *GroundTruth) NumCommunities() int { return len(gt.Members) }

// MembershipSets returns, per vertex, the set of communities it belongs to.
// A membership outside [0, n) fails with ErrVertexRange naming the vertex
// and community instead of indexing out of bounds.
func (gt *GroundTruth) MembershipSets(n int) ([]map[int]bool, error) {
	out := make([]map[int]bool, n)
	for i := range out {
		out[i] = map[int]bool{}
	}
	for k, members := range gt.Members {
		for _, v := range members {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("%w: community %d lists vertex %d, graph has [0,%d)",
					ErrVertexRange, k, v, n)
			}
			out[v][k] = true
		}
	}
	return out, nil
}

// OverlapFraction returns the fraction of vertices that belong to more than
// one community, rejecting out-of-range memberships like MembershipSets.
func (gt *GroundTruth) OverlapFraction(n int) (float64, error) {
	counts := make([]int, n)
	for k, members := range gt.Members {
		for _, v := range members {
			if v < 0 || int(v) >= n {
				return 0, fmt.Errorf("%w: community %d lists vertex %d, graph has [0,%d)",
					ErrVertexRange, k, v, n)
			}
			counts[v]++
		}
	}
	over := 0
	for _, c := range counts {
		if c > 1 {
			over++
		}
	}
	if n == 0 {
		return 0, nil
	}
	return float64(over) / float64(n), nil
}

// PlantedConfig parameterises the overlapping planted-community generator.
type PlantedConfig struct {
	N              int     // number of vertices
	NumCommunities int     // number of planted communities
	MeanMembership float64 // mean communities per vertex (>= 1); overlap knob
	SizeSkew       float64 // Zipf-ish exponent for community sizes (0 = equal)
	TargetEdges    int     // expected number of edges in the output
	Background     float64 // fraction of edges that are unstructured noise
	Seed           uint64
}

// DefaultPlanted fills in the conventional parameter choices for a graph of
// n vertices and k communities.
func DefaultPlanted(n, k, targetEdges int, seed uint64) PlantedConfig {
	return PlantedConfig{
		N:              n,
		NumCommunities: k,
		MeanMembership: 1.3,
		SizeSkew:       0.8,
		TargetEdges:    targetEdges,
		Background:     0.05,
		Seed:           seed,
	}
}

func (c PlantedConfig) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("gen: N = %d, need at least 2", c.N)
	case c.NumCommunities < 1:
		return fmt.Errorf("gen: NumCommunities = %d, need at least 1", c.NumCommunities)
	case c.MeanMembership < 1:
		return fmt.Errorf("gen: MeanMembership = %v, need >= 1", c.MeanMembership)
	case c.TargetEdges < 1:
		return fmt.Errorf("gen: TargetEdges = %d, need at least 1", c.TargetEdges)
	case c.Background < 0 || c.Background > 1:
		return fmt.Errorf("gen: Background = %v, need in [0,1]", c.Background)
	}
	return nil
}

// edgeSink receives the generator's edge stream. AddEdge must implement
// graph.Builder semantics exactly — reject self-loops, duplicates, and
// out-of-range endpoints, reporting acceptance — because the rejection-
// sampling loops below consume RNG draws conditioned on those return
// values: two sinks with identical semantics see the identical edge
// sequence for a given seed, which is what makes the streamed output
// byte-equivalent to the in-memory graph.
type edgeSink interface {
	AddEdge(a, b int) bool
}

// Planted generates an undirected graph with overlapping planted communities
// and returns it together with the ground truth. The expected edge count is
// approximately cfg.TargetEdges; the realised count varies binomially.
func Planted(cfg PlantedConfig) (*graph.Graph, *GroundTruth, error) {
	b := graph.NewBuilder(cfg.N)
	gt, err := plantedEdges(cfg, b)
	if err != nil {
		return nil, nil, err
	}
	return b.Finalize(), gt, nil
}

// PlantedStream runs the same generator but emits the accepted edges to w as
// SNAP-format lines under a `# Nodes: <n>` header instead of materialising a
// graph — the exact input graph.OpenEdgeFile consumes. Per-edge state is one
// deduplication set (≈11 bytes/edge); for a given cfg the emitted edge set
// is identical to the graph Planted builds. Returns the ground truth and the
// number of edges written.
func PlantedStream(cfg PlantedConfig, w io.Writer) (*GroundTruth, int, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# planted N=%d K=%d seed=%d\n# Nodes: %d\n",
		cfg.N, cfg.NumCommunities, cfg.Seed, cfg.N); err != nil {
		return nil, 0, err
	}
	sink := &streamEdgeSink{n: cfg.N, set: graph.NewEdgeSet(cfg.TargetEdges), w: bw}
	gt, err := plantedEdges(cfg, sink)
	if err != nil {
		return nil, 0, err
	}
	if sink.err != nil {
		return nil, 0, sink.err
	}
	// Trailing summary comment: readers ignore it, humans and sanity checks
	// get the realised edge count without rescanning.
	if _, err := fmt.Fprintf(bw, "# Edges: %d\n", sink.count); err != nil {
		return nil, 0, err
	}
	if err := bw.Flush(); err != nil {
		return nil, 0, err
	}
	return gt, sink.count, nil
}

// streamEdgeSink mirrors graph.Builder's AddEdge contract while writing each
// accepted edge straight to the output. A write failure is stashed and the
// sink keeps deduplicating so the generator's RNG path stays well-defined;
// PlantedStream surfaces the error at the end.
type streamEdgeSink struct {
	n     int
	set   graph.EdgeSet
	w     *bufio.Writer
	count int
	err   error
}

func (s *streamEdgeSink) AddEdge(a, b int) bool {
	if a == b || a < 0 || b < 0 || a >= s.n || b >= s.n {
		return false
	}
	e := graph.Edge{A: int32(a), B: int32(b)}.Canon()
	if !s.set.Add(e) {
		return false
	}
	s.count++
	if s.err == nil {
		if _, err := fmt.Fprintf(s.w, "%d\t%d\n", e.A, e.B); err != nil {
			s.err = err
		}
	}
	return true
}

// plantedEdges is the generator core shared by Planted and PlantedStream:
// community assignment, per-community edge sampling, background noise.
func plantedEdges(cfg PlantedConfig, b edgeSink) (*GroundTruth, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := mathx.NewRNG(cfg.Seed)

	// Community size weights: w_k ∝ (k+1)^(-skew), normalised so the total
	// number of memberships is N * MeanMembership.
	k := cfg.NumCommunities
	weights := make([]float64, k)
	var wsum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -cfg.SizeSkew)
		wsum += weights[i]
	}
	totalMemberships := float64(cfg.N) * cfg.MeanMembership

	// Assign vertices: every vertex joins one community drawn from the size
	// distribution, then extra memberships are sprinkled until the target
	// total is met. This guarantees no orphan vertices in the ground truth.
	members := make([][]int32, k)
	memberOf := make([]map[int]bool, cfg.N)
	join := func(v, c int) bool {
		if memberOf[v] == nil {
			memberOf[v] = map[int]bool{}
		}
		if memberOf[v][c] {
			return false
		}
		memberOf[v][c] = true
		members[c] = append(members[c], int32(v))
		return true
	}
	for v := 0; v < cfg.N; v++ {
		join(v, rng.Categorical(weights))
	}
	extra := int(totalMemberships) - cfg.N
	for added := 0; added < extra; {
		if join(rng.Intn(cfg.N), rng.Categorical(weights)) {
			added++
		}
	}

	// Edge budgets: intra-community edges proportional to community size,
	// capped by the number of available pairs.
	intraTotal := float64(cfg.TargetEdges) * (1 - cfg.Background)
	var sizeSum float64
	for _, m := range members {
		if len(m) >= 2 {
			sizeSum += float64(len(m))
		}
	}
	for c, m := range members {
		n := len(m)
		if n < 2 || sizeSum == 0 {
			continue
		}
		pairs := float64(n) * float64(n-1) / 2
		budget := intraTotal * float64(n) / sizeSum
		p := budget / pairs
		if p > 0.9 {
			p = 0.9
		}
		sampleCommunityEdges(b, m, p, rng)
		_ = c
	}

	// Background noise edges across the whole graph.
	noise := int(float64(cfg.TargetEdges) * cfg.Background)
	for added := 0; added < noise; {
		a := rng.Intn(cfg.N)
		bb := rng.Intn(cfg.N)
		if a == bb {
			continue
		}
		if b.AddEdge(a, bb) {
			added++
		}
	}

	return &GroundTruth{Members: members}, nil
}

// sampleCommunityEdges adds each of the n·(n-1)/2 pairs inside the community
// independently with probability p. For small p it samples the number of
// edges binomially and picks distinct pairs by rejection, which is O(edges)
// rather than O(pairs).
func sampleCommunityEdges(b edgeSink, m []int32, p float64, rng *mathx.RNG) {
	n := len(m)
	pairs := n * (n - 1) / 2
	if p >= 0.3 {
		// Dense regime: enumerate pairs.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					b.AddEdge(int(m[i]), int(m[j]))
				}
			}
		}
		return
	}
	want := rng.Binomial(pairs, p)
	for added := 0; added < want; {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if b.AddEdge(int(m[i]), int(m[j])) {
			added++
		} else {
			// Pair already present (possibly from an overlapping community);
			// skip rather than loop forever when the community saturates.
			want--
		}
	}
}

// ErdosRenyi generates a G(n, m)-style random graph with exactly m distinct
// edges (assuming m is far below the total pair count).
func ErdosRenyi(n, m int, seed uint64) (*graph.Graph, error) {
	maxPairs := n * (n - 1) / 2
	if m > maxPairs/2 {
		return nil, fmt.Errorf("gen: %d edges too dense for rejection sampling on %d vertices", m, n)
	}
	rng := mathx.NewRNG(seed)
	b := graph.NewBuilder(n)
	for b.NumEdges() < m {
		a := rng.Intn(n)
		bb := rng.Intn(n)
		if a != bb {
			b.AddEdge(a, bb)
		}
	}
	return b.Finalize(), nil
}
