package gen

import (
	"math"
	"testing"
)

func TestPlantedBasicShape(t *testing.T) {
	cfg := DefaultPlanted(1000, 20, 5000, 1)
	g, gt, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Fatalf("N = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge count within 25% of target (binomial variation plus saturation).
	if e := g.NumEdges(); math.Abs(float64(e)-5000) > 1250 {
		t.Fatalf("edges = %d, want ≈5000", e)
	}
	if gt.NumCommunities() != 20 {
		t.Fatalf("communities = %d", gt.NumCommunities())
	}
	// Every vertex belongs to at least one community.
	seen := make([]bool, 1000)
	for _, m := range gt.Members {
		for _, v := range m {
			seen[v] = true
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d has no community", v)
		}
	}
}

func TestPlantedOverlap(t *testing.T) {
	cfg := DefaultPlanted(2000, 30, 10000, 2)
	cfg.MeanMembership = 1.5
	_, gt, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := gt.OverlapFraction(2000)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.15 || frac > 0.75 {
		t.Fatalf("overlap fraction = %v, want meaningful overlap", frac)
	}
	// Membership sets agree with member lists.
	sets, err := gt.MembershipSets(2000)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	fromLists := 0
	for _, m := range gt.Members {
		fromLists += len(m)
	}
	if total != fromLists {
		t.Fatalf("membership sets carry %d entries, lists %d", total, fromLists)
	}
}

func TestPlantedCommunityStructureIsReal(t *testing.T) {
	// Intra-community edge density must far exceed background density;
	// otherwise the planted structure would be undetectable by any model.
	cfg := DefaultPlanted(1000, 10, 8000, 3)
	g, gt, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := gt.MembershipSets(g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	intra, cross := 0, 0
	// Count shared-community edges.
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(v) {
			if int32(v) >= w {
				continue
			}
			shared := false
			for c := range sets[v] {
				if sets[w][c] {
					shared = true
					break
				}
			}
			if shared {
				intra++
			} else {
				cross++
			}
		}
	}
	fracIntra := float64(intra) / float64(intra+cross)
	if fracIntra < 0.8 {
		t.Fatalf("only %.2f of edges are intra-community; structure too weak", fracIntra)
	}
}

func TestPlantedDeterminism(t *testing.T) {
	cfg := DefaultPlanted(500, 10, 2000, 7)
	g1, _, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := Planted(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	eq := true
	l1, l2 := g1.EdgeList(), g2.EdgeList()
	for i := range l1 {
		if l1[i] != l2[i] {
			eq = false
			break
		}
	}
	if !eq {
		t.Fatal("edge lists differ under identical seed")
	}
}

func TestPlantedValidation(t *testing.T) {
	bad := []PlantedConfig{
		{N: 1, NumCommunities: 1, MeanMembership: 1, TargetEdges: 1},
		{N: 10, NumCommunities: 0, MeanMembership: 1, TargetEdges: 1},
		{N: 10, NumCommunities: 2, MeanMembership: 0.5, TargetEdges: 1},
		{N: 10, NumCommunities: 2, MeanMembership: 1, TargetEdges: 0},
		{N: 10, NumCommunities: 2, MeanMembership: 1, TargetEdges: 5, Background: 2},
	}
	for i, cfg := range bad {
		if _, _, err := Planted(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(100, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 200 {
		t.Fatalf("edges = %d, want exactly 200", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ErdosRenyi(10, 40, 1); err == nil {
		t.Fatal("over-dense request accepted")
	}
}

func TestAMMSBSampler(t *testing.T) {
	cfg := DefaultAMMSB(200, 5, 11)
	s, err := AMMSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph.NumVertices() != 200 {
		t.Fatalf("N = %d", s.Graph.NumVertices())
	}
	if err := s.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	// Latents have the right shapes and live on the simplex / unit interval.
	if len(s.Pi) != 200 || len(s.Beta) != 5 {
		t.Fatal("latent shapes wrong")
	}
	for _, b := range s.Beta {
		if b <= 0 || b >= 1 {
			t.Fatalf("beta out of (0,1): %v", b)
		}
	}
	for a, pi := range s.Pi {
		sum := 0.0
		for _, v := range pi {
			if v < 0 {
				t.Fatalf("pi[%d] has negative component", a)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("pi[%d] sums to %v", a, sum)
		}
	}
}

func TestAMMSBAssortativity(t *testing.T) {
	// With concentrated memberships (small alpha) and strong communities,
	// most edges should connect vertices whose dominant communities match.
	cfg := AMMSBConfig{N: 300, K: 4, Alpha: 0.05, Eta0: 1, Eta1: 10, Delta: 1e-4, Seed: 12}
	s, err := AMMSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	argmax := func(x []float64) int {
		best := 0
		for i, v := range x {
			if v > x[best] {
				best = i
			}
		}
		return best
	}
	match, total := 0, 0
	for v := 0; v < s.Graph.NumVertices(); v++ {
		for _, w := range s.Graph.Neighbors(v) {
			if int32(v) >= w {
				continue
			}
			total++
			if argmax(s.Pi[v]) == argmax(s.Pi[w]) {
				match++
			}
		}
	}
	if total == 0 {
		t.Fatal("a-MMSB sample produced no edges")
	}
	if frac := float64(match) / float64(total); frac < 0.6 {
		t.Fatalf("only %.2f of edges are same-community; sampler not assortative", frac)
	}
}

func TestAMMSBValidation(t *testing.T) {
	bad := []AMMSBConfig{
		{N: 1, K: 1, Alpha: 1, Eta0: 1, Eta1: 1},
		{N: 10, K: 0, Alpha: 1, Eta0: 1, Eta1: 1},
		{N: 10, K: 2, Alpha: 0, Eta0: 1, Eta1: 1},
		{N: 10, K: 2, Alpha: 1, Eta0: 1, Eta1: 1, Delta: 2},
	}
	for i, cfg := range bad {
		if _, err := AMMSB(cfg); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}

func TestPresetsTableII(t *testing.T) {
	ps := Presets()
	if len(ps) != 6 {
		t.Fatalf("presets = %d, want 6 (Table II rows)", len(ps))
	}
	for _, p := range ps {
		// Scaled mean degree matches the paper's dataset within rounding.
		paperDeg := 2 * float64(p.PaperEdges) / float64(p.PaperVertices)
		if math.Abs(p.MeanDegree()-paperDeg) > 0.15*paperDeg {
			t.Errorf("%s: mean degree %v, paper %v", p.Name, p.MeanDegree(), paperDeg)
		}
		if p.N < 100 || p.Communities < 8 {
			t.Errorf("%s: degenerate scaled size N=%d K=%d", p.Name, p.N, p.Communities)
		}
	}
}

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("com-dblp-sim")
	if err != nil {
		t.Fatal(err)
	}
	if p.PaperVertices != 317080 {
		t.Fatalf("wrong preset returned: %+v", p)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestSmallPresetGenerates(t *testing.T) {
	if testing.Short() {
		t.Skip("generation too slow for -short")
	}
	p, err := PresetByName("com-youtube-sim")
	if err != nil {
		t.Fatal(err)
	}
	g, gt, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != p.N {
		t.Fatalf("N = %d, want %d", g.NumVertices(), p.N)
	}
	if math.Abs(float64(g.NumEdges())-float64(p.Edges)) > 0.3*float64(p.Edges) {
		t.Fatalf("edges = %d, want ≈%d", g.NumEdges(), p.Edges)
	}
	if gt.NumCommunities() != p.Communities {
		t.Fatalf("communities = %d, want %d", gt.NumCommunities(), p.Communities)
	}
}
