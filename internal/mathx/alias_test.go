package mathx

import (
	"math"
	"testing"
)

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 0, 10}
	tab := NewAliasTable(weights)
	rng := NewRNG(5)
	counts := make([]int, len(weights))
	const draws = 400000
	for i := 0; i < draws; i++ {
		counts[tab.Sample(rng)]++
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := w / sum * draws
		got := float64(counts[i])
		if w == 0 {
			if got != 0 {
				t.Fatalf("zero-weight index %d sampled %v times", i, got)
			}
			continue
		}
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Fatalf("index %d: %v draws, want ≈%.0f", i, got, want)
		}
	}
}

func TestAliasTableSingleton(t *testing.T) {
	tab := NewAliasTable([]float64{7})
	rng := NewRNG(1)
	for i := 0; i < 100; i++ {
		if tab.Sample(rng) != 0 {
			t.Fatal("singleton table sampled non-zero index")
		}
	}
}

func TestAliasTablePanics(t *testing.T) {
	cases := [][]float64{nil, {0, 0}, {1, -1}}
	for i, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			NewAliasTable(w)
		}()
	}
}

func TestParetoBoundsAndTail(t *testing.T) {
	rng := NewRNG(9)
	const lo, hi, alpha = 2.0, 200.0, 2.5
	var w Welford
	exceed10 := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := rng.Pareto(alpha, lo, hi)
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
		w.Add(v)
		if v > 10*lo {
			exceed10++
		}
	}
	// Bounded Pareto(2.5, 2, 200) mean = a·L^a·(H^(1-a) - L^(1-a)) /
	// ((1-a)·(1 - (L/H)^a)) ≈ 3.3.
	if w.Mean() < 2.5 || w.Mean() > 4.5 {
		t.Fatalf("Pareto mean = %v, want ≈3.3", w.Mean())
	}
	// Heavy tail: P(X > 10·L) = (L^a·(10L)^-a - (L/H)^a)/(1-(L/H)^a) ≈ 0.003.
	frac := float64(exceed10) / draws
	if frac < 0.001 || frac > 0.01 {
		t.Fatalf("tail mass beyond 10×min = %v, want ≈0.003", frac)
	}
}

func TestParetoPanics(t *testing.T) {
	rng := NewRNG(1)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid Pareto parameters accepted")
		}
	}()
	rng.Pareto(0, 1, 2)
}
