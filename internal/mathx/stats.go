package mathx

import "math"

// Welford accumulates a running mean and variance without storing samples.
// It is used by the calibration pass of the performance model and by the
// statistical tests on the distribution samplers.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations folded in so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 samples).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 for an empty accumulator).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 for an empty accumulator).
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// Quantile computes the q-quantile (0 <= q <= 1) of a sorted slice with
// linear interpolation. The input must be sorted ascending.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("mathx: Quantile of empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
