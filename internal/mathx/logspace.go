package mathx

import "math"

// LogSumExp returns log(Σ exp(x_i)) computed stably. It returns -Inf for an
// empty slice, matching the sum-of-nothing convention.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range x {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// Log1pExp returns log(1 + exp(x)) without overflow.
func Log1pExp(x float64) float64 {
	if x > 35 {
		return x
	}
	if x < -35 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// SafeLog returns log(x) with a floor that avoids -Inf when a held-out
// probability underflows to zero in float32 arithmetic.
func SafeLog(x float64) float64 {
	const floor = 1e-300
	if x < floor {
		x = floor
	}
	return math.Log(x)
}
