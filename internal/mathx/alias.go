package mathx

import "math"

// AliasTable implements Walker's alias method: O(n) construction, O(1)
// sampling from an arbitrary discrete distribution. The degree-corrected
// graph generator draws millions of weighted endpoints, which is exactly the
// workload the method exists for.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds a table for the given non-negative weights (sum must
// be positive). The input slice is not retained.
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	if n == 0 {
		panic("mathx: alias table with no weights")
	}
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("mathx: alias table with negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("mathx: alias table with zero total weight")
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = float64(n) * w / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1 // numerical leftovers
		t.alias[i] = i
	}
	return t
}

// Sample draws one index with probability proportional to its weight.
func (t *AliasTable) Sample(rng *RNG) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// Pareto returns a sample from the bounded Pareto distribution with shape
// alpha and support [lo, hi]; the degree-corrected generator uses it for
// power-law degree targets. Inverse-CDF:
//
//	x = (H^a - u·(H^a - L^a))^(-1/a) · (L·H)  — standard bounded-Pareto form
func (r *RNG) Pareto(alpha, lo, hi float64) float64 {
	if alpha <= 0 || lo <= 0 || hi <= lo {
		panic("mathx: invalid bounded Pareto parameters")
	}
	u := r.Float64Open()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	// CDF(x) = (1 - L^a x^-a) / (1 - (L/H)^a); invert for x.
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}
