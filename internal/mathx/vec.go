package mathx

import "math"

// The vector kernels below operate on float32 storage (the paper stores π as
// 32-bit floats to halve memory) while accumulating in float64, which keeps
// the K-length reductions stable for K up to the tens of thousands used in
// the paper's experiments.

// Sum32 returns the float64 sum of a float32 slice.
func Sum32(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s
}

// Sum returns the sum of a float64 slice.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Dot32 returns the float64 dot product of two float32 slices of equal
// length.
func Dot32(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("mathx: Dot32 length mismatch")
	}
	var s float64
	for i, v := range x {
		s += float64(v) * float64(y[i])
	}
	return s
}

// Normalize32 scales x in place so it sums to one and returns the original
// sum. If the sum is zero it leaves x untouched and returns 0.
func Normalize32(x []float32) float64 {
	s := Sum32(x)
	if s == 0 {
		return 0
	}
	inv := float32(1 / s)
	for i := range x {
		x[i] *= inv
	}
	return s
}

// Normalize scales x in place so it sums to one and returns the original sum.
func Normalize(x []float64) float64 {
	s := Sum(x)
	if s == 0 {
		return 0
	}
	inv := 1 / s
	for i := range x {
		x[i] *= inv
	}
	return s
}

// Scale32 multiplies every element of x by c.
func Scale32(x []float32, c float32) {
	for i := range x {
		x[i] *= c
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Fill32 sets every element of x to v.
func Fill32(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// Copy32to64 widens src into dst; the slices must have equal length.
func Copy32to64(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("mathx: Copy32to64 length mismatch")
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// Copy64to32 narrows src into dst; the slices must have equal length.
func Copy64to32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("mathx: Copy64to32 length mismatch")
	}
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// Axpy computes y += a*x element-wise.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mathx: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// equal-length slices; used by the equivalence tests between the sequential
// and distributed engines.
func MaxAbsDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mathx: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range x {
		d := math.Abs(x[i] - y[i])
		if d > m {
			m = d
		}
	}
	return m
}

// MaxAbsDiff32 is MaxAbsDiff for float32 slices.
func MaxAbsDiff32(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("mathx: MaxAbsDiff32 length mismatch")
	}
	var m float64
	for i := range x {
		d := math.Abs(float64(x[i]) - float64(y[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Clamp bounds v into [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
