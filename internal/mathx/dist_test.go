package mathx

import (
	"math"
	"testing"
)

func sampleMoments(n int, draw func() float64) (mean, variance float64) {
	var w Welford
	for i := 0; i < n; i++ {
		w.Add(draw())
	}
	return w.Mean(), w.Var()
}

func TestGammaMoments(t *testing.T) {
	r := NewRNG(100)
	for _, shape := range []float64{0.05, 0.3, 0.9, 1.0, 2.5, 10, 100} {
		mean, variance := sampleMoments(200000, func() float64 { return r.Gamma(shape) })
		// Gamma(a,1): mean a, variance a.
		tolM := 0.03 * math.Max(shape, 0.3)
		if math.Abs(mean-shape) > tolM {
			t.Errorf("Gamma(%v) mean = %v, want %v", shape, mean, shape)
		}
		tolV := 0.08 * math.Max(shape, 0.3)
		if math.Abs(variance-shape) > tolV {
			t.Errorf("Gamma(%v) variance = %v, want %v", shape, variance, shape)
		}
	}
}

func TestGammaPositive(t *testing.T) {
	r := NewRNG(101)
	for _, shape := range []float64{0.01, 0.5, 1, 5} {
		for i := 0; i < 10000; i++ {
			if v := r.Gamma(shape); v < 0 || math.IsNaN(v) {
				t.Fatalf("Gamma(%v) produced %v", shape, v)
			}
		}
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) did not panic")
		}
	}()
	NewRNG(1).Gamma(0)
}

func TestBetaMoments(t *testing.T) {
	r := NewRNG(102)
	cases := []struct{ a, b float64 }{{1, 1}, {2, 5}, {0.5, 0.5}, {10, 1}}
	for _, c := range cases {
		mean, variance := sampleMoments(200000, func() float64 { return r.Beta(c.a, c.b) })
		wantM := c.a / (c.a + c.b)
		wantV := c.a * c.b / ((c.a + c.b) * (c.a + c.b) * (c.a + c.b + 1))
		if math.Abs(mean-wantM) > 0.01 {
			t.Errorf("Beta(%v,%v) mean = %v, want %v", c.a, c.b, mean, wantM)
		}
		if math.Abs(variance-wantV) > 0.01 {
			t.Errorf("Beta(%v,%v) variance = %v, want %v", c.a, c.b, variance, wantV)
		}
	}
}

func TestBetaInUnitInterval(t *testing.T) {
	r := NewRNG(103)
	for i := 0; i < 50000; i++ {
		v := r.Beta(0.1, 0.1)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Beta out of [0,1]: %v", v)
		}
	}
}

func TestDirichletSimplex(t *testing.T) {
	r := NewRNG(104)
	for _, k := range []int{1, 2, 10, 100} {
		out := make([]float64, k)
		for trial := 0; trial < 200; trial++ {
			r.Dirichlet(0.5, out)
			sum := 0.0
			for _, v := range out {
				if v < 0 {
					t.Fatalf("Dirichlet negative component %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("Dirichlet sum = %v, want 1", sum)
			}
		}
	}
}

func TestDirichletMean(t *testing.T) {
	// Symmetric Dirichlet has mean 1/K per component.
	r := NewRNG(105)
	const k = 5
	out := make([]float64, k)
	acc := make([]float64, k)
	const trials = 100000
	for i := 0; i < trials; i++ {
		r.Dirichlet(1.0, out)
		for j, v := range out {
			acc[j] += v
		}
	}
	for j, s := range acc {
		mean := s / trials
		if math.Abs(mean-1.0/k) > 0.005 {
			t.Errorf("component %d mean = %v, want %v", j, mean, 1.0/k)
		}
	}
}

func TestDirichletVec(t *testing.T) {
	r := NewRNG(106)
	alpha := []float64{10, 1, 1}
	out := make([]float64, 3)
	acc := make([]float64, 3)
	const trials = 50000
	for i := 0; i < trials; i++ {
		r.DirichletVec(alpha, out)
		for j, v := range out {
			acc[j] += v
		}
	}
	wantFirst := 10.0 / 12.0
	if got := acc[0] / trials; math.Abs(got-wantFirst) > 0.01 {
		t.Fatalf("asymmetric Dirichlet mean[0] = %v, want %v", got, wantFirst)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := NewRNG(107)
	w := []float64{1, 2, 3, 4}
	counts := make([]int, 4)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Categorical(w)]++
	}
	for i, c := range counts {
		want := w[i] / 10 * draws
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("Categorical bucket %d = %d, want %.0f", i, c, want)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := NewRNG(108)
	cases := []struct {
		n int
		p float64
	}{{10, 0.5}, {1000, 0.01}, {100, 0.9}, {1, 0.3}}
	for _, c := range cases {
		mean, variance := sampleMoments(100000, func() float64 { return float64(r.Binomial(c.n, c.p)) })
		wantM := float64(c.n) * c.p
		wantV := float64(c.n) * c.p * (1 - c.p)
		if math.Abs(mean-wantM) > 0.05*math.Max(wantM, 1) {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantM)
		}
		if math.Abs(variance-wantV) > 0.1*math.Max(wantV, 1) {
			t.Errorf("Binomial(%d,%v) variance = %v, want %v", c.n, c.p, variance, wantV)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := NewRNG(109)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0, p) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(n, 0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(n, 1) != n")
	}
	for i := 0; i < 1000; i++ {
		if v := r.Binomial(20, 0.3); v < 0 || v > 20 {
			t.Fatalf("Binomial out of range: %d", v)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(110)
	for _, lambda := range []float64{0.5, 3, 29, 100} {
		mean, _ := sampleMoments(100000, func() float64 { return float64(r.Poisson(lambda)) })
		if math.Abs(mean-lambda) > 0.05*math.Max(lambda, 1) {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 {
		t.Fatal("Poisson(0) != 0")
	}
}
