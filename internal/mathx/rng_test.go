package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical draws", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	var matches int
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches != 0 {
		t.Fatalf("streams 0 and 1 collided %d times", matches)
	}
	// Same (master, stream) must reproduce.
	c := NewStream(7, 0)
	d := NewStream(7, 0)
	if c.Uint64() != d.Uint64() {
		t.Fatal("NewStream not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Float64())
	}
	if math.Abs(w.Mean()-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want 0.5", w.Mean())
	}
	if math.Abs(w.Var()-1.0/12) > 0.005 {
		t.Fatalf("uniform variance = %v, want %v", w.Var(), 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 7)
	const draws = 70000
	for i := 0; i < draws; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := draws / 7
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 5*math.Sqrt(float64(want)) {
			t.Fatalf("bucket %d count %d deviates from %d", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nOne(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		if r.Uint64n(1) != 0 {
			t.Fatal("Uint64n(1) must always return 0")
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(8)
	var w Welford
	for i := 0; i < 400000; i++ {
		w.Add(r.Norm())
	}
	if math.Abs(w.Mean()) > 0.01 {
		t.Fatalf("normal mean = %v, want 0", w.Mean())
	}
	if math.Abs(w.Var()-1) > 0.02 {
		t.Fatalf("normal variance = %v, want 1", w.Var())
	}
}

func TestExpMoments(t *testing.T) {
	r := NewRNG(9)
	var w Welford
	for i := 0; i < 300000; i++ {
		w.Add(r.Exp())
	}
	if math.Abs(w.Mean()-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want 1", w.Mean())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(10)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		out := make([]int, n)
		r.Perm(out)
		seen := make([]bool, n)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(11)
	f := func(in []int) bool {
		s := append([]int(nil), in...)
		r.Shuffle(s)
		count := map[int]int{}
		for _, v := range in {
			count[v]++
		}
		for _, v := range s {
			count[v]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformity(t *testing.T) {
	// Each of the 6 permutations of 3 elements should appear ~1/6 of the
	// time; a chi-square style tolerance catches bias bugs.
	r := NewRNG(12)
	counts := map[[3]int]int{}
	const draws = 60000
	out := make([]int, 3)
	for i := 0; i < draws; i++ {
		r.Perm(out)
		counts[[3]int{out[0], out[1], out[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	want := float64(draws) / 6
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("permutation %v count %d deviates from %.0f", p, c, want)
		}
	}
}

func TestSeedStreamMatchesNewStream(t *testing.T) {
	// SeedStream is the in-place form pooled RNG values rely on; it must
	// reproduce NewStream's state exactly, including after reuse.
	var pooled RNG
	pooled.Seed(999) // dirty the state (and the Box-Muller spare) first
	pooled.Norm()
	for _, stream := range []uint64{0, 1, 7, 1 << 40} {
		fresh := NewStream(42, stream)
		pooled.SeedStream(42, stream)
		for i := 0; i < 64; i++ {
			if a, b := fresh.Uint64(), pooled.Uint64(); a != b {
				t.Fatalf("stream %d draw %d: NewStream %x != SeedStream %x", stream, i, a, b)
			}
		}
		if a, b := fresh.Norm(), pooled.Norm(); a != b {
			t.Fatalf("stream %d: Norm diverged", stream)
		}
	}
}
