package mathx

import "math"

// Digamma returns ψ(x) = d/dx ln Γ(x) for x > 0, via the recurrence
// ψ(x) = ψ(x+1) − 1/x to push the argument above 6, then the asymptotic
// series. Accuracy is ~1e-12 over the range the variational updates use
// (pseudo-counts ≥ α > 0). The SVI baseline needs ψ for the Dirichlet and
// Beta expectations E[log π] and E[log β].
func Digamma(x float64) float64 {
	if x <= 0 {
		if x == math.Trunc(x) {
			return math.NaN() // poles at non-positive integers
		}
		// Reflection: ψ(1-x) - ψ(x) = π·cot(πx).
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	var result float64
	for x < 6 {
		result -= 1 / x
		x++
	}
	// Asymptotic expansion: ψ(x) ≈ ln x − 1/(2x) − Σ B_2n / (2n x^{2n}).
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv
	result -= inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2*(1.0/132)))))
	return result
}

// DirichletExpLog fills out[k] = E_q[log π_k] = ψ(γ_k) − ψ(Σγ) for a
// Dirichlet(γ) variational factor.
func DirichletExpLog(gamma []float64, out []float64) {
	var sum float64
	for _, v := range gamma {
		sum += v
	}
	total := Digamma(sum)
	for i, v := range gamma {
		out[i] = Digamma(v) - total
	}
}

// BetaExpLogs returns (E[log β], E[log(1−β)]) for a Beta(λ1, λ0) factor.
func BetaExpLogs(lambda1, lambda0 float64) (elog, elog1m float64) {
	t := Digamma(lambda1 + lambda0)
	return Digamma(lambda1) - t, Digamma(lambda0) - t
}
