package mathx

import "testing"

func BenchmarkUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := NewRNG(2)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000000)
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := NewRNG(3)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}

func BenchmarkGamma(b *testing.B) {
	r := NewRNG(4)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Gamma(0.5)
	}
	_ = sink
}

func BenchmarkDirichlet(b *testing.B) {
	r := NewRNG(5)
	out := make([]float64, 64)
	for i := 0; i < b.N; i++ {
		r.Dirichlet(0.1, out)
	}
}

func BenchmarkNewStream(b *testing.B) {
	// Every (iteration, vertex) pair allocates a stream; this must be cheap.
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= NewStream(42, uint64(i)).Uint64()
	}
	_ = sink
}

func BenchmarkDigamma(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Digamma(0.1 + float64(i%100))
	}
	_ = sink
}

func BenchmarkSum32(b *testing.B) {
	x := make([]float32, 1024)
	for i := range x {
		x[i] = float32(i)
	}
	b.SetBytes(4096)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Sum32(x)
	}
	_ = sink
}

func BenchmarkDot32(b *testing.B) {
	x := make([]float32, 1024)
	y := make([]float32, 1024)
	for i := range x {
		x[i], y[i] = float32(i), float32(i/2)
	}
	b.SetBytes(8192)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot32(x, y)
	}
	_ = sink
}
