package mathx

import (
	"math"
	"testing"
)

const eulerMascheroni = 0.5772156649015328606

func TestDigammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, -eulerMascheroni},
		{0.5, -eulerMascheroni - 2*math.Ln2},
		{2, 1 - eulerMascheroni},
		{3, 1.5 - eulerMascheroni},
		{10, harmonic(9) - eulerMascheroni},
		{100, harmonic(99) - eulerMascheroni},
	}
	for _, c := range cases {
		if got := Digamma(c.x); math.Abs(got-c.want) > 1e-10 {
			t.Errorf("ψ(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

func TestDigammaRecurrence(t *testing.T) {
	// ψ(x+1) = ψ(x) + 1/x for arbitrary x.
	for _, x := range []float64{0.1, 0.7, 1.3, 4.9, 42.5} {
		lhs := Digamma(x + 1)
		rhs := Digamma(x) + 1/x
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("recurrence fails at %v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestDigammaMonotoneAndConcaveish(t *testing.T) {
	prev := math.Inf(-1)
	for x := 0.05; x < 50; x += 0.07 {
		v := Digamma(x)
		if v <= prev {
			t.Fatalf("ψ not increasing at %v", x)
		}
		prev = v
	}
}

func TestDigammaPoles(t *testing.T) {
	for _, x := range []float64{0, -1, -2} {
		if !math.IsNaN(Digamma(x)) {
			t.Errorf("ψ(%v) should be NaN at a pole", x)
		}
	}
	// Negative non-integer arguments work via reflection.
	// ψ(-0.5) = 2 - γ - 2 ln 2 ≈ 0.03649.
	want := 2 - eulerMascheroni - 2*math.Ln2
	if got := Digamma(-0.5); math.Abs(got-want) > 1e-10 {
		t.Errorf("ψ(-0.5) = %v, want %v", got, want)
	}
}

func TestDirichletExpLog(t *testing.T) {
	gamma := []float64{1, 2, 3}
	out := make([]float64, 3)
	DirichletExpLog(gamma, out)
	total := Digamma(6)
	for i, g := range gamma {
		want := Digamma(g) - total
		if math.Abs(out[i]-want) > 1e-12 {
			t.Fatalf("component %d = %v, want %v", i, out[i], want)
		}
	}
	// E[log π] must be negative (π < 1 almost surely).
	for i, v := range out {
		if v >= 0 {
			t.Fatalf("E[log π_%d] = %v, should be negative", i, v)
		}
	}
}

func TestBetaExpLogs(t *testing.T) {
	elog, elog1m := BetaExpLogs(3, 2)
	if elog >= 0 || elog1m >= 0 {
		t.Fatal("Beta expected logs must be negative")
	}
	// For a symmetric Beta the two must agree.
	a, b := BetaExpLogs(5, 5)
	if math.Abs(a-b) > 1e-12 {
		t.Fatalf("symmetric Beta: %v != %v", a, b)
	}
	// Concentrating mass near 1 raises E[log β] toward 0.
	hi, _ := BetaExpLogs(100, 1)
	lo, _ := BetaExpLogs(1, 100)
	if hi <= lo {
		t.Fatal("E[log β] ordering wrong")
	}
}
