package mathx

import "math"

// Gamma returns a sample from the Gamma(shape, 1) distribution using the
// Marsaglia-Tsang squeeze method, with the Ahrens boost for shape < 1.
// The scale parameter is left to the caller (multiply the result).
//
// The sampler is the workhorse of state initialisation: every φ_ak and θ_ki
// is drawn from a Gamma prior before the first iteration.
func (r *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("mathx: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a} for a < 1 (Ahrens-Dieter boost).
		u := r.Float64Open()
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Norm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a sample from the Beta(a, b) distribution via two Gammas.
func (r *RNG) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	return x / (x + y)
}

// Dirichlet fills out with a sample from the symmetric Dirichlet(alpha)
// distribution of dimension len(out). out must be non-empty.
func (r *RNG) Dirichlet(alpha float64, out []float64) {
	if len(out) == 0 {
		panic("mathx: Dirichlet with empty output")
	}
	sum := 0.0
	for i := range out {
		v := r.Gamma(alpha)
		out[i] = v
		sum += v
	}
	if sum == 0 {
		// Extremely small alpha can underflow every component; fall back
		// to a deterministic corner of the simplex.
		out[r.Intn(len(out))] = 1
		return
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}

// DirichletVec fills out with a Dirichlet(alpha[i]) sample with per-component
// concentration parameters.
func (r *RNG) DirichletVec(alpha []float64, out []float64) {
	if len(alpha) != len(out) {
		panic("mathx: DirichletVec length mismatch")
	}
	sum := 0.0
	for i := range out {
		v := r.Gamma(alpha[i])
		out[i] = v
		sum += v
	}
	if sum == 0 {
		out[r.Intn(len(out))] = 1
		return
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with positive sum.
func (r *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		panic("mathx: Categorical with non-positive weight sum")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Binomial returns a sample from Binomial(n, p) by inversion for small n·p
// and by per-trial simulation otherwise. It is used only by the synthetic
// graph generators, so simplicity beats constant-factor speed here.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 || p < 0 || p > 1 {
		panic("mathx: Binomial with invalid parameters")
	}
	if p == 0 || n == 0 {
		return 0
	}
	if p == 1 {
		return n
	}
	// Inversion by geometric skips: efficient when n·p is modest, which is
	// always the case for sparse graph generation.
	count := 0
	i := -1
	logq := math.Log1p(-p)
	for {
		step := math.Floor(math.Log(r.Float64Open()) / logq)
		if step > float64(n) { // guard against +Inf / overflow
			break
		}
		i += int(step) + 1
		if i >= n {
			break
		}
		count++
	}
	return count
}

// Poisson returns a sample from Poisson(lambda) using Knuth's method for
// small lambda and normal approximation with rejection guard for large.
func (r *RNG) Poisson(lambda float64) int {
	if lambda < 0 {
		panic("mathx: Poisson with negative lambda")
	}
	if lambda == 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// PTRS-lite: normal approximation, clamped at zero, good enough for the
	// generator workloads where lambda is a mean degree.
	for {
		v := lambda + math.Sqrt(lambda)*r.Norm() + 0.5
		if v >= 0 {
			return int(v)
		}
	}
}
