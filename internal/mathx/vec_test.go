package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSum32(t *testing.T) {
	if got := Sum32([]float32{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("Sum32 = %v, want 6.5", got)
	}
	if got := Sum32(nil); got != 0 {
		t.Fatalf("Sum32(nil) = %v, want 0", got)
	}
}

func TestDot32(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	if got := Dot32(x, y); got != 32 {
		t.Fatalf("Dot32 = %v, want 32", got)
	}
}

func TestDot32Mismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot32 length mismatch did not panic")
		}
	}()
	Dot32([]float32{1}, []float32{1, 2})
}

func TestNormalize32Property(t *testing.T) {
	f := func(raw []float32) bool {
		// Build a strictly positive vector so normalization is well-defined.
		if len(raw) == 0 {
			return true
		}
		x := make([]float32, len(raw))
		for i, v := range raw {
			x[i] = float32(math.Abs(float64(v))) + 0.01
		}
		Normalize32(x)
		return math.Abs(Sum32(x)-1) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize32ZeroSum(t *testing.T) {
	x := []float32{0, 0, 0}
	if s := Normalize32(x); s != 0 {
		t.Fatalf("Normalize32 zero vector returned sum %v", s)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero vector was modified")
		}
	}
}

func TestNormalizePreservesRatios(t *testing.T) {
	x := []float64{2, 4, 6}
	Normalize(x)
	if math.Abs(x[1]/x[0]-2) > 1e-12 || math.Abs(x[2]/x[0]-3) > 1e-12 {
		t.Fatalf("ratios not preserved: %v", x)
	}
}

func TestCopyRoundTrip(t *testing.T) {
	f := func(in []float32) bool {
		wide := make([]float64, len(in))
		Copy32to64(wide, in)
		back := make([]float32, len(in))
		Copy64to32(back, wide)
		for i := range in {
			a, b := in[i], back[i]
			if a != b && !(isNaN32(a) && isNaN32(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func isNaN32(v float32) bool { return v != v }

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v, want %v", y, want)
		}
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if d := MaxAbsDiff([]float64{1, 2, 3}, []float64{1, 5, 2}); d != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", d)
	}
	if d := MaxAbsDiff(nil, nil); d != 0 {
		t.Fatalf("MaxAbsDiff(nil,nil) = %v, want 0", d)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5}, {-1, 0, 10, 0}, {11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Fatalf("Clamp(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestFill(t *testing.T) {
	x := make([]float64, 4)
	Fill(x, 3.5)
	for _, v := range x {
		if v != 3.5 {
			t.Fatal("Fill did not set all elements")
		}
	}
	y := make([]float32, 4)
	Fill32(y, 2)
	for _, v := range y {
		if v != 2 {
			t.Fatal("Fill32 did not set all elements")
		}
	}
}

func TestScale32(t *testing.T) {
	x := []float32{1, 2, 4}
	Scale32(x, 0.5)
	want := []float32{0.5, 1, 2}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("Scale32 = %v, want %v", x, want)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{0, 0})
	want := math.Log(2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
	// Stability: huge values must not overflow.
	got = LogSumExp([]float64{1000, 1000})
	want = 1000 + math.Log(2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("LogSumExp large = %v, want %v", got, want)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(nil) should be -Inf")
	}
}

func TestLog1pExp(t *testing.T) {
	for _, x := range []float64{-50, -1, 0, 1, 50, 100} {
		got := Log1pExp(x)
		var want float64
		if x > 35 {
			want = x
		} else {
			want = math.Log1p(math.Exp(x))
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Log1pExp(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestSafeLog(t *testing.T) {
	if v := SafeLog(0); math.IsInf(v, -1) {
		t.Fatal("SafeLog(0) returned -Inf")
	}
	if v := SafeLog(math.E); math.Abs(v-1) > 1e-12 {
		t.Fatalf("SafeLog(e) = %v, want 1", v)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(v)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if Quantile(s, 0) != 1 || Quantile(s, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(s, 0.5) != 3 {
		t.Fatalf("median = %v, want 3", Quantile(s, 0.5))
	}
	if got := Quantile(s, 0.25); got != 2 {
		t.Fatalf("q25 = %v, want 2", got)
	}
}
