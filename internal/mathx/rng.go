// Package mathx provides the numeric substrate for the sampler: deterministic
// random number generation, samplers for the Gamma, Beta, Dirichlet and
// Normal distributions, small float32 vector kernels, and log-space helpers.
//
// Everything in this package is allocation-conscious: the samplers and vector
// kernels are used inside the inner loops of update_phi and update_beta,
// which execute M × |V_n| × K times per iteration.
package mathx

import (
	"math"
	"math/bits"
)

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256++ seeded through SplitMix64). Each worker thread owns one RNG,
// derived from a master seed and a stream identifier, so that parallel runs
// are reproducible regardless of goroutine scheduling.
//
// RNG is not safe for concurrent use; give each goroutine its own instance.
type RNG struct {
	s0, s1, s2, s3 uint64
	// cached spare normal variate (Box-Muller produces pairs)
	haveSpare bool
	spare     float64
}

// NewRNG returns a generator seeded from seed. Distinct seeds give
// statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// NewStream derives an independent generator for stream id from a master
// seed. It is the canonical way to hand per-vertex or per-thread RNGs out of
// a single experiment seed.
func NewStream(master uint64, stream uint64) *RNG {
	r := &RNG{}
	r.SeedStream(master, stream)
	return r
}

// SeedStream reseeds r in place to the exact state NewStream(master, stream)
// would construct — the allocation-free form for hot loops that derive one
// stream per vertex per iteration and keep a pooled RNG value per slot.
func (r *RNG) SeedStream(master uint64, stream uint64) {
	// Mix the stream id through SplitMix64 twice so that adjacent stream
	// ids land far apart in the seed space.
	r.Seed(splitmix64(&master) ^ bitsMix(stream))
}

func bitsMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seed resets the generator state from a 64-bit seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	r.haveSpare = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform sample in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float64Open returns a uniform sample in (0, 1); it never returns exactly 0,
// which keeps log() and division safe in the samplers.
func (r *RNG) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform sample from {0, 1, ..., n-1}. It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform sample from {0, ..., n-1}. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("mathx: Uint64n with zero n")
	}
	// Lemire 2019: unbiased bounded generation with 128-bit multiply.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// Norm returns a standard normal sample using the polar Box-Muller method.
func (r *RNG) Norm() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Exp returns a sample from the unit-rate exponential distribution.
func (r *RNG) Exp() float64 {
	return -math.Log(r.Float64Open())
}

// Perm fills out with a uniformly random permutation of {0, ..., len(out)-1}
// using the inside-out Fisher-Yates shuffle.
func (r *RNG) Perm(out []int) {
	for i := range out {
		j := r.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
}

// Shuffle permutes s in place.
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
