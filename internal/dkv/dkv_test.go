package dkv

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mathx"
	"repro/internal/transport"
	"repro/internal/wire"
)

// spmdStores runs body on `size` ranks, each with its own Store over a
// shared in-process fabric.
func spmdStores(t *testing.T, size, n, valBytes int, body func(s *Store) error) {
	t.Helper()
	f, err := transport.NewFabric(size)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stores := make([]*Store, size)
	for r := 0; r < size; r++ {
		st, err := New(f.Endpoint(r), n, valBytes)
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = st
	}
	// Populate every shard before any rank's body runs, so reads never race
	// with initial population (the engine uses a barrier for the same).
	for _, st := range stores {
		populate(st)
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(stores[r])
		}(r)
	}
	wg.Wait()
	for r := 0; r < size; r++ {
		stores[r].Close()
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// value builds a recognisable test value for key k.
func value(k int, valBytes int) []byte {
	v := make([]byte, valBytes)
	for i := range v {
		v[i] = byte(k*31 + i)
	}
	return v
}

func populate(s *Store) {
	lo, hi := s.OwnedRange()
	for k := lo; k < hi; k++ {
		s.WriteLocal(k, value(k, s.ValueBytes()))
	}
}

func TestPartitionCoversAllKeys(t *testing.T) {
	for _, size := range []int{1, 3, 4, 7} {
		for _, n := range []int{1, 10, 100, 101} {
			f, _ := transport.NewFabric(size)
			covered := make([]int, n)
			stores := make([]*Store, size)
			for r := 0; r < size; r++ {
				st, err := New(f.Endpoint(r), n, 4)
				if err != nil {
					t.Fatal(err)
				}
				stores[r] = st
				lo, hi := st.OwnedRange()
				for k := lo; k < hi; k++ {
					covered[k]++
				}
				for k := lo; k < hi; k++ {
					if st.Owner(k) != r {
						t.Fatalf("size=%d n=%d: Owner(%d) = %d, want %d", size, n, k, st.Owner(k), r)
					}
				}
			}
			for k, c := range covered {
				if c != 1 {
					t.Fatalf("size=%d n=%d: key %d covered %d times", size, n, k, c)
				}
			}
			for _, st := range stores {
				st.Close()
			}
			f.Close()
		}
	}
}

func TestReadBatchAcrossRanks(t *testing.T) {
	const n, vb = 40, 12
	spmdStores(t, 4, n, vb, func(s *Store) error {
		// Every rank reads every key.
		keys := make([]int32, n)
		for i := range keys {
			keys[i] = int32(i)
		}
		dst := make([]byte, n*vb)
		if err := s.ReadBatch(keys, dst); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			want := value(k, vb)
			got := dst[k*vb : (k+1)*vb]
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("key %d byte %d: got %d want %d", k, i, got[i], want[i])
				}
			}
		}
		return nil
	})
}

func TestReadBatchUnsortedDuplicateKeys(t *testing.T) {
	const n, vb = 20, 8
	spmdStores(t, 3, n, vb, func(s *Store) error {
		keys := []int32{19, 0, 7, 0, 19, 3}
		dst := make([]byte, len(keys)*vb)
		if err := s.ReadBatch(keys, dst); err != nil {
			return err
		}
		for i, k := range keys {
			want := value(int(k), vb)
			got := dst[i*vb : (i+1)*vb]
			for j := range want {
				if got[j] != want[j] {
					return fmt.Errorf("slot %d (key %d): mismatch", i, k)
				}
			}
		}
		return nil
	})
}

func TestWriteBatchVisibleToOtherRanks(t *testing.T) {
	const n, vb = 30, 8
	f, _ := transport.NewFabric(3)
	defer f.Close()
	stores := make([]*Store, 3)
	for r := 0; r < 3; r++ {
		st, err := New(f.Endpoint(r), n, vb)
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = st
		defer st.Close()
	}
	// Rank 0 writes keys it does NOT own.
	keys := []int32{15, 25, 29}
	vals := make([]byte, 0, len(keys)*vb)
	for _, k := range keys {
		vals = append(vals, value(int(k)+1000, vb)...)
	}
	if err := stores[0].WriteBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	// Rank 1 reads them back.
	dst := make([]byte, len(keys)*vb)
	if err := stores[1].ReadBatch(keys, dst); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want := value(int(k)+1000, vb)
		got := dst[i*vb : (i+1)*vb]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("key %d not updated across ranks", k)
			}
		}
	}
}

func TestAsyncPrefetchOverlap(t *testing.T) {
	const n, vb = 64, 16
	spmdStores(t, 4, n, vb, func(s *Store) error {
		// Issue two overlapping async reads (the double-buffer pattern).
		keysA := []int32{0, 17, 33, 49}
		keysB := []int32{1, 18, 34, 50}
		dstA := make([]byte, len(keysA)*vb)
		dstB := make([]byte, len(keysB)*vb)
		fa, err := s.ReadBatchAsync(keysA, dstA)
		if err != nil {
			return err
		}
		fb, err := s.ReadBatchAsync(keysB, dstB)
		if err != nil {
			return err
		}
		if err := fb.Wait(); err != nil {
			return err
		}
		if err := fa.Wait(); err != nil {
			return err
		}
		if err := fa.Wait(); err != nil { // idempotent
			return err
		}
		for i, k := range keysA {
			if dstA[i*vb] != value(int(k), vb)[0] {
				return fmt.Errorf("async A slot %d wrong", i)
			}
		}
		for i, k := range keysB {
			if dstB[i*vb] != value(int(k), vb)[0] {
				return fmt.Errorf("async B slot %d wrong", i)
			}
		}
		return nil
	})
}

func TestStatsCountLocalVsRemote(t *testing.T) {
	const n, vb = 40, 4
	spmdStores(t, 4, n, vb, func(s *Store) error {
		lo, hi := s.OwnedRange()
		// Read exactly the owned range: all local.
		keys := make([]int32, 0, hi-lo)
		for k := lo; k < hi; k++ {
			keys = append(keys, int32(k))
		}
		dst := make([]byte, len(keys)*vb)
		if err := s.ReadBatch(keys, dst); err != nil {
			return err
		}
		if s.Stats().RemoteKeys.Load() != 0 {
			return fmt.Errorf("local read counted as remote")
		}
		if got := s.Stats().LocalKeys.Load(); got != int64(len(keys)) {
			return fmt.Errorf("local keys = %d, want %d", got, len(keys))
		}
		// Read a foreign key: remote. With 4 ranks over 40 keys, the key
		// just past the owned range (wrapping) always belongs to a peer.
		foreign := int32(hi % n)
		if err := s.ReadBatch([]int32{foreign}, make([]byte, vb)); err != nil {
			return err
		}
		if s.Stats().RemoteKeys.Load() != 1 || s.Stats().Requests.Load() != 1 {
			return fmt.Errorf("remote read miscounted: %d keys %d reqs",
				s.Stats().RemoteKeys.Load(), s.Stats().Requests.Load())
		}
		return nil
	})
}

func TestRemoteFractionMatchesPaper(t *testing.T) {
	// Random reads over C ranks must touch ~(C-1)/C remote keys — the load
	// pattern the paper's Section IV-C derives.
	const n, vb, c = 1000, 4, 5
	spmdStores(t, c, n, vb, func(s *Store) error {
		rng := mathx.NewRNG(uint64(s.conn.Rank() + 1))
		keys := make([]int32, 2000)
		for i := range keys {
			keys[i] = int32(rng.Intn(n))
		}
		dst := make([]byte, len(keys)*vb)
		if err := s.ReadBatch(keys, dst); err != nil {
			return err
		}
		remote := float64(s.Stats().RemoteKeys.Load())
		total := remote + float64(s.Stats().LocalKeys.Load())
		frac := remote / total
		want := float64(c-1) / float64(c)
		if frac < want-0.05 || frac > want+0.05 {
			return fmt.Errorf("remote fraction %.3f, want ≈%.3f", frac, want)
		}
		return nil
	})
}

func TestValidation(t *testing.T) {
	f, _ := transport.NewFabric(1)
	defer f.Close()
	if _, err := New(f.Endpoint(0), 0, 4); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := New(f.Endpoint(0), 4, 0); err == nil {
		t.Fatal("valBytes=0 accepted")
	}
	s, err := New(f.Endpoint(0), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ReadBatch([]int32{0}, make([]byte, 1)); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := s.WriteBatch([]int32{0}, make([]byte, 1)); err == nil {
		t.Fatal("short values accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range key did not panic")
			}
		}()
		s.ReadBatch([]int32{99}, make([]byte, 4))
	}()
}

func TestSingleRankStore(t *testing.T) {
	// Degenerate cluster of one: everything is local, semantics unchanged.
	spmdStores(t, 1, 10, 8, func(s *Store) error {
		keys := []int32{3, 7, 1}
		dst := make([]byte, len(keys)*8)
		if err := s.ReadBatch(keys, dst); err != nil {
			return err
		}
		if s.Stats().Requests.Load() != 0 {
			return fmt.Errorf("single rank issued network requests")
		}
		newVal := value(999, 8)
		if err := s.WriteBatch([]int32{3}, newVal); err != nil {
			return err
		}
		got := make([]byte, 8)
		s.ReadLocal(3, got)
		for i := range newVal {
			if got[i] != newVal[i] {
				return fmt.Errorf("local write lost")
			}
		}
		return nil
	})
}

func TestWireHelpersUsedByProtocol(t *testing.T) {
	// Round trip a request frame exactly as the server parses it.
	keys := []int32{5, 9, 1}
	req := appendHeader(opRead, 77, uint32(len(keys)))
	req = wire.AppendInt32s(req, keys)
	if wire.Uint32At(req, 0) != opRead || wire.Uint32At(req, 4) != 77 {
		t.Fatal("header fields wrong")
	}
	if len(req) != reqHeaderBytes+4*len(keys) {
		t.Fatalf("frame is %d bytes, want %d", len(req), reqHeaderBytes+4*len(keys))
	}
	if sendNS := int64(wire.Uint64At(req, 12)); sendNS <= 0 {
		t.Fatalf("send timestamp %d, want > 0", sendNS)
	}
	out := make([]int32, 3)
	wire.Int32s(req, reqHeaderBytes, 3, out)
	for i := range keys {
		if out[i] != keys[i] {
			t.Fatal("keys corrupted")
		}
	}
}
