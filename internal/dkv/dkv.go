// Package dkv implements the distributed key-value store of Section III-B:
// the π matrix lives in the collective memory of the cluster, statically
// partitioned by key (vertex id), with fixed-size values and no concurrency
// control — the algorithm's phase structure guarantees that read sets and
// write sets never overlap within a phase.
//
// The paper implements this store directly on InfiniBand RDMA verbs, one
// RDMA read or write per operation. Here the same contract is implemented
// over a transport.Conn: a batch read is one request/response per owning
// rank, a batch write one request/ack. Local keys short-circuit to memory,
// which reproduces the paper's observation that a rank must fetch (C-1)/C of
// a random batch over the network.
package dkv

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Protocol tags. Responses carry the request id in the tag so a client can
// keep several asynchronous reads in flight (the double-buffered pipeline
// does exactly that).
const (
	tagRequest  = cluster.TagUserBase + 0x100
	tagRespBase = cluster.TagUserBase + 0x10000
	respIDMask  = 0xffff
)

// Request opcodes.
const (
	opRead  = 1
	opWrite = 2
	opStop  = 3
)

// Stats counts the traffic a rank generated as a DKV client.
type Stats struct {
	LocalKeys    atomic.Int64 // keys served from the local shard
	RemoteKeys   atomic.Int64 // keys fetched from or written to peers
	Requests     atomic.Int64 // network round trips issued
	BytesRead    atomic.Int64 // value bytes received from peers
	BytesWritten atomic.Int64 // value bytes sent to peers
}

// Store is one rank's view of the distributed store: its local shard plus a
// client for every peer's shard.
type Store struct {
	conn     transport.Conn
	n        int // total keys
	valBytes int // fixed value size
	per      int // keys per rank (last rank may own fewer)
	lo, hi   int // owned key range [lo, hi)
	shard    []byte

	reqID   atomic.Uint32
	stats   Stats
	serveWG sync.WaitGroup
}

// New creates the store and starts this rank's server goroutine. All ranks
// must call New with identical n and valBytes. The initial shard content is
// zero; populate it with WriteLocal before the first Barrier.
func New(conn transport.Conn, n, valBytes int) (*Store, error) {
	if n < 1 {
		return nil, fmt.Errorf("dkv: n = %d, need at least 1", n)
	}
	if valBytes < 1 {
		return nil, fmt.Errorf("dkv: value size %d, need at least 1", valBytes)
	}
	size := conn.Size()
	per := (n + size - 1) / size
	lo := conn.Rank() * per
	hi := lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	s := &Store{
		conn:     conn,
		n:        n,
		valBytes: valBytes,
		per:      per,
		lo:       lo,
		hi:       hi,
		shard:    make([]byte, (hi-lo)*valBytes),
	}
	s.serveWG.Add(1)
	go s.serve()
	return s, nil
}

// Owner returns the rank owning key k.
func (s *Store) Owner(k int) int { return k / s.per }

// OwnedRange returns this rank's key range [lo, hi).
func (s *Store) OwnedRange() (lo, hi int) { return s.lo, s.hi }

// ValueBytes returns the fixed value size.
func (s *Store) ValueBytes() int { return s.valBytes }

// Stats exposes the client-side traffic counters.
func (s *Store) Stats() *Stats { return &s.stats }

// localValue returns the storage slice for an owned key.
func (s *Store) localValue(k int) []byte {
	off := (k - s.lo) * s.valBytes
	return s.shard[off : off+s.valBytes]
}

// WriteLocal stores a value for an owned key without any messaging; used for
// initial population. It panics on non-owned keys.
func (s *Store) WriteLocal(k int, val []byte) {
	if k < s.lo || k >= s.hi {
		panic(fmt.Sprintf("dkv: WriteLocal key %d outside owned range [%d,%d)", k, s.lo, s.hi))
	}
	if len(val) != s.valBytes {
		panic(fmt.Sprintf("dkv: value size %d, want %d", len(val), s.valBytes))
	}
	copy(s.localValue(k), val)
}

// ReadLocal copies an owned key's value into dst; used by tests.
func (s *Store) ReadLocal(k int, dst []byte) {
	if k < s.lo || k >= s.hi {
		panic(fmt.Sprintf("dkv: ReadLocal key %d outside owned range [%d,%d)", k, s.lo, s.hi))
	}
	copy(dst, s.localValue(k))
}

// serve answers read and write requests until an opStop message arrives from
// this rank itself.
func (s *Store) serve() {
	defer s.serveWG.Done()
	for {
		from, req, err := s.conn.RecvAny(tagRequest)
		if err != nil {
			return // transport closed
		}
		op := wire.Uint32At(req, 0)
		id := wire.Uint32At(req, 4)
		count := int(wire.Uint32At(req, 8))
		switch op {
		case opStop:
			return
		case opRead:
			keys := make([]int32, count)
			wire.Int32s(req, 12, count, keys)
			resp := make([]byte, count*s.valBytes)
			for i, k := range keys {
				copy(resp[i*s.valBytes:], s.localValue(int(k)))
			}
			if err := s.conn.Send(from, tagRespBase+id, resp); err != nil {
				return
			}
		case opWrite:
			keys := make([]int32, count)
			off := wire.Int32s(req, 12, count, keys)
			for i, k := range keys {
				copy(s.localValue(int(k)), req[off+i*s.valBytes:off+(i+1)*s.valBytes])
			}
			if err := s.conn.Send(from, tagRespBase+id, nil); err != nil {
				return
			}
		}
	}
}

// Close stops the server goroutine. The underlying transport stays open.
func (s *Store) Close() error {
	req := wire.AppendUint32(nil, opStop)
	req = wire.AppendUint32(req, 0)
	req = wire.AppendUint32(req, 0)
	if err := s.conn.Send(s.conn.Rank(), tagRequest, req); err != nil {
		// Transport already closed; the server loop has exited.
		s.serveWG.Wait()
		return nil
	}
	s.serveWG.Wait()
	return nil
}

// perRankBatch groups a key batch by owning rank, remembering each key's
// position in the caller's batch so responses scatter back in order.
type perRankBatch struct {
	keys []int32
	pos  []int
}

func (s *Store) groupByOwner(keys []int32) map[int]*perRankBatch {
	groups := make(map[int]*perRankBatch)
	for i, k := range keys {
		if k < 0 || int(k) >= s.n {
			panic(fmt.Sprintf("dkv: key %d out of range [0,%d)", k, s.n))
		}
		o := s.Owner(int(k))
		g := groups[o]
		if g == nil {
			g = &perRankBatch{}
			groups[o] = g
		}
		g.keys = append(g.keys, k)
		g.pos = append(g.pos, i)
	}
	return groups
}

// Future represents an in-flight asynchronous batch read.
type Future struct {
	store   *Store
	dst     []byte
	pending []pendingResp
	err     error
	done    bool
}

type pendingResp struct {
	rank int
	id   uint32
	g    *perRankBatch
}

// Wait blocks until every response has arrived and been scattered into the
// destination buffer. It is idempotent.
func (f *Future) Wait() error {
	if f.done {
		return f.err
	}
	f.done = true
	for _, p := range f.pending {
		resp, err := f.store.conn.Recv(p.rank, tagRespBase+p.id)
		if err != nil {
			f.err = err
			continue
		}
		vb := f.store.valBytes
		for i, pos := range p.g.pos {
			copy(f.dst[pos*vb:(pos+1)*vb], resp[i*vb:(i+1)*vb])
		}
		f.store.stats.BytesRead.Add(int64(len(resp)))
	}
	return f.err
}

// ReadBatchAsync issues the reads for a key batch and returns a Future; the
// local portion is served immediately. dst must have len(keys)*ValueBytes
// bytes and must stay untouched until Wait returns. This is the prefetch
// primitive behind the paper's double-buffered pipeline.
func (s *Store) ReadBatchAsync(keys []int32, dst []byte) (*Future, error) {
	if len(dst) != len(keys)*s.valBytes {
		return nil, fmt.Errorf("dkv: dst has %d bytes, want %d", len(dst), len(keys)*s.valBytes)
	}
	f := &Future{store: s, dst: dst}
	for rank, g := range s.groupByOwner(keys) {
		if rank == s.conn.Rank() {
			for i, k := range g.keys {
				copy(dst[g.pos[i]*s.valBytes:], s.localValue(int(k)))
			}
			s.stats.LocalKeys.Add(int64(len(g.keys)))
			continue
		}
		id := s.reqID.Add(1) & respIDMask
		req := wire.AppendUint32(nil, opRead)
		req = wire.AppendUint32(req, id)
		req = wire.AppendUint32(req, uint32(len(g.keys)))
		req = wire.AppendInt32s(req, g.keys)
		if err := s.conn.Send(rank, tagRequest, req); err != nil {
			return nil, err
		}
		s.stats.RemoteKeys.Add(int64(len(g.keys)))
		s.stats.Requests.Add(1)
		f.pending = append(f.pending, pendingResp{rank: rank, id: id, g: g})
	}
	return f, nil
}

// ReadBatch is the synchronous form of ReadBatchAsync.
func (s *Store) ReadBatch(keys []int32, dst []byte) error {
	f, err := s.ReadBatchAsync(keys, dst)
	if err != nil {
		return err
	}
	return f.Wait()
}

// WriteBatch stores values (len(keys)*ValueBytes bytes, in key order) under
// their keys and waits for every owner's acknowledgement, so that a
// subsequent cluster barrier orders these writes before any later read —
// exactly the write-then-barrier-then-read discipline of the paper's phases.
func (s *Store) WriteBatch(keys []int32, values []byte) error {
	if len(values) != len(keys)*s.valBytes {
		return fmt.Errorf("dkv: values have %d bytes, want %d", len(values), len(keys)*s.valBytes)
	}
	type ack struct {
		rank int
		id   uint32
	}
	var acks []ack
	for rank, g := range s.groupByOwner(keys) {
		if rank == s.conn.Rank() {
			for i, k := range g.keys {
				copy(s.localValue(int(k)), values[g.pos[i]*s.valBytes:(g.pos[i]+1)*s.valBytes])
			}
			s.stats.LocalKeys.Add(int64(len(g.keys)))
			continue
		}
		id := s.reqID.Add(1) & respIDMask
		req := wire.AppendUint32(nil, opWrite)
		req = wire.AppendUint32(req, id)
		req = wire.AppendUint32(req, uint32(len(g.keys)))
		req = wire.AppendInt32s(req, g.keys)
		for _, pos := range g.pos {
			req = append(req, values[pos*s.valBytes:(pos+1)*s.valBytes]...)
		}
		if err := s.conn.Send(rank, tagRequest, req); err != nil {
			return err
		}
		s.stats.RemoteKeys.Add(int64(len(g.keys)))
		s.stats.Requests.Add(1)
		s.stats.BytesWritten.Add(int64(len(g.keys) * s.valBytes))
		acks = append(acks, ack{rank, id})
	}
	for _, a := range acks {
		if _, err := s.conn.Recv(a.rank, tagRespBase+a.id); err != nil {
			return err
		}
	}
	return nil
}
