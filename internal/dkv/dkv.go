// Package dkv implements the distributed key-value store of Section III-B:
// the π matrix lives in the collective memory of the cluster, statically
// partitioned by key (vertex id), with fixed-size values and no concurrency
// control — the algorithm's phase structure guarantees that read sets and
// write sets never overlap within a phase.
//
// The paper implements this store directly on InfiniBand RDMA verbs, one
// RDMA read or write per operation. Here the same contract is implemented
// over a transport.Conn: a batch read is one request/response per owning
// rank, a batch write one request/ack. Local keys short-circuit to memory,
// which reproduces the paper's observation that a rank must fetch (C-1)/C of
// a random batch over the network.
//
// # Failure semantics
//
// The server goroutine exits as soon as its transport is closed or poisoned,
// so a fabric-wide abort drains every rank's server. Misrouted keys (outside
// the serving rank's shard) no longer panic the server: the request is
// answered with a typed error response that surfaces client-side as a
// *KeyRangeError. When a Future's receive fails (abort, deadline, closed
// endpoint), Wait records the response tags that may still arrive in a
// quarantine set so they can never be matched against a later request, then
// keeps draining the remaining pending responses and reports every error it
// saw (errors.Join).
//
// # Request-id discipline
//
// Response tags are tagRespBase plus a per-peer sequence number modulo
// respWindow (2^22). Tags are demultiplexed per (sender, tag), so two peers
// reusing the same id never collide; a collision would need respWindow
// requests to a single peer to be issued while an old one is still in
// flight. The engine keeps at most a handful of futures outstanding and
// every Future must eventually be waited (ReadBatchAsync's contract), so
// wraparound is harmless — the regression test in failure_test.go pins the
// 16-bit version of this bug.
package dkv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Protocol tags. Responses carry the request id in the tag so a client can
// keep several asynchronous reads in flight (the double-buffered pipeline
// does exactly that).
const (
	tagRequest  = cluster.TagUserBase + 0x100
	tagRespBase = cluster.TagUserBase + 0x10000
	// respWindow is the per-peer request-id space; ids wrap modulo this.
	// 2^22 tags keep the response range well below transport.TagAbort while
	// making an in-flight collision require four million outstanding
	// requests to one peer.
	respWindow = 1 << 22
)

// Request opcodes.
const (
	opRead  = 1
	opWrite = 2
	opStop  = 3
)

// Response status codes (first uint32 of every response payload).
const (
	respOK        uint32 = 0
	respKeyRange  uint32 = 1
	respMalformed uint32 = 2
)

// reqHeaderBytes is the fixed [op u32][id u32][count u32][send-ns u64]
// request prefix. The send timestamp (obs.TraceNow at request build) lets a
// tracing server split service time into queue wait (send → pickup) versus
// handler + reply time — the clock is process-wide monotonic, so the two
// ends are directly comparable (see internal/obs/span.go).
const reqHeaderBytes = 20

// appendHeader builds the request prefix. The timestamp is stamped
// unconditionally — it is one time.Since against the package epoch, and
// stamping it always means a tracing SERVER attributes queue wait correctly
// even when the requesting rank itself has tracing off.
func appendHeader(op, id, count uint32) []byte {
	b := wire.AppendUint32(make([]byte, 0, reqHeaderBytes), op)
	b = wire.AppendUint32(b, id)
	b = wire.AppendUint32(b, count)
	return wire.AppendUint64(b, uint64(obs.TraceNow()))
}

// KeyRangeError is the typed error a DKV server returns when a request
// names a key outside the shard it owns — a misrouted key is a protocol bug
// on the client, and the server must survive it rather than panic.
type KeyRangeError struct {
	Rank int   // serving rank that rejected the request
	Key  int32 // offending key
}

// Error implements error.
func (e *KeyRangeError) Error() string {
	return fmt.Sprintf("dkv: rank %d rejected key %d outside its owned shard", e.Rank, e.Key)
}

// Stats is the traffic a rank generated as a DKV client. The fields are
// handles into the store's telemetry registry (the canonical dkv.* counter
// names of internal/obs), so the same values the engine's event stream and
// monitor endpoint export are readable here without any extra plumbing.
type Stats struct {
	LocalKeys    *obs.Counter // keys served from the local shard
	RemoteKeys   *obs.Counter // keys fetched from or written to peers
	Requests     *obs.Counter // network round trips issued
	BytesRead    *obs.Counter // value bytes received from peers
	BytesWritten *obs.Counter // value bytes sent to peers
}

// newStats registers the client traffic counters in a registry.
func newStats(reg *obs.Registry) *Stats {
	return &Stats{
		LocalKeys:    reg.Counter(obs.CtrDKVLocalKeys),
		RemoteKeys:   reg.Counter(obs.CtrDKVRemoteKeys),
		Requests:     reg.Counter(obs.CtrDKVRequests),
		BytesRead:    reg.Counter(obs.CtrDKVBytesRead),
		BytesWritten: reg.Counter(obs.CtrDKVBytesWritten),
	}
}

// Store is one rank's view of the distributed store: its local shard plus a
// client for every peer's shard.
type Store struct {
	conn     transport.Conn
	n        int // total keys
	valBytes int // fixed value size
	per      int // keys per rank (last rank may own fewer)
	lo, hi   int // owned key range [lo, hi)
	shard    []byte

	// reqMu guards the per-peer request-id sequences and the quarantine set
	// of tags whose responses were abandoned by a failed Wait.
	reqMu sync.Mutex
	seq   []uint32
	lost  map[uint64]struct{}

	stats   *Stats
	serveWG sync.WaitGroup

	// tracer is atomic because the server goroutine is already running when
	// SetTracer attaches (the store starts serving at New; the engine wires
	// tracing afterwards). Nil while tracing is off.
	tracer atomic.Pointer[obs.Tracer]
}

// SetTracer turns on span emission for both sides of the protocol: client
// response waits (dkv.wait.*, Peer = serving rank) and the server request
// loop (dkv.serve.*, Peer = REQUESTING rank, with queue/handle/reply child
// spans) — the server side is what finally attributes DKV service time to
// the rank that asked for it.
func (s *Store) SetTracer(tr *obs.Tracer) {
	if tr != nil {
		s.tracer.Store(tr)
	}
}

// New creates the store and starts this rank's server goroutine. All ranks
// must call New with identical n and valBytes. The initial shard content is
// zero; populate it with WriteLocal before the first Barrier. Traffic
// counters land in a private registry; use NewWithRegistry to share the
// run's registry.
func New(conn transport.Conn, n, valBytes int) (*Store, error) {
	return NewWithRegistry(conn, n, valBytes, nil)
}

// NewWithRegistry is New with the client traffic counters registered in reg
// (nil falls back to a private registry), so the engine's telemetry layer
// sees DKV traffic without any result-struct plumbing.
func NewWithRegistry(conn transport.Conn, n, valBytes int, reg *obs.Registry) (*Store, error) {
	if n < 1 {
		return nil, fmt.Errorf("dkv: n = %d, need at least 1", n)
	}
	if valBytes < 1 {
		return nil, fmt.Errorf("dkv: value size %d, need at least 1", valBytes)
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	size := conn.Size()
	per := (n + size - 1) / size
	lo := conn.Rank() * per
	hi := lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	s := &Store{
		conn:     conn,
		n:        n,
		valBytes: valBytes,
		per:      per,
		lo:       lo,
		hi:       hi,
		shard:    make([]byte, (hi-lo)*valBytes),
		seq:      make([]uint32, size),
		lost:     make(map[uint64]struct{}),
		stats:    newStats(reg),
	}
	s.serveWG.Add(1)
	go s.serve()
	return s, nil
}

// Owner returns the rank owning key k.
func (s *Store) Owner(k int) int { return k / s.per }

// OwnedRange returns this rank's key range [lo, hi).
func (s *Store) OwnedRange() (lo, hi int) { return s.lo, s.hi }

// ValueBytes returns the fixed value size.
func (s *Store) ValueBytes() int { return s.valBytes }

// Stats exposes the client-side traffic counters.
func (s *Store) Stats() *Stats { return s.stats }

// localValue returns the storage slice for an owned key.
func (s *Store) localValue(k int) []byte {
	off := (k - s.lo) * s.valBytes
	return s.shard[off : off+s.valBytes]
}

// ownsKey reports whether k falls inside this rank's shard.
func (s *Store) ownsKey(k int32) bool { return int(k) >= s.lo && int(k) < s.hi }

// WriteLocal stores a value for an owned key without any messaging; used for
// initial population. It panics on non-owned keys.
func (s *Store) WriteLocal(k int, val []byte) {
	if k < s.lo || k >= s.hi {
		panic(fmt.Sprintf("dkv: WriteLocal key %d outside owned range [%d,%d)", k, s.lo, s.hi))
	}
	if len(val) != s.valBytes {
		panic(fmt.Sprintf("dkv: value size %d, want %d", len(val), s.valBytes))
	}
	copy(s.localValue(k), val)
}

// ReadLocal copies an owned key's value into dst; used by tests.
func (s *Store) ReadLocal(k int, dst []byte) {
	if k < s.lo || k >= s.hi {
		panic(fmt.Sprintf("dkv: ReadLocal key %d outside owned range [%d,%d)", k, s.lo, s.hi))
	}
	copy(dst, s.localValue(k))
}

// errResp encodes an error response: [status][offending key].
func errResp(status uint32, key int32) []byte {
	b := wire.AppendUint32(nil, status)
	return wire.AppendUint32(b, uint32(key))
}

// serve answers read and write requests until an opStop message arrives from
// this rank itself, the transport closes, or the fabric is poisoned — the
// latter two drain the server so a dying cluster never leaves the goroutine
// behind.
func (s *Store) serve() {
	defer s.serveWG.Done()
	for {
		from, req, err := s.conn.RecvAny(tagRequest)
		if err != nil {
			return // transport closed or poisoned
		}
		tr := s.tracer.Load()
		var pickup int64
		if tr != nil {
			pickup = obs.TraceNow()
		}
		if len(req) < reqHeaderBytes {
			// No request id to respond under; drop the frame.
			continue
		}
		op := wire.Uint32At(req, 0)
		id := wire.Uint32At(req, 4)
		count := int(wire.Uint32At(req, 8))
		sendNS := int64(wire.Uint64At(req, 12))
		switch op {
		case opStop:
			return
		case opRead:
			if count < 0 || len(req) < reqHeaderBytes+4*count {
				if err := s.conn.Send(from, tagRespBase+id, errResp(respMalformed, -1)); err != nil {
					return
				}
				continue
			}
			keys := make([]int32, count)
			wire.Int32s(req, reqHeaderBytes, count, keys)
			if bad, ok := s.findMisroutedKey(keys); !ok {
				if err := s.conn.Send(from, tagRespBase+id, errResp(respKeyRange, bad)); err != nil {
					return
				}
				continue
			}
			resp := make([]byte, 4+count*s.valBytes)
			// status respOK is the zero value; values start at offset 4.
			for i, k := range keys {
				copy(resp[4+i*s.valBytes:], s.localValue(int(k)))
			}
			var handled int64
			if tr != nil {
				handled = obs.TraceNow()
			}
			if err := s.conn.Send(from, tagRespBase+id, resp); err != nil {
				return
			}
			if tr != nil {
				s.emitServeSpans(tr, "dkv.serve.read", from, id, sendNS, pickup, handled, obs.TraceNow())
			}
		case opWrite:
			if count < 0 || len(req) < reqHeaderBytes+count*(4+s.valBytes) {
				if err := s.conn.Send(from, tagRespBase+id, errResp(respMalformed, -1)); err != nil {
					return
				}
				continue
			}
			keys := make([]int32, count)
			off := wire.Int32s(req, reqHeaderBytes, count, keys)
			// Validate before applying so a bad batch is all-or-nothing.
			if bad, ok := s.findMisroutedKey(keys); !ok {
				if err := s.conn.Send(from, tagRespBase+id, errResp(respKeyRange, bad)); err != nil {
					return
				}
				continue
			}
			for i, k := range keys {
				copy(s.localValue(int(k)), req[off+i*s.valBytes:off+(i+1)*s.valBytes])
			}
			var handled int64
			if tr != nil {
				handled = obs.TraceNow()
			}
			if err := s.conn.Send(from, tagRespBase+id, wire.AppendUint32(nil, respOK)); err != nil {
				return
			}
			if tr != nil {
				s.emitServeSpans(tr, "dkv.serve.write", from, id, sendNS, pickup, handled, obs.TraceNow())
			}
		}
	}
}

// emitServeSpans records one served request as a parentless root span on the
// DKV server track plus three children splitting where the time went:
//
//	queue  — request send (client clock) to server pickup: backlog wait
//	handle — pickup to response built: shard copy / apply
//	reply  — response Send call: wire back-pressure
//
// Every span carries Peer = the REQUESTING rank, so trace viewers and the
// critical-path analyzer attribute this server's busy time to whoever asked.
// A zero or future sendNS (client clock unset or skewed) clamps queue to
// empty rather than fabricating negative time.
func (s *Store) emitServeSpans(tr *obs.Tracer, name string, from int, id uint32, sendNS, pickup, handled, done int64) {
	if sendNS <= 0 || sendNS > pickup {
		sendNS = pickup
	}
	root := tr.NewID()
	tr.Emit(obs.Span{
		ID: root, Name: name, Cat: obs.CatDKVServe,
		Track: obs.TrackDKVServer, Peer: from, Iter: -1, Tag: id,
		StartNS: sendNS, DurNS: done - sendNS,
	})
	tr.Emit(obs.Span{
		ID: tr.NewID(), Parent: root, Name: "queue", Cat: obs.CatDKVServe,
		Track: obs.TrackDKVServer, Peer: from, Iter: -1, Tag: id,
		StartNS: sendNS, DurNS: pickup - sendNS,
	})
	tr.Emit(obs.Span{
		ID: tr.NewID(), Parent: root, Name: "handle", Cat: obs.CatDKVServe,
		Track: obs.TrackDKVServer, Peer: from, Iter: -1, Tag: id,
		StartNS: pickup, DurNS: handled - pickup,
	})
	tr.Emit(obs.Span{
		ID: tr.NewID(), Parent: root, Name: "reply", Cat: obs.CatDKVServe,
		Track: obs.TrackDKVServer, Peer: from, Iter: -1, Tag: id,
		StartNS: handled, DurNS: done - handled,
	})
}

// findMisroutedKey returns (key, false) for the first key outside this
// rank's shard, or (0, true) when every key is owned.
func (s *Store) findMisroutedKey(keys []int32) (int32, bool) {
	for _, k := range keys {
		if !s.ownsKey(k) {
			return k, false
		}
	}
	return 0, true
}

// Close stops the server goroutine. The underlying transport stays open.
func (s *Store) Close() error {
	req := appendHeader(opStop, 0, 0)
	if err := s.conn.Send(s.conn.Rank(), tagRequest, req); err != nil {
		// Transport already closed or poisoned; the server loop has exited.
		s.serveWG.Wait()
		return nil
	}
	s.serveWG.Wait()
	return nil
}

// nextID allocates the next request id for a peer, skipping ids whose
// responses were abandoned by a failed Wait — a quarantined tag may still
// receive its stale response and must never be reused.
func (s *Store) nextID(rank int) uint32 {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	for {
		s.seq[rank] = (s.seq[rank] + 1) % respWindow
		id := s.seq[rank]
		if _, quarantined := s.lost[lostKey(rank, id)]; !quarantined {
			return id
		}
	}
}

// noteLost quarantines a (rank, id) pair whose response may still arrive.
func (s *Store) noteLost(rank int, id uint32) {
	s.reqMu.Lock()
	s.lost[lostKey(rank, id)] = struct{}{}
	s.reqMu.Unlock()
}

func lostKey(rank int, id uint32) uint64 {
	return uint64(rank)<<32 | uint64(id)
}

// decodeResp validates a response's status header and returns its payload.
func decodeResp(rank int, resp []byte, wantBytes int) ([]byte, error) {
	if len(resp) < 4 {
		return nil, fmt.Errorf("dkv: short response (%d bytes) from rank %d", len(resp), rank)
	}
	switch status := wire.Uint32At(resp, 0); status {
	case respOK:
		if len(resp)-4 != wantBytes {
			return nil, fmt.Errorf("dkv: response from rank %d has %d payload bytes, want %d",
				rank, len(resp)-4, wantBytes)
		}
		return resp[4:], nil
	case respKeyRange:
		if len(resp) < 8 {
			return nil, fmt.Errorf("dkv: truncated key-range error from rank %d", rank)
		}
		return nil, &KeyRangeError{Rank: rank, Key: int32(wire.Uint32At(resp, 4))}
	case respMalformed:
		return nil, fmt.Errorf("dkv: rank %d rejected malformed request", rank)
	default:
		return nil, fmt.Errorf("dkv: unknown response status %d from rank %d", status, rank)
	}
}

// perRankBatch groups a key batch by owning rank, remembering each key's
// position in the caller's batch so responses scatter back in order.
type perRankBatch struct {
	keys []int32
	pos  []int
}

func (s *Store) groupByOwner(keys []int32) map[int]*perRankBatch {
	groups := make(map[int]*perRankBatch)
	for i, k := range keys {
		if k < 0 || int(k) >= s.n {
			panic(fmt.Sprintf("dkv: key %d out of range [0,%d)", k, s.n))
		}
		o := s.Owner(int(k))
		g := groups[o]
		if g == nil {
			g = &perRankBatch{}
			groups[o] = g
		}
		g.keys = append(g.keys, k)
		g.pos = append(g.pos, i)
	}
	return groups
}

// Future represents an in-flight asynchronous batch read.
type Future struct {
	store   *Store
	dst     []byte
	pending []pendingResp
	err     error
	done    bool
}

type pendingResp struct {
	rank int
	id   uint32
	g    *perRankBatch
}

// Wait blocks until every response has arrived and been scattered into the
// destination buffer. It is idempotent. On failure it still attempts every
// remaining pending response — so one slow error does not strand the others
// in the transport queues — quarantines the tags of responses that never
// came, and returns every distinct error it observed (errors.Join).
func (f *Future) Wait() error {
	if f.done {
		return f.err
	}
	f.done = true
	tr := f.store.tracer.Load()
	for _, p := range f.pending {
		var waitStart int64
		if tr != nil {
			waitStart = obs.TraceNow()
		}
		resp, err := f.store.conn.Recv(p.rank, tagRespBase+p.id)
		if tr != nil {
			// Parent is the tracer's current scope — the engine stage running
			// when the response landed. Wait may run on the pipelined loader
			// goroutine, so this is a best-effort parent; Peer (the serving
			// rank) is what the critical-path walk needs and is exact.
			tr.Emit(obs.Span{
				ID: tr.NewID(), Parent: tr.Scope(), Name: "dkv.wait.read",
				Cat: obs.CatDKVWait, Track: obs.TrackDKVClient,
				Peer: p.rank, Iter: tr.Iter(), Tag: p.id,
				StartNS: waitStart, DurNS: obs.TraceNow() - waitStart,
			})
		}
		if err != nil {
			// The response may still arrive later; make sure its tag can
			// never be matched against a future request.
			f.store.noteLost(p.rank, p.id)
			f.err = errors.Join(f.err, err)
			continue
		}
		vb := f.store.valBytes
		payload, err := decodeResp(p.rank, resp, len(p.g.keys)*vb)
		if err != nil {
			f.err = errors.Join(f.err, err)
			continue
		}
		for i, pos := range p.g.pos {
			copy(f.dst[pos*vb:(pos+1)*vb], payload[i*vb:(i+1)*vb])
		}
		f.store.stats.BytesRead.Add(int64(len(payload)))
	}
	return f.err
}

// ReadBatchAsync issues the reads for a key batch and returns a Future; the
// local portion is served immediately. dst must have len(keys)*ValueBytes
// bytes and must stay untouched until Wait returns. Every Future must
// eventually be waited, even after an error — Wait is what keeps the
// response tag space clean. This is the prefetch primitive behind the
// paper's double-buffered pipeline.
func (s *Store) ReadBatchAsync(keys []int32, dst []byte) (*Future, error) {
	if len(dst) != len(keys)*s.valBytes {
		return nil, fmt.Errorf("dkv: dst has %d bytes, want %d", len(dst), len(keys)*s.valBytes)
	}
	f := &Future{store: s, dst: dst}
	for rank, g := range s.groupByOwner(keys) {
		if rank == s.conn.Rank() {
			for i, k := range g.keys {
				copy(dst[g.pos[i]*s.valBytes:], s.localValue(int(k)))
			}
			s.stats.LocalKeys.Add(int64(len(g.keys)))
			continue
		}
		id := s.nextID(rank)
		req := appendHeader(opRead, id, uint32(len(g.keys)))
		req = wire.AppendInt32s(req, g.keys)
		if err := s.conn.Send(rank, tagRequest, req); err != nil {
			// Sends that never left cannot produce responses; only the
			// already-issued pendings need draining, which Wait does.
			f.err = err
			f.done = true
			for _, p := range f.pending {
				s.noteLost(p.rank, p.id)
			}
			return nil, err
		}
		s.stats.RemoteKeys.Add(int64(len(g.keys)))
		s.stats.Requests.Add(1)
		f.pending = append(f.pending, pendingResp{rank: rank, id: id, g: g})
	}
	return f, nil
}

// ReadBatch is the synchronous form of ReadBatchAsync.
func (s *Store) ReadBatch(keys []int32, dst []byte) error {
	f, err := s.ReadBatchAsync(keys, dst)
	if err != nil {
		return err
	}
	return f.Wait()
}

// WriteBatch stores values (len(keys)*ValueBytes bytes, in key order) under
// their keys and waits for every owner's acknowledgement, so that a
// subsequent cluster barrier orders these writes before any later read —
// exactly the write-then-barrier-then-read discipline of the paper's phases.
// Like Future.Wait, a failed acknowledgement does not strand the others:
// every ack is awaited, missing ones are quarantined, and all errors are
// reported.
func (s *Store) WriteBatch(keys []int32, values []byte) error {
	if len(values) != len(keys)*s.valBytes {
		return fmt.Errorf("dkv: values have %d bytes, want %d", len(values), len(keys)*s.valBytes)
	}
	type ack struct {
		rank int
		id   uint32
	}
	var acks []ack
	for rank, g := range s.groupByOwner(keys) {
		if rank == s.conn.Rank() {
			for i, k := range g.keys {
				copy(s.localValue(int(k)), values[g.pos[i]*s.valBytes:(g.pos[i]+1)*s.valBytes])
			}
			s.stats.LocalKeys.Add(int64(len(g.keys)))
			continue
		}
		id := s.nextID(rank)
		req := appendHeader(opWrite, id, uint32(len(g.keys)))
		req = wire.AppendInt32s(req, g.keys)
		for _, pos := range g.pos {
			req = append(req, values[pos*s.valBytes:(pos+1)*s.valBytes]...)
		}
		if err := s.conn.Send(rank, tagRequest, req); err != nil {
			for _, a := range acks {
				s.noteLost(a.rank, a.id)
			}
			return err
		}
		s.stats.RemoteKeys.Add(int64(len(g.keys)))
		s.stats.Requests.Add(1)
		s.stats.BytesWritten.Add(int64(len(g.keys) * s.valBytes))
		acks = append(acks, ack{rank, id})
	}
	var errAll error
	tr := s.tracer.Load()
	for _, a := range acks {
		var waitStart int64
		if tr != nil {
			waitStart = obs.TraceNow()
		}
		resp, err := s.conn.Recv(a.rank, tagRespBase+a.id)
		if tr != nil {
			tr.Emit(obs.Span{
				ID: tr.NewID(), Parent: tr.Scope(), Name: "dkv.wait.ack",
				Cat: obs.CatDKVWait, Track: obs.TrackDKVClient,
				Peer: a.rank, Iter: tr.Iter(), Tag: a.id,
				StartNS: waitStart, DurNS: obs.TraceNow() - waitStart,
			})
		}
		if err != nil {
			s.noteLost(a.rank, a.id)
			errAll = errors.Join(errAll, err)
			continue
		}
		if _, err := decodeResp(a.rank, resp, 0); err != nil {
			errAll = errors.Join(errAll, err)
		}
	}
	return errAll
}
