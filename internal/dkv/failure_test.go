package dkv

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// pair2 builds the standard two-rank fixture: 10 keys, 4-byte values, so
// rank 0 owns [0,5) and rank 1 owns [5,10).
func pair2(t *testing.T) (*transport.Fabric, *Store, *Store) {
	t.Helper()
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	s0, err := New(f.Endpoint(0), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(f.Endpoint(1), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s0.Close(); s1.Close() })
	return f, s0, s1
}

// TestRequestIDWraparoundRegression pins the 16-bit request-id bug: the old
// protocol allocated ids as reqID.Add(1) & 0xffff from one global counter,
// so after 65,536 requests the tag of a still-pending (here: abandoned)
// future was reused and its stale queued response was silently matched to
// the new request — state corruption, not an error. The sequence below
// reproduces exactly that history by advancing the sequence counter to
// 0x10000 (the value after 2^16 requests); under the old masking the next id
// collides with the abandoned future's, under the per-peer 22-bit window it
// does not, and the read must observe the freshly written value.
func TestRequestIDWraparoundRegression(t *testing.T) {
	_, s0, s1 := pair2(t)
	s1.WriteLocal(9, []byte{1, 1, 1, 1})

	// An abandoned in-flight read of key 9: its response (value 1,1,1,1)
	// stays queued under tag tagRespBase+1 at rank 0, never consumed.
	staleDst := make([]byte, 4)
	if _, err := s0.ReadBatchAsync([]int32{9}, staleDst); err != nil {
		t.Fatal(err)
	}

	// Fence: the server answers requests in order, so once this completed
	// read returns, the abandoned response above is already queued.
	fence := make([]byte, 4)
	if err := s0.ReadBatch([]int32{9}, fence); err != nil {
		t.Fatal(err)
	}

	// Fast-forward the id sequence to where it stands after 2^16 requests.
	// (Old code equivalent: reqID.Store(0x10000) — the next allocated id,
	// 0x10001 & 0xffff, equals the abandoned future's id 1.)
	s0.reqMu.Lock()
	s0.seq[1] = 0x10000
	s0.reqMu.Unlock()

	s1.WriteLocal(9, []byte{2, 2, 2, 2})
	got := make([]byte, 4)
	if err := s0.ReadBatch([]int32{9}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{2, 2, 2, 2}) {
		t.Fatalf("read after id wraparound returned stale response %v, want [2 2 2 2]", got)
	}
}

// TestMisroutedKeyReturnsTypedError: a request naming a key outside the
// serving rank's shard must produce a typed error response, not panic the
// server goroutine (which previously took down the whole process).
func TestMisroutedKeyReturnsTypedError(t *testing.T) {
	f, s0, s1 := pair2(t)
	s1.WriteLocal(9, []byte{7, 7, 7, 7})
	conn0 := f.Endpoint(0)

	// Key 2 is owned by rank 0; route it to rank 1 anyway (a client-side
	// routing bug this rank must survive).
	req := appendHeader(opRead, 99, 1)
	req = wire.AppendInt32s(req, []int32{2})
	if err := conn0.Send(1, tagRequest, req); err != nil {
		t.Fatal(err)
	}
	resp, err := conn0.Recv(1, tagRespBase+99)
	if err != nil {
		t.Fatal(err)
	}
	_, err = decodeResp(1, resp, 4)
	var kre *KeyRangeError
	if !errors.As(err, &kre) {
		t.Fatalf("misrouted read returned %v, want KeyRangeError", err)
	}
	if kre.Rank != 1 || kre.Key != 2 {
		t.Fatalf("KeyRangeError = rank %d key %d, want rank 1 key 2", kre.Rank, kre.Key)
	}

	// A misrouted write must be rejected all-or-nothing as well.
	req = appendHeader(opWrite, 100, 2)
	req = wire.AppendInt32s(req, []int32{9, 2}) // 9 owned, 2 misrouted
	req = append(req, 8, 8, 8, 8, 9, 9, 9, 9)
	if err := conn0.Send(1, tagRequest, req); err != nil {
		t.Fatal(err)
	}
	resp, err = conn0.Recv(1, tagRespBase+100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = decodeResp(1, resp, 0); !errors.As(err, &kre) {
		t.Fatalf("misrouted write returned %v, want KeyRangeError", err)
	}

	// The server survived both and still serves; the rejected write left
	// the owned key untouched.
	got := make([]byte, 4)
	if err := s0.ReadBatch([]int32{9}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{7, 7, 7, 7}) {
		t.Fatalf("key 9 = %v after rejected write, want [7 7 7 7]", got)
	}
}

// TestMalformedRequestReturnsError: a frame whose count field overruns the
// payload must be answered with an error response, not crash the server.
func TestMalformedRequestReturnsError(t *testing.T) {
	f, s0, _ := pair2(t)
	conn0 := f.Endpoint(0)
	req := appendHeader(opRead, 5, 1000) // claims 1000 keys, carries none
	if err := conn0.Send(1, tagRequest, req); err != nil {
		t.Fatal(err)
	}
	resp, err := conn0.Recv(1, tagRespBase+5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeResp(1, resp, 0); err == nil {
		t.Fatal("malformed request was acknowledged as OK")
	}
	// Server still alive.
	if err := s0.ReadBatch([]int32{9}, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
}

// TestWaitDrainsAndQuarantinesOnError: when one pending response never
// arrives, Wait must (a) still deliver the responses that did arrive,
// (b) report the failure, and (c) quarantine the missing tag so it can
// never be matched to a later request.
func TestWaitDrainsAndQuarantinesOnError(t *testing.T) {
	f, err := transport.NewFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Rank 0's client drops every request it sends to rank 1, so rank 1
	// never responds; rank 2 responds normally.
	fc := &transport.FaultConn{
		Conn:     f.Endpoint(0),
		DropSend: func(to int, tag uint32) bool { return to == 1 && tag == tagRequest },
	}
	// 12 keys over 3 ranks: rank r owns [4r, 4r+4).
	s0, err := New(fc, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(f.Endpoint(1), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(f.Endpoint(2), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s0.Close(); s1.Close(); s2.Close() }()
	s2.WriteLocal(8, []byte{42, 42, 42, 42})

	// Key 5 → rank 1 (request dropped), key 8 → rank 2 (healthy).
	dst := make([]byte, 8)
	fut, err := s0.ReadBatchAsync([]int32{5, 8}, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Bound the wait: rank 1's response will never come.
	fc.SetDeadline(time.Now().Add(250 * time.Millisecond))
	werr := fut.Wait()
	fc.SetDeadline(time.Time{})
	if !errors.Is(werr, transport.ErrDeadlineExceeded) {
		t.Fatalf("Wait error = %v, want to include ErrDeadlineExceeded", werr)
	}
	// The healthy rank's response was still scattered into dst.
	if !bytes.Equal(dst[4:], []byte{42, 42, 42, 42}) {
		t.Fatalf("healthy response not delivered: dst = %v", dst)
	}
	// The missing tag is quarantined and id allocation skips it.
	s0.reqMu.Lock()
	nLost := len(s0.lost)
	s0.reqMu.Unlock()
	if nLost != 1 {
		t.Fatalf("%d quarantined tags, want 1", nLost)
	}
	s0.reqMu.Lock()
	s0.seq[1] = 0 // rewind so the next allocation would land on the lost id
	s0.reqMu.Unlock()
	if id := s0.nextID(1); id != 2 {
		t.Fatalf("nextID reused quarantined id: got %d, want 2", id)
	}
}

// TestServerDrainsOnPoison: a fabric-wide abort must terminate the server
// goroutine so Close returns promptly — the "drain cleanly" half of the
// abort protocol.
func TestServerDrainsOnPoison(t *testing.T) {
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s0, err := New(f.Endpoint(0), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f.Endpoint(1), 10, 4); err != nil {
		t.Fatal(err)
	}
	f.Endpoint(1).Poison(errors.New("rank 1 died"))

	done := make(chan struct{})
	go func() {
		s0.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after fabric poison")
	}

	// Client calls on the poisoned store fail with the abort, not hang.
	err = func() error {
		errCh := make(chan error, 1)
		go func() { errCh <- s0.ReadBatch([]int32{9}, make([]byte, 4)) }()
		select {
		case e := <-errCh:
			return e
		case <-time.After(5 * time.Second):
			t.Fatal("ReadBatch hung on poisoned fabric")
			return nil
		}
	}()
	if _, ok := transport.AsAbort(err); !ok {
		t.Fatalf("ReadBatch on poisoned fabric returned %v, want AbortError", err)
	}
}

// TestReadAfterFabricCloseErrors: a DKV client must surface transport
// failure as an error rather than hanging — the behavior the distributed
// engine's error paths rely on.
func TestReadAfterFabricCloseErrors(t *testing.T) {
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := New(f.Endpoint(0), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(f.Endpoint(1), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = s1
	f.Close()

	done := make(chan error, 1)
	go func() {
		// Key 9 is owned by rank 1; the remote read must fail fast.
		done <- s0.ReadBatch([]int32{9}, make([]byte, 4))
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read over closed fabric returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read over closed fabric hung")
	}
}

// TestWriteAfterFabricCloseErrors mirrors the read case for writes.
func TestWriteAfterFabricCloseErrors(t *testing.T) {
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := New(f.Endpoint(0), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f.Endpoint(1), 10, 4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	done := make(chan error, 1)
	go func() {
		done <- s0.WriteBatch([]int32{9}, make([]byte, 4))
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write over closed fabric returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write over closed fabric hung")
	}
}

// TestCloseIsIdempotentAndUnblocksServer: Close must terminate the server
// goroutine even when called twice or after the fabric died.
func TestCloseIsIdempotentAndUnblocksServer(t *testing.T) {
	f, err := transport.NewFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(f.Endpoint(0), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err) // second close: server already gone, must not hang
	}
	f.Close()

	// Close after the fabric is gone must also return promptly.
	f2, _ := transport.NewFabric(1)
	s2, err := New(f2.Endpoint(0), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
	done := make(chan struct{})
	go func() {
		s2.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after fabric shutdown")
	}
}
