package dkv

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// TestReadAfterFabricCloseErrors: a DKV client must surface transport
// failure as an error rather than hanging — the behavior the distributed
// engine's error paths rely on.
func TestReadAfterFabricCloseErrors(t *testing.T) {
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := New(f.Endpoint(0), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(f.Endpoint(1), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	_ = s1
	f.Close()

	done := make(chan error, 1)
	go func() {
		// Key 9 is owned by rank 1; the remote read must fail fast.
		done <- s0.ReadBatch([]int32{9}, make([]byte, 4))
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read over closed fabric returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read over closed fabric hung")
	}
}

// TestWriteAfterFabricCloseErrors mirrors the read case for writes.
func TestWriteAfterFabricCloseErrors(t *testing.T) {
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := New(f.Endpoint(0), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f.Endpoint(1), 10, 4); err != nil {
		t.Fatal(err)
	}
	f.Close()

	done := make(chan error, 1)
	go func() {
		done <- s0.WriteBatch([]int32{9}, make([]byte, 4))
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write over closed fabric returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write over closed fabric hung")
	}
}

// TestCloseIsIdempotentAndUnblocksServer: Close must terminate the server
// goroutine even when called twice or after the fabric died.
func TestCloseIsIdempotentAndUnblocksServer(t *testing.T) {
	f, err := transport.NewFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(f.Endpoint(0), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err) // second close: server already gone, must not hang
	}
	f.Close()

	// Close after the fabric is gone must also return promptly.
	f2, _ := transport.NewFabric(1)
	s2, err := New(f2.Endpoint(0), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
	done := make(chan struct{})
	go func() {
		s2.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after fabric shutdown")
	}
}
