package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

// TestFitsAMMSBGeneratedData trains on a graph truly drawn from the a-MMSB
// generative process and checks the fitted model approaches the held-out
// likelihood of the TRUE generating parameters — the strongest model-fit
// check available, since the ground truth here is the model itself.
func TestFitsAMMSBGeneratedData(t *testing.T) {
	if testing.Short() {
		t.Skip("training too slow for -short")
	}
	cfg := gen.AMMSBConfig{N: 250, K: 4, Alpha: 0.1, Eta0: 1, Eta1: 8, Delta: 5e-3, Seed: 90}
	sample, err := gen.AMMSB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := sample.Graph
	if g.NumEdges() < 200 {
		t.Fatalf("generated graph too sparse: %d edges", g.NumEdges())
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(91))
	if err != nil {
		t.Fatal(err)
	}

	// Perplexity of the true parameters on the held-out set (the target).
	truth := &State{
		N:      g.NumVertices(),
		K:      cfg.K,
		Pi:     make([]float32, g.NumVertices()*cfg.K),
		PhiSum: make([]float64, g.NumVertices()),
		Theta:  make([]float64, 2*cfg.K),
		Beta:   append([]float64(nil), sample.Beta...),
	}
	for a := 0; a < g.NumVertices(); a++ {
		row := truth.PiRow(a)
		for k, v := range sample.Pi[a] {
			row[k] = float32(v)
		}
		truth.PhiSum[a] = 1
	}
	truthPerp := Perplexity(truth, held, cfg.Delta, 0)

	// Random init baseline and trained model.
	mcfg := DefaultConfig(cfg.K, 92)
	mcfg.Alpha = cfg.Alpha
	mcfg.Delta = cfg.Delta
	mcfg.StepA = 0.05
	mcfg.StepB = 4096
	s, err := NewSampler(mcfg, train, held, SamplerOptions{Threads: 0, MinibatchPairs: 128, NeighborCount: 32})
	if err != nil {
		t.Fatal(err)
	}
	initPerp := Perplexity(s.State, held, mcfg.Delta, 0)
	s.Run(2500)
	fitPerp := Perplexity(s.State, held, mcfg.Delta, 0)

	t.Logf("perplexity: truth %.3f, random init %.3f, fitted %.3f", truthPerp, initPerp, fitPerp)
	// The fitted model must close most of the gap between random and truth.
	if fitPerp > truthPerp+0.6*(initPerp-truthPerp) {
		t.Fatalf("fit did not approach truth: truth %.3f, init %.3f, fitted %.3f",
			truthPerp, initPerp, fitPerp)
	}
}
