package core

import (
	"math"
	"testing"
)

func TestPosteriorMeanAverages(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	s1, _ := NewState(cfg, 2)
	s2, _ := NewState(cfg, 2)
	s1.SetPhiRow(0, []float64{1, 0.001, 0.001})
	s2.SetPhiRow(0, []float64{0.001, 1, 0.001})

	acc := NewPosteriorMean(2, 3)
	acc.Add(s1)
	acc.Add(s2)
	if acc.Samples() != 2 {
		t.Fatalf("samples = %d", acc.Samples())
	}
	avg := acc.State()
	row := avg.PiRow(0)
	// Mean of (≈1,0,0) and (0,≈1,0) is ≈(0.5, 0.5, 0).
	if math.Abs(float64(row[0])-0.5) > 0.01 || math.Abs(float64(row[1])-0.5) > 0.01 {
		t.Fatalf("averaged row = %v", row)
	}
	if err := avg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPosteriorMeanPanics(t *testing.T) {
	acc := NewPosteriorMean(2, 3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty State() did not panic")
			}
		}()
		acc.State()
	}()
	cfg := DefaultConfig(4, 1) // wrong K
	s, _ := NewState(cfg, 2)
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	acc.Add(s)
}

// TestPosteriorMeanStabilisesEstimates: averaging the chain tail should not
// hurt (and typically helps) held-out perplexity relative to the last raw
// sample.
func TestPosteriorMeanStabilisesEstimates(t *testing.T) {
	if testing.Short() {
		t.Skip("training too slow for -short")
	}
	train, held := plantedFixture(t, 300, 4, 2500, 61)
	cfg := DefaultConfig(4, 62)
	cfg.Alpha = 0.25
	cfg.StepA = 0.05
	cfg.StepB = 4096
	s, err := NewSampler(cfg, train, held, SamplerOptions{Threads: 0, MinibatchPairs: 128})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1200)
	acc := NewPosteriorMean(train.NumVertices(), 4)
	for i := 0; i < 20; i++ {
		s.Run(20)
		acc.Add(s.State)
	}
	last := Perplexity(s.State, held, cfg.Delta, 0)
	avg := Perplexity(acc.State(), held, cfg.Delta, 0)
	t.Logf("perplexity: last sample %.4f, posterior mean %.4f", last, avg)
	if avg > last*1.05 {
		t.Fatalf("posterior mean (%.4f) clearly worse than last sample (%.4f)", avg, last)
	}
}
