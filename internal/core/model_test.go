package core

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(16, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Eta0 = 0 },
		func(c *Config) { c.Eta1 = -1 },
		func(c *Config) { c.Delta = 0 },
		func(c *Config) { c.Delta = 1 },
		func(c *Config) { c.StepA = 0 },
		func(c *Config) { c.StepB = 0 },
		func(c *Config) { c.StepC = 0.5 },
		func(c *Config) { c.StepC = 1.5 },
		func(c *Config) { c.PhiFloor = 0 },
	}
	for i, mutate := range mutations {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStepSizeSchedule(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	prev := math.Inf(1)
	for _, tt := range []int{0, 1, 10, 100, 1000, 100000} {
		e := cfg.StepSize(tt)
		if e <= 0 || e >= prev {
			t.Fatalf("step size not strictly decreasing: ε(%d) = %v, prev %v", tt, e, prev)
		}
		prev = e
	}
	if cfg.StepSize(0) != cfg.StepA {
		t.Fatalf("ε(0) = %v, want StepA", cfg.StepSize(0))
	}
}

func TestNewStateInvariants(t *testing.T) {
	cfg := DefaultConfig(8, 42)
	s, err := NewState(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic under the same seed.
	s2, _ := NewState(cfg, 50)
	if mathx.MaxAbsDiff32(s.Pi, s2.Pi) != 0 {
		t.Fatal("state init not deterministic")
	}
	if _, err := NewState(cfg, 0); err == nil {
		t.Fatal("N=0 accepted")
	}
	bad := cfg
	bad.K = 0
	if _, err := NewState(bad, 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPhiRowRoundTrip(t *testing.T) {
	cfg := DefaultConfig(5, 7)
	s, _ := NewState(cfg, 10)
	phi := []float64{1, 2, 3, 4, 10}
	s.SetPhiRow(3, phi)
	if math.Abs(s.PhiSum[3]-20) > 1e-9 {
		t.Fatalf("PhiSum = %v, want 20", s.PhiSum[3])
	}
	back := make([]float64, 5)
	s.PhiRow(3, back)
	for k := range phi {
		if math.Abs(back[k]-phi[k]) > 1e-4 {
			t.Fatalf("PhiRow[%d] = %v, want %v", k, back[k], phi[k])
		}
	}
	// π row must be on the simplex.
	var sum float64
	for _, v := range s.PiRow(3) {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("π row sums to %v", sum)
	}
}

func TestStateClone(t *testing.T) {
	cfg := DefaultConfig(4, 9)
	s, _ := NewState(cfg, 6)
	c := s.Clone()
	s.Pi[0] = 0.999
	s.Theta[0] = 123
	if c.Pi[0] == s.Pi[0] || c.Theta[0] == s.Theta[0] {
		t.Fatal("Clone shares storage with original")
	}
}

func TestEdgeProbabilityManual(t *testing.T) {
	piA := []float32{0.5, 0.5}
	piB := []float32{0.5, 0.5}
	beta := []float64{0.8, 0.6}
	const delta = 0.1
	// y=1: Σ π π β + (1-Σ π π) δ = 0.35 + 0.5·0.1 = 0.40
	if p := EdgeProbability(piA, piB, beta, delta, true); math.Abs(p-0.40) > 1e-9 {
		t.Fatalf("p(y=1) = %v, want 0.40", p)
	}
	// y=0: Σ π π (1-β) + (1-Σ π π)(1-δ) = 0.15 + 0.45 = 0.60
	if p := EdgeProbability(piA, piB, beta, delta, false); math.Abs(p-0.60) > 1e-9 {
		t.Fatalf("p(y=0) = %v, want 0.60", p)
	}
}

func TestEdgeProbabilityComplementary(t *testing.T) {
	// p(y=1) + p(y=0) = 1 for any parameters.
	rng := mathx.NewRNG(13)
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(10)
		piA := randomSimplex32(rng, k)
		piB := randomSimplex32(rng, k)
		beta := make([]float64, k)
		for i := range beta {
			beta[i] = rng.Float64Open()
		}
		delta := rng.Float64Open() * 0.5
		p1 := EdgeProbability(piA, piB, beta, delta, true)
		p0 := EdgeProbability(piA, piB, beta, delta, false)
		if math.Abs(p1+p0-1) > 1e-6 {
			t.Fatalf("p1+p0 = %v, want 1 (k=%d)", p1+p0, k)
		}
		if p1 < 0 || p0 < 0 {
			t.Fatalf("negative probability: %v / %v", p1, p0)
		}
	}
}

func randomSimplex32(rng *mathx.RNG, k int) []float32 {
	tmp := make([]float64, k)
	rng.Dirichlet(1, tmp)
	out := make([]float32, k)
	for i, v := range tmp {
		out[i] = float32(v)
	}
	return out
}

// logLik64 is a float64 reference implementation of log p(y_ab); the
// numerical gradient checks differentiate this, because perturbing the
// float32 production path by ~1e-6 lands below float32 resolution.
func logLik64(piA, piB, beta []float64, delta float64, linked bool) float64 {
	var p float64
	for k := range beta {
		w := beta[k]
		wd := delta
		if !linked {
			w = 1 - beta[k]
			wd = 1 - delta
		}
		p += piA[k] * (piB[k]*w + (1-piB[k])*wd)
	}
	return math.Log(p)
}

// logLikAsPhi evaluates log p(y_ab) as a function of an explicit φ_a vector.
func logLikAsPhi(phiA []float64, piB, beta []float64, delta float64, linked bool) float64 {
	var sum float64
	for _, v := range phiA {
		sum += v
	}
	piA := make([]float64, len(phiA))
	for i, v := range phiA {
		piA[i] = v / sum
	}
	return logLik64(piA, piB, beta, delta, linked)
}

func TestPhiGradientMatchesNumerical(t *testing.T) {
	rng := mathx.NewRNG(21)
	const k = 6
	for trial := 0; trial < 50; trial++ {
		phiA := make([]float64, k)
		var phiSum float64
		for i := range phiA {
			phiA[i] = rng.Gamma(1) + 0.05
			phiSum += phiA[i]
		}
		piA := make([]float32, k)
		for i, v := range phiA {
			piA[i] = float32(v / phiSum)
		}
		piB := randomSimplex32(rng, k)
		piB64 := make([]float64, k)
		for i, v := range piB {
			piB64[i] = float64(v)
		}
		beta := make([]float64, k)
		for i := range beta {
			beta[i] = 0.1 + 0.8*rng.Float64()
		}
		delta := 0.01
		linked := trial%2 == 0

		grad := make([]float64, k)
		q := make([]float64, k)
		w := make([]float64, k)
		phiGradient(piA, piB, beta, delta, linked, 1.0, grad, q, w)
		// The kernel returns φsum·g; divide to get g_ab(φ_ak).
		for i := range grad {
			grad[i] /= phiSum
		}

		for i := 0; i < k; i++ {
			h := 1e-6 * phiA[i]
			up := append([]float64(nil), phiA...)
			dn := append([]float64(nil), phiA...)
			up[i] += h
			dn[i] -= h
			num := (logLikAsPhi(up, piB64, beta, delta, linked) -
				logLikAsPhi(dn, piB64, beta, delta, linked)) / (2 * h)
			// Tolerance covers the float32 quantisation of the production
			// π rows that feed the analytic kernel.
			if diff := math.Abs(num - grad[i]); diff > 1e-4*math.Max(1, math.Abs(num)) {
				t.Fatalf("trial %d, k=%d: analytic %v, numerical %v", trial, i, grad[i], num)
			}
		}
	}
}

// logLikAsTheta evaluates log p(y_ab) as a function of θ.
func logLikAsTheta(theta []float64, piA, piB []float32, delta float64, linked bool) float64 {
	k := len(theta) / 2
	beta := make([]float64, k)
	for i := 0; i < k; i++ {
		beta[i] = theta[i*2+1] / (theta[i*2] + theta[i*2+1])
	}
	return LogLikelihoodPair(piA, piB, beta, delta, linked)
}

func TestThetaGradientMatchesNumerical(t *testing.T) {
	rng := mathx.NewRNG(22)
	const k = 5
	for trial := 0; trial < 50; trial++ {
		theta := make([]float64, 2*k)
		beta := make([]float64, k)
		for i := 0; i < k; i++ {
			theta[i*2] = rng.Gamma(2) + 0.1
			theta[i*2+1] = rng.Gamma(2) + 0.1
			beta[i] = theta[i*2+1] / (theta[i*2] + theta[i*2+1])
		}
		piA := randomSimplex32(rng, k)
		piB := randomSimplex32(rng, k)
		delta := 0.02
		linked := trial%2 == 0

		grad := make([]float64, 2*k)
		w := make([]float64, k)
		thetaGradient(piA, piB, theta, beta, delta, linked, grad, w)

		for idx := 0; idx < 2*k; idx++ {
			h := 1e-6 * theta[idx]
			up := append([]float64(nil), theta...)
			dn := append([]float64(nil), theta...)
			up[idx] += h
			dn[idx] -= h
			num := (logLikAsTheta(up, piA, piB, delta, linked) -
				logLikAsTheta(dn, piA, piB, delta, linked)) / (2 * h)
			if diff := math.Abs(num - grad[idx]); diff > 1e-3*math.Max(1, math.Abs(num)) {
				t.Fatalf("trial %d, θ[%d]: analytic %v, numerical %v", trial, idx, grad[idx], num)
			}
		}
	}
}

func TestLinkWeights(t *testing.T) {
	beta := []float64{0.7, 0.2}
	w := make([]float64, 2)
	wd := linkWeights(beta, 0.05, true, w)
	if w[0] != 0.7 || w[1] != 0.2 || wd != 0.05 {
		t.Fatalf("linked weights wrong: %v %v", w, wd)
	}
	wd = linkWeights(beta, 0.05, false, w)
	if math.Abs(w[0]-0.3) > 1e-12 || math.Abs(w[1]-0.8) > 1e-12 || math.Abs(wd-0.95) > 1e-12 {
		t.Fatalf("unlinked weights wrong: %v %v", w, wd)
	}
}

func TestPhiGradientFusedParity(t *testing.T) {
	// The fused kernel skips the materialised link-weight table; it must be
	// bit-identical to the reference three-pass kernel — same operations in
	// the same order — for both observation values and across weights.
	rng := mathx.NewRNG(87)
	const k = 7
	for trial := 0; trial < 200; trial++ {
		piA := randomSimplex32(rng, k)
		piB := randomSimplex32(rng, k)
		beta := make([]float64, k)
		for i := range beta {
			beta[i] = 0.05 + 0.9*rng.Float64()
		}
		delta := 0.001 + 0.02*rng.Float64()
		linked := trial%2 == 0
		weight := rng.Gamma(2)

		ref := make([]float64, k)
		fused := make([]float64, k)
		// Seed both accumulators with the same nonzero values so the
		// accumulation step (+=) is exercised, not just the first write.
		for i := range ref {
			v := rng.Float64() - 0.5
			ref[i] = v
			fused[i] = v
		}
		q := make([]float64, k)
		w := make([]float64, k)
		phiGradient(piA, piB, beta, delta, linked, weight, ref, q, w)
		phiGradientFused(piA, piB, beta, delta, linked, weight, fused, q)
		for i := range ref {
			if math.Float64bits(ref[i]) != math.Float64bits(fused[i]) {
				t.Fatalf("trial %d (linked=%v), k=%d: fused %v != reference %v (not bit-identical)",
					trial, linked, i, fused[i], ref[i])
			}
		}
	}
}
