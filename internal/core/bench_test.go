package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/sampling"
	"repro/internal/store"
)

// benchState builds a deterministic state and neighbor fixture for the
// kernel benchmarks.
func benchState(b *testing.B, k, neighbors int) (Config, *State, [][]float32, []bool, []float64, *mathx.RNG) {
	b.Helper()
	cfg := DefaultConfig(k, 7)
	s, err := NewState(cfg, neighbors+4)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]float32, neighbors)
	linked := make([]bool, neighbors)
	weight := make([]float64, neighbors)
	for i := range rows {
		rows[i] = s.PiRow(i + 1)
		linked[i] = i%8 == 0
		weight[i] = 12.5
	}
	return cfg, s, rows, linked, weight, mathx.NewRNG(9)
}

// BenchmarkUpdatePhi measures the inner kernel of the dominant stage; the
// paper's Table III attributes 74 ms/iteration to this computation. CI gates
// on its allocs/op staying at 0: with pooled scratch the fused kernel must
// not touch the heap.
func BenchmarkUpdatePhi(b *testing.B) {
	for _, k := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			cfg, s, rows, linked, weight, rng := benchState(b, k, 32)
			sc := NewPhiScratch(k)
			newPhi := make([]float64, k)
			// Warm-up so one-time growth is off the measured path.
			UpdatePhi(&cfg, 0.001, s.PiRow(0), s.PhiSum[0], rows, linked, weight, s.Beta, rng, newPhi, sc)
			b.SetBytes(int64(33 * k * 4)) // π rows touched
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				UpdatePhi(&cfg, 0.001, s.PiRow(0), s.PhiSum[0], rows, linked, weight, s.Beta, rng, newPhi, sc)
			}
		})
	}
}

// BenchmarkPhiStage drives the whole update_phi stage — neighbor sampling,
// π staging through a LocalStore, the fused kernel — over one minibatch per
// op. With the persistent chunk buffers and per-worker scratch pool the
// steady state performs only a constant handful of tiny allocations per
// minibatch (closure headers), none proportional to vertices or K.
func BenchmarkPhiStage(b *testing.B) {
	g, _, err := gen.Planted(gen.DefaultPlanted(2000, 16, 20000, 3))
	if err != nil {
		b.Fatal(err)
	}
	const k = 64
	cfg := DefaultConfig(k, 5)
	s, err := NewState(cfg, g.NumVertices())
	if err != nil {
		b.Fatal(err)
	}
	neigh, err := sampling.NewLinkPlusUniform(sampling.NewGraphView(g, nil), 32)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]int32, 256)
	for i := range nodes {
		nodes[i] = int32(i * 7 % g.NumVertices())
	}
	for _, threads := range []int{1, 4} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			stage := &PhiStage{
				Cfg:     &cfg,
				Store:   store.NewLocal(s.Pi, s.PhiSum, k, threads),
				Neigh:   neigh,
				Threads: threads,
			}
			newPhi := make([]float64, len(nodes)*k)
			run := func(t int) {
				if err := stage.Run(t, 0.001, nodes, s.Beta, newPhi); err != nil {
					b.Fatal(err)
				}
			}
			run(0) // warm-up: size the persistent buffers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(i + 1)
			}
		})
	}
}

// BenchmarkThetaGradient measures the per-pair global-update kernel.
func BenchmarkThetaGradient(b *testing.B) {
	for _, k := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			cfg, s, _, _, _, _ := benchState(b, k, 2)
			grad := make([]float64, 2*k)
			sc := NewThetaScratch(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				AccumulateThetaGrad(s.PiRow(0), s.PiRow(1), s.Theta, s.Beta, cfg.Delta, i%2 == 0, grad, sc)
			}
		})
	}
}

// BenchmarkEdgeProbability measures the perplexity kernel.
func BenchmarkEdgeProbability(b *testing.B) {
	for _, k := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			cfg, s, _, _, _, _ := benchState(b, k, 2)
			var sink float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink += EdgeProbability(s.PiRow(0), s.PiRow(1), s.Beta, cfg.Delta, i%2 == 0)
			}
			_ = sink
		})
	}
}

// BenchmarkSamplerStep measures a full Algorithm 1 iteration end to end on a
// mid-sized graph.
func BenchmarkSamplerStep(b *testing.B) {
	g, _, err := gen.Planted(gen.DefaultPlanted(2000, 16, 20000, 3))
	if err != nil {
		b.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(4))
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSampler(DefaultConfig(32, 5), train, held, SamplerOptions{
		Threads: 0, MinibatchPairs: 256, NeighborCount: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Run(b.N)
}

// BenchmarkPerplexity measures the held-out evaluation (the paper's
// |E_h| × K stage).
func BenchmarkPerplexity(b *testing.B) {
	g, _, err := gen.Planted(gen.DefaultPlanted(2000, 16, 20000, 3))
	if err != nil {
		b.Fatal(err)
	}
	_, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(4))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(64, 5)
	s, err := NewState(cfg, g.NumVertices())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Perplexity(s, held, cfg.Delta, 0)
	}
}

// BenchmarkStateCheckpoint measures serialisation throughput.
func BenchmarkStateCheckpoint(b *testing.B) {
	cfg := DefaultConfig(128, 5)
	s, err := NewState(cfg, 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4096*128*4 + 4096*8 + 256*8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Save(discard{}, i); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
