package core

import "math"

// This file holds the model mathematics shared by every engine: the edge
// likelihood, the φ gradient of Eqn (6) and the θ gradient of Eqn (4). The
// functions are written against raw rows so the distributed engine can apply
// them to values fetched from the DKV store without converting layouts.

// linkWeights fills w[k] = β_k^y · (1-β_k)^(1-y) and returns the
// corresponding δ weight. Computing the K weights once per pair (not once
// per k per pair) is the difference between O(K) and O(K²) inner loops.
func linkWeights(beta []float64, delta float64, linked bool, w []float64) (wDelta float64) {
	if linked {
		copy(w, beta)
		return delta
	}
	for k, b := range beta {
		w[k] = 1 - b
	}
	return 1 - delta
}

// EdgeProbability returns p(y_ab | π_a, π_b, β) = Σ_k π_ak·π_bk·w_k +
// (1 - Σ_k π_ak·π_bk)·w_δ — the per-pair likelihood used by both the
// perplexity metric (Eqn 7) and, as the normaliser Z_ab, by the gradients.
func EdgeProbability(piA, piB []float32, beta []float64, delta float64, linked bool) float64 {
	var sameComm, overlap float64
	if linked {
		for k := range beta {
			p := float64(piA[k]) * float64(piB[k])
			overlap += p
			sameComm += p * beta[k]
		}
		return sameComm + (1-overlap)*delta
	}
	for k := range beta {
		p := float64(piA[k]) * float64(piB[k])
		overlap += p
		sameComm += p * (1 - beta[k])
	}
	return sameComm + (1-overlap)*(1-delta)
}

// phiGradient accumulates the neighbor b's contribution to the φ_a gradient
// into grad (length K), scaled by weight:
//
//	grad_k += weight · (q_k / Z_ab − 1)
//
// where q_k = π_bk·w_k + (1-π_bk)·w_δ and Z_ab = Σ_k π_ak·q_k. This equals
// φsum_a · g_ab(φ_ak) of Eqn (6); the caller divides by Σφ_a once per vertex
// instead of once per term. q is a caller-provided scratch buffer (length K).
func phiGradient(piA, piB []float32, beta []float64, delta float64, linked bool, weight float64, grad, q, w []float64) {
	wDelta := linkWeights(beta, delta, linked, w)
	var z float64
	for k := range q {
		pb := float64(piB[k])
		qk := pb*w[k] + (1-pb)*wDelta
		q[k] = qk
		z += float64(piA[k]) * qk
	}
	if z <= 0 {
		return // numerically dead pair; contributes nothing
	}
	invZ := 1 / z
	for k := range grad {
		grad[k] += weight * (q[k]*invZ - 1)
	}
}

// phiGradientFused is phiGradient with the link-weight table w_k expanded
// inline: instead of materialising w (one pass) and then forming q and Z
// (second pass) and grad (third), it computes q_k = π_bk·w_k + (1-π_bk)·w_δ
// directly from β in the first pass and accumulates grad in the second. The
// per-element float operations and their order are identical to the unfused
// kernel's (w_k = β_k or 1-β_k is formed at the same point in the expression),
// so the result is bit-identical — pinned by TestPhiGradientFusedParity.
// Saves one K-wide pass and the w scratch buffer per neighbor.
func phiGradientFused(piA, piB []float32, beta []float64, delta float64, linked bool, weight float64, grad, q []float64) {
	var z float64
	if linked {
		for k := range q {
			pb := float64(piB[k])
			qk := pb*beta[k] + (1-pb)*delta
			q[k] = qk
			z += float64(piA[k]) * qk
		}
	} else {
		wDelta := 1 - delta
		for k := range q {
			pb := float64(piB[k])
			qk := pb*(1-beta[k]) + (1-pb)*wDelta
			q[k] = qk
			z += float64(piA[k]) * qk
		}
	}
	if z <= 0 {
		return // numerically dead pair; contributes nothing
	}
	invZ := 1 / z
	for k := range grad {
		grad[k] += weight * (q[k]*invZ - 1)
	}
}

// thetaGradient accumulates the pair (a, b)'s contribution to the θ gradient
// into grad (length 2K, layout matching State.Theta):
//
//	grad_ki += (f_ab(k,k) / Z_ab) · (|1-i-y| / θ_ki − 1 / (θ_k0+θ_k1))
//
// with f_ab(k,k) = π_ak·π_bk·w_k (Eqn 4). w is scratch of length K.
func thetaGradient(piA, piB []float32, theta, beta []float64, delta float64, linked bool, grad, w []float64) {
	wDelta := linkWeights(beta, delta, linked, w)
	var z float64
	for k := range beta {
		pa, pb := float64(piA[k]), float64(piB[k])
		prod := pa * pb
		z += prod*w[k] + (pa-prod)*wDelta
	}
	// z here equals Z_ab: Σ_k π_ak(π_bk w_k + (1-π_bk) w_δ), expanded to
	// avoid a second pass. (Σ_k π_ak = 1.)
	if z <= 0 {
		return
	}
	invZ := 1 / z
	y0, y1 := 1.0, 0.0 // |1-i-y| for i=0,1 when y=0
	if linked {
		y0, y1 = 0.0, 1.0
	}
	for k := range beta {
		resp := float64(piA[k]) * float64(piB[k]) * w[k] * invZ
		s := theta[k*2] + theta[k*2+1]
		invS := 1 / s
		grad[k*2] += resp * (y0/theta[k*2] - invS)
		grad[k*2+1] += resp * (y1/theta[k*2+1] - invS)
	}
}

// LogLikelihoodPair returns log p(y_ab); exposed for the gradient-check tests
// and the perplexity metric.
func LogLikelihoodPair(piA, piB []float32, beta []float64, delta float64, linked bool) float64 {
	p := EdgeProbability(piA, piB, beta, delta, linked)
	if p < 1e-300 {
		p = 1e-300
	}
	return math.Log(p)
}
