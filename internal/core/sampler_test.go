package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

func plantedFixture(t *testing.T, n, k, edges int, seed uint64) (*graph.Graph, *graph.HeldOut) {
	t.Helper()
	g, _, err := gen.Planted(gen.DefaultPlanted(n, k, edges, seed))
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return train, held
}

func TestSamplerStepMaintainsInvariants(t *testing.T) {
	train, held := plantedFixture(t, 300, 6, 1500, 31)
	s, err := NewSampler(DefaultConfig(6, 5), train, held, SamplerOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Step()
	}
	if s.Iteration() != 50 {
		t.Fatalf("iteration = %d, want 50", s.Iteration())
	}
	if err := s.State.Validate(); err != nil {
		t.Fatalf("state invalid after 50 steps: %v", err)
	}
}

func TestSamplerDeterministicAcrossThreadCounts(t *testing.T) {
	train, held := plantedFixture(t, 200, 5, 1000, 32)
	run := func(threads int) *State {
		s, err := NewSampler(DefaultConfig(5, 77), train, held, SamplerOptions{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(20)
		return s.State
	}
	s1 := run(1)
	s4 := run(4)
	if d := mathx.MaxAbsDiff32(s1.Pi, s4.Pi); d != 0 {
		t.Fatalf("π differs across thread counts by %v; want bit-exact", d)
	}
	if d := mathx.MaxAbsDiff(s1.Theta, s4.Theta); d != 0 {
		t.Fatalf("θ differs across thread counts by %v; want bit-exact", d)
	}
}

func TestSamplerDeterministicAcrossRuns(t *testing.T) {
	train, held := plantedFixture(t, 150, 4, 700, 33)
	run := func() *State {
		s, err := NewSampler(DefaultConfig(4, 99), train, held, SamplerOptions{Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(15)
		return s.State
	}
	a, b := run(), run()
	if mathx.MaxAbsDiff32(a.Pi, b.Pi) != 0 || mathx.MaxAbsDiff(a.Theta, b.Theta) != 0 {
		t.Fatal("same-seed runs diverged")
	}
}

func TestSamplerImprovesPerplexity(t *testing.T) {
	train, held := plantedFixture(t, 400, 4, 3000, 34)
	cfg := DefaultConfig(4, 11)
	s, err := NewSampler(cfg, train, held, SamplerOptions{Threads: 4, NeighborCount: 20})
	if err != nil {
		t.Fatal(err)
	}
	before := Perplexity(s.State, held, cfg.Delta, 4)
	s.Run(400)
	after := Perplexity(s.State, held, cfg.Delta, 4)
	if after >= before*0.9 {
		t.Fatalf("perplexity did not improve: before %v, after %v", before, after)
	}
	if err := s.State.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerStratifiedStrategy(t *testing.T) {
	train, held := plantedFixture(t, 250, 5, 1200, 35)
	s, err := NewSampler(DefaultConfig(5, 13), train, held, SamplerOptions{
		Stratified: true, LinkProb: 0.4, NonLinkCount: 16, Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	if err := s.State.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Edges.Name() != "stratified-node" {
		t.Fatalf("strategy = %s", s.Edges.Name())
	}
}

func TestSamplerUniformNeighborOption(t *testing.T) {
	train, held := plantedFixture(t, 250, 5, 1200, 36)
	s, err := NewSampler(DefaultConfig(5, 13), train, held, SamplerOptions{
		UniformNeighbors: true, NeighborCount: 24, Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	if s.Neighbors.Name() != "uniform" {
		t.Fatalf("neighbor strategy = %s", s.Neighbors.Name())
	}
	if err := s.State.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerWithoutHeldOut(t *testing.T) {
	g, _, err := gen.Planted(gen.DefaultPlanted(100, 4, 500, 37))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(DefaultConfig(4, 1), g, nil, SamplerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("EvalPerplexity without held-out did not panic")
		}
	}()
	s.EvalPerplexity()
}

func TestSamplerRejectsInvalidConfig(t *testing.T) {
	g, _, _ := gen.Planted(gen.DefaultPlanted(100, 4, 500, 38))
	bad := DefaultConfig(0, 1)
	if _, err := NewSampler(bad, g, nil, SamplerOptions{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPerplexityAveragerMatchesManual(t *testing.T) {
	train, held := plantedFixture(t, 120, 4, 600, 39)
	cfg := DefaultConfig(4, 3)
	s, _ := NewState(cfg, train.NumVertices())
	avg := NewPerplexityAverager(held, cfg.Delta)
	one := avg.Update(s, 2)
	// With a single sample, the averager equals the direct computation.
	direct := Perplexity(s, held, cfg.Delta, 2)
	if math.Abs(one-direct)/direct > 1e-9 {
		t.Fatalf("averager %v != direct %v for T=1", one, direct)
	}
	if avg.Samples() != 1 {
		t.Fatalf("samples = %d", avg.Samples())
	}
}

func TestPerplexityAveragerAverages(t *testing.T) {
	// Two different states; the averaged probability per pair must be the
	// mean of the individual probabilities, so the perplexity differs from
	// both single-sample values.
	train, held := plantedFixture(t, 120, 4, 600, 40)
	cfg := DefaultConfig(4, 4)
	s1, _ := NewState(cfg, train.NumVertices())
	cfg2 := cfg
	cfg2.Seed = 5
	s2, _ := NewState(cfg2, train.NumVertices())

	avg := NewPerplexityAverager(held, cfg.Delta)
	avg.Update(s1, 0)
	got := avg.Update(s2, 0)

	// Manual: running mean of per-pair probabilities.
	var logSum float64
	for i, e := range held.Pairs {
		p1 := EdgeProbability(s1.PiRow(int(e.A)), s1.PiRow(int(e.B)), s1.Beta, cfg.Delta, held.Linked[i])
		p2 := EdgeProbability(s2.PiRow(int(e.A)), s2.PiRow(int(e.B)), s2.Beta, cfg.Delta, held.Linked[i])
		logSum += math.Log((p1 + p2) / 2)
	}
	want := math.Exp(-logSum / float64(held.Len()))
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("averaged perplexity %v, want %v", got, want)
	}
}

func TestPerplexityWorkerIndependence(t *testing.T) {
	train, held := plantedFixture(t, 200, 4, 1000, 41)
	cfg := DefaultConfig(4, 6)
	s, _ := NewState(cfg, train.NumVertices())
	p1 := Perplexity(s, held, cfg.Delta, 1)
	p8 := Perplexity(s, held, cfg.Delta, 8)
	if p1 != p8 {
		t.Fatalf("perplexity differs across worker counts: %v vs %v", p1, p8)
	}
}

func TestUpdatePhiProducesValidRows(t *testing.T) {
	cfg := DefaultConfig(6, 2)
	s, _ := NewState(cfg, 20)
	rng := mathx.NewRNG(50)
	sc := NewPhiScratch(6)
	newPhi := make([]float64, 6)
	piB := [][]float32{s.PiRow(1), s.PiRow(2), s.PiRow(3)}
	linked := []bool{true, false, false}
	weight := []float64{1, 5, 5}
	for trial := 0; trial < 100; trial++ {
		UpdatePhi(&cfg, cfg.StepSize(trial), s.PiRow(0), s.PhiSum[0], piB, linked, weight, s.Beta, rng, newPhi, sc)
		for k, v := range newPhi {
			if v < cfg.PhiFloor || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: newPhi[%d] = %v", trial, k, v)
			}
		}
		s.SetPhiRow(0, newPhi)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyThetaUpdateKeepsPositive(t *testing.T) {
	cfg := DefaultConfig(8, 3)
	s, _ := NewState(cfg, 10)
	rng := mathx.NewRNG(60)
	grad := make([]float64, 16)
	for i := range grad {
		grad[i] = (rng.Float64() - 0.5) * 10
	}
	for trial := 0; trial < 200; trial++ {
		ApplyThetaUpdate(&cfg, cfg.StepSize(trial), 100, grad, s.Theta, rng)
	}
	s.RefreshBeta()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
