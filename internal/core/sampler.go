package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/par"
	"repro/internal/sampling"
)

// ThetaChunk is the fixed chunk size for the θ-gradient reduction and
// PerplexityChunk the one for held-out evaluation. Keeping them constant
// (rather than derived from the worker count) makes the floating-point
// summation order — and therefore the trained model — identical across
// thread counts and across the sequential and distributed engines; the
// distributed engine additionally aligns its rank partitions to these chunk
// sizes so its fold order matches exactly.
const (
	ThetaChunk      = 64
	PerplexityChunk = 256
)

// Sampler runs Algorithm 1 on a single node, sequentially (Threads = 1) or
// with OpenMP-style thread parallelism over the minibatch vertices.
type Sampler struct {
	Cfg       Config
	Graph     *graph.Graph
	Held      *graph.HeldOut
	State     *State
	Edges     sampling.EdgeStrategy
	Neighbors sampling.NeighborStrategy
	Threads   int

	t     int
	batch sampling.Batch
	ppx   *PerplexityAverager

	// staging area for the φ phase: newPhi[i] is the pending row for
	// batch.Nodes[i]; committed only after every row is computed.
	newPhi []float64
}

// SamplerOptions configures NewSampler beyond the model Config.
type SamplerOptions struct {
	// MinibatchPairs is the edge minibatch size for the random-pair
	// strategy; ignored when Stratified is true.
	MinibatchPairs int
	// Stratified selects stratified random node sampling (the strategy of
	// Li et al.) instead of random pairs.
	Stratified bool
	// LinkProb is the probability of picking the link stratum (stratified
	// only); 0 defaults to 0.5.
	LinkProb float64
	// NonLinkCount is the non-link stratum sample size (stratified only);
	// 0 defaults to 32.
	NonLinkCount int
	// NeighborCount is |V_n|, the neighbor subsample size per minibatch
	// vertex; 0 defaults to 32.
	NeighborCount int
	// UniformNeighbors selects the paper's Eqn (5) uniform neighbor
	// sampling; the default is the lower-variance link+uniform strategy.
	UniformNeighbors bool
	// Threads is the shared-memory worker count; 0 uses GOMAXPROCS.
	Threads int
}

// NewSampler wires a sampler for a training graph and held-out set. held may
// be nil (no perplexity tracking; useful in micro-benchmarks).
func NewSampler(cfg Config, g *graph.Graph, held *graph.HeldOut, opt SamplerOptions) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	state, err := NewState(cfg, g.NumVertices())
	if err != nil {
		return nil, err
	}
	var excluded *graph.EdgeSet
	if held != nil {
		set := graph.NewEdgeSet(held.Len())
		for _, e := range held.Pairs {
			set.Add(e)
		}
		excluded = &set
	}

	if opt.NeighborCount == 0 {
		opt.NeighborCount = 32
	}
	if opt.MinibatchPairs == 0 {
		opt.MinibatchPairs = 128
	}
	if opt.LinkProb == 0 {
		opt.LinkProb = 0.5
	}
	if opt.NonLinkCount == 0 {
		opt.NonLinkCount = 32
	}

	var edges sampling.EdgeStrategy
	if opt.Stratified {
		edges, err = sampling.NewStratifiedNode(g, excluded, opt.LinkProb, opt.NonLinkCount)
	} else {
		edges, err = sampling.NewRandomPair(g, excluded, opt.MinibatchPairs)
	}
	if err != nil {
		return nil, fmt.Errorf("core: edge strategy: %w", err)
	}
	view := sampling.NewGraphView(g, excluded)
	var neigh sampling.NeighborStrategy
	if opt.UniformNeighbors {
		neigh, err = sampling.NewUniformNeighbors(view, opt.NeighborCount)
	} else {
		neigh, err = sampling.NewLinkPlusUniform(view, opt.NeighborCount)
	}
	if err != nil {
		return nil, fmt.Errorf("core: neighbor strategy: %w", err)
	}

	s := &Sampler{
		Cfg:       cfg,
		Graph:     g,
		Held:      held,
		State:     state,
		Edges:     edges,
		Neighbors: neigh,
		Threads:   opt.Threads,
	}
	if held != nil {
		s.ppx = NewPerplexityAverager(held, cfg.Delta)
	}
	return s, nil
}

// Iteration returns the number of completed iterations.
func (s *Sampler) Iteration() int { return s.t }

// Step executes one iteration of Algorithm 1: sample E_n; update φ and π for
// every vertex in the minibatch; update θ and β from the minibatch pairs.
func (s *Sampler) Step() {
	t := s.t
	eps := s.Cfg.StepSize(t)

	// Stage 1: minibatch selection (master work in the distributed engine).
	mbRNG := mathx.NewStream(s.Cfg.Seed, StreamMinibatch(t))
	s.Edges.Sample(mbRNG, &s.batch)

	// Stage 2: update_phi — data parallel over minibatch vertices, reading
	// the pre-update π/Σφ state only.
	nodes := s.batch.Nodes
	k := s.Cfg.K
	if cap(s.newPhi) < len(nodes)*k {
		s.newPhi = make([]float64, len(nodes)*k)
	}
	s.newPhi = s.newPhi[:len(nodes)*k]
	par.For(len(nodes), s.Threads, func(lo, hi int) {
		sc := NewPhiScratch(k)
		var ns sampling.NeighborSample
		var rows [][]float32
		for i := lo; i < hi; i++ {
			a := nodes[i]
			rng := mathx.NewStream(s.Cfg.Seed, StreamVertex(t, int(a)))
			s.Neighbors.Sample(a, rng, &ns)
			rows = rows[:0]
			for _, b := range ns.Nodes {
				rows = append(rows, s.State.PiRow(int(b)))
			}
			UpdatePhi(&s.Cfg, eps, s.State.PiRow(int(a)), s.State.PhiSum[int(a)],
				rows, ns.Linked, ns.Scale, s.State.Beta, rng,
				s.newPhi[i*k:(i+1)*k], sc)
		}
	})

	// Stage 3: update_pi — commit the staged φ rows (the barrier between
	// stages 2 and 3 is implicit in par.For's completion).
	par.For(len(nodes), s.Threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s.State.SetPhiRow(int(nodes[i]), s.newPhi[i*k:(i+1)*k])
		}
	})

	// Stage 4: update_beta/theta — chunked gradient accumulation over the
	// minibatch pairs, then one global SGRLD step at the "master".
	grad := par.ChunkedReduceVec(len(s.batch.Pairs), ThetaChunk, s.Threads, 2*k,
		func(lo, hi int, acc []float64) {
			sc := NewThetaScratch(k)
			for i := lo; i < hi; i++ {
				e := s.batch.Pairs[i]
				AccumulateThetaGrad(s.State.PiRow(int(e.A)), s.State.PiRow(int(e.B)),
					s.State.Theta, s.State.Beta, s.Cfg.Delta, s.batch.Linked[i], acc, sc)
			}
		})
	thetaRNG := mathx.NewStream(s.Cfg.Seed, StreamTheta(t))
	ApplyThetaUpdate(&s.Cfg, eps, s.batch.Scale, grad, s.State.Theta, thetaRNG)
	s.State.RefreshBeta()

	s.t++
}

// Run executes n iterations.
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// EvalPerplexity folds the current state into the running posterior average
// and returns the averaged perplexity (Eqn 7). It panics if the sampler was
// built without a held-out set.
func (s *Sampler) EvalPerplexity() float64 {
	if s.ppx == nil {
		panic("core: sampler has no held-out set")
	}
	return s.ppx.Update(s.State, s.Threads)
}

// LastBatch exposes the most recent minibatch; used by diagnostics and the
// distributed engine's equivalence tests.
func (s *Sampler) LastBatch() *sampling.Batch { return &s.batch }
