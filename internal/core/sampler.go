package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/store"
	"repro/internal/trace"
)

// ThetaChunk is the fixed chunk size for the θ-gradient reduction and
// PerplexityChunk the one for held-out evaluation. Keeping them constant
// (rather than derived from the worker count) makes the floating-point
// summation order — and therefore the trained model — identical across
// thread counts and across the sequential and distributed engines; the
// distributed engine additionally aligns its rank partitions to these chunk
// sizes so its fold order matches exactly.
const (
	ThetaChunk      = 64
	PerplexityChunk = 256
)

// Sampler runs Algorithm 1 on a single node, sequentially (Threads = 1) or
// with OpenMP-style thread parallelism over the minibatch vertices. It is
// built from the same stage layer as the distributed engine (phases.go),
// wired to a store.LocalStore over its State — the Ranks=1 degenerate case
// of the distributed sampler.
type Sampler struct {
	Cfg       Config
	Graph     *graph.Graph
	Held      *graph.HeldOut
	State     *State
	Edges     sampling.EdgeStrategy
	Neighbors sampling.NeighborStrategy
	Threads   int

	// Phases accumulates per-stage wall-clock time under the same Table III
	// stage names the distributed engine reports.
	Phases *trace.Phases

	// rec is the optional live telemetry recorder (SamplerOptions.Recorder):
	// per-stage durations and one event per iteration, same schema as the
	// distributed engine's rank events.
	rec obs.Recorder

	// tracer is the optional span recorder (SamplerOptions.Tracer).
	tracer *obs.Tracer

	t     int
	batch sampling.Batch
	loop  *engine.Loop
	eval  *HeldOutEval
	// phi is the persistent update_phi stage; it owns the staging buffers
	// and per-worker scratch that make the steady-state iteration
	// allocation-free. Store is reassigned per iteration (see pistore).
	phi *PhiStage

	// staging area for the φ phase: newPhi[i] is the pending row for
	// batch.Nodes[i]; committed only after every row is computed.
	newPhi []float64

	// pub/pubEvery drive the optional snapshot publication stage
	// (SamplerOptions.Publisher).
	pub      *store.Publisher
	pubEvery int

	// ext is the external π backend (SamplerOptions.Store). When set, the
	// State is a shell (nil Pi/PhiSum) and every π access goes through ext;
	// an extra barrier stage runs ext.Flush once per iteration.
	ext store.PiStore
}

// SamplerOptions configures NewSampler beyond the model Config.
type SamplerOptions struct {
	// MinibatchPairs is the edge minibatch size for the random-pair
	// strategy; ignored when Stratified is true.
	MinibatchPairs int
	// Stratified selects stratified random node sampling (the strategy of
	// Li et al.) instead of random pairs.
	Stratified bool
	// LinkProb is the probability of picking the link stratum (stratified
	// only); 0 defaults to 0.5.
	LinkProb float64
	// NonLinkCount is the non-link stratum sample size (stratified only);
	// 0 defaults to 32.
	NonLinkCount int
	// NeighborCount is |V_n|, the neighbor subsample size per minibatch
	// vertex; 0 defaults to 32.
	NeighborCount int
	// UniformNeighbors selects the paper's Eqn (5) uniform neighbor
	// sampling; the default is the lower-variance link+uniform strategy.
	UniformNeighbors bool
	// Threads is the shared-memory worker count; 0 uses GOMAXPROCS.
	Threads int
	// Recorder, when non-nil, receives the live telemetry stream (per-stage
	// durations, one event per iteration, perplexity points) — see
	// internal/obs. Nil keeps the iteration loop telemetry-free.
	Recorder obs.Recorder
	// Tracer, when non-nil, records per-iteration and per-stage spans (the
	// single-rank timeline; no collectives or DKV traffic exist here). Feed
	// its Bundle to obs.WriteChromeTrace — ocd-train's -trace-out does.
	Tracer *obs.Tracer
	// Publisher, when non-nil, receives a sealed store.Snapshot of π/β after
	// the write barrier of every PublishEvery-th iteration (version = number
	// of completed iterations) — the feed of the internal/serve read tier.
	// Publication only reads sealed state, so the trained trajectory is
	// bit-identical with or without it.
	Publisher *store.Publisher
	// PublishEvery is the publication interval in iterations; 0 defaults to
	// 1 (every iteration). Ignored when Publisher is nil.
	PublishEvery int
	// Store, when non-nil, is an external π backend (mmap, tiered, DKV) the
	// sampler trains against instead of in-RAM State slabs — the out-of-core
	// path. Its dimensions must match the graph and cfg.K, and it must
	// already hold the initial rows (ShellInit(cfg) per vertex for a fresh
	// run, or a checkpoint restore). All backends share the row codec and
	// SetPhiRow arithmetic, so the trajectory is bit-identical to the
	// in-RAM sampler's. Prefer TryStep over Step: store errors (a torn
	// shard, a failed fault) are runtime conditions, not programming bugs.
	Store store.PiStore
}

// NewSampler wires a sampler for a training graph and held-out set. held may
// be nil (no perplexity tracking; useful in micro-benchmarks).
func NewSampler(cfg Config, g *graph.Graph, held *graph.HeldOut, opt SamplerOptions) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var state *State
	var err error
	if opt.Store != nil {
		if opt.Store.NumRows() != g.NumVertices() || opt.Store.K() != cfg.K {
			return nil, fmt.Errorf("core: external store is %d×%d, run needs %d×%d",
				opt.Store.NumRows(), opt.Store.K(), g.NumVertices(), cfg.K)
		}
		state, err = NewStateShell(cfg, g.NumVertices())
	} else {
		state, err = NewState(cfg, g.NumVertices())
	}
	if err != nil {
		return nil, err
	}
	var excluded *graph.EdgeSet
	if held != nil {
		set := graph.NewEdgeSet(held.Len())
		for _, e := range held.Pairs {
			set.Add(e)
		}
		excluded = &set
	}

	if opt.NeighborCount == 0 {
		opt.NeighborCount = 32
	}
	if opt.MinibatchPairs == 0 {
		opt.MinibatchPairs = 128
	}
	if opt.LinkProb == 0 {
		opt.LinkProb = 0.5
	}
	if opt.NonLinkCount == 0 {
		opt.NonLinkCount = 32
	}

	var edges sampling.EdgeStrategy
	if opt.Stratified {
		edges, err = sampling.NewStratifiedNode(g, excluded, opt.LinkProb, opt.NonLinkCount)
	} else {
		edges, err = sampling.NewRandomPair(g, excluded, opt.MinibatchPairs)
	}
	if err != nil {
		return nil, fmt.Errorf("core: edge strategy: %w", err)
	}
	view := sampling.NewGraphView(g, excluded)
	var neigh sampling.NeighborStrategy
	if opt.UniformNeighbors {
		neigh, err = sampling.NewUniformNeighbors(view, opt.NeighborCount)
	} else {
		neigh, err = sampling.NewLinkPlusUniform(view, opt.NeighborCount)
	}
	if err != nil {
		return nil, fmt.Errorf("core: neighbor strategy: %w", err)
	}

	s := &Sampler{
		Cfg:       cfg,
		Graph:     g,
		Held:      held,
		State:     state,
		Edges:     edges,
		Neighbors: neigh,
		Threads:   opt.Threads,
		Phases:    trace.NewPhases(),
		rec:       opt.Recorder,
		tracer:    opt.Tracer,
		pub:       opt.Publisher,
		pubEvery:  max(opt.PublishEvery, 1),
		ext:       opt.Store,
	}
	if held != nil {
		s.eval = NewHeldOutEval(held, cfg.Delta, 0, held.Len())
	}
	s.phi = &PhiStage{
		Cfg:     &s.Cfg,
		Neigh:   s.Neighbors,
		Threads: s.Threads,
		Trace:   s.Phases,
		Rec:     s.rec,
	}
	s.loop = s.buildLoop()
	if err := s.loop.Validate([]string{"graph", "pi", "theta", "beta"}); err != nil {
		return nil, err
	}
	return s, nil
}

// pistore returns the π backend: the external store when one is configured,
// otherwise a LocalStore view of the current State — built per use so a
// Resume that swaps the State can never leave a stale view behind.
func (s *Sampler) pistore() store.PiStore {
	if s.ext != nil {
		return s.ext
	}
	return store.NewLocal(s.State.Pi, s.State.PhiSum, s.Cfg.K, s.Threads)
}

// buildLoop assembles the iteration from the shared stages. The stage list
// is the local specialisation of the paper's Table III: no deploy/collective
// stages, and the in-memory store makes every load local.
func (s *Sampler) buildLoop() *engine.Loop {
	loop := &engine.Loop{
		Trace:    s.Phases,
		Recorder: s.rec,
		Tracer:   s.tracer,
		Stages: []engine.Stage{
			{
				Name:   engine.PhaseDrawMinibatch,
				Reads:  []string{"graph"},
				Writes: []string{"batch"},
				Run: func(t int) error {
					DrawMinibatch(&s.Cfg, s.Edges, t, &s.batch)
					return nil
				},
			},
			{
				Name:   engine.PhaseUpdatePhi,
				Reads:  []string{"batch", "pi", "beta"},
				Writes: []string{"new_phi"},
				Run: func(t int) error {
					k := s.Cfg.K
					n := len(s.batch.Nodes)
					if cap(s.newPhi) < n*k {
						s.newPhi = make([]float64, n*k)
					}
					s.newPhi = s.newPhi[:n*k]
					s.phi.Store = s.pistore()
					s.phi.Threads = s.Threads
					return s.phi.Run(t, s.Cfg.StepSize(t), s.batch.Nodes, s.State.Beta, s.newPhi)
				},
			},
			{
				Name:   engine.PhaseUpdatePi,
				Reads:  []string{"batch", "new_phi"},
				Writes: []string{"pi"},
				Run: func(t int) error {
					return s.pistore().WriteRows(s.batch.Nodes, s.newPhi)
				},
			},
			{
				Name:   engine.PhaseUpdateBetaTheta,
				Reads:  []string{"batch", "pi", "theta"},
				Writes: []string{"theta", "beta"},
				Run: func(t int) error {
					k := s.Cfg.K
					partials, err := ThetaPartials(&s.Cfg, s.pistore(), s.batch.Pairs, s.batch.Linked,
						s.State.Theta, s.State.Beta, s.Threads)
					if err != nil {
						return err
					}
					grad := make([]float64, 2*k)
					FoldThetaPartials(grad, partials, k)
					ApplyThetaUpdate(&s.Cfg, s.Cfg.StepSize(t), s.batch.Scale, grad, s.State.Theta,
						mathx.NewStream(s.Cfg.Seed, StreamTheta(t)))
					s.State.RefreshBeta()
					return nil
				},
			},
		},
	}
	if s.ext != nil {
		// External backends get the phase barrier the distributed engine
		// provides through its collectives: one Flush per iteration, after
		// all writes land. For an mmap tier this is also the residency-
		// management hook (MmapOptions.AdviseEveryFlush counts barriers).
		loop.Stages = append(loop.Stages, engine.Stage{
			Reads:   []string{"pi"},
			Barrier: true,
			Run:     func(int) error { return s.ext.Flush() },
		})
	}
	if s.pub != nil {
		// The sequential loop has no collective barriers: a stage boundary at
		// the end of the iteration IS the phase barrier (no writes can be in
		// flight), so the publication stage carries the Barrier mark itself.
		loop.Stages = append(loop.Stages, engine.Stage{
			Name:      engine.PhasePublish,
			Reads:     []string{"pi", "beta"},
			Publishes: []string{"pi"},
			Barrier:   true,
			Run:       s.publishStage,
		})
	}
	return loop
}

// publishStage seals the post-iteration state into an immutable snapshot and
// hands it to the publisher. Version t+1 = iterations completed. The stage
// only reads — π through the same store view the training stages use, β from
// the state — so enabling it cannot perturb the trained trajectory.
func (s *Sampler) publishStage(t int) error {
	if (t+1)%s.pubEvery != 0 {
		return nil
	}
	sealer, ok := s.pistore().(store.Snapshotter)
	if !ok {
		return fmt.Errorf("core: π backend %T cannot seal snapshots", s.pistore())
	}
	snap, err := sealer.Snapshot(t+1, s.State.Beta)
	if err != nil {
		return err
	}
	return s.pub.Publish(snap)
}

// Iteration returns the number of completed iterations.
func (s *Sampler) Iteration() int { return s.t }

// Step executes one iteration of Algorithm 1: sample E_n; update φ and π for
// every vertex in the minibatch; update θ and β from the minibatch pairs.
// With the in-memory store a stage error is a programming bug, so Step
// panics on it; out-of-core runs should use TryStep, where an I/O fault is
// a runtime condition the caller can handle.
func (s *Sampler) Step() {
	if err := s.TryStep(); err != nil {
		panic(fmt.Sprintf("core: iteration %d: %v", s.t, err))
	}
}

// TryStep executes one iteration, returning any stage error (an external π
// backend can genuinely fail: a torn shard, a disk fault, a lost peer). The
// iteration counter advances only on success.
func (s *Sampler) TryStep() error {
	if err := s.loop.RunIteration(s.t); err != nil {
		return err
	}
	s.t++
	return nil
}

// Run executes n iterations.
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// EvalPerplexity folds the current state into the running posterior average
// and returns the averaged perplexity (Eqn 7). It panics if the sampler was
// built without a held-out set.
func (s *Sampler) EvalPerplexity() float64 {
	if s.eval == nil {
		panic("core: sampler has no held-out set")
	}
	defer s.Phases.Timer(engine.PhasePerplexity)()
	partials, err := s.eval.Fold(s.pistore(), s.State.Beta, s.Threads)
	if err != nil {
		panic(fmt.Sprintf("core: perplexity: %v", err))
	}
	var logSum float64
	for _, v := range partials {
		logSum += v
	}
	perp := PerplexityFromLogSum(logSum, s.Held.Len())
	if s.rec != nil {
		s.rec.EvalDone(s.t, perp)
	}
	return perp
}

// LastBatch exposes the most recent minibatch; used by diagnostics and the
// distributed engine's equivalence tests.
func (s *Sampler) LastBatch() *sampling.Batch { return &s.batch }
