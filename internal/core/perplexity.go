package core

import (
	"math"

	"repro/internal/graph"
	"repro/internal/par"
)

// PerplexityAverager implements the paper's Eqn (7): perplexity is the
// exponential of the negative average log of the SAMPLE-AVERAGED held-out
// likelihoods. It keeps one running mean probability per held-out pair, so
// memory is O(|E_h|) regardless of how many posterior samples are folded in.
type PerplexityAverager struct {
	held  *graph.HeldOut
	delta float64
	avg   []float64
	t     int
}

// NewPerplexityAverager creates an averager for a held-out set; delta is the
// model's cross-community link probability δ.
func NewPerplexityAverager(held *graph.HeldOut, delta float64) *PerplexityAverager {
	return &PerplexityAverager{held: held, delta: delta, avg: make([]float64, held.Len())}
}

// Samples returns how many posterior samples have been folded in.
func (p *PerplexityAverager) Samples() int { return p.t }

// Update folds the current state in as one posterior sample and returns the
// averaged perplexity. The per-pair probabilities are computed in parallel
// with a fixed chunk size, so the result is independent of workers.
func (p *PerplexityAverager) Update(s *State, workers int) float64 {
	p.t++
	tInv := 1 / float64(p.t)
	par.ChunkedReduce(p.held.Len(), PerplexityChunk, workers, func(lo, hi int) float64 {
		for i := lo; i < hi; i++ {
			e := p.held.Pairs[i]
			prob := EdgeProbability(s.PiRow(int(e.A)), s.PiRow(int(e.B)), s.Beta, p.delta, p.held.Linked[i])
			p.avg[i] += (prob - p.avg[i]) * tInv
		}
		return 0
	})
	return p.Value()
}

// Value returns the perplexity implied by the running averages; it panics if
// Update has never been called.
func (p *PerplexityAverager) Value() float64 {
	if p.t == 0 {
		panic("core: perplexity requested before any sample")
	}
	logSum := par.ChunkedReduce(p.held.Len(), PerplexityChunk, 0, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			v := p.avg[i]
			if v < 1e-300 {
				v = 1e-300
			}
			s += math.Log(v)
		}
		return s
	})
	return math.Exp(-logSum / float64(p.held.Len()))
}

// Perplexity computes the single-sample perplexity of state s on held —
// Eqn (7) with T = 1. Used by tests and by quick diagnostics; training loops
// should prefer the averager.
func Perplexity(s *State, held *graph.HeldOut, delta float64, workers int) float64 {
	logSum := par.ChunkedReduce(held.Len(), PerplexityChunk, workers, func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			e := held.Pairs[i]
			acc += LogLikelihoodPair(s.PiRow(int(e.A)), s.PiRow(int(e.B)), s.Beta, delta, held.Linked[i])
		}
		return acc
	})
	return math.Exp(-logSum / float64(held.Len()))
}
