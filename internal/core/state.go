package core

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// State holds the model parameters. Following the paper's memory layout
// (Section III-A), the N×K matrix φ is not stored: only π (float32) and the
// per-vertex row sums Σφ (float64) are kept, and φ_ak = π_ak · Σφ_a is
// recomputed on demand. For the paper's largest run this trades 3 TB of φ
// storage for a multiply in the inner loop.
type State struct {
	N int
	K int

	// Pi is the row-major N×K membership matrix; row a is
	// Pi[a*K : (a+1)*K] and sums to 1.
	Pi []float32
	// PhiSum[a] = Σ_k φ_ak.
	PhiSum []float64
	// Theta is the row-major K×2 global parameter; θ_ki = Theta[k*2+i].
	// Index 1 is the "link" pseudo-count: β_k = θ_k1 / (θ_k0 + θ_k1).
	Theta []float64
	// Beta[k] is the community strength, derived from Theta.
	Beta []float64
}

// NewState draws the initial state from the priors: φ_ak ~ Gamma(α, 1)
// and θ_ki ~ Gamma(η_i, 1), then derives π and β by normalisation.
func NewState(cfg Config, n int) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("core: N = %d, need at least 1", n)
	}
	s := &State{
		N:      n,
		K:      cfg.K,
		Pi:     make([]float32, n*cfg.K),
		PhiSum: make([]float64, n),
		Theta:  InitTheta(cfg),
		Beta:   make([]float64, cfg.K),
	}
	for a := 0; a < n; a++ {
		s.PhiSum[a] = InitPiRow(cfg, a, s.PiRow(a))
	}
	s.RefreshBeta()
	return s, nil
}

// NewStateShell builds a State that holds only the global parameters (θ, β):
// Pi and PhiSum stay nil because the π table lives in an external PiStore
// (mmap, tiered, or DKV). The store must be populated separately with
// InitPiRow per vertex — e.g. MmapStore.InitRows(ShellInit(cfg)) — which
// yields exactly the rows NewState would have drawn, so a shell-backed run
// is bit-identical to an in-RAM one.
func NewStateShell(cfg Config, n int) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("core: N = %d, need at least 1", n)
	}
	s := &State{
		N:     n,
		K:     cfg.K,
		Theta: InitTheta(cfg),
		Beta:  make([]float64, cfg.K),
	}
	s.RefreshBeta()
	return s, nil
}

// ShellInit adapts InitPiRow to the initRow callback shape the store
// backends take (MmapStore.InitRows, DKVStore.InitOwned), closing over cfg.
func ShellInit(cfg Config) func(a int, pi []float32) float64 {
	return func(a int, pi []float32) float64 {
		return InitPiRow(cfg, a, pi)
	}
}

// InitPiRow draws vertex a's prior φ_a ~ Gamma(α, 1) row, stores the
// normalised π_a into pi (length K) and returns Σφ_a. Both engines
// initialise through this function, so a distributed shard holds exactly the
// rows a single-node State would.
func InitPiRow(cfg Config, a int, pi []float32) float64 {
	rng := mathx.NewStream(cfg.Seed, streamInit(a))
	phi := make([]float64, cfg.K)
	var sum float64
	for k := range phi {
		v := rng.Gamma(cfg.Alpha) + cfg.PhiFloor
		phi[k] = v
		sum += v
	}
	for k, v := range phi {
		pi[k] = float32(v / sum)
	}
	return sum
}

// InitTheta draws the prior θ_ki ~ Gamma(η_i, 1) global parameters.
func InitTheta(cfg Config) []float64 {
	rng := mathx.NewStream(cfg.Seed, streamInitTheta)
	theta := make([]float64, cfg.K*2)
	for k := 0; k < cfg.K; k++ {
		theta[k*2] = rng.Gamma(cfg.Eta0)
		theta[k*2+1] = rng.Gamma(cfg.Eta1)
	}
	return theta
}

// PiRow returns π_a as a mutable slice into the state.
func (s *State) PiRow(a int) []float32 {
	return s.Pi[a*s.K : (a+1)*s.K]
}

// PhiRow reconstructs φ_a = π_a · Σφ_a into out (length K).
func (s *State) PhiRow(a int, out []float64) {
	row := s.PiRow(a)
	sum := s.PhiSum[a]
	for k, v := range row {
		out[k] = float64(v) * sum
	}
}

// SetPhiRow stores a new φ_a by writing π_a = φ/Σφ and Σφ_a.
func (s *State) SetPhiRow(a int, phi []float64) {
	var sum float64
	for _, v := range phi {
		sum += v
	}
	s.PhiSum[a] = sum
	row := s.PiRow(a)
	inv := 1 / sum
	for k, v := range phi {
		row[k] = float32(v * inv)
	}
}

// RefreshBeta recomputes β from θ.
func (s *State) RefreshBeta() {
	for k := 0; k < s.K; k++ {
		s.Beta[k] = s.Theta[k*2+1] / (s.Theta[k*2] + s.Theta[k*2+1])
	}
}

// Clone deep-copies the state; used by tests and by the perplexity sample
// averaging.
func (s *State) Clone() *State {
	c := &State{N: s.N, K: s.K}
	c.Pi = append([]float32(nil), s.Pi...)
	c.PhiSum = append([]float64(nil), s.PhiSum...)
	c.Theta = append([]float64(nil), s.Theta...)
	c.Beta = append([]float64(nil), s.Beta...)
	return c
}

// Validate checks the model invariants: π rows on the simplex, positive φ
// sums, positive θ, β in (0,1). Intended for tests; O(N·K).
func (s *State) Validate() error {
	if len(s.Pi) != s.N*s.K || len(s.PhiSum) != s.N || len(s.Theta) != 2*s.K || len(s.Beta) != s.K {
		return fmt.Errorf("core: state shape mismatch")
	}
	for a := 0; a < s.N; a++ {
		var sum float64
		for _, v := range s.PiRow(a) {
			if v < 0 || math.IsNaN(float64(v)) {
				return fmt.Errorf("core: π[%d] has invalid component %v", a, v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			return fmt.Errorf("core: π[%d] sums to %v", a, sum)
		}
		if s.PhiSum[a] <= 0 || math.IsNaN(s.PhiSum[a]) {
			return fmt.Errorf("core: Σφ[%d] = %v", a, s.PhiSum[a])
		}
	}
	for k := 0; k < s.K; k++ {
		if s.Theta[k*2] <= 0 || s.Theta[k*2+1] <= 0 {
			return fmt.Errorf("core: θ[%d] = (%v, %v), need positive", k, s.Theta[k*2], s.Theta[k*2+1])
		}
		if b := s.Beta[k]; b <= 0 || b >= 1 || math.IsNaN(b) {
			return fmt.Errorf("core: β[%d] = %v", k, b)
		}
	}
	return nil
}

// Stream identifiers: every random draw in the system is tied to a
// (purpose, iteration, vertex) triple so results do not depend on thread or
// rank scheduling. Iterations and vertices fit comfortably in 31 bits each.
const (
	streamTagInit      = 0
	streamTagMinibatch = 1
	streamTagVertex    = 2
	streamTagTheta     = 3
	streamInitTheta    = 1<<62 | 1
)

func streamInit(a int) uint64 {
	return uint64(streamTagInit)<<62 | uint64(a)
}

// StreamMinibatch identifies the RNG stream that draws iteration t's edge
// minibatch.
func StreamMinibatch(t int) uint64 {
	return uint64(streamTagMinibatch)<<62 | uint64(t)
}

// StreamVertex identifies the RNG stream for vertex a's neighbor sampling
// and Langevin noise in iteration t.
func StreamVertex(t, a int) uint64 {
	return uint64(streamTagVertex)<<62 | uint64(t)<<31 | uint64(a)
}

// StreamTheta identifies the RNG stream for the global update's noise in
// iteration t.
func StreamTheta(t int) uint64 {
	return uint64(streamTagTheta)<<62 | uint64(t)
}
