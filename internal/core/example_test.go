package core_test

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

// Example shows the minimal training loop: generate a graph, hold out a test
// set, run the sampler, and read the model's state.
func Example() {
	g, _, err := gen.Planted(gen.DefaultPlanted(200, 4, 1000, 7))
	if err != nil {
		panic(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(8))
	if err != nil {
		panic(err)
	}

	cfg := core.DefaultConfig(4, 9)
	sampler, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 2})
	if err != nil {
		panic(err)
	}
	sampler.Run(50)

	fmt.Println("iterations:", sampler.Iteration())
	fmt.Println("state valid:", sampler.State.Validate() == nil)
	fmt.Println("communities:", sampler.State.K)
	// Output:
	// iterations: 50
	// state valid: true
	// communities: 4
}

// ExampleState_Save demonstrates checkpointing and resuming a chain.
func ExampleState_Save() {
	g, _, _ := gen.Planted(gen.DefaultPlanted(100, 4, 500, 1))
	cfg := core.DefaultConfig(4, 2)
	s, _ := core.NewSampler(cfg, g, nil, core.SamplerOptions{})
	s.Run(10)

	var buf writerBuffer
	if err := s.State.Save(&buf, s.Iteration()); err != nil {
		panic(err)
	}
	state, iter, err := core.Load(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println("resumed at iteration:", iter)
	fmt.Println("same dimensions:", state.N == 100 && state.K == 4)
	// Output:
	// resumed at iteration: 10
	// same dimensions: true
}

// writerBuffer is a minimal in-memory io.ReadWriter for the example.
type writerBuffer struct {
	data []byte
	off  int
}

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writerBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}
