package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

// TestUpdatePhiInvariantsQuick: for arbitrary (seeded) model states and
// neighbor sets, the φ update must produce strictly positive, finite values
// — the |·| reflection plus floor of Eqn (5).
func TestUpdatePhiInvariantsQuick(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint8, epsRaw uint16) bool {
		k := int(kRaw%12) + 1
		n := int(nRaw%8) + 1
		eps := float64(epsRaw%1000)/1000*0.5 + 1e-6
		rng := mathx.NewRNG(seed)
		cfg := DefaultConfig(k, seed)

		simplex := func() []float32 {
			tmp := make([]float64, k)
			rng.Dirichlet(0.5, tmp)
			out := make([]float32, k)
			for i, v := range tmp {
				out[i] = float32(v)
			}
			return out
		}
		piA := simplex()
		phiSum := rng.Gamma(2) + 0.01
		rows := make([][]float32, n)
		linked := make([]bool, n)
		weight := make([]float64, n)
		for i := range rows {
			rows[i] = simplex()
			linked[i] = rng.Float64() < 0.3
			weight[i] = rng.Float64() * 100
		}
		beta := make([]float64, k)
		for i := range beta {
			beta[i] = rng.Float64Open()
		}
		newPhi := make([]float64, k)
		sc := NewPhiScratch(k)
		UpdatePhi(&cfg, eps, piA, phiSum, rows, linked, weight, beta, rng, newPhi, sc)
		for _, v := range newPhi {
			if v < cfg.PhiFloor || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestThetaUpdateInvariantsQuick: θ stays strictly positive for arbitrary
// gradients and step sizes.
func TestThetaUpdateInvariantsQuick(t *testing.T) {
	f := func(seed uint64, kRaw uint8, scaleRaw uint16) bool {
		k := int(kRaw%12) + 1
		rng := mathx.NewRNG(seed)
		cfg := DefaultConfig(k, seed)
		theta := make([]float64, 2*k)
		grad := make([]float64, 2*k)
		for i := range theta {
			theta[i] = rng.Gamma(1) + 1e-6
			grad[i] = (rng.Float64() - 0.5) * 20
		}
		ApplyThetaUpdate(&cfg, 0.01, float64(scaleRaw), grad, theta, rng)
		for _, v := range theta {
			if v < cfg.PhiFloor || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeProbabilityBoundsQuick: the likelihood is a true probability for
// any simplex inputs.
func TestEdgeProbabilityBoundsQuick(t *testing.T) {
	f := func(seed uint64, kRaw uint8, linked bool) bool {
		k := int(kRaw%16) + 1
		rng := mathx.NewRNG(seed)
		tmp := make([]float64, k)
		mk := func() []float32 {
			rng.Dirichlet(0.7, tmp)
			out := make([]float32, k)
			for i, v := range tmp {
				out[i] = float32(v)
			}
			return out
		}
		piA, piB := mk(), mk()
		beta := make([]float64, k)
		for i := range beta {
			beta[i] = rng.Float64Open()
		}
		delta := rng.Float64Open() * 0.2
		p := EdgeProbability(piA, piB, beta, delta, linked)
		return p >= 0 && p <= 1+1e-9 && !math.IsNaN(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestStepSizeSummability: the schedule satisfies the SGLD conditions in the
// testable direction — ε decreasing, Σε over any window positive, and ε²
// summing to a finite value numerically.
func TestStepSizeSummability(t *testing.T) {
	cfg := DefaultConfig(2, 1)
	var sumSq float64
	prev := math.Inf(1)
	for tt := 0; tt < 1_000_000; tt++ {
		e := cfg.StepSize(tt)
		if e >= prev {
			t.Fatalf("ε not strictly decreasing at t=%d", tt)
		}
		prev = e
		sumSq += e * e
	}
	if math.IsInf(sumSq, 0) || sumSq > 1e3 {
		t.Fatalf("Σε² looks divergent: %v", sumSq)
	}
}
