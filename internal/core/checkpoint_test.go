package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mathx"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultConfig(6, 77)
	s, err := NewState(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf, 123); err != nil {
		t.Fatal(err)
	}
	got, iter, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 123 {
		t.Fatalf("iteration = %d, want 123", iter)
	}
	if mathx.MaxAbsDiff32(s.Pi, got.Pi) != 0 {
		t.Fatal("π not bit-identical after round trip")
	}
	if mathx.MaxAbsDiff(s.PhiSum, got.PhiSum) != 0 {
		t.Fatal("Σφ not bit-identical after round trip")
	}
	if mathx.MaxAbsDiff(s.Theta, got.Theta) != 0 {
		t.Fatal("θ not bit-identical after round trip")
	}
	if mathx.MaxAbsDiff(s.Beta, got.Beta) != 0 {
		t.Fatal("β not re-derived correctly")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, _, err := Load(strings.NewReader("not a checkpoint at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated payload.
	cfg := DefaultConfig(4, 1)
	s, _ := NewState(cfg, 10)
	var buf bytes.Buffer
	s.Save(&buf, 0)
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, _, err := Load(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestCheckpointTypedErrors pins the error taxonomy rank-loss recovery
// depends on: every way a file can run short is ErrCheckpointTruncated, a
// shape mismatch against the target run is ErrCheckpointShape, and trailing
// bytes past the promised arrays are rejected.
func TestCheckpointTypedErrors(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	s, err := NewState(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf, 7); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Truncation at every section boundary (and mid-array): header, π, Σφ, θ.
	piEnd := 28 + 4*len(s.Pi)
	phiEnd := piEnd + 8*len(s.PhiSum)
	for _, cut := range []int{0, 10, 28, 28 + 4*len(s.Pi)/2, piEnd, piEnd + 4, phiEnd, len(whole) - 1} {
		_, _, err := Load(bytes.NewReader(whole[:cut]))
		if !errors.Is(err, ErrCheckpointTruncated) {
			t.Fatalf("cut at %d of %d: err = %v, want ErrCheckpointTruncated", cut, len(whole), err)
		}
	}
	// Garbage (wrong magic) is NOT "truncated" — it is a different failure.
	if _, _, err := Load(strings.NewReader(strings.Repeat("x", 64))); errors.Is(err, ErrCheckpointTruncated) {
		t.Fatal("bad magic misreported as truncation")
	}

	// Trailing bytes past the arrays the header promises.
	if _, _, err := Load(bytes.NewReader(append(append([]byte(nil), whole...), 0xFF))); err == nil {
		t.Fatal("checkpoint with trailing bytes accepted")
	} else if errors.Is(err, ErrCheckpointTruncated) {
		t.Fatalf("trailing bytes misreported as truncation: %v", err)
	}

	// Shape validation: CheckShape and LoadFileFor.
	if err := s.CheckShape(10, 4); err != nil {
		t.Fatalf("CheckShape on matching shape: %v", err)
	}
	if err := s.CheckShape(11, 4); !errors.Is(err, ErrCheckpointShape) {
		t.Fatalf("wrong N: err = %v, want ErrCheckpointShape", err)
	}
	if err := s.CheckShape(10, 8); !errors.Is(err, ErrCheckpointShape) {
		t.Fatalf("wrong K: err = %v, want ErrCheckpointShape", err)
	}

	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if state, iter, err := LoadFileFor(path, cfg, 10); err != nil || iter != 7 || state.N != 10 {
		t.Fatalf("LoadFileFor(matching) = N=%v iter=%d, err %v", state, iter, err)
	}
	if _, _, err := LoadFileFor(path, cfg, 11); !errors.Is(err, ErrCheckpointShape) {
		t.Fatalf("LoadFileFor wrong N: err = %v, want ErrCheckpointShape", err)
	}
	if _, _, err := LoadFileFor(path, DefaultConfig(8, 1), 10); !errors.Is(err, ErrCheckpointShape) {
		t.Fatalf("LoadFileFor wrong K: err = %v, want ErrCheckpointShape", err)
	}
}

func TestCheckpointFile(t *testing.T) {
	cfg := DefaultConfig(4, 5)
	s, _ := NewState(cfg, 20)
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := s.SaveFile(path, 55); err != nil {
		t.Fatal(err)
	}
	got, iter, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 55 || got.N != 20 || got.K != 4 {
		t.Fatalf("loaded iter=%d N=%d K=%d", iter, got.N, got.K)
	}
}

// TestResumeContinuesChain trains, checkpoints, resumes, and verifies the
// resumed run is bit-identical to an uninterrupted one.
func TestResumeContinuesChain(t *testing.T) {
	train, held := plantedFixture(t, 150, 4, 700, 88)
	cfg := DefaultConfig(4, 21)

	full, err := NewSampler(cfg, train, held, SamplerOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	full.Run(20)

	first, err := NewSampler(cfg, train, held, SamplerOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	first.Run(12)
	var buf bytes.Buffer
	if err := first.State.Save(&buf, first.Iteration()); err != nil {
		t.Fatal(err)
	}

	state, iter, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewSampler(cfg, train, held, SamplerOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Resume(cfg, train, state, iter, resumed); err != nil {
		t.Fatal(err)
	}
	resumed.Run(8)

	if mathx.MaxAbsDiff32(full.State.Pi, resumed.State.Pi) != 0 {
		t.Fatal("resumed chain diverged from uninterrupted run")
	}
	if mathx.MaxAbsDiff(full.State.Theta, resumed.State.Theta) != 0 {
		t.Fatal("resumed θ diverged from uninterrupted run")
	}
}

func TestResumeValidatesShapes(t *testing.T) {
	train, held := plantedFixture(t, 100, 4, 500, 89)
	cfg := DefaultConfig(4, 2)
	s, err := NewSampler(cfg, train, held, SamplerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wrongN, _ := NewState(cfg, 50)
	if err := Resume(cfg, train, wrongN, 0, s); err == nil {
		t.Fatal("wrong N accepted")
	}
	cfg8 := DefaultConfig(8, 2)
	wrongK, _ := NewState(cfg8, 100)
	if err := Resume(cfg, train, wrongK, 0, s); err == nil {
		t.Fatal("wrong K accepted")
	}
}
