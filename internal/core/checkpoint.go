package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/store"
)

// Checkpointing: the paper's convergence runs take hours (Figure 6 reports
// 40-hour trainings); production use needs to persist and resume the chain.
// The format is a small header plus the raw state arrays, little-endian.

const (
	checkpointMagic   = 0x616d6d5362303031 // "ammSb001"
	checkpointVersion = 1
)

// Typed checkpoint failures, matchable with errors.Is:
//
//   - ErrCheckpointTruncated: the file ends before the arrays the header
//     promises (a crash mid-write, a partial copy). SaveFile's write-then-
//     rename makes this impossible for its own output, so a truncated file
//     means the bytes were damaged after the fact.
//   - ErrCheckpointShape: the file is well-formed but its (N, K) do not
//     match the run it is being loaded into — the wrong graph or the wrong
//     -k, caught before any state is overwritten.
var (
	ErrCheckpointTruncated = errors.New("checkpoint truncated")
	ErrCheckpointShape     = errors.New("checkpoint shape mismatch")
)

// truncated wraps an io.ReadFull failure on a checkpoint section: running
// out of bytes is ErrCheckpointTruncated; anything else (an I/O fault)
// passes through.
func truncated(section string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("core: checkpoint %s: %w: %v", section, ErrCheckpointTruncated, err)
	}
	return fmt.Errorf("core: checkpoint %s: %w", section, err)
}

// CheckShape verifies the state matches the (n, k) a run expects; the error
// wraps ErrCheckpointShape.
func (s *State) CheckShape(n, k int) error {
	if s.N != n || s.K != k {
		return fmt.Errorf("core: %w: state has N=%d K=%d, run expects N=%d K=%d",
			ErrCheckpointShape, s.N, s.K, n, k)
	}
	return nil
}

// Save writes the state to w. The iteration counter is stored so a resumed
// sampler continues the step-size schedule where it stopped.
func (s *State) Save(w io.Writer, iteration int) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := make([]byte, 0, 40)
	hdr = binary.LittleEndian.AppendUint64(hdr, checkpointMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, checkpointVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(s.N))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(s.K))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(iteration))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, v := range s.Pi {
		binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, v := range s.PhiSum {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, v := range s.Theta {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a state written by Save and returns it with the stored
// iteration counter. β is re-derived from θ.
func Load(r io.Reader) (*State, int, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hdr := make([]byte, 28)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, 0, truncated("header", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != checkpointMagic {
		return nil, 0, fmt.Errorf("core: not a checkpoint file")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != checkpointVersion {
		return nil, 0, fmt.Errorf("core: checkpoint version %d unsupported", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[12:]))
	k := int(binary.LittleEndian.Uint32(hdr[16:]))
	iteration := int(binary.LittleEndian.Uint64(hdr[20:]))
	if n < 1 || k < 1 || n > 1<<31 || k > 1<<24 {
		return nil, 0, fmt.Errorf("core: checkpoint claims N=%d K=%d", n, k)
	}
	s := &State{
		N:      n,
		K:      k,
		Pi:     make([]float32, n*k),
		PhiSum: make([]float64, n),
		Theta:  make([]float64, 2*k),
		Beta:   make([]float64, k),
	}
	buf := make([]byte, 8)
	for i := range s.Pi {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, 0, truncated("π", err)
		}
		s.Pi[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
	}
	for i := range s.PhiSum {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, truncated("Σφ", err)
		}
		s.PhiSum[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	for i := range s.Theta {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, truncated("θ", err)
		}
		s.Theta[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	// A well-formed checkpoint ends exactly where the header says: trailing
	// bytes mean a damaged file (e.g. two checkpoints concatenated, or a
	// header whose N/K undercount the arrays that follow).
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, 0, fmt.Errorf("core: checkpoint trailer: %w", err)
		}
		return nil, 0, fmt.Errorf("core: checkpoint has trailing bytes past the N=%d K=%d arrays", n, k)
	}
	s.RefreshBeta()
	return s, iteration, nil
}

// SaveFile writes a checkpoint to path atomically (write + rename).
func (s *State) SaveFile(path string, iteration int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f, iteration); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a checkpoint from path.
func LoadFile(path string) (*State, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return Load(f)
}

// LoadFileFor reads a checkpoint and validates its shape against the run it
// is destined for: n vertices and cfg.K communities. A mismatch fails with
// ErrCheckpointShape before the caller touches any state.
func LoadFileFor(path string, cfg Config, n int) (*State, int, error) {
	state, iter, err := LoadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if err := state.CheckShape(n, cfg.K); err != nil {
		return nil, 0, fmt.Errorf("%w (loading %s)", err, path)
	}
	return state, iter, nil
}

// checkpointBatchRows bounds one store sweep batch of the streaming
// checkpoint paths: 4096 rows ≈ 2 MB at K=128, small enough that saving a
// larger-than-RAM table never holds more than one batch plus the Σφ vector
// (8 bytes/vertex) in memory.
const checkpointBatchRows = 4096

// SaveStore writes the standard checkpoint format (identical bytes to
// State.Save for the same model) by streaming rows out of an external π
// backend in bounded batches — the out-of-core save path, which never
// materialises a second full copy of the table. theta must be the 2K global
// parameter vector.
func SaveStore(w io.Writer, st store.PiStore, theta []float64, iteration int) error {
	n, k := st.NumRows(), st.K()
	if len(theta) != 2*k {
		return fmt.Errorf("core: θ has %d values, want %d", len(theta), 2*k)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := make([]byte, 0, 28)
	hdr = binary.LittleEndian.AppendUint64(hdr, checkpointMagic)
	hdr = binary.LittleEndian.AppendUint32(hdr, checkpointVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(n))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(k))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(iteration))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	// One sweep: π floats stream straight out; Σφ (8 bytes/vertex — tiny
	// next to the 4K bytes/vertex of π) is kept for the second section.
	sums := make([]float64, n)
	var rows store.Rows
	ids := make([]int32, 0, checkpointBatchRows)
	buf := make([]byte, 8)
	for base := 0; base < n; base += checkpointBatchRows {
		hi := min(base+checkpointBatchRows, n)
		ids = ids[:0]
		for a := base; a < hi; a++ {
			ids = append(ids, int32(a))
		}
		if err := st.ReadRows(ids, &rows); err != nil {
			return fmt.Errorf("core: checkpoint sweep at vertex %d: %w", base, err)
		}
		for i := range ids {
			for _, v := range rows.PiRow(i) {
				binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
				if _, err := bw.Write(buf[:4]); err != nil {
					return err
				}
			}
			sums[base+i] = rows.PhiSum[i]
		}
	}
	for _, v := range sums {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	for _, v := range theta {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveStoreFile writes a streamed checkpoint to path atomically
// (write + rename), like State.SaveFile.
func SaveStoreFile(path string, st store.PiStore, theta []float64, iteration int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveStore(f, st, theta, iteration); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadStoreFile restores a checkpoint into an external π backend by
// streaming batched rows through the store's PiWriter — the mirror of
// SaveStoreFile, again never holding the full table in memory. The file's
// (N, K) must match dst's dimensions (ErrCheckpointShape otherwise); a file
// shorter than the header promises fails with ErrCheckpointTruncated before
// any row lands. Returns the θ vector and stored iteration; the caller
// installs them in its State shell and calls RefreshBeta.
func LoadStoreFile(path string, dst store.PiStore) (theta []float64, iteration int, err error) {
	w, ok := dst.(store.PiWriter)
	if !ok {
		return nil, 0, fmt.Errorf("core: π backend %T cannot restore verbatim rows", dst)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}

	hdr := make([]byte, 28)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, 0, truncated("header", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != checkpointMagic {
		return nil, 0, fmt.Errorf("core: not a checkpoint file")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != checkpointVersion {
		return nil, 0, fmt.Errorf("core: checkpoint version %d unsupported", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[12:]))
	k := int(binary.LittleEndian.Uint32(hdr[16:]))
	iteration = int(binary.LittleEndian.Uint64(hdr[20:]))
	if n != dst.NumRows() || k != dst.K() {
		return nil, 0, fmt.Errorf("core: %w: checkpoint has N=%d K=%d, store is %d×%d (loading %s)",
			ErrCheckpointShape, n, k, dst.NumRows(), dst.K(), path)
	}
	piOff := int64(28)
	sumOff := piOff + int64(n)*int64(k)*4
	thetaOff := sumOff + int64(n)*8
	end := thetaOff + int64(k)*16
	if st.Size() < end {
		return nil, 0, fmt.Errorf("core: checkpoint arrays: %w: file has %d bytes, need %d",
			ErrCheckpointTruncated, st.Size(), end)
	}
	if st.Size() > end {
		return nil, 0, fmt.Errorf("core: checkpoint has trailing bytes past the N=%d K=%d arrays", n, k)
	}

	// Walk the π and Σφ sections in lockstep, one bounded batch at a time.
	piR := bufio.NewReaderSize(io.NewSectionReader(f, piOff, sumOff-piOff), 1<<20)
	sumR := bufio.NewReaderSize(io.NewSectionReader(f, sumOff, thetaOff-sumOff), 1<<18)
	ids := make([]int32, 0, checkpointBatchRows)
	pi := make([]float32, checkpointBatchRows*k)
	sums := make([]float64, checkpointBatchRows)
	piBuf := make([]byte, checkpointBatchRows*k*4)
	sumBuf := make([]byte, checkpointBatchRows*8)
	for base := 0; base < n; base += checkpointBatchRows {
		hi := min(base+checkpointBatchRows, n)
		rows := hi - base
		ids = ids[:0]
		for a := base; a < hi; a++ {
			ids = append(ids, int32(a))
		}
		if _, err := io.ReadFull(piR, piBuf[:rows*k*4]); err != nil {
			return nil, 0, truncated("π", err)
		}
		for i := 0; i < rows*k; i++ {
			pi[i] = math.Float32frombits(binary.LittleEndian.Uint32(piBuf[i*4:]))
		}
		if _, err := io.ReadFull(sumR, sumBuf[:rows*8]); err != nil {
			return nil, 0, truncated("Σφ", err)
		}
		for i := 0; i < rows; i++ {
			sums[i] = math.Float64frombits(binary.LittleEndian.Uint64(sumBuf[i*8:]))
		}
		if err := w.WritePiRows(ids, pi[:rows*k], sums[:rows]); err != nil {
			return nil, 0, fmt.Errorf("core: checkpoint restore at vertex %d: %w", base, err)
		}
	}

	theta = make([]float64, 2*k)
	thBuf := make([]byte, 2*k*8)
	if _, err := f.ReadAt(thBuf, thetaOff); err != nil {
		return nil, 0, truncated("θ", err)
	}
	for i := range theta {
		theta[i] = math.Float64frombits(binary.LittleEndian.Uint64(thBuf[i*8:]))
	}
	return theta, iteration, nil
}

// Resume rebuilds a sampler from a saved state, continuing the step-size
// schedule at the stored iteration. The graph, held-out set and options must
// match the original run for the chain to be meaningful (the function cannot
// verify that; it checks only the state dimensions).
func Resume(cfg Config, g interface{ NumVertices() int }, state *State, iteration int, s *Sampler) error {
	if err := state.CheckShape(g.NumVertices(), cfg.K); err != nil {
		return err
	}
	s.State = state
	s.t = iteration
	return nil
}
