// Package core implements the SG-MCMC sampler for the assortative
// mixed-membership stochastic blockmodel (a-MMSB) — the algorithm of Section
// II of the paper. It provides the model state (π, Σφ, θ, β), the stochastic
// gradient Riemannian Langevin updates for the local (Eqn 5/6) and global
// (Eqn 3/4) parameters, and a single-node sampler that runs them either
// sequentially or with shared-memory thread parallelism.
//
// The distributed engine in internal/dist reuses exactly these update
// kernels; the equivalence tests rely on that sharing.
package core

import (
	"fmt"
	"math"
)

// Config carries the model hyperparameters and step-size schedule.
type Config struct {
	K     int     // number of latent communities
	Alpha float64 // Dirichlet concentration of memberships π_a
	Eta0  float64 // Beta prior pseudo-count for "no link" (θ_k0)
	Eta1  float64 // Beta prior pseudo-count for "link" (θ_k1)
	Delta float64 // cross-community link probability δ

	// Step size schedule ε_t = StepA · (1 + t/StepB)^(-StepC). The paper
	// inherits the SGLD requirement Σε = ∞, Σε² < ∞, satisfied for
	// StepC ∈ (0.5, 1].
	StepA float64
	StepB float64
	StepC float64

	// PhiFloor is the numeric floor applied to φ after each update; the
	// reflection |·| keeps φ non-negative but arbitrarily close to zero,
	// and a hard floor keeps 1/Σφ finite in float32 storage.
	PhiFloor float64

	Seed uint64
}

// DefaultConfig returns the hyperparameters used throughout the evaluation:
// the conventional a-MMSB settings of Li et al. with a mildly decaying step
// size.
func DefaultConfig(k int, seed uint64) Config {
	return Config{
		K:        k,
		Alpha:    0.05,
		Eta0:     1,
		Eta1:     1,
		Delta:    1e-7,
		StepA:    0.01,
		StepB:    1024,
		StepC:    0.55,
		PhiFloor: 1e-12,
		Seed:     seed,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("core: K = %d, need at least 1", c.K)
	case c.Alpha <= 0:
		return fmt.Errorf("core: Alpha = %v, need positive", c.Alpha)
	case c.Eta0 <= 0 || c.Eta1 <= 0:
		return fmt.Errorf("core: Eta = (%v, %v), need positive", c.Eta0, c.Eta1)
	case c.Delta <= 0 || c.Delta >= 1:
		return fmt.Errorf("core: Delta = %v, need in (0,1)", c.Delta)
	case c.StepA <= 0 || c.StepB <= 0:
		return fmt.Errorf("core: step schedule (A=%v, B=%v) must be positive", c.StepA, c.StepB)
	case c.StepC <= 0.5 || c.StepC > 1:
		return fmt.Errorf("core: StepC = %v, need in (0.5, 1] for SGLD convergence", c.StepC)
	case c.PhiFloor <= 0:
		return fmt.Errorf("core: PhiFloor = %v, need positive", c.PhiFloor)
	}
	return nil
}

// StepSize returns ε_t for iteration t.
func (c Config) StepSize(t int) float64 {
	return c.StepA * math.Pow(1+float64(t)/c.StepB, -c.StepC)
}
