package core

import (
	"math"

	"repro/internal/mathx"
)

// PhiScratch holds the per-worker buffers for UpdatePhi so the inner loops
// allocate nothing. One instance per goroutine; the φ stage pools one per
// worker slot across chunks and iterations (see PhiStage).
type PhiScratch struct {
	grad []float64
	q    []float64
	// rows is the neighbor π-row view assembled per vertex; pooling it here
	// keeps the per-vertex staging loop allocation-free.
	rows [][]float32
}

// NewPhiScratch allocates scratch for dimension k.
func NewPhiScratch(k int) *PhiScratch {
	return &PhiScratch{
		grad: make([]float64, k),
		q:    make([]float64, k),
	}
}

// Rows returns the pooled neighbor-row buffer, emptied, with capacity
// retained across calls.
func (sc *PhiScratch) Rows() [][]float32 { return sc.rows[:0] }

// SetRows stores the buffer back so the capacity grown this vertex is kept.
func (sc *PhiScratch) SetRows(rows [][]float32) { sc.rows = rows }

// UpdatePhi computes the SGRLD update of Eqn (5) for one vertex a and writes
// the new φ_a into newPhi (length K). The neighbor set is given as parallel
// slices: piB[j] is neighbor j's π row, linked[j] the observation y_ab, and
// weight[j] the estimator weight (Σ weights replaces the paper's N/|V_n|
// factor). rng must be the vertex's deterministic stream for this iteration.
//
// The gradient accumulation runs the fused kernel (phiGradientFused): the
// link-weight table w_k is expanded inline instead of materialised, so each
// neighbor costs two passes over k and no scratch beyond grad/q.
//
// The caller applies the result with State.SetPhiRow after all vertices of
// the minibatch have been computed — the same read/write phase separation
// the paper enforces with an MPI barrier.
func UpdatePhi(cfg *Config, eps float64, piA []float32, phiSumA float64,
	piB [][]float32, linked []bool, weight []float64,
	beta []float64, rng *mathx.RNG, newPhi []float64, sc *PhiScratch) {

	k := cfg.K
	grad := sc.grad[:k]
	q := sc.q[:k]
	for i := range grad {
		grad[i] = 0
	}
	for j, rowB := range piB {
		phiGradientFused(piA, rowB, beta, cfg.Delta, linked[j], weight[j], grad, q)
	}
	invPhiSum := 1 / phiSumA
	halfEps := eps / 2
	noiseStd := math.Sqrt(eps)
	for i := 0; i < k; i++ {
		phi := float64(piA[i]) * phiSumA
		g := grad[i] * invPhiSum
		v := phi + halfEps*(cfg.Alpha-phi+g) + math.Sqrt(phi)*noiseStd*rng.Norm()
		if v < 0 {
			v = -v // the reflection |·| of Eqn (5)
		}
		if v < cfg.PhiFloor {
			v = cfg.PhiFloor
		}
		newPhi[i] = v
	}
}

// ThetaScratch holds per-worker buffers for the global update.
type ThetaScratch struct {
	w []float64
}

// NewThetaScratch allocates scratch for dimension k.
func NewThetaScratch(k int) *ThetaScratch {
	return &ThetaScratch{w: make([]float64, k)}
}

// AccumulateThetaGrad adds the pair (a, b)'s contribution (Eqn 4) to grad,
// which has the 2K layout of State.Theta.
func AccumulateThetaGrad(piA, piB []float32, theta, beta []float64, delta float64, linked bool, grad []float64, sc *ThetaScratch) {
	thetaGradient(piA, piB, theta, beta, delta, linked, grad, sc.w)
}

// ApplyThetaUpdate performs the SGRLD step of Eqn (3) on theta in place:
// grad is the minibatch gradient sum, scale the h(E_n) factor, rng the
// iteration's deterministic θ stream. Beta is NOT refreshed; callers do that
// once the new θ is final.
func ApplyThetaUpdate(cfg *Config, eps, scale float64, grad, theta []float64, rng *mathx.RNG) {
	halfEps := eps / 2
	noiseStd := math.Sqrt(eps)
	for k := 0; k < cfg.K; k++ {
		for i := 0; i < 2; i++ {
			idx := k*2 + i
			eta := cfg.Eta0
			if i == 1 {
				eta = cfg.Eta1
			}
			t := theta[idx]
			v := t + halfEps*(eta-t+scale*grad[idx]) + math.Sqrt(t)*noiseStd*rng.Norm()
			if v < 0 {
				v = -v
			}
			if v < cfg.PhiFloor {
				v = cfg.PhiFloor
			}
			theta[idx] = v
		}
	}
}
