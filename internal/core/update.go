package core

import (
	"math"

	"repro/internal/mathx"
)

// PhiScratch holds the per-worker buffers for UpdatePhi so the inner loops
// allocate nothing. One instance per goroutine.
type PhiScratch struct {
	grad []float64
	q    []float64
	w    []float64
	phi  []float64
}

// NewPhiScratch allocates scratch for dimension k.
func NewPhiScratch(k int) *PhiScratch {
	return &PhiScratch{
		grad: make([]float64, k),
		q:    make([]float64, k),
		w:    make([]float64, k),
		phi:  make([]float64, k),
	}
}

// UpdatePhi computes the SGRLD update of Eqn (5) for one vertex a and writes
// the new φ_a into newPhi (length K). The neighbor set is given as parallel
// slices: piB[j] is neighbor j's π row, linked[j] the observation y_ab, and
// weight[j] the estimator weight (Σ weights replaces the paper's N/|V_n|
// factor). rng must be the vertex's deterministic stream for this iteration.
//
// The caller applies the result with State.SetPhiRow after all vertices of
// the minibatch have been computed — the same read/write phase separation
// the paper enforces with an MPI barrier.
func UpdatePhi(cfg *Config, eps float64, piA []float32, phiSumA float64,
	piB [][]float32, linked []bool, weight []float64,
	beta []float64, rng *mathx.RNG, newPhi []float64, sc *PhiScratch) {

	k := cfg.K
	for i := 0; i < k; i++ {
		sc.grad[i] = 0
	}
	for j, rowB := range piB {
		phiGradient(piA, rowB, beta, cfg.Delta, linked[j], weight[j], sc.grad, sc.q, sc.w)
	}
	invPhiSum := 1 / phiSumA
	halfEps := eps / 2
	noiseStd := math.Sqrt(eps)
	for i := 0; i < k; i++ {
		phi := float64(piA[i]) * phiSumA
		grad := sc.grad[i] * invPhiSum
		v := phi + halfEps*(cfg.Alpha-phi+grad) + math.Sqrt(phi)*noiseStd*rng.Norm()
		if v < 0 {
			v = -v // the reflection |·| of Eqn (5)
		}
		if v < cfg.PhiFloor {
			v = cfg.PhiFloor
		}
		newPhi[i] = v
	}
}

// ThetaScratch holds per-worker buffers for the global update.
type ThetaScratch struct {
	w []float64
}

// NewThetaScratch allocates scratch for dimension k.
func NewThetaScratch(k int) *ThetaScratch {
	return &ThetaScratch{w: make([]float64, k)}
}

// AccumulateThetaGrad adds the pair (a, b)'s contribution (Eqn 4) to grad,
// which has the 2K layout of State.Theta.
func AccumulateThetaGrad(piA, piB []float32, theta, beta []float64, delta float64, linked bool, grad []float64, sc *ThetaScratch) {
	thetaGradient(piA, piB, theta, beta, delta, linked, grad, sc.w)
}

// ApplyThetaUpdate performs the SGRLD step of Eqn (3) on theta in place:
// grad is the minibatch gradient sum, scale the h(E_n) factor, rng the
// iteration's deterministic θ stream. Beta is NOT refreshed; callers do that
// once the new θ is final.
func ApplyThetaUpdate(cfg *Config, eps, scale float64, grad, theta []float64, rng *mathx.RNG) {
	halfEps := eps / 2
	noiseStd := math.Sqrt(eps)
	for k := 0; k < cfg.K; k++ {
		for i := 0; i < 2; i++ {
			idx := k*2 + i
			eta := cfg.Eta0
			if i == 1 {
				eta = cfg.Eta1
			}
			t := theta[idx]
			v := t + halfEps*(eta-t+scale*grad[idx]) + math.Sqrt(t)*noiseStd*rng.Norm()
			if v < 0 {
				v = -v
			}
			if v < cfg.PhiFloor {
				v = cfg.PhiFloor
			}
			theta[idx] = v
		}
	}
}
