package core

// PosteriorMean accumulates a running average of the chain's π and β samples.
// A single SGLD sample is noisy (the injected Langevin noise never vanishes
// at a fixed step size); the posterior mean over the tail of the chain is
// the estimator actually used for downstream tasks like community
// extraction. Memory is one extra float64 copy of π.
type PosteriorMean struct {
	n    int
	k    int
	t    int
	pi   []float64
	beta []float64
}

// NewPosteriorMean creates an empty accumulator for an N×K model.
func NewPosteriorMean(n, k int) *PosteriorMean {
	return &PosteriorMean{n: n, k: k, pi: make([]float64, n*k), beta: make([]float64, k)}
}

// Samples returns how many states have been folded in.
func (p *PosteriorMean) Samples() int { return p.t }

// Add folds one chain state into the running means.
func (p *PosteriorMean) Add(s *State) {
	if s.N != p.n || s.K != p.k {
		panic("core: posterior accumulator shape mismatch")
	}
	p.t++
	inv := 1 / float64(p.t)
	for i, v := range s.Pi {
		p.pi[i] += (float64(v) - p.pi[i]) * inv
	}
	for i, v := range s.Beta {
		p.beta[i] += (v - p.beta[i]) * inv
	}
}

// State materialises the averaged estimate as a core.State (π rows are
// re-normalised against float32 rounding; Σφ and θ carry placeholder values
// consistent with β). It panics if no samples were added.
func (p *PosteriorMean) State() *State {
	if p.t == 0 {
		panic("core: posterior mean requested before any sample")
	}
	s := &State{
		N:      p.n,
		K:      p.k,
		Pi:     make([]float32, p.n*p.k),
		PhiSum: make([]float64, p.n),
		Theta:  make([]float64, 2*p.k),
		Beta:   append([]float64(nil), p.beta...),
	}
	for a := 0; a < p.n; a++ {
		row := p.pi[a*p.k : (a+1)*p.k]
		var sum float64
		for _, v := range row {
			sum += v
		}
		s.PhiSum[a] = 1
		dst := s.PiRow(a)
		inv := 1 / sum
		for k, v := range row {
			dst[k] = float32(v * inv)
		}
	}
	for k := 0; k < p.k; k++ {
		// θ consistent with the averaged β at unit scale.
		s.Theta[k*2] = 1 - p.beta[k]
		s.Theta[k*2+1] = p.beta[k]
	}
	return s
}
