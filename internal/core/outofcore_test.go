package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// mmapFixture builds a sealed MmapStore holding exactly the rows NewState
// would draw for cfg.
func mmapFixture(t *testing.T, cfg Config, n int) *store.MmapStore {
	t.Helper()
	ms, err := store.CreateMmap(t.TempDir(), n, cfg.K, store.MmapOptions{ShardRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	if err := ms.InitRows(ShellInit(cfg)); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Seal(); err != nil {
		t.Fatal(err)
	}
	return ms
}

// comparePi bit-compares the full π table of an external backend against the
// in-RAM reference state.
func comparePi(t *testing.T, label string, ref *State, ps store.PiStore) {
	t.Helper()
	n, k := ref.N, ref.K
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	var rows store.Rows
	if err := ps.ReadRows(ids, &rows); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < n; a++ {
		if math.Float64bits(rows.PhiSum[a]) != math.Float64bits(ref.PhiSum[a]) {
			t.Fatalf("%s: Σφ[%d] = %v, ref %v (not bit-identical)", label, a, rows.PhiSum[a], ref.PhiSum[a])
		}
		for j := 0; j < k; j++ {
			if math.Float32bits(rows.PiRow(a)[j]) != math.Float32bits(ref.PiRow(a)[j]) {
				t.Fatalf("%s: π[%d][%d] = %v, ref %v (not bit-identical)", label, a, j, rows.PiRow(a)[j], ref.PiRow(a)[j])
			}
		}
	}
}

// TestOutOfCoreParityTrajectory is the acceptance gate of the out-of-core
// path: training against MmapStore and TieredStore produces the same
// trajectory as the in-RAM sampler, bit for bit, iteration by iteration.
func TestOutOfCoreParityTrajectory(t *testing.T) {
	const n, k, iters = 200, 5, 25
	train, held := plantedFixture(t, n, k, 1000, 91)
	cfg := DefaultConfig(k, 17)
	opt := SamplerOptions{Threads: 2, MinibatchPairs: 64}

	ref, err := NewSampler(cfg, train, held, opt)
	if err != nil {
		t.Fatal(err)
	}

	backends := []struct {
		label string
		ps    store.PiStore
	}{}
	ms := mmapFixture(t, cfg, n)
	backends = append(backends, struct {
		label string
		ps    store.PiStore
	}{"mmap", ms})
	tierBase := mmapFixture(t, cfg, n)
	tier, err := store.NewTiered(tierBase, nil, 64, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	backends = append(backends, struct {
		label string
		ps    store.PiStore
	}{"tiered", tier})

	samplers := make([]*Sampler, len(backends))
	for i, b := range backends {
		bo := opt
		bo.Store = b.ps
		s, err := NewSampler(cfg, train, held, bo)
		if err != nil {
			t.Fatal(err)
		}
		if s.State.Pi != nil || s.State.PhiSum != nil {
			t.Fatalf("%s: external-store sampler allocated in-RAM π slabs", b.label)
		}
		samplers[i] = s
	}

	for it := 0; it < iters; it++ {
		ref.Step()
		for i, b := range backends {
			if err := samplers[i].TryStep(); err != nil {
				t.Fatalf("%s: iteration %d: %v", b.label, it, err)
			}
			for j := range ref.State.Theta {
				if math.Float64bits(samplers[i].State.Theta[j]) != math.Float64bits(ref.State.Theta[j]) {
					t.Fatalf("%s: iteration %d: θ[%d] = %v, ref %v (not bit-identical)",
						b.label, it, j, samplers[i].State.Theta[j], ref.State.Theta[j])
				}
			}
		}
	}
	for i, b := range backends {
		comparePi(t, b.label, ref.State, b.ps)
		refPerp := ref.EvalPerplexity()
		if got := samplers[i].EvalPerplexity(); math.Float64bits(got) != math.Float64bits(refPerp) {
			t.Fatalf("%s: perplexity %v, ref %v (not bit-identical)", b.label, got, refPerp)
		}
	}
	// The tier actually served traffic from its hot cache during the run.
	if st := tier.Stats(); st.HotHits == 0 || st.MmapHits == 0 {
		t.Fatalf("tier saw no traffic: %+v", st)
	}
}

// TestOutOfCoreCheckpointRoundTrip pins the streamed checkpoint paths to the
// in-RAM format: same bytes out, bit-identical state back in, and a resumed
// out-of-core run continues the reference trajectory exactly.
func TestOutOfCoreCheckpointRoundTrip(t *testing.T) {
	const n, k = 150, 4
	train, held := plantedFixture(t, n, k, 800, 92)
	cfg := DefaultConfig(k, 23)
	opt := SamplerOptions{Threads: 1, MinibatchPairs: 48}

	ref, err := NewSampler(cfg, train, held, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(10)

	dir := t.TempDir()
	inRAM := filepath.Join(dir, "inram.ckpt")
	if err := ref.State.SaveFile(inRAM, ref.Iteration()); err != nil {
		t.Fatal(err)
	}

	// Streamed save of the equivalent store view must be byte-identical.
	view := store.NewLocal(ref.State.Pi, ref.State.PhiSum, k, 1)
	streamed := filepath.Join(dir, "streamed.ckpt")
	if err := SaveStoreFile(streamed, view, ref.State.Theta, ref.Iteration()); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(inRAM)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("streamed checkpoint is %d bytes, in-RAM %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streamed checkpoint differs from in-RAM at byte %d", i)
		}
	}

	// Streamed restore into a fresh mmap store: rows land bit-identically.
	ms := mmapFixture(t, cfg, n)
	theta, iter, err := LoadStoreFile(inRAM, ms)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 10 {
		t.Fatalf("restored iteration %d, want 10", iter)
	}
	for i := range theta {
		if math.Float64bits(theta[i]) != math.Float64bits(ref.State.Theta[i]) {
			t.Fatalf("restored θ[%d] = %v, ref %v", i, theta[i], ref.State.Theta[i])
		}
	}
	comparePi(t, "restored mmap", ref.State, ms)

	// Resume out-of-core and run 5 more iterations against the in-RAM
	// continuation: still the same trajectory.
	bo := opt
	bo.Store = ms
	resumed, err := NewSampler(cfg, train, held, bo)
	if err != nil {
		t.Fatal(err)
	}
	shell, err := NewStateShell(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	copy(shell.Theta, theta)
	shell.RefreshBeta()
	if err := Resume(cfg, train, shell, iter, resumed); err != nil {
		t.Fatal(err)
	}
	ref.Run(5)
	for i := 0; i < 5; i++ {
		if err := resumed.TryStep(); err != nil {
			t.Fatal(err)
		}
	}
	if resumed.Iteration() != ref.Iteration() {
		t.Fatalf("resumed at iteration %d, ref %d", resumed.Iteration(), ref.Iteration())
	}
	for j := range ref.State.Theta {
		if math.Float64bits(resumed.State.Theta[j]) != math.Float64bits(ref.State.Theta[j]) {
			t.Fatalf("resumed θ[%d] diverged: %v vs %v", j, resumed.State.Theta[j], ref.State.Theta[j])
		}
	}
	comparePi(t, "resumed mmap", ref.State, ms)

	// Shape mismatches fail typed before any row is written.
	wrong := mmapFixture(t, DefaultConfig(k, 23), n+1)
	if _, _, err := LoadStoreFile(inRAM, wrong); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
