package core

import (
	"math"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sampling"
	"repro/internal/store"
	"repro/internal/trace"
)

// This file is the shared algorithm core: each phase of the paper's
// iteration (Table III) implemented once against the store.PiStore
// abstraction. The local sampler wires these to a store.LocalStore, the
// distributed engine to a store.DKVStore — so a Ranks=1 distributed run is
// the single-process sampler by construction, and scaling work (caching,
// batching, alternative backends) lands in one place.

// DrawMinibatch samples iteration t's edge minibatch from the deterministic
// per-iteration RNG stream (the draw_minibatch phase; master-only in the
// distributed engine).
func DrawMinibatch(cfg *Config, edges sampling.EdgeStrategy, t int, dst *sampling.Batch) {
	edges.Sample(mathx.NewStream(cfg.Seed, StreamMinibatch(t)), dst)
}

// PhiStage is the dominant update_phi phase: for each minibatch vertex,
// sample its neighbor set, load the π rows through the store, and compute
// the staged φ row. Vertices are processed in chunks of ChunkNodes; chunks
// run either serially (load, compute, load, compute, ...) or with the
// paper's pipelined buffering, where the next chunks' π rows stream in while
// the current chunk computes. Which schedule actually runs is decided per
// call by plan(): stores that answer reads from local memory always take the
// fused serial path (one chunk, one batched read — a pipeline would only add
// channel/goroutine overhead, the in-proc slowdown this policy removes),
// while remote-reading stores overlap ReadRowsAsync with compute. Loads and
// computes are timed into Trace under the update_phi.load_pi /
// update_phi.compute sub-phases.
//
// A PhiStage owns persistent staging buffers and per-worker scratch, so the
// steady-state iteration allocates nothing; construct one per engine and
// reuse it across iterations (reassigning Store per call is fine).
type PhiStage struct {
	Cfg     *Config
	Store   store.PiStore
	Neigh   sampling.NeighborStrategy
	Threads int
	// ChunkNodes is the pipeline chunk size in minibatch vertices; <= 0
	// selects the automatic policy (see plan).
	ChunkNodes int
	// Pipelined requests the overlapped schedule; it is demoted to the
	// fused serial path when the store's reads are local (see plan).
	Pipelined bool
	// Depth is the number of pipeline buffer slots (the loader may run
	// Depth-1 chunks ahead); <= 2 means double buffering, the paper's
	// scheme.
	Depth int
	Trace *trace.Phases
	// Rec, when non-nil, additionally receives the load_pi/compute
	// sub-stage durations so per-iteration events carry the full Table III
	// breakdown. With pipelining on, load and compute report concurrently —
	// Recorder implementations are safe for that.
	Rec obs.Recorder

	// bufs holds one phiChunk per pipeline slot and scratch one PhiScratch
	// per worker index; both grow on demand and persist across iterations.
	bufs    []phiChunk
	scratch []*PhiScratch
}

// minPhiChunk floors the automatic pipeline chunk size: below ~64 vertices
// the per-chunk goroutine/channel handoff is comparable to the compute it
// schedules and the pipeline loses even against remote stores.
const minPhiChunk = 64

// plan resolves the schedule for a minibatch of n vertices: whether to
// pipeline, the chunk size, and the slot count. Pipelining is demoted to
// serial when the store reads from local memory (nothing to overlap) or when
// the minibatch yields fewer than two chunks. The automatic chunk size aims
// for 4·depth chunks — enough in-flight fetches to hide bursty latency, few
// enough that handoff overhead stays negligible — floored at minPhiChunk.
// The serial path uses a single chunk: one batched read, then the fused
// compute sweep.
func (p *PhiStage) plan(n int) (pipelined bool, chunkN, depth int) {
	depth = p.Depth
	if depth < 2 {
		depth = 2
	}
	pipelined = p.Pipelined && !store.ReadsAreLocal(p.Store)
	chunkN = p.ChunkNodes
	if chunkN <= 0 {
		if !pipelined {
			return false, n, 1
		}
		chunkN = (n + 4*depth - 1) / (4 * depth)
		if chunkN < minPhiChunk {
			chunkN = minPhiChunk
		}
	}
	if pipelined && (n+chunkN-1)/chunkN < 2 {
		pipelined = false
		depth = 1
	}
	return pipelined, chunkN, depth
}

// phiChunk is one slot's staging buffers, reused across chunks and
// iterations. rngs holds RNG values (not pointers) reseeded in place per
// vertex, so steady-state loads allocate nothing.
type phiChunk struct {
	lo, hi  int
	rngs    []mathx.RNG
	samples []sampling.NeighborSample
	keys    []int32
	nodeOff []int // index into keys/rows where vertex i's rows begin
	rows    store.Rows
}

// Run computes newPhi (len(nodes)·K, row-major, caller-sized) for iteration
// t. Every vertex's RNG stream is keyed by (t, vertex), so the result is
// independent of chunking, threading, scheduling, and backend.
func (p *PhiStage) Run(t int, eps float64, nodes []int32, beta []float64, newPhi []float64) error {
	if len(nodes) == 0 {
		return nil
	}
	k := p.Cfg.K
	pipelined, chunkN, depth := p.plan(len(nodes))
	nChunks := (len(nodes) + chunkN - 1) / chunkN
	for len(p.bufs) < depth {
		p.bufs = append(p.bufs, phiChunk{})
	}
	bufs := p.bufs
	// errVal is shared between the pipeline's load goroutine and the compute
	// caller; guard it with a mutex rather than relying on ordering.
	var errMu sync.Mutex
	var errVal error
	setErr := func(err error) {
		errMu.Lock()
		if errVal == nil {
			errVal = err
		}
		errMu.Unlock()
	}
	hasErr := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return errVal != nil
	}

	// record times one sub-stage interval into Trace and, when attached,
	// the live Recorder.
	record := func(name string, start time.Time) {
		d := time.Since(start)
		if p.Trace != nil {
			p.Trace.Add(name, d)
		}
		if p.Rec != nil {
			p.Rec.StageDone(t, name, d)
		}
	}

	load := func(c, slot int) {
		if hasErr() {
			return
		}
		defer record(engine.PhaseLoadPi, time.Now())
		b := &bufs[slot]
		b.lo = c * chunkN
		b.hi = min(b.lo+chunkN, len(nodes))
		cnt := b.hi - b.lo
		b.keys = b.keys[:0]
		b.nodeOff = b.nodeOff[:0]
		if cap(b.rngs) < cnt {
			b.rngs = make([]mathx.RNG, cnt)
		}
		b.rngs = b.rngs[:cnt]
		if cap(b.samples) < cnt {
			b.samples = make([]sampling.NeighborSample, cnt)
		}
		b.samples = b.samples[:cnt]
		for i := 0; i < cnt; i++ {
			a := nodes[b.lo+i]
			rng := &b.rngs[i]
			rng.SeedStream(p.Cfg.Seed, StreamVertex(t, int(a)))
			p.Neigh.Sample(a, rng, &b.samples[i])
			b.nodeOff = append(b.nodeOff, len(b.keys))
			b.keys = append(b.keys, a)
			b.keys = append(b.keys, b.samples[i].Nodes...)
		}
		pend, err := p.Store.ReadRowsAsync(b.keys, &b.rows)
		if err != nil {
			setErr(err)
			return
		}
		if err := pend.Wait(); err != nil {
			setErr(err)
		}
	}

	// Per-worker scratch is pooled on the stage and indexed by ForWorkers'
	// worker id. Only one compute runs at a time (chunks are computed
	// strictly in order even when pipelined) and workers own disjoint ids,
	// so the pool needs no locking.
	workers := par.Workers(len(nodes), p.Threads)
	for len(p.scratch) < workers {
		p.scratch = append(p.scratch, NewPhiScratch(k))
	}

	compute := func(c, slot int) {
		if hasErr() {
			return
		}
		defer record(engine.PhaseComputePhi, time.Now())
		b := &bufs[slot]
		par.ForWorkers(b.hi-b.lo, p.Threads, func(w, wLo, wHi int) {
			sc := p.scratch[w]
			rows := sc.Rows()
			for i := wLo; i < wHi; i++ {
				ns := &b.samples[i]
				base := b.nodeOff[i]
				rows = rows[:0]
				for j := range ns.Nodes {
					rows = append(rows, b.rows.PiRow(base+1+j))
				}
				idx := b.lo + i
				UpdatePhi(p.Cfg, eps, b.rows.PiRow(base), b.rows.PhiSum[base],
					rows, ns.Linked, ns.Scale, beta, &b.rngs[i],
					newPhi[idx*k:(idx+1)*k], sc)
			}
			sc.SetRows(rows)
		})
	}

	if pipelined {
		par.PipelineDepth(nChunks, depth, load, compute)
	} else {
		par.Serial(nChunks, load, compute)
	}
	errMu.Lock()
	defer errMu.Unlock()
	return errVal
}

// ThetaPartials is the gradient half of the update_beta_theta phase: it
// reads the (fresh, post-update_pi) π rows of the given pairs through the
// store and accumulates the θ-gradient per ThetaChunk-sized chunk, returning
// the per-chunk partial vectors flattened as nChunks·2K float64s. The chunks
// fold in chunk order (FoldThetaPartials), so the summation order — and the
// trained model — is identical across thread counts, rank counts, and
// backends, as long as rank partitions are ThetaChunk-aligned.
func ThetaPartials(cfg *Config, ps store.PiStore, pairs []graph.Edge, link []bool, theta, beta []float64, threads int) ([]float64, error) {
	k := cfg.K
	nChunks := (len(pairs) + ThetaChunk - 1) / ThetaChunk
	partials := make([]float64, nChunks*2*k)
	if len(pairs) == 0 {
		return partials, nil
	}
	keys := make([]int32, 0, 2*len(pairs))
	for _, e := range pairs {
		keys = append(keys, e.A, e.B)
	}
	var rows store.Rows
	if err := ps.ReadRows(keys, &rows); err != nil {
		return nil, err
	}
	par.ForEach(nChunks, threads, func(c int) {
		lo := c * ThetaChunk
		hi := min(lo+ThetaChunk, len(pairs))
		acc := partials[c*2*k : (c+1)*2*k]
		sc := NewThetaScratch(k)
		for i := lo; i < hi; i++ {
			AccumulateThetaGrad(rows.PiRow(2*i), rows.PiRow(2*i+1),
				theta, beta, cfg.Delta, link[i], acc, sc)
		}
	})
	return partials, nil
}

// FoldThetaPartials folds chunk partial vectors (concatenated 2K-wide
// chunks, as returned by ThetaPartials) into grad in chunk order. The
// distributed master calls it once per rank in rank order, which — with
// chunk-aligned rank partitions — reproduces the sequential fold exactly.
func FoldThetaPartials(grad, partials []float64, k int) {
	w := 2 * k
	for off := 0; off < len(partials); off += w {
		chunk := partials[off : off+w]
		for i, v := range chunk {
			grad[i] += v
		}
	}
}

// HeldOutEval is the store-backed held-out perplexity evaluator (Eqn 7,
// the perplexity phase): it keeps the running posterior-mean probability of
// each held-out pair in a shard [Lo, Hi) and folds one posterior sample per
// call. The local sampler owns the full range; each distributed rank owns a
// PerplexityChunk-aligned shard and the master sums the returned per-chunk
// log partials across ranks in rank order — the same fold order as the
// sequential ChunkedReduce.
type HeldOutEval struct {
	Held   *graph.HeldOut
	Delta  float64
	Lo, Hi int // pair index shard, PerplexityChunk-aligned
	Avg    []float64
	T      int // posterior samples folded so far
}

// NewHeldOutEval creates an evaluator for shard [lo, hi) of held.
func NewHeldOutEval(held *graph.HeldOut, delta float64, lo, hi int) *HeldOutEval {
	return &HeldOutEval{Held: held, Delta: delta, Lo: lo, Hi: hi, Avg: make([]float64, hi-lo)}
}

// Fold folds the current π (read through ps) and β in as one posterior
// sample and returns the shard's per-chunk Σlog(avg) partials.
func (h *HeldOutEval) Fold(ps store.PiStore, beta []float64, threads int) ([]float64, error) {
	h.T++
	tInv := 1 / float64(h.T)
	nLocal := h.Hi - h.Lo
	nChunks := (nLocal + PerplexityChunk - 1) / PerplexityChunk
	partials := make([]float64, nChunks)
	if nLocal == 0 {
		return partials, nil
	}
	keys := make([]int32, 0, 2*nLocal)
	for i := h.Lo; i < h.Hi; i++ {
		e := h.Held.Pairs[i]
		keys = append(keys, e.A, e.B)
	}
	var rows store.Rows
	if err := ps.ReadRows(keys, &rows); err != nil {
		return nil, err
	}
	par.ForEach(nChunks, threads, func(c int) {
		lo := c * PerplexityChunk
		hi := min(lo+PerplexityChunk, nLocal)
		var logSum float64
		for i := lo; i < hi; i++ {
			prob := EdgeProbability(rows.PiRow(2*i), rows.PiRow(2*i+1), beta, h.Delta, h.Held.Linked[h.Lo+i])
			h.Avg[i] += (prob - h.Avg[i]) * tInv
			v := h.Avg[i]
			if v < 1e-300 {
				v = 1e-300
			}
			logSum += math.Log(v)
		}
		partials[c] = logSum
	})
	return partials, nil
}

// PerplexityFromLogSum turns a summed Σlog(avg) over n held-out pairs into
// the averaged perplexity of Eqn (7).
func PerplexityFromLogSum(logSum float64, n int) float64 {
	return math.Exp(-logSum / float64(n))
}
