package experiments

import (
	"strings"
	"testing"
)

func TestTableIIFast(t *testing.T) {
	out, err := TableII(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"com-livejournal-sim", "com-friendster-sim", "com-orkut-sim",
		"com-youtube-sim", "com-dblp-sim", "com-amazon-sim"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table II missing %s", name)
		}
	}
	if !strings.Contains(out, "65608366") {
		t.Error("Table II missing paper Friendster vertex count")
	}
}

func TestFig1Series(t *testing.T) {
	out := Fig1()
	if !strings.Contains(out, "strong scaling") || !strings.Contains(out, "speedup") {
		t.Fatalf("Figure 1 output malformed:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 10 {
		t.Fatalf("Figure 1 has %d lines, want a full series", lines)
	}
}

func TestModelFigureSeriesRender(t *testing.T) {
	for name, out := range map[string]string{
		"fig2":     Fig2(),
		"fig3":     Fig3(),
		"tableIII": TableIII(),
		"fig4":     Fig4(),
		"fig5":     Fig5(),
	} {
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short:\n%s", name, out)
		}
	}
	if !strings.Contains(TableIII(), "load_pi") {
		t.Error("Table III missing the load_pi substage")
	}
	if !strings.Contains(Fig5(), "qperf") {
		t.Error("Figure 5 missing the qperf baseline")
	}
}

func TestFig1ValidationRealRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("real distributed runs too slow for -short")
	}
	out, err := Fig1Validation(20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ranks") || strings.Count(out, "\n") < 5 {
		t.Fatalf("validation output malformed:\n%s", out)
	}
}

func TestFig6SmallPresetRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence run too slow for -short")
	}
	out, err := Fig6(Fig6Config{
		Preset: "com-dblp-sim", K: 16, Ranks: 2, Threads: 2,
		Iterations: 30, EvalEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "perplexity") || !strings.Contains(out, "recovery F1") {
		t.Fatalf("Figure 6 output malformed:\n%s", out)
	}
	if strings.Count(out, "\n") < 6 {
		t.Fatalf("Figure 6 missing series rows:\n%s", out)
	}
}

func TestFig6UnknownPreset(t *testing.T) {
	if _, err := Fig6(Fig6Config{Preset: "nope"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestCompareInferenceRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("dual training run too slow for -short")
	}
	out, err := CompareInference(600)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mcmc") || !strings.Contains(out, "svi") {
		t.Fatalf("comparison output malformed:\n%s", out)
	}
	if strings.Count(out, "\n") < 12 {
		t.Fatalf("comparison missing series rows:\n%s", out)
	}
}
