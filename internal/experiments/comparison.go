package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/svi"
)

// CompareInference pits the SG-MCMC sampler against the stochastic
// variational baseline on the same planted graph — the comparison behind the
// paper's choice of algorithm (its introduction cites Li, Ahn & Welling's
// finding that SG-MCMC is faster and more accurate than SVB). Both engines
// see the same held-out split and report perplexity and recovery F1 over
// wall-clock time.
func CompareInference(iters int) (string, error) {
	const n, k = 800, 6
	if iters <= 0 {
		iters = 3000
	}
	g, gt, err := gen.Planted(gen.PlantedConfig{
		N: n, NumCommunities: k, MeanMembership: 1.2,
		SizeSkew: 0.5, TargetEdges: 8000, Background: 0.03, Seed: 77,
	})
	if err != nil {
		return "", err
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(78))
	if err != nil {
		return "", err
	}
	truth := metrics.NewCover(n, gt.Members)

	var b strings.Builder
	fmt.Fprintf(&b, "SG-MCMC vs SVI on a planted graph (N=%d, |E|=%d, K=%d)\n",
		train.NumVertices(), train.NumEdges(), k)
	fmt.Fprintf(&b, "%-8s %10s %12s %14s %8s %8s\n",
		"engine", "iteration", "elapsed (s)", "perplexity", "F1", "NMI")

	// SG-MCMC.
	mcfg := core.DefaultConfig(k, 79)
	mcfg.Alpha = 1.0 / k
	mcfg.StepA = 0.05
	mcfg.StepB = 4096
	mc, err := core.NewSampler(mcfg, train, held, core.SamplerOptions{
		Threads: 0, MinibatchPairs: 256, NeighborCount: 32,
	})
	if err != nil {
		return "", err
	}
	start := time.Now()
	checkpoints := 5
	for c := 1; c <= checkpoints; c++ {
		mc.Run(iters / checkpoints)
		det := metrics.FromState(mc.State, 0)
		fmt.Fprintf(&b, "%-8s %10d %12.2f %14.4f %8.3f %8.3f\n",
			"mcmc", mc.Iteration(), time.Since(start).Seconds(),
			core.Perplexity(mc.State, held, mcfg.Delta, 0),
			metrics.F1Score(det, truth), metrics.NMI(det, truth))
	}

	// SVI: node batches sized so a "checkpoint" covers a comparable number
	// of vertex updates.
	scfg := svi.DefaultConfig(k, 80)
	sv, err := svi.NewSampler(scfg, train, held, svi.Options{Threads: 0, NodeBatch: 128})
	if err != nil {
		return "", err
	}
	sviIters := iters / 2
	start = time.Now()
	for c := 1; c <= checkpoints; c++ {
		sv.Run(sviIters / checkpoints)
		st := sv.PosteriorMeanState()
		det := metrics.FromState(st, 0)
		fmt.Fprintf(&b, "%-8s %10d %12.2f %14.4f %8.3f %8.3f\n",
			"svi", sv.Iteration(), time.Since(start).Seconds(),
			core.Perplexity(st, held, scfg.Delta, 0),
			metrics.F1Score(det, truth), metrics.NMI(det, truth))
	}
	fmt.Fprintf(&b, "\n(SVI starts from a label-propagation sketch, so its F1 starts high\n")
	fmt.Fprintf(&b, "and plateaus; SG-MCMC starts from the prior and overtakes it — the\n")
	fmt.Fprintf(&b, "qualitative comparison of Li, Ahn & Welling that motivated the paper.)\n")
	return b.String(), nil
}
