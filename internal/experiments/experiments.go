// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV). Model-driven experiments (Figures 1-5, Table III)
// use the DAS5-calibrated performance model at the paper's scale; real-run
// experiments (Figure 6, the scaling validation) execute the actual
// distributed engine on the scaled synthetic datasets. Each function returns
// a human-readable table whose rows/series correspond one-to-one with the
// paper's plot.
package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
)

// TableII renders the dataset summary. With generate=true every preset is
// materialised and its realised statistics reported next to the paper's
// originals; otherwise only the targets are shown.
func TableII(generate bool) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — datasets (paper original vs scaled synthetic stand-in)\n")
	fmt.Fprintf(&b, "%-22s %12s %14s %10s | %9s %10s %7s %9s %9s\n",
		"name", "paper |V|", "paper |E|", "paper #gt", "sim |V|", "sim |E|", "sim #c", "overlap", "clustering")
	for _, p := range gen.Presets() {
		simE := p.Edges
		overlap, cc := "-", "-"
		if generate {
			g, gt, err := p.Generate()
			if err != nil {
				return "", err
			}
			simE = g.NumEdges()
			frac, err := gt.OverlapFraction(g.NumVertices())
			if err != nil {
				return "", err
			}
			overlap = fmt.Sprintf("%.2f", frac)
			cc = fmt.Sprintf("%.3f", graph.ClusteringCoefficient(g, 2000, mathx.NewRNG(p.Seed+7)))
		}
		fmt.Fprintf(&b, "%-22s %12d %14d %10d | %9d %10d %7d %9s %9s\n",
			p.Name, p.PaperVertices, p.PaperEdges, p.PaperCommunities,
			p.N, simE, p.Communities, overlap, cc)
	}
	return b.String(), nil
}

// Fig1 models the strong-scaling experiment: 2048 iterations of
// com-Friendster (K=1024, M=16384, |V_n|=32) across 8..64 DAS5 nodes.
func Fig1() string {
	const iters = 2048
	m, net, w := perfmodel.DAS5(), simnet.DKVStore(), perfmodel.PaperFriendster()
	sizes := []int{8, 16, 24, 32, 40, 48, 56, 64}
	pts := perfmodel.StrongScaling(m, net, w, sizes, true)
	sp := perfmodel.Speedup(pts)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — strong scaling, com-Friendster, K=%d, M=%d, |V_n|=%d, %d iterations (model: DAS5)\n",
		w.K, w.M, w.NeighborCount, iters)
	fmt.Fprintf(&b, "%6s %12s %14s %16s %12s %10s\n",
		"nodes", "total (s)", "update_phi_pi", "update_beta (s)", "deploy (s)", "speedup")
	for i, p := range pts {
		e := p.E
		fmt.Fprintf(&b, "%6d %12.1f %14.1f %16.1f %12.1f %10.2f\n",
			p.C, e.Total*iters, (e.UpdatePhi+e.UpdatePi)*iters, e.UpdateBetaTheta*iters,
			(e.DrawMinibatch+e.DeployMinibatch)*iters, sp[i])
	}
	return b.String()
}

// Fig1Validation runs the REAL distributed engine at small rank counts on a
// scaled workload and reports the measured strong-scaling shape, validating
// the model's phase structure on this host.
func Fig1Validation(iters int) (string, error) {
	if iters <= 0 {
		iters = 60
	}
	g, _, err := gen.Planted(gen.DefaultPlanted(4000, 32, 40000, 17))
	if err != nil {
		return "", err
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(18))
	if err != nil {
		return "", err
	}
	cfg := core.DefaultConfig(64, 23)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 validation — real engine, N=%d, |E|=%d, K=%d, %d iterations\n",
		train.NumVertices(), train.NumEdges(), cfg.K, iters)
	fmt.Fprintf(&b, "%6s %12s %14s %14s %14s\n", "ranks", "total (s)", "update_phi", "update_beta", "remote frac")
	for _, ranks := range []int{1, 2, 4} {
		res, err := dist.Run(cfg, train, held, dist.Options{
			Ranks: ranks, Threads: 2, Iterations: iters, Pipeline: true,
			MinibatchPairs: 512, NeighborCount: 32,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%6d %12.3f %14.3f %14.3f %14.2f\n",
			ranks, res.Elapsed.Seconds(),
			res.Phases.Total(dist.PhaseUpdatePhi).Seconds(),
			res.Phases.Total(dist.PhaseUpdateBetaTheta).Seconds(),
			res.RemoteFrac)
	}
	return b.String(), nil
}

// Fig2 models weak scaling: K grows proportionally to the cluster size.
func Fig2() string {
	m, net, w := perfmodel.DAS5(), simnet.DKVStore(), perfmodel.PaperFriendster()
	sizes := []int{4, 8, 16, 32, 48, 64}
	const kPerNode = 192
	pts := perfmodel.WeakScaling(m, net, w, sizes, kPerNode)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — weak scaling, K = %d × nodes (model: DAS5)\n", kPerNode)
	fmt.Fprintf(&b, "%6s %6s %18s\n", "nodes", "K", "time/iteration (ms)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d %6d %18.1f\n", p.C, kPerNode*p.C, p.E.Total*1000)
	}
	return b.String()
}

// Fig3 models the pipelining experiment: single vs double buffering on 64
// nodes across community counts, 1024 iterations.
func Fig3() string {
	const iters = 1024
	m, net, w := perfmodel.DAS5(), simnet.DKVStore(), perfmodel.PaperFriendster()
	ks := []int{1024, 2048, 4096, 6144, 8192, 10240, 12288}
	pts := perfmodel.PipelineSweep(m, net, w, 64, ks)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — single vs double buffering, 64 nodes, %d iterations (model: DAS5)\n", iters)
	fmt.Fprintf(&b, "%7s %16s %16s %10s\n", "K", "single (s)", "double (s)", "gap (s)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%7d %16.1f %16.1f %10.1f\n",
			p.K, p.Single*iters, p.Double*iters, (p.Single-p.Double)*iters)
	}
	return b.String()
}

// Fig3Validation runs the real engine with and without double buffering.
func Fig3Validation(iters int) (string, error) {
	if iters <= 0 {
		iters = 40
	}
	g, _, err := gen.Planted(gen.DefaultPlanted(3000, 16, 30000, 29))
	if err != nil {
		return "", err
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(30))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 validation — real engine, 4 ranks, %d iterations\n", iters)
	fmt.Fprintf(&b, "%7s %16s %16s\n", "K", "single (s)", "double (s)")
	for _, k := range []int{32, 64, 128} {
		cfg := core.DefaultConfig(k, 31)
		opt := dist.Options{Ranks: 4, Threads: 2, Iterations: iters, MinibatchPairs: 256, NeighborCount: 32}
		single, err := dist.Run(cfg, train, held, opt)
		if err != nil {
			return "", err
		}
		opt.Pipeline = true
		double, err := dist.Run(cfg, train, held, opt)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%7d %16.3f %16.3f\n", k, single.Elapsed.Seconds(), double.Elapsed.Seconds())
	}
	return b.String(), nil
}

// TableIII models the per-stage breakdown: com-Friendster on 65 nodes with
// K = 12288, pipelined and not, in ms per iteration.
func TableIII() string {
	w := perfmodel.PaperFriendster()
	w.K = 12288
	m, net := perfmodel.DAS5(), simnet.DKVStore()
	nonPip := perfmodel.Iteration(m, net, w, 64, false)
	pip := perfmodel.Iteration(m, net, w, 64, true)
	paper := map[string][2]float64{
		"total":                  {450, 365},
		"draw/deploy mini-batch": {45.6, 26.2},
		"update_phi":             {285, 241},
		"update_pi":              {3.8, 4.6},
		"update_beta/theta":      {25.9, 33.6},
		"load_pi":                {205, 209},
		"compute_phi":            {74, 74},
	}
	rows := []struct {
		name     string
		non, pip float64
	}{
		{"total", nonPip.Total, pip.Total},
		{"draw/deploy mini-batch", nonPip.DrawMinibatch + nonPip.DeployMinibatch, pip.DrawMinibatch + pip.DeployMinibatch},
		{"update_phi", nonPip.UpdatePhi, pip.UpdatePhi},
		{"update_pi", nonPip.UpdatePi, pip.UpdatePi},
		{"update_beta/theta", nonPip.UpdateBetaTheta, pip.UpdateBetaTheta},
		{"load_pi", nonPip.LoadPi, pip.LoadPi},
		{"compute_phi", nonPip.ComputePhi, pip.ComputePhi},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — stage breakdown, com-Friendster, 65 nodes, K=12288 (ms/iteration)\n")
	fmt.Fprintf(&b, "%-26s %14s %12s %14s %12s\n", "stage", "model nonpip", "paper", "model pip", "paper")
	for _, r := range rows {
		p := paper[r.name]
		fmt.Fprintf(&b, "%-26s %14.1f %12.1f %14.1f %12.1f\n", r.name, r.non*1000, p[0], r.pip*1000, p[1])
	}
	return b.String()
}

// Fig4 models horizontal vs vertical scaling: (a) com-DBLP on a big
// shared-memory node with 16 vs 40 cores against a DAS5 node; (b)
// com-Friendster on 64 DAS5 nodes against the 40-core node.
func Fig4() string {
	var b strings.Builder

	// (a) com-DBLP-sized workload on single machines.
	dblp := perfmodel.Workload{
		Name: "com-dblp", N: 317080, MinibatchPairs: 1024, M: 2048,
		NeighborCount: 32, MeanDegree: 6.6, HeldOut: 10240,
	}
	fmt.Fprintf(&b, "Figure 4a — com-DBLP, single machines (model), time/iteration (ms)\n")
	fmt.Fprintf(&b, "%7s %16s %16s %16s\n", "K", "HPCCloud/40", "HPCCloud/16", "DAS5 node/16")
	for _, k := range []int{1024, 4096, 8192, 16384, 32768} {
		w := dblp
		w.K = k
		t40 := perfmodel.SingleNode(perfmodel.HPCCloud(), w, 40).Total
		t16 := perfmodel.SingleNode(perfmodel.HPCCloud(), w, 16).Total
		das := perfmodel.SingleNode(perfmodel.DAS5(), w, 16).Total
		fmt.Fprintf(&b, "%7d %16.1f %16.1f %16.1f\n", k, t40*1000, t16*1000, das*1000)
	}

	// (b) com-Friendster: 64-node cluster vs the 40-core node.
	fmt.Fprintf(&b, "\nFigure 4b — com-Friendster, 64-node DAS5 vs 40-core HPC Cloud (model), time/iteration (ms)\n")
	fmt.Fprintf(&b, "%7s %16s %16s %8s\n", "K", "distributed", "vertical", "ratio")
	pts := perfmodel.HorizontalVsVertical(perfmodel.DAS5(), perfmodel.HPCCloud(), simnet.DKVStore(),
		perfmodel.PaperFriendster(), 64, 40, []int{1024, 2048, 4096, 8192, 12288})
	for _, p := range pts {
		fmt.Fprintf(&b, "%7d %16.1f %16.1f %8.1f\n", p.K, p.Distributed*1000, p.Vertical*1000, p.Vertical/p.Distributed)
	}
	return b.String()
}

// Fig4Validation compares the real single-node threaded sampler against the
// real distributed engine on this host.
func Fig4Validation(iters int) (string, error) {
	if iters <= 0 {
		iters = 40
	}
	g, _, err := gen.Planted(gen.DefaultPlanted(3000, 16, 30000, 37))
	if err != nil {
		return "", err
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(38))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 validation — real engines, %d iterations\n", iters)
	fmt.Fprintf(&b, "%7s %20s %20s\n", "K", "single node (s)", "4-rank cluster (s)")
	for _, k := range []int{32, 64} {
		cfg := core.DefaultConfig(k, 39)
		seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 4, MinibatchPairs: 256})
		if err != nil {
			return "", err
		}
		start := time.Now()
		seq.Run(iters)
		seqTime := time.Since(start)
		res, err := dist.Run(cfg, train, held, dist.Options{
			Ranks: 4, Threads: 2, Iterations: iters, Pipeline: true, MinibatchPairs: 256,
		})
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%7d %20.3f %20.3f\n", k, seqTime.Seconds(), res.Elapsed.Seconds())
	}
	return b.String(), nil
}

// Fig5 models the DKV bandwidth against the qperf raw-RDMA baseline.
func Fig5() string {
	pts := perfmodel.BandwidthSweep(simnet.FDRInfiniBand(), simnet.DKVStore(), perfmodel.Fig5Payloads())
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — DKV vs qperf bandwidth by payload size (model: FDR InfiniBand)\n")
	fmt.Fprintf(&b, "%10s %14s %14s %8s\n", "payload", "qperf (GB/s)", "DKV (GB/s)", "ratio")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %14.2f %14.2f %8.2f\n",
			p.PayloadBytes, p.QperfBps/1e9, p.DKVBps/1e9, p.DKVBps/p.QperfBps)
	}
	return b.String()
}

// Fig6Config controls a convergence run.
type Fig6Config struct {
	Preset string
	// Scale further divides the preset's (already scaled) vertex and edge
	// counts so a single machine reaches convergence in minutes rather than
	// the paper's hours; 0 defaults to 20.
	Scale      int
	K          int // 0 = scaled ground-truth count, clamped to [8, 16]
	Ranks      int
	Threads    int
	Iterations int // 0 = sized for ~1200 φ updates per vertex
	EvalEvery  int
	HeldOutDiv int // held-out size = |E| / HeldOutDiv
	// EventsOut, when non-empty, saves the run's JSONL telemetry stream to
	// this file; Fig6FromEvents rebuilds the convergence table from it later
	// without re-running the engine.
	EventsOut string
}

// Fig6 runs a REAL convergence experiment on one scaled dataset and reports
// perplexity against wall-clock time, plus recovery F1 against the planted
// ground truth. Convergence needs many updates per vertex (the paper trains
// for hours on 65 nodes), so the workload is scaled until that is reachable
// on one machine.
func Fig6(c Fig6Config) (string, error) {
	p, err := gen.PresetByName(c.Preset)
	if err != nil {
		return "", err
	}
	if c.Scale == 0 {
		c.Scale = 20
	}
	if c.Ranks == 0 {
		c.Ranks = 2
	}
	if c.HeldOutDiv == 0 {
		c.HeldOutDiv = 20
	}
	n := p.N / c.Scale
	edges := p.Edges / c.Scale
	// Size the planted blocks for a target intra-block density of ~0.2, so
	// the scaled dataset keeps DETECTABLE communities and a β the balanced
	// held-out metric rewards: block size s ≈ degree/0.2, community count
	// N·1.3/s, clamped to [8, 32]. (Scaling the paper's ground-truth count
	// directly would give blocks too thin to detect at 1/20 scale.)
	deg := 2 * float64(edges) / float64(n)
	blockSize := deg / 0.2
	if blockSize < 16 {
		blockSize = 16
	}
	communities := int(float64(n) * 1.3 / blockSize)
	if communities < 8 {
		communities = 8
	}
	if communities > 32 {
		communities = 32
	}
	k := c.K
	if k == 0 {
		k = communities
	}
	// A minibatch of n/2 pairs touches nearly every vertex each iteration,
	// the fastest-mixing setting per wall-clock unit on one machine.
	mb := n / 2
	if mb < 128 {
		mb = 128
	}
	if mb > 2048 {
		mb = 2048
	}
	if c.Iterations == 0 {
		// ≈3500 φ updates per vertex. SG-MCMC mixes slowly (the paper's
		// convergence runs take hours on 65 nodes); this is the budget at
		// which planted structure reliably emerges at these scales.
		c.Iterations = 3500 * n / (2 * mb)
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = c.Iterations / 12
		if c.EvalEvery == 0 {
			c.EvalEvery = 1
		}
	}

	g, gt, err := gen.Planted(gen.PlantedConfig{
		N: n, NumCommunities: communities, MeanMembership: 1.3,
		SizeSkew: 0.6, TargetEdges: edges, Background: 0.05, Seed: p.Seed,
	})
	if err != nil {
		return "", err
	}
	train, held, err := graph.Split(g, g.NumEdges()/c.HeldOutDiv, mathx.NewRNG(p.Seed+100))
	if err != nil {
		return "", err
	}
	cfg := core.DefaultConfig(k, p.Seed+200)
	cfg.Alpha = 1 / float64(k)
	// A larger, slower-decaying step mixes much faster at these scales
	// while still satisfying the SGLD schedule conditions.
	cfg.StepA = 0.05
	cfg.StepB = 4096
	// The convergence table is built from the run's own telemetry stream, not
	// from Result — the same JSONL a long run writes with -metrics-out, so the
	// live and post-hoc paths (Fig6FromEvents) render identical figures.
	var evbuf bytes.Buffer
	sink := obs.NewSink(&evbuf)
	res, err := dist.Run(cfg, train, held, dist.Options{
		Ranks: c.Ranks, Threads: c.Threads, Iterations: c.Iterations,
		EvalEvery: c.EvalEvery, Pipeline: true,
		MinibatchPairs: mb, NeighborCount: 32,
		Events: sink,
	})
	if err != nil {
		return "", err
	}
	if err := sink.Close(); err != nil {
		return "", err
	}
	if c.EventsOut != "" {
		if err := os.WriteFile(c.EventsOut, evbuf.Bytes(), 0o644); err != nil {
			return "", err
		}
	}
	events, err := obs.ReadEvents(bytes.NewReader(evbuf.Bytes()))
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — convergence, %s /%d (N=%d, |E|=%d, K=%d, %d ranks, %d iterations)\n",
		p.Name, c.Scale, train.NumVertices(), train.NumEdges(), k, c.Ranks, c.Iterations)
	writeConvergenceTable(&b, events)
	truth := metrics.NewCover(g.NumVertices(), gt.Members)
	detected := metrics.FromState(res.State, 0)
	fmt.Fprintf(&b, "recovery F1 vs planted ground truth: %.3f (NMI %.3f)\n",
		metrics.F1Score(detected, truth), metrics.NMI(detected, truth))
	return b.String(), nil
}

// writeConvergenceTable renders the Figure 6 perplexity-vs-wall-clock table
// from a telemetry event stream's perplexity events.
func writeConvergenceTable(b *strings.Builder, events []obs.Event) {
	fmt.Fprintf(b, "%10s %12s %14s\n", "iteration", "elapsed (s)", "perplexity")
	detector := metrics.NewConvergenceDetector(6, 0.005)
	convergedAt := -1
	for i := range events {
		e := &events[i]
		if e.Type != obs.EventPerplexity {
			continue
		}
		fmt.Fprintf(b, "%10d %12.2f %14.4f\n", e.Iter, e.ElapsedMS/1000, e.Perplexity)
		if detector.Add(e.Perplexity) && convergedAt < 0 {
			convergedAt = e.Iter
		}
	}
	if convergedAt >= 0 {
		fmt.Fprintf(b, "converged (smoothed) at iteration %d\n", convergedAt)
	}
}

// Fig6FromEvents rebuilds the Figure 6 convergence table from a saved JSONL
// telemetry stream (a run's -metrics-out file, or Fig6Config.EventsOut)
// without re-running the engine. A torn final line — the run is still going,
// or crashed mid-write — degrades to digesting the complete events. The
// recovery-F1 line needs the trained state and so only appears on live runs.
func Fig6FromEvents(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	events, err := obs.ReadEvents(f)
	if err != nil {
		var torn *obs.TornTailError
		if !errors.As(err, &torn) {
			return "", err
		}
		fmt.Fprintf(os.Stderr, "ocd-paper: warning: %v (using the %d complete events)\n", torn, len(events))
	}
	ranks, iters := 0, 0
	for i := range events {
		if events[i].Type == obs.EventRunStart {
			ranks, iters = events[i].Ranks, events[i].Iterations
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — convergence, replayed from %s (%d ranks, %d iterations)\n", path, ranks, iters)
	writeConvergenceTable(&b, events)
	return b.String(), nil
}
