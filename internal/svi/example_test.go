package svi_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/svi"
)

// Example trains the variational baseline and converts its posterior means
// into the shared core.State representation for evaluation.
func Example() {
	g, _, err := gen.Planted(gen.DefaultPlanted(200, 4, 1000, 7))
	if err != nil {
		panic(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(8))
	if err != nil {
		panic(err)
	}
	s, err := svi.NewSampler(svi.DefaultConfig(4, 9), train, held, svi.Options{NodeBatch: 50})
	if err != nil {
		panic(err)
	}
	s.Run(40)

	state := s.PosteriorMeanState()
	fmt.Println("iterations:", s.Iteration())
	fmt.Println("state valid:", state.Validate() == nil)
	// Output:
	// iterations: 40
	// state valid: true
}
