package svi

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/metrics"
)

func fixture(t *testing.T, n, k, edges int, seed uint64) (*graph.Graph, *graph.HeldOut, *gen.GroundTruth) {
	t.Helper()
	g, gt, err := gen.Planted(gen.DefaultPlanted(n, k, edges, seed))
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return train, held, gt
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(8, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Delta = 1 },
		func(c *Config) { c.Tau = 0 },
		func(c *Config) { c.Kappa = 0.5 },
		func(c *Config) { c.Kappa = 1.1 },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStepSizeDecreasing(t *testing.T) {
	cfg := DefaultConfig(4, 1)
	prev := math.Inf(1)
	for _, tt := range []int{0, 1, 10, 1000, 100000} {
		rho := cfg.StepSize(tt)
		if rho <= 0 || rho >= prev || rho > 1 {
			t.Fatalf("ρ(%d) = %v (prev %v)", tt, rho, prev)
		}
		prev = rho
	}
}

func TestStepMaintainsInvariants(t *testing.T) {
	train, held, _ := fixture(t, 300, 6, 2000, 11)
	s, err := NewSampler(DefaultConfig(6, 3), train, held, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Step()
	}
	if s.Iteration() != 100 {
		t.Fatalf("iteration = %d", s.Iteration())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The derived state must satisfy the shared model invariants too.
	if err := s.PosteriorMeanState().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	train, held, _ := fixture(t, 200, 5, 1200, 12)
	run := func() []float64 {
		s, err := NewSampler(DefaultConfig(5, 9), train, held, Options{Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(30)
		return append([]float64(nil), s.Gamma...)
	}
	a, b := run(), run()
	if mathx.MaxAbsDiff(a, b) != 0 {
		t.Fatal("same-seed SVI runs diverged")
	}
}

func TestPerplexityBeatsRandomState(t *testing.T) {
	// Note: the trained perplexity is compared against a RANDOM model, not
	// against the initial state — the label-propagation initialisation plus
	// the prior's β ≈ 0.5 scores deceptively well on the balanced
	// links/non-links held-out set, so init-vs-final is not monotone in
	// model quality.
	train, held, _ := fixture(t, 400, 4, 4000, 13)
	cfg := DefaultConfig(4, 5)
	s, err := NewSampler(cfg, train, held, Options{Threads: 4, NodeBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(600)
	after := core.Perplexity(s.PosteriorMeanState(), held, cfg.Delta, 4)

	randState, err := core.NewState(core.DefaultConfig(4, 99), train.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	random := core.Perplexity(randState, held, cfg.Delta, 4)
	if after >= random*0.8 {
		t.Fatalf("trained SVI perplexity %v not clearly below random %v", after, random)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoversPlantedStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("training too slow for -short")
	}
	const n, k = 400, 4
	g, gt, err := gen.Planted(gen.PlantedConfig{
		N: n, NumCommunities: k, MeanMembership: 1.15,
		SizeSkew: 0.3, TargetEdges: 5000, Background: 0.02, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(k, 22)
	s, err := NewSampler(cfg, g, nil, Options{Threads: 4, NodeBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(800)
	detected := metrics.FromState(s.PosteriorMeanState(), 0)
	truth := metrics.NewCover(n, gt.Members)
	f1 := metrics.F1Score(detected, truth)
	if f1 < 0.4 {
		t.Fatalf("SVI recovery F1 = %.3f, want structure recovered", f1)
	}
}

// TestMCMCBeatsSVI reproduces the qualitative claim of the paper's reference
// [16] (Li, Ahn & Welling): on the same data with the same budget class,
// SG-MCMC reaches better recovery than stochastic variational inference.
func TestMCMCBeatsSVI(t *testing.T) {
	if testing.Short() {
		t.Skip("training too slow for -short")
	}
	const n, k = 400, 4
	g, gt, err := gen.Planted(gen.PlantedConfig{
		N: n, NumCommunities: k, MeanMembership: 1.15,
		SizeSkew: 0.3, TargetEdges: 5000, Background: 0.02, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := metrics.NewCover(n, gt.Members)

	sviS, err := NewSampler(DefaultConfig(k, 22), g, nil, Options{Threads: 4, NodeBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	sviS.Run(800)
	sviF1 := metrics.F1Score(metrics.FromState(sviS.PosteriorMeanState(), 0), truth)

	mcfg := core.DefaultConfig(k, 23)
	mcfg.Alpha = 1.0 / k
	mcfg.StepA = 0.05
	mcfg.StepB = 4096
	mc, err := core.NewSampler(mcfg, g, nil, core.SamplerOptions{Threads: 4, MinibatchPairs: 200, NeighborCount: 32})
	if err != nil {
		t.Fatal(err)
	}
	mc.Run(3000)
	mcF1 := metrics.F1Score(metrics.FromState(mc.State, 0), truth)

	t.Logf("recovery F1: MCMC %.3f vs SVI %.3f", mcF1, sviF1)
	if mcF1 <= sviF1 {
		t.Fatalf("MCMC (%.3f) did not beat SVI (%.3f); [16]'s comparison inverted", mcF1, sviF1)
	}
}

func TestPairResponsibilitiesAreDistributions(t *testing.T) {
	// For arbitrary inputs: both marginals sum to 1, the diagonal joint is
	// bounded by each marginal, and everything is non-negative.
	rng := mathx.NewRNG(41)
	const k = 6
	ps := &pairStats{
		margA: make([]float64, k),
		margB: make([]float64, k),
		diag:  make([]float64, k),
	}
	for trial := 0; trial < 300; trial++ {
		ea := make([]float64, k)
		eb := make([]float64, k)
		v := make([]float64, k)
		for i := 0; i < k; i++ {
			ea[i] = -5 * rng.Float64()
			eb[i] = -5 * rng.Float64()
			v[i] = math.Exp(4 * (rng.Float64() - 0.5))
		}
		pairResponsibilities(ea, eb, v, ps)
		var sumA, sumB float64
		for i := 0; i < k; i++ {
			if ps.margA[i] < 0 || ps.margB[i] < 0 || ps.diag[i] < 0 {
				t.Fatalf("trial %d: negative responsibility", trial)
			}
			if ps.diag[i] > ps.margA[i]+1e-12 || ps.diag[i] > ps.margB[i]+1e-12 {
				t.Fatalf("trial %d: diagonal exceeds a marginal", trial)
			}
			sumA += ps.margA[i]
			sumB += ps.margB[i]
		}
		if math.Abs(sumA-1) > 1e-9 || math.Abs(sumB-1) > 1e-9 {
			t.Fatalf("trial %d: marginals sum to %v / %v", trial, sumA, sumB)
		}
	}
}

func TestDeterministicAcrossThreads(t *testing.T) {
	train, held, _ := fixture(t, 200, 5, 1200, 24)
	run := func(threads int) []float64 {
		s, err := NewSampler(DefaultConfig(5, 6), train, held, Options{Threads: threads, NodeBatch: 50})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(20)
		return append([]float64(nil), s.Lambda...)
	}
	if mathx.MaxAbsDiff(run(1), run(4)) != 0 {
		t.Fatal("SVI λ differs across thread counts")
	}
}

func TestNewSamplerValidation(t *testing.T) {
	train, held, _ := fixture(t, 100, 4, 500, 31)
	bad := DefaultConfig(0, 1)
	if _, err := NewSampler(bad, train, held, Options{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
