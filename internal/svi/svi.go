// Package svi implements the stochastic variational inference baseline for
// the a-MMSB — the "SVB" method class the paper contrasts with SG-MCMC in
// its introduction (Gopalan et al., "Scalable inference of overlapping
// communities", NIPS 2012). Li, Ahn & Welling showed SG-MCMC converges
// faster and to better held-out likelihood; having both inference engines in
// one repository lets the comparison benchmark reproduce that claim.
//
// Variational family:
//
//	q(π_a) = Dirichlet(γ_a)       (γ: N×K)
//	q(β_k) = Beta(λ_k1, λ_k0)     (λ: K×2)
//	q(z_ab, z_ba) = joint categorical responsibilities, computed in closed
//	                form per processed pair (never stored)
//
// One iteration (node-wise local steps, as in svinet): sample a minibatch of
// vertices; for each vertex take a natural-gradient coordinate step on γ_a
// using its full link set plus a weighted non-link sample (the same
// link+uniform neighbor scheme the MCMC engine uses); fold the pairs'
// diagonal responsibilities into a globally-scaled λ step. Step size
// ρ_t = (τ + t)^(−κ).
package svi

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/par"
	"repro/internal/sampling"
)

// Config carries the model hyperparameters and the SVI step schedule.
type Config struct {
	K     int
	Alpha float64 // Dirichlet prior concentration
	Eta0  float64 // Beta prior pseudo-count for "no link"
	Eta1  float64 // Beta prior pseudo-count for "link"
	Delta float64 // cross-community link probability

	// Step size ρ_t = (Tau + t)^(−Kappa); Kappa ∈ (0.5, 1] for convergence.
	Tau   float64
	Kappa float64

	Seed uint64
}

// DefaultConfig mirrors the conventional svinet settings.
func DefaultConfig(k int, seed uint64) Config {
	return Config{
		K:     k,
		Alpha: 1 / float64(k),
		Eta0:  1,
		Eta1:  1,
		Delta: 1e-7,
		Tau:   64,
		Kappa: 0.6,
		Seed:  seed,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("svi: K = %d", c.K)
	case c.Alpha <= 0 || c.Eta0 <= 0 || c.Eta1 <= 0:
		return fmt.Errorf("svi: non-positive prior")
	case c.Delta <= 0 || c.Delta >= 1:
		return fmt.Errorf("svi: Delta = %v out of (0,1)", c.Delta)
	case c.Tau <= 0:
		return fmt.Errorf("svi: Tau = %v", c.Tau)
	case c.Kappa <= 0.5 || c.Kappa > 1:
		return fmt.Errorf("svi: Kappa = %v, need in (0.5, 1]", c.Kappa)
	}
	return nil
}

// StepSize returns ρ_t.
func (c Config) StepSize(t int) float64 {
	return math.Pow(c.Tau+float64(t), -c.Kappa)
}

// pairStats are one (a, b) pair's variational quantities: the marginal
// responsibilities q(z_ab = k) and q(z_ba = k), and the diagonal joint
// q(z_ab = z_ba = k).
type pairStats struct {
	margA []float64
	margB []float64
	diag  []float64
}

// pairResponsibilities computes the closed-form responsibilities for a pair
// with expected log memberships ea, eb (E[log π]) and community-vs-noise
// weight ratios v[k] = exp(E[log p(y | z=z'=k)] − log p(y | z≠z')). The
// output slices must be length K.
func pairResponsibilities(ea, eb, v []float64, out *pairStats) {
	k := len(ea)
	shiftA, shiftB := slices.Max(ea), slices.Max(eb)
	var sumA, sumB float64
	for i := 0; i < k; i++ {
		out.margA[i] = math.Exp(ea[i] - shiftA) // reuse as u_a
		out.margB[i] = math.Exp(eb[i] - shiftB) // reuse as u_b
		sumA += out.margA[i]
		sumB += out.margB[i]
	}
	var diagPlain, diagV float64
	for i := 0; i < k; i++ {
		p := out.margA[i] * out.margB[i]
		diagPlain += p
		diagV += p * v[i]
	}
	z := sumA*sumB - diagPlain + diagV
	if z <= 0 {
		for i := 0; i < k; i++ {
			out.margA[i], out.margB[i], out.diag[i] = 0, 0, 0
		}
		return
	}
	invZ := 1 / z
	for i := 0; i < k; i++ {
		ua, ub := out.margA[i], out.margB[i]
		d := ua * ub * v[i] * invZ
		out.diag[i] = d
		out.margA[i] = ua*(sumB-ub)*invZ + d
		out.margB[i] = ub*(sumA-ua)*invZ + d
	}
}

// Sampler holds the variational state and runs the optimisation.
type Sampler struct {
	Cfg   Config
	Graph *graph.Graph
	Held  *graph.HeldOut
	// Gamma is the row-major N×K Dirichlet parameter matrix.
	Gamma []float64
	// Lambda is the row-major K×2 Beta parameter matrix; index 1 is the
	// "link" pseudo-count (matching core.State.Theta's convention).
	Lambda []float64

	Threads   int
	nodeBatch int
	neigh     sampling.NeighborStrategy
	t         int
	ppx       *core.PerplexityAverager

	vLink []float64 // v_k for y = 1, refreshed each iteration
	vNon  []float64 // v_k for y = 0
}

// Options configures NewSampler.
type Options struct {
	// NodeBatch is the number of vertices updated per iteration (default 64).
	NodeBatch int
	// NonLinkCount is the non-link subsample size per vertex (default 32).
	NonLinkCount int
	Threads      int
}

// NewSampler initialises γ from the prior plus uniform noise and λ from the
// prior, reusing the link+uniform neighbor scheme of the sampling package
// (held-out pairs excluded, as in the MCMC engine).
func NewSampler(cfg Config, g *graph.Graph, held *graph.HeldOut, opt Options) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.NodeBatch == 0 {
		opt.NodeBatch = 64
	}
	if opt.NonLinkCount == 0 {
		opt.NonLinkCount = 32
	}
	if opt.NodeBatch > g.NumVertices() {
		opt.NodeBatch = g.NumVertices()
	}
	var excluded *graph.EdgeSet
	if held != nil {
		set := graph.NewEdgeSet(held.Len())
		for _, e := range held.Pairs {
			set.Add(e)
		}
		excluded = &set
	}
	neigh, err := sampling.NewLinkPlusUniform(sampling.NewGraphView(g, excluded), opt.NonLinkCount)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	s := &Sampler{
		Cfg:       cfg,
		Graph:     g,
		Held:      held,
		Gamma:     make([]float64, n*cfg.K),
		Lambda:    make([]float64, 2*cfg.K),
		Threads:   opt.Threads,
		nodeBatch: opt.NodeBatch,
		neigh:     neigh,
		vLink:     make([]float64, cfg.K),
		vNon:      make([]float64, cfg.K),
	}
	// Symmetry breaking: variational coordinate ascent stalls in the saddle
	// where every community explains every vertex equally, so γ starts from
	// a quick label-propagation sketch of the graph (svinet ships comparable
	// neighborhood-based initialisation heuristics).
	rng := mathx.NewStream(cfg.Seed, 0)
	label := labelPropagation(g, cfg.K, rng)
	for a := 0; a < n; a++ {
		row := s.Gamma[a*cfg.K : (a+1)*cfg.K]
		for kk := range row {
			row[kk] = cfg.Alpha + 0.5*rng.Float64()
			if kk == label[a] {
				row[kk] += float64(cfg.K)
			}
		}
	}
	for k := 0; k < cfg.K; k++ {
		s.Lambda[k*2] = cfg.Eta0 + rng.Float64()
		s.Lambda[k*2+1] = cfg.Eta1 + rng.Float64()
	}
	if held != nil {
		s.ppx = core.NewPerplexityAverager(held, cfg.Delta)
	}
	return s, nil
}

// labelPropagation runs a few rounds of majority-vote label propagation from
// a uniform random K-labelling; ties and isolated vertices keep their labels.
func labelPropagation(g *graph.Graph, k int, rng *mathx.RNG) []int {
	n := g.NumVertices()
	label := make([]int, n)
	for a := range label {
		label[a] = rng.Intn(k)
	}
	counts := make([]int, k)
	for round := 0; round < 5; round++ {
		for a := 0; a < n; a++ {
			for i := range counts {
				counts[i] = 0
			}
			for _, b := range g.Neighbors(a) {
				counts[label[b]]++
			}
			best, bestC := label[a], 0
			for kk, c := range counts {
				if c > bestC {
					best, bestC = kk, c
				}
			}
			label[a] = best
		}
	}
	return label
}

// Iteration returns the number of completed iterations.
func (s *Sampler) Iteration() int { return s.t }

// GammaRow returns γ_a.
func (s *Sampler) GammaRow(a int) []float64 {
	return s.Gamma[a*s.Cfg.K : (a+1)*s.Cfg.K]
}

// lambdaChunk fixes the fold order of the λ statistics so results do not
// depend on the thread count.
const lambdaChunk = 8

// Step performs one stochastic natural-gradient update over a node
// minibatch.
func (s *Sampler) Step() {
	k := s.Cfg.K
	n := s.Graph.NumVertices()
	rho := s.Cfg.StepSize(s.t)

	// Refresh E[log β]-derived weights relative to the δ bucket.
	logDelta := math.Log(s.Cfg.Delta)
	log1mDelta := math.Log1p(-s.Cfg.Delta)
	for kk := 0; kk < k; kk++ {
		elog, elog1m := mathx.BetaExpLogs(s.Lambda[kk*2+1], s.Lambda[kk*2])
		s.vLink[kk] = math.Exp(elog - logDelta)
		s.vNon[kk] = math.Exp(elog1m - log1mDelta)
	}

	// Draw the node minibatch (distinct vertices).
	sel := mathx.NewStream(s.Cfg.Seed, uint64(s.t)*2+1)
	nodes := make([]int32, 0, s.nodeBatch)
	seen := map[int32]struct{}{}
	for len(nodes) < s.nodeBatch {
		a := int32(sel.Intn(n))
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		nodes = append(nodes, a)
	}

	// Local steps: compute each node's γ* target from pre-update γ, plus
	// per-chunk λ partials; commit after the whole batch is computed.
	newGamma := make([]float64, len(nodes)*k)
	lambdaStat := par.ChunkedReduceVec(len(nodes), lambdaChunk, s.Threads, 2*k,
		func(lo, hi int, acc []float64) {
			ps := &pairStats{
				margA: make([]float64, k),
				margB: make([]float64, k),
				diag:  make([]float64, k),
			}
			ea := make([]float64, k)
			eb := make([]float64, k)
			var ns sampling.NeighborSample
			for i := lo; i < hi; i++ {
				a := nodes[i]
				rng := mathx.NewStream(s.Cfg.Seed, uint64(s.t)<<32|uint64(a)|1<<63)
				s.neigh.Sample(a, rng, &ns)
				mathx.DirichletExpLog(s.GammaRow(int(a)), ea)
				target := newGamma[i*k : (i+1)*k]
				for kk := range target {
					target[kk] = s.Cfg.Alpha
				}
				for j, b := range ns.Nodes {
					mathx.DirichletExpLog(s.GammaRow(int(b)), eb)
					v := s.vNon
					if ns.Linked[j] {
						v = s.vLink
					}
					pairResponsibilities(ea, eb, v, ps)
					w := ns.Scale[j]
					for kk := 0; kk < k; kk++ {
						target[kk] += w * ps.margA[kk]
						// λ statistic: each unordered pair is seen from
						// both endpoints across the run, hence the /2 in
						// the global scaling below.
						if ns.Linked[j] {
							acc[kk*2+1] += w * ps.diag[kk]
						} else {
							acc[kk*2] += w * ps.diag[kk]
						}
					}
				}
			}
		})

	// Commit γ for the minibatch nodes.
	par.ForEach(len(nodes), s.Threads, func(i int) {
		row := s.GammaRow(int(nodes[i]))
		target := newGamma[i*k : (i+1)*k]
		for kk := 0; kk < k; kk++ {
			row[kk] = (1-rho)*row[kk] + rho*target[kk]
		}
	})

	// Global λ step: the node-sum estimates Σ_a Σ_b w·diag ≈ (m/N)·2·Σ_pairs,
	// so the unbiased full-data statistic is (N / 2m) times the batch sum.
	scale := float64(n) / (2 * float64(len(nodes)))
	for kk := 0; kk < k; kk++ {
		t0 := s.Cfg.Eta0 + scale*lambdaStat[kk*2]
		t1 := s.Cfg.Eta1 + scale*lambdaStat[kk*2+1]
		s.Lambda[kk*2] = (1-rho)*s.Lambda[kk*2] + rho*t0
		s.Lambda[kk*2+1] = (1-rho)*s.Lambda[kk*2+1] + rho*t1
	}
	s.t++
}

// Run executes n iterations.
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// PosteriorMeanState converts the variational posterior means into a
// core.State (π̂_ak = γ_ak/Σγ, β̂_k = λ_k1/(λ_k0+λ_k1)) so the shared
// perplexity and recovery metrics apply to both inference engines.
func (s *Sampler) PosteriorMeanState() *core.State {
	n := s.Graph.NumVertices()
	k := s.Cfg.K
	st := &core.State{
		N:      n,
		K:      k,
		Pi:     make([]float32, n*k),
		PhiSum: make([]float64, n),
		Theta:  append([]float64(nil), s.Lambda...),
		Beta:   make([]float64, k),
	}
	for a := 0; a < n; a++ {
		row := s.GammaRow(a)
		var sum float64
		for _, v := range row {
			sum += v
		}
		st.PhiSum[a] = sum
		dst := st.PiRow(a)
		for kk, v := range row {
			dst[kk] = float32(v / sum)
		}
	}
	st.RefreshBeta()
	return st
}

// EvalPerplexity folds the current posterior mean into the running average
// and returns Eqn (7)'s perplexity, directly comparable with the MCMC
// sampler's numbers.
func (s *Sampler) EvalPerplexity() float64 {
	if s.ppx == nil {
		panic("svi: sampler has no held-out set")
	}
	return s.ppx.Update(s.PosteriorMeanState(), s.Threads)
}

// Validate checks the variational state invariants: all parameters strictly
// positive and finite.
func (s *Sampler) Validate() error {
	for i, v := range s.Gamma {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("svi: γ[%d] = %v", i, v)
		}
	}
	for i, v := range s.Lambda {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("svi: λ[%d] = %v", i, v)
		}
	}
	return nil
}
