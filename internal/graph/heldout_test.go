package graph

import (
	"testing"

	"repro/internal/mathx"
)

// ring builds a cycle graph of n vertices, a convenient sparse test fixture.
func ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Finalize()
}

func TestSplitBasics(t *testing.T) {
	g := ring(100)
	rng := mathx.NewRNG(1)
	train, held, err := Split(g, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumEdges() != 90 {
		t.Fatalf("training edges = %d, want 90", train.NumEdges())
	}
	if held.Len() != 20 {
		t.Fatalf("held-out size = %d, want 20", held.Len())
	}
	if held.NumLinks() != 10 {
		t.Fatalf("held-out links = %d, want 10", held.NumLinks())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every held-out link must be absent from training and present in the
	// original; every held-out non-link absent from both.
	for i, e := range held.Pairs {
		if train.HasEdge(int(e.A), int(e.B)) {
			t.Fatalf("held-out pair %v still in training graph", e)
		}
		if held.Linked[i] != g.HasEdge(int(e.A), int(e.B)) {
			t.Fatalf("held-out label for %v contradicts original graph", e)
		}
	}
}

func TestSplitNoDuplicatePairs(t *testing.T) {
	g := ring(200)
	rng := mathx.NewRNG(2)
	_, held, err := Split(g, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, e := range held.Pairs {
		if seen[e.Key()] {
			t.Fatalf("duplicate held-out pair %v", e)
		}
		seen[e.Key()] = true
	}
}

func TestSplitRejectsBadSizes(t *testing.T) {
	g := ring(10)
	rng := mathx.NewRNG(3)
	if _, _, err := Split(g, 0, rng); err == nil {
		t.Fatal("Split accepted zero size")
	}
	if _, _, err := Split(g, 10, rng); err == nil {
		t.Fatal("Split accepted holding out every edge")
	}
	dense := triangle()
	if _, _, err := Split(dense, 1, rng); err == nil {
		t.Fatal("Split accepted an over-dense graph")
	}
}

func TestSplitDeterminism(t *testing.T) {
	g := ring(100)
	_, h1, err := Split(g, 10, mathx.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	_, h2, err := Split(g, 10, mathx.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Pairs {
		if h1.Pairs[i] != h2.Pairs[i] || h1.Linked[i] != h2.Linked[i] {
			t.Fatal("Split not deterministic under fixed seed")
		}
	}
}

func TestHeldOutShard(t *testing.T) {
	h := &HeldOut{
		Pairs:  []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}},
		Linked: []bool{true, false, true, false, true},
	}
	total := 0
	for r := 0; r < 3; r++ {
		s := h.Shard(r, 3)
		total += s.Len()
	}
	if total != h.Len() {
		t.Fatalf("shards cover %d pairs, want %d", total, h.Len())
	}
	// Last shard absorbs the remainder.
	if h.Shard(2, 3).Len() != 3 {
		t.Fatalf("last shard = %d, want 3", h.Shard(2, 3).Len())
	}
}

func TestHeldOutShardPanics(t *testing.T) {
	h := &HeldOut{}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid shard did not panic")
		}
	}()
	h.Shard(3, 3)
}
