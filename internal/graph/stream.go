package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Streaming graph construction: the out-of-core loader path. ReadSNAP
// materialises every edge twice (an []Edge plus the builder's copy) before
// the CSR exists; at the scales the mmap π backend targets that transient
// alone can exceed the memory cap. An EdgeSource instead streams edges from
// disk, and FromEdgeSource builds the CSR with the edge set as the ONLY
// per-edge memory — no []Edge, no id-remap map (dense ids are part of the
// contract), and the adjacency fill iterates the deduplicated set rather
// than a second file pass.

// ErrVertexRange reports an edge endpoint outside the declared [0, N) dense
// id space.
var ErrVertexRange = errors.New("vertex id out of range")

// EdgeSource is a re-iterable stream of undirected edges over a dense
// [0, N) vertex id space. ForEach may be called multiple times and must
// yield the same edges each time (duplicates and self-loops are permitted;
// consumers deduplicate). fn returning an error aborts the iteration.
type EdgeSource interface {
	NumVertices() int
	ForEach(fn func(Edge) error) error
}

// EdgeFile is an EdgeSource over a SNAP-style edge list on disk whose header
// declares the vertex count (`# Nodes: <n>`, as WriteSNAP and the streaming
// generator emit). Vertex ids must already be dense in [0, n) — unlike
// ReadSNAP there is no remap table, which is what keeps the loader's memory
// independent of N. Each ForEach opens and scans the file anew.
type EdgeFile struct {
	path string
	n    int
}

// OpenEdgeFile validates the header of path and returns the re-iterable
// source. The edge lines are not scanned until ForEach.
func OpenEdgeFile(path string) (*EdgeFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	n, err := scanNodesHeader(f)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return &EdgeFile{path: path, n: n}, nil
}

// scanNodesHeader reads comment lines until it finds `# Nodes: <n>`; an edge
// line (or EOF) before the directive is an error, because without N the
// dense-id contract cannot be checked.
func scanNodesHeader(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "#") {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
		if !strings.HasPrefix(rest, "Nodes:") {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return 0, fmt.Errorf("malformed Nodes header %q", line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return 0, fmt.Errorf("malformed Nodes header %q", line)
		}
		return n, nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("no '# Nodes: <n>' header (streaming loads need the vertex count up front)")
}

// NumVertices implements EdgeSource.
func (ef *EdgeFile) NumVertices() int { return ef.n }

// ForEach implements EdgeSource: one sequential scan of the file. Self-loop
// lines are skipped (matching ReadSNAP); an endpoint outside [0, n) fails
// with ErrVertexRange naming the line.
func (ef *EdgeFile) ForEach(fn func(Edge) error) error {
	f, err := os.Open(ef.path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("graph: %s line %d: want two fields, got %q", ef.path, lineNo, line)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: %s line %d: %v", ef.path, lineNo, err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("graph: %s line %d: %v", ef.path, lineNo, err)
		}
		if a == b {
			continue
		}
		if a < 0 || b < 0 || a >= int64(ef.n) || b >= int64(ef.n) {
			return fmt.Errorf("graph: %s line %d: edge (%d,%d): %w [0,%d)",
				ef.path, lineNo, a, b, ErrVertexRange, ef.n)
		}
		if err := fn(Edge{int32(a), int32(b)}); err != nil {
			return err
		}
	}
	return sc.Err()
}

// SliceSource adapts an in-memory edge slice to EdgeSource; used by tests
// and by generators that already hold their edges.
type SliceSource struct {
	N     int
	Edges []Edge
}

// NumVertices implements EdgeSource.
func (s SliceSource) NumVertices() int { return s.N }

// ForEach implements EdgeSource.
func (s SliceSource) ForEach(fn func(Edge) error) error {
	for _, e := range s.Edges {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// FromEdgeSource builds the immutable Graph from a stream in one pass plus
// an in-memory sweep: the source is scanned once, deduplicating into the
// edge set while accumulating degrees, then the adjacency arrays are filled
// by iterating the set itself. Peak memory is the finished graph plus the
// set — no transient edge list, no remap table.
func FromEdgeSource(src EdgeSource) (*Graph, error) {
	n := src.NumVertices()
	if n < 1 {
		return nil, fmt.Errorf("graph: edge source declares %d vertices", n)
	}
	set := NewEdgeSet(16)
	deg := make([]int32, n+1)
	err := src.ForEach(func(e Edge) error {
		if e.A == e.B {
			return nil
		}
		if e.A < 0 || e.B < 0 || int(e.A) >= n || int(e.B) >= n {
			return fmt.Errorf("graph: edge (%d,%d): %w [0,%d)", e.A, e.B, ErrVertexRange, n)
		}
		if set.Add(e) {
			c := e.Canon()
			deg[c.A+1]++
			deg[c.B+1]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	offsets := deg
	m := set.Len()
	neigh := make([]int32, 2*m)
	cursor := make([]int32, n)
	set.Each(func(e Edge) {
		neigh[offsets[e.A]+cursor[e.A]] = e.B
		cursor[e.A]++
		neigh[offsets[e.B]+cursor[e.B]] = e.A
		cursor[e.B]++
	})
	for v := 0; v < n; v++ {
		row := neigh[offsets[v]:offsets[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	return &Graph{
		n:       n,
		offsets: offsets,
		neigh:   neigh,
		edges:   set,
		m:       m,
	}, nil
}
