package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const snapSample = `# Undirected graph: toy
# Nodes: 4 Edges: 4
10	20
20	30
30 10
30	40
40	40
10	20
`

func TestReadSNAP(t *testing.T) {
	g, ids, err := ReadSNAP(strings.NewReader(snapSample))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("N = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("E = %d, want 4 (self-loop and duplicate dropped)", g.NumEdges())
	}
	// Dense ids assigned in order of first appearance: 10→0, 20→1, 30→2, 40→3.
	want := []int64{10, 20, 30, 40}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %d, want %d", i, ids[i], id)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("expected edges missing after id densification")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSNAPBadInput(t *testing.T) {
	if _, _, err := ReadSNAP(strings.NewReader("1\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, _, err := ReadSNAP(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-numeric line accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {3, 4}, {0, 4}})
	var buf bytes.Buffer
	if err := WriteSNAP(&buf, g, "roundtrip"); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadSNAP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges = %d, want %d", g2.NumEdges(), g.NumEdges())
	}
	// Vertex count may shrink if isolated vertices exist; here all appear.
	if g2.NumVertices() != 5 {
		t.Fatalf("round trip vertices = %d, want 5", g2.NumVertices())
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := ring(20)
	if err := WriteSNAPFile(path, g, "ring20"); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadSNAPFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 20 || g2.NumVertices() != 20 {
		t.Fatalf("file round trip got N=%d E=%d", g2.NumVertices(), g2.NumEdges())
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Star graph: center degree 4, leaves degree 1.
	g := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	degs, counts := DegreeHistogram(g)
	if len(degs) != 2 || degs[0] != 1 || degs[1] != 4 {
		t.Fatalf("degrees = %v", degs)
	}
	if counts[0] != 4 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}
