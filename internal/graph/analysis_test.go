package graph

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestConnectedComponents(t *testing.T) {
	// Two triangles plus an isolated vertex: 3 components.
	g := FromEdges(7, []Edge{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("first triangle split")
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatal("second triangle split")
	}
	if labels[0] == labels[3] || labels[6] == labels[0] || labels[6] == labels[3] {
		t.Fatal("components merged")
	}
	if LargestComponentSize(g) != 3 {
		t.Fatalf("largest = %d, want 3", LargestComponentSize(g))
	}
}

func TestConnectedComponentsRing(t *testing.T) {
	g := ring(50)
	if _, count := ConnectedComponents(g); count != 1 {
		t.Fatalf("ring has %d components", count)
	}
	if LargestComponentSize(g) != 50 {
		t.Fatal("ring largest component wrong")
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	g := NewBuilder(4).Finalize()
	if _, count := ConnectedComponents(g); count != 4 {
		t.Fatalf("edgeless graph: %d components, want 4", count)
	}
	empty := NewBuilder(0).Finalize()
	if LargestComponentSize(empty) != 0 {
		t.Fatal("empty graph largest component should be 0")
	}
}

func TestClusteringCoefficientExtremes(t *testing.T) {
	rng := mathx.NewRNG(1)
	// Triangle: coefficient 1.
	if c := ClusteringCoefficient(triangle(), 0, rng); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle coefficient = %v, want 1", c)
	}
	// Star: no closed wedges, coefficient 0.
	star := FromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if c := ClusteringCoefficient(star, 0, rng); c != 0 {
		t.Fatalf("star coefficient = %v, want 0", c)
	}
	// Ring: degree-2 vertices with unlinked neighbors, coefficient 0.
	if c := ClusteringCoefficient(ring(20), 0, rng); c != 0 {
		t.Fatalf("ring coefficient = %v, want 0", c)
	}
}

func TestClusteringCoefficientSampledApproximatesExact(t *testing.T) {
	rng := mathx.NewRNG(2)
	b := NewBuilder(300)
	// Community-ish random graph with plenty of triangles.
	for i := 0; i < 300; i++ {
		for j := 1; j <= 5; j++ {
			b.AddEdge(i, (i+j)%300)
		}
	}
	g := b.Finalize()
	exact := ClusteringCoefficient(g, 0, rng)
	sampled := ClusteringCoefficient(g, 100, rng)
	if exact <= 0 {
		t.Fatal("band graph should have triangles")
	}
	if math.Abs(sampled-exact) > 0.25*exact+0.02 {
		t.Fatalf("sampled %v too far from exact %v", sampled, exact)
	}
}

func TestSubgraph(t *testing.T) {
	g := FromEdges(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {1, 4}})
	sub, orig := Subgraph(g, []int32{1, 2, 4})
	if sub.NumVertices() != 3 {
		t.Fatalf("N = %d", sub.NumVertices())
	}
	// Induced edges: (1,2) and (1,4); (2,4) absent.
	if sub.NumEdges() != 2 {
		t.Fatalf("E = %d, want 2", sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(0, 2) || sub.HasEdge(1, 2) {
		t.Fatal("induced edges wrong")
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 4 {
		t.Fatalf("mapping = %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}
