package graph

import (
	"testing"

	"repro/internal/mathx"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	rng := mathx.NewRNG(1)
	bld := NewBuilder(n)
	for bld.NumEdges() < m {
		bld.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return bld.Finalize()
}

// BenchmarkEdgeSetContains measures the y_ab membership query — executed
// once per sampled neighbor in the training inner loop.
func BenchmarkEdgeSetContains(b *testing.B) {
	g := benchGraph(b, 100000, 1000000)
	rng := mathx.NewRNG(2)
	var hits int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.HasEdge(rng.Intn(100000), rng.Intn(100000)) {
			hits++
		}
	}
	_ = hits
}

// BenchmarkEdgeSetAdd measures set construction.
func BenchmarkEdgeSetAdd(b *testing.B) {
	rng := mathx.NewRNG(3)
	b.ResetTimer()
	s := NewEdgeSet(b.N)
	for i := 0; i < b.N; i++ {
		s.Add(Edge{int32(rng.Uint64() & 0xffffff), int32(rng.Uint64() & 0xffffff)})
	}
}

// BenchmarkBuilderFinalize measures CSR construction from an edge list.
func BenchmarkBuilderFinalize(b *testing.B) {
	const n, m = 50000, 500000
	rng := mathx.NewRNG(4)
	edges := make([]Edge, 0, m)
	for len(edges) < m {
		a, bb := rng.Intn(n), rng.Intn(n)
		if a != bb {
			edges = append(edges, Edge{int32(a), int32(bb)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(n)
		for _, e := range edges {
			bld.AddEdge(int(e.A), int(e.B))
		}
		bld.Finalize()
	}
}

// BenchmarkNeighborsIteration measures adjacency traversal (the link part of
// the link+uniform neighbor scheme).
func BenchmarkNeighborsIteration(b *testing.B) {
	g := benchGraph(b, 10000, 200000)
	var total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range g.Neighbors(i % 10000) {
			total += int(w)
		}
	}
	_ = total
}

// BenchmarkSplit measures held-out set construction.
func BenchmarkSplit(b *testing.B) {
	g := benchGraph(b, 20000, 200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Split(g, 10000, mathx.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
