package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The SNAP collection distributes graphs as whitespace-separated edge lists
// with '#' comment lines and arbitrary (sparse, non-contiguous) vertex ids.
// ReadSNAP densifies the id space, because the model indexes π by vertex in
// [0, N).

// ReadSNAP parses a SNAP-format edge list. Vertex ids are remapped to a dense
// [0, N) range in order of first appearance; the mapping is returned so
// callers can translate results back to original ids.
func ReadSNAP(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	ids := make(map[int64]int32)
	var origIDs []int64
	var edges []Edge
	lookup := func(raw int64) int32 {
		if v, ok := ids[raw]; ok {
			return v
		}
		v := int32(len(origIDs))
		ids[raw] = v
		origIDs = append(origIDs, raw)
		return v
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want two fields, got %q", lineNo, line)
		}
		a, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		b, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		if a == b {
			continue // SNAP graphs occasionally carry self-loops; the model ignores them
		}
		edges = append(edges, Edge{lookup(a), lookup(b)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	bld := NewBuilder(len(origIDs))
	for _, e := range edges {
		bld.AddEdge(int(e.A), int(e.B))
	}
	return bld.Finalize(), origIDs, nil
}

// ReadSNAPFile opens and parses path.
func ReadSNAPFile(path string) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadSNAP(f)
}

// WriteSNAP writes g as a SNAP-style edge list with a summary header.
func WriteSNAP(w io.Writer, g *Graph, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", name)
	fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.NumVertices(), g.NumEdges())
	var err error
	g.Edges(func(e Edge) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d\t%d\n", e.A, e.B)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteSNAPFile writes g to path.
func WriteSNAPFile(path string, g *Graph, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSNAP(f, g, name); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DegreeHistogram returns sorted (degree, count) pairs; used by the dataset
// summary tooling to compare synthetic presets with the paper's Table II
// shapes.
func DegreeHistogram(g *Graph) (degrees []int, counts []int) {
	hist := map[int]int{}
	for v := 0; v < g.NumVertices(); v++ {
		hist[g.Degree(v)]++
	}
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}
