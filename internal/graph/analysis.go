package graph

import "repro/internal/mathx"

// ConnectedComponents labels every vertex with its component id (ids are
// dense, assigned in discovery order) and returns the labels plus the
// component count. Iterative BFS; O(N + E).
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for start := 0; start < n; start++ {
		if labels[start] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[start] = id
		queue = append(queue[:0], int32(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(int(v)) {
				if labels[w] < 0 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// LargestComponentSize returns the vertex count of the biggest connected
// component (0 for an empty graph).
func LargestComponentSize(g *Graph) int {
	labels, count := ConnectedComponents(g)
	if count == 0 {
		return 0
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return best
}

// ClusteringCoefficient estimates the mean local clustering coefficient by
// sampling `samples` random vertices (all vertices if samples <= 0 or
// >= N). For each sampled vertex it counts closed wedges among its
// neighbors. Exact for small graphs, cheap and unbiased for large ones —
// the triangle density is a key difference between the social graphs of
// Table II and unstructured noise.
func ClusteringCoefficient(g *Graph, samples int, rng *mathx.RNG) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	var vertices []int
	if samples <= 0 || samples >= n {
		vertices = make([]int, n)
		for i := range vertices {
			vertices[i] = i
		}
	} else {
		seen := map[int]struct{}{}
		for len(vertices) < samples {
			v := rng.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			vertices = append(vertices, v)
		}
	}
	var total float64
	counted := 0
	for _, v := range vertices {
		neigh := g.Neighbors(v)
		d := len(neigh)
		if d < 2 {
			continue
		}
		counted++
		closed := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(neigh[i]), int(neigh[j])) {
					closed++
				}
			}
		}
		total += 2 * float64(closed) / (float64(d) * float64(d-1))
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// Subgraph extracts the induced subgraph on the given vertices, relabelled
// densely in the order given. The returned mapping translates new ids back
// to the originals.
func Subgraph(g *Graph, vertices []int32) (*Graph, []int32) {
	remap := make(map[int32]int32, len(vertices))
	orig := make([]int32, len(vertices))
	for i, v := range vertices {
		remap[v] = int32(i)
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for _, v := range vertices {
		for _, w := range g.Neighbors(int(v)) {
			if nw, ok := remap[w]; ok && v < w {
				b.AddEdge(int(remap[v]), int(nw))
			}
		}
	}
	return b.Finalize(), orig
}
