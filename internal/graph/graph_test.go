package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func triangle() *Graph {
	return FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}})
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	if !b.AddEdge(0, 1) {
		t.Fatal("fresh edge rejected")
	}
	if b.AddEdge(1, 0) {
		t.Fatal("duplicate (reversed) edge accepted")
	}
	if b.AddEdge(2, 2) {
		t.Fatal("self-loop accepted")
	}
	if b.AddEdge(0, 4) {
		t.Fatal("out-of-range edge accepted")
	}
	if b.AddEdge(-1, 0) {
		t.Fatal("negative vertex accepted")
	}
	b.AddEdge(2, 3)
	g := b.Finalize()
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Fatalf("got N=%d E=%d, want 4/2", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleQueries(t *testing.T) {
	g := triangle()
	for v := 0; v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(2, 0) {
		t.Fatal("edge membership broken")
	}
	if g.HasEdge(0, 0) {
		t.Fatal("self-loop reported present")
	}
	if g.MeanDegree() != 2 {
		t.Fatalf("mean degree = %v", g.MeanDegree())
	}
	if g.Density() != 1 {
		t.Fatalf("triangle density = %v, want 1", g.Density())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("max degree = %v", g.MaxDegree())
	}
}

func TestEdgeIterationCanonical(t *testing.T) {
	g := triangle()
	var got []Edge
	g.Edges(func(e Edge) { got = append(got, e) })
	want := []Edge{{0, 1}, {0, 2}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("edge count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEdgeCanonKey(t *testing.T) {
	e1 := Edge{5, 2}
	e2 := Edge{2, 5}
	if e1.Key() != e2.Key() {
		t.Fatal("Key not orientation-invariant")
	}
	if e1.Canon() != (Edge{2, 5}) {
		t.Fatalf("Canon = %v", e1.Canon())
	}
}

func TestRandomGraphValidates(t *testing.T) {
	rng := mathx.NewRNG(77)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		b := NewBuilder(n)
		attempts := rng.Intn(3 * n)
		for i := 0; i < attempts; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Finalize()
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(5).Finalize()
	if g.NumEdges() != 0 || g.NumVertices() != 5 {
		t.Fatal("empty graph wrong shape")
	}
	if g.MeanDegree() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph degree stats wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.EdgeList()) != 0 {
		t.Fatal("empty graph has edges")
	}
}

func TestEdgeSetAddContains(t *testing.T) {
	s := NewEdgeSet(4)
	if s.Contains(Edge{0, 1}) {
		t.Fatal("empty set contains an edge")
	}
	if !s.Add(Edge{0, 1}) {
		t.Fatal("first Add returned false")
	}
	if s.Add(Edge{1, 0}) {
		t.Fatal("reversed duplicate accepted")
	}
	if !s.Contains(Edge{1, 0}) {
		t.Fatal("membership not orientation-invariant")
	}
	if s.Add(Edge{3, 3}) {
		t.Fatal("self-loop accepted by EdgeSet")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestEdgeSetGrowth(t *testing.T) {
	s := NewEdgeSet(2)
	const n = 5000
	for i := 0; i < n; i++ {
		if !s.Add(Edge{int32(i), int32(i + 1)}) {
			t.Fatalf("edge %d rejected", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		if !s.Contains(Edge{int32(i + 1), int32(i)}) {
			t.Fatalf("edge %d lost after growth", i)
		}
	}
	if s.Contains(Edge{9999, 12345}) {
		t.Fatal("phantom edge present")
	}
}

func TestEdgeSetProperty(t *testing.T) {
	f := func(pairs [][2]int16) bool {
		s := NewEdgeSet(0)
		ref := map[uint64]bool{}
		for _, p := range pairs {
			e := Edge{int32(p[0]), int32(p[1])}
			if p[0] == p[1] {
				if s.Add(e) {
					return false
				}
				continue
			}
			added := s.Add(e)
			if added == ref[e.Key()] {
				return false // Add result must reflect prior membership
			}
			ref[e.Key()] = true
		}
		if s.Len() != len(ref) {
			return false
		}
		for _, p := range pairs {
			if p[0] == p[1] {
				continue
			}
			e := Edge{int32(p[0]), int32(p[1])}
			if !s.Contains(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSetEach(t *testing.T) {
	s := NewEdgeSet(0)
	in := []Edge{{0, 1}, {2, 3}, {1, 4}}
	for _, e := range in {
		s.Add(e)
	}
	seen := map[uint64]bool{}
	s.Each(func(e Edge) { seen[e.Key()] = true })
	if len(seen) != len(in) {
		t.Fatalf("Each visited %d edges, want %d", len(seen), len(in))
	}
	for _, e := range in {
		if !seen[e.Key()] {
			t.Fatalf("Each missed %v", e)
		}
	}
}
