package graph

import (
	"fmt"

	"repro/internal/mathx"
)

// HeldOut is the evaluation split: a balanced set of linked and non-linked
// vertex pairs removed from training, exactly as the perplexity metric of
// Eqn (7) requires. Pairs carries the edges; Linked[i] is the observation
// y for Pairs[i].
//
// The paper statically partitions the held-out set across machines for the
// parallel perplexity computation; Slice supports that partitioning.
type HeldOut struct {
	Pairs  []Edge
	Linked []bool
}

// Len returns the number of held-out pairs.
func (h *HeldOut) Len() int { return len(h.Pairs) }

// NumLinks returns how many held-out pairs are linked edges.
func (h *HeldOut) NumLinks() int {
	n := 0
	for _, l := range h.Linked {
		if l {
			n++
		}
	}
	return n
}

// Slice returns the contiguous shard [lo, hi) of the held-out set; shards
// alias the parent storage.
func (h *HeldOut) Slice(lo, hi int) *HeldOut {
	return &HeldOut{Pairs: h.Pairs[lo:hi], Linked: h.Linked[lo:hi]}
}

// Shard returns the rank-th of size equal shards (the last shard absorbs the
// remainder), matching the static partitioning used for distributed
// perplexity.
func (h *HeldOut) Shard(rank, size int) *HeldOut {
	if size <= 0 || rank < 0 || rank >= size {
		panic("graph: invalid held-out shard parameters")
	}
	per := len(h.Pairs) / size
	lo := rank * per
	hi := lo + per
	if rank == size-1 {
		hi = len(h.Pairs)
	}
	return h.Slice(lo, hi)
}

// Split removes a held-out set from g: numLinks random linked edges plus an
// equal number of random non-linked pairs. It returns the training graph
// (original minus held-out links) and the held-out set. The held-out links
// are excluded from training y_ab observations simply by removal; held-out
// non-links are, like all non-links, not represented explicitly.
//
// Split fails if the graph has fewer than numLinks+1 edges or is too dense to
// find non-links by rejection.
func Split(g *Graph, numLinks int, rng *mathx.RNG) (*Graph, *HeldOut, error) {
	if numLinks <= 0 {
		return nil, nil, fmt.Errorf("graph: held-out size %d must be positive", numLinks)
	}
	if numLinks >= g.NumEdges() {
		return nil, nil, fmt.Errorf("graph: held-out size %d >= edge count %d", numLinks, g.NumEdges())
	}
	if g.Density() > 0.5 {
		return nil, nil, fmt.Errorf("graph: density %.2f too high for rejection sampling of non-links", g.Density())
	}

	edges := g.EdgeList()
	// Partial Fisher-Yates: choose numLinks random edges to hold out.
	for i := 0; i < numLinks; i++ {
		j := i + rng.Intn(len(edges)-i)
		edges[i], edges[j] = edges[j], edges[i]
	}
	held := &HeldOut{
		Pairs:  make([]Edge, 0, 2*numLinks),
		Linked: make([]bool, 0, 2*numLinks),
	}
	heldSet := NewEdgeSet(2 * numLinks)
	for _, e := range edges[:numLinks] {
		held.Pairs = append(held.Pairs, e)
		held.Linked = append(held.Linked, true)
		heldSet.Add(e)
	}

	// Sample non-links by rejection: uniform pairs that are neither linked
	// nor already held out.
	n := g.NumVertices()
	for len(held.Pairs) < 2*numLinks {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		e := Edge{int32(a), int32(b)}.Canon()
		if g.edges.Contains(e) || !heldSet.Add(e) {
			continue
		}
		held.Pairs = append(held.Pairs, e)
		held.Linked = append(held.Linked, false)
	}

	// Build the training graph without the held-out links.
	b := NewBuilder(n)
	for _, e := range edges[numLinks:] {
		b.AddEdge(int(e.A), int(e.B))
	}
	train := b.Finalize()
	return train, held, nil
}
