package graph

// EdgeSet is an open-addressing hash set of canonical edges, tuned for the
// access pattern of the sampler: built once, then queried billions of times
// for y_ab membership. It uses linear probing over a power-of-two table and
// stores packed uint64 keys, so a com-LiveJournal-scale edge set costs 8
// bytes per slot with a 0.7 load factor.
type EdgeSet struct {
	slots []uint64 // 0 = empty (edge (0,0) is a self-loop, never stored)
	count int
	mask  uint64
}

const edgeSetMaxLoadNum, edgeSetMaxLoadDen = 7, 10

// NewEdgeSet creates a set with capacity for roughly sizeHint edges before
// the first grow.
func NewEdgeSet(sizeHint int) EdgeSet {
	cap := 16
	for cap*edgeSetMaxLoadNum < sizeHint*edgeSetMaxLoadDen {
		cap *= 2
	}
	return EdgeSet{slots: make([]uint64, cap), mask: uint64(cap - 1)}
}

// Len returns the number of edges in the set.
func (s *EdgeSet) Len() int { return s.count }

func edgeHash(key uint64) uint64 {
	// Fibonacci-style mix; keys are packed (a<<32 | b) pairs which are far
	// from uniform, so mixing matters for probe lengths.
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return key
}

// Add inserts the edge, returning true if it was not already present.
// Self-loops are rejected (they cannot be distinguished from empty slots and
// the model has no use for them).
func (s *EdgeSet) Add(e Edge) bool {
	c := e.Canon()
	if c.A == c.B {
		return false
	}
	if s.slots == nil {
		*s = NewEdgeSet(16)
	}
	key := c.Key()
	if s.insert(key) {
		s.count++
		if s.count*edgeSetMaxLoadDen > len(s.slots)*edgeSetMaxLoadNum {
			s.grow()
		}
		return true
	}
	return false
}

func (s *EdgeSet) insert(key uint64) bool {
	i := edgeHash(key) & s.mask
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = key
			return true
		}
		if v == key {
			return false
		}
		i = (i + 1) & s.mask
	}
}

func (s *EdgeSet) grow() {
	old := s.slots
	s.slots = make([]uint64, 2*len(old))
	s.mask = uint64(len(s.slots) - 1)
	for _, v := range old {
		if v != 0 {
			s.insert(v)
		}
	}
}

// Contains reports whether the edge is in the set.
func (s *EdgeSet) Contains(e Edge) bool {
	if s.slots == nil || s.count == 0 {
		return false
	}
	c := e.Canon()
	if c.A == c.B {
		return false
	}
	key := c.Key()
	i := edgeHash(key) & s.mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if v == key {
			return true
		}
		i = (i + 1) & s.mask
	}
}

// Each calls fn for every edge in the set, in unspecified order.
func (s *EdgeSet) Each(fn func(Edge)) {
	for _, v := range s.slots {
		if v != 0 {
			fn(Edge{int32(v >> 32), int32(v & 0xffffffff)})
		}
	}
}
