// Package graph provides the compact network representation used throughout
// the system: a CSR-style adjacency structure for iterating a vertex's links,
// a hash-based edge set for O(1) membership queries (the y_ab observations of
// the model), readers and writers for the SNAP edge-list format, and the
// held-out split used by the perplexity metric.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected vertex pair, stored canonically with A < B.
type Edge struct {
	A, B int32
}

// Canon returns e with endpoints ordered so A < B. Self loops are returned
// unchanged.
func (e Edge) Canon() Edge {
	if e.A > e.B {
		e.A, e.B = e.B, e.A
	}
	return e
}

// Key packs the canonical edge into a single uint64 for hashing.
func (e Edge) Key() uint64 {
	c := e.Canon()
	return uint64(uint32(c.A))<<32 | uint64(uint32(c.B))
}

// Graph is an immutable undirected graph. Build one with a Builder or a
// generator from internal/gen; after Finalize the adjacency arrays never
// change, which is what lets the sampler share a Graph across threads and
// ranks without synchronisation.
type Graph struct {
	n       int
	offsets []int32 // len n+1; CSR row pointers into neigh
	neigh   []int32 // concatenated sorted adjacency lists
	edges   EdgeSet // canonical linked-edge membership
	m       int     // number of undirected edges
}

// NumVertices returns N, the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E|, the number of undirected linked edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the number of neighbors of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.neigh[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the undirected edge (a, b) is linked.
func (g *Graph) HasEdge(a, b int) bool {
	return g.edges.Contains(Edge{int32(a), int32(b)})
}

// Edges calls fn for every canonical undirected edge. Iteration order is
// deterministic (by first endpoint, then second).
func (g *Graph) Edges(fn func(Edge)) {
	for v := 0; v < g.n; v++ {
		for _, w := range g.Neighbors(v) {
			if int32(v) < w {
				fn(Edge{int32(v), w})
			}
		}
	}
}

// EdgeList materialises all canonical edges; used by the held-out splitter
// and the minibatch samplers that need random access to E.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.m)
	g.Edges(func(e Edge) { out = append(out, e) })
	return out
}

// MaxDegree returns the largest vertex degree in the graph (0 when empty).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > best {
			best = d
		}
	}
	return best
}

// MeanDegree returns 2|E|/N, the average degree (0 for an empty graph).
func (g *Graph) MeanDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Density returns |E| / (N choose 2).
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(g.m) / (float64(g.n) * float64(g.n-1) / 2)
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are dropped silently, matching how the paper's loader treats
// the SNAP inputs.
type Builder struct {
	n     int
	set   EdgeSet
	edges []Edge
}

// NewBuilder creates a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, set: NewEdgeSet(16)}
}

// AddEdge records the undirected edge (a, b). It returns true if the edge was
// new and within range, false for duplicates, self-loops, or out-of-range
// endpoints.
func (b *Builder) AddEdge(a, bb int) bool {
	if a == bb || a < 0 || bb < 0 || a >= b.n || bb >= b.n {
		return false
	}
	e := Edge{int32(a), int32(bb)}.Canon()
	if !b.set.Add(e) {
		return false
	}
	b.edges = append(b.edges, e)
	return true
}

// NumEdges returns the number of accepted edges so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Finalize builds the immutable Graph. The builder must not be used after.
func (b *Builder) Finalize() *Graph {
	deg := make([]int32, b.n+1)
	for _, e := range b.edges {
		deg[e.A+1]++
		deg[e.B+1]++
	}
	for i := 0; i < b.n; i++ {
		deg[i+1] += deg[i]
	}
	offsets := deg
	neigh := make([]int32, 2*len(b.edges))
	cursor := make([]int32, b.n)
	for _, e := range b.edges {
		neigh[offsets[e.A]+cursor[e.A]] = e.B
		cursor[e.A]++
		neigh[offsets[e.B]+cursor[e.B]] = e.A
		cursor[e.B]++
	}
	for v := 0; v < b.n; v++ {
		row := neigh[offsets[v]:offsets[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
	}
	g := &Graph{
		n:       b.n,
		offsets: offsets,
		neigh:   neigh,
		edges:   b.set,
		m:       len(b.edges),
	}
	b.edges = nil
	b.set = EdgeSet{}
	return g
}

// FromEdges is a convenience constructor for tests and generators.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int(e.A), int(e.B))
	}
	return b.Finalize()
}

// Validate checks internal consistency (CSR symmetry, edge set agreement).
// It is O(N + E log E) and intended for tests, not hot paths.
func (g *Graph) Validate() error {
	if len(g.offsets) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), g.n+1)
	}
	count := 0
	for v := 0; v < g.n; v++ {
		row := g.Neighbors(v)
		for i, w := range row {
			if w < 0 || int(w) >= g.n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && row[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if !g.edges.Contains(Edge{int32(v), w}) {
				return fmt.Errorf("graph: CSR edge (%d,%d) missing from edge set", v, w)
			}
			// Symmetry: v must appear in w's list.
			back := g.Neighbors(int(w))
			idx := sort.Search(len(back), func(i int) bool { return back[i] >= int32(v) })
			if idx >= len(back) || back[idx] != int32(v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, w)
			}
			if int32(v) < w {
				count++
			}
		}
	}
	if count != g.m {
		return fmt.Errorf("graph: CSR holds %d edges, header says %d", count, g.m)
	}
	if g.edges.Len() != g.m {
		return fmt.Errorf("graph: edge set holds %d edges, header says %d", g.edges.Len(), g.m)
	}
	return nil
}
