package store

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// initMmap creates an n×k store in a fresh temp dir, populates it with the
// same deterministic rows twoRankStores uses, and seals generation 1.
func initMmap(t *testing.T, n, k int, opt MmapOptions) *MmapStore {
	t.Helper()
	s, err := CreateMmap(t.TempDir(), n, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if err := s.InitRows(func(a int, pi []float32) float64 {
		for j := range pi {
			pi[j] = float32(a*10 + j)
		}
		return float64(a)
	}); err != nil {
		t.Fatal(err)
	}
	if gen, err := s.Seal(); err != nil || gen != 1 {
		t.Fatalf("first seal: gen=%d err=%v", gen, err)
	}
	return s
}

func TestMmapStoreReadWrite(t *testing.T) {
	const n, k = 100, 4
	s := initMmap(t, n, k, MmapOptions{ShardRows: 16})
	if s.NumRows() != n || s.K() != k {
		t.Fatalf("dims %d×%d, want %d×%d", s.NumRows(), s.K(), n, k)
	}
	if !ReadsAreLocal(s) {
		t.Fatal("MmapStore must report local reads")
	}

	// Initial rows decode exactly, including across shard boundaries.
	ids := []int32{0, 15, 16, 17, 99, 31, 32}
	var rows Rows
	if err := s.ReadRows(ids, &rows); err != nil {
		t.Fatal(err)
	}
	for i, a := range ids {
		checkInitRow(t, &rows, i, a, k)
	}

	// Writes use the reference SetPhiRow arithmetic bit-for-bit.
	phi := []float64{
		1, 2, 3, 4,
		0.5, 0.25, 0.125, 0.0625,
		10, 20, 30, 40,
	}
	wids := []int32{3, 47, 99}
	if err := s.WriteRows(wids, phi); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadRows(wids, &rows); err != nil {
		t.Fatal(err)
	}
	for i := range wids {
		wantPi, wantSum := refWrite(phi[i*k : (i+1)*k])
		if math.Float64bits(rows.PhiSum[i]) != math.Float64bits(wantSum) {
			t.Fatalf("row %d: Σφ = %v, want %v", i, rows.PhiSum[i], wantSum)
		}
		for j, w := range wantPi {
			if math.Float32bits(rows.PiRow(i)[j]) != math.Float32bits(w) {
				t.Fatalf("row %d: π[%d] = %v, want %v", i, j, rows.PiRow(i)[j], w)
			}
		}
	}

	// Async must agree and complete immediately.
	var rows2 Rows
	pend, err := s.ReadRowsAsync(wids, &rows2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pend.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range wids {
		if rows2.PhiSum[i] != rows.PhiSum[i] {
			t.Fatalf("async read row %d disagrees", i)
		}
	}

	// Out-of-range and short inputs fail typed, not panic.
	if err := s.ReadRows([]int32{int32(n)}, &rows); err == nil {
		t.Fatal("out-of-range key accepted by ReadRows")
	}
	if err := s.WriteRows([]int32{-1}, make([]float64, k)); err == nil {
		t.Fatal("negative key accepted by WriteRows")
	}
	if err := s.WriteRows([]int32{0}, []float64{1}); err == nil {
		t.Fatal("short phi accepted by WriteRows")
	}
}

func TestMmapStoreSealReopen(t *testing.T) {
	const n, k = 70, 3
	s := initMmap(t, n, k, MmapOptions{ShardRows: 32})
	dir := s.Dir()

	// Mutate a few rows, seal generation 2, close, reopen: the writes must
	// survive and untouched rows keep their initial values.
	phi := []float64{2, 3, 5}
	if err := s.WriteRows([]int32{40}, phi); err != nil {
		t.Fatal(err)
	}
	if gen, err := s.Seal(); err != nil || gen != 2 {
		t.Fatalf("second seal: gen=%d err=%v", gen, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenMmap(dir, MmapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Generation() != 2 {
		t.Fatalf("reopened generation %d, want 2", r.Generation())
	}
	var rows Rows
	if err := r.ReadRows([]int32{40, 7}, &rows); err != nil {
		t.Fatal(err)
	}
	wantPi, wantSum := refWrite(phi)
	if rows.PhiSum[0] != wantSum || rows.PiRow(0)[0] != wantPi[0] {
		t.Fatalf("sealed write lost: Σφ=%v π0=%v", rows.PhiSum[0], rows.PiRow(0)[0])
	}
	checkInitRow(t, &rows, 1, 7, k)

	// Unsealed writes are discarded by reopen (the documented contract).
	if err := r.WriteRows([]int32{7}, []float64{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := OpenMmap(dir, MmapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.ReadRows([]int32{7}, &rows); err != nil {
		t.Fatal(err)
	}
	checkInitRow(t, &rows, 0, 7, k)
}

// TestMmapStoreCrashMidSeal kills the seal protocol between the shard
// renames and the manifest commit — the torn-state window — and verifies a
// reopen serves the previous generation completely intact.
func TestMmapStoreCrashMidSeal(t *testing.T) {
	const n, k = 64, 3
	s := initMmap(t, n, k, MmapOptions{ShardRows: 16})
	dir := s.Dir()

	// Dirty two shards, then crash after the first shard rename.
	if err := s.WriteRows([]int32{1, 60}, []float64{2, 3, 5, 7, 11, 13}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated crash")
	s.sealHook = func(step string, shard int) error {
		if step == "shard" {
			return boom
		}
		return nil
	}
	if _, err := s.Seal(); !errors.Is(err, boom) {
		t.Fatalf("seal survived injected crash: %v", err)
	}
	s.Close()

	r, err := OpenMmap(dir, MmapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Generation() != 1 {
		t.Fatalf("after crash-mid-seal: generation %d, want 1", r.Generation())
	}
	// Every row reads back at its generation-1 value — the aborted writes to
	// vertices 1 and 60 never became current.
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	var rows Rows
	if err := r.ReadRows(ids, &rows); err != nil {
		t.Fatal(err)
	}
	for i, a := range ids {
		checkInitRow(t, &rows, i, a, k)
	}
	// The orphaned generation-2 shard from the aborted seal is gone, and a
	// fresh write+seal cycle works from the recovered state.
	names, err := filepath.Glob(filepath.Join(dir, "shard-*-g000002.pi"))
	if err != nil || len(names) != 0 {
		t.Fatalf("orphan generation files survive reopen: %v (err %v)", names, err)
	}
	if err := r.WriteRows([]int32{1}, []float64{1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if gen, err := r.Seal(); err != nil || gen != 2 {
		t.Fatalf("post-recovery seal: gen=%d err=%v", gen, err)
	}
}

// TestMmapStoreCrashAfterManifest kills the seal after the manifest commit:
// the new generation is durable and must be what a reopen serves.
func TestMmapStoreCrashAfterManifest(t *testing.T) {
	const n, k = 48, 2
	s := initMmap(t, n, k, MmapOptions{ShardRows: 16})
	dir := s.Dir()
	phi := []float64{3, 5}
	if err := s.WriteRows([]int32{20}, phi); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("simulated crash")
	s.sealHook = func(step string, shard int) error {
		if step == "manifest" {
			return boom
		}
		return nil
	}
	if _, err := s.Seal(); !errors.Is(err, boom) {
		t.Fatalf("seal survived injected crash: %v", err)
	}
	s.Close()

	r, err := OpenMmap(dir, MmapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Generation() != 2 {
		t.Fatalf("after crash-post-commit: generation %d, want 2", r.Generation())
	}
	var rows Rows
	if err := r.ReadRows([]int32{20}, &rows); err != nil {
		t.Fatal(err)
	}
	wantPi, wantSum := refWrite(phi)
	if rows.PhiSum[0] != wantSum || rows.PiRow(0)[0] != wantPi[0] {
		t.Fatalf("committed write lost: Σφ=%v π0=%v", rows.PhiSum[0], rows.PiRow(0)[0])
	}
}

// TestMmapStoreTornShard truncates a sealed shard file and verifies Open
// refuses it with the typed short-row error instead of faulting on read.
func TestMmapStoreTornShard(t *testing.T) {
	const n, k = 40, 3
	s := initMmap(t, n, k, MmapOptions{ShardRows: 16})
	dir := s.Dir()
	s.Close()

	path := filepath.Join(dir, fmt.Sprintf("shard-%05d-g%06d.pi", 1, 1))
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-5); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmap(dir, MmapOptions{}); !errors.Is(err, ErrShortRow) {
		t.Fatalf("torn shard opened: err=%v, want ErrShortRow", err)
	}
}

func TestMmapStoreDegenerateRow(t *testing.T) {
	const n, k = 32, 3
	s := initMmap(t, n, k, MmapOptions{ShardRows: 16})
	err := s.WriteRows([]int32{5, 6}, []float64{0, 0, 0, 1, 2, 3})
	if !errors.Is(err, ErrDegenerateRow) {
		t.Fatalf("zero-sum φ row accepted: %v", err)
	}
	// The degenerate vertex is named, the valid sibling row still landed,
	// and the degenerate row's prior value is untouched.
	if want := "vertex 5"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
	var rows Rows
	if err := s.ReadRows([]int32{5, 6}, &rows); err != nil {
		t.Fatal(err)
	}
	checkInitRow(t, &rows, 0, 5, k)
	wantPi, wantSum := refWrite([]float64{1, 2, 3})
	if rows.PhiSum[1] != wantSum || rows.PiRow(1)[0] != wantPi[0] {
		t.Fatalf("valid row skipped alongside degenerate one: Σφ=%v", rows.PhiSum[1])
	}
}

// TestMmapStoreAdvise exercises the residency-drop path: data must be
// byte-identical after madvise(DONTNEED) on every flush.
func TestMmapStoreAdvise(t *testing.T) {
	const n, k = 64, 4
	s := initMmap(t, n, k, MmapOptions{ShardRows: 16, AdviseEveryFlush: 1})
	phi := []float64{1, 2, 3, 4}
	for iter := 0; iter < 4; iter++ {
		if err := s.WriteRows([]int32{int32(iter * 16)}, phi); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	var rows Rows
	ids := []int32{0, 16, 32, 48, 63}
	if err := s.ReadRows(ids, &rows); err != nil {
		t.Fatal(err)
	}
	_, wantSum := refWrite(phi)
	for i := 0; i < 4; i++ {
		if rows.PhiSum[i] != wantSum {
			t.Fatalf("row %d lost after residency drop: Σφ=%v, want %v", ids[i], rows.PhiSum[i], wantSum)
		}
	}
	checkInitRow(t, &rows, 4, 63, k)
}

func TestMmapStoreWritePiRowsAndSnapshot(t *testing.T) {
	const n, k = 40, 3
	s := initMmap(t, n, k, MmapOptions{ShardRows: 16})
	pi := []float32{0.25, 0.5, 0.25}
	if err := s.WritePiRows([]int32{11}, pi, []float64{42.5}); err != nil {
		t.Fatal(err)
	}
	var rows Rows
	if err := s.ReadRows([]int32{11}, &rows); err != nil {
		t.Fatal(err)
	}
	if rows.PhiSum[0] != 42.5 || rows.PiRow(0)[1] != 0.5 {
		t.Fatalf("verbatim row mangled: Σφ=%v π=%v", rows.PhiSum[0], rows.PiRow(0))
	}

	snap, err := s.Snapshot(7, []float64{0.9, 0.8, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 7 || snap.N != n || snap.K != k {
		t.Fatalf("snapshot dims: %+v", snap)
	}
	if snap.PiRow(11)[1] != 0.5 {
		t.Fatalf("snapshot row 11 = %v", snap.PiRow(11))
	}
	// Row 3 was initialised with π=(30,31,32) verbatim; the snapshot must
	// return exactly those bytes.
	if snap.PiRow(3)[0] != 30 || snap.PiRow(3)[2] != 32 {
		t.Fatalf("snapshot row 3 = %v", snap.PiRow(3))
	}
}
