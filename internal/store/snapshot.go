package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot is an immutable, versioned copy of the model's π matrix sealed at
// a phase barrier: a row-major float32 slab plus the β strengths, with no
// references into live training state. Once constructed it is never mutated,
// which is what lets the serving tier hand it to concurrently running
// readers through a single atomic pointer flip — readers take no lock and
// can never observe a half-written iteration, because the writer seals the
// copy completely before the flip.
type Snapshot struct {
	// Version is the number of completed training iterations the snapshot
	// reflects (a checkpoint-backed snapshot carries the stored iteration).
	// Versions published by one run are strictly increasing.
	Version int
	// N and K are the matrix dimensions.
	N, K int
	// Pi is the sealed row-major N×K membership matrix; row a is
	// Pi[a*K : (a+1)*K] and sums to 1.
	Pi []float32
	// Beta[k] is the community strength at seal time (nil when the sealing
	// store had no θ view; query semantics do not depend on it).
	Beta []float64
	// SealedAt is the wall-clock instant the copy completed; the serving
	// tier derives response staleness from it.
	SealedAt time.Time
}

// PiRow returns vertex a's sealed membership row.
func (s *Snapshot) PiRow(a int) []float32 { return s.Pi[a*s.K : (a+1)*s.K] }

// Snapshotter is an optional PiStore capability: backends that can seal the
// current rows into an immutable Snapshot implement it. Callers must invoke
// it only at a phase barrier (no writes in flight), the same discipline
// Flush documents; the returned snapshot shares no memory with the store.
//
//   - LocalStore copies its backing slices — one memcpy, always consistent
//     because the local engine is single-threaded between barriers.
//   - DKVStore gathers the full table through its batched read path: every
//     rank serves its owned shard and the calling (serving) rank assembles
//     the complete row-major view. Only the serving rank needs to call it;
//     peers participate passively through their DKV server goroutines.
type Snapshotter interface {
	// Snapshot seals the current rows. beta (copied, may be nil) is the β
	// vector at the barrier — the store itself holds only π/Σφ.
	Snapshot(version int, beta []float64) (*Snapshot, error)
}

// Snapshot implements Snapshotter for the local backend: plain copies of the
// π slab, sealed in one pass.
func (s *LocalStore) Snapshot(version int, beta []float64) (*Snapshot, error) {
	snap := &Snapshot{
		Version: version,
		N:       len(s.phiSum),
		K:       s.k,
		Pi:      append([]float32(nil), s.pi...),
		Beta:    append([]float64(nil), beta...),
	}
	snap.SealedAt = time.Now()
	return snap, nil
}

// snapshotGatherKeys bounds one gather batch; matches the DKV read batching
// the training path uses.
const snapshotGatherKeys = 4096

// Snapshot implements Snapshotter for the distributed backend: the gatherer.
// The serving rank reads every key in owner-grouped batches — each peer
// streams exactly its shard — and assembles the full row-major slab. The
// gather deliberately goes through the raw DKV layer rather than ReadRows:
// a full-table sweep through the hot-row cache would evict every genuinely
// hot row and distort the hit-rate counters, and the training path's cache
// is bit-transparent anyway. The phase discipline makes the gather
// consistent: at a barrier no rank has writes in flight, and the master's
// next scatter cannot start until the serving rank (the master) finishes
// sealing, so no row can change mid-gather.
func (s *DKVStore) Snapshot(version int, beta []float64) (*Snapshot, error) {
	snap := &Snapshot{
		Version: version,
		N:       s.n,
		K:       s.k,
		Pi:      make([]float32, s.n*s.k),
		Beta:    append([]float64(nil), beta...),
	}
	rb := RowBytes(s.k)
	keys := make([]int32, 0, snapshotGatherKeys)
	raw := make([]byte, snapshotGatherKeys*rb)
	for base := 0; base < s.n; base += snapshotGatherKeys {
		hi := min(base+snapshotGatherKeys, s.n)
		keys = keys[:0]
		for a := base; a < hi; a++ {
			keys = append(keys, int32(a))
		}
		fut, err := s.kv.ReadBatchAsync(keys, raw[:len(keys)*rb])
		if err == nil {
			err = fut.Wait()
		}
		if err != nil {
			return nil, fmt.Errorf("store: snapshot gather at key %d: %w", base, err)
		}
		for i, a := range keys {
			if _, err := DecodeRow(raw[i*rb:(i+1)*rb], snap.Pi[int(a)*s.k:(int(a)+1)*s.k]); err != nil {
				return nil, fmt.Errorf("store: snapshot gather key %d: %w", a, err)
			}
		}
	}
	snap.SealedAt = time.Now()
	return snap, nil
}

// Publisher is the RCU write side of snapshot publication: Publish installs
// a sealed snapshot with one atomic pointer store, Current returns the most
// recently published one with one atomic load. Readers therefore never block
// a publisher and never see a torn view; a reader that loaded version v
// keeps a fully consistent v even while v+1 is being published.
//
// Subscribers (Subscribe) run synchronously inside Publish, BEFORE the
// pointer flip — this is where the serving tier builds its per-snapshot
// inverted index, off the read path, so by the time a version becomes
// Current every derived structure for it already exists.
type Publisher struct {
	cur atomic.Pointer[Snapshot]

	mu   sync.Mutex
	subs []func(*Snapshot)

	lastVersion atomic.Int64
	flipNS      atomic.Int64
}

// NewPublisher returns an empty publisher; Current is nil until the first
// Publish.
func NewPublisher() *Publisher { return &Publisher{} }

// Current returns the most recently published snapshot, or nil before the
// first publication. The returned snapshot is immutable and safe to read
// for as long as the caller holds it, regardless of later publications.
func (p *Publisher) Current() *Snapshot { return p.cur.Load() }

// Subscribe registers f to run inside every subsequent Publish, before the
// snapshot becomes Current. If a snapshot is already published, f runs on it
// immediately, so a late subscriber never misses the current state.
func (p *Publisher) Subscribe(f func(*Snapshot)) {
	p.mu.Lock()
	p.subs = append(p.subs, f)
	p.mu.Unlock()
	if s := p.cur.Load(); s != nil {
		f(s)
	}
}

// Publish installs snap: subscribers first (index builds), then the atomic
// pointer flip. Versions must be strictly increasing — a stale or replayed
// version is rejected so readers can rely on monotonicity.
func (p *Publisher) Publish(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("store: publish of nil snapshot")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur := p.cur.Load(); cur != nil && snap.Version <= cur.Version {
		return fmt.Errorf("store: publish version %d not after current %d", snap.Version, cur.Version)
	}
	start := time.Now()
	for _, f := range p.subs {
		f(snap)
	}
	p.cur.Store(snap)
	p.flipNS.Store(time.Since(start).Nanoseconds())
	p.lastVersion.Store(int64(snap.Version))
	return nil
}

// LastFlipNS returns the wall-clock nanoseconds the most recent Publish
// spent between seal and visibility (subscriber fan-out + pointer flip);
// 0 before the first publication.
func (p *Publisher) LastFlipNS() int64 { return p.flipNS.Load() }
