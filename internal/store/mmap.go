package store

// MmapStore: the out-of-core π backend. The full table lives on disk as a
// directory of fixed-size shard files, each memory-mapped on demand, so a
// single machine can train graphs whose π matrix does not fit in RAM — the
// paper's com-Friendster target is ~3 TB of π, and the fixed RowBytes(K)
// layout maps 1:1 onto flat files.
//
// # Layout
//
//	<dir>/MANIFEST                  JSON: dims, shard size, per-shard generation
//	<dir>/shard-00007-g000003.pi    sealed shard 7, generation 3
//	<dir>/shard-00007.work          shard 7's unsealed working copy (if dirty)
//
// Every shard file is a 32-byte header (magic, K, shard index, row count,
// generation) followed by rows×RowBytes(K) of row payload — the same wire
// codec every other backend uses, so a shard byte-compared against a DKV
// value or a LocalStore encode is identical.
//
// # Seal protocol (crash safety)
//
// Sealed generation files are never written in place. The first write to a
// shard after a seal copies its current generation into a .work file and
// remaps that read-write; subsequent writes mutate the work mapping only.
// Seal() then makes the working state durable and current atomically:
//
//  1. per dirty shard: stamp the new generation into the header, fsync,
//     rename work → shard-XXXXX-gGGGGGG.pi (create-rename, never in place);
//  2. write MANIFEST.tmp with the new per-shard generations, fsync, rename
//     over MANIFEST — the commit point;
//  3. best-effort removal of the superseded generation files.
//
// A crash anywhere before step 2's rename leaves MANIFEST pointing at the
// previous generation files, which steps 1 and 3 never touched — Open loads
// the previous generation and discards orphans. A crash after the rename is
// a completed seal. A half-written shard can therefore never become current.
//
// # Consistency
//
// Within a phase the training algorithm never reads a row it writes, and
// writes go straight into the (work) mapping, so Flush needs no data
// movement — it is the residency-management hook (see AdviseEveryFlush).
// Reads are answered from the page cache via the mapping; the kernel pages
// cold shards in and out, which is the whole point.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/par"
)

const (
	shardMagic       = 0x6f63647069736831 // "ocdpish1"
	shardHeaderBytes = 32

	// DefaultShardRows is the shard granularity when MmapOptions leaves it
	// zero: 64Ki rows ≈ 34 MB per shard at K=128 — large enough that the
	// per-shard open/map overhead vanishes, small enough that copy-on-write
	// materialisation stays cheap.
	DefaultShardRows = 1 << 16

	manifestName    = "MANIFEST"
	manifestVersion = 1
)

// MmapOptions configures CreateMmap/OpenMmap.
type MmapOptions struct {
	// ShardRows is the shard size in rows; 0 = DefaultShardRows.
	ShardRows int
	// Threads parallelises batched row decode; 0 = GOMAXPROCS.
	Threads int
	// AdviseEveryFlush, when > 0, drops page residency (madvise DONTNEED) of
	// every shard mapping on each AdviseEveryFlush-th Flush. The data stays
	// in the kernel page cache — re-reads minor-fault it back — but the pages
	// leave the process's resident set, which is what keeps peak RSS bounded
	// under a memory cap. 0 never drops.
	AdviseEveryFlush int
}

// mmapManifest is the JSON commit record of the seal protocol.
type mmapManifest struct {
	Version   int      `json:"version"`
	N         int      `json:"n"`
	K         int      `json:"k"`
	ShardRows int      `json:"shard_rows"`
	SealGen   uint64   `json:"seal_gen"`
	Shards    []uint64 `json:"shards"` // per-shard sealed generation
}

// mmapShard is one shard's live state.
type mmapShard struct {
	rows  int
	gen   uint64 // generation of the sealed file this shard last sealed to
	dirty bool   // mapping is an unsealed .work file with pending writes
	data  []byte // mmap of header+rows·rb; nil before materialisation
	f     *os.File
}

// MmapStore implements PiStore over a directory of memory-mapped shard
// files. See the package comment at the top of this file for the layout and
// the seal protocol. All reads complete without remote communication
// (LocalReader), so the φ stage drives it with the fused serial schedule.
type MmapStore struct {
	dir       string
	n, k      int
	shardRows int
	threads   int
	rb        int
	advise    int

	mu      sync.RWMutex
	shards  []mmapShard
	gen     uint64 // last sealed generation (0 = never sealed)
	flushes uint64

	// sealHook, when set (tests only), runs between seal-protocol steps:
	// ("shard", i) after shard i's rename, ("manifest", -1) after the
	// manifest commit. Returning an error aborts the seal at that point —
	// the crash-injection seam for the recovery tests.
	sealHook func(step string, shard int) error
}

// CreateMmap initialises a new store directory for an n×k table. The
// directory is created (it must not already hold a manifest); rows are
// unmaterialised until InitRows/WritePiRows/WriteRows touch them, and
// nothing is durable until the first Seal.
func CreateMmap(dir string, n, k int, opt MmapOptions) (*MmapStore, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("store: mmap table %d×%d invalid", n, k)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("store: %s already holds a sealed π table (open it instead)", dir)
	}
	s := newMmapStore(dir, n, k, opt)
	return s, nil
}

// OpenMmap loads the sealed generation recorded in dir's manifest. Orphan
// .work and .tmp files from an interrupted seal are removed; shard files are
// validated (header + exact size) so a torn file surfaces as a typed
// ErrShortRow instead of an out-of-range panic on first read.
func OpenMmap(dir string, opt MmapOptions) (*MmapStore, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: mmap manifest: %w", err)
	}
	var m mmapManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("store: mmap manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: mmap manifest version %d unsupported", m.Version)
	}
	if m.N < 1 || m.K < 1 || m.ShardRows < 1 {
		return nil, fmt.Errorf("store: mmap manifest claims N=%d K=%d shardRows=%d", m.N, m.K, m.ShardRows)
	}
	opt.ShardRows = m.ShardRows
	s := newMmapStore(dir, m.N, m.K, opt)
	if len(m.Shards) != len(s.shards) {
		return nil, fmt.Errorf("store: mmap manifest lists %d shards, dims need %d", len(m.Shards), len(s.shards))
	}
	s.gen = m.SealGen
	for i := range s.shards {
		if err := s.openSealed(i, m.Shards[i]); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.removeOrphans(m.Shards)
	return s, nil
}

func newMmapStore(dir string, n, k int, opt MmapOptions) *MmapStore {
	shardRows := opt.ShardRows
	if shardRows <= 0 {
		shardRows = DefaultShardRows
	}
	if shardRows > n {
		shardRows = n
	}
	nShards := (n + shardRows - 1) / shardRows
	s := &MmapStore{
		dir: dir, n: n, k: k, shardRows: shardRows,
		threads: opt.Threads, rb: RowBytes(k), advise: opt.AdviseEveryFlush,
		shards: make([]mmapShard, nShards),
	}
	for i := range s.shards {
		rows := shardRows
		if i == nShards-1 {
			rows = n - i*shardRows
		}
		s.shards[i].rows = rows
	}
	return s
}

func (s *MmapStore) shardFile(i int, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%05d-g%06d.pi", i, gen))
}

func (s *MmapStore) workFile(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%05d.work", i))
}

func (s *MmapStore) shardSize(i int) int {
	return shardHeaderBytes + s.shards[i].rows*s.rb
}

// encodeShardHeader stamps the 32-byte shard header into dst.
func (s *MmapStore) encodeShardHeader(dst []byte, shard int, gen uint64) {
	binary.LittleEndian.PutUint64(dst[0:], shardMagic)
	binary.LittleEndian.PutUint32(dst[8:], uint32(s.k))
	binary.LittleEndian.PutUint32(dst[12:], uint32(shard))
	binary.LittleEndian.PutUint32(dst[16:], uint32(s.shards[shard].rows))
	binary.LittleEndian.PutUint32(dst[20:], 0)
	binary.LittleEndian.PutUint64(dst[24:], gen)
}

// openSealed maps shard i's sealed generation file read-only, validating
// header and size so torn bytes fail typed and early.
func (s *MmapStore) openSealed(i int, gen uint64) error {
	path := s.shardFile(i, gen)
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: mmap shard %d: %w", i, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	want := int64(s.shardSize(i))
	if st.Size() != want {
		f.Close()
		return fmt.Errorf("store: mmap shard %d (%s): %w: file has %d bytes, need %d",
			i, filepath.Base(path), ErrShortRow, st.Size(), want)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(want), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: mmap shard %d: %w", i, err)
	}
	if err := s.checkShardHeader(data, i, gen); err != nil {
		syscall.Munmap(data)
		f.Close()
		return err
	}
	s.shards[i].data = data
	s.shards[i].f = f
	s.shards[i].gen = gen
	s.shards[i].dirty = false
	return nil
}

func (s *MmapStore) checkShardHeader(data []byte, i int, gen uint64) error {
	if binary.LittleEndian.Uint64(data[0:]) != shardMagic {
		return fmt.Errorf("store: mmap shard %d: not a shard file", i)
	}
	if k := binary.LittleEndian.Uint32(data[8:]); int(k) != s.k {
		return fmt.Errorf("store: mmap shard %d: K=%d, store expects %d", i, k, s.k)
	}
	if idx := binary.LittleEndian.Uint32(data[12:]); int(idx) != i {
		return fmt.Errorf("store: mmap shard %d: header claims shard %d", i, idx)
	}
	if rows := binary.LittleEndian.Uint32(data[16:]); int(rows) != s.shards[i].rows {
		return fmt.Errorf("store: mmap shard %d: header claims %d rows, need %d", i, rows, s.shards[i].rows)
	}
	if g := binary.LittleEndian.Uint64(data[24:]); g != gen {
		return fmt.Errorf("store: mmap shard %d: header generation %d, manifest says %d", i, g, gen)
	}
	return nil
}

// removeOrphans deletes leftovers of an interrupted seal: .work files,
// MANIFEST.tmp, and shard generation files the manifest does not reference.
func (s *MmapStore) removeOrphans(gens []uint64) {
	os.Remove(filepath.Join(s.dir, manifestName+".tmp"))
	for i := range s.shards {
		os.Remove(s.workFile(i))
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	referenced := make(map[string]bool, len(gens))
	for i, g := range gens {
		referenced[filepath.Base(s.shardFile(i, g))] = true
	}
	for _, e := range entries {
		name := e.Name()
		var idx int
		var gen uint64
		if _, err := fmt.Sscanf(name, "shard-%05d-g%06d.pi", &idx, &gen); err == nil && !referenced[name] {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// materializeLocked gives shard i a writable .work mapping: a copy of its
// sealed generation (or zeroes when the shard has never been written). The
// copy streams file-to-file so it lands in the page cache, not the heap.
// Caller holds s.mu for writing.
func (s *MmapStore) materializeLocked(i int) error {
	sh := &s.shards[i]
	if sh.dirty {
		return nil
	}
	size := s.shardSize(i)
	path := s.workFile(i)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if sh.data != nil {
		// Copy the sealed payload through a bounded buffer; the work file's
		// header is re-stamped below (generation is assigned at seal time).
		if _, err := f.Write(sh.data); err != nil {
			f.Close()
			os.Remove(path)
			return err
		}
	} else if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("store: mmap work shard %d: %w", i, err)
	}
	s.encodeShardHeader(data, i, 0) // generation stamped at seal
	if sh.data != nil {
		syscall.Munmap(sh.data)
		sh.f.Close()
	}
	sh.data = data
	sh.f = f
	sh.dirty = true
	return nil
}

// rowAt returns row a's bytes in its shard mapping. Caller holds s.mu (any
// mode) and has ensured the shard is materialised or sealed.
func (s *MmapStore) rowAt(a int) ([]byte, error) {
	sh := &s.shards[a/s.shardRows]
	if sh.data == nil {
		return nil, fmt.Errorf("store: mmap shard %d not initialised (row %d)", a/s.shardRows, a)
	}
	off := shardHeaderBytes + (a%s.shardRows)*s.rb
	return sh.data[off : off+s.rb], nil
}

// NumRows implements PiStore.
func (s *MmapStore) NumRows() int { return s.n }

// K implements PiStore.
func (s *MmapStore) K() int { return s.k }

// Dir returns the store directory.
func (s *MmapStore) Dir() string { return s.dir }

// Generation returns the last sealed generation (0 before the first Seal).
func (s *MmapStore) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// ReadsAreLocal implements LocalReader: a read is a page-cache access (at
// worst a disk fault), never a transport round trip, so the φ stage takes
// the fused serial path.
func (s *MmapStore) ReadsAreLocal() bool { return true }

func (s *MmapStore) checkIDs(ids []int32) error {
	for _, id := range ids {
		if id < 0 || int(id) >= s.n {
			return fmt.Errorf("store: key %d out of range [0,%d)", id, s.n)
		}
	}
	return nil
}

// ReadRows implements PiStore: rows decode straight out of the shard
// mappings in parallel.
func (s *MmapStore) ReadRows(ids []int32, dst *Rows) error {
	if err := s.checkIDs(ids); err != nil {
		return err
	}
	dst.Reset(len(ids), s.k)
	s.mu.RLock()
	defer s.mu.RUnlock()
	var errs errCollector
	par.For(len(ids), s.threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			raw, err := s.rowAt(int(ids[i]))
			if err == nil {
				var sum float64
				sum, err = DecodeRow(raw, dst.PiRow(i))
				dst.PhiSum[i] = sum
			}
			if err != nil {
				errs.set(fmt.Errorf("store: key %d: %w", ids[i], err))
			}
		}
	})
	return errs.get()
}

// ReadRowsAsync implements PiStore; mmap reads complete synchronously.
func (s *MmapStore) ReadRowsAsync(ids []int32, dst *Rows) (Pending, error) {
	if err := s.ReadRows(ids, dst); err != nil {
		return nil, err
	}
	return donePending{}, nil
}

// WriteRows implements PiStore with SetPhiRow's exact arithmetic. The first
// write to a shard since the last seal materialises its working copy; a
// degenerate row fails with ErrDegenerateRow naming the vertex and writes
// nothing for that row.
func (s *MmapStore) WriteRows(ids []int32, phi []float64) error {
	if len(phi) != len(ids)*s.k {
		return fmt.Errorf("store: phi has %d values, want %d", len(phi), len(ids)*s.k)
	}
	if err := s.checkIDs(ids); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for i, id := range ids {
		if err := s.materializeLocked(int(id) / s.shardRows); err != nil {
			return err
		}
		raw, err := s.rowAt(int(id))
		if err != nil {
			return err
		}
		if err := EncodeRow(raw, phi[i*s.k:(i+1)*s.k]); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("store: vertex %d: %w", id, err)
			}
		}
	}
	return firstErr
}

// WritePiRows implements PiWriter: already-normalised rows land verbatim —
// the restore path of streamed checkpoint loads and initial population.
func (s *MmapStore) WritePiRows(ids []int32, pi []float32, phiSum []float64) error {
	if len(pi) != len(ids)*s.k || len(phiSum) != len(ids) {
		return fmt.Errorf("store: pi/phiSum have %d/%d values, want %d/%d",
			len(pi), len(phiSum), len(ids)*s.k, len(ids))
	}
	if err := s.checkIDs(ids); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, id := range ids {
		if err := s.materializeLocked(int(id) / s.shardRows); err != nil {
			return err
		}
		raw, err := s.rowAt(int(id))
		if err != nil {
			return err
		}
		EncodeRowPi(raw, pi[i*s.k:(i+1)*s.k], phiSum[i])
	}
	return nil
}

// InitRows streams the full table through initRow (vertex a → π row + Σφ),
// writing each shard sequentially through buffered file I/O — the initial
// population path. Unlike per-row mmap writes, the sequential write keeps
// the pages in the kernel's cache rather than the process's resident set,
// so initialising a larger-than-RAM table stays under a memory cap. The
// shards are left dirty (working copies); call Seal to make them current.
func (s *MmapStore) InitRows(initRow func(a int, pi []float32) float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pi := make([]float32, s.k)
	row := make([]byte, s.rb)
	hdr := make([]byte, shardHeaderBytes)
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.data != nil {
			return fmt.Errorf("store: InitRows on materialised shard %d (init must come first)", i)
		}
		path := s.workFile(i)
		f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
		if err != nil {
			return err
		}
		w := newShardWriter(f)
		s.encodeShardHeader(hdr, i, 0)
		if _, err := w.Write(hdr); err != nil {
			f.Close()
			return err
		}
		base := i * s.shardRows
		for r := 0; r < sh.rows; r++ {
			phiSum := initRow(base+r, pi)
			EncodeRowPi(row, pi, phiSum)
			if _, err := w.Write(row); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		data, err := syscall.Mmap(int(f.Fd()), 0, s.shardSize(i), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
		if err != nil {
			f.Close()
			return fmt.Errorf("store: mmap init shard %d: %w", i, err)
		}
		sh.data = data
		sh.f = f
		sh.dirty = true
	}
	return nil
}

// Flush implements PiStore. Mapped writes are immediately visible, so the
// phase barrier needs no data movement; with AdviseEveryFlush set, every
// N-th barrier drops page residency so long runs stay under a memory cap.
func (s *MmapStore) Flush() error {
	if s.advise <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushes++
	if s.flushes%uint64(s.advise) == 0 {
		s.dropResidencyLocked()
	}
	return nil
}

// DropResidency releases the process's resident pages of every shard mapping
// (madvise DONTNEED). Data is unaffected — the pages live in the page cache
// and fault back in on next access.
func (s *MmapStore) DropResidency() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropResidencyLocked()
}

func (s *MmapStore) dropResidencyLocked() {
	for i := range s.shards {
		if data := s.shards[i].data; data != nil {
			// MADV_DONTNEED on a MAP_SHARED file mapping only zaps the page
			// table entries; dirty pages persist in the page cache and are
			// written back normally, so no data is at risk.
			_ = syscall.Madvise(data, syscall.MADV_DONTNEED)
		}
	}
}

// Seal commits all pending writes as a new generation: per-shard fsync +
// create-rename, then the manifest commit (see the file comment for the full
// protocol). It returns the sealed generation. Sealing with no dirty shards
// and an existing manifest is a no-op.
func (s *MmapStore) Seal() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	anyDirty := false
	for i := range s.shards {
		if s.shards[i].data == nil {
			return 0, fmt.Errorf("store: seal: shard %d never initialised", i)
		}
		if s.shards[i].dirty {
			anyDirty = true
		}
	}
	if !anyDirty && s.gen > 0 {
		return s.gen, nil
	}
	newGen := s.gen + 1
	type sealed struct {
		i      int
		oldGen uint64
	}
	var done []sealed
	for i := range s.shards {
		sh := &s.shards[i]
		if !sh.dirty {
			continue
		}
		binary.LittleEndian.PutUint64(sh.data[24:], newGen)
		if err := sh.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: seal shard %d: %w", i, err)
		}
		if err := os.Rename(s.workFile(i), s.shardFile(i, newGen)); err != nil {
			return 0, fmt.Errorf("store: seal shard %d: %w", i, err)
		}
		done = append(done, sealed{i, sh.gen})
		if s.sealHook != nil {
			if err := s.sealHook("shard", i); err != nil {
				return 0, err
			}
		}
	}
	// Commit point: the manifest rename makes the new generation current.
	m := mmapManifest{
		Version: manifestVersion, N: s.n, K: s.k,
		ShardRows: s.shardRows, SealGen: newGen,
		Shards: make([]uint64, len(s.shards)),
	}
	for i := range s.shards {
		if s.shards[i].dirty {
			m.Shards[i] = newGen
		} else {
			m.Shards[i] = s.shards[i].gen
		}
	}
	if err := s.writeManifest(m); err != nil {
		return 0, err
	}
	if s.sealHook != nil {
		if err := s.sealHook("manifest", -1); err != nil {
			return 0, err
		}
	}
	// The commit succeeded: adopt the new generation in memory and drop the
	// superseded files (best-effort; Open ignores unreferenced generations).
	for _, d := range done {
		sh := &s.shards[d.i]
		sh.gen = newGen
		sh.dirty = false
		if d.oldGen > 0 {
			os.Remove(s.shardFile(d.i, d.oldGen))
		}
	}
	s.gen = newGen
	return newGen, nil
}

func (s *MmapStore) writeManifest(m mmapManifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, manifestName))
}

// Snapshot implements Snapshotter: the full table decoded into an immutable
// slab. Note this materialises all N×K floats in memory — out-of-core runs
// that publish snapshots trade RAM for queryability, deliberately.
func (s *MmapStore) Snapshot(version int, beta []float64) (*Snapshot, error) {
	snap := &Snapshot{
		Version: version,
		N:       s.n,
		K:       s.k,
		Pi:      make([]float32, s.n*s.k),
		Beta:    append([]float64(nil), beta...),
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var errs errCollector
	par.For(s.n, s.threads, func(lo, hi int) {
		for a := lo; a < hi; a++ {
			raw, err := s.rowAt(a)
			if err == nil {
				_, err = DecodeRow(raw, snap.Pi[a*s.k:(a+1)*s.k])
			}
			if err != nil {
				errs.set(fmt.Errorf("store: snapshot row %d: %w", a, err))
			}
		}
	})
	if err := errs.get(); err != nil {
		return nil, err
	}
	snap.SealedAt = time.Now()
	return snap, nil
}

// Close unmaps and closes every shard. The store is unusable afterwards;
// pending (unsealed) writes remain in the .work files but a subsequent Open
// discards them — call Seal first to keep them.
func (s *MmapStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	for i := range s.shards {
		sh := &s.shards[i]
		if sh.data != nil {
			if err := syscall.Munmap(sh.data); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.data = nil
		}
		if sh.f != nil {
			if err := sh.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sh.f = nil
		}
	}
	return firstErr
}

// shardWriter is the buffered sequential writer InitRows streams through.
type shardWriter struct {
	f   *os.File
	buf []byte
	n   int
}

func newShardWriter(f *os.File) *shardWriter {
	return &shardWriter{f: f, buf: make([]byte, 1<<20)}
}

func (w *shardWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		if w.n == len(w.buf) {
			if err := w.Flush(); err != nil {
				return 0, err
			}
		}
		c := copy(w.buf[w.n:], p)
		w.n += c
		p = p[c:]
	}
	return total, nil
}

func (w *shardWriter) Flush() error {
	if w.n == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf[:w.n])
	w.n = 0
	return err
}

// interface conformance
var (
	_ PiStore     = (*MmapStore)(nil)
	_ LocalReader = (*MmapStore)(nil)
	_ PiWriter    = (*MmapStore)(nil)
	_ Snapshotter = (*MmapStore)(nil)
	_ io.Closer   = (*MmapStore)(nil)
)
