package store

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/par"
)

// TieredStore layers the π backends into a read hierarchy:
//
//	hot   — an in-RAM LRU of recently read rows' wire bytes (the same
//	        arena-backed rowCache behind DKVStore's hot-row cache),
//	base  — the local tier, normally an MmapStore holding rows [0, base.N),
//	remote— an optional backing store (normally DKV) for rows ≥ base.N,
//	        addressed there by id − base.N.
//
// Every row a read returns is decoded from the same wire bytes regardless of
// which tier served it — a cached row is the verbatim re-encode of the bytes
// the lower tier produced — so the trained trajectory is bit-for-bit
// independent of the tier configuration, the same contract the DKV hot-row
// cache honours.
//
// Consistency relies on the tier being the SINGLE writer path: WriteRows and
// WritePiRows invalidate the written keys' hot entries synchronously before
// forwarding, and the training phase discipline (a phase never reads a row
// it writes) covers the window between a lower tier's write landing and the
// barrier. Because all writes flow through this store, the hot tier can
// survive Flush — unlike the multi-writer DKV cache, no other rank can
// change a row behind its back. Mutating base or remote directly while a
// TieredStore wraps them breaks this contract.
type TieredStore struct {
	base    PiStore
	remote  PiStore // nil = single-node out-of-core
	n, k    int
	baseN   int
	rb      int
	threads int

	mu   sync.Mutex
	hot  *rowCache // nil when hotRows == 0
	door *doorkeeper
	row  []byte // scratch wire row for cache feeds

	hotHits, hotMisses       *obs.Counter
	mmapHits, mmapMisses     *obs.Counter
	remoteHits, remoteMisses *obs.Counter
}

// TierStats is the plain-value view of the tier traffic counters.
type TierStats struct {
	HotHits, HotMisses       int64
	MmapHits, MmapMisses     int64
	RemoteHits, RemoteMisses int64
}

// NewTiered assembles the hierarchy. base is required; remote may be nil
// (single-node out-of-core, the common case). hotRows bounds the in-RAM
// cache (0 disables it). reg receives the store.tier.* counters; nil gets a
// private registry.
func NewTiered(base, remote PiStore, hotRows, threads int, reg *obs.Registry) (*TieredStore, error) {
	if base == nil {
		return nil, fmt.Errorf("store: tiered store needs a base tier")
	}
	k := base.K()
	n := base.NumRows()
	if remote != nil {
		if remote.K() != k {
			return nil, fmt.Errorf("store: tier K mismatch: base %d, remote %d", k, remote.K())
		}
		n += remote.NumRows()
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &TieredStore{
		base: base, remote: remote,
		n: n, k: k, baseN: base.NumRows(),
		rb: RowBytes(k), threads: threads,
		row:          make([]byte, RowBytes(k)),
		hotHits:      reg.Counter(obs.CtrTierHotHits),
		hotMisses:    reg.Counter(obs.CtrTierHotMisses),
		mmapHits:     reg.Counter(obs.CtrTierMmapHits),
		mmapMisses:   reg.Counter(obs.CtrTierMmapMisses),
		remoteHits:   reg.Counter(obs.CtrTierRemoteHits),
		remoteMisses: reg.Counter(obs.CtrTierRemoteMisses),
	}
	if hotRows > 0 {
		t.hot = newRowCache(hotRows, t.rb)
		t.door = newDoorkeeper(max(2*hotRows, 64))
	}
	return t, nil
}

// NumRows implements PiStore.
func (t *TieredStore) NumRows() int { return t.n }

// K implements PiStore.
func (t *TieredStore) K() int { return t.k }

// ReadsAreLocal implements LocalReader: local iff no remote tier and the
// base tier itself answers locally.
func (t *TieredStore) ReadsAreLocal() bool {
	return t.remote == nil && ReadsAreLocal(t.base)
}

// Stats returns a snapshot of the tier traffic counters.
func (t *TieredStore) Stats() TierStats {
	return TierStats{
		HotHits: t.hotHits.Load(), HotMisses: t.hotMisses.Load(),
		MmapHits: t.mmapHits.Load(), MmapMisses: t.mmapMisses.Load(),
		RemoteHits: t.remoteHits.Load(), RemoteMisses: t.remoteMisses.Load(),
	}
}

// ReadRows implements PiStore, walking the tiers per row: hot bytes decode
// in place; misses fan out to base and remote in owner-grouped batches and
// feed the hot cache on the way back.
func (t *TieredStore) ReadRows(ids []int32, dst *Rows) error {
	for _, id := range ids {
		if id < 0 || int(id) >= t.n {
			return fmt.Errorf("store: key %d out of range [0,%d)", id, t.n)
		}
	}
	dst.Reset(len(ids), t.k)

	t.mu.Lock()
	defer t.mu.Unlock()

	// Tier 1: the hot cache.
	var basePos, remotePos []int // dst positions needing a lower tier
	var hits, misses int64
	for i, id := range ids {
		if t.hot != nil {
			if raw, ok := t.hot.get(id); ok {
				sum, err := DecodeRow(raw, dst.PiRow(i))
				if err != nil {
					return fmt.Errorf("store: tier cache key %d: %w", id, err)
				}
				dst.PhiSum[i] = sum
				hits++
				continue
			}
		}
		misses++
		if int(id) < t.baseN {
			basePos = append(basePos, i)
		} else {
			remotePos = append(remotePos, i)
		}
	}
	t.hotHits.Add(hits)
	t.hotMisses.Add(misses)

	// Tier 2: the local (mmap) tier.
	t.mmapHits.Add(int64(len(basePos)))
	t.mmapMisses.Add(int64(len(remotePos)))
	if err := t.readThrough(t.base, ids, basePos, 0, dst); err != nil {
		return err
	}

	// Tier 3: the remote backing store.
	if len(remotePos) > 0 {
		if t.remote == nil {
			// Unreachable: range check above caps ids at baseN when remote
			// is nil. Kept as a defensive invariant.
			t.remoteMisses.Add(int64(len(remotePos)))
			return fmt.Errorf("store: key %d beyond local tier and no remote configured", ids[remotePos[0]])
		}
		t.remoteHits.Add(int64(len(remotePos)))
		if err := t.readThrough(t.remote, ids, remotePos, t.baseN, dst); err != nil {
			return err
		}
	}
	return nil
}

// readThrough reads ids[pos] (shifted by -offset in the lower tier's key
// space) from tier into the matching dst positions, feeding the hot cache.
// Caller holds t.mu.
func (t *TieredStore) readThrough(tier PiStore, ids []int32, pos []int, offset int, dst *Rows) error {
	if len(pos) == 0 {
		return nil
	}
	sub := make([]int32, len(pos))
	for i, p := range pos {
		sub[i] = ids[p] - int32(offset)
	}
	var tmp Rows
	if err := tier.ReadRows(sub, &tmp); err != nil {
		return err
	}
	for i, p := range pos {
		copy(dst.PiRow(p), tmp.PiRow(i))
		dst.PhiSum[p] = tmp.PhiSum[i]
		if t.hot != nil {
			id := ids[p]
			if !t.hot.contains(id) && t.door.admit(id) {
				EncodeRowPi(t.row, tmp.PiRow(i), tmp.PhiSum[i])
				t.hot.put(id, t.row)
			}
		}
	}
	return nil
}

// ReadRowsAsync implements PiStore. When a remote tier is configured the
// read may leave the process, but the tier walk itself is synchronous — the
// φ stage's pipelined plan still overlaps whole batches.
func (t *TieredStore) ReadRowsAsync(ids []int32, dst *Rows) (Pending, error) {
	if err := t.ReadRows(ids, dst); err != nil {
		return nil, err
	}
	return donePending{}, nil
}

// WriteRows implements PiStore: written keys are dropped from the hot tier
// synchronously, then the write forwards to the owning tier with SetPhiRow
// arithmetic applied there (all backends share the codec, so the result is
// bit-identical regardless of which tier lands it).
func (t *TieredStore) WriteRows(ids []int32, phi []float64) error {
	if len(phi) != len(ids)*t.k {
		return fmt.Errorf("store: phi has %d values, want %d", len(phi), len(ids)*t.k)
	}
	for _, id := range ids {
		if id < 0 || int(id) >= t.n {
			return fmt.Errorf("store: key %d out of range [0,%d)", id, t.n)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hot != nil {
		for _, id := range ids {
			t.hot.remove(id)
		}
	}
	var firstErr error
	collect := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	basePos, remotePos := t.splitByTier(ids)
	collect(t.forwardWrite(t.base, ids, phi, basePos, 0))
	if len(remotePos) > 0 {
		collect(t.forwardWrite(t.remote, ids, phi, remotePos, t.baseN))
	}
	return firstErr
}

func (t *TieredStore) splitByTier(ids []int32) (basePos, remotePos []int) {
	for i, id := range ids {
		if int(id) < t.baseN {
			basePos = append(basePos, i)
		} else {
			remotePos = append(remotePos, i)
		}
	}
	return
}

func (t *TieredStore) forwardWrite(tier PiStore, ids []int32, phi []float64, pos []int, offset int) error {
	if len(pos) == 0 {
		return nil
	}
	sub := make([]int32, len(pos))
	subPhi := make([]float64, len(pos)*t.k)
	for i, p := range pos {
		sub[i] = ids[p] - int32(offset)
		copy(subPhi[i*t.k:(i+1)*t.k], phi[p*t.k:(p+1)*t.k])
	}
	if err := tier.WriteRows(sub, subPhi); err != nil {
		// Re-map the lower tier's vertex naming back to global ids where we
		// can't tell which row failed; the typed cause is preserved.
		if offset != 0 {
			return fmt.Errorf("store: remote tier (keys offset by %d): %w", offset, err)
		}
		return err
	}
	return nil
}

// WritePiRows implements PiWriter when every owning tier does — the
// streamed checkpoint-restore path.
func (t *TieredStore) WritePiRows(ids []int32, pi []float32, phiSum []float64) error {
	if len(pi) != len(ids)*t.k || len(phiSum) != len(ids) {
		return fmt.Errorf("store: pi/phiSum have %d/%d values, want %d/%d",
			len(pi), len(phiSum), len(ids)*t.k, len(ids))
	}
	for _, id := range ids {
		if id < 0 || int(id) >= t.n {
			return fmt.Errorf("store: key %d out of range [0,%d)", id, t.n)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.hot != nil {
		for _, id := range ids {
			t.hot.remove(id)
		}
	}
	basePos, remotePos := t.splitByTier(ids)
	for _, group := range []struct {
		tier   PiStore
		pos    []int
		offset int
	}{{t.base, basePos, 0}, {t.remote, remotePos, t.baseN}} {
		if len(group.pos) == 0 {
			continue
		}
		w, ok := group.tier.(PiWriter)
		if !ok {
			return fmt.Errorf("store: tier %T cannot restore verbatim rows", group.tier)
		}
		sub := make([]int32, len(group.pos))
		subPi := make([]float32, len(group.pos)*t.k)
		subSum := make([]float64, len(group.pos))
		for i, p := range group.pos {
			sub[i] = ids[p] - int32(group.offset)
			copy(subPi[i*t.k:(i+1)*t.k], pi[p*t.k:(p+1)*t.k])
			subSum[i] = phiSum[p]
		}
		if err := w.WritePiRows(sub, subPi, subSum); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements PiStore: the barrier forwards to every tier. The hot
// cache deliberately SURVIVES the barrier — this store is the single writer
// and invalidates synchronously on every write, so a cached row can never
// go stale (see the type comment).
func (t *TieredStore) Flush() error {
	if err := t.base.Flush(); err != nil {
		return err
	}
	if t.remote != nil {
		return t.remote.Flush()
	}
	return nil
}

// Snapshot implements Snapshotter: delegate when the base tier can seal
// itself and there is no remote; otherwise gather through the tiers
// directly (bypassing the hot cache, which a full sweep would churn).
func (t *TieredStore) Snapshot(version int, beta []float64) (*Snapshot, error) {
	if t.remote == nil {
		if snap, ok := t.base.(Snapshotter); ok {
			return snap.Snapshot(version, beta)
		}
	}
	snap := &Snapshot{
		Version: version,
		N:       t.n,
		K:       t.k,
		Pi:      make([]float32, t.n*t.k),
		Beta:    append([]float64(nil), beta...),
	}
	if err := t.snapshotTier(t.base, 0, t.baseN, snap); err != nil {
		return nil, err
	}
	if t.remote != nil {
		if err := t.snapshotTier(t.remote, t.baseN, t.n, snap); err != nil {
			return nil, err
		}
	}
	snap.SealedAt = time.Now()
	return snap, nil
}

// snapshotTier sweeps tier's rows into snap.Pi[lo*k : hi*k] in batches;
// tier keys run [0, hi-lo), global ids [lo, hi).
func (t *TieredStore) snapshotTier(tier PiStore, lo, hi int, snap *Snapshot) error {
	const batch = 4096
	var rows Rows
	ids := make([]int32, 0, batch)
	for a := lo; a < hi; a += batch {
		end := min(a+batch, hi)
		ids = ids[:0]
		for v := a; v < end; v++ {
			ids = append(ids, int32(v-lo))
		}
		if err := tier.ReadRows(ids, &rows); err != nil {
			return fmt.Errorf("store: tier snapshot at key %d: %w", a, err)
		}
		off := a * t.k
		par.For(len(ids), t.threads, func(rlo, rhi int) {
			for i := rlo; i < rhi; i++ {
				copy(snap.Pi[off+i*t.k:off+(i+1)*t.k], rows.PiRow(i))
			}
		})
	}
	return nil
}

// interface conformance
var (
	_ PiStore     = (*TieredStore)(nil)
	_ LocalReader = (*TieredStore)(nil)
	_ PiWriter    = (*TieredStore)(nil)
	_ Snapshotter = (*TieredStore)(nil)
)
