package store

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestDecodeRowShortInput pins the torn-value fix: DecodeRow must reject
// every truncation length below RowBytes(k) with the typed ErrShortRow —
// including the section boundaries (empty, mid-π, exactly at the π/Σφ seam,
// and mid-Σφ) that previously sliced out of range.
func TestDecodeRowShortInput(t *testing.T) {
	const k = 5
	full := make([]byte, RowBytes(k))
	if err := EncodeRow(full, []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	pi := make([]float32, k)
	for n := 0; n < RowBytes(k); n++ {
		sum, err := DecodeRow(full[:n], pi)
		if !errors.Is(err, ErrShortRow) {
			t.Fatalf("len %d: err=%v, want ErrShortRow", n, err)
		}
		if sum != 0 {
			t.Fatalf("len %d: partial Σφ=%v leaked from failed decode", n, sum)
		}
	}
	// The exact length still decodes.
	if _, err := DecodeRow(full, pi); err != nil {
		t.Fatalf("full row rejected: %v", err)
	}
}

// TestEncodeRowDegenerate pins the zero-sum φ fix at the codec layer: a row
// whose mass is zero (or non-finite) must fail typed, with dst untouched.
func TestEncodeRowDegenerate(t *testing.T) {
	const k = 3
	cases := map[string][]float64{
		"zero":    {0, 0, 0},
		"nan":     {1, math.NaN(), 1},
		"posinf":  {1, math.Inf(1), 1},
		"neginf":  {math.Inf(-1), 1, 1},
		"cancels": {1, -1, 0},
	}
	for name, phi := range cases {
		buf := make([]byte, RowBytes(k))
		for i := range buf {
			buf[i] = 0xAB
		}
		if err := EncodeRow(buf, phi); !errors.Is(err, ErrDegenerateRow) {
			t.Fatalf("%s: err=%v, want ErrDegenerateRow", name, err)
		}
		for i, b := range buf {
			if b != 0xAB {
				t.Fatalf("%s: dst[%d] clobbered by failed encode", name, i)
			}
		}
	}
}

// TestLocalStoreDegenerateRow pins the end-to-end behaviour on the in-RAM
// backend: the error names the vertex, valid sibling rows in the same batch
// still land, and the degenerate row's previous value is preserved.
func TestLocalStoreDegenerateRow(t *testing.T) {
	const n, k = 8, 3
	ls := NewLocal(make([]float32, n*k), make([]float64, n), k, 1)
	if err := ls.WriteRows([]int32{2, 5}, []float64{1, 1, 2, 3, 2, 1}); err != nil {
		t.Fatal(err)
	}

	err := ls.WriteRows([]int32{2, 5}, []float64{0, 0, 0, 7, 7, 7})
	if !errors.Is(err, ErrDegenerateRow) {
		t.Fatalf("zero-sum φ row accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "vertex 2") {
		t.Fatalf("error %q does not name vertex 2", err)
	}

	var rows Rows
	if err := ls.ReadRows([]int32{2, 5}, &rows); err != nil {
		t.Fatal(err)
	}
	_, oldSum := refWrite([]float64{1, 1, 2})
	if rows.PhiSum[0] != oldSum {
		t.Fatalf("degenerate write clobbered row 2: Σφ=%v, want %v", rows.PhiSum[0], oldSum)
	}
	_, newSum := refWrite([]float64{7, 7, 7})
	if rows.PhiSum[1] != newSum {
		t.Fatalf("valid row 5 skipped alongside degenerate row: Σφ=%v, want %v", rows.PhiSum[1], newSum)
	}
}

// TestDKVStoreDegenerateRow pins the same contract on the distributed
// backend, for both a locally-owned and a remote vertex.
func TestDKVStoreDegenerateRow(t *testing.T) {
	const n, k = 20, 3
	twoRankStores(t, n, k, 0, func(s *DKVStore) {
		for _, vertex := range []int32{2, 17} { // rank 0 owns 2, rank 1 owns 17
			err := s.WriteRows([]int32{vertex}, []float64{0, 0, 0})
			if !errors.Is(err, ErrDegenerateRow) {
				t.Fatalf("vertex %d: zero-sum φ row accepted: %v", vertex, err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			// The stored row keeps its initial value.
			var rows Rows
			if err := s.ReadRows([]int32{vertex}, &rows); err != nil {
				t.Fatal(err)
			}
			checkInitRow(t, &rows, 0, vertex, k)
		}
	})
}
