package store

import (
	"math"
	"testing"

	"repro/internal/transport"
)

func TestRowCodecRoundTrip(t *testing.T) {
	const k = 7
	phi := []float64{0.5, 1.25, 3, 0.125, 2, 0.75, 1}
	buf := make([]byte, RowBytes(k))
	if err := EncodeRow(buf, phi); err != nil {
		t.Fatal(err)
	}
	pi := make([]float32, k)
	sum, err := DecodeRow(buf, pi)
	if err != nil {
		t.Fatal(err)
	}
	var wantSum float64
	for _, v := range phi {
		wantSum += v
	}
	if sum != wantSum {
		t.Fatalf("Σφ = %v, want %v", sum, wantSum)
	}
	for i, v := range phi {
		want := float32(v / wantSum)
		if pi[i] != want {
			t.Fatalf("π[%d] = %v, want %v", i, pi[i], want)
		}
	}
}

func TestEncodeRowPiRoundTrip(t *testing.T) {
	const k = 3
	pi := []float32{0.25, 0.5, 0.25}
	buf := make([]byte, RowBytes(k))
	EncodeRowPi(buf, pi, 42.5)
	got := make([]float32, k)
	sum, err := DecodeRow(buf, got)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 42.5 {
		t.Fatalf("Σφ = %v, want 42.5", sum)
	}
	for i := range pi {
		if got[i] != pi[i] {
			t.Fatalf("π[%d] = %v, want %v", i, got[i], pi[i])
		}
	}
}

// refWrite is the reference SetPhiRow arithmetic every backend must match.
func refWrite(phi []float64) ([]float32, float64) {
	var sum float64
	for _, v := range phi {
		sum += v
	}
	inv := 1 / sum
	pi := make([]float32, len(phi))
	for i, v := range phi {
		pi[i] = float32(v * inv)
	}
	return pi, sum
}

func TestLocalStoreReadWrite(t *testing.T) {
	const n, k = 10, 4
	ls := NewLocal(make([]float32, n*k), make([]float64, n), k, 1)
	if ls.NumRows() != n || ls.K() != k {
		t.Fatalf("dims %d×%d, want %d×%d", ls.NumRows(), ls.K(), n, k)
	}

	ids := []int32{3, 7, 0}
	phi := []float64{
		1, 2, 3, 4,
		0.5, 0.25, 0.125, 0.0625,
		10, 20, 30, 40,
	}
	if err := ls.WriteRows(ids, phi); err != nil {
		t.Fatal(err)
	}

	var rows Rows
	if err := ls.ReadRows(ids, &rows); err != nil {
		t.Fatal(err)
	}
	if rows.Len() != len(ids) {
		t.Fatalf("read %d rows, want %d", rows.Len(), len(ids))
	}
	for i := range ids {
		wantPi, wantSum := refWrite(phi[i*k : (i+1)*k])
		if rows.PhiSum[i] != wantSum {
			t.Fatalf("row %d: Σφ = %v, want %v", i, rows.PhiSum[i], wantSum)
		}
		for j, w := range wantPi {
			if rows.PiRow(i)[j] != w {
				t.Fatalf("row %d: π[%d] = %v, want %v", i, j, rows.PiRow(i)[j], w)
			}
		}
	}

	// The async form must agree and complete immediately.
	var rows2 Rows
	pend, err := ls.ReadRowsAsync(ids, &rows2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pend.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if rows2.PhiSum[i] != rows.PhiSum[i] {
			t.Fatalf("async read row %d disagrees", i)
		}
	}
}

func TestLocalStoreRejectsBadInput(t *testing.T) {
	ls := NewLocal(make([]float32, 4*2), make([]float64, 4), 2, 1)
	var rows Rows
	if err := ls.ReadRows([]int32{4}, &rows); err == nil {
		t.Fatal("out-of-range key accepted by ReadRows")
	}
	if err := ls.WriteRows([]int32{-1}, []float64{1, 2}); err == nil {
		t.Fatal("negative key accepted by WriteRows")
	}
	if err := ls.WriteRows([]int32{0}, []float64{1}); err == nil {
		t.Fatal("short phi accepted by WriteRows")
	}
}

// twoRankStores builds a 2-rank fabric with one DKVStore per rank, both
// initialised with a deterministic per-key row, and hands rank 0's store to
// the body (rank 1's server goroutine answers in the background).
func twoRankStores(t *testing.T, n, k, cacheRows int, body func(s0 *DKVStore)) {
	t.Helper()
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stores := make([]*DKVStore, 2)
	for r := 0; r < 2; r++ {
		st, err := NewDKV(f.Endpoint(r), n, k, 1, cacheRows, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stores[r] = st
		st.InitOwned(func(a int, pi []float32) float64 {
			for j := range pi {
				pi[j] = float32(a*10 + j)
			}
			return float64(a)
		})
	}
	body(stores[0])
}

func checkInitRow(t *testing.T, rows *Rows, i int, a int32, k int) {
	t.Helper()
	if rows.PhiSum[i] != float64(a) {
		t.Fatalf("key %d: Σφ = %v, want %v", a, rows.PhiSum[i], float64(a))
	}
	for j := 0; j < k; j++ {
		if want := float32(int(a)*10 + j); rows.PiRow(i)[j] != want {
			t.Fatalf("key %d: π[%d] = %v, want %v", a, j, rows.PiRow(i)[j], want)
		}
	}
}

func TestDKVStoreReadWrite(t *testing.T) {
	const n, k = 20, 3
	twoRankStores(t, n, k, 0, func(s *DKVStore) {
		// Mixed local and remote keys, with repeats.
		ids := []int32{0, 15, 3, 19, 15}
		var rows Rows
		if err := s.ReadRows(ids, &rows); err != nil {
			t.Fatal(err)
		}
		for i, a := range ids {
			checkInitRow(t, &rows, i, a, k)
		}

		// Write a remote and a local row, read them back.
		phi := []float64{1, 2, 5, 3, 3, 2}
		wids := []int32{18, 2}
		if err := s.WriteRows(wids, phi); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadRows(wids, &rows); err != nil {
			t.Fatal(err)
		}
		for i := range wids {
			wantPi, wantSum := refWrite(phi[i*k : (i+1)*k])
			if rows.PhiSum[i] != wantSum {
				t.Fatalf("row %d: Σφ = %v, want %v", i, rows.PhiSum[i], wantSum)
			}
			for j, w := range wantPi {
				if rows.PiRow(i)[j] != w {
					t.Fatalf("row %d: π[%d] = %v, want %v", i, j, rows.PiRow(i)[j], w)
				}
			}
		}
	})
}

func TestDKVHotRowCache(t *testing.T) {
	const n, k = 20, 3
	twoRankStores(t, n, k, 8, func(s *DKVStore) {
		remote := []int32{15, 16, 17} // owned by rank 1
		var first, second Rows
		if err := s.ReadRows(remote, &first); err != nil {
			t.Fatal(err)
		}
		before := s.Stats().RemoteKeys.Load()
		if err := s.ReadRows(remote, &second); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().RemoteKeys.Load(); got != before {
			t.Fatalf("second read fetched %d remote keys, want 0 (cache)", got-before)
		}
		cs := s.CacheStats()
		if cs.Hits != int64(len(remote)) {
			t.Fatalf("cache hits = %d, want %d", cs.Hits, len(remote))
		}
		for i, a := range remote {
			checkInitRow(t, &second, i, a, k)
			if math.Float64bits(first.PhiSum[i]) != math.Float64bits(second.PhiSum[i]) {
				t.Fatalf("cached row %d not bit-identical", a)
			}
		}

		// Writing a key must drop its cached copy.
		if err := s.WriteRows([]int32{15}, []float64{1, 1, 2}); err != nil {
			t.Fatal(err)
		}
		var rows Rows
		if err := s.ReadRows([]int32{15}, &rows); err != nil {
			t.Fatal(err)
		}
		wantPi, wantSum := refWrite([]float64{1, 1, 2})
		if rows.PhiSum[0] != wantSum || rows.PiRow(0)[0] != wantPi[0] {
			t.Fatalf("stale cached row after write: Σφ=%v π0=%v", rows.PhiSum[0], rows.PiRow(0)[0])
		}

		// Flush (the phase barrier) empties the cache entirely.
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		before = s.Stats().RemoteKeys.Load()
		if err := s.ReadRows(remote, &rows); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().RemoteKeys.Load() - before; got != int64(len(remote)) {
			t.Fatalf("post-Flush read fetched %d remote keys, want %d", got, len(remote))
		}

		// Local keys bypass the cache: reading an owned key twice never
		// counts a hit beyond the remote ones already recorded.
		hits := s.CacheStats().Hits
		if err := s.ReadRows([]int32{1, 1}, &rows); err != nil {
			t.Fatal(err)
		}
		if s.CacheStats().Hits != hits {
			t.Fatal("owned key served from the hot-row cache")
		}
	})
}

func TestDKVCacheEviction(t *testing.T) {
	const n, k = 20, 2
	twoRankStores(t, n, k, 2, func(s *DKVStore) {
		var rows Rows
		// Three distinct remote rows through a 2-row cache.
		for _, id := range []int32{15, 16, 17} {
			if err := s.ReadRows([]int32{id}, &rows); err != nil {
				t.Fatal(err)
			}
		}
		cs := s.CacheStats()
		if cs.Evictions == 0 {
			t.Fatalf("no evictions with cap 2 after 3 distinct rows: %+v", cs)
		}
		// Evicted row still reads correctly (it just refetches).
		if err := s.ReadRows([]int32{15}, &rows); err != nil {
			t.Fatal(err)
		}
		checkInitRow(t, &rows, 0, 15, k)
	})
}

func TestReadsAreLocalCapability(t *testing.T) {
	// LocalStore always answers reads from memory.
	ls := NewLocal(make([]float32, 4*3), make([]float64, 4), 3, 1)
	if !ReadsAreLocal(ls) {
		t.Fatal("LocalStore must report local reads")
	}
	// A 2-rank DKV store owns only half the keys: reads can leave the
	// process, so the φ stage must keep the fetch/compute overlap.
	twoRankStores(t, 20, 3, 0, func(s0 *DKVStore) {
		if ReadsAreLocal(s0) {
			t.Fatal("2-rank DKVStore must not report local reads")
		}
	})
	// A 1-rank DKV store owns everything — the degenerate local case.
	f, err := transport.NewFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := NewDKV(f.Endpoint(0), 10, 3, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !ReadsAreLocal(st) {
		t.Fatal("1-rank DKVStore owns all keys; reads are local")
	}
	// The helper defaults to remote for backends without the capability.
	if ReadsAreLocal(bareStore{st}) {
		t.Fatal("stores without the capability must default to remote")
	}
}

// bareStore hides the LocalReader method of the embedded store.
type bareStore struct{ PiStore }
