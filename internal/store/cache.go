package store

// This file holds the eviction machinery behind DKVStore's hot-row cache:
// rowCache, a fixed-capacity LRU whose entries live in preallocated arenas
// (one value slab, one node array) linked into a circular recency ring by
// slot index, and doorkeeper, the bounded seen-twice admission filter of the
// "admit2" policy.
//
// rowCache replaces the earlier FIFO slice, which had two real problems:
// `fifo = fifo[1:]` on every eviction pinned the backing array head (the
// queue crawled through memory and forced reallocation churn under
// sustained traffic), and the write-invalidation path deleted keys from the
// map but not from the queue — so evicting an already-deleted id counted a
// no-op eviction, the live cache silently shrank below capacity, and a
// re-inserted written key left a duplicate queue entry whose earlier
// eviction deleted the fresh copy too soon. Here every structure is updated
// together under one lock and every operation — lookup, touch, insert,
// remove, evict — is O(1) with zero steady-state allocation: an evicted
// row's slab slot is handed directly to the incoming one.

// rowCache is a fixed-capacity LRU over equal-sized rows. Not safe for
// concurrent use; DKVStore serialises access under its mutex.
type rowCache struct {
	rowBytes int
	slab     []byte          // capacity×rowBytes value arena
	nodes    []cacheNode     // one recency-ring node per slot
	index    map[int32]int32 // row id → slot
	head     int32           // MRU slot of the circular ring; -1 when empty
	free     int32           // free-slot list head (chained via next); -1 when full
}

type cacheNode struct {
	id         int32
	prev, next int32
}

// newRowCache allocates the arenas for capRows rows of rowBytes each.
func newRowCache(capRows, rowBytes int) *rowCache {
	c := &rowCache{
		rowBytes: rowBytes,
		slab:     make([]byte, capRows*rowBytes),
		nodes:    make([]cacheNode, capRows),
		index:    make(map[int32]int32, capRows),
		head:     -1,
	}
	c.resetFreeList()
	return c
}

func (c *rowCache) resetFreeList() {
	for i := range c.nodes {
		c.nodes[i].next = int32(i + 1)
	}
	c.nodes[len(c.nodes)-1].next = -1
	c.free = 0
}

// len returns the number of cached rows.
func (c *rowCache) len() int { return len(c.index) }

// val returns slot's row bytes in the slab.
func (c *rowCache) val(slot int32) []byte {
	off := int(slot) * c.rowBytes
	return c.slab[off : off+c.rowBytes]
}

// get returns the cached bytes for id, promoting it to most-recently-used.
// The returned slice aliases the slab and is only valid under the caller's
// lock, before the next cache mutation.
func (c *rowCache) get(id int32) ([]byte, bool) {
	slot, ok := c.index[id]
	if !ok {
		return nil, false
	}
	c.touch(slot)
	return c.val(slot), true
}

// contains reports whether id is cached without touching recency.
func (c *rowCache) contains(id int32) bool {
	_, ok := c.index[id]
	return ok
}

// touch moves slot to the MRU position.
func (c *rowCache) touch(slot int32) {
	if c.head == slot {
		return
	}
	c.unlink(slot)
	c.linkFront(slot)
}

// unlink removes slot from the recency ring.
func (c *rowCache) unlink(slot int32) {
	n := &c.nodes[slot]
	if n.next == slot { // sole element
		c.head = -1
		return
	}
	c.nodes[n.prev].next = n.next
	c.nodes[n.next].prev = n.prev
	if c.head == slot {
		c.head = n.next
	}
}

// linkFront inserts slot at the MRU position of the ring.
func (c *rowCache) linkFront(slot int32) {
	if c.head == -1 {
		c.nodes[slot].prev, c.nodes[slot].next = slot, slot
	} else {
		h := c.head
		tail := c.nodes[h].prev
		c.nodes[slot].prev, c.nodes[slot].next = tail, h
		c.nodes[tail].next = slot
		c.nodes[h].prev = slot
	}
	c.head = slot
}

// put inserts id's row, copying val into the arena and evicting the
// least-recently-used row when full; it reports whether an eviction
// happened. The caller must have checked id is absent.
func (c *rowCache) put(id int32, val []byte) (evicted bool) {
	var slot int32
	if c.free != -1 {
		slot = c.free
		c.free = c.nodes[slot].next
	} else {
		slot = c.nodes[c.head].prev // LRU = tail of the ring
		c.unlink(slot)
		delete(c.index, c.nodes[slot].id)
		evicted = true
	}
	c.nodes[slot].id = id
	copy(c.val(slot), val)
	c.index[id] = slot
	c.linkFront(slot)
	return evicted
}

// remove drops id if present and reports whether it was there; the freed
// slot returns to the free list.
func (c *rowCache) remove(id int32) bool {
	slot, ok := c.index[id]
	if !ok {
		return false
	}
	c.unlink(slot)
	delete(c.index, id)
	c.nodes[slot].next = c.free
	c.free = slot
	return true
}

// clear empties the cache, returning every slot to the free list.
func (c *rowCache) clear() {
	if len(c.index) == 0 {
		return
	}
	clear(c.index)
	c.head = -1
	c.resetFreeList()
}

// ringLen walks the recency ring and counts its nodes — O(n), used only by
// tests to assert that the ring and the index never drift apart (the
// accounting bug the FIFO version had).
func (c *rowCache) ringLen() int {
	if c.head == -1 {
		return 0
	}
	n := 0
	for s := c.head; ; s = c.nodes[s].next {
		n++
		if c.nodes[s].next == c.head {
			break
		}
	}
	return n
}

// doorkeeper is the admission filter of the "admit2" policy: a bounded set
// of row ids seen exactly once. A row is admitted to the cache only on its
// second sighting within the window, so one-shot rows (a vertex sampled
// once and never again) cannot churn hot rows out. The window is a plain
// ring of ids — overwriting the oldest sighting bounds memory without any
// per-access allocation.
type doorkeeper struct {
	ring []int32
	pos  int
	n    int
	seen map[int32]struct{}
}

func newDoorkeeper(window int) *doorkeeper {
	return &doorkeeper{
		ring: make([]int32, window),
		seen: make(map[int32]struct{}, window),
	}
}

// admit reports whether id was already sighted (forgetting the sighting —
// the row is being cached now); a first sighting is recorded and rejected.
func (d *doorkeeper) admit(id int32) bool {
	if _, ok := d.seen[id]; ok {
		delete(d.seen, id)
		return true
	}
	if d.n == len(d.ring) {
		delete(d.seen, d.ring[d.pos]) // no-op if that sighting was consumed
	} else {
		d.n++
	}
	d.ring[d.pos] = id
	d.pos = (d.pos + 1) % len(d.ring)
	d.seen[id] = struct{}{}
	return false
}
