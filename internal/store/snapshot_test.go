package store

import (
	"sync"
	"testing"

	"repro/internal/transport"
)

// TestLocalSnapshotIsSealed: a snapshot taken from a LocalStore must be a
// full copy — later writes to the store must not leak into it.
func TestLocalSnapshotIsSealed(t *testing.T) {
	const n, k = 6, 3
	pi := make([]float32, n*k)
	phiSum := make([]float64, n)
	for a := 0; a < n; a++ {
		phiSum[a] = 1
		for j := 0; j < k; j++ {
			pi[a*k+j] = float32(a*k+j) / float32(n*k)
		}
	}
	ls := NewLocal(pi, phiSum, k, 1)
	beta := []float64{0.1, 0.2, 0.3}
	snap, err := ls.Snapshot(7, beta)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 7 || snap.N != n || snap.K != k {
		t.Fatalf("snapshot header = v%d %dx%d, want v7 %dx%d", snap.Version, snap.N, snap.K, n, k)
	}
	if snap.SealedAt.IsZero() {
		t.Fatal("SealedAt not stamped")
	}
	before := append([]float32(nil), snap.Pi...)

	// Overwrite every row in the live store; the sealed slab must not move.
	phi := make([]float64, n*k)
	ids := make([]int32, n)
	for a := range ids {
		ids[a] = int32(a)
		for j := 0; j < k; j++ {
			phi[a*k+j] = float64(a + j + 1)
		}
	}
	if err := ls.WriteRows(ids, phi); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if snap.Pi[i] != before[i] {
			t.Fatalf("snapshot π[%d] changed after store write: %v -> %v", i, before[i], snap.Pi[i])
		}
	}
	beta[0] = 99 // caller's β slice must have been copied too
	if snap.Beta[0] != 0.1 {
		t.Fatalf("snapshot β aliases the caller's slice")
	}
}

// TestDKVSnapshotGathersFullView: on a 2-rank fabric, the serving rank's
// snapshot must assemble both shards and match the per-key init exactly,
// without touching the hot-row cache.
func TestDKVSnapshotGathersFullView(t *testing.T) {
	const n, k = 37, 4
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stores := make([]*DKVStore, 2)
	for r := 0; r < 2; r++ {
		st, err := NewDKV(f.Endpoint(r), n, k, 1, 8, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stores[r] = st
		st.InitOwned(func(a int, pi []float32) float64 {
			for j := range pi {
				pi[j] = float32(a*100 + j)
			}
			return float64(a)
		})
	}
	snap, err := stores[0].Snapshot(3, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < n; a++ {
		row := snap.PiRow(a)
		for j := 0; j < k; j++ {
			if row[j] != float32(a*100+j) {
				t.Fatalf("snapshot π[%d][%d] = %v, want %v", a, j, row[j], float32(a*100+j))
			}
		}
	}
	// The gather bypasses the cache: no lookups, no insertions.
	if cs := stores[0].CacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("snapshot gather touched the hot-row cache: %+v", cs)
	}
	if idx, _ := stores[0].cacheSizes(); idx != 0 {
		t.Fatalf("snapshot gather populated the hot-row cache: %d rows", idx)
	}
}

// TestPublisherFlipAndMonotonicity: Current flips atomically to the
// published snapshot, subscribers run before visibility, and non-increasing
// versions are rejected.
func TestPublisherFlipAndMonotonicity(t *testing.T) {
	p := NewPublisher()
	if p.Current() != nil {
		t.Fatal("fresh publisher has a current snapshot")
	}

	var subSaw []int
	p.Subscribe(func(s *Snapshot) {
		// The subscriber must run before the flip: Current still names the
		// previous version (or nil) while we build derived state.
		if cur := p.Current(); cur != nil && cur.Version >= s.Version {
			t.Errorf("subscriber for v%d ran after flip (current v%d)", s.Version, cur.Version)
		}
		subSaw = append(subSaw, s.Version)
	})

	s1 := &Snapshot{Version: 1, N: 1, K: 1, Pi: []float32{1}}
	if err := p.Publish(s1); err != nil {
		t.Fatal(err)
	}
	if got := p.Current(); got != s1 {
		t.Fatalf("Current = %+v, want the published snapshot", got)
	}
	if err := p.Publish(&Snapshot{Version: 1}); err == nil {
		t.Fatal("replayed version accepted")
	}
	if err := p.Publish(&Snapshot{Version: 0}); err == nil {
		t.Fatal("stale version accepted")
	}
	if err := p.Publish(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if err := p.Publish(&Snapshot{Version: 5}); err != nil {
		t.Fatal(err)
	}
	if p.Current().Version != 5 {
		t.Fatalf("Current version = %d, want 5", p.Current().Version)
	}
	if len(subSaw) != 2 || subSaw[0] != 1 || subSaw[1] != 5 {
		t.Fatalf("subscriber saw %v, want [1 5]", subSaw)
	}
	if p.LastFlipNS() <= 0 {
		t.Fatalf("LastFlipNS = %d, want > 0", p.LastFlipNS())
	}

	// A late subscriber is caught up on the current snapshot immediately.
	var late int
	p.Subscribe(func(s *Snapshot) { late = s.Version })
	if late != 5 {
		t.Fatalf("late subscriber saw v%d, want 5", late)
	}
}

// TestPublisherConcurrentReaders: readers loading Current while a publisher
// flips must always observe a fully-sealed snapshot whose contents match its
// version — the RCU guarantee, meaningful under -race.
func TestPublisherConcurrentReaders(t *testing.T) {
	const versions, readers = 200, 4
	p := NewPublisher()
	// Version v's slab is filled with float32(v): a torn view would show
	// mixed values.
	mk := func(v int) *Snapshot {
		pi := make([]float32, 8)
		for i := range pi {
			pi[i] = float32(v)
		}
		return &Snapshot{Version: v, N: 4, K: 2, Pi: pi}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := p.Current()
				if s == nil {
					continue
				}
				if s.Version < last {
					t.Errorf("version went backwards: %d after %d", s.Version, last)
					return
				}
				last = s.Version
				for i, v := range s.Pi {
					if v != float32(s.Version) {
						t.Errorf("torn snapshot: v%d has Pi[%d]=%v", s.Version, i, v)
						return
					}
				}
			}
		}()
	}
	for v := 1; v <= versions; v++ {
		if err := p.Publish(mk(v)); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
