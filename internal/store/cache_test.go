package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/transport"
)

// --- rowCache unit tests (the ring-arena LRU that replaced the FIFO slice) ---

func cacheCheck(t *testing.T, c *rowCache, wantLen int) {
	t.Helper()
	if c.len() != wantLen {
		t.Fatalf("cache holds %d rows, want %d", c.len(), wantLen)
	}
	if rl := c.ringLen(); rl != c.len() {
		t.Fatalf("recency ring has %d nodes but index has %d — structures drifted", rl, c.len())
	}
}

func TestRowCacheLRUOrder(t *testing.T) {
	c := newRowCache(3, 4)
	row := func(id int32) []byte { return []byte{byte(id), 0, 0, 0} }
	for _, id := range []int32{1, 2, 3} {
		if ev := c.put(id, row(id)); ev {
			t.Fatalf("insert %d evicted below capacity", id)
		}
	}
	cacheCheck(t, c, 3)

	// Touch 1 (the LRU) so 2 becomes the eviction victim.
	if v, ok := c.get(1); !ok || v[0] != 1 {
		t.Fatalf("get(1) = %v, %v", v, ok)
	}
	if ev := c.put(4, row(4)); !ev {
		t.Fatal("insert at capacity did not evict")
	}
	if c.contains(2) {
		t.Fatal("evicted 2's slot, but 2 is still indexed")
	}
	for _, id := range []int32{1, 3, 4} {
		if !c.contains(id) {
			t.Fatalf("row %d should have survived", id)
		}
	}
	cacheCheck(t, c, 3)
}

func TestRowCacheRemoveAndReuse(t *testing.T) {
	c := newRowCache(2, 4)
	row := func(id int32) []byte { return []byte{byte(id), 0, 0, 0} }
	c.put(1, row(1))
	c.put(2, row(2))
	if !c.remove(1) {
		t.Fatal("remove(1) found nothing")
	}
	if c.remove(1) {
		t.Fatal("second remove(1) claimed success")
	}
	cacheCheck(t, c, 1)
	// The freed slot must be reused without evicting the survivor.
	if ev := c.put(3, row(3)); ev {
		t.Fatal("insert into freed slot evicted")
	}
	cacheCheck(t, c, 2)
	if !c.contains(2) || !c.contains(3) {
		t.Fatal("expected rows 2 and 3 cached")
	}
	c.clear()
	cacheCheck(t, c, 0)
	if ev := c.put(4, row(4)); ev {
		t.Fatal("insert after clear evicted")
	}
	cacheCheck(t, c, 1)
}

// TestRowCacheSustainedChurn is the standalone ring-buffer regression: the
// old FIFO advanced with `fifo = fifo[1:]`, pinning the backing array head
// and reallocating under sustained traffic. The arena-backed ring must
// survive many capacities' worth of churn with the index and ring in
// lockstep and exact eviction counts.
func TestRowCacheSustainedChurn(t *testing.T) {
	const capRows = 8
	c := newRowCache(capRows, 4)
	evictions := 0
	for i := int32(0); i < 50*capRows; i++ {
		if c.put(i, []byte{byte(i), 0, 0, 0}) {
			evictions++
		}
		cacheCheck(t, c, min(int(i)+1, capRows))
	}
	if want := 50*capRows - capRows; evictions != want {
		t.Fatalf("evictions = %d, want exactly %d", evictions, want)
	}
	// The survivors are exactly the last capRows ids, in LRU order.
	for i := int32(49 * capRows); i < 50*capRows; i++ {
		if !c.contains(i) {
			t.Fatalf("row %d missing after churn", i)
		}
	}
}

func TestDoorkeeperAdmitsOnSecondSighting(t *testing.T) {
	d := newDoorkeeper(4)
	if d.admit(7) {
		t.Fatal("first sighting admitted")
	}
	if !d.admit(7) {
		t.Fatal("second sighting rejected")
	}
	// The sighting was consumed: the next one starts over.
	if d.admit(7) {
		t.Fatal("sighting not consumed by admission")
	}
	// A sighting older than the window is forgotten.
	if d.admit(1) {
		t.Fatal("first sighting of 1 admitted")
	}
	for _, id := range []int32{2, 3, 4, 5} {
		d.admit(id)
	}
	if d.admit(1) {
		t.Fatal("sighting of 1 survived a full window of churn")
	}
}

// --- DKVStore-level cache tests ---

// twoRankCfgStores is twoRankStores with an explicit cache configuration on
// rank 0's store (rank 1 serves with the cache off; only rank 0 drives
// traffic in these tests).
func twoRankCfgStores(t *testing.T, n, k int, cc CacheConfig, body func(s0 *DKVStore)) {
	t.Helper()
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stores := make([]*DKVStore, 2)
	for r := 0; r < 2; r++ {
		rcc := cc
		if r == 1 {
			rcc = CacheConfig{}
		}
		st, err := NewDKVCache(f.Endpoint(r), n, k, 1, rcc, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stores[r] = st
		st.InitOwned(func(a int, pi []float32) float64 {
			for j := range pi {
				pi[j] = float32(a*10 + j)
			}
			return float64(a)
		})
	}
	body(stores[0])
}

// TestCacheWriteInvalidationAccounting is the regression for the FIFO
// accounting bug: WriteRows used to delete written keys from the cache map
// but leave them in the eviction queue, so (a) the queue and the map
// drifted apart, (b) evicting an already-deleted id bumped the eviction
// counter for a no-op while the live cache shrank below capacity, and (c) a
// re-inserted written key produced a duplicate queue entry whose earlier
// eviction deleted the fresh copy too soon. This test interleaves WriteRows
// with inserts and asserts index/ring agreement and exact eviction counts
// at every step; it fails on the old code at the first cacheSizes check
// after WriteRows.
func TestCacheWriteInvalidationAccounting(t *testing.T) {
	const n, k = 20, 2
	twoRankCfgStores(t, n, k, CacheConfig{Rows: 3}, func(s *DKVStore) {
		var rows Rows
		read := func(ids ...int32) {
			t.Helper()
			if err := s.ReadRows(ids, &rows); err != nil {
				t.Fatal(err)
			}
		}
		sizes := func(want int) {
			t.Helper()
			idx, ring := s.cacheSizes()
			if idx != ring {
				t.Fatalf("cache index has %d entries but eviction structure has %d — accounting drifted", idx, ring)
			}
			if idx != want {
				t.Fatalf("cache holds %d rows, want %d", idx, want)
			}
		}

		// Fill the cache with three remote rows (rank 1 owns 10..19).
		read(15, 16, 17)
		sizes(3)

		// Write two of them: both copies must leave the eviction structure
		// too, and count as invalidations, not evictions.
		if err := s.WriteRows([]int32{15, 16}, []float64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		sizes(1)
		cs := s.CacheStats()
		if cs.Invalidations != 2 {
			t.Fatalf("invalidations = %d, want 2", cs.Invalidations)
		}
		if cs.Evictions != 0 {
			t.Fatalf("evictions = %d, want 0 — writes must not charge the eviction counter", cs.Evictions)
		}

		// Refill into the freed slots: no evictions may fire while the
		// cache is below capacity (the old code evicted the ghosts of 15
		// and 16 here).
		read(18, 19)
		sizes(3)
		if cs := s.CacheStats(); cs.Evictions != 0 {
			t.Fatalf("evictions = %d after refilling freed slots, want 0", cs.Evictions)
		}

		// Re-insert a written key at capacity: exactly one real eviction, of
		// the true LRU (17). The old code would have double-counted here.
		read(15)
		sizes(3)
		cs = s.CacheStats()
		if cs.Evictions != 1 {
			t.Fatalf("evictions = %d after one over-capacity insert, want exactly 1", cs.Evictions)
		}
		// One more row evicts the next LRU (18) — never the fresh 15.
		read(10)
		sizes(3)
		cs = s.CacheStats()
		if cs.Evictions != 2 {
			t.Fatalf("evictions = %d, want exactly 2", cs.Evictions)
		}
		before := s.Stats().RemoteKeys.Load()
		read(15, 19) // both must still be cached (17 and 18 were the victims)
		if got := s.Stats().RemoteKeys.Load() - before; got != 0 {
			t.Fatalf("re-read of surviving rows fetched %d remote keys, want 0", got)
		}
	})
}

// TestDKVCacheAllHitBatchShortCircuits pins the ReadRowsAsync fast path: a
// batch served entirely from the cache must not touch the DKV layer at all —
// no request, no future, no empty round trip.
func TestDKVCacheAllHitBatchShortCircuits(t *testing.T) {
	const n, k = 20, 3
	twoRankCfgStores(t, n, k, CacheConfig{Rows: 8}, func(s *DKVStore) {
		remote := []int32{15, 16, 17}
		var rows Rows
		if err := s.ReadRows(remote, &rows); err != nil {
			t.Fatal(err)
		}
		reqBefore := s.Stats().Requests.Load()
		pend, err := s.ReadRowsAsync(remote, &rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, isDone := pend.(donePending); !isDone {
			t.Fatalf("all-hit batch returned %T, want the immediate donePending", pend)
		}
		if err := pend.Wait(); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().Requests.Load() - reqBefore; got != 0 {
			t.Fatalf("all-hit batch issued %d DKV requests, want 0", got)
		}
		for i, a := range remote {
			checkInitRow(t, &rows, i, a, k)
		}
	})
}

func TestDKVCacheAdmit2Policy(t *testing.T) {
	const n, k = 20, 2
	twoRankCfgStores(t, n, k, CacheConfig{Rows: 4, Policy: CachePolicyAdmit2}, func(s *DKVStore) {
		var rows Rows
		// First read: miss, sighted but not admitted. Second read: miss
		// again (still uncached), now admitted. Third read: hit.
		for i := 0; i < 3; i++ {
			if err := s.ReadRows([]int32{15}, &rows); err != nil {
				t.Fatal(err)
			}
		}
		cs := s.CacheStats()
		if cs.Misses != 2 || cs.Hits != 1 {
			t.Fatalf("admit2: hits=%d misses=%d, want 1/2", cs.Hits, cs.Misses)
		}
	})
}

func TestDKVCacheDegreeBypassesAdmit2(t *testing.T) {
	const n, k = 20, 2
	cc := CacheConfig{Rows: 4, Policy: CachePolicyAdmit2, MinDegree: 5}
	twoRankCfgStores(t, n, k, cc, func(s *DKVStore) {
		deg := make([]int32, n)
		deg[15] = 9 // clears MinDegree; 16 stays at 0
		s.SetDegrees(deg)
		var rows Rows
		for i := 0; i < 2; i++ {
			if err := s.ReadRows([]int32{15, 16}, &rows); err != nil {
				t.Fatal(err)
			}
		}
		cs := s.CacheStats()
		// 15 is admitted on the first miss (degree bypass) and hits on the
		// second read; 16 needs two sightings and never hits here.
		if cs.Hits != 1 || cs.Misses != 3 {
			t.Fatalf("degree bypass: hits=%d misses=%d, want 1/3", cs.Hits, cs.Misses)
		}
	})
}

func TestDKVCacheRejectsUnknownPolicy(t *testing.T) {
	f, err := transport.NewFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := NewDKVCache(f.Endpoint(0), 10, 2, 1, CacheConfig{Rows: 4, Policy: "mru"}, nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestDKVCacheCrossIterWriteSetInvalidation exercises the cross-iteration
// mode at store level: Flush must drop exactly the keys named by the
// write-set exchange and keep every other hot row (per-phase mode would
// drop them all).
func TestDKVCacheCrossIterWriteSetInvalidation(t *testing.T) {
	const n, k = 20, 2
	cc := CacheConfig{Rows: 8, CrossIter: true}
	twoRankCfgStores(t, n, k, cc, func(s *DKVStore) {
		var exchanged [][]int32
		peerWrites := []int32{}
		s.SetWriteSetExchange(func(local []int32) ([]int32, error) {
			exchanged = append(exchanged, append([]int32(nil), local...))
			return append(append([]int32(nil), local...), peerWrites...), nil
		})

		var rows Rows
		if err := s.ReadRows([]int32{15, 16, 17}, &rows); err != nil {
			t.Fatal(err)
		}

		// Barrier with nothing written anywhere: everything survives.
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		before := s.Stats().RemoteKeys.Load()
		if err := s.ReadRows([]int32{15, 16, 17}, &rows); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().RemoteKeys.Load() - before; got != 0 {
			t.Fatalf("post-quiet-barrier read fetched %d remote keys, want 0 (cache must survive)", got)
		}

		// A peer writes 16; our own WriteRows names 17. After the exchange
		// both are gone, 15 survives.
		peerWrites = []int32{16}
		if err := s.WriteRows([]int32{17}, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if len(exchanged) != 2 {
			t.Fatalf("exchange ran %d times, want 2 (every Flush is a collective)", len(exchanged))
		}
		if len(exchanged[1]) != 1 || exchanged[1][0] != 17 {
			t.Fatalf("second exchange carried local writes %v, want [17]", exchanged[1])
		}
		before = s.Stats().RemoteKeys.Load()
		if err := s.ReadRows([]int32{15}, &rows); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().RemoteKeys.Load() - before; got != 0 {
			t.Fatal("unwritten row 15 did not survive the write-set barrier")
		}
		checkInitRow(t, &rows, 0, 15, k)

		before = s.Stats().RemoteKeys.Load()
		if err := s.ReadRows([]int32{16, 17}, &rows); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().RemoteKeys.Load() - before; got != 2 {
			t.Fatalf("written rows refetched %d remote keys, want 2", got)
		}
		// 17 was rewritten: the refetched bytes must be the new value.
		wantPi, wantSum := refWrite([]float64{1, 2})
		if rows.PhiSum[1] != wantSum || rows.PiRow(1)[0] != wantPi[0] {
			t.Fatalf("stale bytes for rewritten row 17: Σφ=%v π0=%v", rows.PhiSum[1], rows.PiRow(1)[0])
		}

		// The write set must have been consumed: a third Flush exchanges
		// an empty set and drops nothing.
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		if len(exchanged[2]) != 0 {
			t.Fatalf("third exchange carried %v, want an empty set", exchanged[2])
		}
	})
}

// TestDKVCacheCrossIterWithoutExchangeFallsBack pins the conservative
// fallback: cross-iteration mode without an installed exchange hook must
// blanket-drop at Flush (correctness over locality).
func TestDKVCacheCrossIterWithoutExchangeFallsBack(t *testing.T) {
	const n, k = 20, 2
	twoRankCfgStores(t, n, k, CacheConfig{Rows: 8, CrossIter: true}, func(s *DKVStore) {
		var rows Rows
		if err := s.ReadRows([]int32{15, 16}, &rows); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		before := s.Stats().RemoteKeys.Load()
		if err := s.ReadRows([]int32{15, 16}, &rows); err != nil {
			t.Fatal(err)
		}
		if got := s.Stats().RemoteKeys.Load() - before; got != 2 {
			t.Fatalf("post-fallback-Flush read fetched %d remote keys, want 2", got)
		}
	})
}

// TestDKVCacheConcurrentStress hammers cacheLookup/cacheInsert/WriteRows/
// Flush from concurrent goroutines; it exists to run under -race (make
// race includes internal/store) and finishes with an accounting check.
func TestDKVCacheConcurrentStress(t *testing.T) {
	const n, k = 64, 3
	twoRankCfgStores(t, n, k, CacheConfig{Rows: 8, CrossIter: true}, func(s *DKVStore) {
		s.SetWriteSetExchange(func(local []int32) ([]int32, error) { return local, nil })
		const iters = 300
		var wg sync.WaitGroup
		errs := make([]error, 4)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var rows Rows
				ids := make([]int32, 4)
				for i := 0; i < iters; i++ {
					for j := range ids {
						ids[j] = int32(32 + (g*7+i*3+j)%32) // rank 1's shard
					}
					if err := s.ReadRows(ids, &rows); err != nil {
						errs[g] = fmt.Errorf("read %v: %w", ids, err)
						return
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			phi := make([]float64, k)
			for i := 0; i < iters; i++ {
				for j := range phi {
					phi[j] = float64(i + j + 1)
				}
				if err := s.WriteRows([]int32{int32(32 + i%32)}, phi); err != nil {
					errs[2] = fmt.Errorf("write %d: %w", i, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/10; i++ {
				if err := s.Flush(); err != nil {
					errs[3] = fmt.Errorf("flush %d: %w", i, err)
					return
				}
			}
		}()
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		idx, ring := s.cacheSizes()
		if idx != ring {
			t.Fatalf("after stress: index %d vs ring %d — accounting drifted", idx, ring)
		}
	})
}
