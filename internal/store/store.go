// Package store defines the unified parameter-store abstraction both
// samplers run against: a PiStore holds the per-vertex π rows and Σφ sums
// (the paper's "π[i] + Σφ[i] is the value for key i") behind one batched
// read/write contract, so the phase layer in internal/core is written once
// and wired to either backend.
//
// Two backends implement the contract:
//
//   - LocalStore views a single-node core.State's backing slices. Reads and
//     writes are plain memory copies; Flush is a no-op. It makes the
//     single-process sampler the Ranks=1 degenerate case of the distributed
//     one.
//   - DKVStore (dkv.go) wraps internal/dkv: batched reads grouped by owning
//     rank, asynchronous futures for the double-buffered π pipeline of
//     Section III-D, and an optional bounded hot-row cache that is
//     invalidated at every phase barrier.
//
// Bit-exactness contract: WriteRows on every backend performs the exact
// normalisation arithmetic of core.State.SetPhiRow (sum in slice order,
// inv = 1/sum, float32(v·inv)), and reads return float32/float64 values
// unchanged, so the two backends produce bit-identical trajectories from
// identical inputs.
package store

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/par"
)

// Typed row-codec failures, matchable with errors.Is:
//
//   - ErrDegenerateRow: a φ row whose sum is zero or non-finite. Dividing by
//     it would write NaN/±Inf π that silently poisons every later read — the
//     store surfaces the row instead of normalising it. WriteRows on every
//     backend wraps this with the offending vertex id.
//   - ErrShortRow: a wire/file value shorter than RowBytes(K) — a truncated
//     DKV response or a torn shard file. Decoding it would index past the
//     buffer; the store returns the typed error instead of panicking.
var (
	ErrDegenerateRow = errors.New("degenerate phi row")
	ErrShortRow      = errors.New("short row value")
)

// checkRowSum validates a φ row sum before it becomes a divisor; the error
// wraps ErrDegenerateRow.
func checkRowSum(sum float64) error {
	if sum == 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		return fmt.Errorf("%w: Σφ = %v", ErrDegenerateRow, sum)
	}
	return nil
}

// Rows is the decoded destination buffer for a batched read: n π rows of K
// float32 entries each, plus the matching Σφ sums. Buffers are reused across
// Reset calls, which is what lets the double-buffered pipeline run without
// per-chunk allocation.
type Rows struct {
	K      int
	Pi     []float32 // row-major, Len()×K
	PhiSum []float64 // one Σφ per row

	raw []byte // backend scratch (wire bytes), reused between reads
}

// Reset sizes the buffer for n rows of width k, reusing capacity.
func (r *Rows) Reset(n, k int) {
	r.K = k
	if cap(r.Pi) < n*k {
		r.Pi = make([]float32, n*k)
	}
	r.Pi = r.Pi[:n*k]
	if cap(r.PhiSum) < n {
		r.PhiSum = make([]float64, n)
	}
	r.PhiSum = r.PhiSum[:n]
}

// Len returns the number of rows currently held.
func (r *Rows) Len() int { return len(r.PhiSum) }

// PiRow returns row i as a slice into the buffer.
func (r *Rows) PiRow(i int) []float32 { return r.Pi[i*r.K : (i+1)*r.K] }

// Pending is an in-flight asynchronous read. Wait blocks until the
// destination Rows buffer is fully populated; it is idempotent, and the
// buffer must not be touched before Wait returns.
type Pending interface {
	Wait() error
}

// PiStore is the parameter-store contract the shared phase layer is written
// against. Keys are vertex ids in [0, NumRows).
//
// Consistency follows the paper's phase discipline: within a phase, read
// sets and write sets never overlap, so no concurrency control is needed.
// Flush marks a phase barrier — after Flush returns, rows written before it
// are what subsequent reads observe, and any caching that spanned the phase
// is invalidated. Callers that also require cross-rank visibility (the
// distributed engine) pair Flush with their collective barrier.
type PiStore interface {
	// NumRows returns the total key count N.
	NumRows() int
	// K returns the row width.
	K() int
	// ReadRows fills dst with the current rows for ids.
	ReadRows(ids []int32, dst *Rows) error
	// ReadRowsAsync begins a batched read into dst and returns a Pending;
	// dst must stay untouched until Wait returns. This is the prefetch
	// primitive behind the double-buffered update_phi pipeline.
	ReadRowsAsync(ids []int32, dst *Rows) (Pending, error)
	// WriteRows stores the φ rows (len(ids)·K float64 values, row-major),
	// normalising each to π/Σφ with SetPhiRow's exact arithmetic.
	WriteRows(ids []int32, phi []float64) error
	// Flush marks a phase barrier (see the interface comment).
	Flush() error
}

// LocalReader is an optional PiStore capability: backends whose reads are
// answered from local memory (no transport round trip) report it, and the φ
// stage uses the answer to pick its schedule — a pipeline that overlaps
// fetches with compute only pays off when fetches actually leave the
// process, so local readers get the fused serial path instead.
type LocalReader interface {
	// ReadsAreLocal reports whether every ReadRows/ReadRowsAsync on this
	// store completes without remote communication.
	ReadsAreLocal() bool
}

// ReadsAreLocal reports the LocalReader answer for ps, defaulting to false
// (assume remote) for backends that don't implement the capability.
func ReadsAreLocal(ps PiStore) bool {
	lr, ok := ps.(LocalReader)
	return ok && lr.ReadsAreLocal()
}

// RowBytes is the wire size of one vertex's value: K float32 π entries plus
// the float64 Σφ.
func RowBytes(k int) int { return 4*k + 8 }

// PiWriter is an optional PiStore capability: backends that can store
// already-normalised (π, Σφ) rows verbatim — no SetPhiRow renormalisation —
// implement it. It is the restore primitive behind streamed checkpoint loads
// and initial population, where the values on disk ARE the quantised rows and
// must land bit-identically.
type PiWriter interface {
	// WritePiRows stores len(ids) rows: pi is row-major len(ids)×K, phiSum
	// one Σφ per row.
	WritePiRows(ids []int32, pi []float32, phiSum []float64) error
}

// errCollector keeps the first error reported from a parallel loop.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (e *errCollector) set(err error) {
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errCollector) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// EncodeRow writes π (derived from phi) and Σφ into dst (RowBytes long),
// mirroring core.State.SetPhiRow's arithmetic so all backends quantise to
// float32 identically. A zero or non-finite Σφ is refused with
// ErrDegenerateRow (dst is left untouched) instead of silently writing
// NaN/±Inf π.
func EncodeRow(dst []byte, phi []float64) error {
	var sum float64
	for _, v := range phi {
		sum += v
	}
	if err := checkRowSum(sum); err != nil {
		return err
	}
	inv := 1 / sum
	off := 0
	for _, v := range phi {
		putF32(dst[off:], float32(v*inv))
		off += 4
	}
	putF64(dst[off:], sum)
	return nil
}

// EncodeRowPi writes an already-normalised π row plus Σφ; used for initial
// population from core.InitPiRow.
func EncodeRowPi(dst []byte, pi []float32, phiSum float64) {
	off := 0
	for _, v := range pi {
		putF32(dst[off:], v)
		off += 4
	}
	putF64(dst[off:], phiSum)
}

// DecodeRow splits a wire value into its π row (into pi, length K) and
// returns Σφ. A buffer shorter than RowBytes(K) — a truncated DKV response or
// a torn shard file — fails with ErrShortRow instead of indexing past src.
func DecodeRow(src []byte, pi []float32) (float64, error) {
	if len(src) < RowBytes(len(pi)) {
		return 0, fmt.Errorf("%w: %d bytes, need %d for K=%d",
			ErrShortRow, len(src), RowBytes(len(pi)), len(pi))
	}
	off := 0
	for i := range pi {
		pi[i] = getF32(src[off:])
		off += 4
	}
	return getF64(src[off:]), nil
}

func putF32(b []byte, v float32) {
	u := math.Float32bits(v)
	b[0] = byte(u)
	b[1] = byte(u >> 8)
	b[2] = byte(u >> 16)
	b[3] = byte(u >> 24)
}

func getF32(b []byte) float32 {
	u := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return math.Float32frombits(u)
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[i]) << (8 * i)
	}
	return math.Float64frombits(u)
}

// LocalStore implements PiStore over the backing slices of a single-node
// core.State. It is constructed per use (a cheap slice-header struct) so a
// resumed sampler that swaps its State never reads through a stale view.
type LocalStore struct {
	k       int
	pi      []float32
	phiSum  []float64
	threads int
}

// NewLocal views the given state slices as a PiStore. pi must be row-major
// with len(phiSum) rows of width k.
func NewLocal(pi []float32, phiSum []float64, k, threads int) *LocalStore {
	return &LocalStore{k: k, pi: pi, phiSum: phiSum, threads: threads}
}

// NumRows implements PiStore.
func (s *LocalStore) NumRows() int { return len(s.phiSum) }

// K implements PiStore.
func (s *LocalStore) K() int { return s.k }

func (s *LocalStore) checkIDs(ids []int32) error {
	n := len(s.phiSum)
	for _, id := range ids {
		if id < 0 || int(id) >= n {
			return fmt.Errorf("store: key %d out of range [0,%d)", id, n)
		}
	}
	return nil
}

// ReadRows implements PiStore with plain memory copies (float32/float64
// copies are bit-exact).
func (s *LocalStore) ReadRows(ids []int32, dst *Rows) error {
	if err := s.checkIDs(ids); err != nil {
		return err
	}
	dst.Reset(len(ids), s.k)
	par.For(len(ids), s.threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := int(ids[i])
			copy(dst.PiRow(i), s.pi[a*s.k:(a+1)*s.k])
			dst.PhiSum[i] = s.phiSum[a]
		}
	})
	return nil
}

// donePending is the immediately-complete Pending of a synchronous read.
type donePending struct{ err error }

func (p donePending) Wait() error { return p.err }

// ReadRowsAsync implements PiStore; local reads complete immediately.
func (s *LocalStore) ReadRowsAsync(ids []int32, dst *Rows) (Pending, error) {
	err := s.ReadRows(ids, dst)
	if err != nil {
		return nil, err
	}
	return donePending{}, nil
}

// WriteRows implements PiStore with core.State.SetPhiRow's arithmetic. A
// degenerate row (zero or non-finite Σφ) fails with ErrDegenerateRow naming
// the vertex; the degenerate row itself is not written, so the store never
// holds NaN/±Inf π.
func (s *LocalStore) WriteRows(ids []int32, phi []float64) error {
	if len(phi) != len(ids)*s.k {
		return fmt.Errorf("store: phi has %d values, want %d", len(phi), len(ids)*s.k)
	}
	if err := s.checkIDs(ids); err != nil {
		return err
	}
	var errs errCollector
	par.For(len(ids), s.threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := phi[i*s.k : (i+1)*s.k]
			var sum float64
			for _, v := range row {
				sum += v
			}
			if err := checkRowSum(sum); err != nil {
				errs.set(fmt.Errorf("store: vertex %d: %w", ids[i], err))
				continue
			}
			a := int(ids[i])
			s.phiSum[a] = sum
			dst := s.pi[a*s.k : (a+1)*s.k]
			inv := 1 / sum
			for j, v := range row {
				dst[j] = float32(v * inv)
			}
		}
	})
	return errs.get()
}

// WritePiRows implements PiWriter: already-normalised rows are stored as is
// (plain copies, no renormalisation) — the restore path of a streamed
// checkpoint load.
func (s *LocalStore) WritePiRows(ids []int32, pi []float32, phiSum []float64) error {
	if len(pi) != len(ids)*s.k || len(phiSum) != len(ids) {
		return fmt.Errorf("store: pi/phiSum have %d/%d values, want %d/%d",
			len(pi), len(phiSum), len(ids)*s.k, len(ids))
	}
	if err := s.checkIDs(ids); err != nil {
		return err
	}
	for i, id := range ids {
		a := int(id)
		copy(s.pi[a*s.k:(a+1)*s.k], pi[i*s.k:(i+1)*s.k])
		s.phiSum[a] = phiSum[i]
	}
	return nil
}

// Flush implements PiStore; in-memory writes are immediately visible.
func (s *LocalStore) Flush() error { return nil }

// ReadsAreLocal implements LocalReader: every read is a memory copy.
func (s *LocalStore) ReadsAreLocal() bool { return true }

// interface conformance
var (
	_ PiStore     = (*LocalStore)(nil)
	_ LocalReader = (*LocalStore)(nil)
	_ PiWriter    = (*LocalStore)(nil)
)
