package store

import (
	"fmt"
	"sync"

	"repro/internal/dkv"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/transport"
)

// Hot-row cache admission policies (CacheConfig.Policy).
const (
	// CachePolicyLRU admits every fetched remote row (plain LRU).
	CachePolicyLRU = "lru"
	// CachePolicyAdmit2 admits a row only on its second miss within a
	// bounded window, unless its degree clears CacheConfig.MinDegree —
	// high-degree vertices recur across neighbor samples, one-shot rows
	// should not churn them out.
	CachePolicyAdmit2 = "admit2"
)

// CacheConfig configures DKVStore's hot-row cache of remote π rows.
type CacheConfig struct {
	// Rows bounds the cache in π rows; 0 disables it.
	Rows int
	// Policy is the admission policy: "" or CachePolicyLRU admits every
	// fetched row, CachePolicyAdmit2 gates admission on recurrence (and
	// degree, when a table is supplied via SetDegrees).
	Policy string
	// MinDegree, with CachePolicyAdmit2 and a degree table, admits rows of
	// vertex degree ≥ MinDegree immediately, bypassing the seen-twice gate.
	MinDegree int
	// CrossIter keeps the cache alive across phase barriers. Flush then
	// invalidates exactly the keys written since the previous barrier —
	// the union across ranks, obtained through the SetWriteSetExchange
	// collective hook — instead of dropping everything, so unwritten hot
	// rows survive from iteration to iteration. Without a hook installed,
	// Flush conservatively falls back to the blanket drop.
	CrossIter bool
}

// validate rejects unknown policies early (a typo'd flag should fail the
// run, not silently disable admission).
func (c CacheConfig) validate() error {
	switch c.Policy {
	case "", CachePolicyLRU, CachePolicyAdmit2:
		return nil
	default:
		return fmt.Errorf("store: unknown hot-cache policy %q (want %q or %q)",
			c.Policy, CachePolicyLRU, CachePolicyAdmit2)
	}
}

// CacheStats is a snapshot of the hot-row cache traffic. The live values
// are obs counters (store.cache_* in the run's registry); this struct is
// the plain-value view CacheStats() returns.
type CacheStats struct {
	Hits          int64 // rows served from the cache instead of the network
	Misses        int64 // remote rows that had to be fetched
	Evictions     int64 // rows displaced by the LRU bound
	Invalidations int64 // rows dropped because their key was written
}

// DKVStore implements PiStore over the distributed key-value store: every
// read is grouped by owning rank and issued as one request per peer, and
// ReadRowsAsync exposes the DKV futures that the double-buffered update_phi
// pipeline overlaps with compute.
//
// When the cache is enabled (CacheConfig.Rows > 0), a bounded LRU holds the
// wire bytes of recently fetched REMOTE rows. Within a phase the algorithm
// never reads a row it writes, so a cached row is bit-identical to a
// re-fetched one until the next phase barrier. What happens at the barrier
// depends on the mode:
//
//   - Per-phase (default): Flush drops the whole cache, so nothing survives
//     a barrier. Trivially consistent, but all cross-phase locality is lost.
//   - Cross-iteration (CacheConfig.CrossIter): Flush drops exactly the keys
//     some rank wrote since the previous barrier — the ranks exchange their
//     write sets through the collective hook installed with
//     SetWriteSetExchange — and every other cached row survives. A cached
//     row is dropped precisely when its store value may have changed, so
//     reads still never observe stale bytes and the trained trajectory
//     stays byte-for-byte independent of the cache configuration.
type DKVStore struct {
	kv      *dkv.Store
	n, k    int
	threads int

	mu       sync.Mutex
	cacheCfg CacheConfig
	cache    *rowCache   // nil when the cache is disabled
	door     *doorkeeper // nil unless Policy is admit2
	degrees  []int32     // optional per-vertex degrees for MinDegree admission
	writeSet []int32     // keys written since the last Flush (CrossIter only)
	exchange func(localWrites []int32) ([]int32, error)

	hits, misses, evictions, invalidations *obs.Counter
}

// NewDKV creates the store (and its server goroutine) for this rank.
// cacheRows bounds the hot-row cache; 0 disables it. This is the
// compatibility form of NewDKVCache with the default (per-phase-flush LRU)
// cache configuration.
func NewDKV(conn transport.Conn, n, k, threads, cacheRows int, reg *obs.Registry) (*DKVStore, error) {
	return NewDKVCache(conn, n, k, threads, CacheConfig{Rows: cacheRows}, reg)
}

// NewDKVCache creates the store with an explicit hot-row cache
// configuration. The DKV traffic and cache counters are registered in reg
// (nil falls back to a private registry), which is how a run's telemetry
// layer observes the store.
func NewDKVCache(conn transport.Conn, n, k, threads int, cc CacheConfig, reg *obs.Registry) (*DKVStore, error) {
	if err := cc.validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	kv, err := dkv.NewWithRegistry(conn, n, RowBytes(k), reg)
	if err != nil {
		return nil, err
	}
	s := &DKVStore{
		kv: kv, n: n, k: k, threads: threads, cacheCfg: cc,
		hits:          reg.Counter(obs.CtrCacheHits),
		misses:        reg.Counter(obs.CtrCacheMisses),
		evictions:     reg.Counter(obs.CtrCacheEvictions),
		invalidations: reg.Counter(obs.CtrCacheInvalidations),
	}
	if cc.Rows > 0 {
		s.cache = newRowCache(cc.Rows, RowBytes(k))
		if cc.Policy == CachePolicyAdmit2 {
			// The sighting window is twice the cache: recurrence further
			// apart than that would not have survived the LRU anyway.
			s.door = newDoorkeeper(2 * cc.Rows)
		}
	}
	return s, nil
}

// SetWriteSetExchange installs the collective hook cross-iteration Flush
// uses: f receives the keys this rank wrote since the previous barrier and
// must return the union of every rank's write set. Every rank must call
// Flush at the same point in program order (the engine's barrier stage
// guarantees this), because f runs a collective underneath — dist wires it
// to cluster.Comm.AllGather.
func (s *DKVStore) SetWriteSetExchange(f func(localWrites []int32) ([]int32, error)) {
	s.mu.Lock()
	s.exchange = f
	s.mu.Unlock()
}

// SetDegrees supplies the per-vertex degree table used by degree-aware
// admission (CacheConfig.MinDegree); deg[a] is vertex a's degree.
func (s *DKVStore) SetDegrees(deg []int32) {
	s.mu.Lock()
	s.degrees = deg
	s.mu.Unlock()
}

// NumRows implements PiStore.
func (s *DKVStore) NumRows() int { return s.n }

// K implements PiStore.
func (s *DKVStore) K() int { return s.k }

// OwnedRange returns this rank's key shard [lo, hi).
func (s *DKVStore) OwnedRange() (lo, hi int) { return s.kv.OwnedRange() }

// ReadsAreLocal implements LocalReader: reads stay in-process exactly when
// this rank owns every key, i.e. the Ranks=1 degenerate case. Multi-rank
// stores answer false and the φ stage keeps the fetch/compute overlap.
func (s *DKVStore) ReadsAreLocal() bool {
	lo, hi := s.kv.OwnedRange()
	return lo == 0 && hi == s.n
}

// Stats exposes the underlying DKV traffic counters.
func (s *DKVStore) Stats() *dkv.Stats { return s.kv.Stats() }

// SetTracer forwards span emission to the underlying DKV store — client
// response waits and the server request loop both (see dkv.Store.SetTracer).
func (s *DKVStore) SetTracer(tr *obs.Tracer) { s.kv.SetTracer(tr) }

// CacheStats returns a snapshot of the hot-row cache counters.
func (s *DKVStore) CacheStats() CacheStats {
	return CacheStats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Evictions:     s.evictions.Load(),
		Invalidations: s.invalidations.Load(),
	}
}

// cacheSizes returns the cache's index size and recency-ring length; tests
// assert they never drift apart (the accounting bug the FIFO version had).
func (s *DKVStore) cacheSizes() (indexLen, ringLen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.len(), s.cache.ringLen()
}

// Close stops the server goroutine; the underlying transport stays open.
func (s *DKVStore) Close() error { return s.kv.Close() }

// InitOwned populates this rank's shard from a deterministic row
// initialiser: initRow fills pi (length K) for vertex a and returns Σφ_a.
func (s *DKVStore) InitOwned(initRow func(a int, pi []float32) float64) {
	lo, hi := s.kv.OwnedRange()
	row := make([]byte, RowBytes(s.k))
	pi := make([]float32, s.k)
	for a := lo; a < hi; a++ {
		phiSum := initRow(a, pi)
		EncodeRowPi(row, pi, phiSum)
		s.kv.WriteLocal(a, row)
	}
}

// owned reports whether id falls inside this rank's shard (a free read — the
// cache only holds rows that would otherwise cross the network).
func (s *DKVStore) owned(id int32) bool {
	lo, hi := s.kv.OwnedRange()
	return int(id) >= lo && int(id) < hi
}

// cacheLookup serves id from the cache into dst row i; reports whether it
// hit. Only called when the cache is enabled.
func (s *DKVStore) cacheLookup(id int32, dst *Rows, i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.cache.get(id)
	if !ok {
		s.misses.Inc()
		return false
	}
	// Cached values are always full rows (inserted from validated fetches),
	// so a decode failure here cannot happen; treat it as a miss defensively.
	sum, err := DecodeRow(raw, dst.PiRow(i))
	if err != nil {
		s.misses.Inc()
		return false
	}
	s.hits.Inc()
	dst.PhiSum[i] = sum
	return true
}

// cacheInsert offers a fetched remote row to the cache: the admission
// policy decides whether it enters, and the LRU bound decides what leaves.
// A row already present is left as is (identical bytes within a phase).
func (s *DKVStore) cacheInsert(id int32, raw []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache.contains(id) {
		return
	}
	if !s.admitLocked(id) {
		return
	}
	if s.cache.put(id, raw) {
		s.evictions.Inc()
	}
}

// admitLocked applies the admission policy; the caller holds s.mu.
func (s *DKVStore) admitLocked(id int32) bool {
	if s.door == nil {
		return true
	}
	if s.degrees != nil && s.cacheCfg.MinDegree > 0 && s.degrees[id] >= int32(s.cacheCfg.MinDegree) {
		return true
	}
	return s.door.admit(id)
}

// dkvPending finishes an asynchronous read: waits for the DKV future, then
// decodes the fetched wire rows into the destination buffer in parallel and
// feeds the cache.
type dkvPending struct {
	store *DKVStore
	fut   *dkv.Future
	dst   *Rows
	// missIDs[i] was fetched into raw row i and lands in dst row missPos[i];
	// with the cache disabled missPos is nil and raw row i maps to dst row i.
	missIDs []int32
	missPos []int
	done    bool
	err     error
}

func (p *dkvPending) Wait() error {
	if p.done {
		return p.err
	}
	p.done = true
	if p.err = p.fut.Wait(); p.err != nil {
		return p.err
	}
	s := p.store
	rb := RowBytes(s.k)
	raw := p.dst.raw
	var errs errCollector
	par.For(len(p.missIDs), s.threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := i
			if p.missPos != nil {
				pos = p.missPos[i]
			}
			sum, err := DecodeRow(raw[i*rb:(i+1)*rb], p.dst.PiRow(pos))
			if err != nil {
				errs.set(fmt.Errorf("store: key %d: %w", p.missIDs[i], err))
				continue
			}
			p.dst.PhiSum[pos] = sum
		}
	})
	if p.err = errs.get(); p.err != nil {
		return p.err
	}
	if s.cacheCfg.Rows > 0 {
		for i, id := range p.missIDs {
			if !s.owned(id) {
				s.cacheInsert(id, raw[i*rb:(i+1)*rb])
			}
		}
	}
	return nil
}

// ReadRowsAsync implements PiStore. Cached rows are decoded immediately;
// the rest go out as one batched DKV read whose future the returned Pending
// wraps. A batch fully served by the cache short-circuits: no DKV call, no
// future — Wait on the returned Pending is an immediate no-op.
func (s *DKVStore) ReadRowsAsync(ids []int32, dst *Rows) (Pending, error) {
	dst.Reset(len(ids), s.k)
	rb := RowBytes(s.k)

	missIDs := ids
	var missPos []int
	if s.cacheCfg.Rows > 0 {
		missIDs = make([]int32, 0, len(ids))
		missPos = make([]int, 0, len(ids))
		for i, id := range ids {
			if s.owned(id) || !s.cacheLookup(id, dst, i) {
				missIDs = append(missIDs, id)
				missPos = append(missPos, i)
			}
		}
		if len(missIDs) == 0 {
			return donePending{}, nil
		}
	}

	need := len(missIDs) * rb
	if cap(dst.raw) < need {
		dst.raw = make([]byte, need)
	}
	dst.raw = dst.raw[:need]
	fut, err := s.kv.ReadBatchAsync(missIDs, dst.raw)
	if err != nil {
		return nil, err
	}
	return &dkvPending{store: s, fut: fut, dst: dst, missIDs: missIDs, missPos: missPos}, nil
}

// ReadRows implements PiStore (the synchronous form).
func (s *DKVStore) ReadRows(ids []int32, dst *Rows) error {
	p, err := s.ReadRowsAsync(ids, dst)
	if err != nil {
		return err
	}
	return p.Wait()
}

// WriteRows implements PiStore: rows are encoded in parallel and committed
// through one batched, acknowledged DKV write. Written keys are dropped from
// the cache so a stale copy can never outlive the row — index and recency
// ring together, which is the accounting the FIFO version got wrong — and,
// in cross-iteration mode, recorded in the write set the next Flush
// exchanges with the other ranks.
func (s *DKVStore) WriteRows(ids []int32, phi []float64) error {
	if len(ids) == 0 {
		return nil
	}
	rb := RowBytes(s.k)
	values := make([]byte, len(ids)*rb)
	var errs errCollector
	par.For(len(ids), s.threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if err := EncodeRow(values[i*rb:(i+1)*rb], phi[i*s.k:(i+1)*s.k]); err != nil {
				errs.set(fmt.Errorf("store: vertex %d: %w", ids[i], err))
			}
		}
	})
	if err := errs.get(); err != nil {
		return err
	}
	if s.cacheCfg.Rows > 0 {
		s.mu.Lock()
		for _, id := range ids {
			if s.cache.remove(id) {
				s.invalidations.Inc()
			}
		}
		if s.cacheCfg.CrossIter {
			s.writeSet = append(s.writeSet, ids...)
		}
		s.mu.Unlock()
	}
	return s.kv.WriteBatch(ids, values)
}

// Flush implements PiStore: called at every phase barrier, it invalidates
// the hot-row cache (writes are already acknowledged by WriteRows; global
// visibility is the caller's collective barrier, which this accompanies).
//
// Per-phase mode drops everything. Cross-iteration mode exchanges write
// sets — every rank contributes the keys it wrote since the previous
// barrier and receives the union — and drops exactly those keys, letting
// unwritten hot rows survive the barrier. Rows this rank wrote were already
// dropped locally by WriteRows; the exchange is what catches PEER writes to
// rows sitting in this rank's cache.
func (s *DKVStore) Flush() error {
	if s.cacheCfg.Rows == 0 {
		return nil
	}
	s.mu.Lock()
	exchange := s.exchange
	if !s.cacheCfg.CrossIter || exchange == nil {
		s.invalidations.Add(int64(s.cache.len()))
		s.cache.clear()
		s.writeSet = s.writeSet[:0]
		s.mu.Unlock()
		return nil
	}
	local := append([]int32(nil), s.writeSet...)
	s.writeSet = s.writeSet[:0]
	s.mu.Unlock()

	// The exchange is a collective: every rank calls it here, in the same
	// program order, even with an empty local write set.
	written, err := exchange(local)
	if err != nil {
		return err
	}
	s.mu.Lock()
	for _, id := range written {
		if s.cache.remove(id) {
			s.invalidations.Inc()
		}
	}
	s.mu.Unlock()
	return nil
}

// interface conformance
var (
	_ PiStore     = (*DKVStore)(nil)
	_ LocalReader = (*DKVStore)(nil)
)
