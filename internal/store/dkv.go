package store

import (
	"sync"

	"repro/internal/dkv"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/transport"
)

// CacheStats is a snapshot of the hot-row cache traffic. The live values
// are obs counters (store.cache_* in the run's registry); this struct is
// the plain-value view CacheStats() returns.
type CacheStats struct {
	Hits      int64 // rows served from the cache instead of the network
	Misses    int64 // remote rows that had to be fetched
	Evictions int64 // rows displaced by the FIFO bound
}

// DKVStore implements PiStore over the distributed key-value store: every
// read is grouped by owning rank and issued as one request per peer, and
// ReadRowsAsync exposes the DKV futures that the double-buffered update_phi
// pipeline overlaps with compute.
//
// When cacheRows > 0, a bounded FIFO cache holds the wire bytes of recently
// fetched REMOTE rows. Within a phase the algorithm never reads a row it
// writes, so a cached row is bit-identical to a re-fetched one until the
// next phase barrier; Flush (called at each barrier) invalidates the cache,
// which keeps the result trajectory byte-for-byte independent of the cache
// configuration while cutting repeat fetches of hot rows (high-degree
// vertices recur across neighbor samples).
type DKVStore struct {
	kv      *dkv.Store
	n, k    int
	threads int

	mu       sync.Mutex
	cacheCap int
	cache    map[int32][]byte
	fifo     []int32

	hits, misses, evictions *obs.Counter
}

// NewDKV creates the store (and its server goroutine) for this rank.
// cacheRows bounds the hot-row cache; 0 disables it. The DKV traffic and
// cache counters are registered in reg (nil falls back to a private
// registry), which is how a run's telemetry layer observes the store.
func NewDKV(conn transport.Conn, n, k, threads, cacheRows int, reg *obs.Registry) (*DKVStore, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	kv, err := dkv.NewWithRegistry(conn, n, RowBytes(k), reg)
	if err != nil {
		return nil, err
	}
	s := &DKVStore{
		kv: kv, n: n, k: k, threads: threads, cacheCap: cacheRows,
		hits:      reg.Counter(obs.CtrCacheHits),
		misses:    reg.Counter(obs.CtrCacheMisses),
		evictions: reg.Counter(obs.CtrCacheEvictions),
	}
	if cacheRows > 0 {
		s.cache = make(map[int32][]byte, cacheRows)
		s.fifo = make([]int32, 0, cacheRows)
	}
	return s, nil
}

// NumRows implements PiStore.
func (s *DKVStore) NumRows() int { return s.n }

// K implements PiStore.
func (s *DKVStore) K() int { return s.k }

// OwnedRange returns this rank's key shard [lo, hi).
func (s *DKVStore) OwnedRange() (lo, hi int) { return s.kv.OwnedRange() }

// Stats exposes the underlying DKV traffic counters.
func (s *DKVStore) Stats() *dkv.Stats { return s.kv.Stats() }

// CacheStats returns a snapshot of the hot-row cache counters.
func (s *DKVStore) CacheStats() CacheStats {
	return CacheStats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
	}
}

// Close stops the server goroutine; the underlying transport stays open.
func (s *DKVStore) Close() error { return s.kv.Close() }

// InitOwned populates this rank's shard from a deterministic row
// initialiser: initRow fills pi (length K) for vertex a and returns Σφ_a.
func (s *DKVStore) InitOwned(initRow func(a int, pi []float32) float64) {
	lo, hi := s.kv.OwnedRange()
	row := make([]byte, RowBytes(s.k))
	pi := make([]float32, s.k)
	for a := lo; a < hi; a++ {
		phiSum := initRow(a, pi)
		EncodeRowPi(row, pi, phiSum)
		s.kv.WriteLocal(a, row)
	}
}

// owned reports whether id falls inside this rank's shard (a free read — the
// cache only holds rows that would otherwise cross the network).
func (s *DKVStore) owned(id int32) bool {
	lo, hi := s.kv.OwnedRange()
	return int(id) >= lo && int(id) < hi
}

// cacheLookup serves id from the cache into dst row i; reports whether it
// hit. Only called when the cache is enabled.
func (s *DKVStore) cacheLookup(id int32, dst *Rows, i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.cache[id]
	if !ok {
		s.misses.Inc()
		return false
	}
	s.hits.Inc()
	dst.PhiSum[i] = DecodeRow(raw, dst.PiRow(i))
	return true
}

// cacheInsert copies a fetched remote row into the cache, evicting FIFO
// when the bound is reached. A row already present is left as is (identical
// bytes within a phase).
func (s *DKVStore) cacheInsert(id int32, raw []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.cache[id]; ok {
		return
	}
	if len(s.fifo) >= s.cacheCap {
		old := s.fifo[0]
		s.fifo = s.fifo[1:]
		delete(s.cache, old)
		s.evictions.Inc()
	}
	s.cache[id] = append([]byte(nil), raw...)
	s.fifo = append(s.fifo, id)
}

// dkvPending finishes an asynchronous read: waits for the DKV future, then
// decodes the fetched wire rows into the destination buffer in parallel and
// feeds the cache.
type dkvPending struct {
	store *DKVStore
	fut   *dkv.Future
	dst   *Rows
	// missIDs[i] was fetched into raw row i and lands in dst row missPos[i];
	// with the cache disabled missPos is nil and raw row i maps to dst row i.
	missIDs []int32
	missPos []int
	done    bool
	err     error
}

func (p *dkvPending) Wait() error {
	if p.done {
		return p.err
	}
	p.done = true
	if p.err = p.fut.Wait(); p.err != nil {
		return p.err
	}
	s := p.store
	rb := RowBytes(s.k)
	raw := p.dst.raw
	par.For(len(p.missIDs), s.threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := i
			if p.missPos != nil {
				pos = p.missPos[i]
			}
			p.dst.PhiSum[pos] = DecodeRow(raw[i*rb:(i+1)*rb], p.dst.PiRow(pos))
		}
	})
	if s.cacheCap > 0 {
		for i, id := range p.missIDs {
			if !s.owned(id) {
				s.cacheInsert(id, raw[i*rb:(i+1)*rb])
			}
		}
	}
	return nil
}

// ReadRowsAsync implements PiStore. Cached rows are decoded immediately;
// the rest go out as one batched DKV read whose future the returned Pending
// wraps.
func (s *DKVStore) ReadRowsAsync(ids []int32, dst *Rows) (Pending, error) {
	dst.Reset(len(ids), s.k)
	rb := RowBytes(s.k)

	missIDs := ids
	var missPos []int
	if s.cacheCap > 0 {
		missIDs = make([]int32, 0, len(ids))
		missPos = make([]int, 0, len(ids))
		for i, id := range ids {
			if s.owned(id) || !s.cacheLookup(id, dst, i) {
				missIDs = append(missIDs, id)
				missPos = append(missPos, i)
			}
		}
	}

	need := len(missIDs) * rb
	if cap(dst.raw) < need {
		dst.raw = make([]byte, need)
	}
	dst.raw = dst.raw[:need]
	fut, err := s.kv.ReadBatchAsync(missIDs, dst.raw)
	if err != nil {
		return nil, err
	}
	return &dkvPending{store: s, fut: fut, dst: dst, missIDs: missIDs, missPos: missPos}, nil
}

// ReadRows implements PiStore (the synchronous form).
func (s *DKVStore) ReadRows(ids []int32, dst *Rows) error {
	p, err := s.ReadRowsAsync(ids, dst)
	if err != nil {
		return err
	}
	return p.Wait()
}

// WriteRows implements PiStore: rows are encoded in parallel and committed
// through one batched, acknowledged DKV write. Written keys are dropped from
// the cache so a stale copy can never outlive the row.
func (s *DKVStore) WriteRows(ids []int32, phi []float64) error {
	if len(ids) == 0 {
		return nil
	}
	rb := RowBytes(s.k)
	values := make([]byte, len(ids)*rb)
	par.For(len(ids), s.threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			EncodeRow(values[i*rb:(i+1)*rb], phi[i*s.k:(i+1)*s.k])
		}
	})
	if s.cacheCap > 0 {
		s.mu.Lock()
		for _, id := range ids {
			delete(s.cache, id)
		}
		s.mu.Unlock()
	}
	return s.kv.WriteBatch(ids, values)
}

// Flush implements PiStore: called at every phase barrier, it invalidates
// the hot-row cache (writes are already acknowledged by WriteRows; global
// visibility is the caller's collective barrier, which this accompanies).
func (s *DKVStore) Flush() error {
	if s.cacheCap == 0 {
		return nil
	}
	s.mu.Lock()
	clear(s.cache)
	s.fifo = s.fifo[:0]
	s.mu.Unlock()
	return nil
}

// interface conformance
var _ PiStore = (*DKVStore)(nil)
