package store

import (
	"math"
	"sync"
	"testing"

	"repro/internal/obs"
)

// tierFixture: an mmap base of baseN rows plus (optionally) a LocalStore
// remote of remoteN rows, both initialised with the deterministic row
// pattern checkInitRow expects in GLOBAL id space.
func tierFixture(t *testing.T, baseN, remoteN, k, hotRows int, reg *obs.Registry) *TieredStore {
	t.Helper()
	base, err := CreateMmap(t.TempDir(), baseN, k, MmapOptions{ShardRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { base.Close() })
	if err := base.InitRows(func(a int, pi []float32) float64 {
		for j := range pi {
			pi[j] = float32(a*10 + j)
		}
		return float64(a)
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Seal(); err != nil {
		t.Fatal(err)
	}
	var remote PiStore
	if remoteN > 0 {
		ls := NewLocal(make([]float32, remoteN*k), make([]float64, remoteN), k, 1)
		for a := 0; a < remoteN; a++ {
			global := baseN + a
			pi := make([]float32, k)
			for j := range pi {
				pi[j] = float32(global*10 + j)
			}
			if err := ls.WritePiRows([]int32{int32(a)}, pi, []float64{float64(global)}); err != nil {
				t.Fatal(err)
			}
		}
		remote = ls
	}
	tier, err := NewTiered(base, remote, hotRows, 1, reg)
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

func TestTieredStoreSingleNode(t *testing.T) {
	const n, k = 64, 3
	tier := tierFixture(t, n, 0, k, 8, nil)
	if tier.NumRows() != n || tier.K() != k {
		t.Fatalf("dims %d×%d, want %d×%d", tier.NumRows(), tier.K(), n, k)
	}
	if !ReadsAreLocal(tier) {
		t.Fatal("remote-less tier over mmap must report local reads")
	}

	ids := []int32{3, 17, 42}
	var rows Rows
	if err := tier.ReadRows(ids, &rows); err != nil {
		t.Fatal(err)
	}
	for i, a := range ids {
		checkInitRow(t, &rows, i, a, k)
	}

	// Writes take SetPhiRow arithmetic and invalidate the hot entry.
	phi := []float64{1, 2, 5}
	if err := tier.WriteRows([]int32{17}, phi); err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tier.ReadRows([]int32{17}, &rows); err != nil {
		t.Fatal(err)
	}
	wantPi, wantSum := refWrite(phi)
	if math.Float64bits(rows.PhiSum[0]) != math.Float64bits(wantSum) ||
		math.Float32bits(rows.PiRow(0)[0]) != math.Float32bits(wantPi[0]) {
		t.Fatalf("written row: Σφ=%v π0=%v, want %v/%v", rows.PhiSum[0], rows.PiRow(0)[0], wantSum, wantPi[0])
	}

	// Out-of-range keys fail typed with no remote to absorb them.
	if err := tier.ReadRows([]int32{int32(n)}, &rows); err == nil {
		t.Fatal("out-of-range key accepted")
	}
}

func TestTieredStoreHotTier(t *testing.T) {
	const n, k = 64, 3
	reg := obs.NewRegistry()
	tier := tierFixture(t, n, 0, k, 8, reg)
	ids := []int32{5, 6, 7}

	// admit2: sighting 1 fills the doorkeeper, sighting 2 caches, 3 hits.
	var rows Rows
	for pass := 0; pass < 3; pass++ {
		if err := tier.ReadRows(ids, &rows); err != nil {
			t.Fatal(err)
		}
		for i, a := range ids {
			checkInitRow(t, &rows, i, a, k)
		}
	}
	st := tier.Stats()
	if st.HotHits != int64(len(ids)) {
		t.Fatalf("hot hits = %d, want %d (admit-on-second-sighting)", st.HotHits, len(ids))
	}
	if st.HotMisses != 2*int64(len(ids)) {
		t.Fatalf("hot misses = %d, want %d", st.HotMisses, 2*len(ids))
	}
	if st.MmapHits != 2*int64(len(ids)) || st.MmapMisses != 0 || st.RemoteHits != 0 {
		t.Fatalf("tier routing counters off: %+v", st)
	}
	// The counters live in the run registry under the canonical names.
	if got := reg.Counter(obs.CtrTierHotHits).Load(); got != st.HotHits {
		t.Fatalf("registry counter %q = %d, want %d", obs.CtrTierHotHits, got, st.HotHits)
	}

	// Cached rows are bit-identical to a fresh decode from the base tier.
	var direct Rows
	if err := tier.base.ReadRows(ids, &direct); err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if math.Float64bits(direct.PhiSum[i]) != math.Float64bits(rows.PhiSum[i]) {
			t.Fatalf("cached row %d not bit-identical", ids[i])
		}
		for j := 0; j < k; j++ {
			if math.Float32bits(direct.PiRow(i)[j]) != math.Float32bits(rows.PiRow(i)[j]) {
				t.Fatalf("cached row %d π[%d] not bit-identical", ids[i], j)
			}
		}
	}

	// A write drops exactly its key; the next read refetches and sees the
	// new value (synchronous invalidation).
	if err := tier.WriteRows([]int32{6}, []float64{1, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tier.ReadRows([]int32{6}, &rows); err != nil {
		t.Fatal(err)
	}
	_, wantSum := refWrite([]float64{1, 1, 2})
	if rows.PhiSum[0] != wantSum {
		t.Fatalf("stale hot row after write: Σφ=%v, want %v", rows.PhiSum[0], wantSum)
	}

	// The hot tier survives the phase barrier: unwritten keys still hit.
	if err := tier.Flush(); err != nil {
		t.Fatal(err)
	}
	before := tier.Stats().HotHits
	if err := tier.ReadRows([]int32{5, 7}, &rows); err != nil {
		t.Fatal(err)
	}
	if got := tier.Stats().HotHits - before; got != 2 {
		t.Fatalf("post-Flush hot hits = %d, want 2 (cache must survive the barrier)", got)
	}
}

func TestTieredStoreRemoteRouting(t *testing.T) {
	const baseN, remoteN, k = 32, 16, 3
	tier := tierFixture(t, baseN, remoteN, k, 0, nil)
	if tier.NumRows() != baseN+remoteN {
		t.Fatalf("NumRows = %d, want %d", tier.NumRows(), baseN+remoteN)
	}
	if ReadsAreLocal(tier) {
		t.Fatal("tier with a remote backing store must not report local reads")
	}

	// A batch straddling the boundary: rows land in original positions.
	ids := []int32{40, 2, 31, 32, 47}
	var rows Rows
	if err := tier.ReadRows(ids, &rows); err != nil {
		t.Fatal(err)
	}
	for i, a := range ids {
		checkInitRow(t, &rows, i, a, k)
	}
	st := tier.Stats()
	if st.MmapHits != 2 || st.MmapMisses != 3 || st.RemoteHits != 3 {
		t.Fatalf("routing counters: %+v, want mmap 2 hit / 3 miss, remote 3 hit", st)
	}

	// Writes route by the same split and read back through the tiers.
	phi := []float64{2, 3, 5, 7, 11, 13}
	if err := tier.WriteRows([]int32{10, 44}, phi); err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tier.ReadRows([]int32{10, 44}, &rows); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, wantSum := refWrite(phi[i*k : (i+1)*k])
		if rows.PhiSum[i] != wantSum {
			t.Fatalf("row %d: Σφ=%v, want %v", i, rows.PhiSum[i], wantSum)
		}
	}

	// Snapshot gathers both tiers into one global slab.
	snap, err := tier.Snapshot(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap.N != baseN+remoteN {
		t.Fatalf("snapshot N = %d", snap.N)
	}
	if snap.PiRow(40)[0] != 400 || snap.PiRow(2)[2] != 22 {
		t.Fatalf("snapshot rows wrong: row40=%v row2=%v", snap.PiRow(40), snap.PiRow(2))
	}
}

// TestTieredStoreConcurrentStress drives readers, writers, and flushers at
// the tier concurrently (disjoint key ranges, as the phase discipline
// guarantees) — the -race harness for the tier's locking.
func TestTieredStoreConcurrentStress(t *testing.T) {
	const n, k = 256, 3
	tier := tierFixture(t, n, 0, k, 32, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers sweep the lower half of the table.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			var rows Rows
			ids := make([]int32, 8)
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				for j := range ids {
					ids[j] = (seed*31 + int32(iter*8+j)) % (n / 2)
				}
				if err := tier.ReadRows(ids, &rows); err != nil {
					t.Error(err)
					return
				}
			}
		}(int32(r))
	}
	// Writers churn the upper half.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int32) {
			defer wg.Done()
			phi := []float64{1, 2, 3}
			for iter := 0; ; iter++ {
				select {
				case <-stop:
					return
				default:
				}
				id := n/2 + (seed*17+int32(iter))%(n/2)
				phi[0] = float64(iter%7 + 1)
				if err := tier.WriteRows([]int32{id}, phi); err != nil {
					t.Error(err)
					return
				}
			}
		}(int32(w))
	}
	// A flusher fires barriers throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := tier.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	wg.Wait()

	// Steady state must still read exactly.
	var rows Rows
	if err := tier.ReadRows([]int32{1}, &rows); err != nil {
		t.Fatal(err)
	}
	checkInitRow(t, &rows, 0, 1, k)
}

func TestTieredStoreWritePiRows(t *testing.T) {
	const baseN, remoteN, k = 32, 16, 3
	tier := tierFixture(t, baseN, remoteN, k, 4, nil)
	pi := []float32{0.2, 0.3, 0.5, 0.1, 0.8, 0.1}
	if err := tier.WritePiRows([]int32{5, 40}, pi, []float64{7.5, 9.25}); err != nil {
		t.Fatal(err)
	}
	var rows Rows
	if err := tier.ReadRows([]int32{5, 40}, &rows); err != nil {
		t.Fatal(err)
	}
	if rows.PhiSum[0] != 7.5 || rows.PiRow(0)[2] != 0.5 {
		t.Fatalf("base tier verbatim row mangled: Σφ=%v π=%v", rows.PhiSum[0], rows.PiRow(0))
	}
	if rows.PhiSum[1] != 9.25 || rows.PiRow(1)[1] != 0.8 {
		t.Fatalf("remote tier verbatim row mangled: Σφ=%v π=%v", rows.PhiSum[1], rows.PiRow(1))
	}
}
