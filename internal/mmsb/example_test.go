package mmsb_test

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/mmsb"
)

// Example trains the general (non-assortative) model on a ring-of-groups
// graph — structure the assortative model cannot express.
func Example() {
	g, _, err := gen.Disassortative(gen.DisassortativeConfig{
		N: 200, K: 4, TargetEdges: 2000, Background: 0.02, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(2))
	if err != nil {
		panic(err)
	}
	s, err := mmsb.NewSampler(mmsb.DefaultConfig(4, 3), train, held, mmsb.Options{MinibatchPairs: 64})
	if err != nil {
		panic(err)
	}
	s.Run(30)

	fmt.Println("iterations:", s.Iteration())
	fmt.Println("block matrix entries:", len(s.State.B))
	fmt.Println("state valid:", s.State.Validate() == nil)
	// Output:
	// iterations: 30
	// block matrix entries: 16
	// state valid: true
}
