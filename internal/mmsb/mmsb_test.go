package mmsb

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(4, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Eta1 = 0 },
		func(c *Config) { c.StepC = 0.5 },
		func(c *Config) { c.PhiFloor = 0 },
	}
	for i, m := range mutations {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewStateInvariants(t *testing.T) {
	s, err := NewState(DefaultConfig(5, 3), 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.B) != 25 || len(s.Theta) != 50 {
		t.Fatal("block matrix shapes wrong")
	}
}

func randomSimplex32(rng *mathx.RNG, k int) []float32 {
	tmp := make([]float64, k)
	rng.Dirichlet(1, tmp)
	out := make([]float32, k)
	for i, v := range tmp {
		out[i] = float32(v)
	}
	return out
}

func TestEdgeProbabilityComplementary(t *testing.T) {
	rng := mathx.NewRNG(7)
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(6)
		piA := randomSimplex32(rng, k)
		piB := randomSimplex32(rng, k)
		bMat := make([]float64, k*k)
		for i := range bMat {
			bMat[i] = rng.Float64Open()
		}
		p1 := EdgeProbability(piA, piB, bMat, k, true)
		p0 := EdgeProbability(piA, piB, bMat, k, false)
		if math.Abs(p1+p0-1) > 1e-6 {
			t.Fatalf("p1+p0 = %v", p1+p0)
		}
	}
}

// logLik64 is a float64 reference for the numerical gradient checks.
func logLik64(piA, piB, bMat []float64, k int, linked bool) float64 {
	var p float64
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			w := bMat[i*k+j]
			if !linked {
				w = 1 - w
			}
			p += piA[i] * piB[j] * w
		}
	}
	return math.Log(p)
}

func TestPhiGradientMatchesNumerical(t *testing.T) {
	rng := mathx.NewRNG(8)
	const k = 4
	for trial := 0; trial < 40; trial++ {
		phiA := make([]float64, k)
		var phiSum float64
		for i := range phiA {
			phiA[i] = rng.Gamma(1) + 0.05
			phiSum += phiA[i]
		}
		piA := make([]float32, k)
		piA64 := make([]float64, k)
		for i, v := range phiA {
			piA[i] = float32(v / phiSum)
			piA64[i] = v / phiSum
		}
		piB := randomSimplex32(rng, k)
		piB64 := make([]float64, k)
		for i, v := range piB {
			piB64[i] = float64(v)
		}
		bMat := make([]float64, k*k)
		for i := range bMat {
			bMat[i] = 0.05 + 0.9*rng.Float64()
		}
		linked := trial%2 == 0

		grad := make([]float64, k)
		q := make([]float64, k)
		phiGradient(piA, piB, bMat, k, linked, 1.0, grad, q)
		for i := range grad {
			grad[i] /= phiSum
		}

		logLikAsPhi := func(phi []float64) float64 {
			var sum float64
			for _, v := range phi {
				sum += v
			}
			pi := make([]float64, k)
			for i, v := range phi {
				pi[i] = v / sum
			}
			return logLik64(pi, piB64, bMat, k, linked)
		}
		for i := 0; i < k; i++ {
			h := 1e-6 * phiA[i]
			up := append([]float64(nil), phiA...)
			dn := append([]float64(nil), phiA...)
			up[i] += h
			dn[i] -= h
			num := (logLikAsPhi(up) - logLikAsPhi(dn)) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-4*math.Max(1, math.Abs(num)) {
				t.Fatalf("trial %d φ[%d]: analytic %v numerical %v", trial, i, grad[i], num)
			}
		}
	}
}

func TestThetaGradientMatchesNumerical(t *testing.T) {
	rng := mathx.NewRNG(9)
	const k = 3
	for trial := 0; trial < 40; trial++ {
		theta := make([]float64, 2*k*k)
		bMat := make([]float64, k*k)
		for i := 0; i < k*k; i++ {
			theta[i*2] = rng.Gamma(2) + 0.1
			theta[i*2+1] = rng.Gamma(2) + 0.1
			bMat[i] = theta[i*2+1] / (theta[i*2] + theta[i*2+1])
		}
		piA := randomSimplex32(rng, k)
		piB := randomSimplex32(rng, k)
		piA64 := make([]float64, k)
		piB64 := make([]float64, k)
		for i := 0; i < k; i++ {
			piA64[i], piB64[i] = float64(piA[i]), float64(piB[i])
		}
		linked := trial%2 == 0

		grad := make([]float64, 2*k*k)
		thetaGradient(piA, piB, theta, bMat, k, linked, grad)

		logLikAsTheta := func(th []float64) float64 {
			bm := make([]float64, k*k)
			for i := 0; i < k*k; i++ {
				bm[i] = th[i*2+1] / (th[i*2] + th[i*2+1])
			}
			return logLik64(piA64, piB64, bm, k, linked)
		}
		for idx := 0; idx < 2*k*k; idx++ {
			h := 1e-6 * theta[idx]
			up := append([]float64(nil), theta...)
			dn := append([]float64(nil), theta...)
			up[idx] += h
			dn[idx] -= h
			num := (logLikAsTheta(up) - logLikAsTheta(dn)) / (2 * h)
			if math.Abs(num-grad[idx]) > 1e-3*math.Max(1, math.Abs(num)) {
				t.Fatalf("trial %d θ[%d]: analytic %v numerical %v", trial, idx, grad[idx], num)
			}
		}
	}
}

func disassortativeFixture(t *testing.T) (*graph.Graph, *graph.HeldOut, []int) {
	t.Helper()
	g, group, err := gen.Disassortative(gen.DisassortativeConfig{
		N: 400, K: 4, TargetEdges: 6000, Background: 0.02, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/20, mathx.NewRNG(32))
	if err != nil {
		t.Fatal(err)
	}
	return train, held, group
}

func TestSamplerInvariantsAndDeterminism(t *testing.T) {
	train, held, _ := disassortativeFixture(t)
	run := func() *State {
		s, err := NewSampler(DefaultConfig(4, 5), train, held, Options{Threads: 2, MinibatchPairs: 128})
		if err != nil {
			t.Fatal(err)
		}
		s.Run(40)
		if err := s.State.Validate(); err != nil {
			t.Fatal(err)
		}
		return s.State
	}
	a, b := run(), run()
	if mathx.MaxAbsDiff32(a.Pi, b.Pi) != 0 || mathx.MaxAbsDiff(a.Theta, b.Theta) != 0 {
		t.Fatal("same-seed general-MMSB runs diverged")
	}
}

// TestGeneralBeatsAssortativeOnDisassortativeData is the extension's payoff:
// on a ring-of-groups graph, the full block model reaches a much better
// held-out perplexity than a-MMSB, which structurally cannot represent
// between-group affinity.
func TestGeneralBeatsAssortativeOnDisassortativeData(t *testing.T) {
	if testing.Short() {
		t.Skip("training too slow for -short")
	}
	train, held, _ := disassortativeFixture(t)
	const iters = 1500

	gen2 := DefaultConfig(4, 6)
	full, err := NewSampler(gen2, train, held, Options{Threads: 0, MinibatchPairs: 200})
	if err != nil {
		t.Fatal(err)
	}
	full.Run(iters)
	fullPerp := full.Perplexity()

	acfg := core.DefaultConfig(4, 6)
	acfg.Alpha = 0.25
	acfg.StepA = 0.05
	acfg.StepB = 4096
	assort, err := core.NewSampler(acfg, train, held, core.SamplerOptions{
		Threads: 0, MinibatchPairs: 200, NeighborCount: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	assort.Run(iters)
	assortPerp := core.Perplexity(assort.State, held, acfg.Delta, 0)

	t.Logf("held-out perplexity: general %.3f vs assortative %.3f", fullPerp, assortPerp)
	if fullPerp >= assortPerp*0.9 {
		t.Fatalf("general model (%.3f) not clearly better than a-MMSB (%.3f) on disassortative data",
			fullPerp, assortPerp)
	}
	// The learned block matrix must be ring-structured: off-diagonal
	// neighbors stronger than the diagonal on average.
	k := 4
	var diag, ring float64
	for i := 0; i < k; i++ {
		diag += full.State.B[i*k+i]
		ring += full.State.B[i*k+(i+1)%k] + full.State.B[i*k+(i+k-1)%k]
	}
	diag /= float64(k)
	ring /= float64(2 * k)
	if ring <= diag {
		t.Fatalf("learned B not disassortative: ring %.4f <= diag %.4f", ring, diag)
	}
}

func TestDisassortativeGenerator(t *testing.T) {
	g, group, err := gen.Disassortative(gen.DisassortativeConfig{
		N: 200, K: 4, TargetEdges: 2000, Background: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Most edges must connect adjacent groups, almost none the same group.
	same, adjacent, other := 0, 0, 0
	g.Edges(func(e graph.Edge) {
		ga, gb := group[e.A], group[e.B]
		switch {
		case ga == gb:
			same++
		case (ga+1)%4 == gb || (gb+1)%4 == ga:
			adjacent++
		default:
			other++
		}
	})
	total := same + adjacent + other
	if float64(adjacent)/float64(total) < 0.9 {
		t.Fatalf("only %d/%d edges adjacent-group", adjacent, total)
	}
	if _, _, err := gen.Disassortative(gen.DisassortativeConfig{N: 2, K: 2, TargetEdges: 1}); err == nil {
		t.Fatal("tiny N accepted")
	}
	if _, _, err := gen.Disassortative(gen.DisassortativeConfig{N: 10, K: 1, TargetEdges: 5}); err == nil {
		t.Fatal("K=1 accepted")
	}
}
