// Package mmsb implements the GENERAL mixed-membership stochastic blockmodel
// — the extension the paper's footnote 1 points at ("it is also
// straightforward to apply the proposed method to the general MMSB model").
// Where the assortative model has one strength β_k per community, the
// general model has a full K×K block matrix B: community k's members link to
// community l's members with probability B_kl, so disassortative structure
// (bipartite-like cores, hub/authority layers) becomes expressible.
//
// The inference machinery is the same SGRLD scheme as internal/core, with
// the per-pair work rising from O(K) to O(K²):
//
//	p(y_ab) = Σ_kl π_ak π_bl B_kl^y (1-B_kl)^(1-y)
//
// B_kl is reparameterised by a pair of Gamma pseudo-counts θ_kl ∈ R², just
// as β_k is in the assortative model.
package mmsb

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/par"
	"repro/internal/sampling"
)

// Config carries the hyperparameters; the step schedule matches core.Config.
type Config struct {
	K     int
	Alpha float64
	Eta0  float64
	Eta1  float64

	StepA float64
	StepB float64
	StepC float64

	PhiFloor float64
	Seed     uint64
}

// DefaultConfig mirrors core.DefaultConfig for the general model.
func DefaultConfig(k int, seed uint64) Config {
	return Config{
		K:        k,
		Alpha:    1 / float64(k),
		Eta0:     5,
		Eta1:     1,
		StepA:    0.05,
		StepB:    4096,
		StepC:    0.55,
		PhiFloor: 1e-12,
		Seed:     seed,
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.K < 1:
		return fmt.Errorf("mmsb: K = %d", c.K)
	case c.Alpha <= 0 || c.Eta0 <= 0 || c.Eta1 <= 0:
		return fmt.Errorf("mmsb: non-positive prior")
	case c.StepA <= 0 || c.StepB <= 0:
		return fmt.Errorf("mmsb: invalid step schedule")
	case c.StepC <= 0.5 || c.StepC > 1:
		return fmt.Errorf("mmsb: StepC = %v out of (0.5, 1]", c.StepC)
	case c.PhiFloor <= 0:
		return fmt.Errorf("mmsb: PhiFloor = %v", c.PhiFloor)
	}
	return nil
}

// StepSize returns ε_t.
func (c Config) StepSize(t int) float64 {
	return c.StepA * math.Pow(1+float64(t)/c.StepB, -c.StepC)
}

// State holds π (with Σφ, as in the assortative engine) plus the K×K block
// parameters. Theta is row-major with layout Theta[(k*K+l)*2 + i]; index 1
// is the "link" pseudo-count. B is derived: B_kl = θ_kl1 / (θ_kl0 + θ_kl1).
type State struct {
	N, K   int
	Pi     []float32
	PhiSum []float64
	Theta  []float64
	B      []float64 // row-major K×K
}

// NewState draws the initial state from the priors, reusing the assortative
// engine's deterministic π initialisation so experiments are comparable.
func NewState(cfg Config, n int) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("mmsb: N = %d", n)
	}
	s := &State{
		N:      n,
		K:      cfg.K,
		Pi:     make([]float32, n*cfg.K),
		PhiSum: make([]float64, n),
		Theta:  make([]float64, cfg.K*cfg.K*2),
		B:      make([]float64, cfg.K*cfg.K),
	}
	coreCfg := core.Config{
		K: cfg.K, Alpha: cfg.Alpha, Eta0: cfg.Eta0, Eta1: cfg.Eta1, Delta: 1e-7,
		StepA: cfg.StepA, StepB: cfg.StepB, StepC: cfg.StepC,
		PhiFloor: cfg.PhiFloor, Seed: cfg.Seed,
	}
	for a := 0; a < n; a++ {
		s.PhiSum[a] = core.InitPiRow(coreCfg, a, s.PiRow(a))
	}
	rng := mathx.NewStream(cfg.Seed, 1<<61|3)
	for i := 0; i < cfg.K*cfg.K; i++ {
		s.Theta[i*2] = rng.Gamma(cfg.Eta0)
		s.Theta[i*2+1] = rng.Gamma(cfg.Eta1)
	}
	s.RefreshB()
	return s, nil
}

// PiRow returns π_a.
func (s *State) PiRow(a int) []float32 {
	return s.Pi[a*s.K : (a+1)*s.K]
}

// RefreshB recomputes the block matrix from θ.
func (s *State) RefreshB() {
	for i := 0; i < s.K*s.K; i++ {
		s.B[i] = s.Theta[i*2+1] / (s.Theta[i*2] + s.Theta[i*2+1])
	}
}

// Validate checks the model invariants.
func (s *State) Validate() error {
	for a := 0; a < s.N; a++ {
		var sum float64
		for _, v := range s.PiRow(a) {
			if v < 0 {
				return fmt.Errorf("mmsb: π[%d] negative", a)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			return fmt.Errorf("mmsb: π[%d] sums to %v", a, sum)
		}
	}
	for i, v := range s.B {
		if v <= 0 || v >= 1 || math.IsNaN(v) {
			return fmt.Errorf("mmsb: B[%d] = %v", i, v)
		}
	}
	return nil
}

// EdgeProbability returns p(y_ab | π_a, π_b, B) — the O(K²) general-model
// likelihood. The undirected graph uses the symmetrised convention: the pair
// (a, b) is evaluated with z_ab drawn from π_a indexing rows of B.
func EdgeProbability(piA, piB []float32, bMat []float64, k int, linked bool) float64 {
	var p float64
	for i := 0; i < k; i++ {
		pa := float64(piA[i])
		if pa == 0 {
			continue
		}
		row := bMat[i*k : (i+1)*k]
		var inner float64
		if linked {
			for j := 0; j < k; j++ {
				inner += float64(piB[j]) * row[j]
			}
		} else {
			for j := 0; j < k; j++ {
				inner += float64(piB[j]) * (1 - row[j])
			}
		}
		p += pa * inner
	}
	return p
}

// phiGradient accumulates neighbor b's contribution to φ_a's gradient:
// grad_i += weight · (q_i / Z − 1) with q_i = Σ_j π_bj · w_ij and
// Z = Σ_i π_ai q_i, exactly the general-model analogue of the assortative
// kernel (the caller divides by Σφ_a once per vertex).
func phiGradient(piA, piB []float32, bMat []float64, k int, linked bool, weight float64, grad, q []float64) {
	var z float64
	for i := 0; i < k; i++ {
		row := bMat[i*k : (i+1)*k]
		var qi float64
		if linked {
			for j := 0; j < k; j++ {
				qi += float64(piB[j]) * row[j]
			}
		} else {
			for j := 0; j < k; j++ {
				qi += float64(piB[j]) * (1 - row[j])
			}
		}
		q[i] = qi
		z += float64(piA[i]) * qi
	}
	if z <= 0 {
		return
	}
	invZ := 1 / z
	for i := 0; i < k; i++ {
		grad[i] += weight * (q[i]*invZ - 1)
	}
}

// thetaGradient accumulates the pair's contribution to every block's θ
// gradient: responsibility r_ij = π_ai π_bj w_ij / Z, and
// grad_ij,i' += r_ij (|1-i'-y|/θ_ij,i' − 1/(θ_ij0+θ_ij1)). Because the
// graph is undirected, each unordered pair contributes symmetrically: the
// caller passes each pair once and the gradient treats (i,j) and (j,i)
// blocks via their own responsibilities.
func thetaGradient(piA, piB []float32, theta, bMat []float64, k int, linked bool, grad []float64) {
	var z float64
	for i := 0; i < k; i++ {
		row := bMat[i*k : (i+1)*k]
		pa := float64(piA[i])
		for j := 0; j < k; j++ {
			w := row[j]
			if !linked {
				w = 1 - w
			}
			z += pa * float64(piB[j]) * w
		}
	}
	if z <= 0 {
		return
	}
	invZ := 1 / z
	y0, y1 := 1.0, 0.0
	if linked {
		y0, y1 = 0.0, 1.0
	}
	for i := 0; i < k; i++ {
		pa := float64(piA[i])
		for j := 0; j < k; j++ {
			w := bMat[i*k+j]
			if !linked {
				w = 1 - w
			}
			r := pa * float64(piB[j]) * w * invZ
			if r == 0 {
				continue
			}
			idx := (i*k + j) * 2
			sum := theta[idx] + theta[idx+1]
			grad[idx] += r * (y0/theta[idx] - 1/sum)
			grad[idx+1] += r * (y1/theta[idx+1] - 1/sum)
		}
	}
}

// Sampler runs the general-model SGRLD chain on a single node.
type Sampler struct {
	Cfg     Config
	Graph   *graph.Graph
	Held    *graph.HeldOut
	State   *State
	Threads int

	edges sampling.EdgeStrategy
	neigh sampling.NeighborStrategy
	t     int
	batch sampling.Batch
}

// Options configures NewSampler.
type Options struct {
	MinibatchPairs int
	NeighborCount  int
	Threads        int
}

// NewSampler wires the general-model sampler with the same minibatch and
// neighbor machinery as the assortative engine.
func NewSampler(cfg Config, g *graph.Graph, held *graph.HeldOut, opt Options) (*Sampler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.MinibatchPairs == 0 {
		opt.MinibatchPairs = 128
	}
	if opt.NeighborCount == 0 {
		opt.NeighborCount = 32
	}
	state, err := NewState(cfg, g.NumVertices())
	if err != nil {
		return nil, err
	}
	var excluded *graph.EdgeSet
	if held != nil {
		set := graph.NewEdgeSet(held.Len())
		for _, e := range held.Pairs {
			set.Add(e)
		}
		excluded = &set
	}
	edges, err := sampling.NewRandomPair(g, excluded, opt.MinibatchPairs)
	if err != nil {
		return nil, err
	}
	neigh, err := sampling.NewLinkPlusUniform(sampling.NewGraphView(g, excluded), opt.NeighborCount)
	if err != nil {
		return nil, err
	}
	return &Sampler{
		Cfg: cfg, Graph: g, Held: held, State: state,
		Threads: opt.Threads, edges: edges, neigh: neigh,
	}, nil
}

// Iteration returns the completed iteration count.
func (s *Sampler) Iteration() int { return s.t }

// Step runs one SGRLD iteration of the general model: the same four stages
// as Algorithm 1, with O(K²) kernels.
func (s *Sampler) Step() {
	t := s.t
	k := s.Cfg.K
	eps := s.Cfg.StepSize(t)
	mbRNG := mathx.NewStream(s.Cfg.Seed, core.StreamMinibatch(t))
	s.edges.Sample(mbRNG, &s.batch)
	nodes := s.batch.Nodes

	// update_phi, staged then committed.
	newPhi := make([]float64, len(nodes)*k)
	par.For(len(nodes), s.Threads, func(lo, hi int) {
		grad := make([]float64, k)
		q := make([]float64, k)
		var ns sampling.NeighborSample
		for i := lo; i < hi; i++ {
			a := nodes[i]
			rng := mathx.NewStream(s.Cfg.Seed, core.StreamVertex(t, int(a)))
			s.neigh.Sample(a, rng, &ns)
			for j := range grad {
				grad[j] = 0
			}
			piA := s.State.PiRow(int(a))
			for j, b := range ns.Nodes {
				phiGradient(piA, s.State.PiRow(int(b)), s.State.B, k, ns.Linked[j], ns.Scale[j], grad, q)
			}
			phiSum := s.State.PhiSum[int(a)]
			invPhiSum := 1 / phiSum
			noiseStd := math.Sqrt(eps)
			dst := newPhi[i*k : (i+1)*k]
			for j := 0; j < k; j++ {
				phi := float64(piA[j]) * phiSum
				v := phi + eps/2*(s.Cfg.Alpha-phi+grad[j]*invPhiSum) + math.Sqrt(phi)*noiseStd*rng.Norm()
				if v < 0 {
					v = -v
				}
				if v < s.Cfg.PhiFloor {
					v = s.Cfg.PhiFloor
				}
				dst[j] = v
			}
		}
	})
	par.For(len(nodes), s.Threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := int(nodes[i])
			row := newPhi[i*k : (i+1)*k]
			var sum float64
			for _, v := range row {
				sum += v
			}
			s.State.PhiSum[a] = sum
			dst := s.State.PiRow(a)
			inv := 1 / sum
			for j, v := range row {
				dst[j] = float32(v * inv)
			}
		}
	})

	// update_theta/B from the minibatch pairs (chunk-ordered fold).
	grad := par.ChunkedReduceVec(len(s.batch.Pairs), core.ThetaChunk, s.Threads, 2*k*k,
		func(lo, hi int, acc []float64) {
			for i := lo; i < hi; i++ {
				e := s.batch.Pairs[i]
				thetaGradient(s.State.PiRow(int(e.A)), s.State.PiRow(int(e.B)),
					s.State.Theta, s.State.B, k, s.batch.Linked[i], acc)
			}
		})
	thetaRNG := mathx.NewStream(s.Cfg.Seed, core.StreamTheta(t))
	noiseStd := math.Sqrt(eps)
	for i := 0; i < k*k; i++ {
		for c := 0; c < 2; c++ {
			idx := i*2 + c
			eta := s.Cfg.Eta0
			if c == 1 {
				eta = s.Cfg.Eta1
			}
			th := s.State.Theta[idx]
			v := th + eps/2*(eta-th+s.batch.Scale*grad[idx]) + math.Sqrt(th)*noiseStd*thetaRNG.Norm()
			if v < 0 {
				v = -v
			}
			if v < s.Cfg.PhiFloor {
				v = s.Cfg.PhiFloor
			}
			s.State.Theta[idx] = v
		}
	}
	s.State.RefreshB()
	s.t++
}

// Run executes n iterations.
func (s *Sampler) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Perplexity evaluates Eqn (7)'s metric under the general model.
func (s *Sampler) Perplexity() float64 {
	if s.Held == nil {
		panic("mmsb: sampler has no held-out set")
	}
	k := s.Cfg.K
	logSum := par.ChunkedReduce(s.Held.Len(), core.PerplexityChunk, s.Threads, func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			e := s.Held.Pairs[i]
			p := EdgeProbability(s.State.PiRow(int(e.A)), s.State.PiRow(int(e.B)), s.State.B, k, s.Held.Linked[i])
			if p < 1e-300 {
				p = 1e-300
			}
			acc += math.Log(p)
		}
		return acc
	})
	return math.Exp(-logSum / float64(s.Held.Len()))
}
