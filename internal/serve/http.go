package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Response headers carried by every answer that had a snapshot to serve
// from: the version it was computed against and how stale that snapshot was
// at response time. Clients use them to detect lag and to assert that a
// whole multi-request session observed monotone versions.
const (
	HeaderVersion = "X-Snapshot-Version"
	HeaderAgeMS   = "X-Snapshot-Age-Ms"
)

// Server is the HTTP/JSON query surface over an Engine. Routes (everything
// else is a 404, via the obs.Routes table):
//
//	/        serving status: version, dimensions, staleness
//	/topk    ?v=<vertex>&k=<n>      top-k communities for a vertex
//	/members ?c=<community>&limit=<n>  members of a community
//	/shared  ?u=<vertex>&v=<vertex>  communities shared by u and v
//	/stats   query counters, last flip latency
//
// Every response carries X-Snapshot-Version / X-Snapshot-Age-Ms headers;
// before the first publication query routes answer 503.
//
// Lifecycle mirrors obs.Monitor: New → Start (binds, serves in the
// background) → Shutdown (graceful drain) or Close.
type Server struct {
	addr string
	eng  *Engine
	pub  *store.Publisher // optional; /stats reports its flip latency

	srv *http.Server
	ln  net.Listener

	queries [3]int64 // topk, members, shared — accessed via sync/atomic
	started time.Time
}

func (s *Server) count(i int) { atomic.AddInt64(&s.queries[i], 1) }

func (s *Server) load(i int) int64 { return atomic.LoadInt64(&s.queries[i]) }

// New creates a server for engine on addr (host:port; port 0 picks a free
// port). pub, when non-nil, lets /stats report publication flip latency.
func New(addr string, eng *Engine, pub *store.Publisher) *Server {
	return &Server{addr: addr, eng: eng, pub: pub}
}

// Start binds the listener and serves in a background goroutine, returning
// the bound address.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return "", err
	}
	mux := obs.Routes{
		"/":        s.handleStatus,
		"/topk":    s.handleTopK,
		"/members": s.handleMembers,
		"/shared":  s.handleShared,
		"/stats":   s.handleStats,
	}.Mux()
	s.ln = ln
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.started = time.Now()
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown stops the server gracefully: no new connections, in-flight
// requests drain until done or ctx expires. Queries here are short-lived
// JSON responses, so the drain is prompt.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Close stops the server immediately.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// stamp sets the snapshot version/staleness headers from snap (no-op when
// nil — the not-ready 503 carries no version).
func stamp(w http.ResponseWriter, snap *store.Snapshot) {
	if snap == nil {
		return
	}
	w.Header().Set(HeaderVersion, strconv.Itoa(snap.Version))
	w.Header().Set(HeaderAgeMS, strconv.FormatInt(Staleness(snap, time.Now()).Milliseconds(), 10))
}

// writeJSON renders doc with the standard headers; code is the HTTP status.
func writeJSON(w http.ResponseWriter, code int, snap *store.Snapshot, doc any) {
	stamp(w, snap)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf, err := json.Marshal(doc)
	if err != nil {
		// Headers are gone; all we can do is drop the body.
		return
	}
	buf = append(buf, '\n')
	_, _ = w.Write(buf)
}

type errorDoc struct {
	Error string `json:"error"`
}

// fail classifies an engine error: not-ready → 503, out-of-range → 404.
func fail(w http.ResponseWriter, snap *store.Snapshot, err error) {
	code := http.StatusNotFound
	if err == ErrNotReady {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, snap, errorDoc{Error: err.Error()})
}

// intParam parses query parameter name as an int; missing uses def (and
// ok=true), malformed reports ok=false.
func intParam(r *http.Request, name string, def int) (int, bool) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, true
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return n, true
}

func badParam(w http.ResponseWriter, snap *store.Snapshot, name string) {
	writeJSON(w, http.StatusBadRequest, snap, errorDoc{Error: "bad query parameter " + name})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	snap := s.eng.Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusOK, nil, map[string]string{"status": "waiting"})
		return
	}
	writeJSON(w, http.StatusOK, snap, map[string]any{
		"status":    "serving",
		"version":   snap.Version,
		"vertices":  snap.N,
		"k":         snap.K,
		"sealed_at": snap.SealedAt.UTC().Format(time.RFC3339Nano),
		"age_ms":    Staleness(snap, time.Now()).Milliseconds(),
	})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	v, ok := intParam(r, "v", -1)
	if !ok || v < 0 {
		badParam(w, s.eng.Snapshot(), "v")
		return
	}
	k, ok := intParam(r, "k", 10)
	if !ok {
		badParam(w, s.eng.Snapshot(), "k")
		return
	}
	top, snap, err := s.eng.TopK(v, k)
	if err != nil {
		fail(w, snap, err)
		return
	}
	s.count(0)
	writeJSON(w, http.StatusOK, snap, map[string]any{
		"vertex": v, "version": snap.Version, "topk": top,
	})
}

func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	c, ok := intParam(r, "c", -1)
	if !ok || c < 0 {
		badParam(w, s.eng.Snapshot(), "c")
		return
	}
	limit, ok := intParam(r, "limit", 100)
	if !ok {
		badParam(w, s.eng.Snapshot(), "limit")
		return
	}
	members, snap, err := s.eng.Members(c, limit)
	if err != nil {
		fail(w, snap, err)
		return
	}
	if members == nil {
		members = []Member{} // render [] rather than null
	}
	s.count(1)
	writeJSON(w, http.StatusOK, snap, map[string]any{
		"community": c, "version": snap.Version, "members": members,
	})
}

func (s *Server) handleShared(w http.ResponseWriter, r *http.Request) {
	u, okU := intParam(r, "u", -1)
	v, okV := intParam(r, "v", -1)
	if !okU || u < 0 {
		badParam(w, s.eng.Snapshot(), "u")
		return
	}
	if !okV || v < 0 {
		badParam(w, s.eng.Snapshot(), "v")
		return
	}
	shared, snap, err := s.eng.SharedCommunity(u, v)
	if err != nil {
		fail(w, snap, err)
		return
	}
	if shared == nil {
		shared = []Membership{}
	}
	s.count(2)
	writeJSON(w, http.StatusOK, snap, map[string]any{
		"u": u, "v": v, "version": snap.Version,
		"share": len(shared) > 0, "shared": shared,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.eng.Snapshot()
	doc := map[string]any{
		"uptime_ms":       time.Since(s.started).Milliseconds(),
		"queries_topk":    s.load(0),
		"queries_members": s.load(1),
		"queries_shared":  s.load(2),
	}
	if snap != nil {
		doc["version"] = snap.Version
		doc["age_ms"] = Staleness(snap, time.Now()).Milliseconds()
	}
	if s.pub != nil {
		doc["snapshot_flip_ns"] = s.pub.LastFlipNS()
	}
	writeJSON(w, http.StatusOK, snap, doc)
}
