package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// benchSnap is a realistic serving shape: most mass on a handful of
// communities per vertex, deterministic so runs are comparable.
func benchSnap(v, n, k int) *store.Snapshot {
	pi := make([]float32, n*k)
	for a := 0; a < n; a++ {
		row := pi[a*k : (a+1)*k]
		rest := float32(1)
		for j := 0; j < 3; j++ { // three strong memberships
			c := (a*7 + j*13 + v) % k
			row[c] += 0.25
			rest -= 0.25
		}
		for c := 0; c < k; c++ {
			row[c] += rest / float32(k)
		}
	}
	return &store.Snapshot{Version: v, N: n, K: k, Pi: pi, SealedAt: time.Now()}
}

// BenchmarkTopK measures the raw engine query path (one atomic load plus a
// partial selection over a K-wide row).
func BenchmarkTopK(b *testing.B) {
	const n, k = 100_000, 64
	eng := NewEngine(0)
	eng.Install(benchSnap(1, n, k))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.TopK(i%n, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeHTTP measures end-to-end query throughput and latency over
// real TCP with concurrent clients, reporting the qps and p99_us custom
// metrics that scripts/bench_serve.sh records in BENCH_dist.json.
func BenchmarkServeHTTP(b *testing.B) {
	const n, k, clients = 100_000, 64, 8
	eng := NewEngine(0)
	eng.Install(benchSnap(1, n, k))
	srv := New("127.0.0.1:0", eng, nil)
	addr, err := srv.Start()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	var mu sync.Mutex
	var lat []time.Duration
	var wg sync.WaitGroup
	per := b.N/clients + 1
	b.ResetTimer()
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			mine := make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				url := fmt.Sprintf("http://%s/topk?v=%d&k=10", addr, (c*per+i)%n)
				t0 := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					b.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mine = append(mine, time.Since(t0))
				if resp.StatusCode != 200 {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
			mu.Lock()
			lat = append(lat, mine...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	b.ReportMetric(float64(len(lat))/elapsed.Seconds(), "qps")
	b.ReportMetric(float64(p99.Microseconds()), "p99_us")
}

// BenchmarkSnapshotFlip measures publish-to-visible latency: sealing cost is
// the caller's (Snapshotter); this is index build plus the atomic flip, the
// path scripts/bench_serve.sh reports as snapshot_flip_ns.
func BenchmarkSnapshotFlip(b *testing.B) {
	const n, k = 100_000, 64
	pub := store.NewPublisher()
	eng := NewEngine(0)
	eng.Attach(pub)
	// Two alternating pre-built snapshots so the measurement excludes slab
	// construction; versions must keep rising for Publish to accept them.
	a0, a1 := benchSnap(0, n, k), benchSnap(1, n, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := a0
		if i%2 == 1 {
			s = a1
		}
		s.Version = i + 1
		if err := pub.Publish(s); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(pub.LastFlipNS()), "last_flip_ns")
}
