// Package serve is the read tier that turns training output into a
// queryable product: a lock-free query engine over the current immutable π
// snapshot (store.Snapshot) plus an HTTP/JSON API (http.go).
//
// The data plane is RCU all the way down. The training engine seals a
// snapshot at a phase barrier and hands it to a store.Publisher; the
// publisher runs this package's subscriber — which builds the per-snapshot
// inverted index, off the read path — and then flips one atomic pointer.
// Every query loads that pointer exactly once, so each response is
// internally consistent with exactly one snapshot version even while the
// next iteration is being trained and published underneath it. Readers
// never take a lock; publishers never wait for readers.
package serve

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Membership is one (community, weight) entry of a vertex's π row.
type Membership struct {
	Community int     `json:"community"`
	Weight    float32 `json:"weight"`
}

// Member is one (vertex, weight) entry of a community's member list.
type Member struct {
	Vertex int     `json:"vertex"`
	Weight float32 `json:"weight"`
}

// Index is the per-snapshot inverted view: for each community, the member
// vertices whose membership weight clears the threshold, sorted by weight
// descending (ties by vertex id for determinism). It is built once at
// publish time and never mutated, so reads need no synchronisation.
type Index struct {
	// Threshold is the membership cut-off used to build the lists.
	Threshold float32
	members   [][]Member
}

// Members returns community c's list (strongest first); nil when c is out
// of range.
func (ix *Index) Members(c int) []Member {
	if c < 0 || c >= len(ix.members) {
		return nil
	}
	return ix.members[c]
}

// DefaultThreshold is the adaptive membership cut-off used when none is
// given: 1.5/K separates active memberships from the Dirichlet floor (the
// same default internal/metrics uses for covers).
func DefaultThreshold(k int) float32 { return 1.5 / float32(k) }

// BuildIndex scans the snapshot once and assembles the inverted index.
// O(N·K) plus the sort of each member list; runs inside Publish, never on
// the query path.
func BuildIndex(s *store.Snapshot, threshold float32) *Index {
	if threshold <= 0 {
		threshold = DefaultThreshold(s.K)
	}
	ix := &Index{Threshold: threshold, members: make([][]Member, s.K)}
	for a := 0; a < s.N; a++ {
		row := s.PiRow(a)
		for c, w := range row {
			if w >= threshold {
				ix.members[c] = append(ix.members[c], Member{Vertex: a, Weight: w})
			}
		}
	}
	for c := range ix.members {
		m := ix.members[c]
		sort.Slice(m, func(i, j int) bool {
			if m[i].Weight != m[j].Weight {
				return m[i].Weight > m[j].Weight
			}
			return m[i].Vertex < m[j].Vertex
		})
	}
	return ix
}

// view pairs a snapshot with its index; the engine flips one pointer to
// both, so a query can never see snapshot v with index v-1.
type view struct {
	snap *store.Snapshot
	idx  *Index
}

// Engine answers membership queries against the current snapshot. Install
// (or a subscribed Publisher) is the only writer; queries are wait-free
// pointer loads. The zero Engine is not ready — construct with NewEngine.
type Engine struct {
	cur       atomic.Pointer[view]
	threshold float32
}

// NewEngine returns an engine with the given membership threshold for its
// inverted indexes (<= 0 selects DefaultThreshold at install time).
func NewEngine(threshold float32) *Engine {
	return &Engine{threshold: threshold}
}

// Attach subscribes the engine to a publisher: every published snapshot is
// indexed and installed before the publisher's pointer flip completes, so
// the engine's version can never lag what the publisher reports current.
func (e *Engine) Attach(p *store.Publisher) {
	p.Subscribe(e.Install)
}

// Install indexes snap and flips the engine's view to it.
func (e *Engine) Install(snap *store.Snapshot) {
	v := &view{snap: snap, idx: BuildIndex(snap, e.threshold)}
	e.cur.Store(v)
}

// Ready reports whether a snapshot has been installed.
func (e *Engine) Ready() bool { return e.cur.Load() != nil }

// Snapshot returns the currently served snapshot (nil before the first
// install).
func (e *Engine) Snapshot() *store.Snapshot {
	if v := e.cur.Load(); v != nil {
		return v.snap
	}
	return nil
}

// ErrNotReady is returned (wrapped) by queries before the first snapshot.
var ErrNotReady = fmt.Errorf("serve: no snapshot published yet")

// load returns the current view or ErrNotReady. Each query calls it exactly
// once — the single atomic load that makes a response one-version-consistent.
func (e *Engine) load() (*view, error) {
	v := e.cur.Load()
	if v == nil {
		return nil, ErrNotReady
	}
	return v, nil
}

// TopK returns vertex v's k strongest community memberships (descending
// weight, ties by community id), with the snapshot they came from.
func (e *Engine) TopK(vertex, k int) ([]Membership, *store.Snapshot, error) {
	vw, err := e.load()
	if err != nil {
		return nil, nil, err
	}
	s := vw.snap
	if vertex < 0 || vertex >= s.N {
		return nil, s, fmt.Errorf("serve: vertex %d out of range [0,%d)", vertex, s.N)
	}
	if k <= 0 || k > s.K {
		k = s.K
	}
	row := s.PiRow(vertex)
	top := make([]Membership, 0, k)
	for c, w := range row {
		if len(top) < k {
			top = append(top, Membership{Community: c, Weight: w})
			if len(top) == k {
				sortMemberships(top)
			}
			continue
		}
		if w > top[k-1].Weight {
			top[k-1] = Membership{Community: c, Weight: w}
			// Re-sift the new entry into place (k is small; insertion beats
			// a heap for the serving workload's k ≈ 10).
			for i := k - 1; i > 0 && greater(top[i], top[i-1]); i-- {
				top[i], top[i-1] = top[i-1], top[i]
			}
		}
	}
	if len(top) < k {
		sortMemberships(top)
	}
	return top, s, nil
}

func greater(a, b Membership) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	return a.Community < b.Community
}

func sortMemberships(m []Membership) {
	sort.Slice(m, func(i, j int) bool { return greater(m[i], m[j]) })
}

// Members returns up to limit members of community c (strongest first) from
// the per-snapshot inverted index; limit <= 0 returns the whole list.
func (e *Engine) Members(c, limit int) ([]Member, *store.Snapshot, error) {
	vw, err := e.load()
	if err != nil {
		return nil, nil, err
	}
	s := vw.snap
	if c < 0 || c >= s.K {
		return nil, s, fmt.Errorf("serve: community %d out of range [0,%d)", c, s.K)
	}
	m := vw.idx.Members(c)
	if limit > 0 && limit < len(m) {
		m = m[:limit]
	}
	return m, s, nil
}

// SharedCommunity reports the communities vertices u and v both belong to
// at the index's membership threshold, strongest (by the pairwise minimum
// weight) first. Share is true when the list is non-empty.
func (e *Engine) SharedCommunity(u, v int) ([]Membership, *store.Snapshot, error) {
	vw, err := e.load()
	if err != nil {
		return nil, nil, err
	}
	s := vw.snap
	if u < 0 || u >= s.N || v < 0 || v >= s.N {
		return nil, s, fmt.Errorf("serve: vertex pair (%d,%d) out of range [0,%d)", u, v, s.N)
	}
	thr := vw.idx.Threshold
	ru, rv := s.PiRow(u), s.PiRow(v)
	var shared []Membership
	for c := 0; c < s.K; c++ {
		if ru[c] >= thr && rv[c] >= thr {
			w := ru[c]
			if rv[c] < w {
				w = rv[c]
			}
			shared = append(shared, Membership{Community: c, Weight: w})
		}
	}
	sortMemberships(shared)
	return shared, s, nil
}

// Staleness returns the age of snapshot s at time now.
func Staleness(s *store.Snapshot, now time.Time) time.Duration {
	return now.Sub(s.SealedAt)
}
