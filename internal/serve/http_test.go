package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"repro/internal/store"
)

func startServer(t *testing.T, eng *Engine, pub *store.Publisher) (*Server, string) {
	t.Helper()
	s := New("127.0.0.1:0", eng, pub)
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func getJSON(t *testing.T, url string) (int, http.Header, map[string]any) {
	t.Helper()
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if len(body) > 0 && resp.Header.Get("Content-Type") == "application/json" {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("GET %s: non-JSON body %q: %v", url, body, err)
		}
	}
	return resp.StatusCode, resp.Header, doc
}

// TestServerNotReady: before the first publication, query routes answer 503
// (and carry no version header); the status route reports waiting.
func TestServerNotReady(t *testing.T) {
	_, addr := startServer(t, NewEngine(0), nil)
	base := "http://" + addr

	code, hdr, doc := getJSON(t, base+"/")
	if code != 200 || doc["status"] != "waiting" {
		t.Fatalf("GET / before publish = %d %v, want 200 waiting", code, doc)
	}
	if hdr.Get(HeaderVersion) != "" {
		t.Fatalf("waiting status carries version header %q", hdr.Get(HeaderVersion))
	}
	for _, path := range []string{"/topk?v=0", "/members?c=0", "/shared?u=0&v=1"} {
		code, hdr, _ := getJSON(t, base+path)
		if code != http.StatusServiceUnavailable {
			t.Errorf("GET %s before publish = %d, want 503", path, code)
		}
		if hdr.Get(HeaderVersion) != "" {
			t.Errorf("GET %s 503 carries version header", path)
		}
	}
}

// TestServerEndpoints drives every route against a published snapshot and
// checks bodies, headers, and error codes.
func TestServerEndpoints(t *testing.T) {
	const n, k = 64, 8
	pub := store.NewPublisher()
	eng := NewEngine(0)
	eng.Attach(pub)
	if err := pub.Publish(versionSnap(3, n, k)); err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, eng, pub)
	base := "http://" + addr
	hot := 3 % k

	checkStamp := func(hdr http.Header, path string) {
		t.Helper()
		if v := hdr.Get(HeaderVersion); v != "3" {
			t.Errorf("GET %s %s = %q, want 3", path, HeaderVersion, v)
		}
		if age, err := strconv.Atoi(hdr.Get(HeaderAgeMS)); err != nil || age < 0 {
			t.Errorf("GET %s %s = %q, want non-negative int", path, HeaderAgeMS, hdr.Get(HeaderAgeMS))
		}
	}

	// Status.
	code, hdr, doc := getJSON(t, base+"/")
	if code != 200 || doc["status"] != "serving" || doc["version"] != float64(3) {
		t.Fatalf("GET / = %d %v", code, doc)
	}
	checkStamp(hdr, "/")

	// TopK: default k=10 clamps to K; explicit k=1 returns the hot community.
	code, hdr, doc = getJSON(t, base+"/topk?v=5&k=1")
	if code != 200 {
		t.Fatalf("GET /topk = %d %v", code, doc)
	}
	checkStamp(hdr, "/topk")
	topk := doc["topk"].([]any)
	if len(topk) != 1 || topk[0].(map[string]any)["community"] != float64(hot) {
		t.Fatalf("topk body = %v, want community %d", doc, hot)
	}
	if _, _, d := getJSON(t, base+"/topk?v=5"); len(d["topk"].([]any)) != k {
		t.Fatalf("default k: got %d entries, want %d", len(d["topk"].([]any)), k)
	}

	// Members: hot community has all n vertices (default limit 100 > n);
	// a cold community renders [] rather than null.
	code, hdr, doc = getJSON(t, base+"/members?c="+strconv.Itoa(hot))
	if code != 200 {
		t.Fatalf("GET /members = %d %v", code, doc)
	}
	checkStamp(hdr, "/members")
	if got := len(doc["members"].([]any)); got != n {
		t.Fatalf("hot community served %d members, want %d", got, n)
	}
	if _, _, d := getJSON(t, base+"/members?c="+strconv.Itoa((hot+1)%k)); d["members"] == nil {
		t.Fatal("cold community rendered null, want []")
	}
	if _, _, d := getJSON(t, base+"/members?c="+strconv.Itoa(hot)+"&limit=7"); len(d["members"].([]any)) != 7 {
		t.Fatalf("limit=7 served %d members", len(d["members"].([]any)))
	}

	// Shared: every pair shares exactly the hot community.
	code, hdr, doc = getJSON(t, base+"/shared?u=1&v=2")
	if code != 200 {
		t.Fatalf("GET /shared = %d %v", code, doc)
	}
	checkStamp(hdr, "/shared")
	if doc["share"] != true || len(doc["shared"].([]any)) != 1 {
		t.Fatalf("shared body = %v", doc)
	}

	// Stats counts the successful queries above and reports flip latency.
	_, _, doc = getJSON(t, base+"/stats")
	if doc["queries_topk"].(float64) < 2 || doc["queries_members"].(float64) < 3 ||
		doc["queries_shared"].(float64) < 1 {
		t.Fatalf("stats counters = %v", doc)
	}
	if doc["version"] != float64(3) {
		t.Fatalf("stats version = %v", doc["version"])
	}
	if _, ok := doc["snapshot_flip_ns"]; !ok {
		t.Fatalf("stats missing snapshot_flip_ns: %v", doc)
	}

	// Error contract: malformed/missing params are 400, out-of-range 404,
	// unknown paths 404 via the route table.
	for path, want := range map[string]int{
		"/topk":               400, // v required
		"/topk?v=abc":         400,
		"/topk?v=5&k=abc":     400,
		"/members":            400,
		"/shared?u=1":         400,
		"/topk?v=99999":       404,
		"/members?c=99":       404,
		"/shared?u=0&v=99999": 404,
		"/unknown":            404,
		"/topk/extra":         404,
		"/favicon.ico":        404,
	} {
		if code, _, _ := getJSON(t, base+path); code != want {
			t.Errorf("GET %s = %d, want %d", path, code, want)
		}
	}
	_ = s
}

// TestServerVersionAdvances: a second publication is visible to HTTP clients
// with a bumped version header and consistent body.
func TestServerVersionAdvances(t *testing.T) {
	const n, k = 16, 4
	pub := store.NewPublisher()
	eng := NewEngine(0)
	eng.Attach(pub)
	_, addr := startServer(t, eng, pub)
	base := "http://" + addr

	for v := 1; v <= 3; v++ {
		if err := pub.Publish(versionSnap(v, n, k)); err != nil {
			t.Fatal(err)
		}
		code, hdr, doc := getJSON(t, base+"/topk?v=0&k=1")
		if code != 200 {
			t.Fatalf("publish %d: GET /topk = %d", v, code)
		}
		if hdr.Get(HeaderVersion) != strconv.Itoa(v) {
			t.Fatalf("publish %d: header version %q", v, hdr.Get(HeaderVersion))
		}
		top := doc["topk"].([]any)[0].(map[string]any)
		if top["community"] != float64(v%k) {
			t.Fatalf("publish %d: body serves community %v, want %d", v, top["community"], v%k)
		}
	}
}

// TestServerShutdown: graceful shutdown drains, the port closes, and a
// second Shutdown/Close is a no-op.
func TestServerShutdown(t *testing.T) {
	eng := NewEngine(0)
	eng.Install(versionSnap(1, 8, 4))
	s, addr := startServer(t, eng, nil)
	if code, _, _ := getJSON(t, "http://"+addr+"/topk?v=0"); code != 200 {
		t.Fatalf("pre-shutdown query = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
}
