package serve

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// stateSnapshot seals a freshly initialised core.State through the
// LocalStore Snapshotter — the exact publication path the sampler uses.
func stateSnapshot(t *testing.T, n, k, version int) (*core.State, *store.Snapshot) {
	t.Helper()
	cfg := core.DefaultConfig(k, 7)
	cfg.Alpha = 1 / float64(k)
	st, err := core.NewState(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	ls := store.NewLocal(st.Pi, st.PhiSum, k, 1)
	snap, err := ls.Snapshot(version, st.Beta)
	if err != nil {
		t.Fatal(err)
	}
	return st, snap
}

// TestTopKMatchesState is the quantisation-parity test: TopK served from a
// sealed snapshot must equal TopK computed directly from the core.State the
// snapshot was taken of — same float32 values, same ordering rule.
func TestTopKMatchesState(t *testing.T) {
	const n, k, topN = 50, 16, 5
	st, snap := stateSnapshot(t, n, k, 1)
	eng := NewEngine(0)
	eng.Install(snap)

	for a := 0; a < n; a++ {
		got, s, err := eng.TopK(a, topN)
		if err != nil {
			t.Fatal(err)
		}
		if s.Version != 1 {
			t.Fatalf("vertex %d served from version %d", a, s.Version)
		}
		// Reference: full sort of the state's own π row.
		row := st.PiRow(a)
		want := make([]Membership, k)
		for c, w := range row {
			want[c] = Membership{Community: c, Weight: w}
		}
		sort.Slice(want, func(i, j int) bool { return greater(want[i], want[j]) })
		want = want[:topN]
		if len(got) != topN {
			t.Fatalf("vertex %d: got %d entries, want %d", a, len(got), topN)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("vertex %d entry %d: got %+v, want %+v (full: %v vs %v)",
					a, i, got[i], want[i], got, want)
			}
		}
	}

	// k <= 0 and k > K both mean "the whole row".
	all, _, err := eng.TopK(0, 0)
	if err != nil || len(all) != k {
		t.Fatalf("TopK(0,0) = %d entries, err %v; want %d", len(all), err, k)
	}
	for i := 1; i < len(all); i++ {
		if greater(all[i], all[i-1]) {
			t.Fatalf("TopK full row out of order at %d: %v", i, all)
		}
	}
}

// TestMembersMatchesThreshold: the inverted index must contain exactly the
// (vertex, weight) pairs clearing the threshold, sorted strongest-first,
// and the limit must truncate from the top.
func TestMembersMatchesThreshold(t *testing.T) {
	const n, k = 40, 8
	st, snap := stateSnapshot(t, n, k, 1)
	eng := NewEngine(0)
	eng.Install(snap)
	thr := DefaultThreshold(k)

	for c := 0; c < k; c++ {
		members, _, err := eng.Members(c, 0)
		if err != nil {
			t.Fatal(err)
		}
		wantSet := map[int]float32{}
		for a := 0; a < n; a++ {
			if w := st.PiRow(a)[c]; w >= thr {
				wantSet[a] = w
			}
		}
		if len(members) != len(wantSet) {
			t.Fatalf("community %d: %d members, want %d", c, len(members), len(wantSet))
		}
		for i, m := range members {
			if w, ok := wantSet[m.Vertex]; !ok || w != m.Weight {
				t.Fatalf("community %d member %d: %+v not in reference set", c, i, m)
			}
			if i > 0 && (m.Weight > members[i-1].Weight ||
				(m.Weight == members[i-1].Weight && m.Vertex < members[i-1].Vertex)) {
				t.Fatalf("community %d member list out of order at %d", c, i)
			}
		}
		limited, _, err := eng.Members(c, 2)
		if err != nil {
			t.Fatal(err)
		}
		if want := min(2, len(members)); len(limited) != want {
			t.Fatalf("community %d limit 2: %d members, want %d", c, len(limited), want)
		}
	}
}

// TestSharedCommunity: shared membership is the intersection of the two
// thresholded rows, weighted by the pairwise minimum.
func TestSharedCommunity(t *testing.T) {
	const n, k = 4, 4
	pi := []float32{
		0.7, 0.2, 0.05, 0.05, // vertex 0: in 0 (and 1 at thr 0.2)
		0.6, 0.3, 0.05, 0.05, // vertex 1: in 0 and 1
		0.05, 0.05, 0.8, 0.1, // vertex 2: in 2
		0.25, 0.25, 0.25, 0.25, // vertex 3: in everything at thr 0.25
	}
	snap := &store.Snapshot{Version: 1, N: n, K: k, Pi: pi, SealedAt: time.Now()}
	eng := NewEngine(0.2)
	eng.Install(snap)

	shared, _, err := eng.SharedCommunity(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Membership{{Community: 0, Weight: 0.6}, {Community: 1, Weight: 0.2}}
	if len(shared) != 2 || shared[0] != want[0] || shared[1] != want[1] {
		t.Fatalf("shared(0,1) = %v, want %v", shared, want)
	}
	if s, _, _ := eng.SharedCommunity(0, 2); len(s) != 0 {
		t.Fatalf("shared(0,2) = %v, want none", s)
	}
	if s, _, _ := eng.SharedCommunity(2, 3); len(s) != 1 || s[0].Community != 2 {
		t.Fatalf("shared(2,3) = %v, want community 2 only", s)
	}
	if _, _, err := eng.SharedCommunity(0, n); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

// TestQueriesBeforePublication: every query fails with ErrNotReady until a
// snapshot is installed.
func TestQueriesBeforePublication(t *testing.T) {
	eng := NewEngine(0)
	if _, _, err := eng.TopK(0, 1); err != ErrNotReady {
		t.Fatalf("TopK before publish: %v, want ErrNotReady", err)
	}
	if _, _, err := eng.Members(0, 1); err != ErrNotReady {
		t.Fatalf("Members before publish: %v, want ErrNotReady", err)
	}
	if _, _, err := eng.SharedCommunity(0, 1); err != ErrNotReady {
		t.Fatalf("SharedCommunity before publish: %v, want ErrNotReady", err)
	}
}

// versionSnap builds a snapshot whose contents encode its version: every
// vertex's strongest community is version%k with weight 0.9. A reader that
// mixed two versions would see a TopK entry or member list inconsistent
// with the version it reports.
func versionSnap(v, n, k int) *store.Snapshot {
	pi := make([]float32, n*k)
	hot := v % k
	cold := float32(0.1) / float32(k-1)
	for a := 0; a < n; a++ {
		for c := 0; c < k; c++ {
			if c == hot {
				pi[a*k+c] = 0.9
			} else {
				pi[a*k+c] = cold
			}
		}
	}
	return &store.Snapshot{Version: v, N: n, K: k, Pi: pi, SealedAt: time.Now()}
}

// TestConcurrentPublishReadStress is the RCU acceptance test, meaningful
// under -race: one goroutine publishes a new snapshot every few hundred
// microseconds while readers hammer TopK and Members, asserting every
// response is internally consistent with exactly one snapshot version —
// the version the returned snapshot reports is the version its data
// encodes, and versions never move backwards per reader.
func TestConcurrentPublishReadStress(t *testing.T) {
	const n, k, readers, versions = 64, 8, 4, 300
	pub := store.NewPublisher()
	eng := NewEngine(0)
	eng.Attach(pub)

	stop := make(chan struct{})
	errc := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			last := 0
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				if !eng.Ready() {
					continue
				}
				// TopK: the single strongest community must encode the
				// version of the snapshot the response reports.
				top, snap, err := eng.TopK(rng.Intn(n), 1)
				if err != nil {
					errc <- err
					return
				}
				if snap.Version < last {
					t.Errorf("version went backwards: %d after %d", snap.Version, last)
					errc <- nil
					return
				}
				last = snap.Version
				if want := snap.Version % k; top[0].Community != want || top[0].Weight != 0.9 {
					t.Errorf("inconsistent response: v%d serves top community %d (w=%v), want %d",
						snap.Version, top[0].Community, top[0].Weight, want)
					errc <- nil
					return
				}
				// Members: the hot community of the reported version holds
				// every vertex; any other community is empty.
				members, snap2, err := eng.Members(rng.Intn(k), 0)
				if err != nil {
					errc <- err
					return
				}
				hot := snap2.Version % k
				// (we don't know which c we asked for without tracking it;
				// re-derive from the result: full house ⇔ hot community)
				if len(members) != 0 && len(members) != n {
					t.Errorf("inconsistent member list: %d of %d vertices", len(members), n)
					errc <- nil
					return
				}
				if len(members) == n && members[0].Weight != 0.9 {
					t.Errorf("v%d hot community %d served weight %v", snap2.Version, hot, members[0].Weight)
					errc <- nil
					return
				}
			}
		}(int64(r + 1))
	}

	for v := 1; v <= versions; v++ {
		if err := pub.Publish(versionSnap(v, n, k)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	for r := 0; r < readers; r++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.Snapshot().Version; got != versions {
		t.Fatalf("final engine version %d, want %d", got, versions)
	}
}
