package cluster

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/transport"
	"repro/internal/wire"
)

// spmd runs body on `size` ranks over an in-process fabric and fails the
// test on any returned error.
func spmd(t *testing.T, size int, body func(c *Comm) error) {
	t.Helper()
	f, err := transport.NewFabric(size)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(New(f.Endpoint(r)))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestBarrierAllRanksPass(t *testing.T) {
	for _, size := range []int{1, 2, 5, 16} {
		var mu sync.Mutex
		entered := 0
		spmd(t, size, func(c *Comm) error {
			mu.Lock()
			entered++
			mu.Unlock()
			if err := c.Barrier(); err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if entered != size {
				return fmt.Errorf("passed barrier with %d/%d ranks entered", entered, size)
			}
			return nil
		})
	}
}

func TestBcast(t *testing.T) {
	spmd(t, 4, func(c *Comm) error {
		var data []byte
		if c.Rank() == 2 {
			data = []byte("payload")
		}
		got, err := c.Bcast(2, data)
		if err != nil {
			return err
		}
		if string(got) != "payload" {
			return fmt.Errorf("got %q", got)
		}
		return nil
	})
}

func TestGatherOrdered(t *testing.T) {
	spmd(t, 5, func(c *Comm) error {
		parts, err := c.Gather(0, []byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if parts != nil {
				return fmt.Errorf("non-root received gather result")
			}
			return nil
		}
		for r, p := range parts {
			if len(p) != 1 || p[0] != byte(r*10) {
				return fmt.Errorf("parts[%d] = %v", r, p)
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	spmd(t, 4, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 0 {
			for r := 0; r < 4; r++ {
				parts = append(parts, []byte{byte(r), byte(r * 2)})
			}
		}
		got, err := c.Scatter(0, parts)
		if err != nil {
			return err
		}
		if got[0] != byte(c.Rank()) || got[1] != byte(c.Rank()*2) {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestScatterWrongPartCount(t *testing.T) {
	f, _ := transport.NewFabric(1)
	defer f.Close()
	c := New(f.Endpoint(0))
	if _, err := c.Scatter(0, [][]byte{nil, nil}); err == nil {
		t.Fatal("scatter with wrong part count accepted")
	}
}

func TestReduceSum(t *testing.T) {
	const size = 6
	spmd(t, size, func(c *Comm) error {
		vec := []float64{float64(c.Rank()), 1, -float64(c.Rank() * 2)}
		total, err := c.ReduceSum(0, vec)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if total != nil {
				return fmt.Errorf("non-root got a total")
			}
			return nil
		}
		// Σ ranks = 15, Σ 1 = 6, Σ -2r = -30.
		want := []float64{15, 6, -30}
		for i := range want {
			if math.Abs(total[i]-want[i]) > 1e-12 {
				return fmt.Errorf("total = %v, want %v", total, want)
			}
		}
		return nil
	})
}

func TestReduceSumDeterministicOrder(t *testing.T) {
	// The fold must happen in rank order: with values whose float64 sum is
	// order-sensitive, every run must produce the identical bits.
	const size = 4
	results := make(chan float64, 8)
	for trial := 0; trial < 2; trial++ {
		spmd(t, size, func(c *Comm) error {
			v := []float64{1e16, 1, -1e16, 3.14159}[c.Rank()]
			total, err := c.ReduceSum(0, []float64{v})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				results <- total[0]
			}
			return nil
		})
	}
	a, b := <-results, <-results
	if a != b {
		t.Fatalf("reduce order unstable: %v vs %v", a, b)
	}
}

func TestAllReduceSum(t *testing.T) {
	const size = 5
	spmd(t, size, func(c *Comm) error {
		total, err := c.AllReduceSum([]float64{float64(c.Rank() + 1)})
		if err != nil {
			return err
		}
		if total[0] != 15 {
			return fmt.Errorf("rank %d: total = %v, want 15", c.Rank(), total[0])
		}
		return nil
	})
}

func TestCollectiveSequencing(t *testing.T) {
	// Back-to-back collectives with identical shapes must not cross-talk.
	spmd(t, 3, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			got, err := c.AllReduceSum([]float64{float64(i)})
			if err != nil {
				return err
			}
			if got[0] != float64(3*i) {
				return fmt.Errorf("round %d: got %v", i, got[0])
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestSendToRecvFrom(t *testing.T) {
	spmd(t, 2, func(c *Comm) error {
		tag := TagUserBase + 7
		if c.Rank() == 0 {
			return c.SendTo(1, tag, []byte("direct"))
		}
		m, err := c.RecvFrom(0, tag)
		if err != nil {
			return err
		}
		if string(m) != "direct" {
			return fmt.Errorf("got %q", m)
		}
		return nil
	})
}

func TestUserTagValidation(t *testing.T) {
	f, _ := transport.NewFabric(1)
	defer f.Close()
	c := New(f.Endpoint(0))
	if err := c.SendTo(0, 5, nil); err == nil {
		t.Fatal("low tag accepted by SendTo")
	}
	if _, err := c.RecvFrom(0, 5); err == nil {
		t.Fatal("low tag accepted by RecvFrom")
	}
}

func TestWireRoundTrips(t *testing.T) {
	f64 := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)}
	buf := wire.AppendFloat64s(nil, f64)
	out := make([]float64, len(f64))
	if off := wire.Float64s(buf, 0, len(f64), out); off != len(buf) {
		t.Fatalf("offset %d, want %d", off, len(buf))
	}
	for i := range f64 {
		if out[i] != f64[i] {
			t.Fatalf("float64 round trip: %v != %v", out[i], f64[i])
		}
	}

	f32 := []float32{0, 1.5, -7}
	buf = wire.AppendFloat32s(nil, f32)
	out32 := make([]float32, 3)
	wire.Float32s(buf, 0, 3, out32)
	for i := range f32 {
		if out32[i] != f32[i] {
			t.Fatal("float32 round trip failed")
		}
	}

	i32 := []int32{-1, 0, 1 << 30}
	buf = wire.AppendInt32s(nil, i32)
	outI := make([]int32, 3)
	wire.Int32s(buf, 0, 3, outI)
	for i := range i32 {
		if outI[i] != i32[i] {
			t.Fatal("int32 round trip failed")
		}
	}

	bools := []bool{true, false, true}
	buf = wire.AppendBools(nil, bools)
	outB := make([]bool, 3)
	wire.Bools(buf, 0, 3, outB)
	for i := range bools {
		if outB[i] != bools[i] {
			t.Fatal("bool round trip failed")
		}
	}
}

// TestAllGatherVariableLength checks the variable-length collective: each
// rank contributes a payload of a different size (including an empty one),
// and every rank must receive the identical rank-indexed list.
func TestAllGatherVariableLength(t *testing.T) {
	for _, size := range []int{1, 2, 5} {
		spmd(t, size, func(c *Comm) error {
			// Rank r contributes r bytes: rank 0's part is empty.
			mine := make([]byte, c.Rank())
			for i := range mine {
				mine[i] = byte(c.Rank()*100 + i)
			}
			parts, err := c.AllGather(mine)
			if err != nil {
				return err
			}
			if len(parts) != size {
				return fmt.Errorf("got %d parts, want %d", len(parts), size)
			}
			for r, p := range parts {
				if len(p) != r {
					return fmt.Errorf("part %d has %d bytes, want %d", r, len(p), r)
				}
				for i, b := range p {
					if want := byte(r*100 + i); b != want {
						return fmt.Errorf("part %d byte %d = %d, want %d", r, i, b, want)
					}
				}
			}
			return nil
		})
	}
}

// TestAllGatherInt32Sets round-trips the exact shape the store's write-set
// exchange uses: int32 id lists of uneven lengths.
func TestAllGatherInt32Sets(t *testing.T) {
	spmd(t, 3, func(c *Comm) error {
		var ids []int32
		for i := 0; i <= c.Rank(); i++ {
			ids = append(ids, int32(c.Rank()*1000+i))
		}
		if c.Rank() == 1 {
			ids = nil // a rank with nothing written contributes an empty set
		}
		parts, err := c.AllGather(wire.AppendInt32s(nil, ids))
		if err != nil {
			return err
		}
		var union []int32
		for _, p := range parts {
			got := make([]int32, len(p)/4)
			wire.Int32s(p, 0, len(got), got)
			union = append(union, got...)
		}
		want := []int32{0, 2000, 2001, 2002}
		if len(union) != len(want) {
			return fmt.Errorf("union %v, want %v", union, want)
		}
		for i := range want {
			if union[i] != want[i] {
				return fmt.Errorf("union %v, want %v", union, want)
			}
		}
		return nil
	})
}
