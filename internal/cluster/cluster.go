// Package cluster provides the MPI-style collectives the distributed engine
// is written against: Barrier, Bcast, Scatter, Gather, Reduce and AllReduce
// over any transport.Conn. The algorithms are flat (root-centric), which is
// the right trade for the ≤ 65-rank clusters of the paper and keeps the
// reduction order deterministic — partial results are always folded in rank
// order, so a distributed sum equals the sequential sum of the same parts.
//
// # Abort protocol
//
// The paper's collectives assume every rank stays healthy; ours do not. A
// rank that hits an unrecoverable error calls Comm.Abort, which broadcasts
// an abort control message on the transport's reserved tag and poisons the
// fabric. Every collective a peer is blocked in — Barrier, Bcast, Scatter,
// Gather, Reduce — then returns an error wrapping *AbortError (check with
// errors.As or transport.AsAbort) that names the failing rank and its cause,
// instead of blocking forever on a message that will never come. Aborting is
// one-way: a poisoned communicator stays dead, which is the right semantics
// for SG-MCMC — the caller restarts the run from a checkpoint rather than
// patching a half-finished iteration.
package cluster

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Tag layout: collectives consume the low tag space with a per-communicator
// sequence number; the DKV store and application messages live above
// TagUserBase. Because every rank issues collectives in the same program
// order, sequence numbers alone disambiguate concurrent operations.
const (
	tagCollectiveMask = 0x3fffffff
	// TagUserBase is the first tag value available to application protocols.
	TagUserBase uint32 = 0x40000000
)

// AbortError is the typed error every collective returns (wrapped; unwrap
// with errors.As) once the fabric has been aborted: Rank is the rank that
// called Abort, and Msg/Cause carry why. It is an alias for the transport's
// abort type so the error is the same object all the way down the stack.
type AbortError = transport.AbortError

// Comm is a communicator: a Conn plus collective sequencing.
type Comm struct {
	conn    transport.Conn
	labeler transport.PhaseLabeler // conn's phase hook, nil if uninstrumented
	tracer  *obs.Tracer            // span emission, nil when tracing is off
	seq     uint32
}

// New wraps a transport endpoint in a communicator.
func New(conn transport.Conn) *Comm {
	c := &Comm{conn: conn}
	c.labeler, _ = conn.(transport.PhaseLabeler)
	return c
}

// SetPhase labels the engine phase whose collectives run next, so an
// instrumented transport can attribute blocking-receive time to it
// (transport.wait.<phase> histograms) — the tag→phase half of straggler
// localisation. Every rank issues collectives in the same program order, so
// the label set at each stage boundary covers exactly that stage's tags. A
// no-op on uninstrumented transports.
func (c *Comm) SetPhase(name string) {
	if c.labeler != nil {
		c.labeler.SetPhase(name)
	}
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.conn.Rank() }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.conn.Size() }

// Conn exposes the underlying transport for application protocols (DKV).
func (c *Comm) Conn() transport.Conn { return c.conn }

func (c *Comm) nextTag() uint32 {
	c.seq++
	return c.seq & tagCollectiveMask
}

// SetTracer turns on span emission: each collective becomes a span under the
// engine's current scope (the running stage), and every blocking receive
// inside it becomes a child span naming the sender — the raw material of the
// critical-path walk. Like SetPhase, collectives are issued from a single
// goroutine per rank, so no synchronisation is needed around the field.
func (c *Comm) SetTracer(tr *obs.Tracer) { c.tracer = tr }

// beginOp opens a collective span and makes it the tracer scope, returning
// the closure that closes both; nil when tracing is off, so call sites stay
// a one-line guard: if end := c.beginOp(...); end != nil { defer end() }.
func (c *Comm) beginOp(name string, tag uint32) func() {
	tr := c.tracer
	if tr == nil {
		return nil
	}
	id := tr.NewID()
	parent := tr.SetScope(id)
	start := tr.Now()
	return func() {
		tr.Emit(obs.Span{
			ID: id, Parent: parent, Name: name, Cat: obs.CatCollective,
			Track: obs.TrackEngine, Peer: obs.NoPeer, Iter: tr.Iter(), Tag: tag,
			StartNS: start, DurNS: tr.Now() - start,
		})
		tr.SetScope(parent)
	}
}

// recv is conn.Recv plus a CatRecv span naming the sender — the blocked
// interval the critical-path analyzer follows from waiter to waited-on.
func (c *Comm) recv(from int, tag uint32) ([]byte, error) {
	tr := c.tracer
	if tr == nil {
		return c.conn.Recv(from, tag)
	}
	start := tr.Now()
	got, err := c.conn.Recv(from, tag)
	tr.Emit(obs.Span{
		ID: tr.NewID(), Parent: tr.Scope(), Name: "recv", Cat: obs.CatRecv,
		Track: obs.TrackEngine, Peer: from, Iter: tr.Iter(), Tag: tag,
		StartNS: start, DurNS: tr.Now() - start,
	})
	return got, err
}

// Abort declares this rank failed: the cause is broadcast on the reserved
// abort tag and the fabric is poisoned, so every peer blocked in (or later
// entering) a collective or receive returns an *AbortError naming this rank
// within bounded time instead of deadlocking. Safe to call multiple times;
// the first abort to reach each endpoint wins.
func (c *Comm) Abort(cause error) {
	c.conn.Poison(cause)
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	tag := c.nextTag()
	if end := c.beginOp("barrier", tag); end != nil {
		defer end()
	}
	if c.Rank() == 0 {
		for r := 1; r < c.Size(); r++ {
			if _, err := c.recv(r, tag); err != nil {
				return fmt.Errorf("cluster: barrier gather: %w", err)
			}
		}
		for r := 1; r < c.Size(); r++ {
			if err := c.conn.Send(r, tag, nil); err != nil {
				return fmt.Errorf("cluster: barrier release: %w", err)
			}
		}
		return nil
	}
	if err := c.conn.Send(0, tag, nil); err != nil {
		return fmt.Errorf("cluster: barrier enter: %w", err)
	}
	if _, err := c.recv(0, tag); err != nil {
		return fmt.Errorf("cluster: barrier wait: %w", err)
	}
	return nil
}

// Bcast distributes root's data to every rank and returns it. Non-root
// callers pass nil. The same data slice is handed to every Send — safe
// because the transport's ownership contract guarantees each receiver gets
// a private copy (see the transport package docs); receivers may mutate
// their result freely.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	tag := c.nextTag()
	if end := c.beginOp("bcast", tag); end != nil {
		defer end()
	}
	if c.Rank() == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.conn.Send(r, tag, data); err != nil {
				return nil, fmt.Errorf("cluster: bcast to %d: %w", r, err)
			}
		}
		return data, nil
	}
	got, err := c.recv(root, tag)
	if err != nil {
		return nil, fmt.Errorf("cluster: bcast recv: %w", err)
	}
	return got, nil
}

// Gather collects each rank's data at root. At root the result has Size
// entries indexed by rank (root's own entry is its argument, unsent); other
// ranks get nil.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	tag := c.nextTag()
	if end := c.beginOp("gather", tag); end != nil {
		defer end()
	}
	if c.Rank() == root {
		out := make([][]byte, c.Size())
		out[root] = data
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			got, err := c.recv(r, tag)
			if err != nil {
				return nil, fmt.Errorf("cluster: gather from %d: %w", r, err)
			}
			out[r] = got
		}
		return out, nil
	}
	if err := c.conn.Send(root, tag, data); err != nil {
		return nil, fmt.Errorf("cluster: gather send: %w", err)
	}
	return nil, nil
}

// AllGather collects every rank's variable-length payload at every rank:
// the result has Size entries indexed by rank and is identical everywhere
// (this rank's own entry is its argument, byte for byte). It is built from
// the same root-centric tag protocol as the other collectives — a Gather at
// rank 0 followed by a Bcast of the length-framed concatenation — so it
// inherits their abort semantics and their deterministic rank ordering.
// Empty contributions are legal and come back as empty slices; the store's
// cross-iteration write-set exchange leans on that (most barriers follow a
// read-only phase).
func (c *Comm) AllGather(data []byte) ([][]byte, error) {
	parts, err := c.Gather(0, data)
	if err != nil {
		return nil, err
	}
	var frame []byte
	if c.Rank() == 0 {
		n := 4
		for _, p := range parts {
			n += 4 + len(p)
		}
		frame = wire.AppendUint32(make([]byte, 0, n), uint32(len(parts)))
		for _, p := range parts {
			frame = wire.AppendUint32(frame, uint32(len(p)))
			frame = append(frame, p...)
		}
	}
	frame, err = c.Bcast(0, frame)
	if err != nil {
		return nil, err
	}
	if len(frame) < 4 {
		return nil, fmt.Errorf("cluster: allgather frame truncated (%d bytes)", len(frame))
	}
	count := int(wire.Uint32At(frame, 0))
	if count != c.Size() {
		return nil, fmt.Errorf("cluster: allgather frame carries %d parts for %d ranks", count, c.Size())
	}
	out := make([][]byte, count)
	off := 4
	for r := 0; r < count; r++ {
		if off+4 > len(frame) {
			return nil, fmt.Errorf("cluster: allgather frame truncated at part %d", r)
		}
		ln := int(wire.Uint32At(frame, off))
		off += 4
		if ln < 0 || off+ln > len(frame) {
			return nil, fmt.Errorf("cluster: allgather part %d overruns the frame", r)
		}
		out[r] = frame[off : off+ln : off+ln]
		off += ln
	}
	return out, nil
}

// Scatter distributes parts[r] to rank r from root and returns this rank's
// part. Non-root callers pass nil. len(parts) must equal Size at root.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	tag := c.nextTag()
	if end := c.beginOp("scatter", tag); end != nil {
		defer end()
	}
	if c.Rank() == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("cluster: scatter with %d parts for %d ranks", len(parts), c.Size())
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.conn.Send(r, tag, parts[r]); err != nil {
				return nil, fmt.Errorf("cluster: scatter to %d: %w", r, err)
			}
		}
		return parts[root], nil
	}
	got, err := c.recv(root, tag)
	if err != nil {
		return nil, fmt.Errorf("cluster: scatter recv: %w", err)
	}
	return got, nil
}

// ReduceSum element-wise sums each rank's vec at root (folding in rank
// order) and returns the total there; other ranks get nil. All ranks must
// pass vectors of identical length.
func (c *Comm) ReduceSum(root int, vec []float64) ([]float64, error) {
	payload := wire.AppendFloat64s(make([]byte, 0, 8*len(vec)), vec)
	parts, err := c.Gather(root, payload)
	if err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, nil
	}
	total := make([]float64, len(vec))
	tmp := make([]float64, len(vec))
	for r, p := range parts {
		if len(p) != 8*len(vec) {
			return nil, fmt.Errorf("cluster: reduce part from rank %d has %d bytes, want %d", r, len(p), 8*len(vec))
		}
		wire.Float64s(p, 0, len(vec), tmp)
		for i, v := range tmp {
			total[i] += v
		}
	}
	return total, nil
}

// AllReduceSum is ReduceSum at rank 0 followed by a broadcast; every rank
// receives the identical total (bit-identical, since the fold happens once).
func (c *Comm) AllReduceSum(vec []float64) ([]float64, error) {
	total, err := c.ReduceSum(0, vec)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if c.Rank() == 0 {
		payload = wire.AppendFloat64s(make([]byte, 0, 8*len(vec)), total)
	}
	payload, err = c.Bcast(0, payload)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vec))
	wire.Float64s(payload, 0, len(vec), out)
	return out, nil
}

// SendTo sends an application-level message (tag must be >= TagUserBase).
func (c *Comm) SendTo(to int, tag uint32, payload []byte) error {
	if tag < TagUserBase {
		return fmt.Errorf("cluster: application tag %#x below TagUserBase", tag)
	}
	return c.conn.Send(to, tag, payload)
}

// RecvFrom receives an application-level message.
func (c *Comm) RecvFrom(from int, tag uint32) ([]byte, error) {
	if tag < TagUserBase {
		return nil, fmt.Errorf("cluster: application tag %#x below TagUserBase", tag)
	}
	return c.conn.Recv(from, tag)
}
