package cluster

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/transport"
)

// benchComms wires an in-process communicator set for collective benchmarks.
func benchComms(b *testing.B, size int) []*Comm {
	b.Helper()
	f, err := transport.NewFabric(size)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Close)
	comms := make([]*Comm, size)
	for r := 0; r < size; r++ {
		comms[r] = New(f.Endpoint(r))
	}
	return comms
}

// runCollective drives all ranks through b.N rounds of op concurrently.
func runCollective(b *testing.B, comms []*Comm, op func(c *Comm) error) {
	b.Helper()
	var wg sync.WaitGroup
	for _, c := range comms {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if err := op(c); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// BenchmarkBarrier measures the phase-separation primitive; the engine
// issues two per iteration.
func BenchmarkBarrier(b *testing.B) {
	for _, size := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", size), func(b *testing.B) {
			comms := benchComms(b, size)
			b.ResetTimer()
			runCollective(b, comms, func(c *Comm) error { return c.Barrier() })
		})
	}
}

// BenchmarkAllReduce measures the θ-broadcast-sized reduction.
func BenchmarkAllReduce(b *testing.B) {
	for _, dim := range []int{128, 2048} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			comms := benchComms(b, 4)
			vec := make([]float64, dim)
			b.SetBytes(int64(8 * dim))
			b.ResetTimer()
			runCollective(b, comms, func(c *Comm) error {
				_, err := c.AllReduceSum(vec)
				return err
			})
		})
	}
}

// BenchmarkScatter measures minibatch-deployment-sized scatters.
func BenchmarkScatter(b *testing.B) {
	comms := benchComms(b, 4)
	parts := make([][]byte, 4)
	for i := range parts {
		parts[i] = make([]byte, 64<<10)
	}
	b.SetBytes(4 * 64 << 10)
	b.ResetTimer()
	runCollective(b, comms, func(c *Comm) error {
		var err error
		if c.Rank() == 0 {
			_, err = c.Scatter(0, parts)
		} else {
			_, err = c.Scatter(0, nil)
		}
		return err
	})
}
