package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// TestCollectivesFailAfterClose: a dead fabric must surface as errors from
// every collective, never as a hang — the engine's per-rank error paths
// depend on it.
func TestCollectivesFailAfterClose(t *testing.T) {
	f, err := transport.NewFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]*Comm, 3)
	for r := 0; r < 3; r++ {
		comms[r] = New(f.Endpoint(r))
	}
	f.Close()

	type op struct {
		name string
		fn   func(c *Comm) error
	}
	ops := []op{
		{"barrier", func(c *Comm) error { return c.Barrier() }},
		{"bcast", func(c *Comm) error { _, err := c.Bcast(0, []byte("x")); return err }},
		{"gather", func(c *Comm) error { _, err := c.Gather(0, []byte("x")); return err }},
		{"reduce", func(c *Comm) error { _, err := c.ReduceSum(0, []float64{1}); return err }},
	}
	for _, o := range ops {
		done := make(chan error, 1)
		go func() { done <- o.fn(comms[0]) }()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%s on closed fabric returned nil", o.name)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s hung on closed fabric", o.name)
		}
	}
}

// TestAbortReleasesBarrier is the core of the abort protocol: ranks blocked
// in a collective must return a typed AbortError naming the failing rank —
// not hang — when a peer calls Abort.
func TestAbortReleasesBarrier(t *testing.T) {
	f, err := transport.NewFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	comms := make([]*Comm, 3)
	for r := 0; r < 3; r++ {
		comms[r] = New(f.Endpoint(r))
	}

	// Ranks 0 and 2 enter the barrier; rank 1 never does — it fails.
	results := make(chan error, 2)
	for _, r := range []int{0, 2} {
		go func(r int) { results <- comms[r].Barrier() }(r)
	}
	time.Sleep(20 * time.Millisecond)
	cause := errors.New("rank 1 exploded")
	comms[1].Abort(cause)

	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			var ae *AbortError
			if !errors.As(err, &ae) {
				t.Fatalf("barrier error %v is not an AbortError", err)
			}
			if ae.Rank != 1 {
				t.Fatalf("abort names rank %d, want 1", ae.Rank)
			}
			if ae.Msg != cause.Error() {
				t.Fatalf("abort message %q, want %q", ae.Msg, cause.Error())
			}
		case <-time.After(5 * time.Second):
			t.Fatal("barrier still blocked after Abort")
		}
	}
}

// TestAbortReleasesEveryCollective: the same guarantee for each collective
// shape (send-then-recv, recv-only, gather fan-in).
func TestAbortReleasesEveryCollective(t *testing.T) {
	type op struct {
		name string
		fn   func(c *Comm) error
	}
	ops := []op{
		{"barrier", func(c *Comm) error { return c.Barrier() }},
		{"bcast-recv", func(c *Comm) error { _, err := c.Bcast(0, nil); return err }},
		{"scatter-recv", func(c *Comm) error { _, err := c.Scatter(0, nil); return err }},
		{"gather-root", func(c *Comm) error { _, err := c.Gather(1, []byte("x")); return err }},
		{"allreduce", func(c *Comm) error { _, err := c.AllReduceSum([]float64{1}); return err }},
	}
	for _, o := range ops {
		t.Run(o.name, func(t *testing.T) {
			f, err := transport.NewFabric(2)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			c0, c1 := New(f.Endpoint(0)), New(f.Endpoint(1))
			done := make(chan error, 1)
			go func() { done <- o.fn(c1) }()
			time.Sleep(10 * time.Millisecond)
			c0.Abort(fmt.Errorf("abort during %s", o.name))
			select {
			case err := <-done:
				var ae *AbortError
				if !errors.As(err, &ae) || ae.Rank != 0 {
					t.Fatalf("%s error %v, want AbortError from rank 0", o.name, err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%s still blocked after Abort", o.name)
			}
		})
	}
}

// TestBcastBuffersDoNotAlias pins down the transport ownership contract at
// the collective level: Bcast hands the same data slice to every Send, so a
// receiver mutating its copy must not corrupt the root's buffer or another
// rank's copy.
func TestBcastBuffersDoNotAlias(t *testing.T) {
	const ranks = 3
	f, err := transport.NewFabric(ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	comms := make([]*Comm, ranks)
	for r := range comms {
		comms[r] = New(f.Endpoint(r))
	}
	rootData := []byte("the one true payload")
	orig := append([]byte(nil), rootData...)

	got := make([][]byte, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var data []byte
			if r == 0 {
				data = rootData
			}
			out, err := comms[r].Bcast(0, data)
			if err != nil {
				t.Errorf("rank %d bcast: %v", r, err)
				return
			}
			got[r] = out
		}(r)
	}
	wg.Wait()

	// Rank 1 scribbles over its received buffer.
	for i := range got[1] {
		got[1][i] = '!'
	}
	if !bytes.Equal(rootData, orig) {
		t.Fatalf("root's buffer corrupted by rank 1's mutation: %q", rootData)
	}
	if !bytes.Equal(got[2], orig) {
		t.Fatalf("rank 2's buffer corrupted by rank 1's mutation: %q", got[2])
	}
}

// TestNonRootScatterOnClosedFabric covers the receive side.
func TestNonRootScatterOnClosedFabric(t *testing.T) {
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	c1 := New(f.Endpoint(1))
	f.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c1.Scatter(0, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("scatter recv on closed fabric returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scatter recv hung")
	}
}
