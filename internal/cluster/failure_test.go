package cluster

import (
	"testing"
	"time"

	"repro/internal/transport"
)

// TestCollectivesFailAfterClose: a dead fabric must surface as errors from
// every collective, never as a hang — the engine's per-rank error paths
// depend on it.
func TestCollectivesFailAfterClose(t *testing.T) {
	f, err := transport.NewFabric(3)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]*Comm, 3)
	for r := 0; r < 3; r++ {
		comms[r] = New(f.Endpoint(r))
	}
	f.Close()

	type op struct {
		name string
		fn   func(c *Comm) error
	}
	ops := []op{
		{"barrier", func(c *Comm) error { return c.Barrier() }},
		{"bcast", func(c *Comm) error { _, err := c.Bcast(0, []byte("x")); return err }},
		{"gather", func(c *Comm) error { _, err := c.Gather(0, []byte("x")); return err }},
		{"reduce", func(c *Comm) error { _, err := c.ReduceSum(0, []float64{1}); return err }},
	}
	for _, o := range ops {
		done := make(chan error, 1)
		go func() { done <- o.fn(comms[0]) }()
		select {
		case err := <-done:
			if err == nil {
				t.Errorf("%s on closed fabric returned nil", o.name)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s hung on closed fabric", o.name)
		}
	}
}

// TestNonRootScatterOnClosedFabric covers the receive side.
func TestNonRootScatterOnClosedFabric(t *testing.T) {
	f, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	c1 := New(f.Endpoint(1))
	f.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c1.Scatter(0, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("scatter recv on closed fabric returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scatter recv hung")
	}
}
