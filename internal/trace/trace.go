// Package trace provides the lightweight phase timing used to produce the
// paper's per-stage breakdowns (Figure 1's phase curves and Table III).
// Timers are cumulative per phase name; the distributed engine keeps one
// Phases per rank and aggregates at the end of a run.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phases accumulates wall-clock time per named phase.
type Phases struct {
	mu     sync.Mutex
	totals map[string]time.Duration
	counts map[string]int
}

// NewPhases creates an empty accumulator.
func NewPhases() *Phases {
	return &Phases{totals: map[string]time.Duration{}, counts: map[string]int{}}
}

// Add folds a measured duration into a phase.
func (p *Phases) Add(name string, d time.Duration) {
	p.mu.Lock()
	p.totals[name] += d
	p.counts[name]++
	p.mu.Unlock()
}

// Timer starts timing a phase; invoke the returned func to stop and record.
//
//	defer phases.Timer("update_phi")()
func (p *Phases) Timer(name string) func() {
	start := time.Now()
	return func() { p.Add(name, time.Since(start)) }
}

// Total returns the cumulative time of a phase.
func (p *Phases) Total(name string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals[name]
}

// Count returns how many intervals were recorded for a phase.
func (p *Phases) Count(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[name]
}

// Mean returns the average interval length of a phase (0 if never recorded).
func (p *Phases) Mean(name string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.counts[name]
	if c == 0 {
		return 0
	}
	return p.totals[name] / time.Duration(c)
}

// Names returns the recorded phase names, sorted.
func (p *Phases) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.totals))
	for n := range p.totals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the totals map.
func (p *Phases) Snapshot() map[string]time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]time.Duration, len(p.totals))
	for k, v := range p.totals {
		out[k] = v
	}
	return out
}

// Merge folds another accumulator's totals into this one, taking the MAX per
// phase — the right aggregation across ranks, where the slowest rank bounds
// the barrier-separated phase.
func (p *Phases) Merge(other map[string]time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range other {
		if v > p.totals[k] {
			p.totals[k] = v
		}
	}
}

// Table renders a per-iteration breakdown like the paper's Table III:
// phase name and milliseconds per iteration, given the iteration count.
func (p *Phases) Table(iterations int) string {
	if iterations < 1 {
		iterations = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s\n", "stage", "ms/iter")
	for _, name := range p.Names() {
		ms := float64(p.Total(name).Microseconds()) / 1000 / float64(iterations)
		fmt.Fprintf(&b, "%-28s %12.3f\n", name, ms)
	}
	return b.String()
}
