// Package trace provides the lightweight phase timing used to produce the
// paper's per-stage breakdowns (Figure 1's phase curves and Table III).
// Timers are cumulative per phase name; the distributed engine keeps one
// Phases per rank and aggregates at the end of a run.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phases accumulates wall-clock time per named phase, tracking the total,
// the interval count, and the shortest/longest single interval.
type Phases struct {
	mu     sync.Mutex
	totals map[string]time.Duration
	counts map[string]int
	mins   map[string]time.Duration
	maxs   map[string]time.Duration
}

// NewPhases creates an empty accumulator.
func NewPhases() *Phases {
	return &Phases{
		totals: map[string]time.Duration{},
		counts: map[string]int{},
		mins:   map[string]time.Duration{},
		maxs:   map[string]time.Duration{},
	}
}

// Add folds a measured duration into a phase.
func (p *Phases) Add(name string, d time.Duration) {
	p.mu.Lock()
	p.totals[name] += d
	if c := p.counts[name]; c == 0 || d < p.mins[name] {
		p.mins[name] = d
	}
	if d > p.maxs[name] {
		p.maxs[name] = d
	}
	p.counts[name]++
	p.mu.Unlock()
}

// Timer starts timing a phase; invoke the returned func to stop and record.
//
//	defer phases.Timer("update_phi")()
func (p *Phases) Timer(name string) func() {
	start := time.Now()
	return func() { p.Add(name, time.Since(start)) }
}

// Total returns the cumulative time of a phase.
func (p *Phases) Total(name string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals[name]
}

// Count returns how many intervals were recorded for a phase.
func (p *Phases) Count(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts[name]
}

// Mean returns the average interval length of a phase (0 if never recorded).
func (p *Phases) Mean(name string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.counts[name]
	if c == 0 {
		return 0
	}
	return p.totals[name] / time.Duration(c)
}

// Min returns the shortest single interval recorded for a phase (0 if never
// recorded).
func (p *Phases) Min(name string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mins[name]
}

// Max returns the longest single interval recorded for a phase.
func (p *Phases) Max(name string) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.maxs[name]
}

// Names returns the recorded phase names, sorted.
func (p *Phases) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.totals))
	for n := range p.totals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the totals map.
func (p *Phases) Snapshot() map[string]time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]time.Duration, len(p.totals))
	for k, v := range p.totals {
		out[k] = v
	}
	return out
}

// Merge folds another accumulator's totals into this one, taking the MAX per
// phase — the right aggregation across ranks, where the slowest rank bounds
// the barrier-separated phase. Merge only sees totals, so it cannot keep the
// interval counts coherent; cross-rank aggregation that needs Count/Mean to
// stay meaningful should use MergeAll with a full Stats snapshot.
func (p *Phases) Merge(other map[string]time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, v := range other {
		if v > p.totals[k] {
			p.totals[k] = v
		}
	}
}

// PhaseStats is the full per-phase record: cumulative total, number of
// recorded intervals, and the shortest/longest single interval.
type PhaseStats struct {
	Total time.Duration
	Count int
	Min   time.Duration
	Max   time.Duration
}

// Stats returns a full snapshot of every phase.
func (p *Phases) Stats() map[string]PhaseStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]PhaseStats, len(p.totals))
	for k, total := range p.totals {
		out[k] = PhaseStats{Total: total, Count: p.counts[k], Min: p.mins[k], Max: p.maxs[k]}
	}
	return out
}

// MergeAll folds a full per-rank snapshot into this accumulator with
// coherent counts: totals take the max (the slowest rank bounds the
// barrier-separated phase), counts take the max interval count (ranks run
// the same iteration count, so this is the shared count rather than a stale
// zero — the defect Merge has), mins take the min and maxs the max, so
// Min/Max still bound every single interval seen on any rank.
func (p *Phases) MergeAll(other map[string]PhaseStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, s := range other {
		if s.Total > p.totals[k] {
			p.totals[k] = s.Total
		}
		if s.Count > p.counts[k] {
			p.counts[k] = s.Count
		}
		if s.Count > 0 {
			if m, ok := p.mins[k]; !ok || s.Min < m {
				p.mins[k] = s.Min
			}
		}
		if s.Max > p.maxs[k] {
			p.maxs[k] = s.Max
		}
	}
}

// Table renders a per-iteration breakdown like the paper's Table III:
// phase name and milliseconds per iteration, given the iteration count.
func (p *Phases) Table(iterations int) string {
	if iterations < 1 {
		iterations = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s\n", "stage", "ms/iter")
	for _, name := range p.Names() {
		ms := float64(p.Total(name).Microseconds()) / 1000 / float64(iterations)
		fmt.Fprintf(&b, "%-28s %12.3f\n", name, ms)
	}
	return b.String()
}
