package trace

import (
	"strings"
	"testing"
	"time"
)

func TestAddAndTotals(t *testing.T) {
	p := NewPhases()
	p.Add("a", 10*time.Millisecond)
	p.Add("a", 20*time.Millisecond)
	p.Add("b", 5*time.Millisecond)
	if p.Total("a") != 30*time.Millisecond {
		t.Fatalf("Total(a) = %v", p.Total("a"))
	}
	if p.Count("a") != 2 || p.Count("b") != 1 {
		t.Fatal("counts wrong")
	}
	if p.Mean("a") != 15*time.Millisecond {
		t.Fatalf("Mean(a) = %v", p.Mean("a"))
	}
	if p.Mean("missing") != 0 {
		t.Fatal("Mean of missing phase should be 0")
	}
}

func TestTimer(t *testing.T) {
	p := NewPhases()
	stop := p.Timer("x")
	time.Sleep(5 * time.Millisecond)
	stop()
	if p.Total("x") < 4*time.Millisecond {
		t.Fatalf("Timer recorded %v", p.Total("x"))
	}
}

func TestNamesSorted(t *testing.T) {
	p := NewPhases()
	p.Add("zeta", 1)
	p.Add("alpha", 1)
	p.Add("mid", 1)
	names := p.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Fatalf("Names = %v", names)
	}
}

func TestMergeTakesMax(t *testing.T) {
	p := NewPhases()
	p.Add("a", 10*time.Millisecond)
	p.Merge(map[string]time.Duration{"a": 5 * time.Millisecond, "b": 7 * time.Millisecond})
	if p.Total("a") != 10*time.Millisecond {
		t.Fatal("Merge lowered an existing phase")
	}
	if p.Total("b") != 7*time.Millisecond {
		t.Fatal("Merge dropped a new phase")
	}
	p.Merge(map[string]time.Duration{"a": 30 * time.Millisecond})
	if p.Total("a") != 30*time.Millisecond {
		t.Fatal("Merge did not take max")
	}
}

func TestMinMax(t *testing.T) {
	p := NewPhases()
	p.Add("a", 10*time.Millisecond)
	p.Add("a", 2*time.Millisecond)
	p.Add("a", 7*time.Millisecond)
	if p.Min("a") != 2*time.Millisecond || p.Max("a") != 10*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v, want 2ms/10ms", p.Min("a"), p.Max("a"))
	}
	if p.Min("missing") != 0 || p.Max("missing") != 0 {
		t.Fatal("Min/Max of missing phase should be 0")
	}
}

func TestStatsSnapshot(t *testing.T) {
	p := NewPhases()
	p.Add("a", 4*time.Millisecond)
	p.Add("a", 6*time.Millisecond)
	s := p.Stats()["a"]
	want := PhaseStats{Total: 10 * time.Millisecond, Count: 2, Min: 4 * time.Millisecond, Max: 6 * time.Millisecond}
	if s != want {
		t.Fatalf("Stats = %+v, want %+v", s, want)
	}
}

// TestMergeAllKeepsCountsCoherent pins the defect MergeAll exists to fix:
// Merge takes max totals but leaves counts at zero, so Mean on the merged
// accumulator is meaningless; MergeAll carries counts (and min/max) along.
func TestMergeAllKeepsCountsCoherent(t *testing.T) {
	rank0, rank1 := NewPhases(), NewPhases()
	for i := 0; i < 4; i++ {
		rank0.Add("update_phi", 10*time.Millisecond)
		rank1.Add("update_phi", 20*time.Millisecond)
	}
	rank1.Add("barrier_only", time.Millisecond)

	merged := NewPhases()
	merged.MergeAll(rank0.Stats())
	merged.MergeAll(rank1.Stats())

	if got := merged.Total("update_phi"); got != 80*time.Millisecond {
		t.Errorf("merged total = %v, want 80ms (max across ranks)", got)
	}
	if got := merged.Count("update_phi"); got != 4 {
		t.Errorf("merged count = %d, want 4", got)
	}
	if got := merged.Mean("update_phi"); got != 20*time.Millisecond {
		t.Errorf("merged mean = %v, want 20ms", got)
	}
	if merged.Min("update_phi") != 10*time.Millisecond || merged.Max("update_phi") != 20*time.Millisecond {
		t.Errorf("merged min/max = %v/%v, want 10ms/20ms",
			merged.Min("update_phi"), merged.Max("update_phi"))
	}
	if merged.Count("barrier_only") != 1 {
		t.Errorf("phase present on one rank only lost its count")
	}

	// The old Merge path, by contrast, leaves the count stale — that is the
	// documented reason MergeAll exists.
	old := NewPhases()
	old.Merge(rank0.Snapshot())
	if old.Count("update_phi") != 0 {
		t.Fatal("Merge now carries counts; update MergeAll's doc comment")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	p := NewPhases()
	p.Add("a", time.Second)
	snap := p.Snapshot()
	snap["a"] = 0
	if p.Total("a") != time.Second {
		t.Fatal("Snapshot aliases internal state")
	}
}

func TestTable(t *testing.T) {
	p := NewPhases()
	p.Add("update_phi", 100*time.Millisecond)
	out := p.Table(10)
	if !strings.Contains(out, "update_phi") || !strings.Contains(out, "10.000") {
		t.Fatalf("Table output wrong:\n%s", out)
	}
	// Zero iterations must not divide by zero.
	_ = p.Table(0)
}

func TestConcurrentAdd(t *testing.T) {
	p := NewPhases()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				p.Add("x", time.Microsecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if p.Count("x") != 8000 {
		t.Fatalf("Count = %d, want 8000", p.Count("x"))
	}
}
