// Package wire provides the binary encoding helpers shared by the cluster
// collectives and the distributed key-value store. Everything is
// little-endian and length-unprefixed: framing is the transport's job, and
// the callers always know the element counts from protocol context.
package wire

import (
	"encoding/binary"
	"math"
)

// AppendUint32 appends v to buf.
func AppendUint32(buf []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(buf, tmp[:]...)
}

// Uint32At reads a uint32 at byte offset off.
func Uint32At(buf []byte, off int) uint32 {
	return binary.LittleEndian.Uint32(buf[off:])
}

// AppendUint64 appends v to buf.
func AppendUint64(buf []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(buf, tmp[:]...)
}

// Uint64At reads a uint64 at byte offset off.
func Uint64At(buf []byte, off int) uint64 {
	return binary.LittleEndian.Uint64(buf[off:])
}

// AppendFloat64s appends the IEEE-754 encoding of each value.
func AppendFloat64s(buf []byte, vals []float64) []byte {
	for _, v := range vals {
		buf = AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// Float64s decodes count float64 values starting at byte offset off into
// dst, which must have length >= count. It returns the offset past the data.
func Float64s(buf []byte, off, count int, dst []float64) int {
	for i := 0; i < count; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return off
}

// AppendFloat32s appends the IEEE-754 encoding of each value.
func AppendFloat32s(buf []byte, vals []float32) []byte {
	for _, v := range vals {
		buf = AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// Float32s decodes count float32 values starting at offset off into dst and
// returns the offset past the data.
func Float32s(buf []byte, off, count int, dst []float32) int {
	for i := 0; i < count; i++ {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return off
}

// AppendInt32s appends each value as a uint32.
func AppendInt32s(buf []byte, vals []int32) []byte {
	for _, v := range vals {
		buf = AppendUint32(buf, uint32(v))
	}
	return buf
}

// Int32s decodes count int32 values starting at offset off into dst and
// returns the offset past the data.
func Int32s(buf []byte, off, count int, dst []int32) int {
	for i := 0; i < count; i++ {
		dst[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
	}
	return off
}

// AppendBools appends each value as one byte.
func AppendBools(buf []byte, vals []bool) []byte {
	for _, v := range vals {
		b := byte(0)
		if v {
			b = 1
		}
		buf = append(buf, b)
	}
	return buf
}

// Bools decodes count bools starting at offset off into dst and returns the
// offset past the data.
func Bools(buf []byte, off, count int, dst []bool) int {
	for i := 0; i < count; i++ {
		dst[i] = buf[off] != 0
		off++
	}
	return off
}
