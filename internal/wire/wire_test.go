package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUint32RoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		var buf []byte
		for _, v := range vals {
			buf = AppendUint32(buf, v)
		}
		for i, v := range vals {
			if Uint32At(buf, 4*i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		var buf []byte
		for _, v := range vals {
			buf = AppendUint64(buf, v)
		}
		for i, v := range vals {
			if Uint64At(buf, 8*i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64RoundTripQuick(t *testing.T) {
	f := func(vals []float64) bool {
		buf := AppendFloat64s(nil, vals)
		out := make([]float64, len(vals))
		if off := Float64s(buf, 0, len(vals), out); off != len(buf) {
			return false
		}
		for i, v := range vals {
			// NaN compares unequal to itself; compare bit patterns.
			if math.Float64bits(out[i]) != math.Float64bits(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32RoundTripQuick(t *testing.T) {
	f := func(vals []float32) bool {
		buf := AppendFloat32s(nil, vals)
		out := make([]float32, len(vals))
		Float32s(buf, 0, len(vals), out)
		for i, v := range vals {
			if math.Float32bits(out[i]) != math.Float32bits(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt32RoundTripQuick(t *testing.T) {
	f := func(vals []int32) bool {
		buf := AppendInt32s(nil, vals)
		out := make([]int32, len(vals))
		Int32s(buf, 0, len(vals), out)
		for i, v := range vals {
			if out[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolsRoundTripQuick(t *testing.T) {
	f := func(vals []bool) bool {
		buf := AppendBools(nil, vals)
		out := make([]bool, len(vals))
		Bools(buf, 0, len(vals), out)
		for i, v := range vals {
			if out[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixedLayout(t *testing.T) {
	// A frame mixing all types, decoded field by field as the protocols do.
	buf := AppendUint32(nil, 7)
	buf = AppendInt32s(buf, []int32{-1, 2})
	buf = AppendFloat64s(buf, []float64{3.5})
	buf = AppendBools(buf, []bool{true})
	buf = AppendUint64(buf, 1<<40)

	if Uint32At(buf, 0) != 7 {
		t.Fatal("uint32 field wrong")
	}
	ints := make([]int32, 2)
	off := Int32s(buf, 4, 2, ints)
	if ints[0] != -1 || ints[1] != 2 {
		t.Fatal("int32 fields wrong")
	}
	f64 := make([]float64, 1)
	off = Float64s(buf, off, 1, f64)
	if f64[0] != 3.5 {
		t.Fatal("float64 field wrong")
	}
	bools := make([]bool, 1)
	off = Bools(buf, off, 1, bools)
	if !bools[0] {
		t.Fatal("bool field wrong")
	}
	if Uint64At(buf, off) != 1<<40 {
		t.Fatal("uint64 field wrong")
	}
}
