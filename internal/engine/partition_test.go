package engine

import "testing"

func TestSplitEven(t *testing.T) {
	cases := []struct {
		name     string
		n, parts int
	}{
		{"n=0", 0, 3},
		{"single item", 1, 3},
		{"parts > n", 4, 8},
		{"parts = n", 5, 5},
		{"uneven", 7, 3},
		{"one part", 100, 1},
		{"large", 1000, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prevHi := 0
			for r := 0; r < tc.parts; r++ {
				lo, hi := SplitEven(tc.n, tc.parts, r)
				if lo != prevHi {
					t.Fatalf("rank %d: lo %d != previous hi %d (gap or overlap)", r, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("rank %d: hi %d < lo %d", r, hi, lo)
				}
				if hi-lo > tc.n/tc.parts+1 {
					t.Fatalf("rank %d: part size %d too uneven for n=%d parts=%d", r, hi-lo, tc.n, tc.parts)
				}
				prevHi = hi
			}
			if prevHi != tc.n {
				t.Fatalf("parts tile [0,%d) but end at %d", tc.n, prevHi)
			}
		})
	}
}

func TestSplitChunkAligned(t *testing.T) {
	cases := []struct {
		name            string
		n, chunk, parts int
	}{
		{"n=0", 0, 64, 4},
		{"n < chunk", 63, 64, 4},
		{"n = chunk", 64, 64, 4},
		{"chunk not dividing n", 65, 64, 4},
		{"parts > chunks", 100, 64, 8},
		{"many chunks", 1000, 64, 4},
		{"chunk=1 degenerates to SplitEven", 17, 1, 3},
		{"exact multiple", 256, 64, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prevHi := 0
			for r := 0; r < tc.parts; r++ {
				lo, hi := SplitChunkAligned(tc.n, tc.chunk, tc.parts, r)
				if lo != prevHi {
					t.Fatalf("rank %d: lo %d != previous hi %d (ranges must tile [0,n))", r, lo, prevHi)
				}
				if lo%tc.chunk != 0 && lo != tc.n {
					t.Fatalf("rank %d: lo %d not a chunk boundary", r, lo)
				}
				if hi%tc.chunk != 0 && hi != tc.n {
					t.Fatalf("rank %d: hi %d not a chunk boundary", r, hi)
				}
				prevHi = hi
			}
			if prevHi != tc.n {
				t.Fatalf("ranges cover [0,%d) but end at %d", tc.n, prevHi)
			}
		})
	}

	// chunk=1 must agree with SplitEven exactly.
	for r := 0; r < 3; r++ {
		elo, ehi := SplitEven(17, 3, r)
		clo, chi := SplitChunkAligned(17, 1, 3, r)
		if elo != clo || ehi != chi {
			t.Fatalf("rank %d: chunk=1 split (%d,%d) != SplitEven (%d,%d)", r, clo, chi, elo, ehi)
		}
	}
}
