package engine

import (
	"testing"

	"repro/internal/mathx"
)

func TestSplitEven(t *testing.T) {
	cases := []struct {
		name     string
		n, parts int
	}{
		{"n=0", 0, 3},
		{"single item", 1, 3},
		{"parts > n", 4, 8},
		{"parts = n", 5, 5},
		{"uneven", 7, 3},
		{"one part", 100, 1},
		{"large", 1000, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prevHi := 0
			for r := 0; r < tc.parts; r++ {
				lo, hi := SplitEven(tc.n, tc.parts, r)
				if lo != prevHi {
					t.Fatalf("rank %d: lo %d != previous hi %d (gap or overlap)", r, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("rank %d: hi %d < lo %d", r, hi, lo)
				}
				if hi-lo > tc.n/tc.parts+1 {
					t.Fatalf("rank %d: part size %d too uneven for n=%d parts=%d", r, hi-lo, tc.n, tc.parts)
				}
				prevHi = hi
			}
			if prevHi != tc.n {
				t.Fatalf("parts tile [0,%d) but end at %d", tc.n, prevHi)
			}
		})
	}
}

func TestSplitChunkAligned(t *testing.T) {
	cases := []struct {
		name            string
		n, chunk, parts int
	}{
		{"n=0", 0, 64, 4},
		{"n < chunk", 63, 64, 4},
		{"n = chunk", 64, 64, 4},
		{"chunk not dividing n", 65, 64, 4},
		{"parts > chunks", 100, 64, 8},
		{"many chunks", 1000, 64, 4},
		{"chunk=1 degenerates to SplitEven", 17, 1, 3},
		{"exact multiple", 256, 64, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prevHi := 0
			for r := 0; r < tc.parts; r++ {
				lo, hi := SplitChunkAligned(tc.n, tc.chunk, tc.parts, r)
				if lo != prevHi {
					t.Fatalf("rank %d: lo %d != previous hi %d (ranges must tile [0,n))", r, lo, prevHi)
				}
				if lo%tc.chunk != 0 && lo != tc.n {
					t.Fatalf("rank %d: lo %d not a chunk boundary", r, lo)
				}
				if hi%tc.chunk != 0 && hi != tc.n {
					t.Fatalf("rank %d: hi %d not a chunk boundary", r, hi)
				}
				prevHi = hi
			}
			if prevHi != tc.n {
				t.Fatalf("ranges cover [0,%d) but end at %d", tc.n, prevHi)
			}
		})
	}

	// chunk=1 must agree with SplitEven exactly.
	for r := 0; r < 3; r++ {
		elo, ehi := SplitEven(17, 3, r)
		clo, chi := SplitChunkAligned(17, 1, 3, r)
		if elo != clo || ehi != chi {
			t.Fatalf("rank %d: chunk=1 split (%d,%d) != SplitEven (%d,%d)", r, clo, chi, elo, ehi)
		}
	}
}

// checkWeightedTiling asserts the SplitWeighted invariants for one
// (n, chunk, weights) configuration: the parts tile [0, n) in rank order,
// every boundary is chunk-aligned (or n), and zero-weight parts are empty.
func checkWeightedTiling(t *testing.T, n, chunk int, weights []float64) {
	t.Helper()
	prevHi := 0
	for r := range weights {
		lo, hi := SplitWeighted(n, chunk, weights, r)
		if lo != prevHi {
			t.Fatalf("n=%d chunk=%d weights=%v rank %d: lo %d != previous hi %d (gap or overlap)",
				n, chunk, weights, r, lo, prevHi)
		}
		if hi < lo {
			t.Fatalf("n=%d chunk=%d weights=%v rank %d: hi %d < lo %d", n, chunk, weights, r, hi, lo)
		}
		if lo%chunk != 0 && lo != n {
			t.Fatalf("n=%d chunk=%d weights=%v rank %d: lo %d not a chunk boundary", n, chunk, weights, r, lo)
		}
		if hi%chunk != 0 && hi != n {
			t.Fatalf("n=%d chunk=%d weights=%v rank %d: hi %d not a chunk boundary", n, chunk, weights, r, hi)
		}
		if weights[r] <= 0 && hi != lo {
			t.Fatalf("n=%d chunk=%d weights=%v rank %d: zero-weight part got [%d,%d)", n, chunk, weights, r, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != n {
		t.Fatalf("n=%d chunk=%d weights=%v: parts tile [0,%d) but end at %d", n, chunk, weights, n, prevHi)
	}
}

func TestSplitWeightedTable(t *testing.T) {
	cases := []struct {
		name     string
		n, chunk int
		weights  []float64
	}{
		{"n=0", 0, 16, []float64{1, 1, 1}},
		{"single part", 100, 16, []float64{1}},
		{"zero-weight middle", 100, 16, []float64{1, 0, 1}},
		{"zero-weight edge", 100, 16, []float64{0, 1, 1}},
		{"drained straggler", 257, 32, []float64{1, 1, 0, 1}},
		{"heavy skew", 1000, 64, []float64{1, 0.05, 1, 1}},
		{"all zero falls back to uniform", 100, 16, []float64{0, 0, 0}},
		{"negative treated as zero", 100, 16, []float64{1, -2, 1}},
		{"n < chunk", 17, 64, []float64{1, 2}},
		{"tiny shares", 4096, 32, []float64{1, 1e-9, 1, 1e-9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// "zero weight ⇒ empty" applies to negatives too; the helper
			// checks weights[r] <= 0, so the all-zero fallback case needs its
			// own check.
			if tc.name == "all zero falls back to uniform" {
				for r := range tc.weights {
					wlo, whi := SplitWeighted(tc.n, tc.chunk, tc.weights, r)
					clo, chi := SplitChunkAligned(tc.n, tc.chunk, len(tc.weights), r)
					if wlo != clo || whi != chi {
						t.Fatalf("rank %d: all-zero weights (%d,%d) != uniform (%d,%d)", r, wlo, whi, clo, chi)
					}
				}
				return
			}
			checkWeightedTiling(t, tc.n, tc.chunk, tc.weights)
		})
	}
}

// TestSplitWeightedUniformDegeneratesToEven pins the byte-identical
// degeneration the engine's "rebalance on, nothing flagged" path rests on:
// uniform weights must reproduce SplitChunkAligned (and with chunk 1,
// SplitEven) exactly, for every (n, chunk, parts, r).
func TestSplitWeightedUniformDegeneratesToEven(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 5, 8} {
		weights := make([]float64, parts)
		for i := range weights {
			weights[i] = 0.7 // any uniform positive value
		}
		for _, chunk := range []int{1, 16, 64} {
			for _, n := range []int{0, 1, chunk - 1, chunk, chunk + 1, 100, 257, 1000} {
				if n < 0 {
					continue
				}
				for r := 0; r < parts; r++ {
					wlo, whi := SplitWeighted(n, chunk, weights, r)
					clo, chi := SplitChunkAligned(n, chunk, parts, r)
					if wlo != clo || whi != chi {
						t.Fatalf("n=%d chunk=%d parts=%d rank %d: weighted (%d,%d) != even (%d,%d)",
							n, chunk, parts, r, wlo, whi, clo, chi)
					}
				}
			}
		}
	}
}

// TestSplitWeightedProperties drives the invariants with deterministic
// random configurations: random sizes, chunk sizes, part counts, and weight
// vectors (including zeroed entries).
func TestSplitWeightedProperties(t *testing.T) {
	rng := mathx.NewRNG(2024)
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(5000)
		chunk := 1 + rng.Intn(128)
		parts := 1 + rng.Intn(9)
		weights := make([]float64, parts)
		for i := range weights {
			if rng.Float64() < 0.25 {
				weights[i] = 0
			} else {
				weights[i] = rng.Float64()*4 + 1e-6
			}
		}
		// An all-zero vector falls back to the uniform split (covered by the
		// table test); the tiling invariants here assume a weighted split.
		weights[rng.Intn(parts)] = rng.Float64()*4 + 1e-6
		checkWeightedTiling(t, n, chunk, weights)
	}
}
