package engine

import "sort"

// SplitEven returns the [lo, hi) bounds of part r when splitting n items
// into `parts` contiguous groups as evenly as possible: the first n%parts
// parts get one extra item, and the parts tile [0, n) without gaps.
func SplitEven(n, parts, r int) (int, int) {
	base := n / parts
	rem := n % parts
	lo := r*base + min(r, rem)
	hi := lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

// SplitChunkAligned partitions n items into `parts` contiguous ranges whose
// boundaries are multiples of chunk, so a distributed fold over the parts in
// rank order visits chunks in exactly the sequential ChunkedReduce order —
// the property the bit-identical equivalence between the engines rests on.
func SplitChunkAligned(n, chunk, parts, r int) (int, int) {
	nChunks := (n + chunk - 1) / chunk
	cLo, cHi := SplitEven(nChunks, parts, r)
	lo := min(cLo*chunk, n)
	hi := min(cHi*chunk, n)
	return lo, hi
}

// SplitWeighted is the weighted sibling of SplitChunkAligned: it partitions
// n items into len(weights) contiguous chunk-aligned ranges whose sizes are
// proportional to the weights. It is the partition behind minibatch
// re-sharding — shrinking a straggler's weight moves its chunks onto healthy
// ranks while the global chunk order (and hence every chunk-ordered fold)
// is preserved.
//
// Properties the rebalancer and its tests rely on:
//
//   - the ranges tile [0, n) with no gaps or overlaps, in rank order;
//   - every boundary is a multiple of chunk (except the final n);
//   - a part with weight 0 gets an empty range (a drained straggler does no
//     minibatch work, though it still participates in collectives);
//   - uniform weights reproduce SplitChunkAligned — and with chunk 1,
//     SplitEven — exactly, so "rebalancing with nothing to rebalance" is
//     byte-identical to the unweighted path.
//
// Chunks are apportioned by largest remainder: each part gets
// ⌊nChunks·w/W⌋ chunks, and the leftover chunks go to the parts with the
// largest fractional remainders (ties broken by lower rank, which is what
// makes the uniform case collapse to SplitEven's "first n%parts parts get
// one extra"). Negative weights are treated as zero; an all-zero weight
// vector falls back to the uniform split.
func SplitWeighted(n, chunk int, weights []float64, r int) (int, int) {
	parts := len(weights)
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return SplitChunkAligned(n, chunk, parts, r)
	}
	nChunks := (n + chunk - 1) / chunk
	counts := make([]int, parts)
	fracs := make([]float64, parts)
	assigned := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		ideal := float64(nChunks) * w / total
		counts[i] = int(ideal)
		fracs[i] = ideal - float64(counts[i])
		assigned += counts[i]
	}
	// Hand the leftover chunks to the largest fractional remainders. Zero-
	// weight parts have remainder 0 and there are always enough positive
	// remainders to absorb the leftovers (they sum to exactly the leftover
	// count, each strictly below 1), so a zero-weight part stays empty; the
	// weight > 0 guard keeps that true even under float rounding.
	order := make([]int, parts)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fracs[order[a]] > fracs[order[b]] })
	for assigned < nChunks {
		progressed := false
		for _, i := range order {
			if assigned >= nChunks {
				break
			}
			if weights[i] > 0 {
				counts[i]++
				assigned++
				progressed = true
			}
		}
		if !progressed {
			break // unreachable: total > 0 implies a positive weight exists
		}
	}
	cLo := 0
	for i := 0; i < r; i++ {
		cLo += counts[i]
	}
	lo := min(cLo*chunk, n)
	hi := min((cLo+counts[r])*chunk, n)
	return lo, hi
}
