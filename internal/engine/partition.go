package engine

// SplitEven returns the [lo, hi) bounds of part r when splitting n items
// into `parts` contiguous groups as evenly as possible: the first n%parts
// parts get one extra item, and the parts tile [0, n) without gaps.
func SplitEven(n, parts, r int) (int, int) {
	base := n / parts
	rem := n % parts
	lo := r*base + min(r, rem)
	hi := lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

// SplitChunkAligned partitions n items into `parts` contiguous ranges whose
// boundaries are multiples of chunk, so a distributed fold over the parts in
// rank order visits chunks in exactly the sequential ChunkedReduce order —
// the property the bit-identical equivalence between the engines rests on.
func SplitChunkAligned(n, chunk, parts, r int) (int, int) {
	nChunks := (n + chunk - 1) / chunk
	cLo, cHi := SplitEven(nChunks, parts, r)
	lo := min(cLo*chunk, n)
	hi := min(cHi*chunk, n)
	return lo, hi
}
