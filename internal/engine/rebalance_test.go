package engine

import (
	"math"
	"testing"
)

// rebalCfg is the deterministic tuning the state-machine tests drive:
// window bookkeeping is external (ObserveWindow is fed one vector per
// window), shrink after 2 consecutive flagged windows, restore after 3
// healthy ones, quarter steps, full drain allowed.
func rebalCfg() RebalanceConfig {
	return RebalanceConfig{
		Window:      4,
		SlowWindows: 2,
		HealWindows: 3,
		Step:        0.25,
		MinShare:    0,
	}
}

// feed drives the rebalancer with a sequence of per-window imposed-wait
// vectors and returns rank `watch`'s weight after each window.
func feed(t *testing.T, rb *Rebalancer, windows [][]float64, watch int) []float64 {
	t.Helper()
	out := make([]float64, 0, len(windows))
	for _, w := range windows {
		weights, _ := rb.ObserveWindow(w)
		out = append(out, weights[watch])
	}
	return out
}

func approxEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestRebalancerHysteresis(t *testing.T) {
	// Window vectors for a 3-rank cluster: "slow" flags rank 2 (it imposes
	// 100 ms against a ~1 ms median), "ok" flags nobody.
	slow := []float64{1, 1, 100}
	ok := []float64{1, 1, 1}

	cases := []struct {
		name    string
		windows [][]float64
		want    []float64 // rank 2's weight after each window
	}{
		{
			// A transient hiccup — alternating flagged and healthy windows —
			// never reaches the SlowWindows=2 consecutive-flag threshold, so
			// the share must not move at all.
			name:    "flap does not thrash",
			windows: [][]float64{slow, ok, slow, ok, slow, ok},
			want:    []float64{1, 1, 1, 1, 1, 1},
		},
		{
			// Sustained slowness: the first flagged window arms the streak,
			// the second shrinks, and every further flagged window shrinks by
			// one bounded step until the share drains to MinShare=0.
			name:    "sustained slow drains stepwise",
			windows: [][]float64{slow, slow, slow, slow, slow, slow, slow},
			want:    []float64{1, 0.75, 0.5, 0.25, 0, 0, 0},
		},
		{
			// Recovery: after a shrink, HealWindows=3 consecutive healthy
			// windows buy one restore step; the streak then re-arms for the
			// next step.
			name:    "recovery restores stepwise",
			windows: [][]float64{slow, slow, slow, ok, ok, ok, ok, ok, ok, ok},
			want:    []float64{1, 0.75, 0.5, 0.5, 0.5, 0.75, 0.75, 0.75, 1, 1},
		},
		{
			// Backoff: a rank that re-flags right after a probe restore
			// doubles its heal requirement, so the second restore needs 6
			// healthy windows, not 3 — the oscillation damper.
			name: "re-flag after restore doubles heal requirement",
			windows: [][]float64{
				slow, slow, // shrink to 0.75
				ok, ok, ok, // restore to 1 (heal need 3)... weight hits 1
				slow, slow, // shrink again to 0.75; restored since shrink → backoff to 6
				ok, ok, ok, // only 3 healthy: not yet
				ok, ok, ok, // 6 healthy: restore
			},
			want: []float64{1, 0.75, 0.75, 0.75, 1, 1, 0.75, 0.75, 0.75, 0.75, 0.75, 0.75, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rb, err := NewRebalancer(3, rebalCfg())
			if err != nil {
				t.Fatal(err)
			}
			got := feed(t, rb, tc.windows, 2)
			if !approxEq(got, tc.want) {
				t.Fatalf("rank 2 weight trajectory:\n got %v\nwant %v", got, tc.want)
			}
		})
	}
}

// TestRebalancerBackoffForgiven pins the reset: once a rank climbs back to
// full share and stays healthy, its heal requirement returns to the
// configured HealWindows (the doubled backoff is not a life sentence).
func TestRebalancerBackoffForgiven(t *testing.T) {
	slow := []float64{1, 100}
	ok := []float64{1, 1}
	rb, err := NewRebalancer(2, RebalanceConfig{
		SlowWindows: 1, HealWindows: 1, Step: 0.5, MinShare: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shrink, restore (backoff doubles on the re-flag), shrink, and climb all
	// the way back: two restores at healNeed=2.
	seq := [][]float64{slow, ok, slow, ok, ok, ok, ok}
	_ = feed(t, rb, seq, 1)
	if w := rb.Weights()[1]; w != 1 {
		t.Fatalf("rank 1 weight = %v after full recovery, want 1", w)
	}
	// One healthy window at full weight forgives the backoff; the next
	// shrink+heal cycle runs at the original HealWindows=1 again.
	for _, w := range [][]float64{ok, slow, ok, ok} {
		rb.ObserveWindow(w)
	}
	if w := rb.Weights()[1]; w != 1 {
		t.Fatalf("rank 1 weight = %v, want 1 (heal requirement should be back to 1 window)", w)
	}
}

func TestRebalancerMinShareFloor(t *testing.T) {
	slow := []float64{1, 1, 50}
	rb, err := NewRebalancer(3, RebalanceConfig{
		SlowWindows: 1, HealWindows: 2, Step: 0.4, MinShare: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		rb.ObserveWindow(slow)
	}
	if w := rb.Weights()[2]; w != 0.3 {
		t.Fatalf("rank 2 weight = %v, want the MinShare floor 0.3", w)
	}
	// Healthy ranks never move.
	if w := rb.Weights()[0]; w != 1 {
		t.Fatalf("rank 0 weight = %v, want 1", w)
	}
}

// TestRebalancerChangedFlag checks the changed return: windows that neither
// shrink nor restore report false, so the engine can skip re-broadcasting.
func TestRebalancerChangedFlag(t *testing.T) {
	slow := []float64{1, 80}
	ok := []float64{1, 1}
	rb, err := NewRebalancer(2, rebalCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, changed := rb.ObserveWindow(slow); changed {
		t.Fatal("first flagged window changed weights before the SlowWindows threshold")
	}
	if _, changed := rb.ObserveWindow(slow); !changed {
		t.Fatal("second consecutive flagged window should shrink")
	}
	if _, changed := rb.ObserveWindow(ok); changed {
		t.Fatal("healthy window below the heal threshold changed weights")
	}
	// Fully drained rank at MinShare: further flagged windows change nothing.
	for i := 0; i < 10; i++ {
		rb.ObserveWindow(slow)
	}
	if _, changed := rb.ObserveWindow(slow); changed {
		t.Fatal("flagged window at the floor should not report a change")
	}
}

func TestRebalancerReport(t *testing.T) {
	rb, err := NewRebalancer(3, rebalCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rb.LastReport() != nil {
		t.Fatal("report before any window")
	}
	rb.ObserveWindow([]float64{1, 1, 100})
	rep := rb.LastReport()
	if rep == nil || len(rep.Flagged) != 1 || rep.Flagged[0] != 2 {
		t.Fatalf("window report = %+v, want rank 2 flagged", rep)
	}
}

// TestRebalancerLastWorkerNeverDrains pins the active-rank restriction: once
// every other rank is drained, the survivor is doing ALL the work — the
// drained ranks' blocking on it reads as imposed wait, and without the
// restriction the rule would flag the survivor for being busy, drain it too,
// and the all-zero uniform fallback would hand the straggler its full share
// back. The survivor must be unflaggable; the drained rank must still probe
// back in via restore.
func TestRebalancerLastWorkerNeverDrains(t *testing.T) {
	rb, err := NewRebalancer(2, rebalCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Drain rank 1: 5 flagged windows take it 1 → 0.75 → 0.5 → 0.25 → 0.
	for i := 0; i < 5; i++ {
		rb.ObserveWindow([]float64{0, 100})
	}
	if w := rb.Weights(); w[0] != 1 || w[1] != 0 {
		t.Fatalf("after drain: weights %v, want [1 0]", w)
	}
	// Rank 0 now does everything; rank 1 blocks on it every collective, so
	// the raw wait vector pins rank 0 as the "straggler". With only one
	// active rank the rule must not fire — in particular not on rank 0.
	weights, changed := rb.ObserveWindow([]float64{500, 0})
	if changed || weights[0] != 1 {
		t.Fatalf("lone worker shrunk: weights %v (changed %v)", weights, changed)
	}
	if f := rb.LastReport().Flagged; len(f) != 0 {
		t.Fatalf("lone worker flagged: %v", f)
	}
	// The drained rank keeps healing through those windows: HealWindows=3
	// total healthy windows trigger its restore probe (one already counted
	// above), after which both ranks are active and the rule arms again.
	rb.ObserveWindow([]float64{500, 0})
	weights, changed = rb.ObserveWindow([]float64{500, 0})
	if !changed || weights[1] != 0.25 {
		t.Fatalf("drained rank never probed back: weights %v (changed %v)", weights, changed)
	}
	// Probe came back slow: with both active again, two flagged windows
	// re-drain it (and rank 0, busy as it is, stays untouched).
	rb.ObserveWindow([]float64{0, 400})
	weights, _ = rb.ObserveWindow([]float64{0, 400})
	if weights[0] != 1 || weights[1] != 0 {
		t.Fatalf("after failed probe: weights %v, want [1 0]", weights)
	}
}
