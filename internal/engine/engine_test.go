package engine

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func TestLoopRunsStagesInOrderWithTiming(t *testing.T) {
	ph := trace.NewPhases()
	var order []string
	mk := func(name string) Stage {
		return Stage{Name: name, Run: func(int) error {
			order = append(order, name)
			return nil
		}}
	}
	l := &Loop{
		Trace: ph,
		Stages: []Stage{
			mk("a"),
			{Run: func(int) error { order = append(order, "barrier"); return nil }},
			mk("b"),
		},
	}
	if err := l.Run(3); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "barrier", "b", "a", "barrier", "b", "a", "barrier", "b"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("stage order %v, want %v", order, want)
	}
	if ph.Count("a") != 3 || ph.Count("b") != 3 {
		t.Fatalf("timed counts a=%d b=%d, want 3 each", ph.Count("a"), ph.Count("b"))
	}
	// The unnamed barrier stage must not appear in the trace.
	for _, name := range ph.Names() {
		if name == "" {
			t.Fatal("unnamed stage leaked into the trace")
		}
	}
}

func TestLoopStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []string
	l := &Loop{Stages: []Stage{
		{Name: "ok", Run: func(int) error { ran = append(ran, "ok"); return nil }},
		{Name: "bad", Run: func(int) error { return boom }},
		{Name: "never", Run: func(int) error { ran = append(ran, "never"); return nil }},
	}}
	err := l.Run(5)
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost: %v", err)
	}
	if got := fmt.Sprint(ran); got != "[ok]" {
		t.Fatalf("stages after the failure ran: %v", ran)
	}
	// Run wraps with the iteration number.
	if want := "iteration 0:"; err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Fatalf("error %q does not carry the iteration", err)
	}
}

func TestLoopFaultHook(t *testing.T) {
	injected := errors.New("injected")
	var stageRan bool
	l := &Loop{
		FaultHook: func(t int) error {
			if t == 2 {
				return injected
			}
			return nil
		},
		Stages: []Stage{{Name: "s", Run: func(int) error { stageRan = true; return nil }}},
	}
	if err := l.RunIteration(0); err != nil || !stageRan {
		t.Fatalf("clean iteration failed: %v (stage ran: %v)", err, stageRan)
	}
	err := l.RunIteration(2)
	if !errors.Is(err, injected) {
		t.Fatalf("fault hook error chain lost: %v", err)
	}
}

// TestLoopPhaseHook: the hook fires before every stage with the stage's
// name, unnamed wiring stages reporting as PhaseBarrier — the label sequence
// the instrumented transport attributes receive waits with.
func TestLoopPhaseHook(t *testing.T) {
	var labels []string
	noop := func(int) error { return nil }
	l := &Loop{
		PhaseHook: func(name string) { labels = append(labels, name) },
		Stages: []Stage{
			{Name: "update_phi", Run: noop},
			{Run: noop}, // unnamed barrier
			{Name: "update_pi", Run: noop},
		},
	}
	if err := l.RunIteration(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"update_phi", PhaseBarrier, "update_pi"}
	if len(labels) != len(want) {
		t.Fatalf("hook fired %d times (%v), want %d", len(labels), labels, len(want))
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("phase sequence %v, want %v", labels, want)
		}
	}
}

func TestLoopValidate(t *testing.T) {
	ok := &Loop{Stages: []Stage{
		{Name: "draw", Reads: []string{"graph"}, Writes: []string{"batch"}},
		{Name: "phi", Reads: []string{"batch", "pi"}, Writes: []string{"new_phi"}},
		{Name: "pi", Reads: []string{"new_phi"}, Writes: []string{"pi"}},
	}}
	if err := ok.Validate([]string{"graph", "pi"}); err != nil {
		t.Fatalf("valid dataflow rejected: %v", err)
	}
	bad := &Loop{Stages: []Stage{
		{Name: "phi", Reads: []string{"batch"}, Writes: []string{"new_phi"}},
		{Name: "draw", Reads: []string{"graph"}, Writes: []string{"batch"}},
	}}
	if err := bad.Validate([]string{"graph"}); err == nil {
		t.Fatal("read-before-write dataflow accepted")
	}
}

func TestLoopValidatePublishes(t *testing.T) {
	// Publishing a resource after the barrier that fences its write is legal.
	ok := &Loop{Stages: []Stage{
		{Name: "pi", Reads: []string{"new_phi"}, Writes: []string{"pi"}},
		{Barrier: true},
		{Name: "publish", Reads: []string{"pi"}, Publishes: []string{"pi"}},
	}}
	if err := ok.Validate([]string{"new_phi", "pi"}); err != nil {
		t.Fatalf("valid publish dataflow rejected: %v", err)
	}

	// Publishing between the write and its barrier would seal a half-written
	// iteration; Validate must reject it.
	unfenced := &Loop{Stages: []Stage{
		{Name: "pi", Reads: []string{"new_phi"}, Writes: []string{"pi"}},
		{Name: "publish", Reads: []string{"pi"}, Publishes: []string{"pi"}},
		{Barrier: true},
	}}
	if err := unfenced.Validate([]string{"new_phi", "pi"}); err == nil {
		t.Fatal("publish-before-barrier dataflow accepted")
	}

	// Publishing a resource nothing provides is a plain dataflow error.
	unknown := &Loop{Stages: []Stage{
		{Name: "publish", Publishes: []string{"pi"}},
	}}
	if err := unknown.Validate(nil); err == nil {
		t.Fatal("publish of an unprovided resource accepted")
	}

	// A barrier clears dirtiness only for writes before it: a later write
	// re-dirties the resource for subsequent publishes.
	rewrite := &Loop{Stages: []Stage{
		{Name: "pi", Writes: []string{"pi"}},
		{Barrier: true},
		{Name: "pi2", Writes: []string{"pi"}},
		{Name: "publish", Publishes: []string{"pi"}},
	}}
	if err := rewrite.Validate(nil); err == nil {
		t.Fatal("publish after re-dirtying write accepted")
	}
}

func TestPrefetcher(t *testing.T) {
	var produced []int
	p := NewPrefetcher(func(t int) int {
		produced = append(produced, t)
		return t * 10
	})
	// Synchronous path: nothing in flight.
	if got := p.Next(0); got != 0 {
		t.Fatalf("Next(0) = %d", got)
	}
	// Prefetched path.
	p.Start(1)
	if got := p.Next(1); got != 10 {
		t.Fatalf("Next(1) = %d", got)
	}
	// After draining, the next call is synchronous again.
	if got := p.Next(2); got != 20 {
		t.Fatalf("Next(2) = %d", got)
	}
	if fmt.Sprint(produced) != "[0 1 2]" {
		t.Fatalf("producer calls %v", produced)
	}
	// Double Start is a scheduling bug and must panic.
	p.Start(3)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	p.Start(4)
}

// TestLoopTracerSpans checks the loop's span shape: one iter span per
// iteration, one stage span per stage parented under it (unnamed barrier
// stages appear as PhaseBarrier), and the scope restored after each.
func TestLoopTracerSpans(t *testing.T) {
	tr := obs.NewTracer(0, 0)
	l := &Loop{
		Tracer: tr,
		Stages: []Stage{
			{Name: "a", Run: func(int) error { return nil }},
			{Run: func(int) error { return nil }}, // unnamed barrier
		},
	}
	if err := l.Run(2); err != nil {
		t.Fatal(err)
	}
	if tr.Scope() != 0 {
		t.Fatalf("scope not restored after the run: %d", tr.Scope())
	}
	b := tr.Bundle()
	iters := map[int]obs.SpanID{}
	var stages []obs.Span
	for _, sp := range b.Spans {
		switch sp.Cat {
		case obs.CatIter:
			iters[sp.Iter] = sp.ID
		case obs.CatStage:
			stages = append(stages, sp)
		}
	}
	if len(iters) != 2 {
		t.Fatalf("iter spans for %d iterations, want 2", len(iters))
	}
	if len(stages) != 4 {
		t.Fatalf("%d stage spans, want 4 (2 stages x 2 iterations)", len(stages))
	}
	names := map[string]int{}
	for _, sp := range stages {
		if sp.Parent != iters[sp.Iter] {
			t.Errorf("stage %q of iter %d parented under %d, want %d", sp.Name, sp.Iter, sp.Parent, iters[sp.Iter])
		}
		names[sp.Name]++
	}
	if names["a"] != 2 || names[PhaseBarrier] != 2 {
		t.Errorf("stage span names %v, want a=2 %s=2", names, PhaseBarrier)
	}
}

// TestLoopIterationZeroCostWhenUntraced pins the telemetry-off bargain: with
// every hook nil, an iteration of the loop machinery allocates nothing — the
// nil-gates are the only cost.
func TestLoopIterationZeroCostWhenUntraced(t *testing.T) {
	l := &Loop{
		Stages: []Stage{
			{Name: "a", Run: func(int) error { return nil }},
			{Name: "b", Run: func(int) error { return nil }},
		},
	}
	iter := 0
	allocs := testing.AllocsPerRun(100, func() {
		if err := l.RunIteration(iter); err != nil {
			t.Fatal(err)
		}
		iter++
	})
	if allocs != 0 {
		t.Fatalf("untraced RunIteration allocates %.1f allocs/op, want 0", allocs)
	}
}
