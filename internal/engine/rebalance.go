package engine

import (
	"fmt"

	"repro/internal/obs"
)

// Rebalancing closes the straggler loop: the PeerMatrix straggler rule (and
// the critical-path verdict of ocd-analyze -trace) *detects* a slow rank;
// the Rebalancer *acts* on it by shrinking that rank's minibatch share so
// the next window's deployments (SplitWeighted) move its chunks onto healthy
// ranks. Because every φ draw is keyed by (iteration, vertex) and the θ fold
// is chunk-ordered, re-sharding changes which rank does the work — not the
// estimator — so the mitigation is exact: the trained trajectory is
// bit-identical with any weight vector.
//
// The state machine is deliberately conservative (hysteresis in both
// directions, bounded step size, exponential restore backoff) so a transient
// hiccup — one garbage-collection pause, one noisy window — cannot thrash
// the shares.

// RebalanceConfig tunes the hysteresis state machine. The zero value of any
// field selects its default; DefaultRebalanceConfig spells them out.
type RebalanceConfig struct {
	// Window is the observation window in iterations: per-iteration imposed-
	// wait signals accumulate for Window iterations before the rule runs once.
	Window int
	// SlowWindows (the H of the hysteresis) is how many *consecutive* flagged
	// windows a rank must accumulate before its share first shrinks. Once
	// past the threshold, every further flagged window shrinks it again by
	// Step (bounded step size per window), so sustained slowness drains the
	// rank gradually rather than in one jump.
	SlowWindows int
	// HealWindows (the H') is how many consecutive healthy windows a shrunken
	// rank must show before each restore step. A rank that gets re-flagged
	// after a restore doubles its required heal streak (capped at
	// maxHealNeed) — the exponential backoff that keeps a persistently slow
	// rank from oscillating between drained and probing.
	HealWindows int
	// Step is the share delta applied per shrink or restore step, in absolute
	// weight (full share = 1).
	Step float64
	// MinShare floors a shrunken share. The default 0 lets a persistent
	// straggler drain completely: it then does no minibatch work (SplitWeighted
	// gives weight-0 ranks empty ranges) but still serves its π shard and
	// participates in collectives.
	MinShare float64
	// SkewFactor and FloorMS override the straggler flagging thresholds
	// (obs.StragglerSkew / obs.StragglerFloorMS) applied to each window's
	// imposed-wait vector.
	SkewFactor float64
	FloorMS    float64
}

// DefaultRebalanceConfig is the tuning used when fields are zero.
func DefaultRebalanceConfig() RebalanceConfig {
	return RebalanceConfig{
		Window:      8,
		SlowWindows: 2,
		HealWindows: 4,
		Step:        0.25,
		MinShare:    0,
		SkewFactor:  obs.StragglerSkew,
		FloorMS:     obs.StragglerFloorMS,
	}
}

// withDefaults fills zero fields from the default config.
func (c RebalanceConfig) withDefaults() RebalanceConfig {
	d := DefaultRebalanceConfig()
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.SlowWindows <= 0 {
		c.SlowWindows = d.SlowWindows
	}
	if c.HealWindows <= 0 {
		c.HealWindows = d.HealWindows
	}
	if c.Step <= 0 {
		c.Step = d.Step
	}
	if c.MinShare < 0 {
		c.MinShare = 0
	}
	if c.SkewFactor <= 0 {
		c.SkewFactor = d.SkewFactor
	}
	if c.FloorMS <= 0 {
		c.FloorMS = d.FloorMS
	}
	return c
}

// maxHealNeed caps the exponential restore backoff: a rank that keeps
// re-flagging after restores eventually needs this many consecutive healthy
// windows per restore step, but never more.
const maxHealNeed = 64

// rankState is one rank's hysteresis state.
type rankState struct {
	weight     float64
	slowStreak int  // consecutive flagged windows
	healStreak int  // consecutive healthy windows while shrunken
	healNeed   int  // healthy windows required per restore step (backoff)
	restored   bool // a restore happened since the last shrink
}

// Rebalancer is the per-window mitigation state machine. It is a pure
// computation — no collectives, no clocks — so the distributed engine can
// run it at the master and broadcast the resulting weights, and tests can
// drive it with synthetic window vectors.
type Rebalancer struct {
	cfg    RebalanceConfig
	ranks  []rankState
	report *obs.PeerReport // last window's flagging report
}

// NewRebalancer creates a rebalancer for a cluster of the given size; every
// rank starts at full share (weight 1).
func NewRebalancer(ranks int, cfg RebalanceConfig) (*Rebalancer, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("engine: rebalancer needs at least 1 rank, got %d", ranks)
	}
	rb := &Rebalancer{cfg: cfg.withDefaults(), ranks: make([]rankState, ranks)}
	for i := range rb.ranks {
		rb.ranks[i] = rankState{weight: 1, healNeed: rb.cfg.HealWindows}
	}
	return rb, nil
}

// Config returns the resolved (defaults-filled) configuration.
func (rb *Rebalancer) Config() RebalanceConfig { return rb.cfg }

// Weights returns a copy of the current share weights.
func (rb *Rebalancer) Weights() []float64 {
	out := make([]float64, len(rb.ranks))
	for i := range rb.ranks {
		out[i] = rb.ranks[i].weight
	}
	return out
}

// LastReport returns the flagging report of the most recent window (nil
// before the first ObserveWindow).
func (rb *Rebalancer) LastReport() *obs.PeerReport { return rb.report }

// ObserveWindow feeds one completed window's per-rank imposed-wait totals
// (milliseconds; the recv-wait column sums of the straggler rule, summed
// over the window's iterations) and applies the hysteresis rule. It returns
// the updated weight vector and whether any weight changed this window.
// len(waitMS) must equal the rank count.
func (rb *Rebalancer) ObserveWindow(waitMS []float64) (weights []float64, changed bool) {
	if len(waitMS) != len(rb.ranks) {
		panic(fmt.Sprintf("engine: rebalancer built for %d ranks observed %d waits", len(rb.ranks), len(waitMS)))
	}
	// The flagging rule runs over the ranks that actually carry minibatch
	// work (weight > 0), and needs at least two of them. Without this
	// restriction the controller eats itself after draining a straggler:
	// the drained rank does no compute, arrives at every collective first,
	// and its blocking on the surviving workers reads as wait "imposed" by
	// them — so the rule flags the ranks doing the work, drains them too,
	// and once every weight is zero the uniform fallback of SplitWeighted
	// hands the real straggler its full share back. A drained rank can
	// still heal (it is never flagged) and probe back in via restore.
	var active []int
	for r := range rb.ranks {
		if rb.ranks[r].weight > 0 {
			active = append(active, r)
		}
	}
	rep := &obs.PeerReport{ImposedWaitMS: append([]float64(nil), waitMS...)}
	flagged := make([]bool, len(rb.ranks))
	if len(active) >= 2 {
		sub := make([]float64, len(active))
		for i, r := range active {
			sub[i] = waitMS[r]
		}
		subRep := obs.StragglerWaits(sub, rb.cfg.SkewFactor, rb.cfg.FloorMS)
		rep.MedianMS, rep.MaxMS, rep.Skew = subRep.MedianMS, subRep.MaxMS, subRep.Skew
		for _, i := range subRep.Flagged {
			flagged[active[i]] = true
			rep.Flagged = append(rep.Flagged, active[i])
		}
	}
	rb.report = rep
	for r := range rb.ranks {
		st := &rb.ranks[r]
		if flagged[r] {
			st.healStreak = 0
			st.slowStreak++
			if st.slowStreak >= rb.cfg.SlowWindows {
				next := st.weight - rb.cfg.Step
				if next < rb.cfg.MinShare {
					next = rb.cfg.MinShare
				}
				if next != st.weight {
					st.weight = next
					changed = true
				}
				if st.restored {
					// Re-flagged after a probe restore: back off the next
					// restore exponentially.
					st.restored = false
					if st.healNeed < maxHealNeed {
						st.healNeed *= 2
						if st.healNeed > maxHealNeed {
							st.healNeed = maxHealNeed
						}
					}
				}
			}
			continue
		}
		st.slowStreak = 0
		if st.weight >= 1 {
			// Fully restored and healthy: forgive the backoff history.
			st.healStreak = 0
			st.healNeed = rb.cfg.HealWindows
			st.restored = false
			continue
		}
		st.healStreak++
		if st.healStreak >= st.healNeed {
			st.healStreak = 0
			st.restored = true
			st.weight += rb.cfg.Step
			if st.weight > 1 {
				st.weight = 1
			}
			changed = true
		}
	}
	return rb.Weights(), changed
}
