// Package engine provides the stage-based iteration machinery shared by the
// local (core.Sampler) and distributed (dist.Run) samplers: the canonical
// phase names of the paper's Table III, a Stage/Loop scheduler that attaches
// per-stage timing and fault injection uniformly, the single-slot Prefetcher
// behind the master's minibatch pipelining (Section III-D), and the
// chunk-aligned partition helpers both engines split work with.
//
// The package is deliberately a leaf — it knows nothing about the model —
// so that internal/core can build its sampler on it while internal/dist
// reuses the exact same scheduler around its collectives.
package engine

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Phase names used in traces; the Table III harness keys off these.
const (
	PhaseDrawMinibatch   = "draw_minibatch"
	PhaseDeployMinibatch = "deploy_minibatch"
	PhaseUpdatePhi       = "update_phi"
	PhaseLoadPi          = "update_phi.load_pi"
	PhaseComputePhi      = "update_phi.compute"
	PhaseUpdatePi        = "update_pi"
	PhaseUpdateBetaTheta = "update_beta_theta"
	PhasePerplexity      = "perplexity"
	PhasePublish         = "publish_snapshot"
	PhaseReshard         = "reshard"
	PhaseCheckpoint      = "checkpoint"
	PhaseTotal           = "total"
)

// Stage is one named phase of an iteration. Reads and Writes declare the
// dataflow (resource names such as "batch", "pi", "theta"); Loop.Validate
// checks that every stage's inputs are produced before it runs, which is how
// the barrier discipline ("update_phi reads only pre-phase π") is made
// explicit instead of being a comment.
type Stage struct {
	// Name keys the per-stage trace timer. An empty Name marks untimed
	// wiring (e.g. the distributed engine's barriers), which runs but does
	// not appear in the phase table.
	Name   string
	Reads  []string
	Writes []string
	// Publishes names resources this stage exposes to readers OUTSIDE the
	// loop (the snapshot publication of internal/store). Publication is a
	// dataflow effect like a read, but with a stricter precondition: the
	// resource must not have been written since the last Barrier stage,
	// because a snapshot sealed mid-phase could capture a half-written
	// iteration. Loop.Validate enforces this.
	Publishes []string
	// Barrier marks this stage as a phase fence: writes before it are
	// committed and globally visible after it (the engines put their
	// collective barrier + store.Flush here). Validate uses it to decide
	// when a written resource becomes publishable.
	Barrier bool
	Run     func(t int) error
}

// Loop runs a fixed stage list once per iteration, timing each named stage
// into Trace and giving FaultHook one uniform injection point per iteration.
type Loop struct {
	Stages []Stage
	Trace  *trace.Phases
	// Recorder, when non-nil, receives every named stage's duration as it
	// completes and an IterDone at the end of each iteration — the live
	// telemetry feed (JSONL events, monitor gauges). Nil by default: the
	// hot path pays one nil-check per stage.
	Recorder obs.Recorder
	// FaultHook, when non-nil, runs at the top of every iteration; a non-nil
	// return fails the iteration exactly as if a stage had errored.
	FaultHook func(t int) error
	// PhaseHook, when non-nil, is called with each stage's name immediately
	// before the stage runs; unnamed wiring stages report as PhaseBarrier.
	// The distributed engine points it at cluster.Comm.SetPhase so the
	// instrumented transport attributes blocking-receive time to the phase
	// whose collectives caused it.
	PhaseHook func(name string)
	// Tracer, when non-nil, records one span per iteration and one child
	// span per stage (unnamed wiring stages appear as PhaseBarrier spans, so
	// barrier wait is visible on the timeline even though it is untimed in
	// the phase table). The stage span is left as the tracer's scope while
	// the stage runs, so collectives and DKV waits nest under it. Nil by
	// default: tracing-off costs one nil-check per stage, like Recorder.
	Tracer *obs.Tracer
}

// PhaseBarrier is the label PhaseHook reports for unnamed wiring stages
// (the distributed engine's barriers) — where straggler wait concentrates.
const PhaseBarrier = "barrier"

// RunIteration executes iteration t: the fault hook, then every stage in
// order, stopping at the first error. Named stages are timed once and the
// measurement fans out to both Trace (cumulative totals) and Recorder
// (per-iteration events).
func (l *Loop) RunIteration(t int) error {
	if l.FaultHook != nil {
		if err := l.FaultHook(t); err != nil {
			return fmt.Errorf("injected fault: %w", err)
		}
	}
	var iterID, prevScope obs.SpanID
	var iterStart int64
	if l.Tracer != nil {
		l.Tracer.SetIter(t)
		iterID = l.Tracer.NewID()
		prevScope = l.Tracer.SetScope(iterID)
		iterStart = l.Tracer.Now()
	}
	for i := range l.Stages {
		st := &l.Stages[i]
		if l.PhaseHook != nil {
			name := st.Name
			if name == "" {
				name = PhaseBarrier
			}
			l.PhaseHook(name)
		}
		var stageID obs.SpanID
		var stageStart int64
		if l.Tracer != nil {
			stageID = l.Tracer.NewID()
			l.Tracer.SetScope(stageID)
			stageStart = l.Tracer.Now()
		}
		timed := st.Name != "" && (l.Trace != nil || l.Recorder != nil)
		var start time.Time
		if timed {
			start = time.Now()
		}
		err := st.Run(t)
		if timed {
			d := time.Since(start)
			if l.Trace != nil {
				l.Trace.Add(st.Name, d)
			}
			if l.Recorder != nil {
				l.Recorder.StageDone(t, st.Name, d)
			}
		}
		if l.Tracer != nil {
			name := st.Name
			if name == "" {
				name = PhaseBarrier
			}
			l.Tracer.Emit(obs.Span{
				ID: stageID, Parent: iterID, Name: name, Cat: obs.CatStage,
				Track: obs.TrackEngine, Peer: obs.NoPeer, Iter: t,
				StartNS: stageStart, DurNS: l.Tracer.Now() - stageStart,
			})
			l.Tracer.SetScope(iterID)
		}
		if err != nil {
			return err
		}
	}
	if l.Tracer != nil {
		l.Tracer.Emit(obs.Span{
			ID: iterID, Name: "iter", Cat: obs.CatIter,
			Track: obs.TrackEngine, Peer: obs.NoPeer, Iter: t,
			StartNS: iterStart, DurNS: l.Tracer.Now() - iterStart,
		})
		l.Tracer.SetScope(prevScope)
	}
	if l.Recorder != nil {
		l.Recorder.IterDone(t)
	}
	return nil
}

// Run executes iterations [0, n).
func (l *Loop) Run(n int) error {
	for t := 0; t < n; t++ {
		if err := l.RunIteration(t); err != nil {
			return fmt.Errorf("iteration %d: %w", t, err)
		}
	}
	return nil
}

// Validate checks the declared dataflow: walking the stages in order, every
// Read must name a resource provided initially or written by an earlier
// stage (a resource written by a later stage only is exactly the read-own-
// write hazard the phase barriers exist to prevent), and every Publish must
// name a resource that is not dirty — written since the last Barrier stage —
// because publication seals the resource for readers outside the loop, and a
// seal taken between a write and its fence could expose a half-written
// iteration.
func (l *Loop) Validate(initial []string) error {
	have := make(map[string]bool, len(initial))
	dirty := make(map[string]bool)
	for _, r := range initial {
		have[r] = true
	}
	for _, st := range l.Stages {
		if st.Barrier {
			clear(dirty)
		}
		for _, r := range st.Reads {
			if !have[r] {
				return fmt.Errorf("engine: stage %q reads %q before any stage writes it", st.Name, r)
			}
		}
		for _, p := range st.Publishes {
			if !have[p] {
				return fmt.Errorf("engine: stage %q publishes %q before any stage writes it", st.Name, p)
			}
			if dirty[p] {
				return fmt.Errorf("engine: stage %q publishes %q before the write barrier", st.Name, p)
			}
		}
		for _, w := range st.Writes {
			have[w] = true
			dirty[w] = true
		}
	}
	return nil
}

// Prefetcher overlaps producing iteration t+1's value with iteration t's
// compute — the generalised form of the master-side minibatch pipelining of
// Section III-D. Start(t) launches produce(t) concurrently; Next(t) returns
// the prefetched value if one is in flight, or produces synchronously.
// Start and Next must be called from one goroutine (the stage loop).
type Prefetcher[T any] struct {
	produce  func(t int) T
	ch       chan T
	inflight bool
}

// NewPrefetcher wraps a producer function.
func NewPrefetcher[T any](produce func(t int) T) *Prefetcher[T] {
	return &Prefetcher[T]{produce: produce, ch: make(chan T, 1)}
}

// Start begins producing iteration t's value concurrently. At most one
// production may be in flight; starting a second panics (a scheduling bug).
func (p *Prefetcher[T]) Start(t int) {
	if p.inflight {
		panic("engine: Prefetcher.Start with a production already in flight")
	}
	p.inflight = true
	go func() { p.ch <- p.produce(t) }()
}

// Next returns iteration t's value: the in-flight production if Start was
// called, otherwise a synchronous produce(t).
func (p *Prefetcher[T]) Next(t int) T {
	if p.inflight {
		p.inflight = false
		return <-p.ch
	}
	return p.produce(t)
}
