// Package par provides the shared-memory parallelism primitives that play
// the role OpenMP plays in the paper: a chunked parallel-for over index
// ranges and a double-buffered two-stage pipeline used to overlap loading π
// with the update_phi computation.
package par

import (
	"runtime"
	"sync"
)

// For splits [0, n) into contiguous chunks and runs body(lo, hi) on up to
// workers goroutines. workers <= 1 (or n small) degrades to a plain loop, so
// the sequential and parallel engines share one code path.
func For(n, workers int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach runs body(i) for every i in [0, n) with the same chunking as For.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Reduce runs body over chunks, each chunk contributing a float64 partial
// that is summed (an OpenMP reduction clause).
func Reduce(n, workers int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return body(0, n)
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	partials := make([]float64, nChunks)
	var wg sync.WaitGroup
	idx := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			partials[slot] = body(lo, hi)
		}(idx, lo, hi)
		idx++
	}
	wg.Wait()
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// ChunkedReduce computes a sum over [0, n) with a FIXED chunk size, in
// parallel, then folds the per-chunk partials in chunk-index order. Because
// the grouping of floating-point additions depends only on chunkSize — never
// on the worker count or the scheduling — the result is bit-identical across
// thread counts, and across the sequential and distributed engines as long
// as rank boundaries fall on chunk boundaries. That property is what lets
// the equivalence tests demand exact agreement.
func ChunkedReduce(n, chunkSize, workers int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if chunkSize <= 0 {
		chunkSize = 64
	}
	nChunks := (n + chunkSize - 1) / chunkSize
	partials := make([]float64, nChunks)
	ForEach(nChunks, workers, func(c int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		partials[c] = body(lo, hi)
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// ChunkedReduceVec is ChunkedReduce for vector-valued partials: body fills
// its per-chunk accumulator acc (pre-zeroed, length dim); the partials are
// folded element-wise in chunk order into a fresh result slice.
func ChunkedReduceVec(n, chunkSize, workers, dim int, body func(lo, hi int, acc []float64)) []float64 {
	out := make([]float64, dim)
	if n <= 0 {
		return out
	}
	if chunkSize <= 0 {
		chunkSize = 64
	}
	nChunks := (n + chunkSize - 1) / chunkSize
	partials := make([][]float64, nChunks)
	ForEach(nChunks, workers, func(c int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		acc := make([]float64, dim)
		body(lo, hi, acc)
		partials[c] = acc
	})
	for _, p := range partials {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}

// Pipeline runs a two-stage producer/consumer pipeline over nChunks chunks
// with double buffering: load(c) fetches chunk c's inputs while compute(c-1)
// processes the previous chunk. It reproduces the paper's Section III-D
// scheme where loading π for the next chunk overlaps update_phi on the
// current one.
//
// load and compute both receive the chunk index and a buffer slot in {0, 1};
// the caller owns two sets of buffers and indexes them by slot.
func Pipeline(nChunks int, load func(chunk, slot int), compute func(chunk, slot int)) {
	if nChunks <= 0 {
		return
	}
	// ready[s] signals that slot s holds loaded data for the chunk the
	// consumer expects next; free[s] signals the consumer is done with it.
	type token struct{}
	ready := [2]chan token{make(chan token, 1), make(chan token, 1)}
	free := [2]chan token{make(chan token, 1), make(chan token, 1)}
	free[0] <- token{}
	free[1] <- token{}

	go func() {
		for c := 0; c < nChunks; c++ {
			slot := c & 1
			<-free[slot]
			load(c, slot)
			ready[slot] <- token{}
		}
	}()
	for c := 0; c < nChunks; c++ {
		slot := c & 1
		<-ready[slot]
		compute(c, slot)
		free[slot] <- token{}
	}
}

// Serial runs the same chunked load/compute schedule without overlap; it is
// the "single-buffering" baseline of Figure 3.
func Serial(nChunks int, load func(chunk, slot int), compute func(chunk, slot int)) {
	for c := 0; c < nChunks; c++ {
		load(c, 0)
		compute(c, 0)
	}
}
