// Package par provides the shared-memory parallelism primitives that play
// the role OpenMP plays in the paper: a chunked parallel-for over index
// ranges and a multi-buffered load/compute pipeline used to overlap loading π
// with the update_phi computation.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves the effective worker count for a range of n items:
// workers <= 0 means GOMAXPROCS, and the count never exceeds n. Callers that
// pre-size per-worker scratch (one buffer per ForWorkers index) use this to
// agree with For's split.
func Workers(n, workers int) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// ForWorkers splits [0, n) into exactly `workers` contiguous chunks whose
// sizes differ by at most one and runs body(w, lo, hi) with w the worker
// index in [0, workers). workers <= 1 (or n <= 1) degrades to a single
// inline body(0, 0, n) call, so the sequential and parallel engines share
// one code path and the single-thread path spawns no goroutines.
//
// The worker index is what lets callers own per-worker scratch buffers
// (sized with Workers) instead of allocating inside body — the inner-loop
// pooling contract of the φ kernels.
func ForWorkers(n, workers int, body func(w, lo, hi int)) {
	workers = Workers(n, workers)
	if workers == 0 {
		return
	}
	if workers == 1 {
		body(0, 0, n)
		return
	}
	// Balanced split: the first n%workers chunks get one extra item, so
	// chunk sizes differ by ≤ 1 and exactly `workers` goroutines launch.
	// (The previous ceil-divide split could launch fewer goroutines than
	// workers and strand an undersized tail chunk on one of them.)
	base, rem := n/workers, n%workers
	var wg sync.WaitGroup
	wg.Add(workers)
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		hi := lo + size
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// For splits [0, n) into contiguous chunks and runs body(lo, hi) on up to
// `workers` goroutines; see ForWorkers for the split guarantees.
func For(n, workers int, body func(lo, hi int)) {
	ForWorkers(n, workers, func(_, lo, hi int) { body(lo, hi) })
}

// ForEach runs body(i) for every i in [0, n) with the same chunking as For.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Reduce runs body over chunks, each chunk contributing a float64 partial
// that is summed (an OpenMP reduction clause). The fold order depends on the
// worker count; use ChunkedReduce where bit-stability across thread counts
// matters.
func Reduce(n, workers int, body func(lo, hi int) float64) float64 {
	workers = Workers(n, workers)
	if workers == 0 {
		return 0
	}
	if workers == 1 {
		return body(0, n)
	}
	partials := make([]float64, workers)
	ForWorkers(n, workers, func(w, lo, hi int) {
		partials[w] = body(lo, hi)
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// ChunkedReduce computes a sum over [0, n) with a FIXED chunk size, in
// parallel, then folds the per-chunk partials in chunk-index order. Because
// the grouping of floating-point additions depends only on chunkSize — never
// on the worker count or the scheduling — the result is bit-identical across
// thread counts, and across the sequential and distributed engines as long
// as rank boundaries fall on chunk boundaries. That property is what lets
// the equivalence tests demand exact agreement.
func ChunkedReduce(n, chunkSize, workers int, body func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if chunkSize <= 0 {
		chunkSize = 64
	}
	nChunks := (n + chunkSize - 1) / chunkSize
	partials := make([]float64, nChunks)
	ForEach(nChunks, workers, func(c int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		partials[c] = body(lo, hi)
	})
	var total float64
	for _, p := range partials {
		total += p
	}
	return total
}

// ChunkedReduceVec is ChunkedReduce for vector-valued partials: body fills
// its per-chunk accumulator acc (pre-zeroed, length dim); the partials are
// folded element-wise in chunk order into a fresh result slice.
func ChunkedReduceVec(n, chunkSize, workers, dim int, body func(lo, hi int, acc []float64)) []float64 {
	out := make([]float64, dim)
	if n <= 0 {
		return out
	}
	if chunkSize <= 0 {
		chunkSize = 64
	}
	nChunks := (n + chunkSize - 1) / chunkSize
	partials := make([][]float64, nChunks)
	ForEach(nChunks, workers, func(c int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		acc := make([]float64, dim)
		body(lo, hi, acc)
		partials[c] = acc
	})
	for _, p := range partials {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}

// Pipeline runs a two-stage producer/consumer pipeline over nChunks chunks
// with double buffering: load(c) fetches chunk c's inputs while compute(c-1)
// processes the previous chunk. It reproduces the paper's Section III-D
// scheme where loading π for the next chunk overlaps update_phi on the
// current one. See PipelineDepth for the buffering and panic contract.
func Pipeline(nChunks int, load func(chunk, slot int), compute func(chunk, slot int)) {
	PipelineDepth(nChunks, 2, load, compute)
}

// PipelineDepth is Pipeline with `depth` buffer slots: the loader may run up
// to depth-1 chunks ahead of the consumer, so a store whose fetch latency is
// bursty (one slow remote round among fast ones) keeps the compute stage
// fed. depth < 2 is treated as 2 (double buffering, the paper's scheme).
//
// load and compute receive the chunk index and a buffer slot in [0, depth);
// the caller owns depth sets of buffers and indexes them by slot. Chunks are
// computed strictly in order, on the caller's goroutine.
//
// Panic contract: a panic in either stage propagates to the caller — a
// loader panic is re-thrown from PipelineDepth on the calling goroutine, and
// a compute panic unwinds the caller directly — and in both cases the other
// stage's goroutine is released rather than left blocked on a slot that will
// never free.
//
// nChunks <= 1 degrades to the inline serial schedule: no goroutine, panics
// propagate natively.
func PipelineDepth(nChunks, depth int, load func(chunk, slot int), compute func(chunk, slot int)) {
	if nChunks <= 0 {
		return
	}
	if nChunks == 1 {
		load(0, 0)
		compute(0, 0)
		return
	}
	if depth < 2 {
		depth = 2
	}
	if depth > nChunks {
		depth = nChunks
	}

	// free holds slot-release tokens (the loader may claim up to depth of
	// them before the consumer returns any); ready carries loaded chunk
	// indices in order. Both are buffered to depth so neither side ever
	// blocks on its send — the only blocking points are the loader awaiting
	// a free slot and the consumer awaiting a loaded chunk, and both of
	// those also watch the abort channels so a panic on the other side can
	// never strand them.
	free := make(chan struct{}, depth)
	ready := make(chan int, depth)
	loadFailed := make(chan any, 1) // loader's recovered panic value
	quit := make(chan struct{})     // closed when the consumer unwinds
	for i := 0; i < depth; i++ {
		free <- struct{}{}
	}

	go func() {
		defer func() {
			if p := recover(); p != nil {
				loadFailed <- p
				close(ready)
			}
		}()
		for c := 0; c < nChunks; c++ {
			select {
			case <-free:
			case <-quit:
				return
			}
			load(c, c%depth)
			ready <- c
		}
	}()

	defer close(quit)
	for c := 0; c < nChunks; c++ {
		loaded, ok := <-ready
		if !ok {
			// The loader panicked; re-throw its panic value here so the
			// caller sees the failure on its own goroutine.
			panic(<-loadFailed)
		}
		if loaded != c {
			panic("par: pipeline chunks delivered out of order")
		}
		compute(c, c%depth)
		free <- struct{}{}
	}
}

// Serial runs the same chunked load/compute schedule without overlap; it is
// the "single-buffering" baseline of Figure 3.
func Serial(nChunks int, load func(chunk, slot int), compute func(chunk, slot int)) {
	for c := 0; c < nChunks; c++ {
		load(c, 0)
		compute(c, 0)
	}
}
