package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]int32, n)
			For(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

func TestForActuallyParallel(t *testing.T) {
	var mu sync.Mutex
	inFlight, peak := 0, 0
	For(8, 8, func(lo, hi int) {
		mu.Lock()
		inFlight++
		if inFlight > peak {
			peak = inFlight
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
	})
	if peak < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2", peak)
	}
}

func TestReduce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got := Reduce(1000, workers, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		if got != 499500 {
			t.Fatalf("workers=%d: Reduce = %v, want 499500", workers, got)
		}
	}
	if Reduce(0, 4, func(lo, hi int) float64 { return 1 }) != 0 {
		t.Fatal("Reduce over empty range should be 0")
	}
}

func TestPipelineOrderingAndCoverage(t *testing.T) {
	const chunks = 10
	var mu sync.Mutex
	loaded := map[int]int{} // chunk -> slot
	computed := []int{}     // order of computed chunks
	Pipeline(chunks, func(c, slot int) {
		mu.Lock()
		loaded[c] = slot
		mu.Unlock()
	}, func(c, slot int) {
		mu.Lock()
		if loaded[c] != slot {
			t.Errorf("chunk %d computed from slot %d, loaded into %d", c, slot, loaded[c])
		}
		computed = append(computed, c)
		mu.Unlock()
	})
	if len(computed) != chunks {
		t.Fatalf("computed %d chunks, want %d", len(computed), chunks)
	}
	for i, c := range computed {
		if c != i {
			t.Fatalf("compute order %v not sequential", computed)
		}
	}
}

func TestPipelineOverlaps(t *testing.T) {
	// With double buffering, total time should approach max(load, compute)
	// per chunk rather than their sum. Use generous margins so the test is
	// robust on loaded CI machines.
	const chunks = 8
	const stage = 10 * time.Millisecond
	work := func(c, slot int) { time.Sleep(stage) }

	start := time.Now()
	Serial(chunks, work, work)
	serial := time.Since(start)

	start = time.Now()
	Pipeline(chunks, work, work)
	pipelined := time.Since(start)

	if pipelined >= serial*3/4 {
		t.Fatalf("pipelining gave no speedup: serial %v, pipelined %v", serial, pipelined)
	}
}

func TestPipelineZeroChunks(t *testing.T) {
	called := false
	Pipeline(0, func(c, s int) { called = true }, func(c, s int) { called = true })
	if called {
		t.Fatal("Pipeline(0) invoked a stage")
	}
}

func TestPipelineSlotAlternation(t *testing.T) {
	var slots []int
	Pipeline(6, func(c, slot int) {}, func(c, slot int) { slots = append(slots, slot) })
	for i, s := range slots {
		if s != i&1 {
			t.Fatalf("chunk %d used slot %d, want %d", i, s, i&1)
		}
	}
}

func TestChunkedReduceMatchesSequential(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i%17) * 1.25
	}
	var want float64
	for _, v := range vals {
		want += v
	}
	for _, workers := range []int{1, 3, 8} {
		got := ChunkedReduce(len(vals), 64, workers, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		})
		if got != want {
			t.Fatalf("workers=%d: %v != %v", workers, got, want)
		}
	}
}

func TestChunkedReduceBitExactAcrossWorkers(t *testing.T) {
	// Values chosen so the sum is order-sensitive in float64; the fixed
	// chunking must make all worker counts agree bitwise.
	vals := make([]float64, 777)
	for i := range vals {
		vals[i] = 1e16 / float64(i+1)
		if i%2 == 0 {
			vals[i] = -vals[i] * 0.99999
		}
	}
	body := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	ref := ChunkedReduce(len(vals), 64, 1, body)
	for _, workers := range []int{2, 5, 16} {
		if got := ChunkedReduce(len(vals), 64, workers, body); got != ref {
			t.Fatalf("workers=%d: %v != %v (not bit-exact)", workers, got, ref)
		}
	}
}

func TestChunkedReduceVec(t *testing.T) {
	const n, dim = 300, 4
	want := make([]float64, dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			want[d] += float64(i*dim + d)
		}
	}
	got := ChunkedReduceVec(n, 64, 4, dim, func(lo, hi int, acc []float64) {
		for i := lo; i < hi; i++ {
			for d := 0; d < dim; d++ {
				acc[d] += float64(i*dim + d)
			}
		}
	})
	for d := 0; d < dim; d++ {
		if got[d] != want[d] {
			t.Fatalf("dim %d: %v != %v", d, got[d], want[d])
		}
	}
	// Empty range returns zeros.
	zero := ChunkedReduceVec(0, 64, 2, dim, func(lo, hi int, acc []float64) {})
	for _, v := range zero {
		if v != 0 {
			t.Fatal("empty reduce not zero")
		}
	}
}

func TestChunkedReduceDefaultChunk(t *testing.T) {
	// chunkSize <= 0 falls back to a default rather than panicking.
	got := ChunkedReduce(100, 0, 2, func(lo, hi int) float64 { return float64(hi - lo) })
	if got != 100 {
		t.Fatalf("got %v, want 100", got)
	}
}

func TestForWorkersBalancedChunks(t *testing.T) {
	// Table over (n, workers) edge cases: chunk sizes must differ by at most
	// one, cover [0, n) contiguously, and use exactly Workers(n, workers)
	// distinct worker ids — including workers > n and n == 0.
	cases := []struct{ n, workers int }{
		{0, 4}, {1, 1}, {1, 8}, {5, 2}, {5, 5}, {5, 8},
		{7, 3}, {100, 7}, {1000, 64}, {63, 64}, {65, 64}, {10, 0},
	}
	for _, tc := range cases {
		want := Workers(tc.n, tc.workers)
		var mu sync.Mutex
		type chunk struct{ w, lo, hi int }
		var chunks []chunk
		ForWorkers(tc.n, tc.workers, func(w, lo, hi int) {
			mu.Lock()
			chunks = append(chunks, chunk{w, lo, hi})
			mu.Unlock()
		})
		if tc.n == 0 {
			if len(chunks) != 0 {
				t.Fatalf("n=0 workers=%d: body invoked %d times", tc.workers, len(chunks))
			}
			continue
		}
		if len(chunks) != want {
			t.Fatalf("n=%d workers=%d: %d chunks, want %d", tc.n, tc.workers, len(chunks), want)
		}
		covered := make([]int, tc.n)
		seenW := make([]bool, want)
		minSz, maxSz := tc.n, 0
		for _, c := range chunks {
			if c.w < 0 || c.w >= want || seenW[c.w] {
				t.Fatalf("n=%d workers=%d: bad or repeated worker id %d", tc.n, tc.workers, c.w)
			}
			seenW[c.w] = true
			sz := c.hi - c.lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			for i := c.lo; i < c.hi; i++ {
				covered[i]++
			}
		}
		for i, h := range covered {
			if h != 1 {
				t.Fatalf("n=%d workers=%d: index %d covered %d times", tc.n, tc.workers, i, h)
			}
		}
		if maxSz-minSz > 1 {
			t.Fatalf("n=%d workers=%d: chunk sizes range [%d, %d], want spread <= 1",
				tc.n, tc.workers, minSz, maxSz)
		}
	}
}

func TestWorkersResolver(t *testing.T) {
	if got := Workers(0, 4); got != 0 {
		t.Fatalf("Workers(0, 4) = %d, want 0", got)
	}
	if got := Workers(3, 8); got != 3 {
		t.Fatalf("Workers(3, 8) = %d, want 3", got)
	}
	if got := Workers(100, 4); got != 4 {
		t.Fatalf("Workers(100, 4) = %d, want 4", got)
	}
	if got := Workers(100, 0); got < 1 {
		t.Fatalf("Workers(100, 0) = %d, want >= 1", got)
	}
}

func TestPipelineSingleChunkInline(t *testing.T) {
	// nChunks == 1 must degrade to the serial schedule: load then compute,
	// both on the calling goroutine, slot 0.
	var order []string
	Pipeline(1, func(c, slot int) {
		if c != 0 || slot != 0 {
			t.Fatalf("load got (c=%d, slot=%d), want (0, 0)", c, slot)
		}
		order = append(order, "load")
	}, func(c, slot int) {
		if c != 0 || slot != 0 {
			t.Fatalf("compute got (c=%d, slot=%d), want (0, 0)", c, slot)
		}
		order = append(order, "compute")
	})
	if len(order) != 2 || order[0] != "load" || order[1] != "compute" {
		t.Fatalf("order = %v, want [load compute]", order)
	}
}

// expectPanic runs f and fails unless it panics with want.
func expectPanic(t *testing.T, want any, f func()) {
	t.Helper()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		f()
	}()
	select {
	case got := <-done:
		if got != want {
			t.Fatalf("panic value = %v, want %v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadlock: panic did not propagate within 5s")
	}
}

func TestPipelineLoadPanicPropagates(t *testing.T) {
	// A panic in the load stage must reach the caller, not deadlock the
	// consumer waiting on a chunk that will never arrive.
	expectPanic(t, "load boom", func() {
		Pipeline(8, func(c, slot int) {
			if c == 3 {
				panic("load boom")
			}
		}, func(c, slot int) {})
	})
}

func TestPipelineComputePanicPropagates(t *testing.T) {
	// A panic in the compute stage must unwind the caller and release the
	// loader (which may be blocked waiting for a free slot).
	expectPanic(t, "compute boom", func() {
		Pipeline(64, func(c, slot int) {}, func(c, slot int) {
			if c == 2 {
				panic("compute boom")
			}
		})
	})
}

func TestPipelineDepthVariants(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 3, 8, 100} {
		const chunks = 12
		var computed []int
		PipelineDepth(chunks, depth, func(c, slot int) {
			if slot < 0 || (depth >= 2 && slot >= depth) {
				t.Fatalf("depth=%d: slot %d out of range", depth, slot)
			}
		}, func(c, slot int) {
			computed = append(computed, c)
		})
		if len(computed) != chunks {
			t.Fatalf("depth=%d: computed %d chunks, want %d", depth, len(computed), chunks)
		}
		for i, c := range computed {
			if c != i {
				t.Fatalf("depth=%d: compute order %v not sequential", depth, computed)
			}
		}
	}
}

func TestPipelineDepthLoaderRunsAhead(t *testing.T) {
	// With depth d, the loader must be able to finish up to d chunks before
	// the first compute completes.
	const depth = 4
	loads := make(chan int, depth)
	computeGate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		PipelineDepth(8, depth, func(c, slot int) {
			loads <- c
		}, func(c, slot int) {
			if c == 0 {
				<-computeGate
			}
		})
	}()
	// While compute(0) is blocked, the loader should deliver depth loads.
	for i := 0; i < depth; i++ {
		select {
		case <-loads:
		case <-time.After(5 * time.Second):
			t.Fatalf("loader stalled after %d loads; want %d ahead of compute", i, depth)
		}
	}
	close(computeGate)
	<-done
}
