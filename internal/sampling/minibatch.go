// Package sampling implements the stochastic pieces of the SG-MCMC sampler:
// the edge minibatch strategies that feed the global (β/θ) update and the
// neighbor subsampling that feeds the local (φ/π) update.
//
// Every strategy comes with its scaling factor h(E_n) chosen so that the
// scaled minibatch sum is an unbiased estimator of the full-graph sum — the
// invariant the property tests in this package verify by Monte Carlo.
package sampling

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/mathx"
)

// Batch is one edge minibatch E_n: the sampled vertex pairs, the observation
// y for each pair, the global scaling factor h(E_n), and the distinct
// vertices touched (the "M vertices in E_n" of the paper's Table I).
type Batch struct {
	Pairs  []graph.Edge
	Linked []bool
	Scale  float64
	Nodes  []int32
}

// Reset clears the batch for reuse without reallocating.
func (b *Batch) Reset() {
	b.Pairs = b.Pairs[:0]
	b.Linked = b.Linked[:0]
	b.Nodes = b.Nodes[:0]
	b.Scale = 0
}

// collectNodes fills b.Nodes with the distinct endpoints of b.Pairs.
func (b *Batch) collectNodes(scratch map[int32]struct{}) {
	for k := range scratch {
		delete(scratch, k)
	}
	for _, e := range b.Pairs {
		if _, ok := scratch[e.A]; !ok {
			scratch[e.A] = struct{}{}
			b.Nodes = append(b.Nodes, e.A)
		}
		if _, ok := scratch[e.B]; !ok {
			scratch[e.B] = struct{}{}
			b.Nodes = append(b.Nodes, e.B)
		}
	}
}

// EdgeStrategy produces edge minibatches. Implementations are safe for
// concurrent use only if each goroutine passes its own RNG and Batch.
type EdgeStrategy interface {
	// Sample fills out with a fresh minibatch using rng.
	Sample(rng *mathx.RNG, out *Batch)
	Name() string
}

// RandomPair samples pairs (a, b) uniformly from the N(N-1)/2 vertex pairs,
// skipping held-out pairs. This is the simplest strategy of Li et al.; its
// scaling factor is (#candidate pairs) / |E_n|.
type RandomPair struct {
	g        *graph.Graph
	excluded *graph.EdgeSet // held-out pairs, never observed in training
	nPairs   int
	scratch  map[int32]struct{}
}

// NewRandomPair builds the strategy. excluded may be nil.
func NewRandomPair(g *graph.Graph, excluded *graph.EdgeSet, nPairs int) (*RandomPair, error) {
	if nPairs < 1 {
		return nil, fmt.Errorf("sampling: minibatch size %d must be positive", nPairs)
	}
	n := g.NumVertices()
	if nPairs > n*(n-1)/4 {
		return nil, fmt.Errorf("sampling: minibatch size %d too large for %d vertices", nPairs, n)
	}
	return &RandomPair{g: g, excluded: excluded, nPairs: nPairs, scratch: map[int32]struct{}{}}, nil
}

// Name implements EdgeStrategy.
func (s *RandomPair) Name() string { return "random-pair" }

// Sample implements EdgeStrategy.
func (s *RandomPair) Sample(rng *mathx.RNG, out *Batch) {
	out.Reset()
	n := s.g.NumVertices()
	seen := graph.NewEdgeSet(2 * s.nPairs)
	for len(out.Pairs) < s.nPairs {
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		e := graph.Edge{A: int32(a), B: int32(b)}.Canon()
		if s.excluded != nil && s.excluded.Contains(e) {
			continue
		}
		if !seen.Add(e) {
			continue
		}
		out.Pairs = append(out.Pairs, e)
		out.Linked = append(out.Linked, s.g.HasEdge(a, b))
	}
	candidates := float64(n)*float64(n-1)/2 - s.excludedCount()
	out.Scale = candidates / float64(len(out.Pairs))
	out.collectNodes(s.scratch)
}

func (s *RandomPair) excludedCount() float64 {
	if s.excluded == nil {
		return 0
	}
	return float64(s.excluded.Len())
}

// StratifiedNode implements the stratified random node sampling of Li et al.:
// pick a vertex i uniformly; with probability linkProb the minibatch is the
// full link set of i, otherwise it is a uniform sample of nonLinkCount
// non-linked pairs (i, b). The per-case scaling factors keep the estimator
// unbiased:
//
//	link case:     h = N / (2·linkProb)
//	non-link case: h = N · |nonlinks(i)| / (2·(1-linkProb)·|E_n|)
//
// where |nonlinks(i)| = N-1-deg(i) minus held-out pairs touching i. Setting
// linkProb = 1/(m+1) recovers the paper's formulation with m non-link strata.
type StratifiedNode struct {
	g            *graph.Graph
	excluded     *graph.EdgeSet
	linkProb     float64
	nonLinkCount int
	heldTouch    []int32 // per-vertex count of excluded pairs
	scratch      map[int32]struct{}
}

// NewStratifiedNode builds the strategy. excluded may be nil. heldPairs must
// enumerate the same pairs as excluded (it is used to precompute per-vertex
// exclusion counts); pass nil for both to disable exclusion.
func NewStratifiedNode(g *graph.Graph, excluded *graph.EdgeSet, linkProb float64, nonLinkCount int) (*StratifiedNode, error) {
	if linkProb <= 0 || linkProb >= 1 {
		return nil, fmt.Errorf("sampling: linkProb %v must be in (0,1)", linkProb)
	}
	if nonLinkCount < 1 {
		return nil, fmt.Errorf("sampling: nonLinkCount %d must be positive", nonLinkCount)
	}
	if nonLinkCount >= g.NumVertices()/2 {
		return nil, fmt.Errorf("sampling: nonLinkCount %d too large for %d vertices", nonLinkCount, g.NumVertices())
	}
	s := &StratifiedNode{
		g:            g,
		excluded:     excluded,
		linkProb:     linkProb,
		nonLinkCount: nonLinkCount,
		heldTouch:    make([]int32, g.NumVertices()),
		scratch:      map[int32]struct{}{},
	}
	if excluded != nil {
		excluded.Each(func(e graph.Edge) {
			s.heldTouch[e.A]++
			s.heldTouch[e.B]++
		})
	}
	return s, nil
}

// Name implements EdgeStrategy.
func (s *StratifiedNode) Name() string { return "stratified-node" }

// Sample implements EdgeStrategy.
func (s *StratifiedNode) Sample(rng *mathx.RNG, out *Batch) {
	out.Reset()
	n := s.g.NumVertices()
	for {
		i := rng.Intn(n)
		if rng.Float64() < s.linkProb {
			links := s.g.Neighbors(i)
			if len(links) == 0 {
				continue // isolated vertex: resample
			}
			for _, b := range links {
				out.Pairs = append(out.Pairs, graph.Edge{A: int32(i), B: b}.Canon())
				out.Linked = append(out.Linked, true)
			}
			out.Scale = float64(n) / (2 * s.linkProb)
			break
		}
		nonlinks := n - 1 - s.g.Degree(i) - int(s.heldTouch[i])
		if nonlinks < s.nonLinkCount {
			continue // pathological hub: resample
		}
		seen := map[int32]struct{}{}
		for len(out.Pairs) < s.nonLinkCount {
			b := rng.Intn(n)
			if b == i || s.g.HasEdge(i, b) {
				continue
			}
			e := graph.Edge{A: int32(i), B: int32(b)}.Canon()
			if s.excluded != nil && s.excluded.Contains(e) {
				continue
			}
			if _, dup := seen[int32(b)]; dup {
				continue
			}
			seen[int32(b)] = struct{}{}
			out.Pairs = append(out.Pairs, e)
			out.Linked = append(out.Linked, false)
		}
		out.Scale = float64(n) * float64(nonlinks) / (2 * (1 - s.linkProb) * float64(len(out.Pairs)))
		break
	}
	out.collectNodes(s.scratch)
}
