package sampling

import "repro/internal/graph"

// View is the read interface the neighbor strategies need about a vertex's
// surroundings. The single-node engine backs it with the full graph; the
// distributed engine backs it with the per-vertex adjacency data the master
// scatters along with the minibatch (Section III-A: workers receive only the
// subset of E touched by the minibatch vertices).
//
// Both implementations must answer identically for the vertices they are
// asked about — the strategies consume randomness based on these answers, so
// agreement here is what makes the two engines produce bit-identical chains.
type View interface {
	// NumVertices returns N.
	NumVertices() int
	// Degree returns the number of training-graph links of a.
	Degree(a int32) int
	// Neighbors returns a's sorted adjacency list (not modified by callers).
	Neighbors(a int32) []int32
	// HasEdge reports whether (a, b) is a training link. Only queried with
	// a equal to a vertex the View was built for.
	HasEdge(a, b int32) bool
	// IsExcluded reports whether (a, b) is a held-out pair.
	IsExcluded(a, b int32) bool
	// ExcludedCount returns how many held-out pairs touch a.
	ExcludedCount(a int32) int
}

// GraphView adapts a full graph plus an optional held-out exclusion set to
// the View interface.
type GraphView struct {
	g         *graph.Graph
	excluded  *graph.EdgeSet
	heldTouch []int32
}

// NewGraphView builds a View over g. excluded may be nil.
func NewGraphView(g *graph.Graph, excluded *graph.EdgeSet) *GraphView {
	v := &GraphView{g: g, excluded: excluded, heldTouch: make([]int32, g.NumVertices())}
	if excluded != nil {
		excluded.Each(func(e graph.Edge) {
			v.heldTouch[e.A]++
			v.heldTouch[e.B]++
		})
	}
	return v
}

// NumVertices implements View.
func (v *GraphView) NumVertices() int { return v.g.NumVertices() }

// Degree implements View.
func (v *GraphView) Degree(a int32) int { return v.g.Degree(int(a)) }

// Neighbors implements View.
func (v *GraphView) Neighbors(a int32) []int32 { return v.g.Neighbors(int(a)) }

// HasEdge implements View.
func (v *GraphView) HasEdge(a, b int32) bool { return v.g.HasEdge(int(a), int(b)) }

// IsExcluded implements View.
func (v *GraphView) IsExcluded(a, b int32) bool {
	return v.excluded != nil && v.excluded.Contains(graph.Edge{A: a, B: b})
}

// ExcludedCount implements View.
func (v *GraphView) ExcludedCount(a int32) int { return int(v.heldTouch[a]) }
