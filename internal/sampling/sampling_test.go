package sampling

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

// testGraph builds a small planted graph for the Monte Carlo estimator
// checks.
func testGraph(t *testing.T, n, edges int, seed uint64) *graph.Graph {
	t.Helper()
	g, _, err := gen.Planted(gen.DefaultPlanted(n, 5, edges, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pairFn is an arbitrary deterministic test function over vertex pairs whose
// full-graph sum the minibatch estimators must reproduce in expectation.
func pairFn(e graph.Edge, linked bool) float64 {
	v := float64((int(e.A)*31+int(e.B)*17)%13) + 0.25
	if linked {
		v *= 2.5
	}
	return v
}

// fullPairSum computes Σ over all unordered pairs not excluded.
func fullPairSum(g *graph.Graph, excluded *graph.EdgeSet) float64 {
	n := g.NumVertices()
	var total float64
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			e := graph.Edge{A: int32(a), B: int32(b)}
			if excluded != nil && excluded.Contains(e) {
				continue
			}
			total += pairFn(e, g.HasEdge(a, b))
		}
	}
	return total
}

func estimatorMean(s EdgeStrategy, trials int, rng *mathx.RNG) float64 {
	var batch Batch
	var acc float64
	for i := 0; i < trials; i++ {
		s.Sample(rng, &batch)
		var sum float64
		for j, e := range batch.Pairs {
			sum += pairFn(e, batch.Linked[j])
		}
		acc += batch.Scale * sum
	}
	return acc / float64(trials)
}

func TestRandomPairUnbiased(t *testing.T) {
	g := testGraph(t, 60, 300, 1)
	s, err := NewRandomPair(g, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := fullPairSum(g, nil)
	got := estimatorMean(s, 30000, mathx.NewRNG(2))
	if rel := math.Abs(got-want) / want; rel > 0.03 {
		t.Fatalf("random-pair estimator mean %v, full sum %v (rel err %.3f)", got, want, rel)
	}
}

func TestRandomPairUnbiasedWithExclusion(t *testing.T) {
	g := testGraph(t, 60, 300, 3)
	excl := graph.NewEdgeSet(16)
	rng := mathx.NewRNG(4)
	for excl.Len() < 40 {
		excl.Add(graph.Edge{A: int32(rng.Intn(60)), B: int32(rng.Intn(60))})
	}
	s, err := NewRandomPair(g, &excl, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := fullPairSum(g, &excl)
	got := estimatorMean(s, 30000, mathx.NewRNG(5))
	if rel := math.Abs(got-want) / want; rel > 0.03 {
		t.Fatalf("excluded random-pair estimator mean %v, want %v (rel %.3f)", got, want, rel)
	}
	// No excluded pair may ever be emitted.
	var batch Batch
	for i := 0; i < 200; i++ {
		s.Sample(rng, &batch)
		for _, e := range batch.Pairs {
			if excl.Contains(e) {
				t.Fatalf("excluded pair %v sampled", e)
			}
		}
	}
}

func TestStratifiedNodeUnbiased(t *testing.T) {
	g := testGraph(t, 60, 300, 6)
	s, err := NewStratifiedNode(g, nil, 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := fullPairSum(g, nil)
	got := estimatorMean(s, 60000, mathx.NewRNG(7))
	if rel := math.Abs(got-want) / want; rel > 0.04 {
		t.Fatalf("stratified estimator mean %v, full sum %v (rel err %.3f)", got, want, rel)
	}
}

func TestStratifiedNodeLinkBatchesAreLinkSets(t *testing.T) {
	g := testGraph(t, 80, 400, 8)
	s, err := NewStratifiedNode(g, nil, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(9)
	var batch Batch
	sawLink, sawNonLink := false, false
	for i := 0; i < 300; i++ {
		s.Sample(rng, &batch)
		if len(batch.Pairs) == 0 {
			t.Fatal("empty minibatch")
		}
		allLinked := true
		for _, l := range batch.Linked {
			allLinked = allLinked && l
		}
		if allLinked {
			sawLink = true
			// Link batches must be exactly one vertex's full link set.
			base := int32(-1)
			counts := map[int32]int{}
			for _, e := range batch.Pairs {
				counts[e.A]++
				counts[e.B]++
			}
			for v, c := range counts {
				if c == len(batch.Pairs) {
					base = v
				}
			}
			if len(batch.Pairs) > 1 && base == -1 {
				t.Fatal("link batch does not share a common vertex")
			}
			if base >= 0 && len(batch.Pairs) != g.Degree(int(base)) {
				t.Fatalf("link batch size %d != degree %d", len(batch.Pairs), g.Degree(int(base)))
			}
		} else {
			sawNonLink = true
			for j, l := range batch.Linked {
				if l {
					t.Fatalf("non-link batch contains linked pair %v", batch.Pairs[j])
				}
			}
			if len(batch.Pairs) != 5 {
				t.Fatalf("non-link batch size %d, want 5", len(batch.Pairs))
			}
		}
	}
	if !sawLink || !sawNonLink {
		t.Fatal("stratified sampler never produced one of the strata")
	}
}

func TestBatchNodesAreDistinctEndpoints(t *testing.T) {
	g := testGraph(t, 50, 200, 10)
	s, err := NewRandomPair(g, nil, 15)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(11)
	var batch Batch
	for i := 0; i < 50; i++ {
		s.Sample(rng, &batch)
		want := map[int32]bool{}
		for _, e := range batch.Pairs {
			want[e.A] = true
			want[e.B] = true
		}
		if len(batch.Nodes) != len(want) {
			t.Fatalf("Nodes has %d entries, want %d distinct", len(batch.Nodes), len(want))
		}
		seen := map[int32]bool{}
		for _, v := range batch.Nodes {
			if seen[v] || !want[v] {
				t.Fatalf("Nodes contains duplicate or foreign vertex %d", v)
			}
			seen[v] = true
		}
	}
}

func TestEdgeStrategyValidation(t *testing.T) {
	g := testGraph(t, 30, 100, 12)
	if _, err := NewRandomPair(g, nil, 0); err == nil {
		t.Fatal("zero minibatch accepted")
	}
	if _, err := NewRandomPair(g, nil, 10000); err == nil {
		t.Fatal("oversized minibatch accepted")
	}
	if _, err := NewStratifiedNode(g, nil, 0, 5); err == nil {
		t.Fatal("linkProb 0 accepted")
	}
	if _, err := NewStratifiedNode(g, nil, 1, 5); err == nil {
		t.Fatal("linkProb 1 accepted")
	}
	if _, err := NewStratifiedNode(g, nil, 0.5, 0); err == nil {
		t.Fatal("zero non-link count accepted")
	}
	if _, err := NewStratifiedNode(g, nil, 0.5, 20); err == nil {
		t.Fatal("huge non-link count accepted")
	}
}

// neighborFn is the per-node test function for the neighbor estimators.
func neighborFn(b int32, linked bool) float64 {
	v := float64(int(b)%11) + 0.5
	if linked {
		v *= 3
	}
	return v
}

func fullNeighborSum(g *graph.Graph, a int32, excluded *graph.EdgeSet) float64 {
	var total float64
	for b := 0; b < g.NumVertices(); b++ {
		if int32(b) == a {
			continue
		}
		if excluded != nil && excluded.Contains(graph.Edge{A: a, B: int32(b)}) {
			continue
		}
		total += neighborFn(int32(b), g.HasEdge(int(a), b))
	}
	return total
}

func neighborEstimatorMean(s NeighborStrategy, a int32, trials int, rng *mathx.RNG) float64 {
	var ns NeighborSample
	var acc float64
	for i := 0; i < trials; i++ {
		s.Sample(a, rng, &ns)
		var sum float64
		for j, b := range ns.Nodes {
			sum += ns.Scale[j] * neighborFn(b, ns.Linked[j])
		}
		acc += sum
	}
	return acc / float64(trials)
}

func TestUniformNeighborsUnbiased(t *testing.T) {
	g := testGraph(t, 80, 400, 13)
	s, err := NewUniformNeighbors(NewGraphView(g, nil), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int32{0, 17, 42} {
		want := fullNeighborSum(g, a, nil)
		got := neighborEstimatorMean(s, a, 20000, mathx.NewRNG(uint64(100+a)))
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Fatalf("uniform neighbors a=%d: mean %v, want %v (rel %.3f)", a, got, want, rel)
		}
	}
}

func TestLinkPlusUniformUnbiased(t *testing.T) {
	g := testGraph(t, 80, 400, 14)
	s, err := NewLinkPlusUniform(NewGraphView(g, nil), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int32{1, 23, 55} {
		want := fullNeighborSum(g, a, nil)
		got := neighborEstimatorMean(s, a, 20000, mathx.NewRNG(uint64(200+a)))
		if rel := math.Abs(got-want) / want; rel > 0.03 {
			t.Fatalf("link+uniform a=%d: mean %v, want %v (rel %.3f)", a, got, want, rel)
		}
	}
}

func TestLinkPlusUniformAlwaysIncludesLinks(t *testing.T) {
	g := testGraph(t, 60, 250, 15)
	s, err := NewLinkPlusUniform(NewGraphView(g, nil), 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(16)
	var ns NeighborSample
	a := int32(0)
	deg := g.Degree(0)
	for i := 0; i < 100; i++ {
		s.Sample(a, rng, &ns)
		links := 0
		for j, b := range ns.Nodes {
			if ns.Linked[j] {
				links++
				if !g.HasEdge(0, int(b)) {
					t.Fatal("node marked linked but edge absent")
				}
				if ns.Scale[j] != 1 {
					t.Fatalf("link weight = %v, want 1", ns.Scale[j])
				}
			}
		}
		if links != deg {
			t.Fatalf("sample carries %d links, vertex has degree %d", links, deg)
		}
	}
}

func TestLinkPlusUniformVarianceLower(t *testing.T) {
	// The whole point of link+uniform: the per-sample estimator variance is
	// far below uniform sampling on a sparse graph.
	g := testGraph(t, 200, 800, 17)
	uni, err := NewUniformNeighbors(NewGraphView(g, nil), 12)
	if err != nil {
		t.Fatal(err)
	}
	lpu, err := NewLinkPlusUniform(NewGraphView(g, nil), 12)
	if err != nil {
		t.Fatal(err)
	}
	variance := func(s NeighborStrategy, seed uint64) float64 {
		rng := mathx.NewRNG(seed)
		var ns NeighborSample
		var w mathx.Welford
		for i := 0; i < 4000; i++ {
			s.Sample(5, rng, &ns)
			var sum float64
			for j, b := range ns.Nodes {
				sum += ns.Scale[j] * neighborFn(b, ns.Linked[j])
			}
			w.Add(sum)
		}
		return w.Var()
	}
	vu := variance(uni, 18)
	vl := variance(lpu, 19)
	if vl >= vu {
		t.Fatalf("link+uniform variance %v not below uniform %v", vl, vu)
	}
}

func TestNeighborValidation(t *testing.T) {
	g := testGraph(t, 30, 100, 20)
	view := NewGraphView(g, nil)
	if _, err := NewUniformNeighbors(view, 0); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := NewUniformNeighbors(view, 30); err == nil {
		t.Fatal("count >= N accepted")
	}
	if _, err := NewLinkPlusUniform(view, 0); err == nil {
		t.Fatal("zero count accepted")
	}
	if _, err := NewLinkPlusUniform(view, 16); err == nil {
		t.Fatal("count >= N/2 accepted")
	}
}

func TestNeighborSampleNoDuplicates(t *testing.T) {
	g := testGraph(t, 100, 400, 21)
	for _, s := range []NeighborStrategy{
		mustUniform(t, g, 15), mustLPU(t, g, 15),
	} {
		rng := mathx.NewRNG(22)
		var ns NeighborSample
		for i := 0; i < 100; i++ {
			s.Sample(7, rng, &ns)
			seen := map[int32]bool{}
			for _, b := range ns.Nodes {
				if b == 7 {
					t.Fatalf("%s: vertex sampled itself", s.Name())
				}
				if seen[b] {
					t.Fatalf("%s: duplicate neighbor %d", s.Name(), b)
				}
				seen[b] = true
			}
		}
	}
}

func mustUniform(t *testing.T, g *graph.Graph, c int) NeighborStrategy {
	t.Helper()
	s, err := NewUniformNeighbors(NewGraphView(g, nil), c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustLPU(t *testing.T, g *graph.Graph, c int) NeighborStrategy {
	t.Helper()
	s, err := NewLinkPlusUniform(NewGraphView(g, nil), c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mapDupReference replays a strategy's rejection loop with the map-based
// duplicate check the linear-scan version replaced. The accept/reject
// decisions must be identical, so from the same RNG stream both produce the
// same sample — which pins that the deforested loop did not perturb any RNG
// draw sequence (and therefore no trained trajectory).
func mapDupUniformReference(s *UniformNeighbors, a int32, rng *mathx.RNG, out *NeighborSample) {
	out.Reset()
	n := s.view.NumVertices()
	seen := map[int32]struct{}{}
	pop := n - 1 - s.view.ExcludedCount(a)
	if pop < s.count {
		pop = s.count
	}
	w := float64(pop) / float64(s.count)
	for len(out.Nodes) < s.count {
		b := int32(rng.Intn(n))
		if b == a || s.view.IsExcluded(a, b) {
			continue
		}
		if _, dup := seen[b]; dup {
			continue
		}
		seen[b] = struct{}{}
		out.add(b, s.view.HasEdge(a, b), w)
	}
}

func mapDupLPUReference(s *LinkPlusUniform, a int32, rng *mathx.RNG, out *NeighborSample) {
	out.Reset()
	n := s.view.NumVertices()
	for _, b := range s.view.Neighbors(a) {
		out.add(b, true, 1)
	}
	deg := s.view.Degree(a)
	nonlinks := n - 1 - deg - s.view.ExcludedCount(a)
	if nonlinks <= 0 {
		return
	}
	take := s.count
	if take > nonlinks {
		take = nonlinks
	}
	w := float64(nonlinks) / float64(take)
	seen := map[int32]struct{}{}
	added := 0
	for added < take {
		b := int32(rng.Intn(n))
		if b == a || s.view.HasEdge(a, b) || s.view.IsExcluded(a, b) {
			continue
		}
		if _, dup := seen[b]; dup {
			continue
		}
		seen[b] = struct{}{}
		out.add(b, false, w)
		added++
	}
}

func sameSample(a, b *NeighborSample) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] || a.Linked[i] != b.Linked[i] || a.Scale[i] != b.Scale[i] {
			return false
		}
	}
	return true
}

func TestNeighborSampleMatchesMapReference(t *testing.T) {
	g := testGraph(t, 200, 900, 11)
	uni, err := NewUniformNeighbors(NewGraphView(g, nil), 24)
	if err != nil {
		t.Fatal(err)
	}
	lpu, err := NewLinkPlusUniform(NewGraphView(g, nil), 24)
	if err != nil {
		t.Fatal(err)
	}
	var got, want NeighborSample
	for a := int32(0); a < 200; a += 7 {
		uni.Sample(a, mathx.NewStream(5, uint64(a)), &got)
		mapDupUniformReference(uni, a, mathx.NewStream(5, uint64(a)), &want)
		if !sameSample(&got, &want) {
			t.Fatalf("uniform: vertex %d diverged from map-based reference", a)
		}
		lpu.Sample(a, mathx.NewStream(5, uint64(a)), &got)
		mapDupLPUReference(lpu, a, mathx.NewStream(5, uint64(a)), &want)
		if !sameSample(&got, &want) {
			t.Fatalf("link-plus-uniform: vertex %d diverged from map-based reference", a)
		}
	}
}
