package sampling

import (
	"fmt"

	"repro/internal/mathx"
)

// NeighborSample is the neighbor set V_n for one minibatch vertex, together
// with a per-node weight such that Σ_b Scale[b]·g_ab is an unbiased estimate
// of Σ_{b≠a} g_ab over the whole vertex set.
type NeighborSample struct {
	Nodes  []int32
	Linked []bool
	Scale  []float64
}

// Reset clears the sample for reuse.
func (s *NeighborSample) Reset() {
	s.Nodes = s.Nodes[:0]
	s.Linked = s.Linked[:0]
	s.Scale = s.Scale[:0]
}

func (s *NeighborSample) add(node int32, linked bool, scale float64) {
	s.Nodes = append(s.Nodes, node)
	s.Linked = append(s.Linked, linked)
	s.Scale = append(s.Scale, scale)
}

// containsFrom reports whether node appears in nodes[start:]. The rejection
// loops below use it as their duplicate check instead of a per-call map: the
// candidate sets are tiny (≈ the neighbor count), so a linear scan beats the
// map on both time and — the point in the update_phi hot loop — allocation.
// The accept/reject decisions are identical to the map's, so the RNG draw
// sequence (and every downstream trajectory) is unchanged.
func containsFrom(nodes []int32, start int, node int32) bool {
	for _, v := range nodes[start:] {
		if v == node {
			return true
		}
	}
	return false
}

// NeighborStrategy draws the neighbor set used by update_phi (Eqn 5).
// Implementations are stateless after construction and safe for concurrent
// Sample calls as long as each goroutine passes its own rng and out.
type NeighborStrategy interface {
	Sample(a int32, rng *mathx.RNG, out *NeighborSample)
	Name() string
}

// UniformNeighbors draws count distinct vertices uniformly from V \ {a},
// skipping held-out pairs, each weighted (candidates)/count. This is the
// strategy written in the paper's Eqn (5) (which states the asymptotically
// equal weight N/|V_n|).
type UniformNeighbors struct {
	view  View
	count int
}

// NewUniformNeighbors builds the strategy over a View.
func NewUniformNeighbors(view View, count int) (*UniformNeighbors, error) {
	if count < 1 {
		return nil, fmt.Errorf("sampling: neighbor count %d must be positive", count)
	}
	if count >= view.NumVertices() {
		return nil, fmt.Errorf("sampling: neighbor count %d >= N = %d", count, view.NumVertices())
	}
	return &UniformNeighbors{view: view, count: count}, nil
}

// Name implements NeighborStrategy.
func (s *UniformNeighbors) Name() string { return "uniform" }

// Sample implements NeighborStrategy.
func (s *UniformNeighbors) Sample(a int32, rng *mathx.RNG, out *NeighborSample) {
	out.Reset()
	n := s.view.NumVertices()
	// Population size excludes a itself and a's held-out pairs.
	pop := n - 1 - s.view.ExcludedCount(a)
	if pop < s.count {
		pop = s.count // degenerate tiny graph; weights stay finite
	}
	w := float64(pop) / float64(s.count)
	for len(out.Nodes) < s.count {
		b := int32(rng.Intn(n))
		if b == a {
			continue
		}
		if s.view.IsExcluded(a, b) {
			continue
		}
		if containsFrom(out.Nodes, 0, b) {
			continue
		}
		out.add(b, s.view.HasEdge(a, b), w)
	}
}

// LinkPlusUniform is the lower-variance strategy used by svinet-style
// implementations: the neighbor set is all of a's links (weight 1 each) plus
// count uniformly sampled non-links (weight |nonlinks(a)|/count each). Link
// terms — the informative ones in a sparse graph — are always present, so the
// gradient variance drops by orders of magnitude for low-degree vertices.
type LinkPlusUniform struct {
	view  View
	count int
}

// NewLinkPlusUniform builds the strategy over a View.
func NewLinkPlusUniform(view View, count int) (*LinkPlusUniform, error) {
	if count < 1 {
		return nil, fmt.Errorf("sampling: neighbor count %d must be positive", count)
	}
	if count >= view.NumVertices()/2 {
		return nil, fmt.Errorf("sampling: neighbor count %d too large for N = %d", count, view.NumVertices())
	}
	return &LinkPlusUniform{view: view, count: count}, nil
}

// Name implements NeighborStrategy.
func (s *LinkPlusUniform) Name() string { return "link-plus-uniform" }

// Sample implements NeighborStrategy.
func (s *LinkPlusUniform) Sample(a int32, rng *mathx.RNG, out *NeighborSample) {
	out.Reset()
	n := s.view.NumVertices()
	for _, b := range s.view.Neighbors(a) {
		out.add(b, true, 1)
	}
	deg := s.view.Degree(a)
	nonlinks := n - 1 - deg - s.view.ExcludedCount(a)
	if nonlinks <= 0 {
		return // vertex linked to everything; nothing to subsample
	}
	take := s.count
	if take > nonlinks {
		take = nonlinks
	}
	w := float64(nonlinks) / float64(take)
	// Duplicates can only collide with other sampled non-links (a candidate
	// that is a link was already rejected), so the scan starts after the
	// link prefix.
	start := len(out.Nodes)
	added := 0
	for added < take {
		b := int32(rng.Intn(n))
		if b == a || s.view.HasEdge(a, b) {
			continue
		}
		if s.view.IsExcluded(a, b) {
			continue
		}
		if containsFrom(out.Nodes, start, b) {
			continue
		}
		out.add(b, false, w)
		added++
	}
}
