package sampling

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

func benchFixture(b *testing.B) *graph.Graph {
	b.Helper()
	g, _, err := gen.Planted(gen.DefaultPlanted(20000, 64, 200000, 1))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkRandomPairSample measures edge-minibatch drawing — the master's
// per-iteration sampling work in the distributed engine.
func BenchmarkRandomPairSample(b *testing.B) {
	g := benchFixture(b)
	s, err := NewRandomPair(g, nil, 512)
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(2)
	var batch Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng, &batch)
	}
}

// BenchmarkStratifiedSample measures the stratified-node alternative.
func BenchmarkStratifiedSample(b *testing.B) {
	g := benchFixture(b)
	s, err := NewStratifiedNode(g, nil, 0.5, 64)
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(3)
	var batch Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng, &batch)
	}
}

// BenchmarkLinkPlusUniformSample measures the per-vertex neighbor draw in
// update_phi.
func BenchmarkLinkPlusUniformSample(b *testing.B) {
	g := benchFixture(b)
	s, err := NewLinkPlusUniform(NewGraphView(g, nil), 32)
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(4)
	var ns NeighborSample
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(int32(i%20000), rng, &ns)
	}
}

// BenchmarkUniformNeighborsSample measures the paper's Eqn (5) variant.
func BenchmarkUniformNeighborsSample(b *testing.B) {
	g := benchFixture(b)
	s, err := NewUniformNeighbors(NewGraphView(g, nil), 32)
	if err != nil {
		b.Fatal(err)
	}
	rng := mathx.NewRNG(5)
	var ns NeighborSample
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(int32(i%20000), rng, &ns)
	}
}
