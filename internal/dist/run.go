package dist

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Phase names used in traces; the Table III harness keys off these. They
// are re-exported from the shared stage layer so existing callers
// (experiments, examples) keep compiling against dist.
const (
	PhaseDrawMinibatch   = engine.PhaseDrawMinibatch
	PhaseDeployMinibatch = engine.PhaseDeployMinibatch
	PhaseUpdatePhi       = engine.PhaseUpdatePhi
	PhaseLoadPi          = engine.PhaseLoadPi
	PhaseComputePhi      = engine.PhaseComputePhi
	PhaseUpdatePi        = engine.PhaseUpdatePi
	PhaseUpdateBetaTheta = engine.PhaseUpdateBetaTheta
	PhasePerplexity      = engine.PhasePerplexity
	PhasePublish         = engine.PhasePublish
	PhaseReshard         = engine.PhaseReshard
	PhaseCheckpoint      = engine.PhaseCheckpoint
	PhaseTotal           = engine.PhaseTotal
)

// Options configures a distributed run.
type Options struct {
	Ranks   int // simulated cluster size (master is rank 0 and also computes)
	Threads int // OpenMP-style threads per rank; 0 = GOMAXPROCS

	// Pipeline enables both pipelining schemes of Section III-D: the master
	// samples iteration t+1's minibatch while computing t, and each rank
	// overlaps π loading against the update_phi compute. The per-rank
	// overlap only actually engages when the store's reads leave the
	// process (core.PhiStage demotes it to the fused serial path against
	// local readers — pipelining a memcpy is pure overhead).
	Pipeline bool
	// PhiChunkNodes is the pipeline chunk size in minibatch vertices;
	// 0 selects the automatic policy (enough chunks to fill the pipeline a
	// few times over, floored so per-chunk overhead stays negligible — see
	// core.PhiStage.plan).
	PhiChunkNodes int
	// PipelineDepth is the number of π-load buffer slots per rank; values
	// <= 2 mean double buffering, the paper's scheme. Deeper pipelines let
	// the loader run further ahead when fetch latency is bursty.
	PipelineDepth int

	// HotRowCache bounds the per-rank DKV hot-row cache in rows; 0 disables
	// it. The trained model is byte-identical with the cache on or off in
	// every configuration below — only the remote traffic changes.
	HotRowCache int
	// HotCachePolicy selects the cache admission policy: "" or "lru" admits
	// every fetched remote row; "admit2" admits a row only on its second
	// miss within a bounded window (or immediately when its degree clears
	// HotCacheMinDegree), so one-shot rows cannot churn recurring hot rows
	// out. See store.CacheConfig.
	HotCachePolicy string
	// HotCacheCrossIter keeps each rank's cache alive across phase
	// barriers: instead of the blanket flush, the ranks exchange the π-row
	// ids they wrote (one AllGather per barrier) and drop exactly those
	// keys. Unwritten hot rows then survive from iteration to iteration.
	HotCacheCrossIter bool
	// HotCacheMinDegree, with HotCachePolicy "admit2", admits rows of
	// vertex degree ≥ this immediately; the degree table is broadcast once
	// from the master at startup.
	HotCacheMinDegree int

	// Minibatch and neighbor strategy parameters, mirroring
	// core.SamplerOptions.
	MinibatchPairs   int
	Stratified       bool
	LinkProb         float64
	NonLinkCount     int
	NeighborCount    int
	UniformNeighbors bool

	// EvalEvery > 0 evaluates the averaged perplexity every that many
	// iterations (requires a held-out set).
	EvalEvery  int
	Iterations int

	// Events, when non-nil, receives the live telemetry stream: one iter
	// event per iteration per rank with per-stage durations and DKV counter
	// deltas, plus run_start/perplexity/run_end events from rank 0. The sink
	// is shared by all ranks (it serialises internally). Nil keeps the hot
	// path telemetry-free.
	Events *obs.Sink
	// Monitor, when non-nil, is attached to rank 0's metric registry so the
	// HTTP endpoint serves live counters, gauges, and stage histograms during
	// the run, and its /events SSE endpoint streams the run's event stream
	// (every rank; a discard-backed sink is created when Events is nil).
	Monitor *obs.Monitor

	// Trace enables span tracing: every rank records stage, collective, and
	// DKV spans (client and server side) into a bounded per-rank buffer, the
	// buffers are gathered at run end over the ordinary collectives, and
	// Result.Trace carries every rank's bundle. Tracing only observes — the
	// trained trajectory is bit-identical with it on or off.
	Trace bool
	// TraceOut, when non-empty, additionally writes the gathered spans as a
	// Chrome trace-event JSON file (Perfetto / chrome://tracing loadable) at
	// that path. Implies Trace.
	TraceOut string

	// Publisher, when non-nil, receives a sealed full-view store.Snapshot of
	// π/β from the serving rank (the master, rank 0) after the write barrier
	// of every PublishEvery-th iteration — the feed of the internal/serve
	// read tier. The master gathers peer shards through the raw DKV read
	// path while the peers are fenced waiting on its next scatter, so the
	// gather is consistent and the trained trajectory stays bit-identical
	// with publication on or off.
	Publisher *store.Publisher
	// PublishEvery is the publication interval in iterations; 0 defaults to
	// 1 (every iteration). Ignored when Publisher is nil.
	PublishEvery int

	// FaultHook, when non-nil, is called by every rank at the top of each
	// iteration; a non-nil return makes that rank fail exactly as if the
	// iteration itself had errored, triggering the fabric-wide abort. It
	// exists for the failure-injection test suites and the -fail-rank /
	// -fail-iter flags of cmd/ocd-cluster; production runs leave it nil.
	FaultHook func(rank, iter int) error

	// Rebalance closes the straggler loop: every RebalanceCfg.Window
	// iterations the ranks gather their per-peer recv-wait deltas at the
	// master, the engine.Rebalancer applies the straggler rule with
	// hysteresis, and the next window's minibatch is re-sharded over the
	// resulting weights (engine.SplitWeighted). Because φ draws are keyed by
	// (iteration, vertex) and the θ fold is chunk-ordered, re-sharding moves
	// work between ranks without touching the estimator: the trained
	// trajectory is bit-identical with mitigation on or off, under any
	// weight trajectory.
	Rebalance    bool
	RebalanceCfg engine.RebalanceConfig

	// ComputeDelay, when non-nil, injects an artificial compute delay into
	// every rank's update_phi, scaled by the work actually assigned (nodes =
	// this rank's minibatch share). It models a degraded-CPU straggler — the
	// fault the rebalancer can actually cure by moving work away, unlike
	// -slow-rank's fixed per-send delay, whose cost is share-independent.
	// Fault injection for tests and cmd/ocd-cluster's -slow-phi; production
	// runs leave it nil.
	ComputeDelay func(rank, nodes int) time.Duration

	// CheckpointPath, when non-empty, makes the master write a coordinated
	// core.State checkpoint (π, Σφ, θ, and the iteration counter) every
	// CheckpointEvery iterations, at the phase barrier that ends the
	// iteration: the master gathers peer shards through the DKV read path
	// while the peers are fenced waiting on its next collective, the same
	// consistency argument as Publisher. CheckpointEvery ≤ 0 defaults to 10.
	CheckpointPath  string
	CheckpointEvery int

	// RestartState + RestartIter resume a run from a loaded checkpoint
	// (core.LoadFileFor): every rank initialises its π/Σφ shard and θ from
	// the state instead of the seed init, and iterations run from
	// RestartIter to Iterations. All random draws are keyed by the absolute
	// iteration number, so a resumed run is bit-identical to one that never
	// stopped.
	RestartState *core.State
	RestartIter  int
}

func (o *Options) setDefaults() {
	if o.Ranks == 0 {
		o.Ranks = 2
	}
	if o.MinibatchPairs == 0 {
		o.MinibatchPairs = 128
	}
	if o.LinkProb == 0 {
		o.LinkProb = 0.5
	}
	if o.NonLinkCount == 0 {
		o.NonLinkCount = 32
	}
	if o.NeighborCount == 0 {
		o.NeighborCount = 32
	}
	if o.PublishEvery == 0 {
		o.PublishEvery = 1
	}
	if o.CheckpointPath != "" && o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10
	}
}

// PerpPoint is one perplexity evaluation during a run.
type PerpPoint struct {
	Iter    int
	Value   float64
	Elapsed time.Duration
}

// DKVTotals aggregates the DKV traffic of all ranks.
type DKVTotals struct {
	LocalKeys    int64
	RemoteKeys   int64
	Requests     int64
	BytesRead    int64
	BytesWritten int64
	// Hot-row cache traffic (all 0 unless Options.HotRowCache > 0):
	// invalidations count rows dropped because their key was written (or
	// blanket-flushed at a barrier in per-phase mode), evictions count rows
	// displaced by the capacity bound.
	CacheHits          int64
	CacheMisses        int64
	CacheEvictions     int64
	CacheInvalidations int64
}

// Result is what a distributed run returns.
type Result struct {
	State      *core.State // fully assembled π/Σφ/θ/β
	Perplexity []PerpPoint
	Phases     *trace.Phases // per-phase totals, max across ranks
	RankPhases []map[string]time.Duration
	DKV        DKVTotals
	// Metrics is every rank's telemetry registry folded into one snapshot:
	// counters summed, gauges maxed, stage latency histograms merged.
	Metrics obs.Snapshot
	// RankMetrics holds each rank's unfolded snapshot, indexed by rank — the
	// per-peer transport.peer.<r>.* counters only make sense per rank (folding
	// them smashes matrix rows together), so the matrix below is built from
	// these.
	RankMetrics []obs.Snapshot
	// Peers is the per-peer traffic/latency matrix folded from RankMetrics;
	// Peers.Straggler() localises stragglers from the imposed-wait column
	// sums.
	Peers      *obs.PeerMatrix
	Iterations int
	Elapsed    time.Duration
	RemoteFrac float64 // fraction of DKV keys served remotely
	// Trace holds every rank's span bundle when Options.Trace was set
	// (rank-ordered, identical on every rank after the end-of-run AllGather);
	// feed it to obs.WriteChromeTrace or obs.AnalyzeCriticalPath.
	Trace []obs.TraceBundle
}

// Run executes a distributed training run over an in-process fabric with
// opt.Ranks simulated cluster nodes. The graph lives only at the master
// (rank 0), matching the paper's data distribution; the held-out set is
// replicated (it is small and every rank needs it for exclusion checks).
func Run(cfg core.Config, g *graph.Graph, held *graph.HeldOut, opt Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt.setDefaults()
	if opt.Iterations < 1 {
		return nil, fmt.Errorf("dist: Iterations = %d, need at least 1", opt.Iterations)
	}
	if opt.EvalEvery > 0 && held == nil {
		return nil, fmt.Errorf("dist: EvalEvery set but no held-out set given")
	}
	fabric, err := transport.NewFabric(opt.Ranks)
	if err != nil {
		return nil, err
	}
	defer fabric.Close()
	return RunOnTransport(cfg, g, held, opt, fabric.Endpoints())
}

// RunOnTransport is Run over caller-provided endpoints — one per rank, all
// in this process. It exists so the engine can be exercised over the TCP
// mesh (or any other transport.Conn implementation) with the exact same
// protocol; cmd/ocd-cluster and the TCP fidelity tests use it.
func RunOnTransport(cfg core.Config, g *graph.Graph, held *graph.HeldOut, opt Options, conns []transport.Conn) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt.setDefaults()
	opt.Ranks = len(conns)
	if opt.TraceOut != "" {
		opt.Trace = true
	}
	if opt.Iterations < 1 {
		return nil, fmt.Errorf("dist: Iterations = %d, need at least 1", opt.Iterations)
	}
	if opt.EvalEvery > 0 && held == nil {
		return nil, fmt.Errorf("dist: EvalEvery set but no held-out set given")
	}
	if opt.RestartState != nil {
		if err := opt.RestartState.CheckShape(g.NumVertices(), cfg.K); err != nil {
			return nil, fmt.Errorf("dist: restart: %w", err)
		}
		if opt.RestartIter < 0 || opt.RestartIter >= opt.Iterations {
			return nil, fmt.Errorf("dist: RestartIter %d outside [0, %d)", opt.RestartIter, opt.Iterations)
		}
	} else if opt.RestartIter != 0 {
		return nil, fmt.Errorf("dist: RestartIter %d without RestartState", opt.RestartIter)
	}
	// The monitor's /events endpoint streams whatever sink the run writes to.
	// A monitor-only run still deserves live events, so it gets a sink backed
	// by io.Discard: events are marshalled once and fan out to SSE subscribers
	// while the file write is a no-op.
	if opt.Monitor != nil {
		if opt.Events == nil {
			opt.Events = obs.NewSink(io.Discard)
		}
		opt.Events.Tee(opt.Monitor.EventStream())
		// The run owns the monitor's serving lifetime: once every rank has
		// returned there will be no more events or metric updates, so drain
		// open SSE streams and release the port instead of leaving a zombie
		// endpoint behind. Shutdown is idempotent — callers that Close in
		// their own defer are unaffected.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = opt.Monitor.Shutdown(ctx)
		}()
	}

	nodes := make([]*node, opt.Ranks)
	for r := 0; r < opt.Ranks; r++ {
		// One telemetry registry per rank: the instrumented transport, the
		// DKV store, and the rank's recorder all write into it, and
		// assembleResult folds the per-rank snapshots.
		reg := obs.NewRegistry()
		nd, err := newNode(cfg, opt, cluster.New(transport.Instrument(conns[r], reg)), g, held, reg)
		if err != nil {
			return nil, err
		}
		nodes[r] = nd
	}
	if opt.Trace && opt.Monitor != nil {
		// The /trace route downloads a live snapshot of every rank's span
		// buffer — mid-run state, before the end-of-run gather merges them.
		opt.Monitor.AttachTrace(func() []obs.TraceBundle {
			bundles := make([]obs.TraceBundle, 0, len(nodes))
			for _, nd := range nodes {
				if nd.tracer != nil {
					bundles = append(bundles, nd.tracer.Bundle())
				}
			}
			return bundles
		})
	}

	errs := make([]error, opt.Ranks)
	done := make(chan int, opt.Ranks)
	for r := 0; r < opt.Ranks; r++ {
		go func(r int) {
			errs[r] = nodes[r].run()
			done <- r
		}(r)
	}
	for i := 0; i < opt.Ranks; i++ {
		<-done
	}
	// Every rank returns within bounded time even on failure: the failing
	// rank broadcasts an abort (node.run's deferred Comm.Abort), so its
	// peers surface AbortErrors rather than blocking. Report the originating
	// rank's own error when it is local; peers' abort echoes name the same
	// rank inside the AbortError, so a multi-process driver gets the rank
	// too.
	var abortErr error
	for r, err := range errs {
		if err == nil {
			continue
		}
		if _, isAbort := transport.AsAbort(err); isAbort {
			if abortErr == nil {
				abortErr = fmt.Errorf("dist: rank %d: %w", r, err)
			}
			continue
		}
		return nil, fmt.Errorf("dist: rank %d: %w", r, err)
	}
	if abortErr != nil {
		return nil, abortErr
	}
	res := assembleResult(nodes)
	if opt.TraceOut != "" {
		if err := writeTraceFile(opt.TraceOut, res.Trace); err != nil {
			return nil, fmt.Errorf("dist: writing trace: %w", err)
		}
	}
	return res, nil
}

// writeTraceFile renders the gathered bundles as a Chrome trace-event file.
func writeTraceFile(path string, bundles []obs.TraceBundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, bundles); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func assembleResult(nodes []*node) *Result {
	master := nodes[0]
	res := &Result{
		State:      master.finalState,
		Perplexity: master.perp,
		Phases:     trace.NewPhases(),
		Iterations: master.opt.Iterations,
		Elapsed:    master.phases.Total(PhaseTotal),
	}
	for _, nd := range nodes {
		res.RankPhases = append(res.RankPhases, nd.phases.Snapshot())
		res.Phases.MergeAll(nd.phases.Stats())
		// Snapshot each registry exactly once: the folded view and the
		// per-rank view must agree (the matrix row-sum invariant is tested
		// against Metrics).
		snap := nd.reg.Snapshot()
		res.RankMetrics = append(res.RankMetrics, snap)
		res.Metrics.Fold(snap)
	}
	res.Peers = obs.NewPeerMatrix(res.RankMetrics)
	// All ranks hold identical gathered bundles after gatherTrace's
	// AllGather; the master's copy is the result's.
	res.Trace = master.bundles
	c := res.Metrics.Counters
	res.DKV = DKVTotals{
		LocalKeys:    c[obs.CtrDKVLocalKeys],
		RemoteKeys:   c[obs.CtrDKVRemoteKeys],
		Requests:     c[obs.CtrDKVRequests],
		BytesRead:    c[obs.CtrDKVBytesRead],
		BytesWritten: c[obs.CtrDKVBytesWritten],

		CacheHits:          c[obs.CtrCacheHits],
		CacheMisses:        c[obs.CtrCacheMisses],
		CacheEvictions:     c[obs.CtrCacheEvictions],
		CacheInvalidations: c[obs.CtrCacheInvalidations],
	}
	if totalKeys := res.DKV.LocalKeys + res.DKV.RemoteKeys; totalKeys > 0 {
		res.RemoteFrac = float64(res.DKV.RemoteKeys) / float64(totalKeys)
	}
	return res
}

// evalPerplexity folds the current state into the running posterior average
// over this rank's held-out shard (the shared HeldOutEval stage) and
// reduces the global averaged perplexity (Eqn 7) at the master; the value
// is broadcast so every rank returns it.
func (nd *node) evalPerplexity() (float64, error) {
	defer nd.phases.Timer(PhasePerplexity)()
	if nd.rec != nil { // same guard as Loop.PhaseHook: no histograms unless observed
		nd.comm.SetPhase(PhasePerplexity)
	}
	partials, err := nd.eval.Fold(nd.store, nd.beta, nd.opt.Threads)
	if err != nil {
		return 0, err
	}
	gathered, err := nd.comm.Gather(0, wire.AppendFloat64s(nil, partials))
	if err != nil {
		return 0, err
	}
	var out []byte
	if nd.rank == 0 {
		var logSum float64
		for r := 0; r < nd.size; r++ {
			buf := gathered[r]
			vals := make([]float64, len(buf)/8)
			wire.Float64s(buf, 0, len(vals), vals)
			for _, v := range vals {
				logSum += v
			}
		}
		out = wire.AppendUint64(nil, math.Float64bits(core.PerplexityFromLogSum(logSum, nd.held.Len())))
	}
	out, err = nd.comm.Bcast(0, out)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(wire.Uint64At(out, 0)), nil
}

// collectState reads the whole π matrix back out of the DKV store into a
// core.State; master-only, used for final reporting and the equivalence
// tests.
func (nd *node) collectState() (*core.State, error) {
	st := &core.State{
		N:      nd.n,
		K:      nd.k,
		Pi:     make([]float32, nd.n*nd.k),
		PhiSum: make([]float64, nd.n),
		Theta:  append([]float64(nil), nd.theta...),
		Beta:   append([]float64(nil), nd.beta...),
	}
	const batchKeys = 4096
	keys := make([]int32, 0, batchKeys)
	var rows store.Rows
	for base := 0; base < nd.n; base += batchKeys {
		hi := min(base+batchKeys, nd.n)
		keys = keys[:0]
		for a := base; a < hi; a++ {
			keys = append(keys, int32(a))
		}
		if err := nd.store.ReadRows(keys, &rows); err != nil {
			return nil, err
		}
		for i, a := range keys {
			copy(st.PiRow(int(a)), rows.PiRow(i))
			st.PhiSum[a] = rows.PhiSum[i]
		}
	}
	return st, nil
}
