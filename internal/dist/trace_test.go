package dist

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/transport"
)

// dialTestMesh builds a TCP loopback mesh for the test's rank count.
func dialTestMesh(t *testing.T, ranks int) []transport.Conn {
	t.Helper()
	addrs := freeLoopbackAddrs(t, ranks)
	conns := make([]transport.Conn, ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			conns[r], errs[r] = transport.DialMesh(r, addrs)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("mesh rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, c := range conns {
			c.Close()
		}
	})
	return conns
}

// TestTraceGatherTCP runs two ranks over a real TCP mesh with tracing on and
// checks the gathered result: one bundle per rank, nested iteration/stage
// spans from both, DKV server-side spans whose Peer names the REQUESTING
// rank, and a written Chrome trace file that loads back losslessly.
func TestTraceGatherTCP(t *testing.T) {
	train, held := fixture(t, 180, 4, 900, 91)
	cfg := core.DefaultConfig(4, 17)
	const ranks, iters = 2, 6

	out := filepath.Join(t.TempDir(), "run.trace.json")
	conns := dialTestMesh(t, ranks)
	res, err := RunOnTransport(cfg, train, held, Options{
		Iterations: iters, EvalEvery: 0, TraceOut: out,
	}, conns)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Trace) != ranks {
		t.Fatalf("gathered %d bundles, want %d", len(res.Trace), ranks)
	}
	byRank := map[int]obs.TraceBundle{}
	for _, b := range res.Trace {
		byRank[b.Rank] = b
	}
	for r := 0; r < ranks; r++ {
		b, ok := byRank[r]
		if !ok {
			t.Fatalf("no bundle for rank %d", r)
		}
		iterCount := 0
		serveSpans := 0
		stageUnderIter := 0
		iterIDs := map[obs.SpanID]bool{}
		for _, sp := range b.Spans {
			if sp.Cat == obs.CatIter {
				iterCount++
				iterIDs[sp.ID] = true
			}
		}
		for _, sp := range b.Spans {
			switch sp.Cat {
			case obs.CatStage:
				if iterIDs[sp.Parent] {
					stageUnderIter++
				}
			case obs.CatDKVServe:
				if sp.Parent == 0 {
					serveSpans++
					// The whole point of server-side spans: Peer is the rank
					// that ASKED, i.e. the other rank in a 2-rank run.
					if sp.Peer != 1-r {
						t.Errorf("rank %d serve span peer = %d, want requester %d", r, sp.Peer, 1-r)
					}
				}
			}
		}
		if iterCount != iters {
			t.Errorf("rank %d recorded %d iter spans, want %d", r, iterCount, iters)
		}
		if stageUnderIter == 0 {
			t.Errorf("rank %d has no stage spans parented under an iteration", r)
		}
		if serveSpans == 0 {
			t.Errorf("rank %d recorded no DKV server-side spans", r)
		}
	}

	// The written file is the same data, losslessly.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	read, err := obs.ReadChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(read) != ranks {
		t.Fatalf("trace file carries %d ranks, want %d", len(read), ranks)
	}
	var rebuf, wbuf bytes.Buffer
	if err := obs.WriteChromeTrace(&wbuf, res.Trace); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteChromeTrace(&rebuf, read); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wbuf.Bytes(), rebuf.Bytes()) {
		t.Error("re-exporting the read-back trace is not byte-identical (lossy round trip)")
	}
}

// TestTraceDoesNotPerturbTraining: tracing observes, never synchronizes — a
// traced run must be bit-identical to an untraced one.
func TestTraceDoesNotPerturbTraining(t *testing.T) {
	train, held := fixture(t, 240, 5, 1200, 51)
	cfg := core.DefaultConfig(5, 1234)
	const ranks, iters = 3, 8

	plain, err := Run(cfg, train, held, Options{Ranks: ranks, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Run(cfg, train, held, Options{Ranks: ranks, Iterations: iters, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Trace) != ranks {
		t.Fatalf("traced run gathered %d bundles, want %d", len(traced.Trace), ranks)
	}
	if d := mathx.MaxAbsDiff32(plain.State.Pi, traced.State.Pi); d != 0 {
		t.Fatalf("tracing perturbed π by %v; want bit-exact", d)
	}
	if d := mathx.MaxAbsDiff(plain.State.Theta, traced.State.Theta); d != 0 {
		t.Fatalf("tracing perturbed θ by %v; want bit-exact", d)
	}
}

// TestCriticalPathNamesInjectedStraggler is the end-to-end acceptance check:
// delay one rank's collective sends (the ocd-cluster -slow-rank injection),
// trace the run over TCP, and demand the analyzer attribute the majority of
// the critical path to the injected rank.
func TestCriticalPathNamesInjectedStraggler(t *testing.T) {
	train, held := fixture(t, 180, 4, 900, 91)
	cfg := core.DefaultConfig(4, 17)
	const ranks, iters, slow = 2, 8, 1

	conns := dialTestMesh(t, ranks)
	conns[slow] = &transport.FaultConn{
		Conn: conns[slow],
		DelaySend: func(_ int, tag uint32) time.Duration {
			if tag < cluster.TagUserBase {
				return 2 * time.Millisecond
			}
			return 0
		},
	}
	res, err := RunOnTransport(cfg, train, held, Options{
		Iterations: iters, EvalEvery: 0, Trace: true,
	}, conns)
	if err != nil {
		t.Fatal(err)
	}

	rep := obs.AnalyzeCriticalPath(res.Trace)
	if len(rep.Iters) != iters {
		t.Fatalf("analyzer found %d iteration windows, want %d", len(rep.Iters), iters)
	}
	if rep.Verdict != slow {
		t.Fatalf("verdict = rank %d, want the injected straggler rank %d\n%s",
			rep.Verdict, slow, rep.String())
	}
	if rep.VerdictFrac < 0.5 {
		t.Fatalf("injected rank owns only %.1f%% of the critical path, want >= 50%%\n%s",
			100*rep.VerdictFrac, rep.String())
	}
}
