// Package dist implements the master–worker distributed engine of Section
// III: rank 0 samples edge minibatches from the full graph (which only it
// holds) and scatters each rank's share of the minibatch vertices together
// with their adjacency lists; all ranks cooperate in update_phi/update_pi
// against the π rows stored in the DKV store, in the θ/β update through a
// chunk-ordered gather, and in the distributed perplexity evaluation.
//
// The engine is written so that, run with the same seeds, it reproduces the
// single-node core.Sampler bit for bit: identical RNG streams per (iteration,
// vertex), identical float32 storage precision, and identical floating-point
// fold orders (rank partitions are aligned to the same fixed chunk sizes the
// sequential engine reduces with).
package dist

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/wire"
)

// The π-row wire codec (rowBytes / encodeRow / decodeRow) lives in
// internal/store, next to the PiStore backends that speak it; this file
// keeps only the minibatch deployment protocol, which is dist-specific.

// deployment is one rank's share of an iteration's minibatch.
type deployment struct {
	iter  int
	nodes []int32   // minibatch vertices this rank updates
	adj   [][]int32 // adjacency list per node (training links)
	pairs []graph.Edge
	link  []bool
	scale float64 // h(E_n)
	// chunkLo is the global index of this rank's first θ-gradient chunk;
	// the rank owns pairs [chunkLo*ThetaChunk - pairBase ...] relative to
	// the full batch, but only needs its own slice and the chunk count.
	chunkLo int
}

// encodeDeployment serialises a deployment for the scatter.
func encodeDeployment(d *deployment) []byte {
	size := 4 + 4
	for _, a := range d.adj {
		size += 4 + 4 + 4*len(a)
	}
	size += 4 + len(d.pairs)*8 + len(d.link) + 8 + 4
	buf := make([]byte, 0, size)
	buf = wire.AppendUint32(buf, uint32(d.iter))
	buf = wire.AppendUint32(buf, uint32(len(d.nodes)))
	for i, n := range d.nodes {
		buf = wire.AppendUint32(buf, uint32(n))
		buf = wire.AppendUint32(buf, uint32(len(d.adj[i])))
		buf = wire.AppendInt32s(buf, d.adj[i])
	}
	buf = wire.AppendUint32(buf, uint32(len(d.pairs)))
	for _, e := range d.pairs {
		buf = wire.AppendUint32(buf, uint32(e.A))
		buf = wire.AppendUint32(buf, uint32(e.B))
	}
	buf = wire.AppendBools(buf, d.link)
	buf = wire.AppendUint64(buf, math.Float64bits(d.scale))
	buf = wire.AppendUint32(buf, uint32(d.chunkLo))
	return buf
}

// decodeDeployment parses a scattered deployment.
func decodeDeployment(buf []byte) (*deployment, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("dist: deployment too short (%d bytes)", len(buf))
	}
	d := &deployment{}
	off := 0
	d.iter = int(wire.Uint32At(buf, off))
	off += 4
	nNodes := int(wire.Uint32At(buf, off))
	off += 4
	d.nodes = make([]int32, nNodes)
	d.adj = make([][]int32, nNodes)
	for i := 0; i < nNodes; i++ {
		d.nodes[i] = int32(wire.Uint32At(buf, off))
		off += 4
		deg := int(wire.Uint32At(buf, off))
		off += 4
		d.adj[i] = make([]int32, deg)
		off = wire.Int32s(buf, off, deg, d.adj[i])
	}
	nPairs := int(wire.Uint32At(buf, off))
	off += 4
	d.pairs = make([]graph.Edge, nPairs)
	for i := 0; i < nPairs; i++ {
		d.pairs[i].A = int32(wire.Uint32At(buf, off))
		d.pairs[i].B = int32(wire.Uint32At(buf, off+4))
		off += 8
	}
	d.link = make([]bool, nPairs)
	off = wire.Bools(buf, off, nPairs, d.link)
	d.scale = math.Float64frombits(wire.Uint64At(buf, off))
	off += 8
	d.chunkLo = int(wire.Uint32At(buf, off))
	return d, nil
}

// workerView implements sampling.View from a deployment's scattered
// adjacency. It answers exactly like the master's GraphView for the vertices
// it carries, which keeps the RNG consumption of the neighbor strategies
// identical across engines.
type workerView struct {
	n         int
	adj       map[int32][]int32
	heldSet   *graph.EdgeSet
	heldTouch []int32
}

func newWorkerView(n int, heldSet *graph.EdgeSet, heldTouch []int32) *workerView {
	return &workerView{n: n, adj: map[int32][]int32{}, heldSet: heldSet, heldTouch: heldTouch}
}

// load replaces the view's adjacency with a deployment's.
func (v *workerView) load(d *deployment) {
	for k := range v.adj {
		delete(v.adj, k)
	}
	for i, node := range d.nodes {
		v.adj[node] = d.adj[i]
	}
}

// NumVertices implements sampling.View.
func (v *workerView) NumVertices() int { return v.n }

// Degree implements sampling.View.
func (v *workerView) Degree(a int32) int { return len(v.adj[a]) }

// Neighbors implements sampling.View.
func (v *workerView) Neighbors(a int32) []int32 { return v.adj[a] }

// HasEdge implements sampling.View by binary search over the sorted
// scattered adjacency. Only valid for vertices in the current deployment.
func (v *workerView) HasEdge(a, b int32) bool {
	row, ok := v.adj[a]
	if !ok {
		panic(fmt.Sprintf("dist: HasEdge queried for undeployed vertex %d", a))
	}
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < b {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == b
}

// IsExcluded implements sampling.View.
func (v *workerView) IsExcluded(a, b int32) bool {
	return v.heldSet != nil && v.heldSet.Contains(graph.Edge{A: a, B: b})
}

// ExcludedCount implements sampling.View.
func (v *workerView) ExcludedCount(a int32) int {
	if v.heldTouch == nil {
		return 0
	}
	return int(v.heldTouch[a])
}

// interface conformance check
var _ sampling.View = (*workerView)(nil)
