package dist

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// freeLoopbackAddrs reserves n distinct loopback addresses for a TCP mesh.
func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// runWithTimeout bounds a distributed run: the whole point of the abort
// protocol is that a failing rank makes Run return, never hang.
func runWithTimeout(t *testing.T, timeout time.Duration, fn func() (*Result, error)) (*Result, error) {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := fn()
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(timeout):
		t.Fatalf("distributed run still blocked after %v — abort propagation failed", timeout)
		return nil, nil
	}
}

// failAt returns a FaultHook that fails `rank` at iteration `iter`.
func failAt(rank, iter int) func(int, int) error {
	return func(r, t int) error {
		if r == rank && t == iter {
			return fmt.Errorf("simulated crash of rank %d at iteration %d", rank, iter)
		}
		return nil
	}
}

// TestRankFailureAbortsRunInproc is the acceptance test for the abort
// layer on the in-process fabric: a rank forced to fail at iteration N must
// make RunOnTransport return a non-nil error naming that rank within
// bounded time, with every peer released from its collectives and DKV
// receives.
func TestRankFailureAbortsRunInproc(t *testing.T) {
	train, held := fixture(t, 180, 4, 900, 91)
	cfg := core.DefaultConfig(4, 17)

	for _, failRank := range []int{0, 1, 2} {
		t.Run(fmt.Sprintf("rank%d", failRank), func(t *testing.T) {
			fabric, err := transport.NewFabric(3)
			if err != nil {
				t.Fatal(err)
			}
			defer fabric.Close()
			_, err = runWithTimeout(t, 60*time.Second, func() (*Result, error) {
				return RunOnTransport(cfg, train, held, Options{
					Iterations: 6,
					EvalEvery:  2,
					FaultHook:  failAt(failRank, 3),
				}, fabric.Endpoints())
			})
			if err == nil {
				t.Fatal("run with failing rank returned nil error")
			}
			want := fmt.Sprintf("rank %d", failRank)
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q does not name the failing %s", err, want)
			}
			if !strings.Contains(err.Error(), "iteration 3") {
				t.Fatalf("error %q does not name the failing iteration", err)
			}
		})
	}
}

// TestRankFailureAbortsRunPipelined covers the harder schedule: with the
// double-buffered pipeline and prefetch goroutines in flight, a mid-run
// failure must still unwind every rank.
func TestRankFailureAbortsRunPipelined(t *testing.T) {
	train, held := fixture(t, 180, 4, 900, 91)
	cfg := core.DefaultConfig(4, 17)
	fabric, err := transport.NewFabric(4)
	if err != nil {
		t.Fatal(err)
	}
	defer fabric.Close()
	_, err = runWithTimeout(t, 60*time.Second, func() (*Result, error) {
		return RunOnTransport(cfg, train, held, Options{
			Iterations: 8,
			Pipeline:   true,
			FaultHook:  failAt(2, 4),
		}, fabric.Endpoints())
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("pipelined run error = %v, want one naming rank 2", err)
	}
}

// TestRankFailureAbortsRunTCP is the same acceptance property over a real
// TCP mesh: the abort control frames must cross sockets and release every
// peer process's receives.
func TestRankFailureAbortsRunTCP(t *testing.T) {
	train, held := fixture(t, 180, 4, 900, 91)
	cfg := core.DefaultConfig(4, 17)
	const ranks = 3

	addrs := freeLoopbackAddrs(t, ranks)
	conns := make([]transport.Conn, ranks)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := transport.DialMesh(r, addrs)
			conns[r], errs[r] = c, err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("mesh rank %d: %v", r, err)
		}
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	_, err := runWithTimeout(t, 60*time.Second, func() (*Result, error) {
		return RunOnTransport(cfg, train, held, Options{
			Iterations: 6,
			FaultHook:  failAt(1, 2),
		}, conns)
	})
	if err == nil {
		t.Fatal("TCP run with failing rank returned nil error")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("TCP run error %q does not name rank 1", err)
	}
}

// TestFailureAtFirstIteration exercises the earliest possible failure —
// before the first collective of the loop — where the init barrier has
// already completed.
func TestFailureAtFirstIteration(t *testing.T) {
	train, held := fixture(t, 120, 4, 600, 7)
	cfg := core.DefaultConfig(4, 23)
	_, err := runWithTimeout(t, 60*time.Second, func() (*Result, error) {
		return Run(cfg, train, held, Options{
			Ranks:      3,
			Iterations: 4,
			FaultHook:  failAt(2, 0),
		})
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("error = %v, want one naming rank 2", err)
	}
}

// TestAbortErrorTypeSurfaces: the returned error chain must expose the
// typed abort so callers can distinguish a cluster failure from a local
// configuration error programmatically.
func TestAbortErrorTypeSurfaces(t *testing.T) {
	train, held := fixture(t, 120, 4, 600, 7)
	cfg := core.DefaultConfig(4, 23)
	fabric, err := transport.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	defer fabric.Close()

	// Fail rank 1; rank 0's error must either be the root cause (if rank 0
	// is the failer) or wrap an AbortError naming rank 1. Run's contract is
	// that the root cause wins when it is in-process, so here the injected
	// error itself must surface.
	injected := errors.New("disk on fire")
	_, err = runWithTimeout(t, 60*time.Second, func() (*Result, error) {
		return RunOnTransport(cfg, train, held, Options{
			Iterations: 4,
			FaultHook: func(r, it int) error {
				if r == 1 && it == 1 {
					return injected
				}
				return nil
			},
		}, fabric.Endpoints())
	})
	if !errors.Is(err, injected) {
		t.Fatalf("error chain %v does not preserve the injected cause", err)
	}
}

// TestFaultHookNilAndBenign: a hook that never fires must not perturb the
// run — same result as no hook at all (the hook sits outside the seeded
// RNG streams).
func TestFaultHookNilAndBenign(t *testing.T) {
	train, held := fixture(t, 120, 4, 600, 7)
	cfg := core.DefaultConfig(4, 23)
	base, err := Run(cfg, train, held, Options{Ranks: 2, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := Run(cfg, train, held, Options{
		Ranks: 2, Iterations: 4,
		FaultHook: func(r, it int) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.State.Pi {
		if base.State.Pi[i] != hooked.State.Pi[i] {
			t.Fatalf("benign hook changed π at %d", i)
		}
	}
}
