package dist

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

func fixture(t *testing.T, n, k, edges int, seed uint64) (*graph.Graph, *graph.HeldOut) {
	t.Helper()
	g, _, err := gen.Planted(gen.DefaultPlanted(n, k, edges, seed))
	if err != nil {
		t.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return train, held
}

// TestDistributedMatchesSequential is the central correctness property of
// the engine (DESIGN.md invariant 4): with the same seeds, the distributed
// run must reproduce the single-node sampler bit for bit — same π, same θ —
// because every random draw comes from the same (iteration, vertex) stream
// and every floating-point fold uses the same chunk-aligned order.
func TestDistributedMatchesSequential(t *testing.T) {
	train, held := fixture(t, 240, 5, 1200, 51)
	const iters = 12
	cfg := core.DefaultConfig(5, 1234)

	seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(iters)

	for _, ranks := range []int{1, 2, 3, 5} {
		res, err := Run(cfg, train, held, Options{
			Ranks: ranks, Threads: 2, Iterations: iters,
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if d := mathx.MaxAbsDiff32(seq.State.Pi, res.State.Pi); d != 0 {
			t.Fatalf("ranks=%d: π differs from sequential by %v; want bit-exact", ranks, d)
		}
		if d := mathx.MaxAbsDiff(seq.State.Theta, res.State.Theta); d != 0 {
			t.Fatalf("ranks=%d: θ differs from sequential by %v; want bit-exact", ranks, d)
		}
		if d := mathx.MaxAbsDiff(seq.State.PhiSum, res.State.PhiSum); d != 0 {
			t.Fatalf("ranks=%d: Σφ differs from sequential by %v", ranks, d)
		}
	}
}

// TestPipelinedMatchesSerial verifies that double buffering is a pure
// performance optimisation: pipelined and non-pipelined runs produce
// identical chains.
func TestPipelinedMatchesSerial(t *testing.T) {
	train, held := fixture(t, 200, 4, 1000, 52)
	cfg := core.DefaultConfig(4, 77)
	const iters = 10
	plain, err := Run(cfg, train, held, Options{Ranks: 3, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	piped, err := Run(cfg, train, held, Options{Ranks: 3, Iterations: iters, Pipeline: true, PhiChunkNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(plain.State.Pi, piped.State.Pi); d != 0 {
		t.Fatalf("pipelining changed π by %v; must be identical", d)
	}
	if d := mathx.MaxAbsDiff(plain.State.Theta, piped.State.Theta); d != 0 {
		t.Fatalf("pipelining changed θ by %v; must be identical", d)
	}
}

// TestDistributedPerplexityMatchesSequential checks the distributed Eqn (7)
// evaluation against the single-node averager, including the running
// average across multiple evaluations.
func TestDistributedPerplexityMatchesSequential(t *testing.T) {
	train, held := fixture(t, 220, 4, 1100, 53)
	cfg := core.DefaultConfig(4, 99)
	const iters, every = 9, 3

	seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var seqVals []float64
	for i := 0; i < iters; i++ {
		seq.Step()
		if (i+1)%every == 0 {
			seqVals = append(seqVals, seq.EvalPerplexity())
		}
	}

	res, err := Run(cfg, train, held, Options{Ranks: 4, Iterations: iters, EvalEvery: every})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Perplexity) != len(seqVals) {
		t.Fatalf("got %d eval points, want %d", len(res.Perplexity), len(seqVals))
	}
	for i, p := range res.Perplexity {
		if p.Value != seqVals[i] {
			t.Fatalf("eval %d: distributed %v != sequential %v", i, p.Value, seqVals[i])
		}
		if p.Iter != (i+1)*every {
			t.Fatalf("eval %d at iteration %d, want %d", i, p.Iter, (i+1)*every)
		}
	}
}

func TestStratifiedDistributedMatchesSequential(t *testing.T) {
	train, held := fixture(t, 200, 4, 1000, 54)
	cfg := core.DefaultConfig(4, 31)
	const iters = 8
	seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{
		Stratified: true, LinkProb: 0.4, NonLinkCount: 12, Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(iters)
	res, err := Run(cfg, train, held, Options{
		Ranks: 3, Iterations: iters, Stratified: true, LinkProb: 0.4, NonLinkCount: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(seq.State.Pi, res.State.Pi); d != 0 {
		t.Fatalf("stratified: π differs by %v", d)
	}
}

func TestUniformNeighborsDistributedMatchesSequential(t *testing.T) {
	train, held := fixture(t, 200, 4, 1000, 55)
	cfg := core.DefaultConfig(4, 41)
	const iters = 8
	seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{
		UniformNeighbors: true, NeighborCount: 16, Threads: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(iters)
	res, err := Run(cfg, train, held, Options{
		Ranks: 4, Iterations: iters, UniformNeighbors: true, NeighborCount: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(seq.State.Pi, res.State.Pi); d != 0 {
		t.Fatalf("uniform neighbors: π differs by %v", d)
	}
}

func TestRemoteFractionScalesWithRanks(t *testing.T) {
	train, held := fixture(t, 400, 4, 2000, 56)
	cfg := core.DefaultConfig(4, 5)
	for _, ranks := range []int{2, 4} {
		res, err := Run(cfg, train, held, Options{Ranks: ranks, Iterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(ranks-1) / float64(ranks)
		if math.Abs(res.RemoteFrac-want) > 0.12 {
			t.Fatalf("ranks=%d: remote fraction %.3f, want ≈%.3f", ranks, res.RemoteFrac, want)
		}
	}
}

func TestResultCarriesPhases(t *testing.T) {
	train, held := fixture(t, 150, 4, 700, 57)
	cfg := core.DefaultConfig(4, 6)
	res, err := Run(cfg, train, held, Options{Ranks: 2, Iterations: 5, EvalEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{PhaseDeployMinibatch, PhaseUpdatePhi, PhaseUpdatePi, PhaseUpdateBetaTheta, PhasePerplexity, PhaseTotal} {
		if res.Phases.Total(phase) == 0 {
			t.Errorf("phase %q has no recorded time", phase)
		}
	}
	if len(res.RankPhases) != 2 {
		t.Fatalf("rank phases = %d, want 2", len(res.RankPhases))
	}
	if res.DKV.RemoteKeys == 0 {
		t.Error("no remote DKV traffic recorded with 2 ranks")
	}
	if err := res.State.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	train, held := fixture(t, 100, 4, 500, 58)
	cfg := core.DefaultConfig(4, 7)
	if _, err := Run(cfg, train, held, Options{Ranks: 2}); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if _, err := Run(cfg, train, nil, Options{Ranks: 2, Iterations: 1, EvalEvery: 1}); err == nil {
		t.Fatal("EvalEvery without held-out accepted")
	}
	bad := cfg
	bad.K = 0
	if _, err := Run(bad, train, held, Options{Ranks: 2, Iterations: 1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDeploymentRoundTrip(t *testing.T) {
	d := &deployment{
		iter:    42,
		nodes:   []int32{5, 9},
		adj:     [][]int32{{1, 2, 3}, {}},
		pairs:   []graph.Edge{{A: 1, B: 2}, {A: 3, B: 9}},
		link:    []bool{true, false},
		scale:   123.456,
		chunkLo: 7,
	}
	got, err := decodeDeployment(encodeDeployment(d))
	if err != nil {
		t.Fatal(err)
	}
	if got.iter != 42 || got.scale != 123.456 || got.chunkLo != 7 {
		t.Fatalf("header fields wrong: %+v", got)
	}
	if len(got.nodes) != 2 || got.nodes[1] != 9 {
		t.Fatalf("nodes wrong: %v", got.nodes)
	}
	if len(got.adj[0]) != 3 || got.adj[0][2] != 3 || len(got.adj[1]) != 0 {
		t.Fatalf("adjacency wrong: %v", got.adj)
	}
	if got.pairs[1] != (graph.Edge{A: 3, B: 9}) || got.link[0] != true || got.link[1] != false {
		t.Fatalf("pairs wrong: %v %v", got.pairs, got.link)
	}
}

func TestWorkerViewMatchesGraphView(t *testing.T) {
	g, _, err := gen.Planted(gen.DefaultPlanted(100, 4, 400, 60))
	if err != nil {
		t.Fatal(err)
	}
	gv := newTestGraphViewPair(t, g)
	// Deploy all vertices.
	d := &deployment{nodes: make([]int32, 100), adj: make([][]int32, 100)}
	for a := 0; a < 100; a++ {
		d.nodes[a] = int32(a)
		d.adj[a] = g.Neighbors(a)
	}
	wv := newWorkerView(100, nil, nil)
	wv.load(d)
	for a := int32(0); a < 100; a++ {
		if wv.Degree(a) != gv.Degree(a) {
			t.Fatalf("degree(%d) mismatch", a)
		}
		for b := int32(0); b < 100; b++ {
			if wv.HasEdge(a, b) != gv.HasEdge(a, b) {
				t.Fatalf("HasEdge(%d,%d) mismatch", a, b)
			}
		}
	}
}

func newTestGraphViewPair(t *testing.T, g *graph.Graph) interface {
	Degree(int32) int
	HasEdge(a, b int32) bool
} {
	t.Helper()
	return struct {
		*graphViewShim
	}{&graphViewShim{g}}
}

type graphViewShim struct{ g *graph.Graph }

func (s *graphViewShim) Degree(a int32) int      { return s.g.Degree(int(a)) }
func (s *graphViewShim) HasEdge(a, b int32) bool { return s.g.HasEdge(int(a), int(b)) }

func TestDeploymentRoundTripQuick(t *testing.T) {
	rng := mathx.NewRNG(123)
	for trial := 0; trial < 200; trial++ {
		nNodes := rng.Intn(20)
		d := &deployment{
			iter:    rng.Intn(1 << 20),
			nodes:   make([]int32, nNodes),
			adj:     make([][]int32, nNodes),
			scale:   rng.Float64() * 1e6,
			chunkLo: rng.Intn(1000),
		}
		for i := 0; i < nNodes; i++ {
			d.nodes[i] = int32(rng.Intn(1 << 20))
			adj := make([]int32, rng.Intn(8))
			for j := range adj {
				adj[j] = int32(rng.Intn(1 << 20))
			}
			d.adj[i] = adj
		}
		nPairs := rng.Intn(30)
		d.pairs = make([]graph.Edge, nPairs)
		d.link = make([]bool, nPairs)
		for i := 0; i < nPairs; i++ {
			d.pairs[i] = graph.Edge{A: int32(rng.Intn(1 << 20)), B: int32(rng.Intn(1 << 20))}
			d.link[i] = rng.Float64() < 0.5
		}

		got, err := decodeDeployment(encodeDeployment(d))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.iter != d.iter || got.scale != d.scale || got.chunkLo != d.chunkLo {
			t.Fatalf("trial %d: header mismatch", trial)
		}
		if len(got.nodes) != nNodes || len(got.pairs) != nPairs {
			t.Fatalf("trial %d: length mismatch", trial)
		}
		for i := range d.nodes {
			if got.nodes[i] != d.nodes[i] || len(got.adj[i]) != len(d.adj[i]) {
				t.Fatalf("trial %d: node %d mismatch", trial, i)
			}
			for j := range d.adj[i] {
				if got.adj[i][j] != d.adj[i][j] {
					t.Fatalf("trial %d: adjacency corrupted", trial)
				}
			}
		}
		for i := range d.pairs {
			if got.pairs[i] != d.pairs[i] || got.link[i] != d.link[i] {
				t.Fatalf("trial %d: pair %d mismatch", trial, i)
			}
		}
	}
}

func TestDecodeDeploymentRejectsShortBuffer(t *testing.T) {
	if _, err := decodeDeployment([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

// TestSeedParityTrajectory is the Ranks=1 regression anchor for the shared
// stage layer: a single-rank, single-thread distributed run must reproduce
// the sequential sampler's φ/θ trajectory bit for bit at EVERY iteration,
// not just at the end — the distributed engine is the same stage list with
// collectives wired in, so any divergence is a refactoring bug, caught at
// the first iteration it appears.
func TestSeedParityTrajectory(t *testing.T) {
	train, held := fixture(t, 150, 4, 700, 59)
	cfg := core.DefaultConfig(4, 4242)
	const iters = 6

	seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for it := 1; it <= iters; it++ {
		seq.Step()
		res, err := Run(cfg, train, held, Options{Ranks: 1, Threads: 1, Iterations: it})
		if err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
		for i, v := range seq.State.Pi {
			if math.Float32bits(v) != math.Float32bits(res.State.Pi[i]) {
				t.Fatalf("iteration %d: π[%d] = %v (dist) vs %v (seq); trajectories must be bit-identical", it, i, res.State.Pi[i], v)
			}
		}
		for i, v := range seq.State.PhiSum {
			if math.Float64bits(v) != math.Float64bits(res.State.PhiSum[i]) {
				t.Fatalf("iteration %d: Σφ[%d] diverged", it, i)
			}
		}
		for i, v := range seq.State.Theta {
			if math.Float64bits(v) != math.Float64bits(res.State.Theta[i]) {
				t.Fatalf("iteration %d: θ[%d] = %v (dist) vs %v (seq)", it, i, res.State.Theta[i], v)
			}
		}
	}
}

// TestHotRowCacheIsTransparent verifies the two promises of the hot-row
// cache: the trained model is byte-identical with the cache on or off
// (within a phase the algorithm never reads a row it writes, and the cache
// is invalidated at every barrier), and remote DKV traffic goes down.
func TestHotRowCacheIsTransparent(t *testing.T) {
	train, held := fixture(t, 200, 4, 1000, 53)
	cfg := core.DefaultConfig(4, 99)
	const iters = 8
	plain, err := Run(cfg, train, held, Options{Ranks: 3, Iterations: iters, EvalEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Run(cfg, train, held, Options{Ranks: 3, Iterations: iters, EvalEvery: 4, HotRowCache: 512})
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(plain.State.Pi, cached.State.Pi); d != 0 {
		t.Fatalf("hot-row cache changed π by %v; must be bit-identical", d)
	}
	if d := mathx.MaxAbsDiff(plain.State.Theta, cached.State.Theta); d != 0 {
		t.Fatalf("hot-row cache changed θ by %v; must be bit-identical", d)
	}
	for i := range plain.Perplexity {
		if plain.Perplexity[i].Value != cached.Perplexity[i].Value {
			t.Fatalf("hot-row cache changed perplexity at iter %d", plain.Perplexity[i].Iter)
		}
	}
	if cached.DKV.CacheHits == 0 {
		t.Fatal("cache recorded no hits on a 3-rank run")
	}
	if cached.DKV.RemoteKeys >= plain.DKV.RemoteKeys {
		t.Fatalf("remote keys with cache %d >= without %d; cache saved no traffic",
			cached.DKV.RemoteKeys, plain.DKV.RemoteKeys)
	}
	if plain.DKV.CacheHits != 0 {
		t.Fatalf("cache-off run reported %d hits", plain.DKV.CacheHits)
	}

	// Cross-iteration mode: the cache survives barriers minus the written
	// union, so it must stay byte-transparent while beating per-phase
	// flushing on remote traffic — the point of write-set invalidation.
	xiter, err := Run(cfg, train, held, Options{
		Ranks: 3, Iterations: iters, EvalEvery: 4,
		HotRowCache: 512, HotCacheCrossIter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(plain.State.Pi, xiter.State.Pi); d != 0 {
		t.Fatalf("cross-iteration cache changed π by %v; must be bit-identical", d)
	}
	if d := mathx.MaxAbsDiff(plain.State.Theta, xiter.State.Theta); d != 0 {
		t.Fatalf("cross-iteration cache changed θ by %v; must be bit-identical", d)
	}
	for i := range plain.Perplexity {
		if plain.Perplexity[i].Value != xiter.Perplexity[i].Value {
			t.Fatalf("cross-iteration cache changed perplexity at iter %d", plain.Perplexity[i].Iter)
		}
	}
	if xiter.DKV.RemoteKeys >= cached.DKV.RemoteKeys {
		t.Fatalf("cross-iteration remote keys %d >= per-phase %d; surviving the barrier saved nothing",
			xiter.DKV.RemoteKeys, cached.DKV.RemoteKeys)
	}
	if xiter.DKV.CacheInvalidations == 0 {
		t.Fatal("cross-iteration run recorded no invalidations; write-set exchange is not wired")
	}

	// Admission policy and degree bypass ride the same transparency
	// invariant: admit2 changes which rows get cached, never their bytes.
	admit2, err := Run(cfg, train, held, Options{
		Ranks: 3, Iterations: iters, EvalEvery: 4,
		HotRowCache: 512, HotCacheCrossIter: true,
		HotCachePolicy: "admit2", HotCacheMinDegree: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(plain.State.Pi, admit2.State.Pi); d != 0 {
		t.Fatalf("admit2 policy changed π by %v; must be bit-identical", d)
	}
	if admit2.DKV.CacheHits == 0 {
		t.Fatal("admit2 run recorded no cache hits")
	}
}

// TestSeedParityTrajectoryCrossIterCache is the multi-rank analogue of
// TestSeedParityTrajectory for the cross-iteration cache: a 2-rank run with
// the cache surviving barriers must still track the sequential sampler bit
// for bit at EVERY iteration — a stale row anywhere shows up at the first
// iteration that reads it.
func TestSeedParityTrajectoryCrossIterCache(t *testing.T) {
	train, held := fixture(t, 150, 4, 700, 59)
	cfg := core.DefaultConfig(4, 4242)
	const iters = 6

	seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for it := 1; it <= iters; it++ {
		seq.Step()
		res, err := Run(cfg, train, held, Options{
			Ranks: 2, Threads: 1, Iterations: it,
			HotRowCache: 256, HotCacheCrossIter: true,
		})
		if err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
		for i, v := range seq.State.Pi {
			if math.Float32bits(v) != math.Float32bits(res.State.Pi[i]) {
				t.Fatalf("iteration %d: π[%d] = %v (cached dist) vs %v (seq); a stale cache row survived a write", it, i, res.State.Pi[i], v)
			}
		}
		for i, v := range seq.State.PhiSum {
			if math.Float64bits(v) != math.Float64bits(res.State.PhiSum[i]) {
				t.Fatalf("iteration %d: Σφ[%d] diverged", it, i)
			}
		}
		for i, v := range seq.State.Theta {
			if math.Float64bits(v) != math.Float64bits(res.State.Theta[i]) {
				t.Fatalf("iteration %d: θ[%d] = %v (cached dist) vs %v (seq)", it, i, res.State.Theta[i], v)
			}
		}
		if it == iters && res.DKV.CacheHits == 0 {
			t.Fatal("cross-iteration cached run recorded no hits")
		}
	}
}

// TestSeedParityTrajectoryThreads pins the intra-rank threading contract:
// the per-iteration state must be bit-identical for Threads ∈ {1, 4} on both
// the sequential sampler and the 2-rank pipelined engine. Threading only
// moves which goroutine computes which vertex — every random draw comes from
// the per-(iteration, vertex) stream and every fold runs in fixed chunk
// order — so the fused kernels and scratch pooling must not change any
// summation order observably.
func TestSeedParityTrajectoryThreads(t *testing.T) {
	train, held := fixture(t, 150, 4, 700, 59)
	cfg := core.DefaultConfig(4, 4242)
	const iters = 5

	ref, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	threaded, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}

	check := func(it int, label string, pi []float32, phiSum, theta []float64) {
		t.Helper()
		for i, v := range ref.State.Pi {
			if math.Float32bits(v) != math.Float32bits(pi[i]) {
				t.Fatalf("iteration %d: %s π[%d] = %v vs %v (1-thread seq); must be bit-identical",
					it, label, i, pi[i], v)
			}
		}
		for i, v := range ref.State.PhiSum {
			if math.Float64bits(v) != math.Float64bits(phiSum[i]) {
				t.Fatalf("iteration %d: %s Σφ[%d] diverged", it, label, i)
			}
		}
		for i, v := range ref.State.Theta {
			if math.Float64bits(v) != math.Float64bits(theta[i]) {
				t.Fatalf("iteration %d: %s θ[%d] = %v vs %v (1-thread seq)",
					it, label, i, theta[i], v)
			}
		}
	}

	for it := 1; it <= iters; it++ {
		ref.Step()
		threaded.Step()
		check(it, "4-thread sequential", threaded.State.Pi, threaded.State.PhiSum, threaded.State.Theta)
		for _, threads := range []int{1, 4} {
			res, err := Run(cfg, train, held, Options{
				Ranks: 2, Threads: threads, Iterations: it, Pipeline: true,
			})
			if err != nil {
				t.Fatalf("iteration %d threads=%d: %v", it, threads, err)
			}
			check(it, fmt.Sprintf("2-rank %d-thread", threads), res.State.Pi, res.State.PhiSum, res.State.Theta)
		}
	}
}
