package dist

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// TestRunEmitsTelemetry is the acceptance test for the live telemetry layer:
// a 2-rank run with an event sink attached must emit valid JSONL carrying
// one iter event per iteration per rank (with per-stage durations and DKV
// counter deltas) plus a perplexity event for every eval point, and the
// folded Result.Metrics must agree with the legacy DKV totals.
func TestRunEmitsTelemetry(t *testing.T) {
	train, held := fixture(t, 200, 4, 900, 77)
	const iters, ranks, evalEvery = 6, 2, 3
	cfg := core.DefaultConfig(4, 99)

	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	res, err := Run(cfg, train, held, Options{
		Ranks: ranks, Threads: 2, Iterations: iters, EvalEvery: evalEvery,
		Pipeline: true, HotRowCache: 64,
		Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("stream is not valid JSONL: %v", err)
	}

	// Per-rank iteration events: exactly one per iteration, consecutive from
	// 0, each with stage durations; worker iter events carry DKV deltas.
	iterSeen := make(map[int][]int)
	var perps []obs.Event
	var starts, ends int
	for _, e := range events {
		switch e.Type {
		case obs.EventRunStart:
			starts++
			if e.Rank != 0 || e.Ranks != ranks || e.Iterations != iters {
				t.Fatalf("bad run_start: %+v", e)
			}
		case obs.EventRunEnd:
			ends++
		case obs.EventIter:
			iterSeen[e.Rank] = append(iterSeen[e.Rank], e.Iter)
			if len(e.StagesMS) == 0 {
				t.Fatalf("rank %d iter %d event has no stage durations", e.Rank, e.Iter)
			}
			for _, stage := range []string{PhaseDeployMinibatch, PhaseUpdatePhi, PhaseUpdatePi, PhaseUpdateBetaTheta} {
				if _, ok := e.StagesMS[stage]; !ok {
					t.Fatalf("rank %d iter %d event missing stage %q: %v", e.Rank, e.Iter, stage, e.StagesMS)
				}
			}
			if e.DKV == nil {
				t.Fatalf("rank %d iter %d event has no DKV counters", e.Rank, e.Iter)
			}
		case obs.EventPerplexity:
			perps = append(perps, e)
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("got %d run_start, %d run_end events; want 1 each", starts, ends)
	}
	if len(iterSeen) != ranks {
		t.Fatalf("iter events from %d ranks; want %d", len(iterSeen), ranks)
	}
	for rank, seq := range iterSeen {
		if len(seq) != iters {
			t.Fatalf("rank %d emitted %d iter events; want %d", rank, len(seq), iters)
		}
		for i, got := range seq {
			if got != i {
				t.Fatalf("rank %d iter events out of order: position %d has iter %d", rank, i, got)
			}
		}
	}

	// Perplexity events: one per eval point, matching Result.Perplexity.
	if len(perps) != len(res.Perplexity) {
		t.Fatalf("%d perplexity events; want %d", len(perps), len(res.Perplexity))
	}
	for i, e := range perps {
		p := res.Perplexity[i]
		if e.Iter != p.Iter || e.Perplexity != p.Value {
			t.Fatalf("perplexity event %d = (iter %d, %v); Result has (iter %d, %v)",
				i, e.Iter, e.Perplexity, p.Iter, p.Value)
		}
	}

	// The master's prefetched draw must be attributed to the right iteration
	// even with pipelining on: every rank-0 iter event carries the stage.
	for _, e := range events {
		if e.Type == obs.EventIter && e.Rank == 0 {
			if _, ok := e.StagesMS[PhaseDrawMinibatch]; !ok {
				t.Fatalf("rank 0 iter %d missing %s: %v", e.Iter, PhaseDrawMinibatch, e.StagesMS)
			}
		}
	}

	// The folded registry snapshot must agree with the legacy DKV totals and
	// carry the per-stage latency histograms.
	c := res.Metrics.Counters
	if c[obs.CtrDKVRequests] != res.DKV.Requests || c[obs.CtrDKVRemoteKeys] != res.DKV.RemoteKeys {
		t.Fatalf("Metrics counters %v disagree with DKV totals %+v", c, res.DKV)
	}
	if res.DKV.Requests == 0 || res.DKV.RemoteKeys == 0 {
		t.Fatalf("expected nonzero DKV traffic, got %+v", res.DKV)
	}
	if c[obs.CtrNetMsgsSent] == 0 || c[obs.CtrNetBytesSent] == 0 {
		t.Fatalf("expected nonzero transport counters, got %v", c)
	}
	h, ok := res.Metrics.Histograms["stage."+PhaseUpdatePhi]
	if !ok {
		t.Fatalf("no stage.%s histogram in Metrics: %v", PhaseUpdatePhi, res.Metrics.Histograms)
	}
	if h.Count != int64(iters*ranks) {
		t.Fatalf("stage.%s histogram count = %d; want %d", PhaseUpdatePhi, h.Count, iters*ranks)
	}

	// Summarize must accept the stream whole.
	sum, err := obs.Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ranks != ranks || sum.Iterations != iters {
		t.Fatalf("summary topology = (%d ranks, %d iters); want (%d, %d)",
			sum.Ranks, sum.Iterations, ranks, iters)
	}
	if sum.FinalPerplexity != res.Perplexity[len(res.Perplexity)-1].Value {
		t.Fatalf("summary final perplexity %v != result %v",
			sum.FinalPerplexity, res.Perplexity[len(res.Perplexity)-1].Value)
	}
}

// TestRunPeerMatrix pins the per-peer accounting invariants on a 2-rank run:
// each matrix row sums to that rank's aggregate transport.* counters, the
// whole matrix sums to the folded aggregates, and iter events carry per-peer
// wait deltas.
func TestRunPeerMatrix(t *testing.T) {
	train, held := fixture(t, 200, 4, 900, 77)
	const iters, ranks = 5, 2
	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	res, err := Run(core.DefaultConfig(4, 99), train, held, Options{
		Ranks: ranks, Threads: 1, Iterations: iters, Events: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if len(res.RankMetrics) != ranks {
		t.Fatalf("RankMetrics has %d snapshots, want %d", len(res.RankMetrics), ranks)
	}
	if res.Peers == nil || res.Peers.Ranks != ranks {
		t.Fatalf("Peers matrix = %+v, want %d ranks", res.Peers, ranks)
	}

	type grid struct {
		cells [][]int64
		aggr  string
	}
	grids := []grid{
		{res.Peers.MsgsSent, obs.CtrNetMsgsSent},
		{res.Peers.BytesSent, obs.CtrNetBytesSent},
		{res.Peers.MsgsRecv, obs.CtrNetMsgsRecv},
		{res.Peers.BytesRecv, obs.CtrNetBytesRecv},
	}
	for _, g := range grids {
		var total int64
		for r := 0; r < ranks; r++ {
			var row int64
			for p := 0; p < ranks; p++ {
				row += g.cells[r][p]
			}
			if want := res.RankMetrics[r].Counters[g.aggr]; row != want {
				t.Errorf("%s: row %d sums to %d; rank aggregate is %d", g.aggr, r, row, want)
			}
			total += row
		}
		if want := res.Metrics.Counters[g.aggr]; total != want {
			t.Errorf("%s: matrix total %d != folded aggregate %d", g.aggr, total, want)
		}
		if total == 0 {
			t.Errorf("%s: no traffic recorded", g.aggr)
		}
	}
	// Sends and receives are two views of the same frames: cell (r,p) of
	// MsgsSent must equal cell (p,r) of MsgsRecv once the run has quiesced.
	for r := 0; r < ranks; r++ {
		for p := 0; p < ranks; p++ {
			if res.Peers.MsgsSent[r][p] != res.Peers.MsgsRecv[p][r] {
				t.Errorf("MsgsSent[%d][%d]=%d != MsgsRecv[%d][%d]=%d",
					r, p, res.Peers.MsgsSent[r][p], p, r, res.Peers.MsgsRecv[p][r])
			}
		}
	}

	// The event stream carries the same signal: iter events with per-peer
	// wait deltas that Summarize folds into imposed-wait totals.
	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sawPeerWait := false
	for _, e := range events {
		if e.Type == obs.EventIter && len(e.PeerWaitMS) > 0 {
			sawPeerWait = true
			break
		}
	}
	if !sawPeerWait {
		t.Fatal("no iter event carries peer_wait_ms")
	}
	sum, err := obs.Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.PeerWaitMS) == 0 {
		t.Fatal("summary has no per-peer wait totals")
	}
	// Phase attribution: the recorder was on, so the instrumented transports
	// opened transport.wait.<phase> histograms.
	found := false
	for name := range res.Metrics.Histograms {
		if strings.HasPrefix(name, "transport.wait.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no transport.wait.<phase> histograms in Metrics: %v", res.Metrics.Histograms)
	}
}

// TestRunStragglerFlagged is the acceptance test of the straggler report: a
// 2-rank run whose rank 1 delays every collective send must be flagged, both
// by the registry-backed matrix report and by the event-stream summary.
func TestRunStragglerFlagged(t *testing.T) {
	train, held := fixture(t, 200, 4, 900, 77)
	const iters, ranks = 5, 2
	fabric, err := transport.NewFabric(ranks)
	if err != nil {
		t.Fatal(err)
	}
	defer fabric.Close()
	conns := fabric.Endpoints()
	// Slow rank 1's collective sends only (tags below TagUserBase): its
	// barrier/gather contributions arrive ~5ms late, so rank 0 blocks in
	// targeted receives waiting on it — the signature the report localises.
	conns[1] = &transport.FaultConn{
		Conn: conns[1],
		DelaySend: func(to int, tag uint32) time.Duration {
			if tag < cluster.TagUserBase {
				// Large enough to dominate baseline sync waits even under
				// -race instrumentation, which slows everything else too.
				return 5 * time.Millisecond
			}
			return 0
		},
	}
	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	res, err := RunOnTransport(core.DefaultConfig(4, 99), train, held, Options{
		Ranks: ranks, Threads: 1, Iterations: iters, Events: sink,
	}, conns)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	rep := res.Peers.Straggler()
	if len(rep.Flagged) != 1 || rep.Flagged[0] != 1 {
		t.Fatalf("matrix report flagged %v (imposed %v, skew %.2f); want rank 1",
			rep.Flagged, rep.ImposedWaitMS, rep.Skew)
	}
	if rep.Skew < obs.StragglerSkew {
		t.Fatalf("skew %.2f below the flagging threshold %v", rep.Skew, obs.StragglerSkew)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := obs.Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Stragglers) != 1 || sum.Stragglers[0] != 1 {
		t.Fatalf("event-stream summary flagged %v (waits %v); want rank 1",
			sum.Stragglers, sum.PeerWaitMS)
	}
}

// TestRunTelemetryOff pins the zero-cost default: no sink, no monitor — the
// run must carry no recorder state and still fill Metrics from the always-on
// counters.
func TestRunTelemetryOff(t *testing.T) {
	train, _ := fixture(t, 120, 3, 500, 31)
	res, err := Run(core.DefaultConfig(3, 7), train, nil, Options{
		Ranks: 2, Threads: 1, Iterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DKV.Requests == 0 {
		t.Fatal("DKV totals empty without a recorder; counters must be always-on")
	}
	if len(res.Metrics.Histograms) != 0 {
		t.Fatalf("stage histograms recorded without a recorder: %v", res.Metrics.Histograms)
	}
}

// TestRankTable renders the per-rank × per-stage breakdown from a real run.
func TestRankTable(t *testing.T) {
	train, _ := fixture(t, 120, 3, 500, 31)
	const iters = 4
	res, err := Run(core.DefaultConfig(3, 7), train, nil, Options{
		Ranks: 2, Threads: 1, Iterations: iters,
	})
	if err != nil {
		t.Fatal(err)
	}
	table := RankTable(res.RankPhases, iters)
	if !strings.Contains(table, "rank0") || !strings.Contains(table, "rank1") {
		t.Fatalf("table missing rank columns:\n%s", table)
	}
	for _, stage := range []string{PhaseDeployMinibatch, PhaseUpdatePhi, PhaseUpdatePi, PhaseTotal} {
		if !strings.Contains(table, stage) {
			t.Fatalf("table missing stage %q:\n%s", stage, table)
		}
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	for _, ln := range lines[1:] {
		if len(ln) == 0 {
			t.Fatalf("empty row in table:\n%s", table)
		}
	}
	// draw_minibatch happens only at the master; rank 1's column shows "-".
	for _, ln := range lines {
		if strings.HasPrefix(ln, PhaseDrawMinibatch) && !strings.Contains(ln, "-") {
			t.Fatalf("worker rank should have no %s time:\n%s", PhaseDrawMinibatch, table)
		}
	}
}
