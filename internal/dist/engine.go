package dist

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/sampling"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// node is one rank's engine instance: the wiring — topology, deployments
// and collectives — around the shared stage layer of internal/core, which
// holds all phase math. The stages read and write π through a
// store.DKVStore, the same PiStore contract the local sampler satisfies
// with a store.LocalStore.
type node struct {
	cfg  core.Config
	opt  Options
	comm *cluster.Comm
	rank int
	size int

	store *store.DKVStore
	n, k  int

	// master-only
	g        *graph.Graph
	edges    sampling.EdgeStrategy
	prefetch *engine.Prefetcher[*sampling.Batch]

	// all ranks
	held   *graph.HeldOut
	view   *workerView
	neigh  sampling.NeighborStrategy
	theta  []float64
	beta   []float64
	phases *trace.Phases
	reg    *obs.Registry    // this rank's telemetry registry
	rec    *obs.RunRecorder // nil unless Options.Events/Monitor ask for telemetry
	tracer *obs.Tracer      // nil unless Options.Trace; feeds engine/cluster/dkv spans
	phi    *core.PhiStage
	eval   *core.HeldOutEval // held-out shard, PerplexityChunk-aligned
	loop   *engine.Loop

	// bundles is every rank's gathered span buffer, filled by gatherTrace at
	// run end; identical across ranks (AllGather).
	bundles []obs.TraceBundle

	// per-iteration dataflow between stages
	dep    *deployment
	newPhi []float64

	// straggler mitigation (Options.Rebalance)
	rebal        *engine.Rebalancer // master only: the hysteresis state machine
	shares       []float64          // current minibatch share weights; nil = uniform split
	reshardEvery int                // window length in iterations, identical on all ranks
	waitLast     map[string]int64   // per-peer recv-wait counter values at the last window edge

	perp       []PerpPoint
	start      time.Time
	finalState *core.State // master only, set at the end
}

func newNode(cfg core.Config, opt Options, comm *cluster.Comm, g *graph.Graph, held *graph.HeldOut, reg *obs.Registry) (*node, error) {
	nd := &node{
		cfg:    cfg,
		opt:    opt,
		comm:   comm,
		rank:   comm.Rank(),
		size:   comm.Size(),
		n:      g.NumVertices(),
		k:      cfg.K,
		held:   held,
		phases: trace.NewPhases(),
		reg:    reg,
		theta:  core.InitTheta(cfg),
		beta:   make([]float64, cfg.K),
	}
	nd.refreshBeta()
	// A recorder exists only when someone consumes its output: an event sink,
	// or the monitor (which needs the run.* gauges refreshed on rank 0).
	if opt.Events != nil || (opt.Monitor != nil && nd.rank == 0) {
		nd.rec = obs.NewRunRecorder(opt.Events, nd.rank, reg)
	}
	if opt.Monitor != nil && nd.rank == 0 {
		opt.Monitor.Attach(reg)
	}
	if opt.Trace {
		nd.tracer = obs.NewTracer(nd.rank, 0)
		nd.tracer.SetDropCounter(reg.Counter(obs.CtrSpansDropped))
		comm.SetTracer(nd.tracer)
	}
	if opt.Rebalance {
		// Every rank must agree on the window boundaries without talking:
		// resolve the window length from the same defaulting rule the master's
		// rebalancer applies.
		nd.reshardEvery = opt.RebalanceCfg.Window
		if nd.reshardEvery <= 0 {
			nd.reshardEvery = engine.DefaultRebalanceConfig().Window
		}
		nd.waitLast = map[string]int64{}
		nd.shares = make([]float64, nd.size)
		for i := range nd.shares {
			nd.shares[i] = 1
		}
		if nd.rank == 0 {
			rb, err := engine.NewRebalancer(nd.size, opt.RebalanceCfg)
			if err != nil {
				return nil, err
			}
			nd.rebal = rb
		}
	}

	var heldSet *graph.EdgeSet
	var heldTouch []int32
	if held != nil {
		set := graph.NewEdgeSet(held.Len())
		heldTouch = make([]int32, nd.n)
		for _, e := range held.Pairs {
			set.Add(e)
			heldTouch[e.A]++
			heldTouch[e.B]++
		}
		heldSet = &set
		hLo, hHi := engine.SplitChunkAligned(held.Len(), core.PerplexityChunk, nd.size, nd.rank)
		nd.eval = core.NewHeldOutEval(held, cfg.Delta, hLo, hHi)
	}

	nd.view = newWorkerView(nd.n, heldSet, heldTouch)
	var err error
	if opt.UniformNeighbors {
		nd.neigh, err = sampling.NewUniformNeighbors(nd.view, opt.NeighborCount)
	} else {
		nd.neigh, err = sampling.NewLinkPlusUniform(nd.view, opt.NeighborCount)
	}
	if err != nil {
		return nil, err
	}

	if nd.rank == 0 {
		nd.g = g
		if opt.Stratified {
			nd.edges, err = sampling.NewStratifiedNode(g, heldSet, opt.LinkProb, opt.NonLinkCount)
		} else {
			nd.edges, err = sampling.NewRandomPair(g, heldSet, opt.MinibatchPairs)
		}
		if err != nil {
			return nil, err
		}
		// The master-side pipeline of Section III-D: iteration t+1's
		// minibatch is drawn while iteration t computes.
		// The draw for iteration t+1 overlaps iteration t's compute, so it
		// reports its duration keyed by its own iteration — the recorder
		// attributes it to the right iter event either way.
		nd.prefetch = engine.NewPrefetcher(func(t int) *sampling.Batch {
			start := time.Now()
			batch := &sampling.Batch{}
			core.DrawMinibatch(&nd.cfg, nd.edges, t, batch)
			d := time.Since(start)
			nd.phases.Add(PhaseDrawMinibatch, d)
			if nd.rec != nil {
				nd.rec.StageDone(t, PhaseDrawMinibatch, d)
			}
			return batch
		})
	}

	nd.store, err = store.NewDKVCache(comm.Conn(), nd.n, cfg.K, opt.Threads, store.CacheConfig{
		Rows:      opt.HotRowCache,
		Policy:    opt.HotCachePolicy,
		MinDegree: opt.HotCacheMinDegree,
		CrossIter: opt.HotCacheCrossIter,
	}, reg)
	if err != nil {
		return nil, err
	}
	if opt.HotRowCache > 0 && opt.HotCacheCrossIter {
		nd.store.SetWriteSetExchange(nd.exchangeWriteSets)
	}
	if nd.tracer != nil {
		nd.store.SetTracer(nd.tracer)
	}
	nd.phi = &core.PhiStage{
		Cfg:        &nd.cfg,
		Store:      nd.store,
		Neigh:      nd.neigh,
		Threads:    opt.Threads,
		ChunkNodes: opt.PhiChunkNodes,
		Pipelined:  opt.Pipeline,
		Depth:      opt.PipelineDepth,
		Trace:      nd.phases,
	}
	if nd.rec != nil { // assign through the guard: a typed-nil Recorder would defeat the nil checks
		nd.phi.Rec = nd.rec
	}
	nd.loop = nd.buildLoop()
	// "shares" is initial: the reshard stage writes next window's shares at
	// the END of an iteration, so the deploy at the top always reads a value
	// produced before the iteration started (uniform at t=0).
	if err := nd.loop.Validate([]string{"graph", "pi", "theta", "beta", "shares"}); err != nil {
		return nil, err
	}
	return nd, nil
}

func (nd *node) refreshBeta() {
	for k := 0; k < nd.k; k++ {
		nd.beta[k] = nd.theta[k*2+1] / (nd.theta[k*2] + nd.theta[k*2+1])
	}
}

// buildLoop assembles the distributed iteration: the shared stages of
// internal/core wrapped in this engine's scatter/gather/broadcast wiring,
// with an unnamed (untimed) barrier+flush between phases whose read and
// write sets would otherwise overlap.
func (nd *node) buildLoop() *engine.Loop {
	loop := &engine.Loop{
		Trace:  nd.phases,
		Tracer: nd.tracer,
		Stages: []engine.Stage{
			{
				Name:   PhaseDeployMinibatch,
				Reads:  []string{"graph", "shares"},
				Writes: []string{"batch"},
				Run:    nd.deployStage,
			},
			{
				Name:   PhaseUpdatePhi,
				Reads:  []string{"batch", "pi", "beta"},
				Writes: []string{"new_phi"},
				Run:    nd.phiStage,
			},
			{Run: nd.barrierStage, Barrier: true}, // update_phi reads old π; fence before overwriting
			{
				Name:   PhaseUpdatePi,
				Reads:  []string{"batch", "new_phi"},
				Writes: []string{"pi"},
				Run:    nd.piStage,
			},
			{Run: nd.barrierStage, Barrier: true}, // update_beta_theta reads the new π everywhere
			{
				Name:   PhaseUpdateBetaTheta,
				Reads:  []string{"batch", "pi", "theta"},
				Writes: []string{"theta", "beta"},
				Run:    nd.thetaStage,
			},
		},
	}
	if nd.opt.Rebalance {
		// The reshard collective runs at window boundaries; on every other
		// iteration the stage is a no-op on all ranks, which keeps the
		// collective tag sequence aligned without per-iteration traffic.
		loop.Stages = append(loop.Stages, engine.Stage{
			Name:   PhaseReshard,
			Writes: []string{"shares"},
			Run:    nd.reshardStage,
		})
	}
	if nd.opt.Publisher != nil {
		// π was fenced by the barrier before update_beta_theta, so the
		// publication after it is legal (Validate checks exactly this). At
		// runtime the stage runs last in the iteration: the serving rank (the
		// master) gathers while its peers sit in the next deploy's scatter
		// receive — no rank can reach its next π write until the master, and
		// therefore this gather, is done.
		loop.Stages = append(loop.Stages, engine.Stage{
			Name:      PhasePublish,
			Reads:     []string{"pi", "beta"},
			Publishes: []string{"pi"},
			Run:       nd.publishStage,
		})
	}
	if nd.opt.CheckpointPath != "" {
		// Master-only, like publish, and under the same consistency argument:
		// π was fenced by the pre-θ barrier, and the master gathers peer
		// shards while those peers are parked in the next iteration's
		// collective receive with their DKV goroutines still serving.
		loop.Stages = append(loop.Stages, engine.Stage{
			Name:      PhaseCheckpoint,
			Reads:     []string{"pi", "theta"},
			Publishes: []string{"pi"},
			Run:       nd.checkpointStage,
		})
	}
	if nd.rec != nil { // assign through the guard: a typed-nil Recorder would defeat the nil checks
		loop.Recorder = nd.rec
		// Phase attribution rides on the recorder guard for the same reason
		// telemetry-off runs create no histograms: the hook makes the
		// instrumented transport open transport.wait.<phase> histograms, and
		// a run nobody observes must not pay for (or leak) them.
		loop.PhaseHook = nd.comm.SetPhase
	}
	if hook := nd.opt.FaultHook; hook != nil {
		loop.FaultHook = func(t int) error { return hook(nd.rank, t) }
	}
	return loop
}

// run is one rank's SPMD main. Any error is converted into a fabric-wide
// abort before returning, so no peer can deadlock waiting for a message
// this rank will never send — the engine's bounded-time failure guarantee.
func (nd *node) run() (err error) {
	defer nd.store.Close()
	defer func() {
		if err == nil {
			return
		}
		// If we are merely reacting to someone else's abort, the fabric is
		// already poisoned; re-broadcasting would overwrite nothing (first
		// cause wins) but would waste frames on a dying mesh.
		if _, isAbort := transport.AsAbort(err); !isAbort {
			nd.comm.Abort(fmt.Errorf("rank %d: %w", nd.rank, err))
		}
	}()
	nd.start = time.Now()

	// Degree-aware cache admission needs the degree table, which only the
	// master's graph knows: broadcast it once before training starts.
	if nd.opt.HotRowCache > 0 && nd.opt.HotCacheMinDegree > 0 {
		var buf []byte
		if nd.rank == 0 {
			deg := make([]int32, nd.n)
			for a := 0; a < nd.n; a++ {
				deg[a] = int32(nd.g.Degree(a))
			}
			buf = wire.AppendInt32s(nil, deg)
		}
		buf, err := nd.comm.Bcast(0, buf)
		if err != nil {
			return err
		}
		deg := make([]int32, nd.n)
		wire.Int32s(buf, 0, nd.n, deg)
		nd.store.SetDegrees(deg)
	}

	// Populate the owned π shard: from the restart checkpoint when resuming,
	// from the shared deterministic init otherwise. θ follows the same rule.
	startIter := 0
	if st := nd.opt.RestartState; st != nil {
		startIter = nd.opt.RestartIter
		nd.store.InitOwned(func(a int, pi []float32) float64 {
			copy(pi, st.PiRow(a))
			return st.PhiSum[a]
		})
		copy(nd.theta, st.Theta)
		nd.refreshBeta()
	} else {
		nd.store.InitOwned(func(a int, pi []float32) float64 {
			return core.InitPiRow(nd.cfg, a, pi)
		})
	}
	if err := nd.comm.Barrier(); err != nil {
		return err
	}

	if nd.rec != nil && nd.rank == 0 {
		nd.rec.RunStart(nd.size, nd.opt.Iterations)
	}
	totalTimer := nd.phases.Timer(PhaseTotal)
	for t := startIter; t < nd.opt.Iterations; t++ {
		if err := nd.loop.RunIteration(t); err != nil {
			return fmt.Errorf("iteration %d: %w", t, err)
		}
		if nd.opt.EvalEvery > 0 && (t+1)%nd.opt.EvalEvery == 0 {
			v, err := nd.evalPerplexity()
			if err != nil {
				return fmt.Errorf("perplexity at %d: %w", t, err)
			}
			nd.perp = append(nd.perp, PerpPoint{Iter: t + 1, Value: v, Elapsed: time.Since(nd.start)})
			// The value is identical on every rank (master reduces and
			// broadcasts); emit the perplexity event once, from rank 0.
			if nd.rec != nil && nd.rank == 0 {
				nd.rec.EvalDone(t+1, v)
			}
		}
	}
	totalTimer()
	if nd.rec != nil && nd.rank == 0 {
		nd.rec.RunEnd(nd.opt.Iterations)
	}

	// Gather every rank's span buffer before state collection: identical
	// program order on all ranks keeps the collective tag sequence aligned,
	// and the Bundle snapshot is taken before the gather so the gather's own
	// spans are excluded symmetrically everywhere.
	if nd.tracer != nil {
		if err := nd.gatherTrace(); err != nil {
			return fmt.Errorf("gathering trace: %w", err)
		}
	}

	// Assemble the full state at the master while all stores still serve.
	if nd.rank == 0 {
		st, err := nd.collectState()
		if err != nil {
			return err
		}
		nd.finalState = st
	}
	return nd.comm.Barrier()
}

// deployStage is the minibatch deployment: the master draws (or collects
// the prefetched) minibatch, partitions it, and scatters each rank's share;
// every rank decodes its deployment and loads the scattered adjacency into
// its sampling view.
func (nd *node) deployStage(t int) error {
	var mine []byte
	var err error
	if nd.rank == 0 {
		batch := nd.prefetch.Next(t)
		parts := nd.buildDeployments(t, batch)
		if nd.opt.Pipeline && t+1 < nd.opt.Iterations {
			nd.prefetch.Start(t + 1)
		}
		mine, err = nd.comm.Scatter(0, parts)
	} else {
		mine, err = nd.comm.Scatter(0, nil)
	}
	if err != nil {
		return err
	}
	dep, err := decodeDeployment(mine)
	if err != nil {
		return err
	}
	nd.dep = dep
	nd.view.load(dep)
	return nil
}

// phiStage runs the shared update_phi stage (reads old π only) over this
// rank's deployment.
func (nd *node) phiStage(t int) error {
	if delay := nd.opt.ComputeDelay; delay != nil {
		if d := delay(nd.rank, len(nd.dep.nodes)); d > 0 {
			time.Sleep(d)
		}
	}
	n := len(nd.dep.nodes) * nd.k
	if cap(nd.newPhi) < n {
		nd.newPhi = make([]float64, n)
	}
	nd.newPhi = nd.newPhi[:n]
	return nd.phi.Run(t, nd.cfg.StepSize(t), nd.dep.nodes, nd.beta, nd.newPhi)
}

// windowWaits snapshots this rank's per-peer recv-wait counters and returns
// the delta since the previous window edge as a dense per-peer vector in
// milliseconds — this rank's row of the straggler matrix, restricted to the
// window.
func (nd *node) windowWaits() []float64 {
	out := make([]float64, nd.size)
	for name, v := range nd.reg.CounterValues("transport.peer.") {
		peer, kind, ok := obs.ParsePeerCounter(name)
		if !ok || kind != obs.PeerRecvWaitNS {
			continue
		}
		if peer < nd.size {
			out[peer] = float64(v-nd.waitLast[name]) / 1e6
		}
		nd.waitLast[name] = v
	}
	return out
}

// reshardStage is the mitigation collective. On window boundaries every rank
// gathers its windowed per-peer recv-wait vector at the master; the master
// folds the column sums (diagonal excluded — the same imposed-wait statistic
// as obs.PeerMatrix), feeds the window to the rebalancer, and broadcasts the
// resulting share weights, which the next deployments split by. Off-boundary
// iterations are a no-op on every rank, so the collective tag sequence stays
// aligned. The weights only decide WHO computes which minibatch chunk — the
// trajectory is bit-identical under any weight vector.
func (nd *node) reshardStage(t int) error {
	if (t+1)%nd.reshardEvery != 0 {
		return nil
	}
	gathered, err := nd.comm.Gather(0, wire.AppendFloat64s(nil, nd.windowWaits()))
	if err != nil {
		return err
	}
	var out []byte
	if nd.rank == 0 {
		imposed := make([]float64, nd.size)
		row := make([]float64, nd.size)
		for r := 0; r < nd.size; r++ {
			wire.Float64s(gathered[r], 0, nd.size, row)
			for p := 0; p < nd.size; p++ {
				if p != r {
					imposed[p] += row[p]
				}
			}
		}
		weights, changed := nd.rebal.ObserveWindow(imposed)
		rep := nd.rebal.LastReport()
		nd.reg.Counter(obs.CtrReshardWindows).Inc()
		nd.reg.Counter(obs.CtrReshardFlags).Add(int64(len(rep.Flagged)))
		flag := byte(0)
		if changed {
			flag = 1
			nd.reg.Counter(obs.CtrReshardChanges).Inc()
			if nd.rec != nil {
				waitMS := make(map[int]float64, nd.size)
				for p, w := range imposed {
					waitMS[p] = w
				}
				nd.rec.RebalanceDone(t, weights, rep.Flagged, waitMS)
			}
		}
		out = append([]byte{flag}, wire.AppendFloat64s(nil, weights)...)
	}
	out, err = nd.comm.Bcast(0, out)
	if err != nil {
		return err
	}
	wire.Float64s(out[1:], 0, nd.size, nd.shares)
	return nil
}

// checkpointStage writes the coordinated checkpoint: master-only, at the end
// of every CheckpointEvery-th iteration, gathering the full state through
// the DKV read path (peers serve while fenced in the next collective). The
// stored iteration t+1 is "iterations completed", so a restart resumes at
// exactly the next iteration's RNG streams.
func (nd *node) checkpointStage(t int) error {
	if nd.rank != 0 || (t+1)%nd.opt.CheckpointEvery != 0 {
		return nil
	}
	st, err := nd.collectState()
	if err != nil {
		return fmt.Errorf("checkpoint at %d: %w", t, err)
	}
	if err := st.SaveFile(nd.opt.CheckpointPath, t+1); err != nil {
		return fmt.Errorf("checkpoint at %d: %w", t, err)
	}
	return nil
}

// piStage commits the staged φ rows through the DKV store (update_pi).
func (nd *node) piStage(t int) error {
	return nd.store.WriteRows(nd.dep.nodes, nd.newPhi)
}

// barrierStage fences the phases whose read/write sets would otherwise
// overlap, and marks the store's phase barrier (hot-row cache
// invalidation). With the cross-iteration cache, Flush runs the write-set
// exchange collective right after the barrier — every rank passes through
// here in the same program order, which is what keeps the collective tag
// sequence aligned.
func (nd *node) barrierStage(int) error {
	if err := nd.comm.Barrier(); err != nil {
		return err
	}
	return nd.store.Flush()
}

// gatherTrace exchanges every rank's span bundle (Comm.AllGather of the
// JSON-encoded form), leaving the full rank-ordered set in nd.bundles on
// every rank.
func (nd *node) gatherTrace() error {
	parts, err := nd.comm.AllGather(nd.tracer.Bundle().Encode())
	if err != nil {
		return err
	}
	nd.bundles = make([]obs.TraceBundle, 0, len(parts))
	for r, p := range parts {
		b, err := obs.DecodeTraceBundle(p)
		if err != nil {
			return fmt.Errorf("bundle from rank %d: %w", r, err)
		}
		nd.bundles = append(nd.bundles, b)
	}
	return nil
}

// exchangeWriteSets is the cross-iteration cache's invalidation collective:
// every rank contributes the π-row ids it wrote since the last barrier and
// receives the union, which its cache then drops. Rank order in the union
// is deterministic but irrelevant — dropping keys is commutative.
func (nd *node) exchangeWriteSets(local []int32) ([]int32, error) {
	parts, err := nd.comm.AllGather(wire.AppendInt32s(nil, local))
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p) / 4
	}
	union := make([]int32, total)
	off := 0
	for _, p := range parts {
		k := len(p) / 4
		wire.Int32s(p, 0, k, union[off:off+k])
		off += k
	}
	return union, nil
}

// publishStage seals the full post-iteration π view into an immutable
// snapshot and hands it to Options.Publisher; serving rank (master) only —
// peers pass through and serve the gather with their DKV goroutines.
// Version t+1 = iterations completed.
func (nd *node) publishStage(t int) error {
	if nd.rank != 0 || (t+1)%nd.opt.PublishEvery != 0 {
		return nil
	}
	snap, err := nd.store.Snapshot(t+1, nd.beta)
	if err != nil {
		return err
	}
	return nd.opt.Publisher.Publish(snap)
}

// thetaStage computes this rank's per-chunk θ-gradient partials through the
// shared stage, gathers them at the master (which folds them in global
// chunk order, applies Eqn 3) and broadcasts the new θ.
func (nd *node) thetaStage(t int) error {
	k := nd.k
	partials, err := core.ThetaPartials(&nd.cfg, nd.store, nd.dep.pairs, nd.dep.link,
		nd.theta, nd.beta, nd.opt.Threads)
	if err != nil {
		return err
	}
	gathered, err := nd.comm.Gather(0, wire.AppendFloat64s(nil, partials))
	if err != nil {
		return err
	}
	var thetaBytes []byte
	if nd.rank == 0 {
		grad := make([]float64, 2*k)
		for r := 0; r < nd.size; r++ {
			buf := gathered[r]
			vals := make([]float64, len(buf)/8)
			wire.Float64s(buf, 0, len(vals), vals)
			core.FoldThetaPartials(grad, vals, k)
		}
		core.ApplyThetaUpdate(&nd.cfg, nd.cfg.StepSize(t), nd.dep.scale, grad, nd.theta,
			mathx.NewStream(nd.cfg.Seed, core.StreamTheta(t)))
		thetaBytes = wire.AppendFloat64s(nil, nd.theta)
	}
	thetaBytes, err = nd.comm.Bcast(0, thetaBytes)
	if err != nil {
		return err
	}
	wire.Float64s(thetaBytes, 0, 2*k, nd.theta)
	nd.refreshBeta()
	return nil
}

// buildDeployments partitions the batch across ranks: vertices split evenly
// (each with its adjacency from the master's graph), pairs split on
// ThetaChunk boundaries so the gradient fold order matches the sequential
// engine.
func (nd *node) buildDeployments(t int, batch *sampling.Batch) [][]byte {
	parts := make([][]byte, nd.size)
	for r := 0; r < nd.size; r++ {
		var nLo, nHi, pLo, pHi int
		if nd.shares != nil {
			// Weighted re-sharding (Options.Rebalance): same contiguous
			// rank-ordered tiling, sizes proportional to the current shares.
			// Under uniform shares this reproduces the unweighted split
			// exactly (SplitWeighted degenerates to SplitEven /
			// SplitChunkAligned), so "mitigation armed, nothing flagged" is
			// byte-identical to the unmitigated engine.
			nLo, nHi = engine.SplitWeighted(len(batch.Nodes), 1, nd.shares, r)
			pLo, pHi = engine.SplitWeighted(len(batch.Pairs), core.ThetaChunk, nd.shares, r)
		} else {
			nLo, nHi = engine.SplitEven(len(batch.Nodes), nd.size, r)
			pLo, pHi = engine.SplitChunkAligned(len(batch.Pairs), core.ThetaChunk, nd.size, r)
		}
		d := &deployment{
			iter:    t,
			nodes:   batch.Nodes[nLo:nHi],
			adj:     make([][]int32, nHi-nLo),
			pairs:   batch.Pairs[pLo:pHi],
			link:    batch.Linked[pLo:pHi],
			scale:   batch.Scale,
			chunkLo: pLo / core.ThetaChunk,
		}
		for i, a := range d.nodes {
			d.adj[i] = nd.g.Neighbors(int(a))
		}
		parts[r] = encodeDeployment(d)
	}
	return parts
}
