package dist

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dkv"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/par"
	"repro/internal/sampling"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Phase names used in traces; the Table III harness keys off these.
const (
	PhaseDrawMinibatch   = "draw_minibatch"
	PhaseDeployMinibatch = "deploy_minibatch"
	PhaseUpdatePhi       = "update_phi"
	PhaseLoadPi          = "update_phi.load_pi"
	PhaseComputePhi      = "update_phi.compute"
	PhaseUpdatePi        = "update_pi"
	PhaseUpdateBetaTheta = "update_beta_theta"
	PhasePerplexity      = "perplexity"
	PhaseTotal           = "total"
)

// Options configures a distributed run.
type Options struct {
	Ranks   int // simulated cluster size (master is rank 0 and also computes)
	Threads int // OpenMP-style threads per rank; 0 = GOMAXPROCS

	// Pipeline enables both pipelining schemes of Section III-D: the master
	// samples iteration t+1's minibatch while computing t, and each rank
	// double-buffers π loading against the update_phi compute.
	Pipeline bool
	// PhiChunkNodes is the pipeline chunk size in minibatch vertices;
	// 0 defaults to 16.
	PhiChunkNodes int

	// Minibatch and neighbor strategy parameters, mirroring
	// core.SamplerOptions.
	MinibatchPairs   int
	Stratified       bool
	LinkProb         float64
	NonLinkCount     int
	NeighborCount    int
	UniformNeighbors bool

	// EvalEvery > 0 evaluates the averaged perplexity every that many
	// iterations (requires a held-out set).
	EvalEvery  int
	Iterations int

	// FaultHook, when non-nil, is called by every rank at the top of each
	// iteration; a non-nil return makes that rank fail exactly as if the
	// iteration itself had errored, triggering the fabric-wide abort. It
	// exists for the failure-injection test suites and the -fail-rank /
	// -fail-iter flags of cmd/ocd-cluster; production runs leave it nil.
	FaultHook func(rank, iter int) error
}

func (o *Options) setDefaults() {
	if o.Ranks == 0 {
		o.Ranks = 2
	}
	if o.PhiChunkNodes == 0 {
		o.PhiChunkNodes = 16
	}
	if o.MinibatchPairs == 0 {
		o.MinibatchPairs = 128
	}
	if o.LinkProb == 0 {
		o.LinkProb = 0.5
	}
	if o.NonLinkCount == 0 {
		o.NonLinkCount = 32
	}
	if o.NeighborCount == 0 {
		o.NeighborCount = 32
	}
}

// PerpPoint is one perplexity evaluation during a run.
type PerpPoint struct {
	Iter    int
	Value   float64
	Elapsed time.Duration
}

// DKVTotals aggregates the DKV traffic of all ranks.
type DKVTotals struct {
	LocalKeys    int64
	RemoteKeys   int64
	Requests     int64
	BytesRead    int64
	BytesWritten int64
}

// Result is what a distributed run returns.
type Result struct {
	State      *core.State // fully assembled π/Σφ/θ/β
	Perplexity []PerpPoint
	Phases     *trace.Phases // per-phase totals, max across ranks
	RankPhases []map[string]time.Duration
	DKV        DKVTotals
	Iterations int
	Elapsed    time.Duration
	RemoteFrac float64 // fraction of DKV keys served remotely
}

// node is one rank's engine instance.
type node struct {
	cfg  core.Config
	opt  Options
	comm *cluster.Comm
	rank int
	size int

	store *dkv.Store
	n, k  int

	// master-only
	g     *graph.Graph
	edges sampling.EdgeStrategy
	// prefetch channel for pipelined minibatch sampling
	prefetch chan *sampling.Batch

	// all ranks
	held      *graph.HeldOut
	heldSet   *graph.EdgeSet
	heldTouch []int32
	view      *workerView
	neigh     sampling.NeighborStrategy
	theta     []float64
	beta      []float64
	phases    *trace.Phases

	// held-out shard (pair indices, PerplexityChunk-aligned)
	hLo, hHi int
	avg      []float64
	ppxT     int

	perp       []PerpPoint
	start      time.Time
	finalState *core.State // master only, set at the end
}

// tag for the θ broadcast payload is unnecessary — collectives sequence
// themselves; this file only defines helpers beyond protocol.go.

// splitEven returns the [lo, hi) slice bounds of part r when splitting n
// items into `parts` contiguous groups as evenly as possible.
func splitEven(n, parts, r int) (int, int) {
	base := n / parts
	rem := n % parts
	lo := r*base + min(r, rem)
	hi := lo + base
	if r < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// splitChunkAligned partitions n items into `parts` contiguous ranges whose
// boundaries are multiples of chunk, so the distributed fold order matches
// the sequential ChunkedReduce order.
func splitChunkAligned(n, chunk, parts, r int) (int, int) {
	nChunks := (n + chunk - 1) / chunk
	cLo, cHi := splitEven(nChunks, parts, r)
	lo := cLo * chunk
	hi := cHi * chunk
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Run executes a distributed training run over an in-process fabric with
// opt.Ranks simulated cluster nodes. The graph lives only at the master
// (rank 0), matching the paper's data distribution; the held-out set is
// replicated (it is small and every rank needs it for exclusion checks).
func Run(cfg core.Config, g *graph.Graph, held *graph.HeldOut, opt Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt.setDefaults()
	if opt.Iterations < 1 {
		return nil, fmt.Errorf("dist: Iterations = %d, need at least 1", opt.Iterations)
	}
	if opt.EvalEvery > 0 && held == nil {
		return nil, fmt.Errorf("dist: EvalEvery set but no held-out set given")
	}
	fabric, err := transport.NewFabric(opt.Ranks)
	if err != nil {
		return nil, err
	}
	defer fabric.Close()
	return RunOnTransport(cfg, g, held, opt, fabric.Endpoints())
}

// RunOnTransport is Run over caller-provided endpoints — one per rank, all
// in this process. It exists so the engine can be exercised over the TCP
// mesh (or any other transport.Conn implementation) with the exact same
// protocol; cmd/ocd-cluster and the TCP fidelity tests use it.
func RunOnTransport(cfg core.Config, g *graph.Graph, held *graph.HeldOut, opt Options, conns []transport.Conn) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	opt.setDefaults()
	opt.Ranks = len(conns)
	if opt.Iterations < 1 {
		return nil, fmt.Errorf("dist: Iterations = %d, need at least 1", opt.Iterations)
	}
	if opt.EvalEvery > 0 && held == nil {
		return nil, fmt.Errorf("dist: EvalEvery set but no held-out set given")
	}

	nodes := make([]*node, opt.Ranks)
	for r := 0; r < opt.Ranks; r++ {
		nd, err := newNode(cfg, opt, cluster.New(conns[r]), g, held)
		if err != nil {
			return nil, err
		}
		nodes[r] = nd
	}

	errs := make([]error, opt.Ranks)
	done := make(chan int, opt.Ranks)
	for r := 0; r < opt.Ranks; r++ {
		go func(r int) {
			errs[r] = nodes[r].run()
			done <- r
		}(r)
	}
	for i := 0; i < opt.Ranks; i++ {
		<-done
	}
	// Every rank returns within bounded time even on failure: the failing
	// rank broadcasts an abort (node.run's deferred Comm.Abort), so its
	// peers surface AbortErrors rather than blocking. Report the originating
	// rank's own error when it is local; peers' abort echoes name the same
	// rank inside the AbortError, so a multi-process driver gets the rank
	// too.
	var abortErr error
	for r, err := range errs {
		if err == nil {
			continue
		}
		if _, isAbort := transport.AsAbort(err); isAbort {
			if abortErr == nil {
				abortErr = fmt.Errorf("dist: rank %d: %w", r, err)
			}
			continue
		}
		return nil, fmt.Errorf("dist: rank %d: %w", r, err)
	}
	if abortErr != nil {
		return nil, abortErr
	}
	return assembleResult(nodes), nil
}

func newNode(cfg core.Config, opt Options, comm *cluster.Comm, g *graph.Graph, held *graph.HeldOut) (*node, error) {
	nd := &node{
		cfg:    cfg,
		opt:    opt,
		comm:   comm,
		rank:   comm.Rank(),
		size:   comm.Size(),
		n:      g.NumVertices(),
		k:      cfg.K,
		held:   held,
		phases: trace.NewPhases(),
		theta:  core.InitTheta(cfg),
		beta:   make([]float64, cfg.K),
	}
	for k := 0; k < cfg.K; k++ {
		nd.beta[k] = nd.theta[k*2+1] / (nd.theta[k*2] + nd.theta[k*2+1])
	}

	if held != nil {
		set := graph.NewEdgeSet(held.Len())
		touch := make([]int32, nd.n)
		for _, e := range held.Pairs {
			set.Add(e)
			touch[e.A]++
			touch[e.B]++
		}
		nd.heldSet = &set
		nd.heldTouch = touch
		nd.hLo, nd.hHi = splitChunkAligned(held.Len(), core.PerplexityChunk, nd.size, nd.rank)
		nd.avg = make([]float64, nd.hHi-nd.hLo)
	}

	nd.view = newWorkerView(nd.n, nd.heldSet, nd.heldTouch)
	var err error
	if opt.UniformNeighbors {
		nd.neigh, err = sampling.NewUniformNeighbors(nd.view, opt.NeighborCount)
	} else {
		nd.neigh, err = sampling.NewLinkPlusUniform(nd.view, opt.NeighborCount)
	}
	if err != nil {
		return nil, err
	}

	if nd.rank == 0 {
		nd.g = g
		if opt.Stratified {
			nd.edges, err = sampling.NewStratifiedNode(g, nd.heldSet, opt.LinkProb, opt.NonLinkCount)
		} else {
			nd.edges, err = sampling.NewRandomPair(g, nd.heldSet, opt.MinibatchPairs)
		}
		if err != nil {
			return nil, err
		}
		nd.prefetch = make(chan *sampling.Batch, 1)
	}

	nd.store, err = dkv.New(comm.Conn(), nd.n, rowBytes(cfg.K))
	if err != nil {
		return nil, err
	}
	return nd, nil
}

// run is one rank's SPMD main. Any error is converted into a fabric-wide
// abort before returning, so no peer can deadlock waiting for a message
// this rank will never send — the engine's bounded-time failure guarantee.
func (nd *node) run() (err error) {
	defer nd.store.Close()
	defer func() {
		if err == nil {
			return
		}
		// If we are merely reacting to someone else's abort, the fabric is
		// already poisoned; re-broadcasting would overwrite nothing (first
		// cause wins) but would waste frames on a dying mesh.
		if _, isAbort := transport.AsAbort(err); !isAbort {
			nd.comm.Abort(fmt.Errorf("rank %d: %w", nd.rank, err))
		}
	}()
	nd.start = time.Now()

	// Populate the owned π shard from the shared deterministic init.
	lo, hi := nd.store.OwnedRange()
	row := make([]byte, rowBytes(nd.k))
	pi := make([]float32, nd.k)
	for a := lo; a < hi; a++ {
		phiSum := core.InitPiRow(nd.cfg, a, pi)
		encodeRowPi(row, pi, phiSum)
		nd.store.WriteLocal(a, row)
	}
	if err := nd.comm.Barrier(); err != nil {
		return err
	}

	totalTimer := nd.phases.Timer(PhaseTotal)
	for t := 0; t < nd.opt.Iterations; t++ {
		if hook := nd.opt.FaultHook; hook != nil {
			if herr := hook(nd.rank, t); herr != nil {
				return fmt.Errorf("iteration %d: injected fault: %w", t, herr)
			}
		}
		if err := nd.iterate(t); err != nil {
			return fmt.Errorf("iteration %d: %w", t, err)
		}
		if nd.opt.EvalEvery > 0 && (t+1)%nd.opt.EvalEvery == 0 {
			v, err := nd.evalPerplexity()
			if err != nil {
				return fmt.Errorf("perplexity at %d: %w", t, err)
			}
			nd.perp = append(nd.perp, PerpPoint{Iter: t + 1, Value: v, Elapsed: time.Since(nd.start)})
		}
	}
	totalTimer()

	// Assemble the full state at the master while all stores still serve.
	if nd.rank == 0 {
		st, err := nd.collectState()
		if err != nil {
			return err
		}
		nd.finalState = st
	}
	return nd.comm.Barrier()
}

// nextBatch returns iteration t's minibatch at the master, via the prefetch
// pipeline when enabled.
func (nd *node) nextBatch(t int) *sampling.Batch {
	if nd.opt.Pipeline && t > 0 {
		return <-nd.prefetch // sampled during the previous iteration
	}
	stop := nd.phases.Timer(PhaseDrawMinibatch)
	batch := &sampling.Batch{}
	nd.edges.Sample(mathx.NewStream(nd.cfg.Seed, core.StreamMinibatch(t)), batch)
	stop()
	return batch
}

// startPrefetch samples iteration t's minibatch concurrently with the
// current iteration's compute (the master-side pipeline of Section III-D).
func (nd *node) startPrefetch(t int) {
	go func() {
		stop := nd.phases.Timer(PhaseDrawMinibatch)
		batch := &sampling.Batch{}
		nd.edges.Sample(mathx.NewStream(nd.cfg.Seed, core.StreamMinibatch(t)), batch)
		stop()
		nd.prefetch <- batch
	}()
}

func (nd *node) iterate(t int) error {
	eps := nd.cfg.StepSize(t)

	// Stage 1: minibatch deployment.
	stopDeploy := nd.phases.Timer(PhaseDeployMinibatch)
	var mine []byte
	var err error
	if nd.rank == 0 {
		batch := nd.nextBatch(t)
		parts := nd.buildDeployments(t, batch)
		if nd.opt.Pipeline && t+1 < nd.opt.Iterations {
			nd.startPrefetch(t + 1)
		}
		mine, err = nd.comm.Scatter(0, parts)
	} else {
		mine, err = nd.comm.Scatter(0, nil)
	}
	if err != nil {
		return err
	}
	dep, err := decodeDeployment(mine)
	if err != nil {
		return err
	}
	nd.view.load(dep)
	stopDeploy()

	// Stage 2: update_phi (reads old π only).
	stopPhi := nd.phases.Timer(PhaseUpdatePhi)
	newPhi, err := nd.updatePhi(t, eps, dep)
	if err != nil {
		return err
	}
	stopPhi()
	if err := nd.comm.Barrier(); err != nil {
		return err
	}

	// Stage 3: update_pi — write the new rows through the DKV store.
	stopPi := nd.phases.Timer(PhaseUpdatePi)
	if err := nd.writeRows(dep.nodes, newPhi); err != nil {
		return err
	}
	stopPi()
	if err := nd.comm.Barrier(); err != nil {
		return err
	}

	// Stage 4: update_beta_theta.
	stopTheta := nd.phases.Timer(PhaseUpdateBetaTheta)
	err = nd.updateBetaTheta(t, eps, dep)
	stopTheta()
	return err
}

// buildDeployments partitions the batch across ranks: vertices split evenly
// (each with its adjacency from the master's graph), pairs split on
// ThetaChunk boundaries so the gradient fold order matches the sequential
// engine.
func (nd *node) buildDeployments(t int, batch *sampling.Batch) [][]byte {
	parts := make([][]byte, nd.size)
	for r := 0; r < nd.size; r++ {
		nLo, nHi := splitEven(len(batch.Nodes), nd.size, r)
		pLo, pHi := splitChunkAligned(len(batch.Pairs), core.ThetaChunk, nd.size, r)
		d := &deployment{
			iter:    t,
			nodes:   batch.Nodes[nLo:nHi],
			adj:     make([][]int32, nHi-nLo),
			pairs:   batch.Pairs[pLo:pHi],
			link:    batch.Linked[pLo:pHi],
			scale:   batch.Scale,
			chunkLo: pLo / core.ThetaChunk,
		}
		for i, a := range d.nodes {
			d.adj[i] = nd.g.Neighbors(int(a))
		}
		parts[r] = encodeDeployment(d)
	}
	return parts
}

// updatePhi runs the dominant stage: for each owned minibatch vertex, sample
// its neighbor set, load the π rows from the DKV store, and compute the new
// φ row. Chunks of vertices are either processed serially (load, compute,
// load, compute...) or with the paper's double buffering, where chunk c+1's
// π rows stream in while chunk c computes.
func (nd *node) updatePhi(t int, eps float64, dep *deployment) ([]float64, error) {
	nodes := dep.nodes
	k := nd.k
	newPhi := make([]float64, len(nodes)*k)
	if len(nodes) == 0 {
		return newPhi, nil
	}
	chunkN := nd.opt.PhiChunkNodes
	nChunks := (len(nodes) + chunkN - 1) / chunkN

	type chunkBuf struct {
		lo, hi  int
		rngs    []*mathx.RNG
		samples []sampling.NeighborSample
		keys    []int32
		nodeOff []int // row index where node i's rows begin
		data    []byte
	}
	var bufs [2]chunkBuf
	// errVal is shared between the pipeline's load goroutine and the compute
	// caller; guard it with a mutex rather than relying on ordering.
	var errMu sync.Mutex
	var errVal error
	setErr := func(err error) {
		errMu.Lock()
		if errVal == nil {
			errVal = err
		}
		errMu.Unlock()
	}
	hasErr := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return errVal != nil
	}

	load := func(c, slot int) {
		if hasErr() {
			return
		}
		stop := nd.phases.Timer(PhaseLoadPi)
		defer stop()
		b := &bufs[slot]
		b.lo = c * chunkN
		b.hi = min(b.lo+chunkN, len(nodes))
		cnt := b.hi - b.lo
		b.rngs = b.rngs[:0]
		b.keys = b.keys[:0]
		b.nodeOff = b.nodeOff[:0]
		if cap(b.samples) < cnt {
			b.samples = make([]sampling.NeighborSample, cnt)
		}
		b.samples = b.samples[:cnt]
		for i := 0; i < cnt; i++ {
			a := nodes[b.lo+i]
			rng := mathx.NewStream(nd.cfg.Seed, core.StreamVertex(t, int(a)))
			nd.neigh.Sample(a, rng, &b.samples[i])
			b.rngs = append(b.rngs, rng)
			b.nodeOff = append(b.nodeOff, len(b.keys))
			b.keys = append(b.keys, a)
			b.keys = append(b.keys, b.samples[i].Nodes...)
		}
		need := len(b.keys) * rowBytes(k)
		if cap(b.data) < need {
			b.data = make([]byte, need)
		}
		b.data = b.data[:need]
		fut, err := nd.store.ReadBatchAsync(b.keys, b.data)
		if err != nil {
			setErr(err)
			return
		}
		if err := fut.Wait(); err != nil {
			setErr(err)
		}
	}

	compute := func(c, slot int) {
		if hasErr() {
			return
		}
		stop := nd.phases.Timer(PhaseComputePhi)
		defer stop()
		b := &bufs[slot]
		rb := rowBytes(k)
		par.For(b.hi-b.lo, nd.opt.Threads, func(wLo, wHi int) {
			sc := core.NewPhiScratch(k)
			piA := make([]float32, k)
			var rowStore []float32
			var rows [][]float32
			for i := wLo; i < wHi; i++ {
				ns := &b.samples[i]
				base := b.nodeOff[i]
				phiSumA := decodeRow(b.data[base*rb:(base+1)*rb], piA)
				if cap(rowStore) < len(ns.Nodes)*k {
					rowStore = make([]float32, len(ns.Nodes)*k)
				}
				rows = rows[:0]
				for j := range ns.Nodes {
					dst := rowStore[j*k : (j+1)*k]
					decodeRow(b.data[(base+1+j)*rb:(base+2+j)*rb], dst)
					rows = append(rows, dst)
				}
				idx := b.lo + i
				core.UpdatePhi(&nd.cfg, eps, piA, phiSumA, rows, ns.Linked, ns.Scale,
					nd.beta, b.rngs[i], newPhi[idx*k:(idx+1)*k], sc)
			}
		})
	}

	if nd.opt.Pipeline {
		par.Pipeline(nChunks, load, compute)
	} else {
		par.Serial(nChunks, load, compute)
	}
	errMu.Lock()
	defer errMu.Unlock()
	return newPhi, errVal
}

// writeRows commits the staged φ rows through the DKV store (update_pi).
func (nd *node) writeRows(nodes []int32, newPhi []float64) error {
	if len(nodes) == 0 {
		return nil
	}
	k := nd.k
	rb := rowBytes(k)
	values := make([]byte, len(nodes)*rb)
	par.For(len(nodes), nd.opt.Threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			encodeRow(values[i*rb:(i+1)*rb], newPhi[i*k:(i+1)*k])
		}
	})
	return nd.store.WriteBatch(nodes, values)
}

// updateBetaTheta computes this rank's per-chunk θ-gradient partials from
// freshly read π rows, gathers them at the master (which folds them in
// global chunk order, applies Eqn 3 and broadcasts the new θ).
func (nd *node) updateBetaTheta(t int, eps float64, dep *deployment) error {
	k := nd.k
	rb := rowBytes(k)
	nLocalChunks := (len(dep.pairs) + core.ThetaChunk - 1) / core.ThetaChunk
	partials := make([]float64, nLocalChunks*2*k)

	if len(dep.pairs) > 0 {
		keys := make([]int32, 0, 2*len(dep.pairs))
		for _, e := range dep.pairs {
			keys = append(keys, e.A, e.B)
		}
		data := make([]byte, len(keys)*rb)
		if err := nd.store.ReadBatch(keys, data); err != nil {
			return err
		}
		par.ForEach(nLocalChunks, nd.opt.Threads, func(c int) {
			lo := c * core.ThetaChunk
			hi := min(lo+core.ThetaChunk, len(dep.pairs))
			acc := partials[c*2*k : (c+1)*2*k]
			sc := core.NewThetaScratch(k)
			piA := make([]float32, k)
			piB := make([]float32, k)
			for i := lo; i < hi; i++ {
				decodeRow(data[(2*i)*rb:(2*i+1)*rb], piA)
				decodeRow(data[(2*i+1)*rb:(2*i+2)*rb], piB)
				core.AccumulateThetaGrad(piA, piB, nd.theta, nd.beta, nd.cfg.Delta, dep.link[i], acc, sc)
			}
		})
	}

	gathered, err := nd.comm.Gather(0, wire.AppendFloat64s(nil, partials))
	if err != nil {
		return err
	}
	var thetaBytes []byte
	if nd.rank == 0 {
		grad := make([]float64, 2*k)
		chunk := make([]float64, 2*k)
		for r := 0; r < nd.size; r++ {
			buf := gathered[r]
			nChunks := len(buf) / (8 * 2 * k)
			for c := 0; c < nChunks; c++ {
				wire.Float64s(buf, c*2*k*8, 2*k, chunk)
				for i, v := range chunk {
					grad[i] += v
				}
			}
		}
		core.ApplyThetaUpdate(&nd.cfg, eps, dep.scale, grad, nd.theta, mathx.NewStream(nd.cfg.Seed, core.StreamTheta(t)))
		thetaBytes = wire.AppendFloat64s(nil, nd.theta)
	}
	thetaBytes, err = nd.comm.Bcast(0, thetaBytes)
	if err != nil {
		return err
	}
	wire.Float64s(thetaBytes, 0, 2*k, nd.theta)
	for kk := 0; kk < k; kk++ {
		nd.beta[kk] = nd.theta[kk*2+1] / (nd.theta[kk*2] + nd.theta[kk*2+1])
	}
	return nil
}

// evalPerplexity folds the current state into the running posterior average
// over this rank's held-out shard and reduces the global averaged perplexity
// (Eqn 7) at the master; the value is broadcast so every rank returns it.
func (nd *node) evalPerplexity() (float64, error) {
	defer nd.phases.Timer(PhasePerplexity)()
	k := nd.k
	rb := rowBytes(k)
	nd.ppxT++
	tInv := 1 / float64(nd.ppxT)

	nLocal := nd.hHi - nd.hLo
	nChunks := (nLocal + core.PerplexityChunk - 1) / core.PerplexityChunk
	partials := make([]float64, nChunks)

	if nLocal > 0 {
		keys := make([]int32, 0, 2*nLocal)
		for i := nd.hLo; i < nd.hHi; i++ {
			e := nd.held.Pairs[i]
			keys = append(keys, e.A, e.B)
		}
		data := make([]byte, len(keys)*rb)
		if err := nd.store.ReadBatch(keys, data); err != nil {
			return 0, err
		}
		par.ForEach(nChunks, nd.opt.Threads, func(c int) {
			lo := c * core.PerplexityChunk
			hi := min(lo+core.PerplexityChunk, nLocal)
			piA := make([]float32, k)
			piB := make([]float32, k)
			var logSum float64
			for i := lo; i < hi; i++ {
				decodeRow(data[(2*i)*rb:(2*i+1)*rb], piA)
				decodeRow(data[(2*i+1)*rb:(2*i+2)*rb], piB)
				prob := core.EdgeProbability(piA, piB, nd.beta, nd.cfg.Delta, nd.held.Linked[nd.hLo+i])
				nd.avg[i] += (prob - nd.avg[i]) * tInv
				v := nd.avg[i]
				if v < 1e-300 {
					v = 1e-300
				}
				logSum += math.Log(v)
			}
			partials[c] = logSum
		})
	}

	gathered, err := nd.comm.Gather(0, wire.AppendFloat64s(nil, partials))
	if err != nil {
		return 0, err
	}
	var out []byte
	if nd.rank == 0 {
		var logSum float64
		for r := 0; r < nd.size; r++ {
			buf := gathered[r]
			cnt := len(buf) / 8
			vals := make([]float64, cnt)
			wire.Float64s(buf, 0, cnt, vals)
			for _, v := range vals {
				logSum += v
			}
		}
		out = wire.AppendUint64(nil, math.Float64bits(math.Exp(-logSum/float64(nd.held.Len()))))
	}
	out, err = nd.comm.Bcast(0, out)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(wire.Uint64At(out, 0)), nil
}

// collectState reads the whole π matrix back out of the DKV store into a
// core.State; master-only, used for final reporting and the equivalence
// tests.
func (nd *node) collectState() (*core.State, error) {
	st := &core.State{
		N:      nd.n,
		K:      nd.k,
		Pi:     make([]float32, nd.n*nd.k),
		PhiSum: make([]float64, nd.n),
		Theta:  append([]float64(nil), nd.theta...),
		Beta:   append([]float64(nil), nd.beta...),
	}
	rb := rowBytes(nd.k)
	const batchKeys = 4096
	keys := make([]int32, 0, batchKeys)
	data := make([]byte, batchKeys*rb)
	for base := 0; base < nd.n; base += batchKeys {
		hi := min(base+batchKeys, nd.n)
		keys = keys[:0]
		for a := base; a < hi; a++ {
			keys = append(keys, int32(a))
		}
		buf := data[:len(keys)*rb]
		if err := nd.store.ReadBatch(keys, buf); err != nil {
			return nil, err
		}
		for i, a := range keys {
			st.PhiSum[a] = decodeRow(buf[i*rb:(i+1)*rb], st.PiRow(int(a)))
		}
	}
	return st, nil
}

func assembleResult(nodes []*node) *Result {
	master := nodes[0]
	res := &Result{
		State:      master.finalState,
		Perplexity: master.perp,
		Phases:     trace.NewPhases(),
		Iterations: master.opt.Iterations,
		Elapsed:    master.phases.Total(PhaseTotal),
	}
	var totalKeys int64
	for _, nd := range nodes {
		snap := nd.phases.Snapshot()
		res.RankPhases = append(res.RankPhases, snap)
		res.Phases.Merge(snap)
		s := nd.store.Stats()
		res.DKV.LocalKeys += s.LocalKeys.Load()
		res.DKV.RemoteKeys += s.RemoteKeys.Load()
		res.DKV.Requests += s.Requests.Load()
		res.DKV.BytesRead += s.BytesRead.Load()
		res.DKV.BytesWritten += s.BytesWritten.Load()
	}
	totalKeys = res.DKV.LocalKeys + res.DKV.RemoteKeys
	if totalKeys > 0 {
		res.RemoteFrac = float64(res.DKV.RemoteKeys) / float64(totalKeys)
	}
	return res
}
