package dist

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/serve"
	"repro/internal/store"
)

// TestPublishDoesNotPerturbTraining: a run with snapshot publication enabled
// must train the exact same model, bit for bit, as one without — publication
// only reads sealed state at the barrier, it draws no randomness and writes
// nothing. Versions must arrive strictly monotone and the final published
// snapshot must equal the final assembled state.
func TestPublishDoesNotPerturbTraining(t *testing.T) {
	train, held := fixture(t, 220, 4, 1100, 57)
	cfg := core.DefaultConfig(4, 321)
	const iters = 8

	plain, err := Run(cfg, train, held, Options{Ranks: 3, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}

	pub := store.NewPublisher()
	var mu sync.Mutex
	var versions []int
	pub.Subscribe(func(s *store.Snapshot) {
		mu.Lock()
		versions = append(versions, s.Version)
		mu.Unlock()
	})
	served, err := Run(cfg, train, held, Options{
		Ranks: 3, Iterations: iters, Publisher: pub,
	})
	if err != nil {
		t.Fatal(err)
	}

	if d := mathx.MaxAbsDiff32(plain.State.Pi, served.State.Pi); d != 0 {
		t.Fatalf("publication changed π by %v; must be bit-identical", d)
	}
	if d := mathx.MaxAbsDiff(plain.State.Theta, served.State.Theta); d != 0 {
		t.Fatalf("publication changed θ by %v; must be bit-identical", d)
	}

	if len(versions) != iters {
		t.Fatalf("published %d versions (%v), want one per iteration = %d", len(versions), versions, iters)
	}
	for i, v := range versions {
		if v != i+1 {
			t.Fatalf("version sequence %v not the monotone 1..%d", versions, iters)
		}
	}

	final := pub.Current()
	if final == nil || final.Version != iters {
		t.Fatalf("final published snapshot %+v, want version %d", final, iters)
	}
	if d := mathx.MaxAbsDiff32(final.Pi, served.State.Pi); d != 0 {
		t.Fatalf("final snapshot π differs from assembled state by %v", d)
	}
	if d := mathx.MaxAbsDiff(final.Beta, served.State.Beta); d != 0 {
		t.Fatalf("final snapshot β differs from assembled state by %v", d)
	}
}

// TestPublishEveryThins: PublishEvery = 3 publishes only every third
// iteration's version.
func TestPublishEveryThins(t *testing.T) {
	train, held := fixture(t, 200, 4, 1000, 58)
	cfg := core.DefaultConfig(4, 322)
	pub := store.NewPublisher()
	var versions []int
	pub.Subscribe(func(s *store.Snapshot) { versions = append(versions, s.Version) })
	if _, err := Run(cfg, train, held, Options{
		Ranks: 2, Iterations: 7, Publisher: pub, PublishEvery: 3,
	}); err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 || versions[0] != 3 || versions[1] != 6 {
		t.Fatalf("PublishEvery=3 over 7 iters published %v, want [3 6]", versions)
	}
}

// TestDistributedPublishMatchesLocal: the distributed gather-published
// snapshots are bit-identical to the local sampler's publications at every
// iteration — the serving tier observes one model, whichever engine trained
// it.
func TestDistributedPublishMatchesLocal(t *testing.T) {
	train, held := fixture(t, 240, 5, 1200, 59)
	cfg := core.DefaultConfig(5, 323)
	const iters = 6

	localPub := store.NewPublisher()
	var localSnaps []*store.Snapshot
	localPub.Subscribe(func(s *store.Snapshot) { localSnaps = append(localSnaps, s) })
	seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{Threads: 2, Publisher: localPub})
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(iters)

	distPub := store.NewPublisher()
	var mu sync.Mutex
	var distSnaps []*store.Snapshot
	distPub.Subscribe(func(s *store.Snapshot) {
		mu.Lock()
		distSnaps = append(distSnaps, s)
		mu.Unlock()
	})
	if _, err := Run(cfg, train, held, Options{
		Ranks: 3, Threads: 2, Iterations: iters, Publisher: distPub,
	}); err != nil {
		t.Fatal(err)
	}

	if len(localSnaps) != iters || len(distSnaps) != iters {
		t.Fatalf("local published %d, dist %d; want %d each", len(localSnaps), len(distSnaps), iters)
	}
	for i := range localSnaps {
		l, d := localSnaps[i], distSnaps[i]
		if l.Version != d.Version || l.N != d.N || l.K != d.K {
			t.Fatalf("snapshot %d header mismatch: local %d/%dx%d vs dist %d/%dx%d",
				i, l.Version, l.N, l.K, d.Version, d.N, d.K)
		}
		if diff := mathx.MaxAbsDiff32(l.Pi, d.Pi); diff != 0 {
			t.Fatalf("snapshot v%d: π differs by %v between engines", l.Version, diff)
		}
		if diff := mathx.MaxAbsDiff(l.Beta, d.Beta); diff != 0 {
			t.Fatalf("snapshot v%d: β differs by %v between engines", l.Version, diff)
		}
	}
}

// TestServeDuringTraining runs queries against a live training run: a serve
// engine attached to the run's publisher answers TopK during the run with
// monotone versions, and after the run serves exactly the final model.
func TestServeDuringTraining(t *testing.T) {
	train, held := fixture(t, 220, 4, 1100, 60)
	cfg := core.DefaultConfig(4, 324)
	const iters = 10

	pub := store.NewPublisher()
	eng := serve.NewEngine(0)
	eng.Attach(pub)

	stop := make(chan struct{})
	queried := make(chan error, 1)
	go func() {
		defer close(queried)
		last := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !eng.Ready() {
				continue
			}
			top, snap, err := eng.TopK(7, 3)
			if err != nil {
				queried <- err
				return
			}
			if snap.Version < last || snap.Version > iters {
				queried <- nil
				t.Errorf("served version %d after %d (max %d)", snap.Version, last, iters)
				return
			}
			last = snap.Version
			if len(top) != 3 {
				queried <- nil
				t.Errorf("TopK served %d entries, want 3", len(top))
				return
			}
		}
	}()

	res, err := Run(cfg, train, held, Options{Ranks: 2, Iterations: iters, Publisher: pub})
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-queried; err != nil {
		t.Fatal(err)
	}

	snap := eng.Snapshot()
	if snap.Version != iters {
		t.Fatalf("engine left at version %d, want %d", snap.Version, iters)
	}
	if d := mathx.MaxAbsDiff32(snap.Pi, res.State.Pi); d != 0 {
		t.Fatalf("served final π differs from trained state by %v", d)
	}
}
