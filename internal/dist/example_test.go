package dist_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

// Example runs the distributed engine on a 3-rank simulated cluster and
// confirms the result matches the single-node sampler exactly — the
// engine's defining property.
func Example() {
	g, _, err := gen.Planted(gen.DefaultPlanted(150, 4, 700, 3))
	if err != nil {
		panic(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(4))
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig(4, 5)
	const iters = 8

	seq, err := core.NewSampler(cfg, train, held, core.SamplerOptions{})
	if err != nil {
		panic(err)
	}
	seq.Run(iters)

	res, err := dist.Run(cfg, train, held, dist.Options{Ranks: 3, Iterations: iters})
	if err != nil {
		panic(err)
	}

	fmt.Println("ranks:", 3)
	fmt.Println("bit-identical to sequential:", mathx.MaxAbsDiff32(seq.State.Pi, res.State.Pi) == 0)
	fmt.Printf("remote DKV fraction: %.2f\n", res.RemoteFrac)
	// Output:
	// ranks: 3
	// bit-identical to sequential: true
	// remote DKV fraction: 0.67
}
