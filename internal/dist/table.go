package dist

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// rankTableOrder is the canonical Table III row order; stages outside it
// (if a future engine adds any) are appended alphabetically.
var rankTableOrder = []string{
	PhaseDrawMinibatch,
	PhaseDeployMinibatch,
	PhaseUpdatePhi,
	PhaseLoadPi,
	PhaseComputePhi,
	PhaseUpdatePi,
	PhaseUpdateBetaTheta,
	PhasePerplexity,
	PhaseTotal,
}

// RankTable renders Result.RankPhases as a per-rank × per-stage text table
// of mean milliseconds per iteration (cmd/ocd-cluster -rank-table). The
// master-only stages (minibatch draw, perplexity reduce) show "-" on worker
// ranks; iterations <= 0 falls back to totals.
func RankTable(rankPhases []map[string]time.Duration, iterations int) string {
	if len(rankPhases) == 0 {
		return ""
	}
	div := float64(iterations)
	unit := "ms/iter"
	if iterations <= 0 {
		div = 1
		unit = "ms total"
	}

	// Row set: canonical order first, then any unknown stages sorted.
	known := make(map[string]bool, len(rankTableOrder))
	for _, name := range rankTableOrder {
		known[name] = true
	}
	present := map[string]bool{}
	var extra []string
	for _, snap := range rankPhases {
		for name := range snap {
			if !present[name] && !known[name] {
				extra = append(extra, name)
			}
			present[name] = true
		}
	}
	sort.Strings(extra)
	var rows []string
	for _, name := range rankTableOrder {
		if present[name] {
			rows = append(rows, name)
		}
	}
	rows = append(rows, extra...)

	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "stage ("+unit+")")
	for r := range rankPhases {
		fmt.Fprintf(&b, " %10s", fmt.Sprintf("rank%d", r))
	}
	b.WriteByte('\n')
	for _, name := range rows {
		fmt.Fprintf(&b, "%-22s", name)
		for _, snap := range rankPhases {
			d, ok := snap[name]
			if !ok {
				fmt.Fprintf(&b, " %10s", "-")
				continue
			}
			fmt.Fprintf(&b, " %10.3f", float64(d)/float64(time.Millisecond)/div)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
