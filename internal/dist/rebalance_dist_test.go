package dist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mathx"
	"repro/internal/obs"
)

// rebalCfg is an aggressive mitigation config for tests: 2-iteration windows,
// a single slow window triggers a shrink, and recovery is effectively
// disabled (HealWindows huge) so the weight trajectory is monotone and the
// assertions below don't race the restore probing.
func aggressiveRebalance() engine.RebalanceConfig {
	cfg := engine.DefaultRebalanceConfig()
	cfg.Window = 2
	cfg.SlowWindows = 1
	cfg.HealWindows = 1 << 20
	cfg.Step = 0.5
	return cfg
}

// TestRebalanceIdleIsInvisible pins the cheap half of the estimator-
// neutrality property: with mitigation enabled but no straggler, the weights
// never move and the run is bit-identical to one without the reshard stage —
// the extra Gather/Bcast per window carries data, not randomness.
func TestRebalanceIdleIsInvisible(t *testing.T) {
	train, held := fixture(t, 200, 4, 900, 61)
	cfg := core.DefaultConfig(4, 303)
	const iters = 8

	plain, err := Run(cfg, train, held, Options{Ranks: 3, Iterations: iters})
	if err != nil {
		t.Fatal(err)
	}
	// Raise the flagging floor far above natural sync noise: the peers
	// block on rank 0's minibatch scatter every iteration, and over a short
	// window that structural wait can clear the 1ms production floor. This
	// test is about the no-flag path, so nothing may flag.
	quiet := aggressiveRebalance()
	quiet.FloorMS = 60_000
	mitigated, err := Run(cfg, train, held, Options{
		Ranks: 3, Iterations: iters,
		Rebalance: true, RebalanceCfg: quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(plain.State.Pi, mitigated.State.Pi); d != 0 {
		t.Fatalf("idle rebalancer changed π by %v; must be invisible", d)
	}
	if d := mathx.MaxAbsDiff(plain.State.Theta, mitigated.State.Theta); d != 0 {
		t.Fatalf("idle rebalancer changed θ by %v", d)
	}
	if got := mitigated.Metrics.Counters[obs.CtrReshardWindows]; got != iters/2 {
		t.Fatalf("reshard windows = %d, want %d", got, iters/2)
	}
	if got := mitigated.Metrics.Counters[obs.CtrReshardChanges]; got != 0 {
		t.Fatalf("idle run recorded %d weight changes; want 0", got)
	}
}

// TestRebalanceTrajectoryBitExact is the acceptance test of the tentpole:
// under a compute-proportional straggler (rank 1's update_phi sleeps per
// assigned node — the fault re-sharding can actually cure), the rebalancer
// must actually move work away from rank 1, and the trained trajectory must
// STILL be bit-identical to the unmitigated run: φ draws are keyed by
// (iteration, vertex) and the θ fold is chunk-ordered, so re-sharding changes
// who computes, never what is computed.
func TestRebalanceTrajectoryBitExact(t *testing.T) {
	train, held := fixture(t, 200, 4, 900, 61)
	cfg := core.DefaultConfig(4, 303)
	const iters, ranks = 12, 2

	base := Options{
		Ranks: ranks, Iterations: iters, MinibatchPairs: 32,
	}
	plain, err := Run(cfg, train, held, base)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sink := obs.NewSink(&buf)
	opt := base
	opt.Rebalance = true
	opt.RebalanceCfg = aggressiveRebalance()
	opt.Events = sink
	opt.ComputeDelay = func(rank, nodes int) time.Duration {
		if rank != 1 {
			return 0
		}
		return time.Duration(nodes) * 500 * time.Microsecond
	}
	mitigated, err := Run(cfg, train, held, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	if d := mathx.MaxAbsDiff32(plain.State.Pi, mitigated.State.Pi); d != 0 {
		t.Fatalf("re-sharding changed π by %v; must be bit-exact", d)
	}
	if d := mathx.MaxAbsDiff(plain.State.Theta, mitigated.State.Theta); d != 0 {
		t.Fatalf("re-sharding changed θ by %v; must be bit-exact", d)
	}
	if d := mathx.MaxAbsDiff(plain.State.PhiSum, mitigated.State.PhiSum); d != 0 {
		t.Fatalf("re-sharding changed Σφ by %v; must be bit-exact", d)
	}

	// The mitigation must have actually engaged: with ~16ms of injected
	// compute per window against a ~1ms flagging floor, rank 1 is flagged
	// and drained deterministically.
	if got := mitigated.Metrics.Counters[obs.CtrReshardChanges]; got < 1 {
		t.Fatalf("reshard changes = %d; straggler never triggered a rebalance", got)
	}
	if got := mitigated.Metrics.Counters[obs.CtrReshardFlags]; got < 1 {
		t.Fatalf("reshard flags = %d; rank 1 never flagged", got)
	}

	events, err := obs.ReadEvents(&buf)
	if err != nil {
		t.Fatalf("stream is not valid JSONL: %v", err)
	}
	sum, err := obs.Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rebalances < 1 {
		t.Fatalf("summary counted %d rebalance events; want >= 1", sum.Rebalances)
	}
	if len(sum.FinalWeights) != ranks || sum.FinalWeights[1] >= 1 {
		t.Fatalf("final weights %v; want rank 1 drained below 1", sum.FinalWeights)
	}
}

// TestCheckpointRestartBitExact pins the recovery invariant: a run that
// checkpoints periodically is bit-identical to one that doesn't, and a run
// restarted from the checkpoint finishes bit-identical to one that never
// stopped — every random draw is keyed by the absolute iteration, so the
// chain has no hidden state beyond (π, Σφ, θ, t).
func TestCheckpointRestartBitExact(t *testing.T) {
	train, held := fixture(t, 200, 4, 900, 62)
	cfg := core.DefaultConfig(4, 404)
	const iters, every = 10, 4

	base := Options{Ranks: 3, Iterations: iters}
	straight, err := Run(cfg, train, held, base)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	opt := base
	opt.CheckpointPath = path
	opt.CheckpointEvery = every
	ckpted, err := Run(cfg, train, held, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(straight.State.Pi, ckpted.State.Pi); d != 0 {
		t.Fatalf("checkpointing changed π by %v; must be invisible", d)
	}

	// The file holds the last boundary the run crossed: iterations 4 and 8
	// both saved, 8 overwrote 4.
	state, iter, err := core.LoadFileFor(path, cfg, train.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if iter != 8 {
		t.Fatalf("checkpoint iteration = %d, want 8", iter)
	}

	opt = base
	opt.RestartState = state
	opt.RestartIter = iter
	resumed, err := Run(cfg, train, held, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(straight.State.Pi, resumed.State.Pi); d != 0 {
		t.Fatalf("resumed π differs by %v from the uninterrupted run", d)
	}
	if d := mathx.MaxAbsDiff(straight.State.Theta, resumed.State.Theta); d != 0 {
		t.Fatalf("resumed θ differs by %v from the uninterrupted run", d)
	}
	if d := mathx.MaxAbsDiff(straight.State.PhiSum, resumed.State.PhiSum); d != 0 {
		t.Fatalf("resumed Σφ differs by %v from the uninterrupted run", d)
	}
}

// TestCheckpointSurvivesRankLoss is the rank-loss drill end to end: a rank
// dies mid-run, the run aborts, and restarting from the last coordinated
// checkpoint completes the chain bit-identical to one that never failed.
func TestCheckpointSurvivesRankLoss(t *testing.T) {
	train, held := fixture(t, 200, 4, 900, 63)
	cfg := core.DefaultConfig(4, 505)
	const iters, every, failAt = 10, 4, 6

	base := Options{Ranks: 2, Iterations: iters}
	straight, err := Run(cfg, train, held, base)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	opt := base
	opt.CheckpointPath = path
	opt.CheckpointEvery = every
	opt.FaultHook = func(rank, iter int) error {
		if rank == 1 && iter == failAt {
			return errors.New("injected rank loss")
		}
		return nil
	}
	if _, err := Run(cfg, train, held, opt); err == nil {
		t.Fatal("run with a dead rank reported success")
	}

	state, iter, err := core.LoadFileFor(path, cfg, train.NumVertices())
	if err != nil {
		t.Fatalf("checkpoint unreadable after abort: %v", err)
	}
	if iter != every {
		t.Fatalf("checkpoint iteration = %d, want %d (last boundary before the fault)", iter, every)
	}

	opt = base
	opt.RestartState = state
	opt.RestartIter = iter
	resumed, err := Run(cfg, train, held, opt)
	if err != nil {
		t.Fatal(err)
	}
	if d := mathx.MaxAbsDiff32(straight.State.Pi, resumed.State.Pi); d != 0 {
		t.Fatalf("recovered π differs by %v from the never-failed run", d)
	}
	if d := mathx.MaxAbsDiff(straight.State.Theta, resumed.State.Theta); d != 0 {
		t.Fatalf("recovered θ differs by %v from the never-failed run", d)
	}
}

// TestRestartOptionValidation pins the fail-fast paths: shape mismatches and
// nonsense restart iterations are rejected before any rank spins up.
func TestRestartOptionValidation(t *testing.T) {
	train, held := fixture(t, 100, 4, 500, 64)
	cfg := core.DefaultConfig(4, 1)
	good, err := core.NewState(cfg, train.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	wrongN, err := core.NewState(cfg, train.NumVertices()+1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  Options
	}{
		{"wrong shape", Options{Ranks: 2, Iterations: 4, RestartState: wrongN, RestartIter: 1}},
		{"iter past end", Options{Ranks: 2, Iterations: 4, RestartState: good, RestartIter: 4}},
		{"negative iter", Options{Ranks: 2, Iterations: 4, RestartState: good, RestartIter: -1}},
		{"iter without state", Options{Ranks: 2, Iterations: 4, RestartIter: 2}},
	}
	for _, tc := range cases {
		if _, err := Run(cfg, train, held, tc.opt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Run(cfg, train, held, Options{Ranks: 2, Iterations: 4, RestartState: wrongN, RestartIter: 1}); !errors.Is(err, core.ErrCheckpointShape) {
		t.Fatalf("shape mismatch error = %v, want ErrCheckpointShape", err)
	}
}

// TestCheckpointFileIsAtomic sanity-checks the write path the recovery drill
// depends on: the checkpoint appears via rename, so a reader never sees a
// partial file even if it polls mid-save.
func TestCheckpointFileIsAtomic(t *testing.T) {
	train, held := fixture(t, 120, 3, 500, 65)
	cfg := core.DefaultConfig(3, 9)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	if _, err := Run(cfg, train, held, Options{
		Ranks: 2, Iterations: 4, CheckpointPath: path, CheckpointEvery: 2,
	}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.ckpt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("checkpoint dir holds %v; want exactly [run.ckpt] (no temp litter)", names)
	}
	if _, _, err := core.LoadFileFor(path, cfg, train.NumVertices()); err != nil {
		t.Fatal(err)
	}
}
