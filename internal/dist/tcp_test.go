package dist

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/transport"
)

// TestTCPTransportMatchesInproc runs the full engine over a real TCP
// loopback mesh and demands bit-exact agreement with the in-process fabric —
// the protocol must not depend on transport-specific behavior.
func TestTCPTransportMatchesInproc(t *testing.T) {
	train, held := fixture(t, 180, 4, 900, 91)
	cfg := core.DefaultConfig(4, 17)
	const ranks, iters = 3, 6

	inproc, err := Run(cfg, train, held, Options{Ranks: ranks, Iterations: iters, EvalEvery: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Reserve loopback ports.
	addrs := freeLoopbackAddrs(t, ranks)

	conns := make([]transport.Conn, ranks)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := transport.DialMesh(r, addrs)
			conns[r], errs[r] = c, err
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("mesh rank %d: %v", r, err)
		}
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	tcp, err := RunOnTransport(cfg, train, held, Options{Iterations: iters, EvalEvery: 3}, conns)
	if err != nil {
		t.Fatal(err)
	}

	if d := mathx.MaxAbsDiff32(inproc.State.Pi, tcp.State.Pi); d != 0 {
		t.Fatalf("TCP π differs from inproc by %v", d)
	}
	if d := mathx.MaxAbsDiff(inproc.State.Theta, tcp.State.Theta); d != 0 {
		t.Fatalf("TCP θ differs from inproc by %v", d)
	}
	for i := range inproc.Perplexity {
		if inproc.Perplexity[i].Value != tcp.Perplexity[i].Value {
			t.Fatalf("perplexity %d differs: %v vs %v", i,
				inproc.Perplexity[i].Value, tcp.Perplexity[i].Value)
		}
	}
}
