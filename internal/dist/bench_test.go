package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

// benchOptions is the shared configuration of BenchmarkDistIteration: an
// in-process 2-rank fabric, realistic minibatch sizes, no perplexity
// evaluation (the iteration loop is what is being measured). The pipelined
// and serial variants differ only in the Section III-D double buffering, so
// their ratio is the pipelining speedup — scripts/bench_dist.sh snapshots
// both into BENCH_dist.json.
func benchOptions(iters int, pipelined bool) Options {
	return Options{
		Ranks:          2,
		Threads:        2,
		Iterations:     iters,
		Pipeline:       pipelined,
		PhiChunkNodes:  16,
		MinibatchPairs: 512,
		NeighborCount:  32,
	}
}

func benchFixture(b *testing.B) (*graph.Graph, *graph.HeldOut) {
	b.Helper()
	g, _, err := gen.Planted(gen.DefaultPlanted(2000, 8, 16000, 61))
	if err != nil {
		b.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(62))
	if err != nil {
		b.Fatal(err)
	}
	return train, held
}

func benchmarkDistIteration(b *testing.B, pipelined bool) {
	train, held := benchFixture(b)
	cfg := core.DefaultConfig(8, 7)
	const itersPerRun = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, train, held, benchOptions(itersPerRun, pipelined))
		if err != nil {
			b.Fatal(err)
		}
		if res.State == nil {
			b.Fatal("no state")
		}
	}
}

// BenchmarkDistIteration/serial and /pipelined measure the full 2-rank
// iteration loop (deploy → update_phi → update_pi → update_beta_theta) with
// double buffering off and on.
func BenchmarkDistIteration(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkDistIteration(b, false) })
	b.Run("pipelined", func(b *testing.B) { benchmarkDistIteration(b, true) })
}
