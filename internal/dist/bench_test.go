package dist

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
	"repro/internal/transport"
)

// benchOptions is the shared configuration of BenchmarkDistIteration: an
// in-process 2-rank fabric, realistic minibatch sizes, no perplexity
// evaluation (the iteration loop is what is being measured). The pipelined
// and serial variants differ only in the Section III-D overlap schedule, so
// their ratio is the pipelining speedup — scripts/bench_dist.sh snapshots
// both into BENCH_dist.json. PhiChunkNodes is left at 0: the automatic
// policy (core.PhiStage.plan) is what production runs use.
func benchOptions(iters int, pipelined bool) Options {
	return Options{
		Ranks:          2,
		Threads:        2,
		Iterations:     iters,
		Pipeline:       pipelined,
		MinibatchPairs: 512,
		NeighborCount:  32,
	}
}

func benchFixture(b *testing.B) (*graph.Graph, *graph.HeldOut) {
	b.Helper()
	g, _, err := gen.Planted(gen.DefaultPlanted(2000, 8, 16000, 61))
	if err != nil {
		b.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(62))
	if err != nil {
		b.Fatal(err)
	}
	return train, held
}

func benchmarkDistIteration(b *testing.B, opts Options) {
	train, held := benchFixture(b)
	cfg := core.DefaultConfig(8, 7)
	var hits, lookups int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, train, held, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.State == nil {
			b.Fatal("no state")
		}
		hits += res.DKV.CacheHits
		lookups += res.DKV.CacheHits + res.DKV.CacheMisses
	}
	b.StopTimer()
	if lookups > 0 {
		b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
	}
}

// BenchmarkDistIteration measures the full 2-rank iteration loop (deploy →
// update_phi → update_pi → update_beta_theta): serial vs pipelined double
// buffering, and the hot-row cache per-phase (cached) vs surviving barriers
// via write-set invalidation (cached-xiter). The cached variants also report
// the hit rate — scripts/bench_dist.sh snapshots all four into
// BENCH_dist.json.
func BenchmarkDistIteration(b *testing.B) {
	const itersPerRun = 4
	b.Run("serial", func(b *testing.B) { benchmarkDistIteration(b, benchOptions(itersPerRun, false)) })
	b.Run("pipelined", func(b *testing.B) { benchmarkDistIteration(b, benchOptions(itersPerRun, true)) })
	b.Run("cached", func(b *testing.B) {
		o := benchOptions(itersPerRun, true)
		o.HotRowCache = 1024
		benchmarkDistIteration(b, o)
	})
	b.Run("cached-xiter", func(b *testing.B) {
		o := benchOptions(itersPerRun, true)
		o.HotRowCache = 1024
		o.HotCacheCrossIter = true
		benchmarkDistIteration(b, o)
	})
}

// simnetConn is the benchmark's wire model: sends carrying DKV traffic (tags
// at or above cluster.TagUserBase) pay a per-message latency plus a
// bytes/bandwidth transfer time before reaching the in-proc fabric, while
// collective tags pass untouched — the same shape internal/simnet models
// analytically, here injected into the real engine so the π-load/compute
// overlap is measured, not estimated. Sleeping on the send side delays both
// the request (reader → owner) and the response (owner's server goroutine →
// reader), so a round trip costs two latencies plus the payload transfers,
// all of it overlappable by the pipelined schedule.
type simnetConn struct {
	transport.Conn
	latency     time.Duration
	bytesPerSec float64
}

func (c *simnetConn) Send(to int, tag uint32, payload []byte) error {
	if tag >= cluster.TagUserBase {
		time.Sleep(c.latency + time.Duration(float64(len(payload))/c.bytesPerSec*float64(time.Second)))
	}
	return c.Conn.Send(to, tag, payload)
}

// sweepConns builds the rank interconnect for one BenchmarkDistSweep cell.
func sweepConns(b *testing.B, kind string, ranks int) ([]transport.Conn, func()) {
	b.Helper()
	switch kind {
	case "inproc", "simnet":
		fabric, err := transport.NewFabric(ranks)
		if err != nil {
			b.Fatal(err)
		}
		conns := fabric.Endpoints()
		if kind == "simnet" {
			// Ethernet-class parameters: slow enough that π transfer time
			// rivals the compute, which is the regime Section III-D's
			// overlap targets (on FDR InfiniBand numbers the loads would
			// vanish at this problem size and every schedule would tie).
			for r := range conns {
				conns[r] = &simnetConn{Conn: conns[r], latency: 50 * time.Microsecond, bytesPerSec: 50e6}
			}
		}
		return conns, func() { fabric.Close() }
	case "tcp":
		// Loopback mesh with real wire framing (cmd/ocd-cluster's -transport
		// tcp path): reserve an ephemeral address per rank, then dial the
		// full mesh concurrently.
		addrs := make([]string, ranks)
		for i := range addrs {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			addrs[i] = ln.Addr().String()
			ln.Close()
		}
		conns := make([]transport.Conn, ranks)
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for r := 0; r < ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				conns[r], errs[r] = transport.DialMesh(r, addrs)
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		return conns, func() {
			for _, c := range conns {
				c.Close()
			}
		}
	default:
		b.Fatalf("unknown sweep transport %q", kind)
		return nil, nil
	}
}

func benchmarkSweepCell(b *testing.B, kind string, threads int, pipelined bool) {
	train, held := benchFixture(b)
	// K=64 puts the cells in the paper's regime: π rows are 256 B, so both
	// the per-chunk transfer time and the per-chunk compute are large against
	// a round-trip latency — the overlap the pipelined schedule exists to
	// exploit. At the legacy benchmark's K=8 every load is latency-bound and
	// chunking can only lose.
	cfg := core.DefaultConfig(64, 7)
	opts := benchOptions(4, pipelined)
	opts.Threads = threads
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		conns, cleanup := sweepConns(b, kind, opts.Ranks)
		b.StartTimer()
		res, err := RunOnTransport(cfg, train, held, opts, conns)
		b.StopTimer()
		cleanup()
		if err != nil {
			b.Fatal(err)
		}
		if res.State == nil {
			b.Fatal("no state")
		}
		b.StartTimer()
	}
}

// BenchmarkDistSweep is the rank×thread×transport scaling grid behind the
// sweep records in BENCH_dist.json: 2 ranks, threads ∈ {1, 2, 4}, serial vs
// pipelined, over the in-proc fabric, the simnet wire model, and a real TCP
// loopback mesh. Interconnect setup runs outside the timer, so ns/op is the
// training run alone. scripts/bench_dist.sh parses the cells and fails if
// pipelining is not a win (speedup > 1.0) on the remote transports — the
// regression this grid exists to catch; on inproc the schedules are expected
// to tie, since the φ stage demotes nothing there but loads are memcpys.
func BenchmarkDistSweep(b *testing.B) {
	for _, kind := range []string{"inproc", "simnet", "tcp"} {
		b.Run(kind, func(b *testing.B) {
			for _, threads := range []int{1, 2, 4} {
				b.Run(fmt.Sprintf("r2t%d", threads), func(b *testing.B) {
					b.Run("serial", func(b *testing.B) { benchmarkSweepCell(b, kind, threads, false) })
					b.Run("pipelined", func(b *testing.B) { benchmarkSweepCell(b, kind, threads, true) })
				})
			}
		})
	}
}
