package dist

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mathx"
)

// benchOptions is the shared configuration of BenchmarkDistIteration: an
// in-process 2-rank fabric, realistic minibatch sizes, no perplexity
// evaluation (the iteration loop is what is being measured). The pipelined
// and serial variants differ only in the Section III-D double buffering, so
// their ratio is the pipelining speedup — scripts/bench_dist.sh snapshots
// both into BENCH_dist.json.
func benchOptions(iters int, pipelined bool) Options {
	return Options{
		Ranks:          2,
		Threads:        2,
		Iterations:     iters,
		Pipeline:       pipelined,
		PhiChunkNodes:  16,
		MinibatchPairs: 512,
		NeighborCount:  32,
	}
}

func benchFixture(b *testing.B) (*graph.Graph, *graph.HeldOut) {
	b.Helper()
	g, _, err := gen.Planted(gen.DefaultPlanted(2000, 8, 16000, 61))
	if err != nil {
		b.Fatal(err)
	}
	train, held, err := graph.Split(g, g.NumEdges()/10, mathx.NewRNG(62))
	if err != nil {
		b.Fatal(err)
	}
	return train, held
}

func benchmarkDistIteration(b *testing.B, opts Options) {
	train, held := benchFixture(b)
	cfg := core.DefaultConfig(8, 7)
	var hits, lookups int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, train, held, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.State == nil {
			b.Fatal("no state")
		}
		hits += res.DKV.CacheHits
		lookups += res.DKV.CacheHits + res.DKV.CacheMisses
	}
	b.StopTimer()
	if lookups > 0 {
		b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
	}
}

// BenchmarkDistIteration measures the full 2-rank iteration loop (deploy →
// update_phi → update_pi → update_beta_theta): serial vs pipelined double
// buffering, and the hot-row cache per-phase (cached) vs surviving barriers
// via write-set invalidation (cached-xiter). The cached variants also report
// the hit rate — scripts/bench_dist.sh snapshots all four into
// BENCH_dist.json.
func BenchmarkDistIteration(b *testing.B) {
	const itersPerRun = 4
	b.Run("serial", func(b *testing.B) { benchmarkDistIteration(b, benchOptions(itersPerRun, false)) })
	b.Run("pipelined", func(b *testing.B) { benchmarkDistIteration(b, benchOptions(itersPerRun, true)) })
	b.Run("cached", func(b *testing.B) {
		o := benchOptions(itersPerRun, true)
		o.HotRowCache = 1024
		benchmarkDistIteration(b, o)
	})
	b.Run("cached-xiter", func(b *testing.B) {
		o := benchOptions(itersPerRun, true)
		o.HotRowCache = 1024
		o.HotCacheCrossIter = true
		benchmarkDistIteration(b, o)
	})
}
