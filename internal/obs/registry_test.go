package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("dkv.requests")
	c.Add(3)
	c.Inc()
	if got := c.Load(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if reg.Counter("dkv.requests") != c {
		t.Fatal("Counter is not get-or-create stable")
	}
	g := reg.Gauge("run.perplexity")
	g.Set(123.5)
	if got := g.Load(); got != 123.5 {
		t.Fatalf("gauge = %v, want 123.5", got)
	}

	snap := reg.Snapshot()
	if snap.Counters["dkv.requests"] != 4 || snap.Gauges["run.perplexity"] != 123.5 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},       // 1024µs > 1ms? 2^10 = 1024µs >= 1000µs
		{time.Hour, HistBuckets - 1}, // overflow clamps
	}
	for _, c := range cases {
		if got := histBucket(c.d); got != c.want {
			t.Errorf("histBucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations (~2µs, bucket 1) and 10 slow (~1ms, bucket 10).
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.P50MS != histUpperMS(1) {
		t.Errorf("p50 = %v, want %v (fast bucket)", s.P50MS, histUpperMS(1))
	}
	if s.P95MS != histUpperMS(10) || s.P99MS != histUpperMS(10) {
		t.Errorf("p95/p99 = %v/%v, want %v (slow bucket)", s.P95MS, s.P99MS, histUpperMS(10))
	}
}

func TestSnapshotFold(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("dkv.requests").Add(5)
	r2.Counter("dkv.requests").Add(7)
	r1.Gauge("run.iteration").Set(10)
	r2.Gauge("run.iteration").Set(12)
	r1.Histogram("stage.update_phi").Observe(2 * time.Microsecond)
	r2.Histogram("stage.update_phi").Observe(time.Millisecond)

	folded := r1.Snapshot()
	folded.Fold(r2.Snapshot())
	if folded.Counters["dkv.requests"] != 12 {
		t.Errorf("folded counter = %d, want 12 (sum)", folded.Counters["dkv.requests"])
	}
	if folded.Gauges["run.iteration"] != 12 {
		t.Errorf("folded gauge = %v, want 12 (max)", folded.Gauges["run.iteration"])
	}
	h := folded.Histograms["stage.update_phi"]
	if h.Count != 2 {
		t.Errorf("folded histogram count = %d, want 2", h.Count)
	}
	if h.P99MS != histUpperMS(10) {
		t.Errorf("folded p99 = %v, want %v", h.P99MS, histUpperMS(10))
	}
}

func TestCounterValuesPrefix(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dkv.requests").Add(1)
	reg.Counter("store.cache_hits").Add(2)
	reg.Counter("other.thing").Add(3)
	got := reg.CounterValues("dkv.", "store.")
	if len(got) != 2 || got["dkv.requests"] != 1 || got["store.cache_hits"] != 2 {
		t.Fatalf("CounterValues = %v", got)
	}
	if all := reg.CounterValues(); len(all) != 3 {
		t.Fatalf("CounterValues() = %v, want all 3", all)
	}
}
