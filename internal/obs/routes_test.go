package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestRoutesMux pins the helper's contract: exact table paths answer, the
// "/" entry serves only the literal root, and every unknown path — notably
// sub-paths that net/http's "/" pattern would otherwise catch — is a 404.
func TestRoutesMux(t *testing.T) {
	echo := func(tag string) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) { fmt.Fprint(w, tag) }
	}
	srv := httptest.NewServer(Routes{
		"/":    echo("root"),
		"/one": echo("one"),
	}.Mux())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 64)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	if code, body := get("/"); code != 200 || body != "root" {
		t.Fatalf("GET / = %d %q, want 200 root", code, body)
	}
	if code, body := get("/one"); code != 200 || body != "one" {
		t.Fatalf("GET /one = %d %q, want 200 one", code, body)
	}
	for _, path := range []string{"/two", "/favicon.ico", "/one/extra"} {
		if code, _ := get(path); code != 404 {
			t.Fatalf("GET %s = %d, want 404", path, code)
		}
	}
}

// TestRoutesMuxWithoutRoot: a table with no "/" entry 404s the root too.
func TestRoutesMuxWithoutRoot(t *testing.T) {
	srv := httptest.NewServer(Routes{
		"/only": func(w http.ResponseWriter, _ *http.Request) {},
	}.Mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET / with no root entry = %d, want 404", resp.StatusCode)
	}
}
