package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (iteration number, perplexity,
// elapsed time). Stored as float64 bits for atomic access.
type Gauge struct{ v atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(x float64) { g.v.Store(math.Float64bits(x)) }

// Load returns the current value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram bucket layout: HistBuckets log-spaced buckets with bucket i
// covering durations in (base·2^(i-1), base·2^i], base = 1µs; the last
// bucket also absorbs everything larger. Fixed bounds keep per-rank
// histograms mergeable by adding bucket counts.
const (
	HistBuckets = 32
	histBase    = time.Microsecond
)

// histBucket returns the bucket index for a duration.
func histBucket(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	// smallest i with base·2^i >= d, i.e. 2^i >= ceil(d/base)
	n := uint64((d + histBase - 1) / histBase)
	b := bits.Len64(n - 1)
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// histUpperMS returns bucket i's upper bound in milliseconds.
func histUpperMS(i int) float64 {
	return float64(histBase<<uint(i)) / float64(time.Millisecond)
}

// Histogram is a streaming latency histogram over fixed log-spaced buckets.
// Observe is two atomic adds; quantiles are computed at snapshot time from
// the bucket counts (the reported value is the bucket's upper bound, so
// quantiles are conservative within a factor of two).
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	h.buckets[histBucket(d)].Add(1)
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumMS:   float64(h.sumNS.Load()) / float64(time.Millisecond),
		Buckets: make([]int64, HistBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.refreshQuantiles()
	return s
}

// HistogramSnapshot is a point-in-time view of a Histogram, carrying the raw
// bucket counts so snapshots from different ranks can be folded.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	SumMS   float64 `json:"sum_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// refreshQuantiles recomputes P50/P95/P99 from the bucket counts.
func (s *HistogramSnapshot) refreshQuantiles() {
	s.P50MS = quantileFromBuckets(s.Buckets, s.Count, 0.50)
	s.P95MS = quantileFromBuckets(s.Buckets, s.Count, 0.95)
	s.P99MS = quantileFromBuckets(s.Buckets, s.Count, 0.99)
}

// quantileFromBuckets returns the upper bound (ms) of the bucket where the
// cumulative count first reaches q·total, or 0 for an empty histogram.
func quantileFromBuckets(buckets []int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if cum >= target {
			return histUpperMS(i)
		}
	}
	return histUpperMS(len(buckets) - 1)
}

// Registry is a namespace of counters, gauges, and histograms. Metric
// handles are get-or-create and stable: subsystems look their counters up
// once at construction and then update them lock-free.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry's metrics, the unit of
// export (monitor endpoint, Result.Metrics) and of cross-rank folding.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric currently registered.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// CounterValues returns the counters whose names start with any of the given
// prefixes (all counters when none are given); used by the recorder to form
// per-iteration deltas.
func (r *Registry) CounterValues(prefixes ...string) map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64)
	for name, c := range r.counters {
		if len(prefixes) == 0 {
			out[name] = c.Load()
			continue
		}
		for _, p := range prefixes {
			if len(name) >= len(p) && name[:len(p)] == p {
				out[name] = c.Load()
				break
			}
		}
	}
	return out
}

// Fold merges another snapshot into this one: counters add (total work
// across ranks), gauges take the max (iteration, elapsed — the slowest rank
// bounds the run), histograms merge bucket counts and recompute quantiles.
func (s *Snapshot) Fold(other Snapshot) {
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	for name, v := range other.Gauges {
		if cur, ok := s.Gauges[name]; !ok || v > cur {
			s.Gauges[name] = v
		}
	}
	for name, oh := range other.Histograms {
		h, ok := s.Histograms[name]
		if !ok {
			h = HistogramSnapshot{Buckets: make([]int64, HistBuckets)}
		}
		h.Count += oh.Count
		h.SumMS += oh.SumMS
		for i := range oh.Buckets {
			if i < len(h.Buckets) {
				h.Buckets[i] += oh.Buckets[i]
			}
		}
		h.refreshQuantiles()
		s.Histograms[name] = h
	}
}
