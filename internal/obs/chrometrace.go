package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Chrome trace-event export: the gathered TraceBundles rendered in the JSON
// Object Format that Perfetto and chrome://tracing load directly. Each rank
// becomes a process (pid = rank) and each Tracer track becomes a thread
// within it, so the UI shows one swim lane per rank with engine, DKV-client,
// and DKV-server activity stacked inside. Span ids, parents, peers, and
// iteration labels travel in the per-event args, which also makes the file a
// lossless interchange format: ReadChromeTrace reconstructs the bundles
// exactly, and ocd-analyze consumes the same file the browser does.

// chromeDoc is the trace-event JSON Object Format envelope. Viewers ignore
// unknown top-level keys, so otherData carries the drop accounting.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	OtherData       chromeOther   `json:"otherData"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeOther struct {
	DroppedByRank map[string]int64 `json:"dropped_by_rank"`
}

// chromeEvent is one trace event. "X" complete events carry ts+dur; "M"
// metadata events name processes and threads.
type chromeEvent struct {
	Name string      `json:"name"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	TS   float64     `json:"ts"`            // microseconds
	Dur  float64     `json:"dur,omitempty"` // microseconds
	PID  int         `json:"pid"`
	TID  int         `json:"tid"`
	Args *chromeArgs `json:"args,omitempty"`
}

// chromeArgs carries the span fields the viewer shows on click and the
// reader needs for lossless reconstruction. Iter and Peer are pointers so a
// legitimate 0 survives omitempty; nil encodes "absent" (-1 on the span).
type chromeArgs struct {
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Iter   *int   `json:"iter,omitempty"`
	Peer   *int   `json:"peer,omitempty"`
	Tag    uint32 `json:"tag,omitempty"`

	// Metadata events reuse the args object for the name payload.
	Name string `json:"name,omitempty"`
}

// trackName labels the thread lane for a Tracer track id.
func trackName(track int) string {
	switch track {
	case TrackEngine:
		return "engine"
	case TrackDKVClient:
		return "dkv client"
	case TrackDKVServer:
		return "dkv server"
	default:
		return fmt.Sprintf("track %d", track)
	}
}

// WriteChromeTrace renders the bundles as Chrome trace-event JSON. Output is
// deterministic: bundles are ordered by rank, spans by (start, id), so the
// golden-file test and repeated exports of one run are byte-identical.
func WriteChromeTrace(w io.Writer, bundles []TraceBundle) error {
	ordered := append([]TraceBundle(nil), bundles...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Rank < ordered[j].Rank })

	doc := chromeDoc{
		DisplayTimeUnit: "ms",
		OtherData:       chromeOther{DroppedByRank: map[string]int64{}},
	}
	for _, b := range ordered {
		doc.OtherData.DroppedByRank[fmt.Sprintf("%d", b.Rank)] = b.Dropped

		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: b.Rank,
			Args: &chromeArgs{Name: fmt.Sprintf("rank %d", b.Rank)},
		})
		tracks := map[int]bool{}
		for _, sp := range b.Spans {
			tracks[sp.Track] = true
		}
		trackIDs := make([]int, 0, len(tracks))
		for t := range tracks {
			trackIDs = append(trackIDs, t)
		}
		sort.Ints(trackIDs)
		for _, t := range trackIDs {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: b.Rank, TID: t,
				Args: &chromeArgs{Name: trackName(t)},
			})
		}

		spans := append([]Span(nil), b.Spans...)
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].StartNS != spans[j].StartNS {
				return spans[i].StartNS < spans[j].StartNS
			}
			return spans[i].ID < spans[j].ID
		})
		for _, sp := range spans {
			args := &chromeArgs{ID: uint64(sp.ID), Parent: uint64(sp.Parent), Tag: sp.Tag}
			if sp.Iter >= 0 {
				it := sp.Iter
				args.Iter = &it
			}
			if sp.Peer != NoPeer {
				p := sp.Peer
				args.Peer = &p
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: sp.Name, Cat: sp.Cat, Ph: "X",
				TS:  float64(sp.StartNS) / 1e3,
				Dur: float64(sp.DurNS) / 1e3,
				PID: sp.Rank, TID: sp.Track,
				Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}

// ReadChromeTrace parses a trace file written by WriteChromeTrace back into
// per-rank bundles (rank-ordered). Timestamps round-trip exactly: µs floats
// divide ns by 1000, and every trace fits in float64's 2^53 integer range.
func ReadChromeTrace(r io.Reader) ([]TraceBundle, error) {
	var doc chromeDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: parsing chrome trace: %w", err)
	}
	byRank := map[int]*TraceBundle{}
	bundleFor := func(rank int) *TraceBundle {
		b := byRank[rank]
		if b == nil {
			b = &TraceBundle{Rank: rank}
			byRank[rank] = b
		}
		return b
	}
	for rankStr, dropped := range doc.OtherData.DroppedByRank {
		var rank int
		if _, err := fmt.Sscanf(rankStr, "%d", &rank); err == nil {
			bundleFor(rank).Dropped = dropped
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		sp := Span{
			Name:    ev.Name,
			Cat:     ev.Cat,
			Rank:    ev.PID,
			Track:   ev.TID,
			Peer:    NoPeer,
			Iter:    -1,
			StartNS: int64(math.Round(ev.TS * 1e3)),
			DurNS:   int64(math.Round(ev.Dur * 1e3)),
		}
		if ev.Args != nil {
			sp.ID = SpanID(ev.Args.ID)
			sp.Parent = SpanID(ev.Args.Parent)
			sp.Tag = ev.Args.Tag
			if ev.Args.Iter != nil {
				sp.Iter = *ev.Args.Iter
			}
			if ev.Args.Peer != nil {
				sp.Peer = *ev.Args.Peer
			}
		}
		b := bundleFor(ev.PID)
		b.Spans = append(b.Spans, sp)
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	out := make([]TraceBundle, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, *byRank[r])
	}
	return out, nil
}
