package obs

import "fmt"

// Summary is the machine-readable aggregation of an event stream, the shape
// scripts/bench_dist.sh embeds into BENCH_dist.json: per-stage ms/iteration
// (per-rank mean, then max across ranks — the slowest rank bounds every
// barrier-separated phase, the same convention as trace.Phases.Merge),
// total DKV traffic, and the perplexity trajectory endpoint.
type Summary struct {
	Ranks          int                `json:"ranks"`
	Iterations     int                `json:"iterations"`
	Events         int                `json:"events"`
	StageMSPerIter map[string]float64 `json:"stage_ms_per_iter"`
	DKV            DKVCounters        `json:"dkv"`
	// CacheHitRate is hits/(hits+misses) of the hot-row cache, omitted when
	// the stream carries no cache traffic (cache off).
	CacheHitRate    float64 `json:"cache_hit_rate,omitempty"`
	FinalPerplexity float64 `json:"final_perplexity,omitempty"`
	ElapsedMS       float64 `json:"elapsed_ms"`
}

// Summarize folds a validated event stream into a Summary. It checks the
// stream-level invariants the schema cannot express per-line: per-rank iter
// events must be consecutive from 0, and every rank must report the same
// iteration count.
func Summarize(events []Event) (*Summary, error) {
	s := &Summary{StageMSPerIter: map[string]float64{}, Events: len(events)}
	// Per-rank accumulation: stage sums and iteration counts.
	type rankAcc struct {
		stages map[string]float64
		iters  int
	}
	acc := map[int]*rankAcc{}
	for i := range events {
		e := &events[i]
		switch e.Type {
		case EventRunStart:
			s.Ranks = e.Ranks
		case EventIter:
			a := acc[e.Rank]
			if a == nil {
				a = &rankAcc{stages: map[string]float64{}}
				acc[e.Rank] = a
			}
			if e.Iter != a.iters {
				return nil, fmt.Errorf("obs: rank %d iter events not consecutive: got %d, want %d",
					e.Rank, e.Iter, a.iters)
			}
			a.iters++
			for name, ms := range e.StagesMS {
				a.stages[name] += ms
			}
			s.DKV = addDKV(s.DKV, e.DKV)
		case EventPerplexity:
			s.FinalPerplexity = e.Perplexity
		case EventRunEnd:
			if e.ElapsedMS > s.ElapsedMS {
				s.ElapsedMS = e.ElapsedMS
			}
		}
	}
	if len(acc) == 0 {
		return nil, fmt.Errorf("obs: no iter events in stream")
	}
	if s.Ranks == 0 {
		s.Ranks = len(acc)
	}
	if lookups := s.DKV.CacheHits + s.DKV.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.DKV.CacheHits) / float64(lookups)
	}
	for rank, a := range acc {
		if s.Iterations == 0 {
			s.Iterations = a.iters
		} else if a.iters != s.Iterations {
			return nil, fmt.Errorf("obs: rank %d reported %d iterations, others %d",
				rank, a.iters, s.Iterations)
		}
		for name, total := range a.stages {
			perIter := total / float64(a.iters)
			if perIter > s.StageMSPerIter[name] {
				s.StageMSPerIter[name] = perIter
			}
		}
	}
	return s, nil
}

// addDKV accumulates an optional per-event DKV block.
func addDKV(acc DKVCounters, d *DKVCounters) DKVCounters {
	if d == nil {
		return acc
	}
	acc.LocalKeys += d.LocalKeys
	acc.RemoteKeys += d.RemoteKeys
	acc.Requests += d.Requests
	acc.BytesRead += d.BytesRead
	acc.BytesWritten += d.BytesWritten
	acc.CacheHits += d.CacheHits
	acc.CacheMisses += d.CacheMisses
	acc.CacheEvictions += d.CacheEvictions
	acc.CacheInvalidations += d.CacheInvalidations
	return acc
}
