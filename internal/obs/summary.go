package obs

import (
	"fmt"
	"sort"
)

// StageSkew is the cross-rank imbalance of one stage: the slowest rank's
// mean ms/iteration against the cluster's (lower) median. A skew near 1
// means the stage is balanced; a persistently high skew names the stage —
// and SlowRank the rank — where the barrier time goes.
type StageSkew struct {
	MaxMS    float64 `json:"max_ms"`
	MedianMS float64 `json:"median_ms"`
	Skew     float64 `json:"skew"`
	SlowRank int     `json:"slow_rank"`
}

// Summary is the machine-readable aggregation of an event stream, the shape
// scripts/bench_dist.sh embeds into BENCH_dist.json: per-stage ms/iteration
// (per-rank mean, then max across ranks — the slowest rank bounds every
// barrier-separated phase, the same convention as trace.Phases.Merge),
// total DKV traffic, the straggler report, and the perplexity trajectory
// endpoint.
type Summary struct {
	Ranks          int                `json:"ranks"`
	Iterations     int                `json:"iterations"`
	Events         int                `json:"events"`
	StageMSPerIter map[string]float64 `json:"stage_ms_per_iter"`
	// StageSkew reports, per stage seen on at least two ranks, how much the
	// slowest rank exceeds the median — the per-phase ("per collective tag")
	// half of the straggler report.
	StageSkew map[string]StageSkew `json:"stage_skew,omitempty"`
	DKV       DKVCounters          `json:"dkv"`
	// PeerWaitMS[p] totals the recv-wait peer p imposed on the other ranks
	// (summed per-peer wait deltas of every iter event, diagonal excluded);
	// PeerSkew and Stragglers apply the stragglerReport rule to it.
	PeerWaitMS map[int]float64 `json:"peer_wait_ms,omitempty"`
	PeerSkew   float64         `json:"peer_skew,omitempty"`
	Stragglers []int           `json:"stragglers,omitempty"`
	// CacheHitRate is hits/(hits+misses) of the hot-row cache, omitted when
	// the stream carries no cache traffic (cache off).
	CacheHitRate    float64 `json:"cache_hit_rate,omitempty"`
	FinalPerplexity float64 `json:"final_perplexity,omitempty"`
	// StartIter is the first iteration in the stream — non-zero for a run
	// resumed from a checkpoint, whose iter events pick up at the restart
	// point rather than 0.
	StartIter int `json:"start_iter,omitempty"`
	// Rebalances counts the rebalance events (share-changing windows of the
	// straggler mitigation); FinalWeights is the share vector of the last
	// one.
	Rebalances   int       `json:"rebalances,omitempty"`
	FinalWeights []float64 `json:"final_weights,omitempty"`
	ElapsedMS    float64   `json:"elapsed_ms"`
}

// Summarize folds a validated event stream into a Summary. It checks the
// stream-level invariants the schema cannot express per-line: per-rank iter
// events must be consecutive from a common base iteration (0 for a fresh
// run; the restart point for a run resumed from a checkpoint), and every
// rank must report the same base and iteration count. A stream with no iter
// events at all — a run that crashed before finishing its first iteration,
// truncated to its run_start — is legal and yields a zero-iteration Summary
// rather than an error.
func Summarize(events []Event) (*Summary, error) {
	s := &Summary{StageMSPerIter: map[string]float64{}, Events: len(events)}
	// Per-rank accumulation: stage sums, first iteration, iteration counts.
	type rankAcc struct {
		stages map[string]float64
		base   int
		iters  int
	}
	acc := map[int]*rankAcc{}
	peerWait := map[int]float64{}
	for i := range events {
		e := &events[i]
		switch e.Type {
		case EventRunStart:
			s.Ranks = e.Ranks
		case EventIter:
			a := acc[e.Rank]
			if a == nil {
				a = &rankAcc{stages: map[string]float64{}, base: e.Iter}
				acc[e.Rank] = a
			}
			if e.Iter != a.base+a.iters {
				return nil, fmt.Errorf("obs: rank %d iter events not consecutive: got %d, want %d",
					e.Rank, e.Iter, a.base+a.iters)
			}
			a.iters++
			for name, ms := range e.StagesMS {
				a.stages[name] += ms
			}
			s.DKV = addDKV(s.DKV, e.DKV)
			for peer, ms := range e.PeerWaitMS {
				if peer != e.Rank {
					peerWait[peer] += ms
				}
			}
		case EventPerplexity:
			s.FinalPerplexity = e.Perplexity
		case EventRebalance:
			s.Rebalances++
			s.FinalWeights = e.Weights
		case EventRunEnd:
			if e.ElapsedMS > s.ElapsedMS {
				s.ElapsedMS = e.ElapsedMS
			}
		}
	}
	if s.Ranks == 0 {
		s.Ranks = len(acc)
	}
	if lookups := s.DKV.CacheHits + s.DKV.CacheMisses; lookups > 0 {
		s.CacheHitRate = float64(s.DKV.CacheHits) / float64(lookups)
	}
	first := true
	for _, rank := range sortedKeys(acc) {
		a := acc[rank]
		if first {
			s.Iterations = a.iters
			s.StartIter = a.base
			first = false
		} else {
			if a.iters != s.Iterations {
				return nil, fmt.Errorf("obs: rank %d reported %d iterations, others %d",
					rank, a.iters, s.Iterations)
			}
			if a.base != s.StartIter {
				return nil, fmt.Errorf("obs: rank %d iter events start at %d, others at %d",
					rank, a.base, s.StartIter)
			}
		}
		for name, total := range a.stages {
			perIter := total / float64(a.iters)
			if perIter > s.StageMSPerIter[name] {
				s.StageMSPerIter[name] = perIter
			}
		}
	}
	s.addStageSkew(func(rank int) (map[string]float64, int) {
		a := acc[rank]
		if a == nil {
			return nil, 0
		}
		return a.stages, a.iters
	}, sortedKeys(acc))
	if len(peerWait) > 0 {
		s.PeerWaitMS = peerWait
		// Stretch the wait map onto a dense per-peer vector so the shared
		// flagging rule (and its median) sees silent peers as zero wait.
		maxPeer := 0
		for p := range peerWait {
			if p > maxPeer {
				maxPeer = p
			}
		}
		if s.Ranks > maxPeer+1 {
			maxPeer = s.Ranks - 1
		}
		waits := make([]float64, maxPeer+1)
		for p, w := range peerWait {
			waits[p] = w
		}
		rep := stragglerReport(waits)
		s.PeerSkew = rep.Skew
		s.Stragglers = rep.Flagged
	}
	return s, nil
}

// addStageSkew computes the per-stage cross-rank skew from the per-rank
// stage means; stages reported by fewer than two ranks (the master-only
// draw_minibatch) are skipped.
func (s *Summary) addStageSkew(rankStages func(rank int) (map[string]float64, int), ranks []int) {
	if len(ranks) < 2 {
		return
	}
	type sample struct {
		rank int
		ms   float64
	}
	byStage := map[string][]sample{}
	for _, rank := range ranks {
		stages, iters := rankStages(rank)
		for name, total := range stages {
			byStage[name] = append(byStage[name], sample{rank, total / float64(iters)})
		}
	}
	for name, samples := range byStage {
		if len(samples) < 2 {
			continue
		}
		sorted := append([]sample(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].ms < sorted[j].ms })
		max := sorted[len(sorted)-1]
		median := sorted[(len(sorted)-1)/2].ms
		denom := median
		if denom < stageSkewFloorMS {
			denom = stageSkewFloorMS
		}
		if s.StageSkew == nil {
			s.StageSkew = map[string]StageSkew{}
		}
		s.StageSkew[name] = StageSkew{
			MaxMS:    max.ms,
			MedianMS: median,
			Skew:     max.ms / denom,
			SlowRank: max.rank,
		}
	}
}

// stageSkewFloorMS clamps the skew denominator so a stage whose median is
// microseconds cannot report an astronomically large (and meaningless) skew.
const stageSkewFloorMS = 0.001

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// addDKV accumulates an optional per-event DKV block.
func addDKV(acc DKVCounters, d *DKVCounters) DKVCounters {
	if d == nil {
		return acc
	}
	acc.LocalKeys += d.LocalKeys
	acc.RemoteKeys += d.RemoteKeys
	acc.Requests += d.Requests
	acc.BytesRead += d.BytesRead
	acc.BytesWritten += d.BytesWritten
	acc.CacheHits += d.CacheHits
	acc.CacheMisses += d.CacheMisses
	acc.CacheEvictions += d.CacheEvictions
	acc.CacheInvalidations += d.CacheInvalidations
	return acc
}
