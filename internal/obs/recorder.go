package obs

import (
	"sync"
	"time"
)

// Recorder receives the engine's per-stage timings as they happen. The
// engine loop carries a nil Recorder by default — telemetry off costs one
// nil-check per stage. Implementations must be safe for concurrent use: the
// pipelined φ stage reports load/compute sub-stages from two goroutines.
type Recorder interface {
	// StageDone reports one timed interval of a named stage within iteration
	// iter. A stage may report several intervals per iteration (the chunked
	// φ pipeline does); they accumulate.
	StageDone(iter int, stage string, d time.Duration)
	// IterDone marks the end of iteration iter; accumulated stage durations
	// are flushed as one event.
	IterDone(iter int)
	// EvalDone reports a perplexity evaluation after iteration iter
	// (1-based, matching the engines' PerpPoint.Iter).
	EvalDone(iter int, perplexity float64)
}

// RunRecorder is the standard Recorder: it accumulates stage durations per
// iteration, folds them with the registry's per-iteration counter deltas
// into one "iter" event on the sink, feeds per-stage latency histograms,
// and maintains the run.* gauges the live monitor serves.
//
// Either sink or registry may be nil: a nil sink records into the registry
// only (monitor-only runs), a nil registry emits events without DKV blocks
// (the local sampler has no parameter-store traffic).
type RunRecorder struct {
	sink *Sink
	rank int
	reg  *Registry

	mu    sync.Mutex
	start time.Time
	// stages accumulates per-iteration: with pipelining on, iteration t+1's
	// minibatch draw overlaps iteration t's compute, so durations must be
	// keyed by the iteration they belong to, not by arrival order.
	stages map[int]map[string]time.Duration
	last   map[string]int64 // counter values at the previous IterDone
}

// NewRunRecorder creates a recorder for one rank. The clock for ElapsedMS
// starts now (or at RunStart, whichever is called).
func NewRunRecorder(sink *Sink, rank int, reg *Registry) *RunRecorder {
	return &RunRecorder{
		sink:   sink,
		rank:   rank,
		reg:    reg,
		start:  time.Now(),
		stages: map[int]map[string]time.Duration{},
	}
}

// emit forwards an event to the sink, if any. Sink errors are deliberately
// swallowed: telemetry must never fail a training run.
func (r *RunRecorder) emit(e *Event) {
	if r.sink != nil {
		_ = r.sink.Emit(e)
	}
}

// RunStart resets the clock and announces the run topology.
func (r *RunRecorder) RunStart(ranks, iterations int) {
	r.mu.Lock()
	r.start = time.Now()
	r.mu.Unlock()
	r.emit(&Event{Type: EventRunStart, Rank: r.rank, Ranks: ranks, Iterations: iterations})
}

// StageDone implements Recorder.
func (r *RunRecorder) StageDone(iter int, stage string, d time.Duration) {
	r.mu.Lock()
	m := r.stages[iter]
	if m == nil {
		m = map[string]time.Duration{}
		r.stages[iter] = m
	}
	m[stage] += d
	r.mu.Unlock()
	if r.reg != nil {
		r.reg.Histogram("stage." + stage).Observe(d)
	}
}

// counterDelta snapshots the telemetry counter groups and returns the delta
// since the previous call. Caller holds r.mu.
func (r *RunRecorder) counterDelta() map[string]int64 {
	cur := r.reg.CounterValues("dkv.", "store.", "transport.")
	delta := make(map[string]int64, len(cur))
	for name, v := range cur {
		delta[name] = v - r.last[name]
	}
	r.last = cur
	return delta
}

// IterDone implements Recorder: it flushes the accumulated stage durations
// (and, with a registry attached, the iteration's counter deltas) as one
// iter event and refreshes the monitor gauges.
func (r *RunRecorder) IterDone(iter int) {
	r.mu.Lock()
	elapsed := time.Since(r.start)
	e := &Event{
		Type:      EventIter,
		Rank:      r.rank,
		Iter:      iter,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if m := r.stages[iter]; len(m) > 0 {
		e.StagesMS = make(map[string]float64, len(m))
		for name, d := range m {
			e.StagesMS[name] = float64(d) / float64(time.Millisecond)
		}
	}
	delete(r.stages, iter)
	if r.reg != nil {
		delta := r.counterDelta()
		if dkv := dkvFromCounters(delta); !dkv.IsZero() {
			e.DKV = &dkv
		}
		// Per-peer recv-wait deltas ride each iter event so a stream consumer
		// (obs.Summarize, ocd-analyze) can localise stragglers per link.
		for name, v := range delta {
			peer, kind, ok := ParsePeerCounter(name)
			if !ok || kind != PeerRecvWaitNS || v <= 0 {
				continue
			}
			if e.PeerWaitMS == nil {
				e.PeerWaitMS = map[int]float64{}
			}
			e.PeerWaitMS[peer] = float64(v) / 1e6
		}
	}
	r.mu.Unlock()

	if r.reg != nil {
		r.reg.Gauge(GaugeIteration).Set(float64(iter + 1))
		r.reg.Gauge(GaugeElapsedMS).Set(float64(elapsed) / float64(time.Millisecond))
	}
	r.emit(e)
}

// EvalDone implements Recorder.
func (r *RunRecorder) EvalDone(iter int, perplexity float64) {
	r.mu.Lock()
	elapsed := time.Since(r.start)
	r.mu.Unlock()
	if r.reg != nil {
		r.reg.Gauge(GaugePerplexity).Set(perplexity)
	}
	r.emit(&Event{
		Type:       EventPerplexity,
		Rank:       r.rank,
		Iter:       iter,
		Perplexity: perplexity,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	})
}

// RebalanceDone emits a rebalance event: the straggler mitigation changed
// the minibatch shares after the window ending at iteration iter. weights is
// the share vector the next window runs with, flagged the ranks the window's
// straggler rule flagged, and waitMS the window's per-rank imposed-wait
// totals.
func (r *RunRecorder) RebalanceDone(iter int, weights []float64, flagged []int, waitMS map[int]float64) {
	r.mu.Lock()
	elapsed := time.Since(r.start)
	r.mu.Unlock()
	r.emit(&Event{
		Type:       EventRebalance,
		Rank:       r.rank,
		Iter:       iter,
		Weights:    weights,
		Flagged:    flagged,
		PeerWaitMS: waitMS,
		ElapsedMS:  float64(elapsed) / float64(time.Millisecond),
	})
}

// RunEnd emits the closing event with cumulative counters.
func (r *RunRecorder) RunEnd(iterations int) {
	r.mu.Lock()
	elapsed := time.Since(r.start)
	r.mu.Unlock()
	e := &Event{
		Type:      EventRunEnd,
		Rank:      r.rank,
		Iter:      iterations,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
	if r.reg != nil {
		if dkv := dkvFromCounters(r.reg.CounterValues("dkv.", "store.")); !dkv.IsZero() {
			e.DKV = &dkv
		}
	}
	r.emit(e)
}

// interface conformance
var _ Recorder = (*RunRecorder)(nil)
