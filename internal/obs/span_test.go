package obs

import (
	"sync"
	"testing"
)

// TestTracerScopeNesting drives the tracer the way engine.Loop does — iter
// span as scope, stage spans inside, a child emitted under the stage — and
// checks the parent chain reconstructs the nesting.
func TestTracerScopeNesting(t *testing.T) {
	tr := NewTracer(3, 0)
	if tr.Rank() != 3 {
		t.Fatalf("Rank() = %d, want 3", tr.Rank())
	}
	if tr.Iter() != -1 {
		t.Fatalf("fresh tracer Iter() = %d, want -1", tr.Iter())
	}
	if tr.Scope() != 0 {
		t.Fatalf("fresh tracer Scope() = %d, want 0", tr.Scope())
	}

	tr.SetIter(7)
	iterID := tr.NewID()
	prev := tr.SetScope(iterID)
	if prev != 0 {
		t.Fatalf("SetScope returned previous scope %d, want 0", prev)
	}

	stageID := tr.NewID()
	if got := tr.SetScope(stageID); got != iterID {
		t.Fatalf("SetScope returned %d, want iter id %d", got, iterID)
	}
	// A concurrent emitter (collective, DKV wait) parents under the scope.
	childID := tr.NewID()
	tr.Emit(Span{ID: childID, Parent: tr.Scope(), Name: "recv", Cat: CatRecv,
		Track: TrackEngine, Peer: 1, Iter: tr.Iter(), StartNS: 10, DurNS: 5})
	tr.Emit(Span{ID: stageID, Parent: iterID, Name: "update_phi", Cat: CatStage,
		Track: TrackEngine, Peer: NoPeer, Iter: tr.Iter(), StartNS: 5, DurNS: 20})
	if got := tr.SetScope(iterID); got != stageID {
		t.Fatalf("restoring scope returned %d, want stage id %d", got, stageID)
	}
	tr.Emit(Span{ID: iterID, Name: "iter", Cat: CatIter,
		Track: TrackEngine, Peer: NoPeer, Iter: tr.Iter(), StartNS: 0, DurNS: 30})
	tr.SetScope(prev)

	b := tr.Bundle()
	if b.Rank != 3 || len(b.Spans) != 3 || b.Dropped != 0 {
		t.Fatalf("bundle = rank %d, %d spans, %d dropped; want rank 3, 3 spans, 0 dropped", b.Rank, len(b.Spans), b.Dropped)
	}
	byID := map[SpanID]Span{}
	for _, sp := range b.Spans {
		if sp.Rank != 3 {
			t.Fatalf("Emit did not stamp the tracer rank: %+v", sp)
		}
		byID[sp.ID] = sp
	}
	if byID[childID].Parent != stageID {
		t.Errorf("recv span parent = %d, want stage %d", byID[childID].Parent, stageID)
	}
	if byID[stageID].Parent != iterID {
		t.Errorf("stage span parent = %d, want iter %d", byID[stageID].Parent, iterID)
	}
	if byID[iterID].Parent != 0 {
		t.Errorf("iter span parent = %d, want 0 (root)", byID[iterID].Parent)
	}
	if got := byID[iterID].End(); got != 30 {
		t.Errorf("iter End() = %d, want 30", got)
	}
}

// TestTracerDropAccounting fills the bounded buffer and checks overflow is
// counted (and mirrored into the registry counter) instead of growing.
func TestTracerDropAccounting(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(0, 4)
	tr.SetDropCounter(reg.Counter(CtrSpansDropped))
	for i := 0; i < 10; i++ {
		tr.Emit(Span{ID: tr.NewID(), Name: "s", Cat: CatStage, Peer: NoPeer, Iter: i})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len() = %d, want the capacity 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", tr.Dropped())
	}
	if got := reg.Counter(CtrSpansDropped).Load(); got != 6 {
		t.Fatalf("registry %s = %d, want 6", CtrSpansDropped, got)
	}
	if b := tr.Bundle(); b.Dropped != 6 {
		t.Fatalf("bundle Dropped = %d, want 6", b.Dropped)
	}
}

// TestTracerConcurrentEmit exercises Emit from many goroutines (the engine,
// pipelined loader, and DKV server all emit concurrently in a real run);
// run under -race this is the data-race check.
func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tr.NewID()
				tr.Emit(Span{ID: id, Parent: tr.Scope(), Name: "x", Cat: CatDKVServe,
					Track: TrackDKVServer, Peer: 1, Iter: tr.Iter()})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*200 {
		t.Fatalf("Len() = %d, want %d", tr.Len(), 8*200)
	}
	seen := map[SpanID]bool{}
	for _, sp := range tr.Bundle().Spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}

// TestTraceBundleRoundTrip checks the gather encoding is lossless.
func TestTraceBundleRoundTrip(t *testing.T) {
	in := TraceBundle{
		Rank:    2,
		Dropped: 11,
		Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 2, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 100, DurNS: 900},
			{ID: 2, Parent: 1, Name: "gather", Cat: CatCollective, Rank: 2, Track: TrackEngine, Peer: NoPeer, Iter: 0, Tag: 5, StartNS: 150, DurNS: 50},
			{ID: 3, Parent: 2, Name: "recv", Cat: CatRecv, Rank: 2, Track: TrackEngine, Peer: 0, Iter: 0, Tag: 5, StartNS: 160, DurNS: 30},
			{ID: 4, Name: "dkv.serve.read", Cat: CatDKVServe, Rank: 2, Track: TrackDKVServer, Peer: 1, Iter: -1, Tag: 42, StartNS: 400, DurNS: 80},
		},
	}
	out, err := DecodeTraceBundle(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Rank != in.Rank || out.Dropped != in.Dropped || len(out.Spans) != len(in.Spans) {
		t.Fatalf("round trip header mismatch: %+v", out)
	}
	for i := range in.Spans {
		if out.Spans[i] != in.Spans[i] {
			t.Errorf("span %d: got %+v, want %+v", i, out.Spans[i], in.Spans[i])
		}
	}
	if _, err := DecodeTraceBundle([]byte("{broken")); err == nil {
		t.Fatal("DecodeTraceBundle accepted malformed JSON")
	}
}

// TestTraceNowMonotone guards the clock the whole layer leans on.
func TestTraceNowMonotone(t *testing.T) {
	a := TraceNow()
	b := TraceNow()
	if a < 0 || b < a {
		t.Fatalf("TraceNow not monotone: %d then %d", a, b)
	}
}
