package obs

import (
	"fmt"
	"sort"
	"strings"
)

// Critical-path analysis over gathered span bundles: for every iteration,
// which rank bounded the wall clock, and why. The algorithm walks the
// causal chain backward from the bounding rank's iteration end — a rank is
// either computing or inside a recorded wait (a blocking collective receive
// or a DKV response wait); waits transfer blame to the peer they waited on,
// compute segments charge the rank that was computing. Every nanosecond of
// the per-iteration critical path lands in exactly one bucket:
//
//   Compute      — the bounding rank itself was busy
//   PeerImposed  — another rank's compute held the bounding rank up
//                  (via a chain of collective waits)
//   DKVService   — the path was blocked on a DKV response; charged to the
//                  SERVING rank, which is the point of server-side spans
//
// This turns the straggler flag (who is slow) into a verdict with a cause
// (what they were doing while everyone waited).

// RankAttribution is one rank's share of the total critical-path time.
type RankAttribution struct {
	Rank          int   `json:"rank"`
	ComputeNS     int64 `json:"compute_ns"`
	PeerImposedNS int64 `json:"peer_imposed_ns"`
	DKVServiceNS  int64 `json:"dkv_service_ns"`
	TotalNS       int64 `json:"total_ns"`
}

// IterCrit summarises one iteration's window.
type IterCrit struct {
	Iter         int   `json:"iter"`
	BoundingRank int   `json:"bounding_rank"`
	DurNS        int64 `json:"dur_ns"`
}

// DKVServerStats aggregates the server-side spans of one rank's DKV loop:
// where request time went (queue wait before pickup, handler execution,
// reply send) and which requesters consumed it.
type DKVServerStats struct {
	Rank        int           `json:"rank"`
	Requests    int           `json:"requests"`
	QueueNS     int64         `json:"queue_ns"`
	HandleNS    int64         `json:"handle_ns"`
	ReplyNS     int64         `json:"reply_ns"`
	ByRequester map[int]int64 `json:"by_requester,omitempty"`
}

// CritReport is the full analysis: per-iteration bounding ranks, per-rank
// critical-path attribution, and the server-side DKV service breakdown.
type CritReport struct {
	Ranks       int               `json:"ranks"`
	Iters       []IterCrit        `json:"iters"`
	Attr        []RankAttribution `json:"attribution"`
	DKVServers  []DKVServerStats  `json:"dkv_servers,omitempty"`
	TotalNS     int64             `json:"total_ns"`
	Verdict     int               `json:"verdict_rank"`
	VerdictFrac float64           `json:"verdict_frac"`
	DroppedBy   map[int]int64     `json:"dropped_by_rank,omitempty"`
}

// isWaitCat reports whether a span category records blocked time.
func isWaitCat(cat string) bool { return cat == CatRecv || cat == CatDKVWait }

// AnalyzeCriticalPath runs the backward walk over every iteration present in
// the bundles and returns the aggregated report.
func AnalyzeCriticalPath(bundles []TraceBundle) *CritReport {
	rep := &CritReport{Verdict: -1, DroppedBy: map[int]int64{}}

	maxRank := -1
	for _, b := range bundles {
		if b.Rank > maxRank {
			maxRank = b.Rank
		}
		if b.Dropped > 0 {
			rep.DroppedBy[b.Rank] = b.Dropped
		}
	}
	if len(rep.DroppedBy) == 0 {
		rep.DroppedBy = nil
	}
	if maxRank < 0 {
		return rep
	}
	rep.Ranks = maxRank + 1
	rep.Attr = make([]RankAttribution, rep.Ranks)
	for r := range rep.Attr {
		rep.Attr[r].Rank = r
	}

	// Index wait spans per rank (start-sorted) and iteration spans per iter.
	waits := make([][]Span, rep.Ranks)
	iterSpans := map[int][]Span{}
	for _, b := range bundles {
		for _, sp := range b.Spans {
			switch {
			case isWaitCat(sp.Cat):
				if sp.Rank >= 0 && sp.Rank < rep.Ranks {
					waits[sp.Rank] = append(waits[sp.Rank], sp)
				}
			case sp.Cat == CatIter && sp.Iter >= 0:
				iterSpans[sp.Iter] = append(iterSpans[sp.Iter], sp)
			case sp.Cat == CatDKVServe && sp.Parent == 0:
				// Parentless serve spans are the per-request roots; their
				// queue/handle/reply children share the requester peer.
				rep.noteServe(bundles, sp)
			}
		}
	}
	for r := range waits {
		sort.Slice(waits[r], func(i, j int) bool { return waits[r][i].StartNS < waits[r][j].StartNS })
	}

	iters := make([]int, 0, len(iterSpans))
	for it := range iterSpans {
		iters = append(iters, it)
	}
	sort.Ints(iters)

	for _, it := range iters {
		spans := iterSpans[it]
		wStart, wEnd := spans[0].StartNS, spans[0].End()
		bound := spans[0].Rank
		for _, sp := range spans[1:] {
			if sp.StartNS < wStart {
				wStart = sp.StartNS
			}
			if sp.End() > wEnd {
				wEnd = sp.End()
				bound = sp.Rank
			}
		}
		rep.Iters = append(rep.Iters, IterCrit{Iter: it, BoundingRank: bound, DurNS: wEnd - wStart})
		rep.TotalNS += wEnd - wStart
		rep.walk(waits, wStart, wEnd, bound)
	}

	var best int64 = -1
	for r := range rep.Attr {
		rep.Attr[r].TotalNS = rep.Attr[r].ComputeNS + rep.Attr[r].PeerImposedNS + rep.Attr[r].DKVServiceNS
		if rep.Attr[r].TotalNS > best {
			best = rep.Attr[r].TotalNS
			rep.Verdict = r
		}
	}
	if rep.TotalNS > 0 && rep.Verdict >= 0 {
		rep.VerdictFrac = float64(rep.Attr[rep.Verdict].TotalNS) / float64(rep.TotalNS)
	}
	return rep
}

// walk attributes one iteration window [wStart, wEnd] by stepping backward
// from the bounding rank's end. At each step the current rank r is either
// inside a wait span covering t (blame transfers) or computing (charge r).
// t strictly decreases except on recv-jumps, which the hop guard bounds.
func (rep *CritReport) walk(waits [][]Span, wStart, wEnd int64, bound int) {
	t, r, hops := wEnd, bound, 0
	charge := func(rank int, fromNS int64, kind string) {
		if fromNS < wStart {
			fromNS = wStart
		}
		if rank < 0 || rank >= len(rep.Attr) || fromNS >= t {
			return
		}
		d := t - fromNS
		switch kind {
		case "compute":
			rep.Attr[rank].ComputeNS += d
		case "imposed":
			rep.Attr[rank].PeerImposedNS += d
		case "dkv":
			rep.Attr[rank].DKVServiceNS += d
		}
	}
	for t > wStart {
		w, ok := coveringWait(waits[r], wStart, t)
		if ok {
			switch {
			case w.Cat == CatDKVWait:
				// Blocked on a DKV response: the serving rank owns this time.
				charge(w.Peer, w.StartNS, "dkv")
				t = maxInt64(w.StartNS, wStart)
				hops = 0
			case hops >= len(waits)+2:
				// Cycle backstop: stop following the chain, charge the peer.
				charge(w.Peer, w.StartNS, "imposed")
				t = maxInt64(w.StartNS, wStart)
				hops = 0
			default:
				// Blocked receiving from w.Peer: the peer's timeline explains
				// this moment — jump there without consuming time.
				r = w.Peer
				if r < 0 || r >= len(waits) {
					r = bound // defensive: malformed peer, fall back
				}
				hops++
			}
			continue
		}
		// No wait covers t: rank r was computing back to its previous wait.
		segStart := wStart
		if prev, ok := latestWaitBefore(waits[r], t); ok && prev.End() > segStart {
			segStart = prev.End()
		}
		if r == bound {
			charge(r, segStart, "compute")
		} else {
			charge(r, segStart, "imposed")
		}
		t = segStart
		hops = 0
		r = bound // after consuming a compute segment, resume from the bound rank's view
	}
}

// coveringWait returns rank spans' latest wait span with Start < t ≤ End
// that overlaps the window, if any.
func coveringWait(spans []Span, wStart, t int64) (Span, bool) {
	var best Span
	found := false
	for _, sp := range spans {
		if sp.StartNS >= t {
			break // start-sorted: nothing later can cover t
		}
		if sp.End() >= t && sp.End() > wStart {
			if !found || sp.StartNS > best.StartNS {
				best, found = sp, true
			}
		}
	}
	return best, found
}

// latestWaitBefore returns the wait span of rank r with the greatest end
// strictly before t, if any.
func latestWaitBefore(spans []Span, t int64) (Span, bool) {
	var best Span
	found := false
	for _, sp := range spans {
		if sp.StartNS >= t {
			break
		}
		if sp.End() < t {
			if !found || sp.End() > best.End() {
				best, found = sp, true
			}
		}
	}
	return best, found
}

// noteServe folds one server-side request root span (and its children) into
// the per-rank DKV server stats.
func (rep *CritReport) noteServe(bundles []TraceBundle, root Span) {
	var st *DKVServerStats
	for i := range rep.DKVServers {
		if rep.DKVServers[i].Rank == root.Rank {
			st = &rep.DKVServers[i]
			break
		}
	}
	if st == nil {
		rep.DKVServers = append(rep.DKVServers, DKVServerStats{Rank: root.Rank, ByRequester: map[int]int64{}})
		st = &rep.DKVServers[len(rep.DKVServers)-1]
	}
	st.Requests++
	if root.Peer != NoPeer {
		st.ByRequester[root.Peer] += root.DurNS
	}
	for _, b := range bundles {
		if b.Rank != root.Rank {
			continue
		}
		for _, sp := range b.Spans {
			if sp.Parent != root.ID || sp.Cat != CatDKVServe {
				continue
			}
			switch sp.Name {
			case "queue":
				st.QueueNS += sp.DurNS
			case "handle":
				st.HandleNS += sp.DurNS
			case "reply":
				st.ReplyNS += sp.DurNS
			}
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func pct(part, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// String renders the report for terminal output. The verdict line is stable
// ("verdict: rank N ...") so scripts can grep it, mirroring the straggler
// verdict format from the event-stream analyzer.
func (rep *CritReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path over %d iterations, %d ranks, %.1f ms total\n",
		len(rep.Iters), rep.Ranks, float64(rep.TotalNS)/1e6)
	boundCount := map[int]int{}
	for _, ic := range rep.Iters {
		boundCount[ic.BoundingRank]++
	}
	for r := range rep.Attr {
		a := rep.Attr[r]
		fmt.Fprintf(&b, "  rank %d: %5.1f%% of critical path (compute %5.1f%%, imposed wait %5.1f%%, dkv service %5.1f%%), bounds %d iters\n",
			r, pct(a.TotalNS, rep.TotalNS), pct(a.ComputeNS, rep.TotalNS),
			pct(a.PeerImposedNS, rep.TotalNS), pct(a.DKVServiceNS, rep.TotalNS),
			boundCount[r])
	}
	for _, st := range rep.DKVServers {
		total := st.QueueNS + st.HandleNS + st.ReplyNS
		fmt.Fprintf(&b, "  dkv server rank %d: %d requests, queue %5.1f%% handle %5.1f%% reply %5.1f%%",
			st.Rank, st.Requests, pct(st.QueueNS, total), pct(st.HandleNS, total), pct(st.ReplyNS, total))
		reqs := make([]int, 0, len(st.ByRequester))
		for q := range st.ByRequester {
			reqs = append(reqs, q)
		}
		sort.Ints(reqs)
		for _, q := range reqs {
			fmt.Fprintf(&b, ", rank %d asked %.2f ms", q, float64(st.ByRequester[q])/1e6)
		}
		b.WriteByte('\n')
	}
	for rank, n := range rep.DroppedBy {
		fmt.Fprintf(&b, "  warning: rank %d dropped %d spans (timeline incomplete)\n", rank, n)
	}
	if rep.Verdict >= 0 {
		fmt.Fprintf(&b, "verdict: rank %d bounds %.1f%% of iteration critical-path time\n",
			rep.Verdict, 100*rep.VerdictFrac)
	} else {
		b.WriteString("verdict: no iteration spans found\n")
	}
	return b.String()
}
