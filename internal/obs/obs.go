// Package obs is the live telemetry layer: the counter/gauge/histogram
// registry every instrumented subsystem (dkv, store, transport) registers
// into, the structured per-iteration JSONL event stream the engines emit
// through a Recorder, and the optional HTTP monitor that exposes a running
// job's registry without interrupting it.
//
// The package is a leaf — it imports only the standard library — so any
// layer of the stack can register metrics without creating import cycles.
// The hot path pays for telemetry only when it is switched on: the engine
// loop carries a nil-checked Recorder, and registry counters are single
// atomic adds.
//
// Three pieces:
//
//   - Registry (registry.go): named atomic counters, gauges, and streaming
//     latency histograms with fixed log-spaced buckets (p50/p95/p99).
//     Snapshots fold across ranks — counters sum, gauges take the max,
//     histogram buckets add — which is how a distributed run's per-rank
//     registries become one Result.Metrics.
//   - Events (events.go): the JSON-lines schema — run_start, one "iter"
//     event per iteration per rank with per-stage durations and DKV counter
//     deltas, "perplexity" points, run_end — plus ReadEvents/Validate for
//     consumers (scripts/bench_dist.sh, ocd-analyze, CI).
//   - Recorder (recorder.go) and Monitor (monitor.go): RunRecorder turns
//     the engine's StageDone/IterDone callbacks into events and registry
//     updates; Monitor serves the registry as JSON over HTTP.
package obs
