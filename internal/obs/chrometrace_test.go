package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the chrome trace golden file")

// goldenBundles is a small fixed two-rank trace exercising every field the
// exporter writes: nesting, peers, tags, iteration labels, all three tracks,
// a legitimate peer/iter of 0, and a nonzero drop count.
func goldenBundles() []TraceBundle {
	return []TraceBundle{
		{Rank: 1, Dropped: 3, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 1, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 1000, DurNS: 9000},
			{ID: 2, Parent: 1, Name: "update_phi", Cat: CatStage, Rank: 1, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 1500, DurNS: 4000},
			{ID: 3, Parent: 2, Name: "dkv.wait.read", Cat: CatDKVWait, Rank: 1, Track: TrackDKVClient, Peer: 0, Iter: 0, Tag: 17, StartNS: 2000, DurNS: 1500},
			{ID: 4, Name: "dkv.serve.read", Cat: CatDKVServe, Rank: 1, Track: TrackDKVServer, Peer: 0, Iter: -1, Tag: 9, StartNS: 6000, DurNS: 800},
		}},
		// Deliberately out of rank order: the writer must sort.
		{Rank: 0, Dropped: 0, Spans: []Span{
			{ID: 1, Name: "iter", Cat: CatIter, Rank: 0, Track: TrackEngine, Peer: NoPeer, Iter: 0, StartNS: 900, DurNS: 9100},
			{ID: 2, Parent: 1, Name: "gather", Cat: CatCollective, Rank: 0, Track: TrackEngine, Peer: NoPeer, Iter: 0, Tag: 3, StartNS: 7000, DurNS: 2000},
			{ID: 3, Parent: 2, Name: "recv", Cat: CatRecv, Rank: 0, Track: TrackEngine, Peer: 1, Iter: 0, Tag: 3, StartNS: 7100, DurNS: 1800},
		}},
	}
}

// TestWriteChromeTraceGolden pins the exact bytes of the export: the file is
// the interchange format between runs, Perfetto, and ocd-analyze, so format
// drift must be a deliberate act (rerun with -update) rather than an accident.
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenBundles()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace output drifted from golden file (rerun with -update if deliberate)\ngot:\n%s", buf.String())
	}
}

// TestChromeTraceRoundTrip checks the file is lossless interchange: reading
// back what the writer produced reconstructs the bundles exactly (rank-sorted).
func TestChromeTraceRoundTrip(t *testing.T) {
	in := goldenBundles()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Rank != 0 || out[1].Rank != 1 {
		t.Fatalf("round trip ranks: %+v", out)
	}
	// The writer sorts spans by (start, id); sort the inputs the same way to
	// compare (goldenBundles' spans are already start-ordered within a rank).
	want := map[int]TraceBundle{in[0].Rank: in[0], in[1].Rank: in[1]}
	for _, b := range out {
		w := want[b.Rank]
		if b.Dropped != w.Dropped {
			t.Errorf("rank %d dropped = %d, want %d", b.Rank, b.Dropped, w.Dropped)
		}
		if !reflect.DeepEqual(b.Spans, w.Spans) {
			t.Errorf("rank %d spans:\ngot  %+v\nwant %+v", b.Rank, b.Spans, w.Spans)
		}
	}
}

// TestChromeTraceMetadata checks the viewer-facing naming: one process per
// rank, one named thread lane per track in use.
func TestChromeTraceMetadata(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenBundles()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"rank 0"`, `"rank 1"`, `"engine"`, `"dkv client"`, `"dkv server"`, `"process_name"`, `"thread_name"`, `"dropped_by_rank"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace output missing %s", want)
		}
	}
}

// TestReadChromeTraceRejectsGarbage guards the analyzer's error path.
func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("ReadChromeTrace accepted garbage")
	}
}
