package obs

import "sync"

// DefaultStreamCapacity is the ring-buffer depth of a Stream: how many of
// the most recent events a late or resuming SSE client can still replay.
const DefaultStreamCapacity = 1024

// StreamEvent is one buffered event: the marshalled JSON line (no trailing
// newline) plus its monotonically increasing id, which doubles as the SSE
// `id:` field so clients resume with Last-Event-ID.
type StreamEvent struct {
	ID   uint64
	Data []byte
}

// Stream is the live fan-out behind the monitor's /events endpoint: a
// bounded ring buffer of the most recent events plus a set of subscribers.
// The event sink tees every emitted line into it (Sink.Tee), so SSE clients
// see exactly the JSONL the file sink receives.
//
// Delivery is lossy by design — Publish never blocks the training run. A
// subscriber whose channel is full has the event dropped (its Dropped count
// grows); because every frame carries its id, a client detects the gap and
// re-requests the missed range with Last-Event-ID, which replays from the
// ring buffer as long as the events are still inside the capacity window.
type Stream struct {
	mu      sync.Mutex
	cap     int
	buf     []StreamEvent // ring, ordered oldest→newest once rotated
	head    int           // next write position in buf
	next    uint64        // id assigned to the next published event (ids start at 1)
	subs    map[*Subscriber]struct{}
	dropped int64    // total fan-out drops across all subscribers, ever
	dropCtr *Counter // optional registry mirror (canonically CtrEventsDropped)
}

// Subscriber is one /events client's queue.
type Subscriber struct {
	C       chan StreamEvent
	dropped int
	mu      sync.Mutex
}

// Dropped returns how many events were dropped because this subscriber's
// channel was full.
func (s *Subscriber) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

func (s *Subscriber) drop() {
	s.mu.Lock()
	s.dropped++
	s.mu.Unlock()
}

// NewStream creates a stream buffering the last capacity events (<= 0 uses
// DefaultStreamCapacity).
func NewStream(capacity int) *Stream {
	if capacity <= 0 {
		capacity = DefaultStreamCapacity
	}
	return &Stream{
		cap:  capacity,
		buf:  make([]StreamEvent, 0, capacity),
		next: 1,
		subs: map[*Subscriber]struct{}{},
	}
}

// Publish appends one marshalled event line to the ring and fans it out to
// every subscriber without blocking; it returns the event's id. The data is
// retained, so callers must not reuse the slice.
func (s *Stream) Publish(data []byte) uint64 {
	s.mu.Lock()
	ev := StreamEvent{ID: s.next, Data: data}
	s.next++
	if len(s.buf) < s.cap {
		s.buf = append(s.buf, ev)
	} else {
		s.buf[s.head] = ev
	}
	s.head = (s.head + 1) % s.cap
	for sub := range s.subs {
		select {
		case sub.C <- ev:
		default:
			sub.drop() // slow client: drop, the id gap tells it to resume
			s.dropped++
			if s.dropCtr != nil {
				s.dropCtr.Inc()
			}
		}
	}
	s.mu.Unlock()
	return ev.ID
}

// Dropped returns the total number of fan-out drops across every subscriber
// the stream has ever had — the stream-level view of silent telemetry loss
// (per-subscriber counts die with their subscriber).
func (s *Stream) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// SetDropCounter mirrors future drops into a registry counter (canonically
// CtrEventsDropped), so /metrics surfaces them next to the span drops.
func (s *Stream) SetDropCounter(c *Counter) {
	s.mu.Lock()
	s.dropCtr = c
	s.mu.Unlock()
}

// Since returns the buffered events with id > after, oldest first. An
// `after` older than the ring's window returns everything still buffered —
// the client's id gap shows how much history was lost.
func (s *Stream) Since(after uint64) []StreamEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceLocked(after)
}

func (s *Stream) sinceLocked(after uint64) []StreamEvent {
	n := len(s.buf)
	if n == 0 {
		return nil
	}
	start := 0
	if n == s.cap {
		start = s.head // oldest entry once the ring has rotated
	}
	out := make([]StreamEvent, 0, n)
	for i := 0; i < n; i++ {
		ev := s.buf[(start+i)%n]
		if ev.ID > after {
			out = append(out, ev)
		}
	}
	return out
}

// SubscribeFrom atomically registers a new subscriber and returns the
// backlog of buffered events with id > after, so no event published between
// the replay and the subscription can be missed. The channel holds up to
// buffer events (<= 0 defaults to 256); cancel unregisters.
func (s *Stream) SubscribeFrom(after uint64, buffer int) (backlog []StreamEvent, sub *Subscriber, cancel func()) {
	if buffer <= 0 {
		buffer = 256
	}
	sub = &Subscriber{C: make(chan StreamEvent, buffer)}
	s.mu.Lock()
	backlog = s.sinceLocked(after)
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	cancel = func() {
		s.mu.Lock()
		delete(s.subs, sub)
		s.mu.Unlock()
	}
	return backlog, sub, cancel
}

// LastID returns the id of the most recently published event (0 if none).
func (s *Stream) LastID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next - 1
}
