package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenEvents is a miniature but complete stream: run_start, two ranks'
// iter events with stage durations and DKV deltas, a perplexity point, and
// run_end. Durations are fixed so the encoding is deterministic.
func goldenEvents() []Event {
	return []Event{
		{Type: EventRunStart, Rank: 0, Ranks: 2, Iterations: 2},
		{
			Type: EventIter, Rank: 0, Iter: 0,
			StagesMS:  map[string]float64{"update_phi": 1.5, "update_phi.load_pi": 0.5, "update_pi": 0.25},
			DKV:       &DKVCounters{LocalKeys: 10, RemoteKeys: 30, Requests: 4, BytesRead: 1024, BytesWritten: 512},
			ElapsedMS: 2,
		},
		{
			Type: EventIter, Rank: 1, Iter: 0,
			StagesMS:  map[string]float64{"update_phi": 1.25, "update_pi": 0.5},
			DKV:       &DKVCounters{LocalKeys: 12, RemoteKeys: 28, Requests: 4, BytesRead: 960, BytesWritten: 480, CacheHits: 3, CacheMisses: 25},
			ElapsedMS: 2.5,
		},
		{Type: EventIter, Rank: 0, Iter: 1, StagesMS: map[string]float64{"update_phi": 1.5, "update_pi": 0.25}, ElapsedMS: 4},
		{Type: EventIter, Rank: 1, Iter: 1, StagesMS: map[string]float64{"update_phi": 1.25, "update_pi": 0.5}, ElapsedMS: 4.5},
		{Type: EventPerplexity, Rank: 0, Iter: 2, Perplexity: 42.5, ElapsedMS: 5},
		{Type: EventRunEnd, Rank: 0, Iter: 2, DKV: &DKVCounters{LocalKeys: 22, RemoteKeys: 58, Requests: 8, BytesRead: 1984, BytesWritten: 992, CacheHits: 3, CacheMisses: 25}, ElapsedMS: 5.5},
	}
}

// TestEventGoldenRoundTrip pins the JSONL schema: encoding the canonical
// stream must reproduce testdata/events.golden.jsonl byte for byte, and
// decoding the golden file must reproduce the original events. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/obs/ when the schema changes
// deliberately (and update DESIGN.md §9 alongside).
func TestEventGoldenRoundTrip(t *testing.T) {
	events := goldenEvents()
	var buf bytes.Buffer
	sink := NewSink(&buf)
	for i := range events {
		if err := sink.Emit(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "events.golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoded stream differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	decoded, err := ReadEvents(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, events) {
		t.Errorf("decode(golden) != original events\ngot:  %+v\nwant: %+v", decoded, events)
	}
}

func TestReadEventsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"not json", "{"},
		{"unknown type", `{"type":"bogus","rank":0}`},
		{"negative rank", `{"type":"iter","rank":-1}`},
		{"negative stage", `{"type":"iter","rank":0,"stages_ms":{"update_phi":-1}}`},
		{"bad perplexity", `{"type":"perplexity","rank":0,"iter":5}`},
	}
	for _, c := range cases {
		if _, err := ReadEvents(strings.NewReader(c.line + "\n")); err == nil {
			t.Errorf("%s: ReadEvents accepted %q", c.name, c.line)
		}
	}
}

func TestReadEventsSkipsBlankLines(t *testing.T) {
	in := `{"type":"iter","rank":0,"iter":0}` + "\n\n" + `{"type":"iter","rank":0,"iter":1}` + "\n"
	events, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize(goldenEvents())
	if err != nil {
		t.Fatal(err)
	}
	if s.Ranks != 2 || s.Iterations != 2 {
		t.Fatalf("ranks/iterations = %d/%d, want 2/2", s.Ranks, s.Iterations)
	}
	// update_phi: rank 0 mean 1.5, rank 1 mean 1.25 → max 1.5.
	if got := s.StageMSPerIter["update_phi"]; got != 1.5 {
		t.Errorf("update_phi ms/iter = %v, want 1.5", got)
	}
	// update_pi: rank 0 mean 0.25, rank 1 mean 0.5 → max 0.5.
	if got := s.StageMSPerIter["update_pi"]; got != 0.5 {
		t.Errorf("update_pi ms/iter = %v, want 0.5", got)
	}
	if s.DKV.RemoteKeys != 58 || s.DKV.CacheHits != 3 {
		t.Errorf("summed DKV = %+v", s.DKV)
	}
	if s.FinalPerplexity != 42.5 {
		t.Errorf("final perplexity = %v, want 42.5", s.FinalPerplexity)
	}
}

func TestSummarizeRejectsGappyIters(t *testing.T) {
	events := []Event{
		{Type: EventIter, Rank: 0, Iter: 0},
		{Type: EventIter, Rank: 0, Iter: 2}, // gap
	}
	if _, err := Summarize(events); err == nil {
		t.Fatal("Summarize accepted non-consecutive iteration numbers")
	}
}

func TestSummarizeRejectsUnevenRanks(t *testing.T) {
	events := []Event{
		{Type: EventIter, Rank: 0, Iter: 0},
		{Type: EventIter, Rank: 0, Iter: 1},
		{Type: EventIter, Rank: 1, Iter: 0},
	}
	if _, err := Summarize(events); err == nil {
		t.Fatal("Summarize accepted ranks with different iteration counts")
	}
}
