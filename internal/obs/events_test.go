package obs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// goldenEvents is a miniature but complete stream: run_start, two ranks'
// iter events with stage durations and DKV deltas, a perplexity point, and
// run_end. Durations are fixed so the encoding is deterministic.
func goldenEvents() []Event {
	return []Event{
		{Type: EventRunStart, Rank: 0, Ranks: 2, Iterations: 2},
		{
			Type: EventIter, Rank: 0, Iter: 0,
			StagesMS:  map[string]float64{"update_phi": 1.5, "update_phi.load_pi": 0.5, "update_pi": 0.25},
			DKV:       &DKVCounters{LocalKeys: 10, RemoteKeys: 30, Requests: 4, BytesRead: 1024, BytesWritten: 512},
			ElapsedMS: 2,
		},
		{
			Type: EventIter, Rank: 1, Iter: 0,
			StagesMS:  map[string]float64{"update_phi": 1.25, "update_pi": 0.5},
			DKV:       &DKVCounters{LocalKeys: 12, RemoteKeys: 28, Requests: 4, BytesRead: 960, BytesWritten: 480, CacheHits: 3, CacheMisses: 25},
			ElapsedMS: 2.5,
		},
		{Type: EventIter, Rank: 0, Iter: 1, StagesMS: map[string]float64{"update_phi": 1.5, "update_pi": 0.25}, ElapsedMS: 4},
		{Type: EventIter, Rank: 1, Iter: 1, StagesMS: map[string]float64{"update_phi": 1.25, "update_pi": 0.5}, ElapsedMS: 4.5},
		{Type: EventPerplexity, Rank: 0, Iter: 2, Perplexity: 42.5, ElapsedMS: 5},
		{Type: EventRunEnd, Rank: 0, Iter: 2, DKV: &DKVCounters{LocalKeys: 22, RemoteKeys: 58, Requests: 8, BytesRead: 1984, BytesWritten: 992, CacheHits: 3, CacheMisses: 25}, ElapsedMS: 5.5},
	}
}

// TestEventGoldenRoundTrip pins the JSONL schema: encoding the canonical
// stream must reproduce testdata/events.golden.jsonl byte for byte, and
// decoding the golden file must reproduce the original events. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/obs/ when the schema changes
// deliberately (and update DESIGN.md §9 alongside).
func TestEventGoldenRoundTrip(t *testing.T) {
	events := goldenEvents()
	var buf bytes.Buffer
	sink := NewSink(&buf)
	for i := range events {
		if err := sink.Emit(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "events.golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoded stream differs from golden file\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	decoded, err := ReadEvents(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, events) {
		t.Errorf("decode(golden) != original events\ngot:  %+v\nwant: %+v", decoded, events)
	}
}

func TestReadEventsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"not json", "{"},
		{"unknown type", `{"type":"bogus","rank":0}`},
		{"negative rank", `{"type":"iter","rank":-1}`},
		{"negative stage", `{"type":"iter","rank":0,"stages_ms":{"update_phi":-1}}`},
		{"bad perplexity", `{"type":"perplexity","rank":0,"iter":5}`},
		{"weight above 1", `{"type":"rebalance","rank":0,"weights":[1,1.5]}`},
		{"negative weight", `{"type":"rebalance","rank":0,"weights":[-0.5,1]}`},
		{"rebalance without weights", `{"type":"rebalance","rank":0,"iter":8}`},
		{"flag outside weights", `{"type":"rebalance","rank":0,"weights":[1,0.5],"flagged":[2]}`},
		{"negative flagged rank", `{"type":"rebalance","rank":0,"weights":[1,0.5],"flagged":[-1]}`},
	}
	for _, c := range cases {
		if _, err := ReadEvents(strings.NewReader(c.line + "\n")); err == nil {
			t.Errorf("%s: ReadEvents accepted %q", c.name, c.line)
		}
	}
}

// TestReadEventsTornTail: a final line cut off mid-record (no trailing
// newline, not decodable) yields every complete event plus a *TornTailError —
// the shape of a crashed run's stream. The same malformed text WITH a
// trailing newline stays a hard error (TestReadEventsRejectsMalformed pins
// that side).
func TestReadEventsTornTail(t *testing.T) {
	in := `{"type":"iter","rank":0,"iter":0}` + "\n" +
		`{"type":"iter","rank":0,"iter":1}` + "\n" +
		`{"type":"iter","rank":0,` // torn mid-write
	events, err := ReadEvents(strings.NewReader(in))
	var torn *TornTailError
	if !errors.As(err, &torn) {
		t.Fatalf("err = %v, want *TornTailError", err)
	}
	if torn.Line != 3 {
		t.Errorf("torn line = %d, want 3", torn.Line)
	}
	if len(events) != 2 || events[1].Iter != 1 {
		t.Fatalf("got %d complete events (%+v), want the 2 before the tear", len(events), events)
	}
	// A complete-but-invalid unterminated tail is still a torn tail: the
	// writer may have died between the JSON body and the newline, but equally
	// between two digits of a field — either way the record is suspect.
	events, err = ReadEvents(strings.NewReader(`{"type":"iter","rank":0,"iter":0}` + "\n" + `{"type":"bogus"}`))
	if !errors.As(err, &torn) {
		t.Fatalf("invalid unterminated tail: err = %v, want *TornTailError", err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	// A valid unterminated final line is accepted silently (a stream captured
	// by a tool that strips the last newline should not warn).
	events, err = ReadEvents(strings.NewReader(`{"type":"iter","rank":0,"iter":0}`))
	if err != nil || len(events) != 1 {
		t.Fatalf("valid unterminated tail: events %d, err %v", len(events), err)
	}
}

func TestReadEventsSkipsBlankLines(t *testing.T) {
	in := `{"type":"iter","rank":0,"iter":0}` + "\n\n" + `{"type":"iter","rank":0,"iter":1}` + "\n"
	events, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize(goldenEvents())
	if err != nil {
		t.Fatal(err)
	}
	if s.Ranks != 2 || s.Iterations != 2 {
		t.Fatalf("ranks/iterations = %d/%d, want 2/2", s.Ranks, s.Iterations)
	}
	// update_phi: rank 0 mean 1.5, rank 1 mean 1.25 → max 1.5.
	if got := s.StageMSPerIter["update_phi"]; got != 1.5 {
		t.Errorf("update_phi ms/iter = %v, want 1.5", got)
	}
	// update_pi: rank 0 mean 0.25, rank 1 mean 0.5 → max 0.5.
	if got := s.StageMSPerIter["update_pi"]; got != 0.5 {
		t.Errorf("update_pi ms/iter = %v, want 0.5", got)
	}
	if s.DKV.RemoteKeys != 58 || s.DKV.CacheHits != 3 {
		t.Errorf("summed DKV = %+v", s.DKV)
	}
	if s.FinalPerplexity != 42.5 {
		t.Errorf("final perplexity = %v, want 42.5", s.FinalPerplexity)
	}
}

// TestSummarizeZeroIterations: a stream truncated to its run_start — a run
// that crashed before iteration 0 finished — is legal and yields an empty
// Summary rather than an error.
func TestSummarizeZeroIterations(t *testing.T) {
	s, err := Summarize([]Event{{Type: EventRunStart, Rank: 0, Ranks: 4, Iterations: 100}})
	if err != nil {
		t.Fatalf("Summarize(run_start only) = %v", err)
	}
	if s.Ranks != 4 || s.Iterations != 0 || s.Events != 1 {
		t.Fatalf("summary = %+v, want 4 ranks, 0 iterations, 1 event", s)
	}
	if s, err = Summarize(nil); err != nil || s.Iterations != 0 {
		t.Fatalf("Summarize(nil) = %+v, %v", s, err)
	}
}

// TestSummarizePeerWait: per-peer wait deltas on iter events fold into the
// imposed-wait totals (diagonal excluded) and the straggler rule flags the
// slow peer.
func TestSummarizePeerWait(t *testing.T) {
	events := []Event{
		{Type: EventRunStart, Rank: 0, Ranks: 2, Iterations: 2},
		{Type: EventIter, Rank: 0, Iter: 0, PeerWaitMS: map[int]float64{0: 99, 1: 20}},
		{Type: EventIter, Rank: 1, Iter: 0, PeerWaitMS: map[int]float64{0: 0.5}},
		{Type: EventIter, Rank: 0, Iter: 1, PeerWaitMS: map[int]float64{1: 22}},
		{Type: EventIter, Rank: 1, Iter: 1, PeerWaitMS: map[int]float64{0: 0.5}},
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0's wait on itself (the 99) is the diagonal: excluded.
	if got := s.PeerWaitMS[0]; got != 1 {
		t.Errorf("PeerWaitMS[0] = %v, want 1", got)
	}
	if got := s.PeerWaitMS[1]; got != 42 {
		t.Errorf("PeerWaitMS[1] = %v, want 42", got)
	}
	if s.PeerSkew != 42 {
		t.Errorf("PeerSkew = %v, want 42 (max 42 over floor-clamped median 1)", s.PeerSkew)
	}
	if len(s.Stragglers) != 1 || s.Stragglers[0] != 1 {
		t.Errorf("Stragglers = %v, want [1]", s.Stragglers)
	}
}

// TestSummarizeStageSkew: per-stage cross-rank skew names the slow rank;
// master-only stages (one reporter) are skipped.
func TestSummarizeStageSkew(t *testing.T) {
	events := []Event{
		{Type: EventIter, Rank: 0, Iter: 0, StagesMS: map[string]float64{"update_phi": 10, "draw_minibatch": 3}},
		{Type: EventIter, Rank: 1, Iter: 0, StagesMS: map[string]float64{"update_phi": 40}},
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	sk, ok := s.StageSkew["update_phi"]
	if !ok {
		t.Fatalf("no StageSkew for update_phi: %+v", s.StageSkew)
	}
	if sk.MaxMS != 40 || sk.MedianMS != 10 || sk.Skew != 4 || sk.SlowRank != 1 {
		t.Fatalf("update_phi skew = %+v, want max 40 / median 10 / skew 4 / rank 1", sk)
	}
	if _, ok := s.StageSkew["draw_minibatch"]; ok {
		t.Fatal("single-reporter stage draw_minibatch must not get a skew entry")
	}
}

// TestSummarizeRestartStream: a run resumed from a checkpoint emits iter
// events starting at the restart iteration, not 0 — the stream is legal and
// the summary reports the base. Rebalance events fold into the counters.
func TestSummarizeRestartStream(t *testing.T) {
	events := []Event{
		{Type: EventRunStart, Rank: 0, Ranks: 2, Iterations: 8},
		{Type: EventIter, Rank: 0, Iter: 4},
		{Type: EventIter, Rank: 1, Iter: 4},
		{Type: EventRebalance, Rank: 0, Iter: 4, Weights: []float64{1, 0.75}, Flagged: []int{1}},
		{Type: EventIter, Rank: 0, Iter: 5},
		{Type: EventIter, Rank: 1, Iter: 5},
		{Type: EventRebalance, Rank: 0, Iter: 5, Weights: []float64{1, 0.5}, Flagged: []int{1}},
		{Type: EventRunEnd, Rank: 0, Iter: 6, ElapsedMS: 10},
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.StartIter != 4 || s.Iterations != 2 {
		t.Fatalf("start/iterations = %d/%d, want 4/2", s.StartIter, s.Iterations)
	}
	if s.Rebalances != 2 {
		t.Fatalf("Rebalances = %d, want 2", s.Rebalances)
	}
	if !reflect.DeepEqual(s.FinalWeights, []float64{1, 0.5}) {
		t.Fatalf("FinalWeights = %v, want [1 0.5]", s.FinalWeights)
	}

	// Ranks whose streams start at different bases are still rejected.
	if _, err := Summarize([]Event{
		{Type: EventIter, Rank: 0, Iter: 4},
		{Type: EventIter, Rank: 1, Iter: 0},
		{Type: EventIter, Rank: 0, Iter: 5},
		{Type: EventIter, Rank: 1, Iter: 1},
	}); err == nil {
		t.Fatal("Summarize accepted ranks with mismatched start iterations")
	}
}

func TestSummarizeRejectsGappyIters(t *testing.T) {
	events := []Event{
		{Type: EventIter, Rank: 0, Iter: 0},
		{Type: EventIter, Rank: 0, Iter: 2}, // gap
	}
	if _, err := Summarize(events); err == nil {
		t.Fatal("Summarize accepted non-consecutive iteration numbers")
	}
}

func TestSummarizeRejectsUnevenRanks(t *testing.T) {
	events := []Event{
		{Type: EventIter, Rank: 0, Iter: 0},
		{Type: EventIter, Rank: 0, Iter: 1},
		{Type: EventIter, Rank: 1, Iter: 0},
	}
	if _, err := Summarize(events); err == nil {
		t.Fatal("Summarize accepted ranks with different iteration counts")
	}
}
