package obs

import (
	"reflect"
	"strings"
	"testing"
)

func TestPeerCounterNameRoundTrip(t *testing.T) {
	for _, kind := range []string{PeerMsgsSent, PeerBytesSent, PeerMsgsRecv, PeerBytesRecv, PeerRecvWaitNS} {
		name := PeerCounterName(3, kind)
		peer, gotKind, ok := ParsePeerCounter(name)
		if !ok || peer != 3 || gotKind != kind {
			t.Fatalf("ParsePeerCounter(%q) = (%d, %q, %v)", name, peer, gotKind, ok)
		}
	}
	for _, bad := range []string{
		"transport.msgs_sent", "transport.peer.", "transport.peer.x.msgs_sent",
		"transport.peer.3", "transport.peer.3.", "transport.peer.-1.msgs_sent",
		"dkv.requests",
	} {
		if _, _, ok := ParsePeerCounter(bad); ok {
			t.Fatalf("ParsePeerCounter accepted %q", bad)
		}
	}
}

// TestPeerMatrixFromSnapshots builds the matrix from hand-made per-rank
// snapshots and checks placement, out-of-range filtering, and the
// imposed-wait column sums.
func TestPeerMatrixFromSnapshots(t *testing.T) {
	snaps := []Snapshot{
		{Counters: map[string]int64{
			PeerCounterName(1, PeerMsgsSent):   5,
			PeerCounterName(1, PeerBytesSent):  500,
			PeerCounterName(1, PeerMsgsRecv):   4,
			PeerCounterName(1, PeerBytesRecv):  400,
			PeerCounterName(1, PeerRecvWaitNS): 2_000_000, // 2ms waiting on rank 1
			PeerCounterName(9, PeerMsgsSent):   99,        // outside the cluster: ignored
			CtrNetMsgsSent:                     5,         // aggregates pass through untouched
		}},
		{Counters: map[string]int64{
			PeerCounterName(0, PeerMsgsSent):   4,
			PeerCounterName(0, PeerBytesSent):  400,
			PeerCounterName(0, PeerMsgsRecv):   5,
			PeerCounterName(0, PeerBytesRecv):  500,
			PeerCounterName(0, PeerRecvWaitNS): 8_000_000, // 8ms waiting on rank 0
		}},
	}
	m := NewPeerMatrix(snaps)
	if m.Ranks != 2 {
		t.Fatalf("Ranks = %d, want 2", m.Ranks)
	}
	if m.MsgsSent[0][1] != 5 || m.MsgsSent[1][0] != 4 {
		t.Fatalf("MsgsSent = %v", m.MsgsSent)
	}
	if m.BytesRecv[0][1] != 400 || m.BytesRecv[1][0] != 500 {
		t.Fatalf("BytesRecv = %v", m.BytesRecv)
	}
	if m.RecvWaitMS[0][1] != 2 || m.RecvWaitMS[1][0] != 8 {
		t.Fatalf("RecvWaitMS = %v", m.RecvWaitMS)
	}
	if want := []float64{8, 2}; !reflect.DeepEqual(m.ImposedWaitMS(), want) {
		t.Fatalf("ImposedWaitMS = %v, want %v", m.ImposedWaitMS(), want)
	}
}

func TestStragglerReport(t *testing.T) {
	cases := []struct {
		name    string
		waits   []float64
		flagged []int
	}{
		{"balanced", []float64{10, 11, 9, 10}, nil},
		{"one slow", []float64{10, 10, 50, 10}, []int{2}},
		// 2-rank case: the lower median is the fast peer; the floor stands in.
		{"two ranks", []float64{0.01, 30}, []int{1}},
		// Microsecond noise stays below the absolute floor: nothing flagged.
		{"all fast", []float64{0.001, 0.04}, nil},
		{"empty", nil, nil},
	}
	for _, c := range cases {
		rep := stragglerReport(c.waits)
		if !reflect.DeepEqual(rep.Flagged, c.flagged) {
			t.Errorf("%s: Flagged = %v, want %v (report %+v)", c.name, rep.Flagged, c.flagged, rep)
		}
	}
	rep := stragglerReport([]float64{10, 10, 50, 10})
	if rep.MaxMS != 50 || rep.MedianMS != 10 || rep.Skew != 5 {
		t.Fatalf("report stats = %+v, want max 50 / median 10 / skew 5", rep)
	}
	s := rep.String()
	for _, want := range []string{"rank2 50.0", "skew 5.00", "straggler: rank 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report string %q missing %q", s, want)
		}
	}
}

// TestStragglerTwoRanks pins the degenerate cluster sizes the rule's doc
// comment promises: a single rank can never be flagged (its imposed wait is
// identically zero), and at two ranks the floor-clamped single-sample
// denominator flags a genuine straggler while never flagging sub-floor
// noise, however extreme the ratio between the two peers.
func TestStragglerTwoRanks(t *testing.T) {
	cases := []struct {
		name    string
		waits   []float64
		flagged []int
	}{
		// 1 rank: the recv-wait column sum excluding the diagonal is zero.
		{"one rank never flags", []float64{0}, nil},
		// 2 ranks, genuine straggler: wait clears skew·max(fast, floor).
		{"genuine straggler flagged", []float64{0.2, 25}, []int{1}},
		{"straggler in rank 0", []float64{40, 0.5}, []int{0}},
		// Exactly at the threshold (skew 2 × floor 1ms = 2ms) still flags.
		{"threshold boundary", []float64{0, 2}, []int{1}},
		// Sub-floor noise: a 40× ratio between microsecond waits must NOT
		// flag — this is the healthy 2-rank CI run.
		{"sub-floor noise not flagged", []float64{0.002, 0.08}, nil},
		{"just under the floor", []float64{0, 0.999}, nil},
		// Both peers slow and balanced: skew against the (clamped) fast peer
		// stays under the factor, so neither is flagged.
		{"balanced slow pair", []float64{30, 45}, nil},
		{"both zero", []float64{0, 0}, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rep := StragglerWaits(c.waits, 0, 0) // ≤0 selects the defaults
			if !reflect.DeepEqual(rep.Flagged, c.flagged) {
				t.Fatalf("Flagged = %v, want %v (report %+v)", rep.Flagged, c.flagged, rep)
			}
		})
	}

	// The same verdicts must come out of the PeerMatrix path: build a 2-rank
	// matrix where rank 0 waits 25ms on rank 1.
	snaps := []Snapshot{
		{Counters: map[string]int64{PeerCounterName(1, PeerRecvWaitNS): 25_000_000}},
		{Counters: map[string]int64{PeerCounterName(0, PeerRecvWaitNS): 200_000}},
	}
	rep := NewPeerMatrix(snaps).Straggler()
	if !reflect.DeepEqual(rep.Flagged, []int{1}) {
		t.Fatalf("matrix straggler Flagged = %v, want [1]", rep.Flagged)
	}
	// And a 1-rank matrix never flags.
	rep = NewPeerMatrix(snaps[:1]).Straggler()
	if rep.Flagged != nil {
		t.Fatalf("1-rank matrix flagged %v", rep.Flagged)
	}
}
