package obs

import (
	"fmt"
	"testing"
)

func publishN(s *Stream, lo, hi int) {
	for i := lo; i < hi; i++ {
		s.Publish([]byte(fmt.Sprintf("ev%d", i)))
	}
}

func TestStreamIDsAndReplay(t *testing.T) {
	s := NewStream(8)
	if got := s.LastID(); got != 0 {
		t.Fatalf("LastID of empty stream = %d, want 0", got)
	}
	publishN(s, 0, 3)
	if got := s.LastID(); got != 3 {
		t.Fatalf("LastID = %d, want 3", got)
	}
	all := s.Since(0)
	if len(all) != 3 {
		t.Fatalf("Since(0) returned %d events, want 3", len(all))
	}
	for i, ev := range all {
		if ev.ID != uint64(i+1) {
			t.Fatalf("event %d has id %d, want %d", i, ev.ID, i+1)
		}
		if string(ev.Data) != fmt.Sprintf("ev%d", i) {
			t.Fatalf("event %d data = %q", i, ev.Data)
		}
	}
	tail := s.Since(2)
	if len(tail) != 1 || tail[0].ID != 3 {
		t.Fatalf("Since(2) = %+v, want just id 3", tail)
	}
}

// TestStreamRingEviction pins the bounded-buffer contract: once more events
// than the capacity have been published, replay returns only the newest
// window, oldest first, and the id sequence shows the gap.
func TestStreamRingEviction(t *testing.T) {
	s := NewStream(4)
	publishN(s, 0, 10) // ids 1..10; ring holds 7..10
	got := s.Since(0)
	if len(got) != 4 {
		t.Fatalf("Since(0) after overflow returned %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := uint64(7 + i); ev.ID != want {
			t.Fatalf("replay position %d has id %d, want %d (oldest-first window)", i, ev.ID, want)
		}
	}
	// A resume point inside the lost range still returns the whole window.
	if got := s.Since(3); len(got) != 4 {
		t.Fatalf("Since(3) returned %d events, want the full window of 4", len(got))
	}
}

// TestStreamSubscribeFromAtomicity: the backlog plus the live channel must
// cover every event with no duplicates, even when events are published
// between replay and first receive.
func TestStreamSubscribeFrom(t *testing.T) {
	s := NewStream(16)
	publishN(s, 0, 5)
	backlog, sub, cancel := s.SubscribeFrom(2, 8)
	defer cancel()
	if len(backlog) != 3 {
		t.Fatalf("backlog after id 2 has %d events, want 3", len(backlog))
	}
	publishN(s, 5, 7)
	var live []StreamEvent
	for i := 0; i < 2; i++ {
		live = append(live, <-sub.C)
	}
	seen := map[uint64]bool{}
	for _, ev := range append(backlog, live...) {
		if seen[ev.ID] {
			t.Fatalf("event id %d delivered twice", ev.ID)
		}
		seen[ev.ID] = true
	}
	for id := uint64(3); id <= 7; id++ {
		if !seen[id] {
			t.Fatalf("event id %d never delivered", id)
		}
	}
}

// TestStreamSlowSubscriberDrops pins the non-blocking drop policy: a full
// subscriber channel loses events (counted) instead of stalling Publish.
func TestStreamSlowSubscriberDrops(t *testing.T) {
	s := NewStream(16)
	_, sub, cancel := s.SubscribeFrom(0, 2)
	defer cancel()
	publishN(s, 0, 6) // channel holds 2, the other 4 drop
	if got := sub.Dropped(); got != 4 {
		t.Fatalf("Dropped() = %d, want 4", got)
	}
	first := <-sub.C
	if first.ID != 1 {
		t.Fatalf("first delivered id = %d, want 1", first.ID)
	}
	// The dropped range is still replayable from the ring.
	if got := s.Since(2); len(got) != 4 {
		t.Fatalf("Since(2) returned %d events, want the 4 dropped ones", len(got))
	}
}

// TestStreamDropAccounting pins the stream-level drop total and its registry
// mirror (obs.events_dropped): subscriber counts die with their subscriber,
// but the stream and /metrics remember the loss.
func TestStreamDropAccounting(t *testing.T) {
	reg := NewRegistry()
	s := NewStream(16)
	s.SetDropCounter(reg.Counter(CtrEventsDropped))
	_, _, cancel := s.SubscribeFrom(0, 2)
	publishN(s, 0, 6)
	cancel() // the subscriber is gone; the stream total must survive it
	if got := s.Dropped(); got != 4 {
		t.Fatalf("stream Dropped() = %d, want 4", got)
	}
	if got := reg.Counter(CtrEventsDropped).Load(); got != 4 {
		t.Fatalf("registry %s = %d, want 4", CtrEventsDropped, got)
	}
}

func TestStreamCancelUnsubscribes(t *testing.T) {
	s := NewStream(8)
	_, sub, cancel := s.SubscribeFrom(0, 4)
	cancel()
	s.Publish([]byte("after"))
	select {
	case ev := <-sub.C:
		t.Fatalf("cancelled subscriber received %+v", ev)
	default:
	}
}
